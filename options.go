// Functional options for Run and RunStream, and the option-combination
// cross-checks applied before any work starts.

package sersim

import (
	"context"
	"fmt"
	"iter"
	"time"

	"repro/internal/eco"
	"repro/internal/engine"
	"repro/internal/ser"
)

// Option configures a Run or RunStream call. Options are applied in order;
// contradictory combinations (e.g. WithMethod(MethodMonteCarlo) together
// with an EPP engine, or multi-cycle frames on a backend that cannot follow
// errors through flip-flops) are rejected with a descriptive error before
// any work starts.
type Option func(*runConfig) error

// runConfig accumulates option state. The explicit-set flags let Run
// distinguish "defaulted" from "requested" when checking for contradictions
// the zero values would mask.
type runConfig struct {
	cfg       ser.Config
	methodSet bool
	engineSet bool
}

// buildConfig applies the options and cross-checks explicit requests.
func buildConfig(opts []Option) (*runConfig, error) {
	rc := &runConfig{}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(rc); err != nil {
			return nil, err
		}
	}
	if rc.methodSet && rc.engineSet {
		eng, err := engine.Lookup(rc.cfg.Engine)
		if err != nil {
			return nil, err
		}
		wantSampling := rc.cfg.Method == MethodMonteCarlo
		isSampling := eng.Class() == engine.ClassSampling
		isAnalytic := eng.Class() == engine.ClassAnalytic
		if (wantSampling && !isSampling) || (!wantSampling && !isAnalytic) {
			return nil, fmt.Errorf("sersim: WithMethod(%v) contradicts WithEngine(%q) (a %v engine); pick one",
				rc.cfg.Method, eng.Name(), eng.Class())
		}
	}
	return rc, nil
}

// WithMethod selects the P_sensitized estimator family: MethodEPP (the
// paper's analysis, default) or MethodMonteCarlo (the random-simulation
// baseline). For finer backend control use WithEngine.
func WithMethod(m Method) Option {
	return func(rc *runConfig) error {
		rc.cfg.Method = m
		rc.methodSet = true
		return nil
	}
}

// WithSPMethod selects the signal probability source feeding the EPP
// engines: SPTopological (fast Parker–McCluskey sweep, default) or
// SPMonteCarlo (bit-parallel random simulation).
func WithSPMethod(m SPMethod) Option {
	return func(rc *runConfig) error {
		rc.cfg.SPMethod = m
		return nil
	}
}

// WithEngine selects a named P_sensitized backend from the engine registry
// — see Engines for the registered set ("epp-batch", "epp-scalar",
// "monte-carlo", "enum", "bdd", plus any future backends). It overrides the
// WithMethod-derived default.
func WithEngine(name string) Option {
	return func(rc *runConfig) error {
		rc.cfg.Engine = name
		rc.engineSet = true
		return nil
	}
}

// WithFrames extends the analysis across clock cycles: an error captured by
// flip-flops in the strike cycle keeps propagating for up to frames cycles
// (the sequential extension), and detection means a primary output differs
// in some frame. frames <= 1 is the paper's single-cycle analysis. The
// analytic engines compose single-frame EPP sweeps; the monte-carlo engine
// runs the frame-unrolled batched fault-injection kernel — so WithFrames
// composes with WithEngine("monte-carlo") and with
// WithMethod(MethodMonteCarlo). Only the exact engines (enum, bdd) reject
// it; see the package documentation for the engine support matrix.
// WithFrames also composes with WithLatchModel: supplying both runs the
// latch-window-weighted multi-cycle mode (see WithLatchModel).
func WithFrames(frames int) Option {
	return func(rc *runConfig) error {
		rc.cfg.Frames = frames
		return nil
	}
}

// WithWorkers bounds the P_sensitized sweep's parallelism: 0 (default)
// means all cores, 1 forces a serial sweep. Results are identical at any
// worker count; RunStream always sweeps serially for ordered emission.
func WithWorkers(workers int) Option {
	return func(rc *runConfig) error {
		rc.cfg.Workers = workers
		return nil
	}
}

// WithBatchWidth sets the batched EPP engine's lane count — how many error
// sites share one union-cone sweep (0 = default, clamped to the engine
// maximum). Mostly a tuning and debugging knob.
func WithBatchWidth(width int) Option {
	return func(rc *runConfig) error {
		rc.cfg.BatchWidth = width
		return nil
	}
}

// WithRules selects the EPP engines' gate-rule implementation:
// RulesClosedForm (the paper's Table 1 product formulas, default),
// RulesPairwise (the exhaustive 4×4 symbol fold — same results, an
// executable specification), or RulesNoPolarity (the ablation of the
// paper's polarity tracking, for quantifying what the four-valued states
// buy). Requires an analytic (EPP) engine and a single-frame analysis;
// contradictory combinations are rejected before any work starts.
func WithRules(r RuleSet) Option {
	return func(rc *runConfig) error {
		rc.cfg.Rules = r
		return nil
	}
}

// WithVectors sets the random-vector budget per site for the Monte Carlo
// estimator (0 = default).
func WithVectors(vectors int) Option {
	return func(rc *runConfig) error {
		rc.cfg.MC.Vectors = vectors
		return nil
	}
}

// WithSPVectors sets the vector budget for Monte Carlo signal probability
// computation (0 = default; only consulted with WithSPMethod(SPMonteCarlo)).
func WithSPVectors(vectors int) Option {
	return func(rc *runConfig) error {
		rc.cfg.SP.Vectors = vectors
		return nil
	}
}

// WithSeed fixes every randomized component (signal probability simulation
// and the Monte Carlo estimator), making runs reproducible.
func WithSeed(seed uint64) Option {
	return func(rc *runConfig) error {
		rc.cfg.SP.Seed = seed
		rc.cfg.MC.Seed = seed
		return nil
	}
}

// WithSourceBias sets the per-source probability of logic 1, indexed by
// node ID (primary inputs and flip-flop outputs; other entries are
// ignored). Nil means 0.5 everywhere. Entries must lie in [0,1] and the
// slice must cover every node.
func WithSourceBias(prob1 []float64) Option {
	return func(rc *runConfig) error {
		rc.cfg.SP.SourceProb = prob1
		rc.cfg.MC.SourceProb = prob1
		return nil
	}
}

// WithBDDBudget bounds the bdd engine's node count, turning BDD blow-ups
// into errors instead of hangs (0 = default budget).
func WithBDDBudget(nodes int) Option {
	return func(rc *runConfig) error {
		rc.cfg.BDDBudget = nodes
		return nil
	}
}

// WithFaultModel replaces the default R_SEU model.
func WithFaultModel(m FaultModel) Option {
	return func(rc *runConfig) error {
		rc.cfg.Faults = &m
		return nil
	}
}

// WithLatchModel replaces the default P_latched model (the static per-node
// latching-window factor of the SER decomposition).
//
// Combined with WithFrames(n) for n > 1 it additionally couples the
// latching window into the multi-cycle composition: each frame's detection
// contribution is weighted by the model's per-frame capture weight
// (LatchModel.FrameWeight) — the strike-cycle transient races the capturing
// register's window, while detections in later frames are re-launched
// flip-flop values held for a full cycle and count in full. The analytic
// engines scale the strike term of the frame composition; the monte-carlo
// engine composes the identical quantity from the kernel's integer
// per-frame detection counters, so the two stay in statistical agreement
// and all bit-exactness and worker-invariance guarantees are preserved.
// Without WithLatchModel, a multi-cycle run keeps the uncoupled composition
// (every detection counted in full) under the default static factor —
// pass WithLatchModel(DefaultLatchModel()) to opt the default parameters
// into the weighted mode.
func WithLatchModel(m LatchModel) Option {
	return func(rc *runConfig) error {
		rc.cfg.Latch = &m
		return nil
	}
}

// WithProgress registers a callback observing sweep progress: done node
// units of work finished out of total. Site-major engines report after each
// completed batch; the word-major monte-carlo engine reports after each
// completed 64-vector word, scaled to node units, so long sampling sweeps
// show incremental completion even though their per-site results all
// finalize at the last word. done never decreases, reaches total exactly at
// completion, and calls never overlap.
func WithProgress(fn func(done, total int)) Option {
	return func(rc *runConfig) error {
		rc.cfg.Progress = fn
		return nil
	}
}

// WithTimeout bounds the whole run: the pipeline context gets a deadline,
// enforced by every engine at batch/word granularity. An expired deadline
// surfaces as a *PartialError wrapping context.DeadlineExceeded — test with
// errors.Is(err, context.DeadlineExceeded) — carrying how many node units
// had finalized. Combined with WithCheckpoint the finalized work is durable,
// so repeatedly re-running a deadlined request converges to completion.
func WithTimeout(d time.Duration) Option {
	return func(rc *runConfig) error {
		rc.cfg.Timeout = d
		return nil
	}
}

// WithMaxSweepNodes bounds the node units of new P_sensitized work one call
// may perform (0 = unlimited): site-major engines stop at the first batch
// boundary at or past the budget, the word-major monte-carlo engine at the
// equivalent word boundary. A budgeted stop surfaces as a *PartialError
// wrapping ErrSweepBudget. Like WithTimeout, it composes with
// WithCheckpoint into incremental runs that converge to completion.
func WithMaxSweepNodes(n int) Option {
	return func(rc *runConfig) error {
		rc.cfg.MaxSweepNodes = n
		return nil
	}
}

// WithCheckpoint makes the sweep crash-safe: progress — completed site
// batches or vector words plus their integer counters — is committed to the
// file at path (atomically, temp+rename; format documented in
// internal/resume), at most every interval (interval <= 0 commits after
// every unit). A later identical Run against the same path skips the
// completed work and folds the saved results in, producing a Report
// byte-identical to an uninterrupted run on every engine. The checkpoint
// records a fingerprint of everything that affects results (circuit
// content, engine, seed, vectors, frames, models…); resuming with a
// different configuration is an error, while scheduling knobs (WithWorkers,
// WithBatchWidth) may change freely between runs — results are
// worker-invariant. Delete the file to start fresh.
func WithCheckpoint(path string, interval time.Duration) Option {
	return func(rc *runConfig) error {
		if path == "" {
			return fmt.Errorf("sersim: WithCheckpoint with an empty path")
		}
		rc.cfg.CheckpointPath = path
		rc.cfg.CheckpointInterval = interval
		return nil
	}
}

// WithECOCache makes repeated runs incremental across netlist edits via a
// directory-backed ECO cache: per-site results are memoized keyed by a
// content hash of each site's observation cone, so re-running an edited
// circuit (after a TMR transform, say) recomputes only the sites whose
// cones the edit touched and restores the rest bit-identically — the Report
// is byte-identical to an uncached run. The directory is created if needed;
// corrupted cache files degrade to misses, never to stale results.
// Requires a configuration whose per-site values are pure functions of cone
// content: the default topological signal probabilities with unbiased
// sources, and no WithCheckpoint — anything else is rejected up front. The
// monte-carlo engine reuses all-or-nothing (its shared-good-sim kernel
// prices a sweep by words, not sites). RunStream ignores the cache (ordered
// emission). See internal/eco for the soundness argument.
func WithECOCache(dir string) Option {
	return func(rc *runConfig) error {
		cache, err := eco.Open(dir)
		if err != nil {
			return err
		}
		rc.cfg.ECO = cache
		return nil
	}
}

// WithECO attaches an in-process ECO cache handle (NewECOCache or
// OpenECOCache), letting many Run calls — the interactive
// rank → harden → re-estimate loop — share one memo without re-reading the
// cache directory per call. Same eligibility rules as WithECOCache.
func WithECO(cache *ECOCache) Option {
	return func(rc *runConfig) error {
		rc.cfg.ECO = cache
		return nil
	}
}

// Run executes the full SER pipeline on circuit c — signal probabilities,
// per-site P_sensitized through the selected engine, the R_SEU and
// P_latched models — and returns the assembled per-node report. The zero
// option set reproduces the paper's configuration: the batched EPP engine
// over topological signal probabilities with the default technology models.
//
// Cancellation of ctx is honored between engine batches: Run returns
// ctx.Err() promptly without draining the remaining sweep.
func Run(ctx context.Context, c *Circuit, opts ...Option) (*Report, error) {
	rc, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	return ser.Run(ctx, c, rc.cfg)
}

// RunStream is the incremental form of Run: it yields one NodeSER per node
// in ID order as each engine batch completes, so million-gate sweeps need
// not hold a full Report in memory. The sequence yields exactly the NodeSER
// values Run would report. On failure or cancellation the final yield
// carries the error with a zero NodeSER; breaking out of the loop stops the
// sweep after the current batch. The analytic and exact engines sweep
// serially so emission order is deterministic — use Run for multi-core
// sweeps.
//
// The monte-carlo engine is word-major: sharing one good simulation per
// 64-vector word across all sites (its defining invariant) means every
// site's estimate finalizes together at the last word, so its yields
// arrive as ordered batches once the sweep completes. Incremental
// observation during the sweep comes through WithProgress, which ticks per
// completed word; cancellation stays word-granular throughout.
func RunStream(ctx context.Context, c *Circuit, opts ...Option) iter.Seq2[NodeSER, error] {
	rc, err := buildConfig(opts)
	if err != nil {
		return func(yield func(NodeSER, error) bool) {
			yield(NodeSER{}, err)
		}
	}
	return ser.Stream(ctx, c, rc.cfg)
}

// Engines returns the names of the registered P_sensitized backends, sorted
// — the valid arguments to WithEngine.
func Engines() []string { return engine.Names() }

// Fingerprint returns the hex SHA-256 request fingerprint of running the
// given options on c: a hash of the circuit's content (Circuit.ContentHash)
// plus every result-affecting option — engine, frames, vectors, seed, rules,
// bias, resolved signal probabilities, latch parameters. Two calls with
// equal fingerprints produce byte-identical Reports, so the fingerprint is a
// sound memoization key; pure scheduling knobs (WithWorkers, WithBatchWidth)
// are excluded because results are invariant across them. It is the same
// fingerprint WithCheckpoint records in checkpoint files and the serd
// daemon uses as its report-cache key. The options are validated exactly as
// Run would; contradictory combinations return an error.
func Fingerprint(c *Circuit, opts ...Option) (string, error) {
	rc, err := buildConfig(opts)
	if err != nil {
		return "", err
	}
	info, err := ser.Describe(c, rc.cfg)
	if err != nil {
		return "", err
	}
	return info.Fingerprint, nil
}
