// Small deterministic random circuits for tests and ablations whose input
// support must stay within exhaustive-enumeration reach.

package gen

import (
	"math/rand/v2"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// AllTreeKinds lists the multi-input gate kinds used by TreeRandom.
func AllTreeKinds() []logic.Kind {
	return []logic.Kind{logic.And, logic.Nand, logic.Or, logic.Nor, logic.Xor, logic.Xnor}
}

// SmallRandom generates a small purely combinational circuit whose source
// count stays within the exhaustive-enumeration limit, for property tests
// that compare the analytical EPP engine and the Monte Carlo estimator
// against exact ground truth. Deterministic in seed.
func SmallRandom(seed uint64) *netlist.Circuit {
	rng := rand.New(rand.NewPCG(seed, 0xda3e39cb94b95bdb))
	p := Params{
		Name:  "small",
		Seed:  rng.Uint64(),
		PIs:   2 + rng.IntN(8),  // 2..9 inputs: exhaustive is cheap
		POs:   1 + rng.IntN(4),  // 1..4 outputs
		Gates: 4 + rng.IntN(40), // 4..43 gates
	}
	return MustRandom(p)
}

// SmallRandomSequential is SmallRandom with a few flip-flops, for tests
// that exercise time-frame boundaries. Sources (PIs + FFs) stay within the
// exhaustive limit.
func SmallRandomSequential(seed uint64) *netlist.Circuit {
	rng := rand.New(rand.NewPCG(seed, 0xc2b2ae3d27d4eb4f))
	p := Params{
		Name:  "small-seq",
		Seed:  rng.Uint64(),
		PIs:   2 + rng.IntN(6),
		POs:   1 + rng.IntN(3),
		FFs:   1 + rng.IntN(4),
		Gates: 6 + rng.IntN(40),
	}
	return MustRandom(p)
}

// TreeRandom generates a fanout-free (tree) circuit: every node drives at
// most one gate, so the EPP independence assumption holds exactly and the
// analytical result must match exhaustive enumeration to float precision.
// The single output is the tree root. Deterministic in seed.
func TreeRandom(seed uint64) *netlist.Circuit {
	rng := rand.New(rand.NewPCG(seed, 0x94d049bb133111eb))
	nLeaves := 3 + rng.IntN(8) // 3..10 primary inputs
	b := netlist.NewBuilder("tree")

	// frontier holds nodes that still have no consumer.
	var frontier []netlist.ID
	for i := 0; i < nLeaves; i++ {
		frontier = append(frontier, b.Input(nameN("in", i)))
	}
	kinds := AllTreeKinds()
	g := 0
	for len(frontier) > 1 {
		// Consume 2..min(3, len) frontier nodes into one gate.
		take := 2
		if len(frontier) > 2 && rng.IntN(2) == 0 {
			take = 3
		}
		var ins []netlist.ID
		for t := 0; t < take; t++ {
			i := rng.IntN(len(frontier))
			ins = append(ins, frontier[i])
			frontier[i] = frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
		}
		kind := kinds[rng.IntN(len(kinds))]
		id := b.Gate(kind, nameN("t", g), ins...)
		g++
		// Occasionally insert an inverter to exercise polarity tracking.
		if rng.IntN(4) == 0 {
			id = b.Not(nameN("n", g), id)
			g++
		}
		frontier = append(frontier, id)
	}
	b.MarkOutput(frontier[0])
	c, err := b.Build()
	if err != nil {
		panic("gen: TreeRandom: " + err.Error())
	}
	return c
}

func nameN(prefix string, i int) string {
	// Small, allocation-light name builder.
	buf := make([]byte, 0, len(prefix)+4)
	buf = append(buf, prefix...)
	if i == 0 {
		return string(append(buf, '0'))
	}
	var digits [8]byte
	d := 0
	for i > 0 {
		digits[d] = byte('0' + i%10)
		i /= 10
		d++
	}
	for d > 0 {
		d--
		buf = append(buf, digits[d])
	}
	return string(buf)
}
