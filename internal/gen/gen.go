// Package gen generates deterministic synthetic gate-level circuits.
//
// The paper evaluates on the ISCAS'89 benchmark suite, whose netlist files
// are distribution-restricted artifacts not available offline. Per the
// documented substitution (DESIGN.md §2), this package produces circuits
// with the published PI/PO/FF/gate counts of each ISCAS'89 circuit and a
// realistic topology: levelized DAG construction with a bounded logical
// depth, a fanin distribution centered on 2–3, reconvergent fanout, and an
// inverter/complex-gate mix typical of mapped netlists. Generation is fully
// deterministic in the seed, so the Table 2 reproduction is stable.
//
// Real ISCAS'89 .bench files, where available, drop in unchanged through the
// bench package and can be used instead of the synthetic profiles.
package gen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Params control random circuit generation.
type Params struct {
	Name  string
	Seed  uint64
	PIs   int
	POs   int
	FFs   int
	Gates int
	// Levels fixes the number of logic levels (the logical depth bound).
	// Default: 10 + 5·log2(1 + Gates/250), clamped to [4, Gates], matching
	// the depth range of real mapped benchmark netlists.
	Levels int
	// MaxFanin bounds gate fanin (default 4, minimum 2).
	MaxFanin int
	// InverterFrac is the fraction of gates that are single-input NOT/BUFF
	// (default 0.15, matching mapped netlists).
	InverterFrac float64
	// XorFrac is the fraction of multi-input gates that are XOR/XNOR
	// (default 0.05).
	XorFrac float64
	// NoXor removes XOR/XNOR entirely (some flows exclude them).
	NoXor bool
}

func (p *Params) setDefaults() error {
	if p.Name == "" {
		p.Name = "random"
	}
	if p.PIs <= 0 && p.FFs <= 0 {
		return fmt.Errorf("gen: circuit %q needs at least one source", p.Name)
	}
	if p.Gates <= 0 {
		return fmt.Errorf("gen: circuit %q needs at least one gate", p.Name)
	}
	if p.POs <= 0 && p.FFs <= 0 {
		return fmt.Errorf("gen: circuit %q needs at least one observation point", p.Name)
	}
	if p.MaxFanin < 2 {
		p.MaxFanin = 4
	}
	if p.Levels <= 0 {
		p.Levels = 10 + int(5*math.Log2(1+float64(p.Gates)/250))
	}
	if p.Levels < 4 {
		p.Levels = 4
	}
	if p.Levels > p.Gates {
		p.Levels = p.Gates
	}
	if p.InverterFrac < 0 || p.InverterFrac >= 1 {
		p.InverterFrac = 0.15
	}
	if p.XorFrac < 0 || p.XorFrac >= 1 {
		p.XorFrac = 0.05
	}
	return nil
}

// Random generates a circuit from the parameters. The result is
// deterministic in Params (including Seed).
func Random(p Params) (*netlist.Circuit, error) {
	if err := p.setDefaults(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(p.Seed, 0x5851f42d4c957f2d))

	total := p.PIs + p.FFs + p.Gates
	nodes := make([]netlist.Node, 0, total)
	var pis, pos, ffs []netlist.ID

	newNode := func(name string, kind logic.Kind, fanin []netlist.ID) netlist.ID {
		id := netlist.ID(len(nodes))
		nodes = append(nodes, netlist.Node{ID: id, Name: name, Kind: kind, Fanin: fanin})
		return id
	}

	// Sources first: primary inputs, then flip-flop outputs (D assigned at
	// the end, after gates exist).
	for i := 0; i < p.PIs; i++ {
		pis = append(pis, newNode(fmt.Sprintf("pi%d", i), logic.Input, nil))
	}
	for i := 0; i < p.FFs; i++ {
		ffs = append(ffs, newNode(fmt.Sprintf("ff%d", i), logic.DFF, nil))
	}

	// uncovered tracks nodes that nothing consumes yet, so fanin selection
	// can prefer them and the generated logic has few dead cones.
	uncovered := make([]netlist.ID, 0, total)
	uncoveredPos := make(map[netlist.ID]int, total)
	addUncovered := func(id netlist.ID) {
		uncoveredPos[id] = len(uncovered)
		uncovered = append(uncovered, id)
	}
	removeUncovered := func(id netlist.ID) {
		pos, ok := uncoveredPos[id]
		if !ok {
			return
		}
		last := uncovered[len(uncovered)-1]
		uncovered[pos] = last
		uncoveredPos[last] = pos
		uncovered = uncovered[:len(uncovered)-1]
		delete(uncoveredPos, id)
	}
	for id := netlist.ID(0); int(id) < len(nodes); id++ {
		addUncovered(id)
	}

	// Levelized construction: bucket[l] holds node IDs assigned to level l;
	// bucket[0] is the sources. Gates are distributed near-uniformly over
	// levels 1..Levels and each takes its first fanin from the previous
	// level, bounding the logical depth by construction.
	buckets := make([][]netlist.ID, p.Levels+1)
	buckets[0] = make([]netlist.ID, len(nodes))
	for i := range nodes {
		buckets[0][i] = netlist.ID(i)
	}

	// pickBelow selects a fanin from any level < lv: mostly the previous
	// level (building depth), sometimes an uncovered node (limiting dead
	// logic), sometimes any earlier level (creating long reconvergence).
	pickBelow := func(lv int) netlist.ID {
		r := rng.Float64()
		switch {
		case r < 0.45 || lv == 1:
			b := buckets[lv-1]
			if len(b) > 0 {
				return b[rng.IntN(len(b))]
			}
		case r < 0.75 && len(uncovered) > 0:
			return uncovered[rng.IntN(len(uncovered))]
		}
		for {
			l := rng.IntN(lv)
			if len(buckets[l]) > 0 {
				return buckets[l][rng.IntN(len(buckets[l]))]
			}
		}
	}

	multiKinds := []logic.Kind{logic.And, logic.Nand, logic.Or, logic.Nor}
	g := 0
	var pendingUncovered []netlist.ID // current-level gates, released at level end
	for lv := 1; lv <= p.Levels; lv++ {
		// Distribute gates evenly with the remainder spread over the first
		// levels.
		nThis := p.Gates / p.Levels
		if lv <= p.Gates%p.Levels {
			nThis++
		}
		for k := 0; k < nThis; k++ {
			var kind logic.Kind
			var fanin []netlist.ID
			if rng.Float64() < p.InverterFrac {
				if rng.Float64() < 0.8 {
					kind = logic.Not
				} else {
					kind = logic.Buf
				}
				fanin = []netlist.ID{pickBelow(lv)}
			} else {
				nIn := 2
				switch r := rng.Float64(); {
				case r < 0.55:
					nIn = 2
				case r < 0.85:
					nIn = 3
				default:
					nIn = 3 + rng.IntN(p.MaxFanin-2)
				}
				if !p.NoXor && rng.Float64() < p.XorFrac {
					if rng.Float64() < 0.5 {
						kind = logic.Xor
					} else {
						kind = logic.Xnor
					}
					nIn = 2
				} else {
					kind = multiKinds[rng.IntN(len(multiKinds))]
				}
				seen := make(map[netlist.ID]bool, nIn)
				// First fanin from the previous level anchors the gate's
				// depth near lv.
				prev := buckets[lv-1]
				first := prev[rng.IntN(len(prev))]
				seen[first] = true
				fanin = append(fanin, first)
				for tries := 0; len(fanin) < nIn && tries < 16; tries++ {
					f := pickBelow(lv)
					if seen[f] {
						continue
					}
					seen[f] = true
					fanin = append(fanin, f)
				}
			}
			id := newNode(fmt.Sprintf("g%d", g), kind, fanin)
			g++
			for _, f := range fanin {
				removeUncovered(f)
			}
			// Defer: same-level gates must not feed each other, or the
			// realized depth exceeds the Levels bound.
			pendingUncovered = append(pendingUncovered, id)
			buckets[lv] = append(buckets[lv], id)
		}
		for _, id := range pendingUncovered {
			addUncovered(id)
		}
		pendingUncovered = pendingUncovered[:0]
		if len(buckets[lv]) == 0 {
			// Keep every level non-empty so pickBelow(lv+1) has a previous
			// bucket; borrow the last node overall.
			buckets[lv] = append(buckets[lv], netlist.ID(len(nodes)-1))
		}
	}

	firstGate := p.PIs + p.FFs
	// Flip-flop D inputs: prefer uncovered gates, else random gates.
	for _, ff := range ffs {
		var d netlist.ID
		if len(uncovered) > 0 {
			d = uncovered[rng.IntN(len(uncovered))]
			if d == ff {
				d = netlist.ID(firstGate + rng.IntN(p.Gates))
			}
		} else {
			d = netlist.ID(firstGate + rng.IntN(p.Gates))
		}
		nodes[ff].Fanin = []netlist.ID{d}
		removeUncovered(d)
	}

	// Primary outputs: uncovered gates first (the natural sinks), then
	// random distinct gates.
	poSet := make(map[netlist.ID]bool, p.POs)
	for _, id := range uncovered {
		if len(poSet) >= p.POs {
			break
		}
		if int(id) >= firstGate {
			poSet[id] = true
		}
	}
	for guard := 0; len(poSet) < p.POs && guard < 100*p.POs; guard++ {
		poSet[netlist.ID(firstGate+rng.IntN(p.Gates))] = true
	}
	for id := netlist.ID(0); int(id) < len(nodes); id++ {
		if poSet[id] {
			nodes[id].IsPO = true
			pos = append(pos, id)
		}
	}

	return netlist.New(p.Name, nodes, pis, pos, ffs)
}

// MustRandom is Random for known-good parameters; it panics on error.
func MustRandom(p Params) *netlist.Circuit {
	c, err := Random(p)
	if err != nil {
		panic(err)
	}
	return c
}
