// The eleven ISCAS'89 benchmark profiles (s953 … s38417): per-circuit
// statistics from the published netlists, from which ByName generates the
// deterministic synthetic stand-ins.

package gen

import (
	"fmt"

	"repro/internal/netlist"
)

// Profile records the published structural parameters of one ISCAS'89
// benchmark circuit: the circuits evaluated in the paper's Table 2.
type Profile struct {
	Name  string
	PIs   int
	POs   int
	FFs   int
	Gates int
	// Depth is the published combinational logic depth; the generator
	// bounds the synthetic stand-in's level count by it so the topology
	// (and hence reconvergence structure) is comparable.
	Depth int
}

// ISCAS89 lists the eleven circuits of the paper's Table 2 with their
// published interface/gate counts and logic depths (from the standard
// benchmark documentation).
var ISCAS89 = []Profile{
	{Name: "s953", PIs: 16, POs: 23, FFs: 29, Gates: 395, Depth: 16},
	{Name: "s1196", PIs: 14, POs: 14, FFs: 18, Gates: 529, Depth: 24},
	{Name: "s1238", PIs: 14, POs: 14, FFs: 18, Gates: 508, Depth: 22},
	{Name: "s1423", PIs: 17, POs: 5, FFs: 74, Gates: 657, Depth: 59},
	{Name: "s1488", PIs: 8, POs: 19, FFs: 6, Gates: 653, Depth: 17},
	{Name: "s1494", PIs: 8, POs: 19, FFs: 6, Gates: 647, Depth: 17},
	{Name: "s9234", PIs: 36, POs: 39, FFs: 211, Gates: 5597, Depth: 38},
	{Name: "s15850", PIs: 77, POs: 150, FFs: 534, Gates: 9772, Depth: 63},
	{Name: "s35932", PIs: 35, POs: 320, FFs: 1728, Gates: 16065, Depth: 29},
	{Name: "s38584", PIs: 38, POs: 304, FFs: 1426, Gates: 19253, Depth: 56},
	{Name: "s38417", PIs: 28, POs: 106, FFs: 1636, Gates: 22179, Depth: 33},
}

// ProfileByName returns the ISCAS'89 profile with the given name.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range ISCAS89 {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// profileSeed fixes the generation seed per circuit so every run of the
// harness analyzes bit-identical netlists.
func profileSeed(name string) uint64 {
	h := uint64(1469598103934665603) // FNV-1a
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// FromProfile generates the synthetic stand-in for an ISCAS'89 circuit.
func FromProfile(p Profile) (*netlist.Circuit, error) {
	return Random(Params{
		Name:   p.Name,
		Seed:   profileSeed(p.Name),
		PIs:    p.PIs,
		POs:    p.POs,
		FFs:    p.FFs,
		Gates:  p.Gates,
		Levels: p.Depth,
	})
}

// ByName generates the synthetic stand-in for the named ISCAS'89 circuit.
func ByName(name string) (*netlist.Circuit, error) {
	p, ok := ProfileByName(name)
	if !ok {
		return nil, fmt.Errorf("gen: unknown ISCAS'89 profile %q", name)
	}
	return FromProfile(p)
}

// Names returns every ISCAS'89 profile name, in the paper's table order.
func Names() []string {
	out := make([]string, len(ISCAS89))
	for i, p := range ISCAS89 {
		out[i] = p.Name
	}
	return out
}

// SmallNames returns the profile names small enough for exhaustive or heavy
// Monte Carlo treatment in tests (< 1000 gates).
func SmallNames() []string {
	var out []string
	for _, p := range ISCAS89 {
		if p.Gates < 1000 {
			out = append(out, p.Name)
		}
	}
	return out
}
