package gen

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
)

func TestProfileCountsRespected(t *testing.T) {
	for _, p := range ISCAS89 {
		if p.Gates > 2000 {
			continue // large profiles covered by the harness, not unit tests
		}
		c, err := FromProfile(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		s := c.Stats()
		if s.PIs != p.PIs || s.POs != p.POs || s.FFs != p.FFs || s.Gates != p.Gates {
			t.Errorf("%s: got %d/%d/%d/%d, want %d/%d/%d/%d",
				p.Name, s.PIs, s.POs, s.FFs, s.Gates, p.PIs, p.POs, p.FFs, p.Gates)
		}
		if c.Name != p.Name {
			t.Errorf("circuit name %q", c.Name)
		}
	}
}

// TestProfileDepthMatchesPublished: the synthetic stand-ins reproduce the
// published logical depth of each ISCAS'89 circuit (the generator's Levels
// bound is tight for these gate densities).
func TestProfileDepthMatchesPublished(t *testing.T) {
	for _, p := range ISCAS89 {
		if p.Gates > 2000 {
			continue
		}
		c, err := FromProfile(p)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.MaxLevel(); got != p.Depth {
			t.Errorf("%s: depth %d, published %d", p.Name, got, p.Depth)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := MustRandom(Params{Name: "d", Seed: 5, PIs: 6, POs: 3, FFs: 2, Gates: 80})
	b := MustRandom(Params{Name: "d", Seed: 5, PIs: 6, POs: 3, FFs: 2, Gates: 80})
	if a.N() != b.N() {
		t.Fatal("node counts differ")
	}
	for i := range a.Nodes {
		x, y := &a.Nodes[i], &b.Nodes[i]
		if x.Name != y.Name || x.Kind != y.Kind || len(x.Fanin) != len(y.Fanin) || x.IsPO != y.IsPO {
			t.Fatalf("node %d differs: %+v vs %+v", i, x, y)
		}
		for j := range x.Fanin {
			if x.Fanin[j] != y.Fanin[j] {
				t.Fatalf("node %d fanin differs", i)
			}
		}
	}
	c := MustRandom(Params{Name: "d", Seed: 6, PIs: 6, POs: 3, FFs: 2, Gates: 80})
	same := true
	for i := range a.Nodes {
		if a.Nodes[i].Kind != c.Nodes[i].Kind || len(a.Nodes[i].Fanin) != len(c.Nodes[i].Fanin) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical structure (suspicious)")
	}
}

func TestGeneratedCircuitsValid(t *testing.T) {
	// netlist.New already validates; this asserts analytical properties the
	// generator promises: few dead cones, sane depth, no XOR when disabled.
	c := MustRandom(Params{Name: "v", Seed: 1, PIs: 10, POs: 5, FFs: 5, Gates: 400, NoXor: true})
	for i := range c.Nodes {
		k := c.Nodes[i].Kind
		if k == logic.Xor || k == logic.Xnor {
			t.Fatalf("NoXor violated at node %d", i)
		}
	}
	if c.MaxLevel() < 3 {
		t.Errorf("depth %d too shallow for 400 gates", c.MaxLevel())
	}
	// Dead logic (gates with no fanout that are not observed) should be
	// rare thanks to uncovered-first selection.
	dead := 0
	for i := range c.Nodes {
		n := &c.Nodes[i]
		if n.Kind.IsGate() && len(n.Fanout) == 0 && !c.IsObserved(n.ID) {
			dead++
		}
	}
	if frac := float64(dead) / float64(c.NumGates()); frac > 0.10 {
		t.Errorf("%.1f%% dead gates", 100*frac)
	}
}

func TestReconvergenceExists(t *testing.T) {
	// A realistic profile must contain reconvergent fanout: some node with
	// fanout >= 2 whose branches re-meet. Cheap proxy: max fanout > 1 and
	// at least one gate has two fanins with a common ancestor — guaranteed
	// if any node has fanout >= 2 feeding gates. Check max fanout.
	c := MustRandom(Params{Name: "r", Seed: 2, PIs: 8, POs: 4, Gates: 200})
	if c.Stats().MaxFanout < 2 {
		t.Error("no fanout >= 2: generator produces only trees")
	}
}

func TestSmallRandomWithinExhaustiveLimit(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		c := SmallRandom(seed)
		if n := len(c.Sources()); n > 24 {
			t.Fatalf("seed %d: %d sources", seed, n)
		}
		cs := SmallRandomSequential(seed)
		if n := len(cs.Sources()); n > 24 {
			t.Fatalf("seq seed %d: %d sources", seed, n)
		}
		if len(cs.FFs) == 0 {
			t.Fatalf("seq seed %d: no flip-flops", seed)
		}
	}
}

func TestTreeRandomIsFanoutFree(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		c := TreeRandom(seed)
		for i := range c.Nodes {
			if len(c.Nodes[i].Fanout) > 1 {
				t.Fatalf("seed %d: node %s has fanout %d",
					seed, c.Nodes[i].Name, len(c.Nodes[i].Fanout))
			}
		}
		if len(c.POs) != 1 {
			t.Fatalf("seed %d: %d POs", seed, len(c.POs))
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, ok := ProfileByName("s1196")
	if !ok || p.Gates != 529 {
		t.Errorf("s1196 profile = %+v, ok=%v", p, ok)
	}
	if _, ok := ProfileByName("s999"); ok {
		t.Error("unknown profile found")
	}
	if _, err := ByName("s999"); err == nil {
		t.Error("ByName accepted unknown circuit")
	}
}

func TestParamValidation(t *testing.T) {
	if _, err := Random(Params{Name: "x", Gates: 10}); err == nil {
		t.Error("no sources accepted")
	}
	if _, err := Random(Params{Name: "x", PIs: 2}); err == nil {
		t.Error("no gates accepted")
	}
	if _, err := Random(Params{Name: "x", PIs: 2, Gates: 5}); err == nil {
		t.Error("no observation points accepted")
	}
}

func TestSmallNames(t *testing.T) {
	names := SmallNames()
	if len(names) != 6 {
		t.Errorf("SmallNames = %v", names)
	}
	for _, n := range names {
		p, _ := ProfileByName(n)
		if p.Gates >= 1000 {
			t.Errorf("%s not small", n)
		}
	}
}

func TestFFDInputsAssigned(t *testing.T) {
	c := MustRandom(Params{Name: "ff", Seed: 3, PIs: 4, POs: 2, FFs: 6, Gates: 60})
	for _, ff := range c.FFs {
		if len(c.Node(ff).Fanin) != 1 {
			t.Fatalf("FF %d has %d fanins", ff, len(c.Node(ff).Fanin))
		}
		if d := c.Node(ff).Fanin[0]; d == ff {
			t.Fatalf("FF %d drives its own D directly", ff)
		}
	}
	_ = netlist.InvalidID
}
