package graph

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/netlist"
)

// fig1 builds the circuit of the paper's Figure 1:
//
//	A (error site), B, C, F inputs
//	E = NOT(A); G = AND(E, F); D = AND(A, B); H = OR(C, D, G); H is the PO.
func fig1(t *testing.T) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(`
INPUT(A)
INPUT(B)
INPUT(C)
INPUT(F)
OUTPUT(H)
E = NOT(A)
G = AND(E, F)
D = AND(A, B)
H = OR(C, D, G)
`)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestForwardConeFig1(t *testing.T) {
	c := fig1(t)
	w := NewWalker(c)
	cone := w.ForwardCone(c.ByName("A"))

	wantMembers := map[string]bool{"A": true, "E": true, "G": true, "D": true, "H": true}
	if cone.Size() != len(wantMembers) {
		t.Fatalf("cone size = %d, want %d", cone.Size(), len(wantMembers))
	}
	for _, id := range cone.Members {
		if !wantMembers[c.NameOf(id)] {
			t.Errorf("unexpected cone member %s", c.NameOf(id))
		}
	}
	// Off-path inputs B, C, F are not members.
	for _, off := range []string{"B", "C", "F"} {
		if cone.Contains(c.ByName(off)) {
			t.Errorf("off-path signal %s in cone", off)
		}
	}
	if len(cone.Outputs) != 1 || c.NameOf(cone.Outputs[0]) != "H" {
		t.Errorf("cone outputs = %v", cone.Outputs)
	}
	if cone.Members[0] != c.ByName("A") {
		t.Errorf("cone must start at the root")
	}
}

func TestConeTopologicalOrder(t *testing.T) {
	c := gen.MustRandom(gen.Params{Name: "t", Seed: 42, PIs: 8, POs: 4, Gates: 120})
	w := NewWalker(c)
	pos := make([]int, c.N())
	for id := 0; id < c.N(); id++ {
		cone := w.ForwardCone(netlist.ID(id))
		if cone.Members[0] != netlist.ID(id) {
			t.Fatalf("cone of %d does not start at its root", id)
		}
		// Topological property: every on-path fanin of a member appears
		// earlier in the member list.
		for i, m := range cone.Members {
			pos[m] = i
		}
		for i, m := range cone.Members[1:] {
			for _, f := range c.Node(m).Fanin {
				if cone.Contains(f) && pos[f] >= i+1 {
					t.Fatalf("cone of %d: fanin %d of member %d appears later", id, f, m)
				}
			}
		}
		// Every non-root member must have at least one fanin inside the cone
		// (the definition of an on-path gate).
		for _, m := range cone.Members[1:] {
			found := false
			for _, f := range c.Node(m).Fanin {
				if cone.Contains(f) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("cone member %d has no on-path fanin", m)
			}
		}
	}
}

func TestConeStopsAtFlipFlops(t *testing.T) {
	c, err := bench.ParseString(`
INPUT(a)
OUTPUT(z)
d = NOT(a)
q = DFF(d)
z = NOT(q)
`)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWalker(c)
	cone := w.ForwardCone(c.ByName("a"))
	// Cone: a, d. Not q (FF) and not z (behind the FF).
	if cone.Size() != 2 {
		t.Fatalf("cone size = %d, want 2", cone.Size())
	}
	if cone.Contains(c.ByName("q")) || cone.Contains(c.ByName("z")) {
		t.Error("cone crossed a flip-flop boundary")
	}
	// The observation point is d (the FF's D input).
	if len(cone.Outputs) != 1 || c.NameOf(cone.Outputs[0]) != "d" {
		t.Errorf("outputs = %v", cone.Outputs)
	}
}

func TestWalkerReuse(t *testing.T) {
	c := fig1(t)
	w := NewWalker(c)
	c1 := w.ForwardCone(c.ByName("A"))
	size1 := c1.Size()
	// Second query must fully reset scratch.
	c2 := w.ForwardCone(c.ByName("C"))
	if c2.Size() != 2 { // C and H
		t.Fatalf("cone(C) size = %d, want 2", c2.Size())
	}
	c1b := w.ForwardCone(c.ByName("A"))
	if c1b.Size() != size1 {
		t.Fatalf("repeat cone(A) size = %d, want %d", c1b.Size(), size1)
	}
}

func TestFaninConeAndSupport(t *testing.T) {
	c := fig1(t)
	sup := SupportInputs(c, c.ByName("H"))
	if len(sup) != 4 {
		t.Fatalf("support of H = %d inputs, want 4", len(sup))
	}
	supG := SupportInputs(c, c.ByName("G"))
	names := map[string]bool{}
	for _, id := range supG {
		names[c.NameOf(id)] = true
	}
	if !names["A"] || !names["F"] || len(supG) != 2 {
		t.Fatalf("support of G = %v", names)
	}
}

func TestCountReachableMatchesPerNodeCones(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		c := gen.SmallRandomSequential(seed)
		counts := CountReachable(c)
		w := NewWalker(c)
		for id := 0; id < c.N(); id++ {
			cone := w.ForwardCone(netlist.ID(id))
			if counts[id] != len(cone.Outputs) {
				t.Fatalf("seed %d node %d: CountReachable=%d, cone outputs=%d",
					seed, id, counts[id], len(cone.Outputs))
			}
		}
	}
}

func TestReachableOutputsHelper(t *testing.T) {
	c := fig1(t)
	if got := ReachableOutputs(c, c.ByName("A")); got != 1 {
		t.Errorf("ReachableOutputs(A) = %d", got)
	}
	if got := ReachableOutputs(c, c.ByName("H")); got != 1 {
		t.Errorf("ReachableOutputs(H) = %d (H itself is observed)", got)
	}
}
