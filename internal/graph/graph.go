// Package graph implements the structural traversals the EPP method is built
// on (paper §2, steps 1 and 2): forward cone extraction from an error site to
// all reachable observation points via depth-first search, topological
// ordering of the extracted cone, backward (fanin) cones, and reachability
// utilities.
//
// All traversals treat D flip-flops as time-frame boundaries: propagation
// stops at a flip-flop's D input (which is an observation point) and never
// continues through the flip-flop's output.
package graph

import (
	"math/bits"
	"sort"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Cone is the forward structural cone of an error site: exactly the on-path
// signals of the paper. Every member other than the root is an on-path gate
// (a gate with at least one on-path input).
type Cone struct {
	Root netlist.ID
	// Members lists the cone's nodes in combinational topological order,
	// starting with Root. Every analysis sweep iterates this slice.
	Members []netlist.ID
	// Outputs lists the observation points (POs and FF D inputs) inside the
	// cone, i.e. the outputs reachable from Root, in topological order.
	Outputs []netlist.ID
	// inCone[id] reports cone membership; shared scratch, valid until the
	// owning Walker is used for another root.
	inCone []bool
}

// Contains reports whether node id is an on-path signal of the cone.
func (c *Cone) Contains(id netlist.ID) bool { return c.inCone[id] }

// Size returns the number of on-path signals.
func (c *Cone) Size() int { return len(c.Members) }

// Walker extracts forward cones from a fixed circuit. It keeps reusable
// scratch so repeated extraction (the all-nodes SER loop) performs no
// per-call allocation: the returned Cone's slices alias the Walker's scratch
// and are invalidated by the next ForwardCone call. A Walker is not safe for
// concurrent use; create one per goroutine.
type Walker struct {
	c       *netlist.Circuit
	topoPos []int32 // topoPos[id] = position of id in c.Topo()
	inCone  []bool
	stack   []netlist.ID
	touched []netlist.ID // nodes whose inCone bit is set, for O(|cone|) reset
	counts  []int32      // per-level counting-sort scratch, reused
	members []netlist.ID // sorted members scratch, reused
	outputs []netlist.ID // observed members scratch, reused

	// CSR views of the circuit, cached so the DFS inner loop reads flat
	// arrays instead of dereferencing Node structs.
	foIdx  []int32
	foArr  []netlist.ID
	kinds  []logic.Kind
	levels []int
}

// NewWalker returns a Walker over circuit c.
func NewWalker(c *netlist.Circuit) *Walker {
	topo := c.Topo()
	pos := make([]int32, c.N())
	for i, id := range topo {
		pos[id] = int32(i)
	}
	w := &Walker{
		c:       c,
		topoPos: pos,
		inCone:  make([]bool, c.N()),
	}
	w.foIdx, w.foArr = c.FanoutCSR()
	w.kinds = c.Kinds()
	w.levels = c.Levels()
	return w
}

// ForwardCone extracts the on-path cone of root: all nodes reachable from
// root through combinational gates (stopping at flip-flops), sorted in
// topological order, together with the reachable observation points.
// The returned Cone shares scratch with the Walker and is invalidated by the
// next ForwardCone call.
func (w *Walker) ForwardCone(root netlist.ID) Cone {
	// Reset the bits touched by the previous query.
	for _, id := range w.touched {
		w.inCone[id] = false
	}
	w.touched = w.touched[:0]
	w.stack = w.stack[:0]

	c := w.c
	w.stack = append(w.stack, root)
	w.inCone[root] = true
	w.touched = append(w.touched, root)
	for len(w.stack) > 0 {
		id := w.stack[len(w.stack)-1]
		w.stack = w.stack[:len(w.stack)-1]
		for _, out := range w.foArr[w.foIdx[id]:w.foIdx[id+1]] {
			if w.inCone[out] {
				continue
			}
			if w.kinds[out] == logic.DFF {
				continue // time-frame boundary: do not cross
			}
			w.inCone[out] = true
			w.touched = append(w.touched, out)
			w.stack = append(w.stack, out)
		}
	}

	// Order members topologically with a counting sort on the precomputed
	// combinational level: every gate's level strictly exceeds all of its
	// fanins' levels, so level order is a valid topological order. This is
	// O(|cone| + depth) and allocation-free after warm-up.
	maxLv := 0
	for _, id := range w.touched {
		if lv := w.levels[id]; lv > maxLv {
			maxLv = lv
		}
	}
	if cap(w.counts) < maxLv+2 {
		w.counts = make([]int32, maxLv+2)
	}
	counts := w.counts[:maxLv+2]
	for i := range counts {
		counts[i] = 0
	}
	for _, id := range w.touched {
		counts[w.levels[id]+1]++
	}
	for lv := 1; lv < len(counts); lv++ {
		counts[lv] += counts[lv-1]
	}
	if cap(w.members) < len(w.touched) {
		w.members = make([]netlist.ID, len(w.touched))
	}
	w.members = w.members[:len(w.touched)]
	for _, id := range w.touched {
		lv := w.levels[id]
		w.members[counts[lv]] = id
		counts[lv]++
	}
	w.outputs = w.outputs[:0]
	for _, id := range w.members {
		if c.IsObserved(id) {
			w.outputs = append(w.outputs, id)
		}
	}
	return Cone{Root: root, Members: w.members, Outputs: w.outputs, inCone: w.inCone}
}

// TopoPos returns the position of id in the circuit's topological order.
func (w *Walker) TopoPos(id netlist.ID) int32 { return w.topoPos[id] }

// FaninCone returns the transitive fanin of node id (including id), stopping
// at sources (PIs, FFs, tie cells), in no particular order.
func FaninCone(c *netlist.Circuit, id netlist.ID) []netlist.ID {
	seen := make(map[netlist.ID]bool)
	var out []netlist.ID
	var stack []netlist.ID
	stack = append(stack, id)
	seen[id] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, n)
		if c.Node(n).IsSource() {
			continue
		}
		for _, f := range c.Node(n).Fanin {
			if !seen[f] {
				seen[f] = true
				stack = append(stack, f)
			}
		}
	}
	return out
}

// SupportInputs returns the source nodes (PIs, FF outputs, ties) in the
// transitive fanin of id, sorted ascending: the combinational support.
func SupportInputs(c *netlist.Circuit, id netlist.ID) []netlist.ID {
	var out []netlist.ID
	for _, n := range FaninCone(c, id) {
		if c.Node(n).IsSource() {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ReachableOutputs returns, for every node, the number of observation points
// reachable from it. Computed with one reverse sweep per observation point's
// cone would be quadratic; instead this runs one forward cone per node only
// when asked — see CountReachable for the batched bitset version.
func ReachableOutputs(c *netlist.Circuit, id netlist.ID) int {
	w := NewWalker(c)
	cone := w.ForwardCone(id)
	return len(cone.Outputs)
}

// CountReachable computes, for all nodes at once, how many observation
// points each node reaches, using a reverse topological sweep of 64-bit
// block bitsets over the observation points. Cost O(N · |observed|/64).
func CountReachable(c *netlist.Circuit) []int {
	obs := c.Observed()
	words := (len(obs) + 63) / 64
	obsIndex := make(map[netlist.ID]int, len(obs))
	for i, id := range obs {
		obsIndex[id] = i
	}
	store := make([]uint64, c.N()*words)
	row := func(id netlist.ID) []uint64 {
		return store[int(id)*words : (int(id)+1)*words]
	}
	topo := c.Topo()
	for i := len(topo) - 1; i >= 0; i-- {
		id := topo[i]
		r := row(id)
		if k, ok := obsIndex[id]; ok {
			r[k/64] |= 1 << (k % 64)
		}
		for _, out := range c.Node(id).Fanout {
			if c.Node(out).Kind == logic.DFF {
				continue
			}
			or := row(out)
			for wd := range r {
				r[wd] |= or[wd]
			}
		}
	}
	counts := make([]int, c.N())
	for id := 0; id < c.N(); id++ {
		n := 0
		for _, wd := range row(netlist.ID(id)) {
			n += bits.OnesCount64(wd)
		}
		counts[id] = n
	}
	return counts
}
