// Tests of the shared parse-once path: the pinned c17 content hash (the
// anchor of every cache key, checkpoint fingerprint and daemon circuit
// identity in the repo), single-flight parsing, alias reuse, hash-only
// resolution, and the LRU byte bound.

package circuitio

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
)

// TestContentHashGoldenC17 pins the content hash of the checked-in c17
// netlist. This hash anchors the parse cache, the request fingerprints (and
// with them the report cache and checkpoint/resume identity), and the
// daemon's hash-addressed circuit protocol: if it moves, every persisted
// checkpoint and cached artifact silently invalidates, so a change here
// must be deliberate and called out.
func TestContentHashGoldenC17(t *testing.T) {
	c, err := Load(Source{Path: "../../testdata/c17.bench"})
	if err != nil {
		t.Fatal(err)
	}
	const golden = "4ea366237069ee987fa734e07039b0f7b976e75e4317500d11d82e4883e41c88"
	if got := c.ContentHash(); got != golden {
		t.Fatalf("c17.bench content hash drifted:\n got %s\nwant %s", got, golden)
	}
}

func TestValidate(t *testing.T) {
	if err := (Source{}).Validate(); err == nil {
		t.Fatal("empty source accepted")
	}
	if err := (Source{Bench: "x", Profile: "s953"}).Validate(); err == nil {
		t.Fatal("double source accepted")
	}
	if err := (Source{Profile: "s953"}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleFlight(t *testing.T) {
	cc := New(0)
	const n = 16
	var wg sync.WaitGroup
	circuits := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := cc.Load(Source{Profile: "s953"})
			if err != nil {
				circuits[i] = err
				return
			}
			circuits[i] = c
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if circuits[i] != circuits[0] {
			t.Fatalf("load %d returned a different instance (or error): %v", i, circuits[i])
		}
	}
	st := cc.Stats()
	if st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("%d concurrent loads parsed %d times (%d entries)", n, st.Misses, st.Entries)
	}
}

func TestAliasReuseAndFileChange(t *testing.T) {
	cc := New(0)
	dir := t.TempDir()
	path := filepath.Join(dir, "tiny.bench")
	src, err := os.ReadFile("../../testdata/c17.bench")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, src, 0o644); err != nil {
		t.Fatal(err)
	}

	c1, err := cc.Load(Source{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := cc.Load(Source{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("repeat path load re-parsed")
	}
	if st := cc.Stats(); st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats after path reuse: %+v", st)
	}

	// Inline text is its own alias (the circuit name comes from the file
	// name, so file and inline loads are distinct content — ContentHash
	// covers the name); a repeated inline load reuses the first.
	c3, err := cc.Load(Source{Bench: string(src)})
	if err != nil {
		t.Fatal(err)
	}
	c3b, err := cc.Load(Source{Bench: string(src)})
	if err != nil {
		t.Fatal(err)
	}
	if c3 != c3b {
		t.Fatal("repeat inline load re-parsed")
	}

	// A rewritten file must be re-parsed, not served stale. Force a mtime
	// change explicitly — filesystem timestamps are too coarse to rely on.
	changed := append([]byte(nil), src...)
	changed = append(changed, []byte("\nOUTPUT(G10)\n")...)
	if err := os.WriteFile(path, changed, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, time.Now().Add(2*time.Second), time.Now().Add(2*time.Second)); err != nil {
		t.Fatal(err)
	}
	c4, err := cc.Load(Source{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if c4.ContentHash() == c1.ContentHash() {
		t.Fatal("rewritten file served stale")
	}
}

func TestHashOnlyLoad(t *testing.T) {
	cc := New(0)
	c, err := cc.Load(Source{Profile: "s953"})
	if err != nil {
		t.Fatal(err)
	}
	hash := c.ContentHash()
	got, err := cc.Load(Source{Hash: hash})
	if err != nil || got != c {
		t.Fatalf("hash-only load: %v (err %v)", got, err)
	}
	if _, err := cc.Load(Source{Hash: "deadbeef"}); !errors.Is(err, ErrNotCached) {
		t.Fatalf("unknown hash: %v (want ErrNotCached)", err)
	}
}

func TestEvictionByteBound(t *testing.T) {
	cc := New(1) // 1 byte: every insert evicts the previous resident
	c1, err := cc.Load(Source{Profile: "s953"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cc.Get(c1.ContentHash()); !ok {
		t.Fatal("sole oversized entry evicted")
	}
	if _, err := cc.Load(Source{Profile: "s1196"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := cc.Get(c1.ContentHash()); ok {
		t.Fatal("old entry survived past the byte bound")
	}
	// The evicted circuit's alias re-parses cleanly.
	c3, err := cc.Load(Source{Profile: "s953"})
	if err != nil {
		t.Fatal(err)
	}
	if c3.ContentHash() != c1.ContentHash() {
		t.Fatal("re-parse after eviction changed the hash")
	}
	if st := cc.Stats(); st.Evictions < 2 || st.Entries != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPut(t *testing.T) {
	cc := New(0)
	c, err := gen.ByName("s953")
	if err != nil {
		t.Fatal(err)
	}
	hash := cc.Put(c)
	if got, ok := cc.Get(hash); !ok || got != c {
		t.Fatal("Put circuit not retrievable by its hash")
	}
	// Generator determinism: the profile alias resolves to the same content.
	viaProfile, err := cc.Load(Source{Profile: "s953"})
	if err != nil {
		t.Fatal(err)
	}
	if viaProfile.ContentHash() != hash {
		t.Fatal("generated profile hash not deterministic")
	}
}

func TestEstimateBytesScales(t *testing.T) {
	small, err := Load(Source{Path: "../../testdata/c17.bench"})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Load(Source{Profile: "s953"})
	if err != nil {
		t.Fatal(err)
	}
	sb, bb := EstimateBytes(small), EstimateBytes(big)
	if sb <= 0 || bb <= sb {
		t.Fatalf("EstimateBytes: c17=%d s953=%d", sb, bb)
	}
	_ = fmt.Sprintf("%d %d", sb, bb)
}
