// Package circuitio resolves circuit sources — inline ISCAS'89 .bench text,
// .bench or structural Verilog files, and generated ISCAS'89 profile names —
// through one shared parse helper backed by a content-addressed cache, so a
// circuit is parsed and finalized exactly once no matter how many engines,
// CLI modes or concurrent server requests consume it.
//
// The cache is keyed by netlist.Circuit.ContentHash — the structural
// content hash that also anchors the checkpoint/resume request fingerprint —
// with cheap alias keys (source-text digest, file path, profile name) in
// front so a repeated Load never re-parses just to rediscover the hash. It
// is bounded by an approximate byte budget with LRU eviction, and concurrent
// Loads of the same source are collapsed into a single parse (the others
// block and share the result), which is what a daemon serving many identical
// requests needs.
package circuitio

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/verilog"
)

// Source names one circuit input. Exactly one field must be set.
type Source struct {
	// Bench is inline ISCAS'89 .bench source text.
	Bench string
	// Path is a netlist file: .v / .verilog parses as structural Verilog,
	// anything else as ISCAS'89 .bench.
	Path string
	// Profile is a generated synthetic ISCAS'89 profile name (see gen.Names).
	Profile string
	// Hash references a circuit already resident in the cache by its
	// content hash — the daemon's repeat-request fast path. Loading a hash
	// that is not resident fails with ErrNotCached (there is no source to
	// parse); re-send the full source to repopulate.
	Hash string
}

// Validate checks that exactly one source field is set.
func (s Source) Validate() error {
	set := 0
	for _, f := range []string{s.Bench, s.Path, s.Profile, s.Hash} {
		if f != "" {
			set++
		}
	}
	if set != 1 {
		return fmt.Errorf("circuitio: exactly one of bench, path, profile or hash must be set (got %d)", set)
	}
	return nil
}

// aliasKey is the cheap pre-parse identity of a source: it must be
// computable without parsing, and two sources with equal alias keys must
// denote the same circuit content.
func (s Source) aliasKey() (string, error) {
	switch {
	case s.Bench != "":
		sum := sha256.Sum256([]byte(s.Bench))
		return "bench:" + hex.EncodeToString(sum[:]), nil
	case s.Path != "":
		abs, err := filepath.Abs(s.Path)
		if err != nil {
			abs = s.Path
		}
		// File content may change between invocations of a long-lived
		// process; fold size+mtime into the key so a rewritten file is
		// re-parsed rather than served stale.
		if fi, err := os.Stat(s.Path); err == nil {
			return fmt.Sprintf("path:%s:%d:%d", abs, fi.Size(), fi.ModTime().UnixNano()), nil
		}
		return "path:" + abs, nil
	case s.Profile != "":
		return "profile:" + s.Profile, nil
	case s.Hash != "":
		return "", nil // hashes are resolved directly, no alias
	}
	return "", fmt.Errorf("circuitio: empty source")
}

// parse runs the actual parser for the source. Hash-only sources cannot be
// parsed and must hit the cache.
func (s Source) parse() (*netlist.Circuit, error) {
	switch {
	case s.Bench != "":
		return bench.ParseString(s.Bench)
	case s.Path != "":
		switch strings.ToLower(filepath.Ext(s.Path)) {
		case ".v", ".verilog":
			return verilog.ParseFile(s.Path)
		default:
			return bench.ParseFile(s.Path)
		}
	case s.Profile != "":
		return gen.ByName(s.Profile)
	}
	return nil, fmt.Errorf("circuitio: empty source")
}

// ErrNotCached reports a hash-only Source whose circuit is not resident.
var ErrNotCached = fmt.Errorf("circuitio: circuit not cached")

// EstimateBytes approximates a finalized Circuit's resident size: the Node
// structs, both CSR edge arrays with their per-node views, the dense side
// arrays (kinds, levels, topo order, observation data) and the name
// strings. It deliberately overestimates slightly — the cache bound is a
// memory-protection knob, not an accounting ledger.
func EstimateBytes(c *netlist.Circuit) int64 {
	const perNode = 200 // Node struct + dense side-array entries + map slot
	const perEdge = 16  // fanin + fanout CSR entries with index overhead
	size := int64(c.N()) * perNode
	edges := 0
	for id := 0; id < c.N(); id++ {
		edges += len(c.Node(netlist.ID(id)).Fanin)
	}
	size += int64(edges) * 2 * perEdge
	for id := 0; id < c.N(); id++ {
		size += int64(2 * len(c.Node(netlist.ID(id)).Name))
	}
	return size
}

// Stats is a point-in-time cache observation.
type Stats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Cache is a content-addressed, byte-bounded, LRU circuit cache with
// single-flight parsing. The zero value is not usable; construct with New.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[string]*list.Element // content hash -> element
	aliases  map[string]string        // alias key -> content hash
	lru      *list.List               // front = most recent
	inflight map[string]*call         // alias key -> pending parse
	stats    Stats
}

type entry struct {
	hash    string
	circuit *netlist.Circuit
	size    int64
	aliases []string
}

type call struct {
	done chan struct{}
	c    *netlist.Circuit
	err  error
}

// New returns a cache bounded to approximately maxBytes of resident circuit
// data (0 means a 256 MiB default). A single circuit larger than the bound
// is still served — and cached alone — rather than refused; the bound
// protects the steady state, not the single request.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	return &Cache{
		maxBytes: maxBytes,
		entries:  map[string]*list.Element{},
		aliases:  map[string]string{},
		lru:      list.New(),
		inflight: map[string]*call{},
	}
}

// Load resolves src through the cache, parsing at most once per distinct
// content no matter how many goroutines ask concurrently. The returned
// Circuit is immutable and shared; callers must not retain assumptions
// about residency (it may be evicted after return, which only affects
// future hash-only lookups).
func (cc *Cache) Load(src Source) (*netlist.Circuit, error) {
	if err := src.Validate(); err != nil {
		return nil, err
	}
	if src.Hash != "" {
		if c, ok := cc.Get(src.Hash); ok {
			return c, nil
		}
		return nil, fmt.Errorf("%w: hash %s (re-send the full source)", ErrNotCached, src.Hash)
	}
	alias, err := src.aliasKey()
	if err != nil {
		return nil, err
	}
	//serlint:allow deferunlock single-flight gate: the lock is intentionally released around the parse (and before waiting on a peer's in-flight parse) and retaken to publish; every critical section is a handful of panic-free map/list operations
	cc.mu.Lock()
	if hash, ok := cc.aliases[alias]; ok {
		if el, ok := cc.entries[hash]; ok {
			cc.lru.MoveToFront(el)
			cc.stats.Hits++
			c := el.Value.(*entry).circuit
			cc.mu.Unlock()
			return c, nil
		}
		// Alias points at an evicted entry; drop it and re-parse.
		delete(cc.aliases, alias)
	}
	if fl, ok := cc.inflight[alias]; ok {
		cc.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, fl.err
		}
		return fl.c, nil
	}
	fl := &call{done: make(chan struct{})}
	cc.inflight[alias] = fl
	cc.stats.Misses++
	cc.mu.Unlock()

	fl.c, fl.err = src.parse()
	close(fl.done)

	cc.mu.Lock()
	defer cc.mu.Unlock()
	delete(cc.inflight, alias)
	if fl.err == nil {
		cc.insertLocked(fl.c, alias)
	}
	return fl.c, fl.err
}

// Get returns the resident circuit with the given content hash, if any.
func (cc *Cache) Get(hash string) (*netlist.Circuit, bool) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if el, ok := cc.entries[hash]; ok {
		cc.lru.MoveToFront(el)
		cc.stats.Hits++
		return el.Value.(*entry).circuit, true
	}
	cc.stats.Misses++
	return nil, false
}

// Put inserts an already-parsed circuit (e.g. one built programmatically)
// and returns its content hash.
func (cc *Cache) Put(c *netlist.Circuit) string {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.insertLocked(c, "")
}

// insertLocked adds the circuit under its content hash, records the alias,
// and evicts LRU entries until the byte bound holds again.
func (cc *Cache) insertLocked(c *netlist.Circuit, alias string) string {
	hash := c.ContentHash()
	if el, ok := cc.entries[hash]; ok {
		// Same content arrived through a new alias; keep the resident copy.
		e := el.Value.(*entry)
		if alias != "" {
			cc.aliases[alias] = hash
			e.aliases = append(e.aliases, alias)
		}
		cc.lru.MoveToFront(el)
		return hash
	}
	e := &entry{hash: hash, circuit: c, size: EstimateBytes(c)}
	if alias != "" {
		e.aliases = append(e.aliases, alias)
		cc.aliases[alias] = hash
	}
	cc.entries[hash] = cc.lru.PushFront(e)
	cc.bytes += e.size
	for cc.bytes > cc.maxBytes && cc.lru.Len() > 1 {
		cc.evictOldestLocked()
	}
	return hash
}

func (cc *Cache) evictOldestLocked() {
	el := cc.lru.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	cc.lru.Remove(el)
	delete(cc.entries, e.hash)
	for _, a := range e.aliases {
		delete(cc.aliases, a)
	}
	cc.bytes -= e.size
	cc.stats.Evictions++
}

// Stats returns a snapshot of the cache counters.
func (cc *Cache) Stats() Stats {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	s := cc.stats
	s.Entries = cc.lru.Len()
	s.Bytes = cc.bytes
	s.MaxBytes = cc.maxBytes
	return s
}

// Default is the process-wide cache used by the package-level Load — the
// CLIs' shared parse-once path.
var Default = New(0)

// Load resolves src through the process-wide Default cache.
func Load(src Source) (*netlist.Circuit, error) { return Default.Load(src) }
