// The resilience acceptance suite: a sweep killed at a deterministic but
// seed-randomized batch/word boundary and resumed from its checkpoint must
// produce a Report byte-identical to an uninterrupted run — on every engine,
// at worker counts 1/4/max, at frames 1/4 — and the final checkpoint file
// (done ranges, IEEE-754 value bits, integer counters) must match an
// uninterrupted checkpointed run byte for byte.

package faultinject_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	sersim "repro"
	"repro/internal/bench"
	"repro/internal/faultinject"
	"repro/internal/gen"
	"repro/internal/resume"
)

// bigCirc is large enough (PIs+FFs+gates = 194 nodes) that every site-major
// engine has several batch boundaries (epp-scalar chunks 64 sites) and the
// injector's trigger always lands strictly mid-sweep.
var bigCirc = gen.MustRandom(gen.Params{
	Name: "fi-seq", Seed: 0xfa0107, PIs: 8, POs: 4, FFs: 6, Gates: 180,
})

// loadC17 parses the small combinational fixture used for the exact engines,
// whose per-site cost scales with 2^support (enum) or BDD size (bdd).
func loadC17(t *testing.T) *sersim.Circuit {
	t.Helper()
	c, err := bench.ParseFile("../../testdata/c17.bench")
	if err != nil {
		t.Fatalf("parse c17: %v", err)
	}
	return c
}

type fiCase struct {
	engine  string
	frames  int
	workers int
}

func (tc fiCase) name() string {
	return fmt.Sprintf("%s_f%d_w%d", tc.engine, tc.frames, tc.workers)
}

func (tc fiCase) circuit(t *testing.T) *sersim.Circuit {
	if tc.engine == "enum" || tc.engine == "bdd" {
		return loadC17(t)
	}
	return bigCirc
}

// opts is the case's full run configuration; baseline, interrupted and
// resumed runs all start from it so only the checkpoint/injector differ.
func (tc fiCase) opts() []sersim.Option {
	opts := []sersim.Option{
		sersim.WithEngine(tc.engine),
		sersim.WithWorkers(tc.workers),
		sersim.WithSeed(99),
	}
	if tc.frames > 1 {
		opts = append(opts, sersim.WithFrames(tc.frames))
	}
	if tc.engine == "monte-carlo" {
		opts = append(opts, sersim.WithVectors(512))
	}
	return opts
}

// acceptanceMatrix is the full engine × frames × workers grid: the exact
// engines reject Frames > 1, every other combination is exercised.
func acceptanceMatrix() []fiCase {
	var cs []fiCase
	for _, eng := range []string{"epp-batch", "epp-scalar", "monte-carlo"} {
		for _, frames := range []int{1, 4} {
			for _, workers := range []int{1, 4, 0} {
				cs = append(cs, fiCase{eng, frames, workers})
			}
		}
	}
	for _, eng := range []string{"enum", "bdd"} {
		for _, workers := range []int{1, 4, 0} {
			cs = append(cs, fiCase{eng, 1, workers})
		}
	}
	return cs
}

// encodeReport serializes a Report with every float as its IEEE-754 bit
// pattern, so equality of encodings is bit-exactness, not approximate
// agreement.
func encodeReport(r *sersim.Report) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s|%v|%s|%016x\n", r.Circuit, r.Method, r.Engine, math.Float64bits(r.TotalFIT))
	for _, n := range r.Nodes {
		fmt.Fprintf(&b, "%d|%s|%016x|%016x|%016x|%016x\n", n.ID, n.Name,
			math.Float64bits(n.RateFIT), math.Float64bits(n.PLatched),
			math.Float64bits(n.PSensitized), math.Float64bits(n.SERFIT))
	}
	return b.Bytes()
}

// TestPanicKillResumeByteExact is the headline acceptance criterion: kill
// the sweep with an injected worker/callback panic at a randomized boundary,
// resume from the checkpoint, and require the result — and the final
// checkpoint itself — to be byte-identical to never having been killed.
func TestPanicKillResumeByteExact(t *testing.T) {
	for i, tc := range acceptanceMatrix() {
		t.Run(tc.name(), func(t *testing.T) {
			c := tc.circuit(t)
			ctx := context.Background()
			baseline, err := sersim.Run(ctx, c, tc.opts()...)
			if err != nil {
				t.Fatalf("baseline run: %v", err)
			}

			dir := t.TempDir()
			ck := filepath.Join(dir, "ck.json")
			inj := faultinject.New(faultinject.Panic, uint64(1000+i))
			_, err = sersim.Run(ctx, c, append(tc.opts(),
				sersim.WithCheckpoint(ck, 0),
				sersim.WithProgress(inj.Progress()))...)
			if !inj.Fired() {
				t.Fatalf("injector never fired (run returned %v)", err)
			}
			var spe *sersim.SweepPanicError
			if !errors.As(err, &spe) {
				t.Fatalf("interrupted run returned %T (%v), want *SweepPanicError", err, err)
			}
			if spe.Engine != tc.engine {
				t.Errorf("panic attributed to engine %q, want %q", spe.Engine, tc.engine)
			}
			if _, ok := spe.Value.(faultinject.Injected); !ok {
				t.Errorf("recovered panic value is %T, want faultinject.Injected", spe.Value)
			}
			if _, err := os.Stat(ck); err != nil {
				t.Fatalf("no checkpoint survived the injected panic: %v", err)
			}

			resumed, err := sersim.Run(ctx, c, append(tc.opts(), sersim.WithCheckpoint(ck, 0))...)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if !bytes.Equal(encodeReport(baseline), encodeReport(resumed)) {
				t.Fatal("resumed report is not byte-identical to the uninterrupted baseline")
			}

			// The checkpoint left behind by kill+resume must equal the one an
			// uninterrupted checkpointed run writes: same done ranges, same
			// value bits, same integer counters.
			ck2 := filepath.Join(dir, "ck2.json")
			if _, err := sersim.Run(ctx, c, append(tc.opts(), sersim.WithCheckpoint(ck2, 0))...); err != nil {
				t.Fatalf("uninterrupted checkpointed run: %v", err)
			}
			b1, err := os.ReadFile(ck)
			if err != nil {
				t.Fatal(err)
			}
			b2, err := os.ReadFile(ck2)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1, b2) {
				t.Fatal("final checkpoint after kill+resume differs from an uninterrupted run's checkpoint")
			}
		})
	}
}

// TestCancelResumeByteExact kills the sweep by cancelling its context at a
// randomized boundary instead of panicking; the committed prefix must resume
// to a byte-identical result.
func TestCancelResumeByteExact(t *testing.T) {
	cs := []fiCase{
		{"epp-batch", 1, 4},
		{"epp-scalar", 4, 2},
		{"monte-carlo", 1, 4},
		{"enum", 1, 2},
	}
	for i, tc := range cs {
		t.Run(tc.name(), func(t *testing.T) {
			c := tc.circuit(t)
			baseline, err := sersim.Run(context.Background(), c, tc.opts()...)
			if err != nil {
				t.Fatalf("baseline run: %v", err)
			}

			ck := filepath.Join(t.TempDir(), "ck.json")
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			inj := faultinject.New(faultinject.Cancel, uint64(2000+i))
			inj.SetCancel(cancel)
			_, err = sersim.Run(ctx, c, append(tc.opts(),
				sersim.WithCheckpoint(ck, 0),
				sersim.WithProgress(inj.Progress()))...)
			if !inj.Fired() {
				t.Fatalf("injector never fired (run returned %v)", err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled run returned %v, want context.Canceled", err)
			}
			var perr *sersim.PartialError
			if !errors.As(err, &perr) {
				t.Fatalf("cancelled run returned %T, want *PartialError", err)
			}
			if perr.Done <= 0 || perr.Done > perr.Total {
				t.Fatalf("PartialError reports %d/%d done", perr.Done, perr.Total)
			}

			resumed, err := sersim.Run(context.Background(), c, append(tc.opts(), sersim.WithCheckpoint(ck, 0))...)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if !bytes.Equal(encodeReport(baseline), encodeReport(resumed)) {
				t.Fatal("resumed report is not byte-identical to the uninterrupted baseline")
			}
		})
	}
}

// TestAbortFlushWithLazyCadence: with a checkpoint interval far longer than
// the sweep, nothing hits disk on cadence — durability of an interrupted run
// rests entirely on the abort-path flush (the site-major drivers' final
// Flush, the word-major kernels' OnAbort snapshot). A cancelled run must
// still leave its committed prefix in the file, and resuming from that file
// must reproduce the baseline byte for byte.
func TestAbortFlushWithLazyCadence(t *testing.T) {
	const lazy = time.Hour
	cs := []fiCase{
		{"epp-batch", 1, 4},
		{"monte-carlo", 1, 4},
	}
	for i, tc := range cs {
		t.Run(tc.name(), func(t *testing.T) {
			c := tc.circuit(t)
			baseline, err := sersim.Run(context.Background(), c, tc.opts()...)
			if err != nil {
				t.Fatalf("baseline run: %v", err)
			}

			ck := filepath.Join(t.TempDir(), "ck.json")
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			inj := faultinject.New(faultinject.Cancel, uint64(5000+i))
			inj.SetCancel(cancel)
			_, err = sersim.Run(ctx, c, append(tc.opts(),
				sersim.WithCheckpoint(ck, lazy),
				sersim.WithProgress(inj.Progress()))...)
			if !inj.Fired() {
				t.Fatalf("injector never fired (run returned %v)", err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled run returned %v, want context.Canceled", err)
			}
			f, err := resume.Load(ck)
			if err != nil {
				t.Fatalf("load checkpoint: %v", err)
			}
			if f == nil {
				t.Fatal("aborted run left no checkpoint despite committed work")
			}
			done := 0
			for _, r := range f.Done {
				done += r.Hi - r.Lo
			}
			if done <= 0 || done >= f.Units {
				t.Fatalf("abort flush recorded %d/%d units, want a strict mid-sweep prefix", done, f.Units)
			}

			resumed, err := sersim.Run(context.Background(), c, append(tc.opts(), sersim.WithCheckpoint(ck, lazy))...)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if !bytes.Equal(encodeReport(baseline), encodeReport(resumed)) {
				t.Fatal("resumed report is not byte-identical to the uninterrupted baseline")
			}
		})
	}
}

// TestStallTimeoutResume stalls a worker past the run's deadline: the run
// must stop with a DeadlineExceeded-wrapping PartialError, and a later
// unhurried run must resume the committed work to the exact baseline result.
func TestStallTimeoutResume(t *testing.T) {
	cs := []fiCase{
		{"epp-batch", 1, 4},
		{"monte-carlo", 1, 4},
	}
	for i, tc := range cs {
		t.Run(tc.name(), func(t *testing.T) {
			c := tc.circuit(t)
			baseline, err := sersim.Run(context.Background(), c, tc.opts()...)
			if err != nil {
				t.Fatalf("baseline run: %v", err)
			}

			ck := filepath.Join(t.TempDir(), "ck.json")
			inj := faultinject.New(faultinject.Stall, uint64(3000+i))
			inj.SetStall(600 * time.Millisecond)
			_, err = sersim.Run(context.Background(), c, append(tc.opts(),
				sersim.WithTimeout(150*time.Millisecond),
				sersim.WithCheckpoint(ck, 0),
				sersim.WithProgress(inj.Progress()))...)
			if !inj.Fired() {
				t.Fatalf("injector never fired (run returned %v)", err)
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("stalled run returned %v, want context.DeadlineExceeded", err)
			}
			var perr *sersim.PartialError
			if !errors.As(err, &perr) {
				t.Fatalf("stalled run returned %T, want *PartialError", err)
			}

			resumed, err := sersim.Run(context.Background(), c, append(tc.opts(), sersim.WithCheckpoint(ck, 0))...)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if !bytes.Equal(encodeReport(baseline), encodeReport(resumed)) {
				t.Fatal("resumed report is not byte-identical to the uninterrupted baseline")
			}
		})
	}
}

// TestBudgetConvergence re-runs a node-budgeted, checkpointed request until
// completion: every intermediate stop must be an ErrSweepBudget-wrapping
// PartialError and the converged result must equal the unbudgeted baseline
// byte for byte.
func TestBudgetConvergence(t *testing.T) {
	cs := []fiCase{
		{"epp-batch", 1, 0},
		{"epp-scalar", 4, 1},
		{"monte-carlo", 1, 4},
	}
	for _, tc := range cs {
		t.Run(tc.name(), func(t *testing.T) {
			c := tc.circuit(t)
			ctx := context.Background()
			baseline, err := sersim.Run(ctx, c, tc.opts()...)
			if err != nil {
				t.Fatalf("baseline run: %v", err)
			}

			ck := filepath.Join(t.TempDir(), "ck.json")
			budget := c.N() / 3
			opts := append(tc.opts(),
				sersim.WithMaxSweepNodes(budget),
				sersim.WithCheckpoint(ck, 0))
			var final *sersim.Report
			for step := 0; step < 20; step++ {
				rep, err := sersim.Run(ctx, c, opts...)
				if err == nil {
					final = rep
					break
				}
				if !errors.Is(err, sersim.ErrSweepBudget) {
					t.Fatalf("budgeted step %d returned %v, want ErrSweepBudget", step, err)
				}
			}
			if final == nil {
				t.Fatalf("budgeted runs (budget %d of %d units) did not converge in 20 steps", budget, c.N())
			}
			if !bytes.Equal(encodeReport(baseline), encodeReport(final)) {
				t.Fatal("converged budgeted report is not byte-identical to the unbudgeted baseline")
			}
		})
	}
}
