// Package faultinject deterministically breaks running sweeps, so the
// resilience layer can be tested against its strongest claim: a sweep killed
// at an arbitrary batch or word boundary and resumed from its checkpoint
// must reproduce an uninterrupted run byte for byte.
//
// An Injector piggybacks on the engines' progress callback (WithProgress /
// Request.OnProgress), which every engine invokes at each completed unit
// boundary — site batches for the analytic and exact engines, 64-vector
// words for the monte-carlo engine. The injector picks one boundary from a
// seed (deterministic per seed, randomized across seeds) and fires exactly
// once when progress crosses it:
//
//   - Panic panics inside the callback, exercising the sweep drivers' panic
//     isolation (the run must return a *engine.SweepPanicError, not crash).
//   - Cancel cancels the run's context, exercising orderly cancellation.
//   - Stall sleeps inside the callback, exercising WithTimeout deadlines.
//
// The trigger fraction is drawn from [0.15, 0.6] of the sweep's total units:
// late enough that real work has completed (and, with a checkpoint, been
// committed), early enough that every engine still has at least one
// uncompleted boundary after it, so the fault always lands mid-sweep.
package faultinject

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Kind selects what the injector does at the chosen boundary.
type Kind int

const (
	// Panic panics inside the progress callback with an Injected value.
	Panic Kind = iota
	// Cancel cancels the context registered with SetCancel.
	Cancel
	// Stall sleeps for the duration registered with SetStall.
	Stall
)

// String names the kind for test output.
func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Cancel:
		return "cancel"
	case Stall:
		return "stall"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Injected is the panic value a Kind-Panic injector throws, carrying the
// progress boundary it fired at. Tests assert the recovered
// SweepPanicError.Value has this type to prove the surfaced panic is the
// injected one and not collateral damage.
type Injected struct {
	Done, Total int
}

// String describes the injection point.
func (v Injected) String() string {
	return fmt.Sprintf("faultinject: injected panic at %d/%d units", v.Done, v.Total)
}

// Injector fires one fault at a seeded progress boundary. Construct with
// New, wire Progress into the run under test (and SetCancel/SetStall for
// those kinds), then assert with Fired/FiredAt.
type Injector struct {
	kind   Kind
	frac   float64
	cancel context.CancelFunc
	stall  time.Duration

	fired atomic.Bool
	mu    sync.Mutex
	done  int
	total int
}

// New returns an injector of the given kind whose trigger boundary is
// derived deterministically from seed: the first progress report at or past
// a seeded fraction in [0.15, 0.6] of the total fires the fault.
func New(kind Kind, seed uint64) *Injector {
	u := float64(splitmix64(seed)>>11) / float64(uint64(1)<<53)
	return &Injector{kind: kind, frac: 0.15 + 0.45*u}
}

// SetCancel registers the context cancel function a Kind-Cancel injector
// invokes when it fires.
func (in *Injector) SetCancel(cancel context.CancelFunc) { in.cancel = cancel }

// SetStall registers how long a Kind-Stall injector sleeps when it fires.
func (in *Injector) SetStall(d time.Duration) { in.stall = d }

// Progress returns the callback to register as the run's progress observer.
// It fires the fault on the first report with done in [trigger, total) —
// strictly mid-sweep — and is inert afterwards.
func (in *Injector) Progress() func(done, total int) {
	return func(done, total int) {
		if in.fired.Load() || done <= 0 || done >= total {
			return
		}
		if float64(done) < in.frac*float64(total) {
			return
		}
		if !in.fired.CompareAndSwap(false, true) {
			return
		}
		//serlint:allow deferunlock the unlock must precede the injected stall/panic below, or FiredAt readers would block for the whole stall; the critical section is a panic-free two-field write
		in.mu.Lock()
		in.done, in.total = done, total
		in.mu.Unlock()
		switch in.kind {
		case Panic:
			panic(Injected{Done: done, Total: total})
		case Cancel:
			in.cancel()
		case Stall:
			time.Sleep(in.stall)
		}
	}
}

// Fired reports whether the fault has fired.
func (in *Injector) Fired() bool { return in.fired.Load() }

// FiredAt returns the progress boundary the fault fired at (zero values if
// it has not fired).
func (in *Injector) FiredAt() (done, total int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.done, in.total
}

// splitmix64 is the standard 64-bit finalizing mix, used to turn a test's
// case seed into a well-distributed trigger fraction.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
