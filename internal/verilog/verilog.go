// Package verilog reads and writes the structural-Verilog netlist subset
// that gate-level EDA flows exchange: one module per file, scalar wire/input/
// output declarations, and primitive gate instantiations
// (and/nand/or/nor/xor/xnor/not/buf) plus a DFF cell instance. It provides a
// second interchange format alongside the .bench reader so netlists from
// synthesis tools can be analyzed directly.
//
// Accepted grammar (a strict subset of Verilog-2001 structural netlists):
//
//	module name (port, port, ...);
//	  input a, b;
//	  output y;
//	  wire w1, w2;
//	  and g1 (y, a, b);        // output first, then inputs
//	  not g2 (w1, a);
//	  dff  r1 (q, d);          // behavioral cell: Q first, D second
//	endmodule
//
// Comments (// and /* */) are stripped. The parser is hand written and
// reports errors with line numbers.
package verilog

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// ParseError describes a syntax or semantic error in Verilog source.
type ParseError struct {
	File string
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

// gateNames maps Verilog primitive names to gate kinds.
var gateNames = map[string]logic.Kind{
	"and":  logic.And,
	"nand": logic.Nand,
	"or":   logic.Or,
	"nor":  logic.Nor,
	"xor":  logic.Xor,
	"xnor": logic.Xnor,
	"not":  logic.Not,
	"buf":  logic.Buf,
	"dff":  logic.DFF,
}

type token struct {
	text string
	line int
}

// Parse reads one structural module from r.
func Parse(r io.Reader) (*netlist.Circuit, error) {
	return parse(r, "<input>")
}

// ParseString parses Verilog source held in a string.
func ParseString(src string) (*netlist.Circuit, error) {
	return Parse(strings.NewReader(src))
}

// ParseFile parses the Verilog file at path.
func ParseFile(path string) (*netlist.Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f, path)
}

func parse(r io.Reader, file string) (*netlist.Circuit, error) {
	toks, err := tokenize(r, file)
	if err != nil {
		return nil, err
	}
	p := &parser{file: file, toks: toks}
	return p.module()
}

// tokenize splits the source into identifier/punctuation tokens, stripping
// comments.
func tokenize(r io.Reader, file string) ([]token, error) {
	var toks []token
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	inBlock := false
	for sc.Scan() {
		line++
		s := sc.Text()
		for len(s) > 0 {
			if inBlock {
				end := strings.Index(s, "*/")
				if end < 0 {
					s = ""
					continue
				}
				s = s[end+2:]
				inBlock = false
				continue
			}
			if i := strings.Index(s, "/*"); i >= 0 {
				head := s[:i]
				emitTokens(head, line, &toks)
				s = s[i+2:]
				inBlock = true
				continue
			}
			if i := strings.Index(s, "//"); i >= 0 {
				s = s[:i]
			}
			emitTokens(s, line, &toks)
			s = ""
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if inBlock {
		return nil, &ParseError{File: file, Line: line, Msg: "unterminated block comment"}
	}
	return toks, nil
}

func emitTokens(s string, line int, toks *[]token) {
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '(' || c == ')' || c == ',' || c == ';':
			*toks = append(*toks, token{string(c), line})
			i++
		default:
			j := i
			for j < len(s) && !strings.ContainsRune(" \t\r(),;", rune(s[j])) {
				j++
			}
			*toks = append(*toks, token{s[i:j], line})
			i = j
		}
	}
}

type parser struct {
	file string
	toks []token
	pos  int
}

func (p *parser) errf(line int, format string, args ...any) error {
	return &ParseError{File: p.file, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) peek() (token, bool) {
	if p.pos >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *parser) next() (token, error) {
	t, ok := p.peek()
	if !ok {
		last := 0
		if len(p.toks) > 0 {
			last = p.toks[len(p.toks)-1].line
		}
		return token{}, p.errf(last, "unexpected end of input")
	}
	p.pos++
	return t, nil
}

func (p *parser) expect(text string) (token, error) {
	t, err := p.next()
	if err != nil {
		return t, err
	}
	if t.text != text {
		return t, p.errf(t.line, "expected %q, got %q", text, t.text)
	}
	return t, nil
}

// identList parses "a, b, c ;" (returns names, consumes the terminator).
func (p *parser) identList() ([]token, error) {
	var out []token
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		if !identOK(t.text) {
			return nil, p.errf(t.line, "invalid identifier %q", t.text)
		}
		out = append(out, t)
		sep, err := p.next()
		if err != nil {
			return nil, err
		}
		switch sep.text {
		case ",":
			continue
		case ";":
			return out, nil
		default:
			return nil, p.errf(sep.line, "expected ',' or ';', got %q", sep.text)
		}
	}
}

func identOK(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == '$' || c == '[' || c == ']' || c == '.' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	// Keywords are not identifiers.
	switch s {
	case "module", "endmodule", "input", "output", "wire":
		return false
	}
	return true
}

type instance struct {
	kind logic.Kind
	name string
	args []token // output first
	line int
}

// module parses the single module and builds the circuit.
func (p *parser) module() (*netlist.Circuit, error) {
	if _, err := p.expect("module"); err != nil {
		return nil, err
	}
	nameTok, err := p.next()
	if err != nil {
		return nil, err
	}
	if !identOK(nameTok.text) {
		return nil, p.errf(nameTok.line, "invalid module name %q", nameTok.text)
	}
	// Port list: parenthesized names (ignored beyond syntax; direction comes
	// from the input/output declarations).
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		if t.text == ")" {
			break
		}
		if t.text == "," {
			continue
		}
		if !identOK(t.text) {
			return nil, p.errf(t.line, "invalid port %q", t.text)
		}
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}

	var inputs, outputs []token
	var insts []instance
	declared := map[string]int{} // name -> declaration line (wires + ports)

	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		switch t.text {
		case "endmodule":
			return p.build(nameTok.text, inputs, outputs, insts, declared)
		case "input":
			names, err := p.identList()
			if err != nil {
				return nil, err
			}
			inputs = append(inputs, names...)
			for _, n := range names {
				declared[n.text] = n.line
			}
		case "output":
			names, err := p.identList()
			if err != nil {
				return nil, err
			}
			outputs = append(outputs, names...)
			for _, n := range names {
				declared[n.text] = n.line
			}
		case "wire":
			names, err := p.identList()
			if err != nil {
				return nil, err
			}
			for _, n := range names {
				declared[n.text] = n.line
			}
		default:
			kind, ok := gateNames[t.text]
			if !ok {
				return nil, p.errf(t.line, "unknown statement or cell %q", t.text)
			}
			inst, err := p.instance(kind, t.line)
			if err != nil {
				return nil, err
			}
			insts = append(insts, inst)
		}
	}
}

// instance parses "name (out, in, ...);" after the cell keyword.
func (p *parser) instance(kind logic.Kind, line int) (instance, error) {
	nameTok, err := p.next()
	if err != nil {
		return instance{}, err
	}
	if !identOK(nameTok.text) {
		return instance{}, p.errf(nameTok.line, "invalid instance name %q", nameTok.text)
	}
	if _, err := p.expect("("); err != nil {
		return instance{}, err
	}
	var args []token
	for {
		t, err := p.next()
		if err != nil {
			return instance{}, err
		}
		if t.text == ")" {
			break
		}
		if t.text == "," {
			continue
		}
		if !identOK(t.text) {
			return instance{}, p.errf(t.line, "invalid net %q", t.text)
		}
		args = append(args, t)
	}
	if _, err := p.expect(";"); err != nil {
		return instance{}, err
	}
	if len(args) < 2 {
		return instance{}, p.errf(line, "cell %q needs an output and at least one input", nameTok.text)
	}
	if !kind.FaninOK(len(args) - 1) {
		return instance{}, p.errf(line, "%v cell %q with %d inputs", kind, nameTok.text, len(args)-1)
	}
	return instance{kind: kind, name: nameTok.text, args: args, line: line}, nil
}

// build resolves nets and constructs the circuit.
func (p *parser) build(name string, inputs, outputs []token, insts []instance, declared map[string]int) (*netlist.Circuit, error) {
	ids := make(map[string]netlist.ID)
	var nodes []netlist.Node
	var pis, pos, ffs []netlist.ID

	for _, in := range inputs {
		if _, dup := ids[in.text]; dup {
			return nil, p.errf(in.line, "input %q declared twice", in.text)
		}
		id := netlist.ID(len(nodes))
		nodes = append(nodes, netlist.Node{ID: id, Name: in.text, Kind: logic.Input})
		ids[in.text] = id
		pis = append(pis, id)
	}
	// Driven nets: one node per instance output.
	for _, inst := range insts {
		out := inst.args[0]
		if _, dup := ids[out.text]; dup {
			return nil, p.errf(out.line, "net %q has multiple drivers", out.text)
		}
		if _, ok := declared[out.text]; !ok {
			return nil, p.errf(out.line, "net %q not declared", out.text)
		}
		id := netlist.ID(len(nodes))
		nodes = append(nodes, netlist.Node{ID: id, Name: out.text, Kind: inst.kind})
		ids[out.text] = id
		if inst.kind == logic.DFF {
			ffs = append(ffs, id)
		}
	}
	// Resolve fanins.
	for _, inst := range insts {
		id := ids[inst.args[0].text]
		fanin := make([]netlist.ID, 0, len(inst.args)-1)
		for _, a := range inst.args[1:] {
			f, ok := ids[a.text]
			if !ok {
				if _, wasDeclared := declared[a.text]; wasDeclared {
					return nil, p.errf(a.line, "net %q is never driven", a.text)
				}
				return nil, p.errf(a.line, "net %q not declared", a.text)
			}
			fanin = append(fanin, f)
		}
		nodes[id].Fanin = fanin
	}
	// Primary outputs.
	for _, out := range outputs {
		id, ok := ids[out.text]
		if !ok {
			return nil, p.errf(out.line, "output %q is never driven", out.text)
		}
		if !nodes[id].IsPO {
			nodes[id].IsPO = true
			pos = append(pos, id)
		}
	}
	return netlist.New(name, nodes, pis, pos, ffs)
}
