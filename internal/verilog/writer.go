// Structural Verilog serialization: Write emits a Circuit as a module
// accepted by Parse.

package verilog

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// kindCell maps gate kinds to the Verilog cell names this package emits.
var kindCell = map[logic.Kind]string{
	logic.And:  "and",
	logic.Nand: "nand",
	logic.Or:   "or",
	logic.Nor:  "nor",
	logic.Xor:  "xor",
	logic.Xnor: "xnor",
	logic.Not:  "not",
	logic.Buf:  "buf",
	logic.DFF:  "dff",
}

// Write emits the circuit as a structural Verilog module in the subset this
// package parses; the output round-trips through Parse to an isomorphic
// circuit.
func Write(w io.Writer, c *netlist.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "// %s\n", c.Stats())
	fmt.Fprintf(bw, "module %s (", sanitize(c.Name))
	first := true
	port := func(id netlist.ID) {
		if !first {
			bw.WriteString(", ")
		}
		first = false
		bw.WriteString(c.NameOf(id))
	}
	for _, id := range c.PIs {
		port(id)
	}
	for _, id := range c.POs {
		port(id)
	}
	bw.WriteString(");\n")

	for _, id := range c.PIs {
		fmt.Fprintf(bw, "  input %s;\n", c.NameOf(id))
	}
	for _, id := range c.POs {
		fmt.Fprintf(bw, "  output %s;\n", c.NameOf(id))
	}
	for i := range c.Nodes {
		n := &c.Nodes[i]
		if n.Kind == logic.Input || n.IsPO {
			continue
		}
		fmt.Fprintf(bw, "  wire %s;\n", n.Name)
	}
	for i := range c.Nodes {
		n := &c.Nodes[i]
		cell, ok := kindCell[n.Kind]
		if !ok {
			if n.Kind == logic.Input {
				continue
			}
			return fmt.Errorf("verilog: cannot serialize node %q of kind %v", n.Name, n.Kind)
		}
		fmt.Fprintf(bw, "  %s u%d (%s", cell, i, n.Name)
		for _, f := range n.Fanin {
			fmt.Fprintf(bw, ", %s", c.NameOf(f))
		}
		bw.WriteString(");\n")
	}
	bw.WriteString("endmodule\n")
	return bw.Flush()
}

// WriteFile writes the circuit to path as structural Verilog.
func WriteFile(path string, c *netlist.Circuit) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sanitize makes a circuit name a legal Verilog identifier.
func sanitize(s string) string {
	if s == "" {
		return "top"
	}
	b := []byte(s)
	for i, c := range b {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9')
		if !ok {
			b[i] = '_'
		}
	}
	if b[0] >= '0' && b[0] <= '9' {
		return "m" + string(b)
	}
	return string(b)
}
