package verilog

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/logic"
)

const sampleSrc = `
// 2-bit comparator with registered output
module cmp (a0, b0, a1, b1, eq);
  input a0, b0;
  input a1, b1;
  output eq;
  wire x0, x1, d;
  xnor g0 (x0, a0, b0);
  xnor g1 (x1, a1, b1);
  and  g2 (eq, x0, x1);
  /* registered copy
     of the result */
  wire q;
  buf  g3 (d, eq);
  dff  r0 (q, d);
endmodule
`

func TestParseSample(t *testing.T) {
	c, err := ParseString(sampleSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if c.Name != "cmp" {
		t.Errorf("name = %q", c.Name)
	}
	if len(c.PIs) != 4 || len(c.POs) != 1 || len(c.FFs) != 1 {
		t.Fatalf("interface: %d/%d/%d", len(c.PIs), len(c.POs), len(c.FFs))
	}
	eq := c.ByName("eq")
	if c.Node(eq).Kind != logic.And || !c.Node(eq).IsPO {
		t.Errorf("eq = %+v", c.Node(eq))
	}
	q := c.ByName("q")
	if c.Node(q).Kind != logic.DFF || c.NameOf(c.Node(q).Fanin[0]) != "d" {
		t.Errorf("q = %+v", c.Node(q))
	}
}

func TestCommentsStripped(t *testing.T) {
	src := "module m (a, y); // ports\n input a; /* inline */ output y;\n not g (y, a);\nendmodule\n"
	c, err := ParseString(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if c.Node(c.ByName("y")).Kind != logic.Not {
		t.Error("inverter lost")
	}
}

func TestMultiLineBlockComment(t *testing.T) {
	src := "module m (a, y);\n input a;\n output y;\n/* line1\nline2\nline3 */ buf g (y, a);\nendmodule\n"
	if _, err := ParseString(src); err != nil {
		t.Fatalf("Parse: %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	c := gen.MustRandom(gen.Params{Name: "rt", Seed: 4, PIs: 6, POs: 3, FFs: 3, Gates: 60})
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatalf("Write: %v", err)
	}
	c2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-Parse: %v", err)
	}
	if c2.N() != c.N() {
		t.Fatalf("round trip changed node count: %d -> %d", c.N(), c2.N())
	}
	for i := range c.Nodes {
		a, b := &c.Nodes[i], c2.Nodes[c2.ByName(c.Nodes[i].Name)]
		if a.Kind != b.Kind || len(a.Fanin) != len(b.Fanin) || a.IsPO != b.IsPO {
			t.Fatalf("node %s differs: %+v vs %+v", a.Name, a, b)
		}
		for j := range a.Fanin {
			if c.NameOf(a.Fanin[j]) != c2.NameOf(b.Fanin[j]) {
				t.Fatalf("node %s fanin %d differs", a.Name, j)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		frag string
	}{
		{"no-module", "input a;\n", `expected "module"`},
		{"bad-cell", "module m (a, y);\ninput a;\noutput y;\nfrob g (y, a);\nendmodule\n", "unknown statement or cell"},
		{"undeclared-out", "module m (a, y);\ninput a;\noutput y;\nnot g (w, a);\nendmodule\n", "not declared"},
		{"undriven-in", "module m (a, y);\ninput a;\noutput y;\nwire w;\nand g (y, a, w);\nendmodule\n", "never driven"},
		{"multi-driver", "module m (a, y);\ninput a;\noutput y;\nnot g1 (y, a);\nbuf g2 (y, a);\nendmodule\n", "multiple drivers"},
		{"undriven-output", "module m (a, y);\ninput a;\noutput y;\nwire w;\nnot g (w, a);\nendmodule\n", "never driven"},
		{"not-arity", "module m (a, b, y);\ninput a, b;\noutput y;\nnot g (y, a, b);\nendmodule\n", "NOT cell"},
		{"no-args", "module m (a, y);\ninput a;\noutput y;\nnot g ();\nendmodule\n", "needs an output"},
		{"eof", "module m (a, y);\ninput a;\n", "unexpected end of input"},
		{"unterminated-comment", "module m (a, y); /* oops\n", "unterminated block comment"},
		{"dup-input", "module m (a, y);\ninput a;\ninput a;\noutput y;\nbuf g (y, a);\nendmodule\n", "declared twice"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseString(c.src)
			if err == nil {
				t.Fatalf("no error for:\n%s", c.src)
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Fatalf("error %q does not contain %q", err, c.frag)
			}
		})
	}
}

func TestErrorLineNumbers(t *testing.T) {
	_, err := ParseString("module m (a, y);\ninput a;\noutput y;\nfrob g (y, a);\nendmodule\n")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 4 {
		t.Errorf("line = %d, want 4", pe.Line)
	}
}

func TestFileRoundTrip(t *testing.T) {
	c, err := ParseString(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/cmp.v"
	if err := WriteFile(path, c); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	c2, err := ParseFile(path)
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	if c2.N() != c.N() {
		t.Fatalf("file round trip changed node count: %d -> %d", c.N(), c2.N())
	}
	if _, err := ParseFile(t.TempDir() + "/missing.v"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"s953":   "s953",
		"9abc":   "m9abc",
		"a-b c":  "a_b_c",
		"":       "top",
		"good_1": "good_1",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriterRejectsUnsupportedKinds(t *testing.T) {
	// Tie cells are outside the emitted subset.
	srcOK := "module m (a, y);\ninput a;\noutput y;\nbuf g (y, a);\nendmodule\n"
	c, err := ParseString(srcOK)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatalf("plain circuit must serialize: %v", err)
	}
}
