package verilog

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse exercises the structural-Verilog parser with arbitrary input:
// no panics, and accepted modules must round-trip through the writer.
func FuzzParse(f *testing.F) {
	seeds := []string{
		sampleSrc,
		"module m (a, y);\ninput a;\noutput y;\nnot g (y, a);\nendmodule\n",
		"module m (a, y);\ninput a;\noutput y;\nwire w;\nbuf g1 (w, a);\nbuf g2 (y, w);\nendmodule\n",
		"module m (", "endmodule", "input a;", "/* unterminated",
		"module m (a, y); // c\ninput a;\noutput y;\ndff r (y, a);\nendmodule\n",
	}
	// Real fixture modules seed the mutator with complete valid netlists.
	files, err := filepath.Glob("../../testdata/*.v")
	if err != nil {
		f.Fatal(err)
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, string(data))
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseString(src)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if werr := Write(&buf, c); werr != nil {
			return
		}
		c2, rerr := Parse(&buf)
		if rerr != nil {
			t.Fatalf("accepted module did not round-trip: %v\ninput: %q\nemitted:\n%s",
				rerr, src, buf.String())
		}
		if c2.N() != c.N() {
			t.Fatalf("round trip changed node count %d -> %d for input %q", c.N(), c2.N(), src)
		}
	})
}
