// Package sched implements the site scheduler shared by the batched
// analysis kernels: it orders error sites by cone locality so that sites
// packed into one batch (one lane word, at most 64 sites) share most of
// their union cone.
//
// Both batched kernels sweep the union of their sites' forward cones once
// per batch — the EPP engine (core.BatchAnalyzer) propagates four-valued
// probability states through it, the Monte Carlo kernel (simulate.MCBatch)
// re-simulates faulty values through it — so the work per batch is
// proportional to |union cone|, not to the sum of the individual cone
// sizes. Packing sites whose cones overlap therefore reduces swept nodes
// per site directly. The heuristic is cheap and global: every node gets a
// 64-bit reachable-observation signature from one reverse CSR sweep
// (netlist.Circuit.ObsSignatures), and sites are sorted by
// (combinational level, signature, ID). Level-major order keeps a batch's
// union-cone members dense in the per-node scratch arrays, and the
// signature tie-break clusters sites feeding the same outputs, whose cones
// converge; on netlists whose node IDs do not already follow level order
// (anything parsed from a real .bench file) this also restores the
// locality that consecutive-ID packing only gets by accident.
//
// A Schedule is a pure reordering: it never changes which sites are
// analyzed or how, only which sites share a batch and in what sequence
// batches are claimed. The batched EPP kernel is packing-invariant by
// construction (per-lane arithmetic never reads companion lanes, and the
// per-output miss product is folded in canonical output-ID order), so
// routing a sweep through a Schedule changes no result bits; the Monte
// Carlo kernel's per-site detection counts are likewise independent of
// grouping. Schedules are immutable after construction and safe for
// concurrent use by any number of workers.
package sched

import (
	"sort"

	"repro/internal/netlist"
)

// Schedule is an ordering of all circuit nodes for an all-sites sweep.
// Order lists every node ID exactly once; batch k at width w is
// Order[k*w : min((k+1)*w, len(Order))].
type Schedule struct {
	Order []netlist.ID
}

// Len returns the number of scheduled sites (the circuit's node count).
func (s *Schedule) Len() int { return len(s.Order) }

// ConeLocality returns the cone-locality schedule of circuit c: all node
// IDs sorted by (combinational level, reachable-observation signature, ID).
// Within a level, sites that feed the same outputs — equal signatures,
// hence strongly overlapping cones — are packed into the same batches. The
// schedule depends only on the circuit structure and is fully
// deterministic.
func ConeLocality(c *netlist.Circuit) *Schedule {
	n := c.N()
	sig := c.ObsSignatures()
	levels := c.Levels()
	order := make([]netlist.ID, n)
	for i := range order {
		order[i] = netlist.ID(i)
	}
	sort.Slice(order, func(a, b int) bool {
		x, y := order[a], order[b]
		if levels[x] != levels[y] {
			return levels[x] < levels[y]
		}
		if sig[x] != sig[y] {
			return sig[x] < sig[y]
		}
		return x < y
	})
	return &Schedule{Order: order}
}
