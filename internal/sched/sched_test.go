package sched

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/netlist"
)

// TestConeLocalityIsPermutation: the schedule lists every node exactly once
// and Pos is its inverse.
func TestConeLocalityIsPermutation(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		c := gen.SmallRandomSequential(seed)
		s := ConeLocality(c)
		if s.Len() != c.N() {
			t.Fatalf("seed %d: Len = %d, want %d", seed, s.Len(), c.N())
		}
		seen := make([]bool, c.N())
		for i, id := range s.Order {
			if id < 0 || int(id) >= c.N() {
				t.Fatalf("seed %d: Order[%d] = %d out of range", seed, i, id)
			}
			if seen[id] {
				t.Fatalf("seed %d: node %d scheduled twice", seed, id)
			}
			seen[id] = true
		}
	}
}

// TestConeLocalityDeterministic: two computations agree element-wise (the
// schedule is a pure function of the circuit).
func TestConeLocalityDeterministic(t *testing.T) {
	c := gen.SmallRandomSequential(11)
	a, b := ConeLocality(c), ConeLocality(c)
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatalf("position %d: %d vs %d", i, a.Order[i], b.Order[i])
		}
	}
}

// TestConeLocalityGroupsSignatures: the schedule is level-major, and within
// a level sites with equal reachable-observation signatures form contiguous
// runs (that is the whole point of the ordering).
func TestConeLocalityGroupsSignatures(t *testing.T) {
	c := gen.SmallRandomSequential(23)
	s := ConeLocality(c)
	sig := c.ObsSignatures()
	levels := c.Levels()
	for i := 1; i < len(s.Order); i++ {
		p, q := s.Order[i-1], s.Order[i]
		if levels[p] > levels[q] {
			t.Fatalf("schedule not level-major at %d: level %d before %d", i, levels[p], levels[q])
		}
		if levels[p] == levels[q] && sig[p] > sig[q] {
			t.Fatalf("schedule not signature-sorted within level %d at %d: %#x > %#x",
				levels[p], i, sig[p], sig[q])
		}
		if levels[p] == levels[q] && sig[p] == sig[q] && p >= q {
			t.Fatalf("ID tie-break broken at %d: %d before %d", i, p, q)
		}
	}
}

// TestScheduleLen: the schedule covers the whole circuit.
func TestScheduleLen(t *testing.T) {
	c := gen.SmallRandomSequential(5)
	s := ConeLocality(c)
	if s.Len() != c.N() || len(s.Order) != c.N() {
		t.Fatalf("Len = %d, want %d", s.Len(), c.N())
	}
	var _ netlist.ID = s.Order[0] // the order is the packing API: plain IDs
}
