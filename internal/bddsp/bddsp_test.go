package bddsp

import (
	"math"
	"testing"

	"repro/internal/bdd"
	"repro/internal/bench"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/sigprob"
)

func mustParse(t *testing.T, src string) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSignalProbMatchesEnumeration: BDD-exact == enumeration-exact on small
// random circuits (both are exact, so they must agree to float precision).
func TestSignalProbMatchesEnumeration(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		c := gen.SmallRandom(seed + 400)
		want, err := exact.SignalProb(c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SignalProb(c, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < c.N(); id++ {
			if math.Abs(got[id]-want[id]) > 1e-12 {
				t.Fatalf("seed %d node %d: BDD %v, enumeration %v", seed, id, got[id], want[id])
			}
		}
	}
}

// TestPSensitizedMatchesEnumeration: same for propagation probabilities,
// including sequential circuits (FF boundaries).
func TestPSensitizedMatchesEnumeration(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		c := gen.SmallRandomSequential(seed + 500)
		for id := 0; id < c.N(); id += 3 {
			want, err := exact.PSensitized(c, netlist.ID(id))
			if err != nil {
				t.Fatal(err)
			}
			got, err := PSensitized(c, netlist.ID(id), nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("seed %d site %d: BDD %v, enumeration %v", seed, id, got, want)
			}
		}
	}
}

// TestWeightedPSensitized: the BDD path supports biased sources exactly.
func TestWeightedPSensitized(t *testing.T) {
	c := mustParse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")
	prob := make([]float64, c.N())
	prob[c.ByName("a")] = 0.5
	prob[c.ByName("b")] = 0.3
	got, err := PSensitized(c, c.ByName("a"), prob, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.3) > 1e-12 {
		t.Errorf("weighted BDD P_sens = %v, want 0.3", got)
	}
	want, err := exact.PSensitizedWeighted(c, c.ByName("a"), prob)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("BDD %v vs weighted enumeration %v", got, want)
	}
}

// TestBeyondEnumerationLimit: the whole point — exact answers on a circuit
// with more sources than the enumeration engine accepts (s953 has 45).
func TestBeyondEnumerationLimit(t *testing.T) {
	c, err := gen.ByName("s953")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Sources()) <= exact.MaxSupport {
		t.Fatalf("test premise broken: s953 has %d sources", len(c.Sources()))
	}
	if _, err := exact.SignalProb(c); err == nil {
		t.Fatal("enumeration unexpectedly accepted s953")
	}
	sp, err := SignalProb(c, nil, 1<<23)
	if err != nil {
		t.Skipf("BDD budget exceeded on this profile: %v", err)
	}
	// Cross-check against high-volume Monte Carlo.
	mc := sigprob.MonteCarlo(c, sigprob.Config{Vectors: 1 << 17, Seed: 3})
	worst := 0.0
	for id := 0; id < c.N(); id++ {
		if d := math.Abs(sp[id] - mc[id]); d > worst {
			worst = d
		}
	}
	t.Logf("s953 exact-BDD vs 131k-vector MC: worst |diff| = %.4f", worst)
	if worst > 0.02 {
		t.Errorf("BDD SP diverges from converged MC by %v", worst)
	}
}

// TestNodeLimitPropagates: a starved budget surfaces bdd.ErrNodeLimit.
func TestNodeLimitPropagates(t *testing.T) {
	c := gen.MustRandom(gen.Params{Name: "big", Seed: 3, PIs: 16, POs: 4, Gates: 400})
	if _, err := SignalProb(c, nil, 64); err != bdd.ErrNodeLimit {
		t.Errorf("expected ErrNodeLimit, got %v", err)
	}
}

// TestConstantsInCircuit: tie cells become BDD constants, not variables.
func TestConstantsInCircuit(t *testing.T) {
	b := netlist.NewBuilder("ties")
	in := b.Input("a")
	one := b.Const("one", true)
	y := b.And("y", in, one)
	b.MarkOutput(y)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sp, err := SignalProb(c, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sp[one] != 1 || sp[y] != 0.5 {
		t.Errorf("SP with ties: one=%v y=%v", sp[one], sp[y])
	}
}
