// Package bddsp computes exact signal probabilities and exact error
// propagation probabilities symbolically, by building ROBDDs for every net
// over the circuit's sources (Parker & McCluskey's exact treatment — the
// paper's reference [5] — rather than the linear-time approximation in
// package sigprob).
//
// Exactness here means: no signal-independence assumption at all. The cost
// is BDD size, which is bounded by an explicit node budget; circuits whose
// BDDs blow past the budget report bdd.ErrNodeLimit rather than running
// away. Variable order is the circuit's source order (a topological-friendly
// heuristic).
package bddsp

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/graph"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// build constructs per-node BDDs for the whole circuit; faultAt (if valid)
// complements that node's function, yielding the faulty machine.
func build(m *bdd.Manager, c *netlist.Circuit, varOf map[netlist.ID]int, faultAt netlist.ID) ([]bdd.Ref, error) {
	refs := make([]bdd.Ref, c.N())
	for _, id := range c.Topo() {
		n := c.Node(id)
		var r bdd.Ref
		var err error
		switch {
		case n.IsSource():
			switch n.Kind {
			case logic.Const0:
				r = m.Const(false)
			case logic.Const1:
				r = m.Const(true)
			default:
				r, err = m.Var(varOf[id])
			}
		default:
			ins := make([]bdd.Ref, len(n.Fanin))
			for i, f := range n.Fanin {
				ins[i] = refs[f]
			}
			r, err = gateBDD(m, n.Kind, ins)
		}
		if err != nil {
			return nil, err
		}
		if id == faultAt {
			r, err = m.Not(r)
			if err != nil {
				return nil, err
			}
		}
		refs[id] = r
	}
	return refs, nil
}

func gateBDD(m *bdd.Manager, k logic.Kind, ins []bdd.Ref) (bdd.Ref, error) {
	switch k {
	case logic.Buf:
		return ins[0], nil
	case logic.Not:
		return m.Not(ins[0])
	case logic.And:
		return m.AndN(ins...)
	case logic.Nand:
		r, err := m.AndN(ins...)
		if err != nil {
			return bdd.False, err
		}
		return m.Not(r)
	case logic.Or:
		return m.OrN(ins...)
	case logic.Nor:
		r, err := m.OrN(ins...)
		if err != nil {
			return bdd.False, err
		}
		return m.Not(r)
	case logic.Xor:
		return m.XorN(ins...)
	case logic.Xnor:
		r, err := m.XorN(ins...)
		if err != nil {
			return bdd.False, err
		}
		return m.Not(r)
	}
	return bdd.False, fmt.Errorf("bddsp: unsupported gate kind %v", k)
}

// sourceVars assigns BDD variable indices to the circuit's sources in ID
// order and returns the mapping plus the per-variable probability vector
// (prob1 indexed by node ID; nil means 0.5 everywhere).
func sourceVars(c *netlist.Circuit, prob1 []float64) (map[netlist.ID]int, []float64) {
	varOf := make(map[netlist.ID]int)
	var weights []float64
	for _, s := range c.Sources() {
		k := c.Node(s).Kind
		if k == logic.Const0 || k == logic.Const1 {
			continue // constants are not variables
		}
		p := 0.5
		if prob1 != nil {
			p = prob1[s]
		}
		varOf[s] = len(weights)
		weights = append(weights, p)
	}
	return varOf, weights
}

// SignalProb computes the exact signal probability of every node, with
// sources independently 1 with probability prob1[id] (nil = 0.5). maxNodes
// bounds the BDD budget (0 = default).
func SignalProb(c *netlist.Circuit, prob1 []float64, maxNodes int) ([]float64, error) {
	varOf, weights := sourceVars(c, prob1)
	m := bdd.New(len(weights), maxNodes)
	refs, err := build(m, c, varOf, netlist.InvalidID)
	if err != nil {
		return nil, err
	}
	sp := make([]float64, c.N())
	for id := 0; id < c.N(); id++ {
		sp[id] = m.SatFraction(refs[id], weights)
	}
	return sp, nil
}

// PSensitized computes the exact probability that an SEU at site is visible
// at one or more observation points: the weighted satisfying fraction of
// the detection function OR_o (good_o ⊕ faulty_o). No independence
// assumption anywhere — this is the reference the EPP approximation is
// measured against when enumeration is out of reach.
func PSensitized(c *netlist.Circuit, site netlist.ID, prob1 []float64, maxNodes int) (float64, error) {
	varOf, weights := sourceVars(c, prob1)
	m := bdd.New(len(weights), maxNodes)
	good, err := build(m, c, varOf, netlist.InvalidID)
	if err != nil {
		return 0, err
	}
	// Faulty build restricted to the fault cone would also work; building
	// the full faulty machine keeps the code obvious and shares the good
	// machine's subgraphs through the unique table.
	faulty, err := build(m, c, varOf, site)
	if err != nil {
		return 0, err
	}
	detect := m.Const(false)
	cone := graph.NewWalker(c).ForwardCone(site)
	for _, o := range cone.Outputs {
		d, err := m.Xor(good[o], faulty[o])
		if err != nil {
			return 0, err
		}
		detect, err = m.Or(detect, d)
		if err != nil {
			return 0, err
		}
	}
	return m.SatFraction(detect, weights), nil
}
