package table2

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/gen"
)

func TestRunSmallProfile(t *testing.T) {
	c, err := gen.ByName("s953")
	if err != nil {
		t.Fatal(err)
	}
	row, err := Run(c, Config{MCVectors: 512, SampleNodes: 40, SPVectors: 4096, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if row.Circuit != "s953" || row.Nodes != c.N() || row.Sampled != 40 {
		t.Fatalf("row meta: %+v", row)
	}
	if row.SysTms <= 0 || row.SimTs <= 0 || row.SPTs <= 0 {
		t.Fatalf("non-positive timings: %+v", row)
	}
	if row.ESP <= 0 || row.ISP <= 0 {
		t.Fatalf("non-positive speedups: %+v", row)
	}
	// ESP always >= ISP (excluding a cost can only increase the speedup).
	if row.ESP < row.ISP {
		t.Fatalf("ESP %v < ISP %v", row.ESP, row.ISP)
	}
	// The reproduction target: the analytical method beats per-node random
	// simulation by orders of magnitude; even with tiny vector counts the
	// speedup excluding SP must be large.
	if row.ESP < 10 {
		t.Errorf("ESP = %v: EPP not significantly faster than random simulation", row.ESP)
	}
	// Accuracy within the paper's regime (Table 2 reports 3.4%-12.6%).
	if row.DifPct > 30 {
		t.Errorf("%%Dif = %v: accuracy far outside the paper's regime", row.DifPct)
	}
	t.Logf("s953: SysT=%.3fms SimT=%.3fs %%Dif=%.1f SPT=%.3fs ISP=%.0f ESP=%.0f",
		row.SysTms, row.SimTs, row.DifPct, row.SPTs, row.ISP, row.ESP)
}

func TestSampleSites(t *testing.T) {
	all := sampleSites(10, 0)
	if len(all) != 10 {
		t.Fatalf("k=0 should return all sites, got %d", len(all))
	}
	some := sampleSites(1000, 10)
	if len(some) != 10 {
		t.Fatalf("len = %d", len(some))
	}
	for i := 1; i < len(some); i++ {
		if some[i] <= some[i-1] {
			t.Fatal("sample not strictly increasing")
		}
	}
	if some[len(some)-1] >= 1000 {
		t.Fatal("sample out of range")
	}
	over := sampleSites(5, 10)
	if len(over) != 5 {
		t.Fatalf("oversample: %d", len(over))
	}
}

func TestRenderLayout(t *testing.T) {
	rows := []Row{
		{Circuit: "s953", Nodes: 440, Sampled: 40, SysTms: 0.5, SimTs: 30, DifPct: 4.3, SPTs: 1.5, ISP: 15, ESP: 60000},
		{Circuit: "s1196", Nodes: 561, Sampled: 40, SysTms: 0.8, SimTs: 55, DifPct: 3.6, SPTs: 2.1, ISP: 19, ESP: 68000},
	}
	var buf bytes.Buffer
	if err := Render(rows).Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Circuit", "SysT(ms)", "SimT(s)", "%Dif", "SPT(s)", "ISP", "ESP", "s953", "average"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	// Average row: (4.3+3.6)/2 = 3.95.
	if !strings.Contains(out, "3.95") {
		t.Errorf("average %%Dif missing:\n%s", out)
	}
}

func TestRunProfilesUnknownName(t *testing.T) {
	if _, err := RunProfiles(context.Background(), []string{"sXXX"}, Config{}, nil); err == nil {
		t.Error("unknown profile accepted")
	}
}

// TestRunProfilesStreamsProgress: the progress callback fires once per
// circuit, in order, and the bit-parallel baseline path works end to end.
func TestRunProfilesStreamsProgress(t *testing.T) {
	var seen []string
	rows, err := RunProfiles(context.Background(), []string{"s953"}, Config{
		MCVectors: 256, SampleNodes: 10, SPVectors: 2048, Seed: 2,
		Baseline: BaselineBitParallel, Workers: 2,
	}, func(r Row) { seen = append(seen, r.Circuit) })
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(seen) != 1 || seen[0] != "s953" {
		t.Fatalf("rows=%d seen=%v", len(rows), seen)
	}
	if rows[0].SimTs <= 0 {
		t.Fatal("bit-parallel baseline produced no timing")
	}
}

func TestBaselineString(t *testing.T) {
	if BaselineNaive.String() != "naive" || BaselineBitParallel.String() != "bit-parallel" {
		t.Error("Baseline names changed")
	}
	if Baseline(7).String() == "" {
		t.Error("unknown Baseline must render")
	}
}

func TestConfigDefaults(t *testing.T) {
	var cfg Config
	cfg.setDefaults()
	if cfg.MCVectors != 10000 || cfg.SampleNodes != 200 || cfg.SPVectors != 100000 || cfg.Workers != 1 {
		t.Errorf("defaults: %+v", cfg)
	}
	neg := Config{SampleNodes: -5}
	neg.setDefaults()
	if neg.SampleNodes != 200 {
		t.Errorf("negative sample not defaulted: %d", neg.SampleNodes)
	}
}
