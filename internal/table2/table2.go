// Package table2 reproduces the paper's Table 2 ("Our approach vs. random
// simulation"): for each benchmark circuit it measures
//
//	SysT — runtime of the EPP analysis over all nodes (ms)
//	SimT — runtime of random-simulation fault injection over all nodes (s),
//	       extrapolated from a node sample on large circuits exactly as the
//	       paper does ("a limited number of gates ... are simulated due to
//	       exorbitant run time of the random-simulation method")
//	%Dif — accuracy difference between the two methods over sampled nodes
//	SPT  — signal probability computation time (s), the design-flow cost the
//	       paper's method leverages
//	ISP  — speedup including SP time: SimT / (SysT + SPT)
//	ESP  — speedup excluding SP time: SimT / SysT
//
// %Dif is defined as the mean absolute difference in P_sensitized between
// EPP and random simulation over the sampled nodes, normalized by the mean
// random-simulation value (×100). EXPERIMENTS.md records this definition
// alongside the measured values.
package table2

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/circuitio"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/report"
	"repro/internal/sigprob"
	"repro/internal/simulate"
)

// Baseline selects the random-simulation implementation timed as SimT.
type Baseline int

const (
	// BaselineNaive is the paper-era comparator: scalar evaluation, one
	// random vector at a time, full-circuit faulty re-simulation. This is
	// what the paper's SimT column measured and the default.
	BaselineNaive Baseline = iota
	// BaselineBitParallel is our strengthened comparator (64-way
	// bit-parallel, cone-limited re-simulation), reported as an ablation:
	// it shows how much of the paper's speedup survives against a
	// competently engineered simulator.
	BaselineBitParallel
)

// String names the baseline.
func (b Baseline) String() string {
	switch b {
	case BaselineNaive:
		return "naive"
	case BaselineBitParallel:
		return "bit-parallel"
	}
	return fmt.Sprintf("Baseline(%d)", int(b))
}

// Config controls one Table 2 row measurement.
type Config struct {
	// Baseline selects the random-simulation comparator (default naive, as
	// in the paper).
	Baseline Baseline
	// MCVectors is the number of random vectors per sampled node for the
	// baseline (default 10000, the classical setting).
	MCVectors int
	// SampleNodes bounds how many error sites the random-simulation baseline
	// actually simulates; the total SimT is extrapolated linearly (default
	// 200, 0 = all nodes).
	SampleNodes int
	// SPVectors is the vector count for Monte Carlo signal probability
	// (default 100000).
	SPVectors int
	// Seed fixes all randomized components.
	Seed uint64
	// Workers for the EPP sweep (default 1: single-threaded, matching the
	// paper's single-CPU runtime comparison).
	Workers int
}

func (c *Config) setDefaults() {
	if c.MCVectors <= 0 {
		c.MCVectors = 10000
	}
	if c.SampleNodes < 0 {
		c.SampleNodes = 0
	}
	if c.SampleNodes == 0 {
		c.SampleNodes = 200
	}
	if c.SPVectors <= 0 {
		c.SPVectors = 100000
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
}

// Row is one measured line of the Table 2 reproduction.
type Row struct {
	Circuit string
	Nodes   int
	Sampled int

	SysTms float64 // EPP all-nodes runtime, milliseconds
	SimTs  float64 // random simulation all-nodes runtime (extrapolated), seconds
	DifPct float64 // accuracy difference, percent
	SPTs   float64 // signal probability (Monte Carlo) runtime, seconds
	ISP    float64 // speedup including SP time
	ESP    float64 // speedup excluding SP time
}

// Run measures one circuit.
func Run(c *netlist.Circuit, cfg Config) (Row, error) {
	cfg.setDefaults()
	row := Row{Circuit: c.Name, Nodes: c.N()}

	// --- SPT: Monte Carlo signal probability (the leveraged flow step).
	spStart := time.Now()
	sp := sigprob.MonteCarlo(c, sigprob.Config{Vectors: cfg.SPVectors, Seed: cfg.Seed})
	row.SPTs = time.Since(spStart).Seconds()

	// --- SysT: the EPP analysis over every node.
	an, err := core.New(c, sp, core.Options{})
	if err != nil {
		return Row{}, err
	}
	sysStart := time.Now()
	var epp []float64
	if cfg.Workers == 1 {
		epp = an.PSensitizedAll()
	} else {
		res := an.AllSitesParallel(cfg.Workers)
		epp = make([]float64, len(res))
		for i, r := range res {
			epp[i] = r.PSensitized
		}
	}
	row.SysTms = float64(time.Since(sysStart).Microseconds()) / 1000

	// --- SimT + %Dif: random simulation on a node sample, extrapolated.
	sites := sampleSites(c.N(), cfg.SampleNodes)
	row.Sampled = len(sites)
	mcOpt := simulate.MCOptions{Vectors: cfg.MCVectors, Seed: cfg.Seed + 1}
	var baseline interface {
		EPP(netlist.ID) simulate.MCResult
	}
	if cfg.Baseline == BaselineBitParallel {
		baseline = simulate.NewMonteCarlo(c, mcOpt)
	} else {
		baseline = simulate.NewNaive(c, mcOpt)
	}
	simStart := time.Now()
	sumAbs, sumMC := 0.0, 0.0
	for _, s := range sites {
		m := baseline.EPP(s).PSensitized
		sumAbs += math.Abs(epp[s] - m)
		sumMC += m
	}
	simElapsed := time.Since(simStart).Seconds()
	row.SimTs = simElapsed * float64(c.N()) / float64(len(sites))
	if sumMC > 0 {
		row.DifPct = 100 * sumAbs / sumMC
	}

	// --- Speedups.
	sysSeconds := row.SysTms / 1000
	if sysSeconds > 0 {
		row.ESP = row.SimTs / sysSeconds
		row.ISP = row.SimTs / (sysSeconds + row.SPTs)
	}
	return row, nil
}

// sampleSites picks up to k node IDs evenly spaced over [0, n): a
// deterministic, stratified sample covering all circuit depths.
func sampleSites(n, k int) []netlist.ID {
	if k <= 0 || k >= n {
		out := make([]netlist.ID, n)
		for i := range out {
			out[i] = netlist.ID(i)
		}
		return out
	}
	out := make([]netlist.ID, 0, k)
	step := float64(n) / float64(k)
	for i := 0; i < k; i++ {
		out = append(out, netlist.ID(int(float64(i)*step)))
	}
	return out
}

// RunProfiles measures the named ISCAS'89-profile circuits (nil = all
// eleven of the paper's Table 2) and returns the rows in order. If progress
// is non-nil it is called with each row as soon as it is measured, so long
// runs can stream results. Cancellation and deadlines on ctx are honored at
// circuit granularity: the timed kernels themselves run to completion (a
// mid-measurement abort would corrupt the row), but no new circuit starts
// once ctx is done.
func RunProfiles(ctx context.Context, names []string, cfg Config, progress func(Row)) ([]Row, error) {
	if names == nil {
		for _, p := range gen.ISCAS89 {
			names = append(names, p.Name)
		}
	}
	rows := make([]Row, 0, len(names))
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		// The shared parse-once path: a profile already loaded by another
		// mode of the same invocation is reused, not regenerated.
		c, err := circuitio.Load(circuitio.Source{Profile: name})
		if err != nil {
			return nil, err
		}
		row, err := Run(c, cfg)
		if err != nil {
			return nil, fmt.Errorf("table2: %s: %w", name, err)
		}
		if progress != nil {
			progress(row)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Render lays the rows out in the paper's column order, appending the
// paper-style averages row.
func Render(rows []Row) *report.Table {
	t := report.NewTable(
		"Table 2 reproduction: EPP approach vs. random simulation",
		"Circuit", "SysT(ms)", "SimT(s)", "%Dif", "SPT(s)", "ISP", "ESP",
	)
	var sumSys, sumSim, sumDif, sumSPT, sumISP, sumESP float64
	for _, r := range rows {
		t.AddRowf(r.Circuit, r.SysTms, r.SimTs, r.DifPct, r.SPTs, r.ISP, r.ESP)
		sumSys += r.SysTms
		sumSim += r.SimTs
		sumDif += r.DifPct
		sumSPT += r.SPTs
		sumISP += r.ISP
		sumESP += r.ESP
	}
	n := float64(len(rows))
	if n > 0 {
		t.AddRowf("average", sumSys/n, sumSim/n, sumDif/n, sumSPT/n, sumISP/n, sumESP/n)
	}
	t.AddNote("SysT: EPP all-nodes runtime; SimT: random simulation extrapolated to all nodes")
	t.AddNote("ISP = SimT/(SysT+SPT), ESP = SimT/SysT; %%Dif = mean |EPP-MC| / mean MC × 100")
	return t
}
