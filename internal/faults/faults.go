// Package faults models the raw single-event-upset rate R_SEU(n) of each
// circuit node — the first factor of the paper's SER decomposition
// SER(n) = R_SEU(n) × P_latched(n) × P_sensitized(n).
//
// The paper treats R_SEU as an input that "depends on the particle flux, the
// energy of the particle, type and size of the gate, and the device
// characteristics" and takes it from technology models (Shivakumar et al.,
// DSN 2002). We do not have the authors' device data, so this package
// implements a documented parameterized substitute: a neutron-flux ×
// sensitive-cross-section model with per-gate-kind relative cross sections
// scaled by drive strength (fanin count as proxy). Absolute rates are in
// FIT (failures per 10^9 device-hours); the paper's use-case — relative node
// ranking — is insensitive to the absolute calibration.
package faults

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Model computes per-node SEU rates.
type Model struct {
	// FluxPerCm2Hour is the effective particle flux (neutrons/cm²/h at sea
	// level ≈ 14; the default).
	FluxPerCm2Hour float64
	// BaseCrossSectionCm2 is the sensitive cross section of a reference
	// minimum-size inverter in cm² (default 1e-14, a typical 130 nm-era
	// figure).
	BaseCrossSectionCm2 float64
	// KindScale gives the relative sensitive area of each gate kind versus
	// the reference inverter. Missing kinds default to 1.
	KindScale map[logic.Kind]float64
	// FaninScale adds this fraction of the base area per fanin beyond the
	// first (larger gates expose more diffusion). Default 0.5.
	FaninScale float64
}

// Default returns the documented default model (see package comment).
func Default() Model {
	return Model{
		FluxPerCm2Hour:      14,
		BaseCrossSectionCm2: 1e-14,
		KindScale: map[logic.Kind]float64{
			logic.Not:  1.0,
			logic.Buf:  1.2,
			logic.And:  1.6,
			logic.Nand: 1.4,
			logic.Or:   1.6,
			logic.Nor:  1.4,
			logic.Xor:  2.4,
			logic.Xnor: 2.4,
			logic.DFF:  3.0,
		},
		FaninScale: 0.5,
	}
}

// Validate reports whether the model parameters are physically meaningful.
func (m Model) Validate() error {
	if m.FluxPerCm2Hour < 0 {
		return fmt.Errorf("faults: negative flux %v", m.FluxPerCm2Hour)
	}
	if m.BaseCrossSectionCm2 < 0 {
		return fmt.Errorf("faults: negative cross section %v", m.BaseCrossSectionCm2)
	}
	if m.FaninScale < 0 {
		return fmt.Errorf("faults: negative fanin scale %v", m.FaninScale)
	}
	for k, s := range m.KindScale {
		if s < 0 {
			return fmt.Errorf("faults: negative scale for %v", k)
		}
	}
	return nil
}

// RateFIT returns R_SEU for node id in FIT: upsets per 10^9 hours of
// operation. Sources that are not physical gates (primary inputs, tie cells)
// have rate 0 — an upset on a chip input pad is outside the model, exactly
// as in the paper where error sites are gates.
func (m Model) RateFIT(c *netlist.Circuit, id netlist.ID) float64 {
	n := c.Node(id)
	switch n.Kind {
	case logic.Input, logic.Const0, logic.Const1:
		return 0
	}
	scale := 1.0
	if s, ok := m.KindScale[n.Kind]; ok {
		scale = s
	}
	extraFanin := 0.0
	if len(n.Fanin) > 1 {
		extraFanin = float64(len(n.Fanin)-1) * m.FaninScale
	}
	area := m.BaseCrossSectionCm2 * (scale + extraFanin)
	// upsets/hour = flux × area; FIT = upsets per 1e9 hours.
	return m.FluxPerCm2Hour * area * 1e9
}

// RatesFIT returns the per-node rate vector, indexed by node ID.
func (m Model) RatesFIT(c *netlist.Circuit) []float64 {
	out := make([]float64, c.N())
	for id := 0; id < c.N(); id++ {
		out[id] = m.RateFIT(c, netlist.ID(id))
	}
	return out
}
