package faults

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/logic"
	"repro/internal/netlist"
)

func sample(t *testing.T) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(`
INPUT(a)
INPUT(b)
OUTPUT(y)
n = NOT(a)
g = AND(a, b)
w = AND(a, b, n)
y = OR(g, w)
q = DFF(y)
`)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
}

func TestInputsHaveZeroRate(t *testing.T) {
	c := sample(t)
	m := Default()
	if r := m.RateFIT(c, c.ByName("a")); r != 0 {
		t.Errorf("input rate = %v, want 0", r)
	}
}

func TestGateRatesPositiveAndOrdered(t *testing.T) {
	c := sample(t)
	m := Default()
	rNot := m.RateFIT(c, c.ByName("n"))
	rAnd2 := m.RateFIT(c, c.ByName("g"))
	rAnd3 := m.RateFIT(c, c.ByName("w"))
	rFF := m.RateFIT(c, c.ByName("q"))
	if rNot <= 0 || rAnd2 <= 0 || rAnd3 <= 0 || rFF <= 0 {
		t.Fatalf("non-positive rates: %v %v %v %v", rNot, rAnd2, rAnd3, rFF)
	}
	// Fanin scaling: a 3-input AND exposes more area than a 2-input AND.
	if rAnd3 <= rAnd2 {
		t.Errorf("AND3 (%v) should exceed AND2 (%v)", rAnd3, rAnd2)
	}
	// The default FF cross-section dominates an inverter.
	if rFF <= rNot {
		t.Errorf("DFF (%v) should exceed NOT (%v)", rFF, rNot)
	}
}

func TestRatesVectorMatchesPerNode(t *testing.T) {
	c := sample(t)
	m := Default()
	v := m.RatesFIT(c)
	for id := 0; id < c.N(); id++ {
		if v[id] != m.RateFIT(c, netlist.ID(id)) {
			t.Fatalf("vector/per-node mismatch at %d", id)
		}
	}
}

func TestRateScalesWithFlux(t *testing.T) {
	c := sample(t)
	m := Default()
	base := m.RateFIT(c, c.ByName("g"))
	m.FluxPerCm2Hour *= 3
	got := m.RateFIT(c, c.ByName("g"))
	if rel := (got - base*3) / (base * 3); rel > 1e-12 || rel < -1e-12 {
		t.Errorf("rate not linear in flux: %v vs %v", got, base*3)
	}
}

func TestUnknownKindDefaultsToUnitScale(t *testing.T) {
	c := sample(t)
	m := Default()
	delete(m.KindScale, logic.And)
	if r := m.RateFIT(c, c.ByName("g")); r <= 0 {
		t.Errorf("missing kind scale should default to 1, got rate %v", r)
	}
}

func TestValidateRejectsNegative(t *testing.T) {
	m := Default()
	m.FluxPerCm2Hour = -1
	if err := m.Validate(); err == nil {
		t.Error("negative flux accepted")
	}
	m = Default()
	m.FaninScale = -0.5
	if err := m.Validate(); err == nil {
		t.Error("negative fanin scale accepted")
	}
	m = Default()
	m.KindScale[logic.And] = -2
	if err := m.Validate(); err == nil {
		t.Error("negative kind scale accepted")
	}
}
