// Package sigprob computes signal probabilities — the probability of each
// net holding logic 1 — which the EPP method consumes for off-path signals
// (paper §2, citing Parker & McCluskey 1975).
//
// Two computation methods are provided, mirroring the paper's cost analysis
// (the "SPT" column of Table 2 is the signal-probability computation time):
//
//   - Topological: a single Parker–McCluskey sweep under the signal
//     independence assumption. Linear time, exact on fanout-free circuits.
//   - Monte Carlo: bit-parallel random simulation, asymptotically exact on
//     any circuit and the expensive "already used in other design-flow
//     steps" method the paper leverages.
//
// Both accept per-source bias (probability of 1 at PIs and FF outputs).
package sigprob

import (
	"fmt"
	"math/bits"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/simulate"
)

// Config configures a signal probability computation.
type Config struct {
	// SourceProb gives the probability of logic 1 for each source node,
	// indexed by node ID (non-source entries ignored). Nil means 0.5 for
	// every primary input and flip-flop.
	SourceProb []float64
	// Vectors is the number of random vectors for the Monte Carlo method
	// (rounded up to a multiple of 64). Default 100000 — deliberately
	// generous, as in the design flows the paper leverages.
	Vectors int
	// Seed seeds the Monte Carlo method.
	Seed uint64
}

func (c *Config) setDefaults() {
	if c.Vectors <= 0 {
		c.Vectors = 100000
	}
}

func (c *Config) sourceProb(id netlist.ID) float64 {
	if c.SourceProb == nil {
		return 0.5
	}
	return c.SourceProb[id]
}

// Topological computes signal probabilities with one Parker–McCluskey sweep
// in combinational topological order, treating gate inputs as independent.
// The returned slice is indexed by node ID.
func Topological(c *netlist.Circuit, cfg Config) []float64 {
	cfg.setDefaults()
	sp := make([]float64, c.N())
	kinds := c.Kinds()
	fiIdx, fiArr := c.FaninCSR()
	for _, id := range c.Topo() {
		switch k := kinds[id]; k {
		case logic.Input, logic.DFF:
			sp[id] = cfg.sourceProb(id)
		case logic.Const0:
			sp[id] = 0
		case logic.Const1:
			sp[id] = 1
		default:
			sp[id] = gateSP(k, fiArr[fiIdx[id]:fiIdx[id+1]], sp)
		}
	}
	return sp
}

// gateSP evaluates one gate's output probability from fanin probabilities
// under the independence assumption.
func gateSP(k logic.Kind, fanin []netlist.ID, sp []float64) float64 {
	switch k {
	case logic.Buf:
		return sp[fanin[0]]
	case logic.Not:
		return 1 - sp[fanin[0]]
	case logic.And, logic.Nand:
		p := 1.0
		for _, f := range fanin {
			p *= sp[f]
		}
		if k == logic.Nand {
			return 1 - p
		}
		return p
	case logic.Or, logic.Nor:
		q := 1.0
		for _, f := range fanin {
			q *= 1 - sp[f]
		}
		if k == logic.Nor {
			return q
		}
		return 1 - q
	case logic.Xor, logic.Xnor:
		// Fold: P(x⊕y=1) = p + q − 2pq for independent x, y.
		p := sp[fanin[0]]
		for _, f := range fanin[1:] {
			q := sp[f]
			p = p + q - 2*p*q
		}
		if k == logic.Xnor {
			return 1 - p
		}
		return p
	}
	panic(fmt.Sprintf("sigprob: gateSP on kind %v", k))
}

// MonteCarlo estimates signal probabilities by bit-parallel random
// simulation. The returned slice is indexed by node ID. This is the accurate
// but slow method; its cost is what the paper reports as SPT.
func MonteCarlo(c *netlist.Circuit, cfg Config) []float64 {
	cfg.setDefaults()
	eng := simulate.NewEngine(c)
	src := simulate.NewVectorSource(cfg.Seed, cfg.SourceProb)
	words := (cfg.Vectors + 63) / 64
	ones := make([]int64, c.N())
	for w := 0; w < words; w++ {
		src.Fill(eng)
		eng.Run()
		for id := 0; id < c.N(); id++ {
			ones[id] += int64(bits.OnesCount64(eng.Value(netlist.ID(id))))
		}
	}
	total := float64(words * 64)
	sp := make([]float64, c.N())
	for id := range sp {
		sp[id] = float64(ones[id]) / total
	}
	return sp
}

// MaxAbsDiff returns the largest absolute difference between two probability
// vectors, a convergence/accuracy diagnostic used in tests and reports.
func MaxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
