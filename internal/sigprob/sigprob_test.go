package sigprob

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/netlist"
)

func mustParse(t *testing.T, src string) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestTopologicalHandCases pins the Parker–McCluskey arithmetic on known
// formulas.
func TestTopologicalHandCases(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
INPUT(b)
INPUT(x)
OUTPUT(y1)
OUTPUT(y2)
OUTPUT(y3)
OUTPUT(y4)
y1 = AND(a, b)
y2 = OR(a, b)
y3 = XOR(a, b)
y4 = NOT(x)
`)
	prob := make([]float64, c.N())
	prob[c.ByName("a")] = 0.3
	prob[c.ByName("b")] = 0.6
	prob[c.ByName("x")] = 0.25
	sp := Topological(c, Config{SourceProb: prob})

	check := func(name string, want float64) {
		t.Helper()
		if got := sp[c.ByName(name)]; math.Abs(got-want) > 1e-12 {
			t.Errorf("SP(%s) = %v, want %v", name, got, want)
		}
	}
	check("y1", 0.3*0.6)
	check("y2", 1-0.7*0.4)
	check("y3", 0.3*0.4+0.6*0.7)
	check("y4", 0.75)
}

// TestTopologicalExactOnTrees: on fanout-free circuits the independence
// assumption holds, so the sweep must equal exhaustive enumeration.
func TestTopologicalExactOnTrees(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		c := gen.TreeRandom(seed)
		sp := Topological(c, Config{})
		truth, err := exact.SignalProb(c)
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < c.N(); id++ {
			if math.Abs(sp[id]-truth[id]) > 1e-9 {
				t.Fatalf("seed %d node %s: topo %v, exact %v",
					seed, c.NameOf(netlist.ID(id)), sp[id], truth[id])
			}
		}
	}
}

// TestMonteCarloConvergesToExact on small general circuits (reconvergence
// included).
func TestMonteCarloConvergesToExact(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		c := gen.SmallRandom(seed + 20)
		truth, err := exact.SignalProb(c)
		if err != nil {
			t.Fatal(err)
		}
		mc := MonteCarlo(c, Config{Vectors: 1 << 16, Seed: seed})
		for id := 0; id < c.N(); id++ {
			// 64k vectors: binomial sigma <= 0.002; allow 5 sigma.
			if math.Abs(mc[id]-truth[id]) > 0.012 {
				t.Fatalf("seed %d node %s: MC %v, exact %v",
					seed, c.NameOf(netlist.ID(id)), mc[id], truth[id])
			}
		}
	}
}

// TestMonteCarloRespectsBias.
func TestMonteCarloRespectsBias(t *testing.T) {
	c := mustParse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")
	prob := make([]float64, c.N())
	prob[c.ByName("a")] = 0.75
	prob[c.ByName("b")] = 0.25
	mc := MonteCarlo(c, Config{SourceProb: prob, Vectors: 1 << 16, Seed: 9})
	if got, want := mc[c.ByName("y")], 0.75*0.25; math.Abs(got-want) > 0.01 {
		t.Errorf("biased MC SP(y) = %v, want %v", got, want)
	}
}

// TestConstantNodes: tie cells get probability exactly 0 / 1 in both methods.
func TestConstantNodes(t *testing.T) {
	b := netlist.NewBuilder("ties")
	in := b.Input("a")
	one := b.Const("one", true)
	y := b.And("y", in, one)
	b.MarkOutput(y)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sp := Topological(c, Config{})
	if sp[one] != 1 {
		t.Errorf("SP(const1) = %v", sp[one])
	}
	if sp[y] != 0.5 {
		t.Errorf("SP(y) = %v, want 0.5", sp[y])
	}
}

// TestDefaultSourceProbIsHalf.
func TestDefaultSourceProbIsHalf(t *testing.T) {
	c := mustParse(t, "INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\nq = DFF(y)\n")
	sp := Topological(c, Config{})
	if sp[c.ByName("a")] != 0.5 || sp[c.ByName("q")] != 0.5 {
		t.Errorf("defaults: a=%v q=%v", sp[c.ByName("a")], sp[c.ByName("q")])
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := []float64{0.1, 0.5, 0.9}
	b := []float64{0.1, 0.4, 0.95}
	if d := MaxAbsDiff(a, b); math.Abs(d-0.1) > 1e-15 {
		t.Errorf("MaxAbsDiff = %v", d)
	}
	if d := MaxAbsDiff(a, a); d != 0 {
		t.Errorf("self diff = %v", d)
	}
}
