// Package resume implements crash-safe checkpoint/resume for all-sites
// P_sensitized sweeps: a sweep periodically serializes its completed work to
// a file, and a later run against the same request skips that work and folds
// the saved results back in, producing output bit-identical to an
// uninterrupted run.
//
// What makes this cheap here is a property the engines already guarantee:
// every sweep's results are worker-count-invariant because the merged state
// is either per-unit floating-point values written exactly once (site-major
// engines) or integer counters whose sum has no merge-order hazard
// (word-major Monte Carlo). A checkpoint is therefore just the set of
// completed units plus their values/counters — no scheduler state, no
// in-flight partial sums.
//
// # File format
//
// A checkpoint is a single JSON object written atomically (temp file +
// rename in the same directory), so a crash mid-write never corrupts an
// existing checkpoint. Fields:
//
//	{
//	  "version":     2,            // format version; see Version
//	  "engine":      "epp-batch",  // registry name of the engine that wrote it
//	  "fingerprint": "ab12…",      // request fingerprint (hex SHA-256)
//	  "kind":        "sites",      // unit semantics: "sites" or "words"
//	  "units":       1669,         // total units in the full sweep
//	  "done":        [{"lo":0,"hi":128}, …],  // completed unit ranges, sorted, disjoint
//	  "values":      [4602891378046628709, …],// kind "sites": one IEEE-754 bit
//	                                          // pattern (math.Float64bits) per
//	                                          // done unit, in done-range order
//	  "counters":    {…},                     // kind "words": integer Counters
//	  "checksum":    "9f3c…"                  // hex SHA-256 over the document
//	                                          // with this field empty (v2+)
//	}
//
// Version is bumped on any incompatible change to this layout; a loader
// finding an unknown version rejects the file rather than guessing. Version
// 1 files (written before the checksum existed) still load — they simply
// carry no integrity check. Version 2 files must carry a checksum that
// verifies: the writer serializes the document with an empty checksum
// field, hashes those bytes with SHA-256, and stores the hex digest; the
// reader re-serializes the parsed document the same way and compares. A
// torn write, bit rot, or hand-editing therefore surfaces as a structured
// *CorruptError instead of silently folding garbage values into a resumed
// sweep. Arm quarantines a corrupt file by renaming it to <path>.corrupt
// (preserving the evidence) so an immediate re-Arm starts the sweep fresh.
// Site values are stored as uint64 IEEE-754 bit patterns, not JSON numbers,
// because resumed output must be bit-identical to an uninterrupted run and
// JSON float round-tripping (or a NaN) must not be able to break that.
//
// The fingerprint hashes everything that determines the sweep's results —
// circuit content, engine name, frames, vectors, seed, rules, bias, signal
// probabilities, latch parameters — and deliberately excludes pure
// scheduling knobs (worker count, batch width, sweep order), which the
// engines guarantee cannot change results. A checkpoint written on a
// 64-core machine therefore resumes correctly on a laptop. Arming against a
// file whose fingerprint does not match the request is an error, never a
// silent restart.
//
// # Consistency
//
// Writers commit completed units under the sweep's merge mutex, so every
// write captures a consistent pair (done set, values/counters): exactly the
// units in done are reflected in the counters. Interval-based cadence only
// delays writes — the file on disk is always some consistent prefix of the
// sweep, which is precisely what resuming needs after a kill at an
// arbitrary point.
package resume

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Version is the checkpoint file format version this package writes.
// Readers accept Version and the checksum-less legacy version 1, and
// reject anything else.
const Version = 2

// legacyVersion is the last format without a content checksum; files at
// this version still load (no integrity check is possible for them).
const legacyVersion = 1

// Unit semantics of a checkpoint: completed site-ID ranges (site-major
// engines) or completed 64-vector word indices (the word-major monte-carlo
// engine).
const (
	KindSites = "sites"
	KindWords = "words"
)

// Range is a half-open completed-unit range [Lo, Hi).
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Counters is the integer counter snapshot of a word-major sweep — the
// per-site (and per-frame) detection tallies plus the work counters, all of
// which are plain sums over completed words and therefore resume by
// addition.
type Counters struct {
	Detected []int64 `json:"detected"`         // per site: trials detected in any frame
	Later    []int64 `json:"later,omitempty"`  // per site: trials detected in frame >= 1 (multi-cycle)
	Frames   []int64 `json:"frames,omitempty"` // frame-major frames×n per-frame detections (multi-cycle)

	Words        int64 `json:"words"`
	GoodSims     int64 `json:"good_sims"`
	LaneSims     int64 `json:"lane_sims"`
	SweptMembers int64 `json:"swept_members"`
}

// clone deep-copies the snapshot so the caller may keep mutating its own.
func (c *Counters) clone() *Counters {
	if c == nil {
		return nil
	}
	cp := *c
	cp.Detected = append([]int64(nil), c.Detected...)
	cp.Later = append([]int64(nil), c.Later...)
	cp.Frames = append([]int64(nil), c.Frames...)
	return &cp
}

// File is the on-disk checkpoint layout; see the package documentation for
// field semantics.
type File struct {
	Version     int       `json:"version"`
	Engine      string    `json:"engine"`
	Fingerprint string    `json:"fingerprint"`
	Kind        string    `json:"kind"`
	Units       int       `json:"units"`
	Done        []Range   `json:"done"`
	Values      []uint64  `json:"values,omitempty"`
	Counters    *Counters `json:"counters,omitempty"`
	Checksum    string    `json:"checksum,omitempty"`
}

// checksum computes the hex SHA-256 digest of the file serialized with an
// empty Checksum field — the value a version >= 2 writer stores and a
// reader verifies. Serialization is deterministic (fixed field order,
// compact encoding, integer bit patterns), so writer and reader agree
// byte-for-byte.
func (f *File) checksum() string {
	cp := *f
	cp.Checksum = ""
	data, err := json.Marshal(&cp)
	if err != nil {
		// The struct contains only marshalable fields; this cannot happen.
		return ""
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// CorruptError reports a checkpoint file whose bytes cannot be trusted:
// unparseable JSON or a failed content checksum. Quarantined is the path
// the file was moved to when Arm set it aside ("" when only Load ran, or
// when the rename itself failed — Reason then includes why).
type CorruptError struct {
	Path        string // the checkpoint file that failed validation
	Quarantined string // where Arm moved it, "" if not (yet) quarantined
	Reason      string // what failed: parse error or checksum mismatch
}

func (e *CorruptError) Error() string {
	msg := fmt.Sprintf("resume: checkpoint %s is corrupt: %s", e.Path, e.Reason)
	if e.Quarantined != "" {
		msg += fmt.Sprintf(" (quarantined to %s)", e.Quarantined)
	}
	return msg
}

// Load reads and validates a checkpoint file. A missing file is not an
// error: it returns (nil, nil), the fresh-start case. Unparseable bytes or
// a failed content checksum return a *CorruptError; identity and layout
// problems in an intact document return plain errors.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("resume: %w", err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("not valid JSON: %v", err)}
	}
	if f.Version != Version && f.Version != legacyVersion {
		return nil, fmt.Errorf("resume: checkpoint %s has format version %d; this build reads versions %d and %d", path, f.Version, legacyVersion, Version)
	}
	if f.Version >= 2 {
		if f.Checksum == "" {
			return nil, &CorruptError{Path: path, Reason: "version 2 file has no checksum"}
		}
		if want := f.checksum(); f.Checksum != want {
			return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("checksum mismatch: file says %.12s…, content hashes to %.12s…", f.Checksum, want)}
		}
	}
	if f.Kind != KindSites && f.Kind != KindWords {
		return nil, fmt.Errorf("resume: checkpoint %s has unknown kind %q", path, f.Kind)
	}
	prev := 0
	total := 0
	for _, r := range f.Done {
		if r.Lo < prev || r.Hi <= r.Lo || r.Hi > f.Units {
			return nil, fmt.Errorf("resume: checkpoint %s has malformed done range [%d,%d) (units %d)", path, r.Lo, r.Hi, f.Units)
		}
		prev = r.Hi
		total += r.Hi - r.Lo
	}
	if f.Kind == KindSites && len(f.Values) != total {
		return nil, fmt.Errorf("resume: checkpoint %s has %d values for %d done units", path, len(f.Values), total)
	}
	return &f, nil
}

// Checkpoint names a checkpoint file and its write cadence. It is the value
// carried by engine requests; Arm binds it to one concrete sweep.
type Checkpoint struct {
	path     string
	interval time.Duration
}

// New returns a checkpoint handle for path. interval is the minimum time
// between checkpoint writes; an interval <= 0 writes after every committed
// batch or word (maximally durable, and deterministic for tests). The final
// Flush always writes regardless of cadence.
func New(path string, interval time.Duration) *Checkpoint {
	return &Checkpoint{path: path, interval: interval}
}

// Path returns the checkpoint file path ("" for an in-memory checkpoint).
func (cp *Checkpoint) Path() string { return cp.path }

// InMemory returns a checkpoint with no backing file: commits and flushes
// update the State's done set and values but never touch disk. It gives a
// caller the package's progress bookkeeping — done ranges, pending
// complement, value restoration, fingerprint binding — without durability:
// the distributed coordinator uses it to track which shard ranges have been
// committed (and re-dispatch the complement after a worker failure) when no
// checkpoint directory is configured.
func InMemory() *Checkpoint { return &Checkpoint{} }

// Arm binds the checkpoint to one concrete sweep: engine name, request
// fingerprint, unit kind and total unit count. If the file exists, its
// identity must match exactly — a mismatch (different circuit, options,
// engine or unit count) is an error, never a silent restart; delete the
// file to start fresh. A corrupt file (torn bytes, failed checksum) is
// quarantined to <path>.corrupt and reported as a *CorruptError — a
// subsequent Arm then starts fresh; ArmRecovering does both steps in one
// call. The returned State carries any restored progress and accepts
// commits.
func (cp *Checkpoint) Arm(engineName, fingerprint, kind string, units int) (*State, error) {
	f, err := Load(cp.path)
	var ce *CorruptError
	if errors.As(err, &ce) {
		q := cp.path + ".corrupt"
		if rerr := os.Rename(cp.path, q); rerr != nil {
			ce.Reason += fmt.Sprintf("; quarantine rename failed: %v", rerr)
		} else {
			ce.Quarantined = q
		}
		return nil, ce
	}
	if err != nil {
		return nil, err
	}
	s := &State{
		cp:       cp,
		engine:   engineName,
		fp:       fingerprint,
		kind:     kind,
		units:    units,
		doneBits: make([]uint64, (units+63)/64),
		//serlint:allow detsource checkpoint write cadence is scheduling only; the wall clock is never serialized into the checkpoint or any result
		last: time.Now(),
	}
	if kind == KindSites {
		s.values = make([]uint64, units)
	}
	if f == nil {
		return s, nil
	}
	switch {
	case f.Engine != engineName:
		err = fmt.Errorf("engine %q (request wants %q)", f.Engine, engineName)
	case f.Kind != kind:
		err = fmt.Errorf("kind %q (request wants %q)", f.Kind, kind)
	case f.Units != units:
		err = fmt.Errorf("%d units (request wants %d)", f.Units, units)
	case f.Fingerprint != fingerprint:
		err = fmt.Errorf("a different request fingerprint")
	}
	if err != nil {
		return nil, fmt.Errorf("resume: checkpoint %s was written by %v; delete the file to start fresh", cp.path, err)
	}
	vi := 0
	for _, r := range f.Done {
		for u := r.Lo; u < r.Hi; u++ {
			s.doneBits[u/64] |= 1 << uint(u%64)
			if kind == KindSites {
				s.values[u] = f.Values[vi]
				vi++
			}
		}
		s.doneCount += r.Hi - r.Lo
	}
	s.counters = f.Counters.clone()
	return s, nil
}

// ArmRecovering arms like Arm, but when the existing file is corrupt
// (Arm has already quarantined it) it restarts the sweep with a fresh
// State instead of failing. The returned *CorruptError, when non-nil,
// describes the quarantined file so the caller can log or surface the
// event; identity mismatches and I/O errors still fail hard.
func (cp *Checkpoint) ArmRecovering(engineName, fingerprint, kind string, units int) (*State, *CorruptError, error) {
	st, err := cp.Arm(engineName, fingerprint, kind, units)
	var ce *CorruptError
	if errors.As(err, &ce) {
		st, err = cp.Arm(engineName, fingerprint, kind, units)
		return st, ce, err
	}
	return st, nil, err
}

// State is one armed sweep's checkpoint state: the done-unit set plus the
// restored and subsequently committed values/counters. Commit methods are
// safe for concurrent use (sweep drivers call them under their merge mutex
// anyway); Flush is called once after the sweep stops.
type State struct {
	mu        sync.Mutex
	cp        *Checkpoint
	engine    string
	fp        string
	kind      string
	units     int
	doneBits  []uint64
	doneCount int
	values    []uint64  // sites: per-unit IEEE-754 bits, valid where done
	counters  *Counters // words: snapshot consistent with doneBits at last commit
	last      time.Time
	dirty     bool
}

// DoneUnits returns the number of completed units (restored plus committed).
func (s *State) DoneUnits() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.doneCount
}

// DoneRanges returns the completed units as sorted disjoint ranges.
func (s *State) DoneRanges() []Range {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rangesLocked()
}

// DoneMask returns the completed units as a dense boolean mask.
func (s *State) DoneMask() []bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	mask := make([]bool, s.units)
	for u := 0; u < s.units; u++ {
		if s.doneBits[u/64]>>uint(u%64)&1 == 1 {
			mask[u] = true
		}
	}
	return mask
}

// RestoreSites writes the restored per-site values into out (indexed by
// unit) and returns the restored ranges. Only meaningful for KindSites.
func (s *State) RestoreSites(out []float64) []Range {
	s.mu.Lock()
	defer s.mu.Unlock()
	ranges := s.rangesLocked()
	for _, r := range ranges {
		for u := r.Lo; u < r.Hi; u++ {
			out[u] = math.Float64frombits(s.values[u])
		}
	}
	return ranges
}

// Counters returns the restored counter snapshot, or nil for a fresh start.
// Only meaningful for KindWords.
func (s *State) Counters() *Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters.clone()
}

// CommitSites records units [lo, hi) as completed with the given values and
// writes the file if the cadence is due.
func (s *State) CommitSites(lo, hi int, vals []float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for u := lo; u < hi; u++ {
		if s.doneBits[u/64]>>uint(u%64)&1 == 0 {
			s.doneBits[u/64] |= 1 << uint(u%64)
			s.doneCount++
		}
		s.values[u] = math.Float64bits(vals[u-lo])
	}
	s.dirty = true
	if s.dueLocked() {
		return s.writeLocked()
	}
	return nil
}

// CommitWord records word w as completed. snap must return a counter
// snapshot consistent with every committed word including w; it is invoked
// only when the cadence makes this commit write the file, so the caller can
// afford a full copy per write rather than per word.
func (s *State) CommitWord(w int, snap func() Counters) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.doneBits[w/64]>>uint(w%64)&1 == 0 {
		s.doneBits[w/64] |= 1 << uint(w%64)
		s.doneCount++
	}
	s.dirty = true
	if s.dueLocked() {
		c := snap()
		s.counters = &c
		return s.writeLocked()
	}
	return nil
}

// FlushCounters writes the final state of a word-major sweep with the given
// counter snapshot (consistent with all committed words). Call it after the
// sweep's workers have stopped.
func (s *State) FlushCounters(c Counters) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters = &c
	return s.writeLocked()
}

// Flush writes the current state if anything was committed since the last
// write. Call it after the sweep stops, on success and on error alike — the
// file then reflects every committed unit, not just the last cadence write.
// For a word-major sweep a dirty flush is refused silently: the done bits
// may be ahead of the last counter snapshot, and writing the pair would be
// inconsistent — the word-major success path is FlushCounters, and on error
// the file keeps the last consistent cadence write.
func (s *State) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.dirty || s.kind == KindWords {
		return nil
	}
	return s.writeLocked()
}

func (s *State) dueLocked() bool {
	//serlint:allow detsource checkpoint write cadence is scheduling only; it decides when to persist, never what is persisted
	return s.cp.interval <= 0 || time.Since(s.last) >= s.cp.interval
}

func (s *State) rangesLocked() []Range {
	var out []Range
	for u := 0; u < s.units; u++ {
		if s.doneBits[u/64]>>uint(u%64)&1 == 0 {
			continue
		}
		if len(out) > 0 && out[len(out)-1].Hi == u {
			out[len(out)-1].Hi = u + 1
		} else {
			out = append(out, Range{Lo: u, Hi: u + 1})
		}
	}
	return out
}

// writeLocked serializes the state and atomically replaces the checkpoint
// file: write to a temp file in the same directory, fsync, rename. An
// in-memory checkpoint (empty path) skips the write.
func (s *State) writeLocked() error {
	if s.cp.path == "" {
		//serlint:allow detsource checkpoint write cadence is scheduling only; the timestamp gates the next write and is never serialized
		s.last = time.Now()
		s.dirty = false
		return nil
	}
	f := File{
		Version:     Version,
		Engine:      s.engine,
		Fingerprint: s.fp,
		Kind:        s.kind,
		Units:       s.units,
		Done:        s.rangesLocked(),
		Counters:    s.counters,
	}
	if s.kind == KindSites {
		f.Values = make([]uint64, 0, s.doneCount)
		for _, r := range f.Done {
			for u := r.Lo; u < r.Hi; u++ {
				f.Values = append(f.Values, s.values[u])
			}
		}
	}
	f.Checksum = f.checksum()
	data, err := json.Marshal(&f)
	if err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	dir := filepath.Dir(s.cp.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(s.cp.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), s.cp.path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resume: %w", werr)
	}
	//serlint:allow detsource checkpoint write cadence is scheduling only; the timestamp gates the next write and is never serialized
	s.last = time.Now()
	s.dirty = false
	return nil
}
