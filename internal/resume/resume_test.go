package resume

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSiteRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	cp := New(path, 0)
	st, err := cp.Arm("epp-batch", "fp1", KindSites, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.DoneUnits() != 0 {
		t.Fatalf("fresh state has %d done units", st.DoneUnits())
	}
	// Values chosen to break any float round-tripping that is not
	// bit-exact: a subnormal, an irrational dense in mantissa bits, NaN.
	vals := []float64{math.SmallestNonzeroFloat64, math.Pi, math.NaN(), 0.1}
	if err := st.CommitSites(2, 6, vals); err != nil {
		t.Fatal(err)
	}
	if err := st.CommitSites(8, 10, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}

	st2, err := New(path, 0).Arm("epp-batch", "fp1", KindSites, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.DoneUnits(); got != 6 {
		t.Fatalf("restored %d done units, want 6", got)
	}
	wantRanges := []Range{{2, 6}, {8, 10}}
	gotRanges := st2.DoneRanges()
	if len(gotRanges) != len(wantRanges) {
		t.Fatalf("restored ranges %v, want %v", gotRanges, wantRanges)
	}
	for i := range wantRanges {
		if gotRanges[i] != wantRanges[i] {
			t.Fatalf("restored ranges %v, want %v", gotRanges, wantRanges)
		}
	}
	out := make([]float64, 10)
	st2.RestoreSites(out)
	for i, want := range vals {
		got := out[2+i]
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("restored out[%d] = %x, want %x (not bit-exact)", 2+i, math.Float64bits(got), math.Float64bits(want))
		}
	}
	if out[8] != 1 || out[9] != 2 {
		t.Errorf("restored out[8:10] = %v, want [1 2]", out[8:10])
	}
	if out[0] != 0 || out[6] != 0 {
		t.Errorf("units never committed must stay zero, got out[0]=%v out[6]=%v", out[0], out[6])
	}
}

func TestWordRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	st, err := New(path, 0).Arm("monte-carlo", "fp", KindWords, 8)
	if err != nil {
		t.Fatal(err)
	}
	snap := Counters{Detected: []int64{3, 0, 7}, Words: 2, GoodSims: 2, LaneSims: 11, SweptMembers: 5}
	for _, w := range []int{1, 5} {
		if err := st.CommitWord(w, func() Counters { return snap }); err != nil {
			t.Fatal(err)
		}
	}
	st2, err := New(path, 0).Arm("monte-carlo", "fp", KindWords, 8)
	if err != nil {
		t.Fatal(err)
	}
	mask := st2.DoneMask()
	for w, want := range []bool{false, true, false, false, false, true, false, false} {
		if mask[w] != want {
			t.Fatalf("restored mask[%d] = %v, want %v (mask %v)", w, mask[w], want, mask)
		}
	}
	c := st2.Counters()
	if c == nil || c.Words != 2 || len(c.Detected) != 3 || c.Detected[2] != 7 {
		t.Fatalf("restored counters %+v, want %+v", c, snap)
	}
}

func TestArmMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	st, err := New(path, 0).Arm("epp-batch", "fp1", KindSites, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CommitSites(0, 2, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		eng, fp, kind string
		units         int
	}{
		{"epp-scalar", "fp1", KindSites, 4}, // engine changed
		{"epp-batch", "fp2", KindSites, 4},  // request changed
		{"epp-batch", "fp1", KindWords, 4},  // kind changed
		{"epp-batch", "fp1", KindSites, 5},  // unit count changed
	}
	for _, tc := range cases {
		if _, err := New(path, 0).Arm(tc.eng, tc.fp, tc.kind, tc.units); err == nil {
			t.Errorf("Arm(%q,%q,%q,%d) against a mismatched checkpoint succeeded; want error", tc.eng, tc.fp, tc.kind, tc.units)
		}
	}
	// The matching identity still arms.
	if _, err := New(path, 0).Arm("epp-batch", "fp1", KindSites, 4); err != nil {
		t.Errorf("matching Arm failed: %v", err)
	}
}

func TestLoadRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if f, err := Load(filepath.Join(dir, "absent.json")); f != nil || err != nil {
		t.Errorf("Load(absent) = %v, %v; want nil, nil", f, err)
	}
	if _, err := Load(write("garbage.json", "{")); err == nil {
		t.Error("Load accepted truncated JSON")
	}
	if _, err := Load(write("version.json", `{"version":99,"kind":"sites"}`)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("Load accepted unknown version: %v", err)
	}
	if _, err := Load(write("kind.json", `{"version":1,"kind":"bogus"}`)); err == nil {
		t.Error("Load accepted unknown kind")
	}
	if _, err := Load(write("range.json", `{"version":1,"kind":"words","units":4,"done":[{"lo":3,"hi":2}]}`)); err == nil {
		t.Error("Load accepted malformed range")
	}
	if _, err := Load(write("values.json", `{"version":1,"kind":"sites","units":4,"done":[{"lo":0,"hi":2}],"values":[1]}`)); err == nil {
		t.Error("Load accepted values/done length mismatch")
	}
}

// TestChecksumWrittenAndVerified: every written file carries a checksum
// that verifies on load, and any byte-level tampering that keeps the JSON
// parseable is caught as a *CorruptError.
func TestChecksumWrittenAndVerified(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	st, err := New(path, 0).Arm("epp-batch", "fp", KindSites, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CommitSites(0, 2, []float64{0.25, 0.5}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if f.Version != Version || f.Checksum == "" || f.Checksum != f.checksum() {
		t.Fatalf("written file version=%d checksum=%q (recomputed %q)", f.Version, f.Checksum, f.checksum())
	}

	// Flip one stored value bit while keeping valid JSON: the checksum
	// must catch it.
	tampered := strings.Replace(string(data), `"values":[`, `"values":[1,`, 1)
	if tampered == string(data) {
		t.Fatal("tamper produced identical bytes")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(path)
	var ce *CorruptError
	if !errors.As(err, &ce) || !strings.Contains(ce.Reason, "checksum") {
		t.Fatalf("Load(tampered) = %v, want *CorruptError with checksum reason", err)
	}
}

// TestLegacyVersion1StillLoads: a version-1 file (no checksum) written by
// an older build resumes without an integrity check — the compatibility
// promise of the version bump.
func TestLegacyVersion1StillLoads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	legacy := File{
		Version:     legacyVersion,
		Engine:      "epp-batch",
		Fingerprint: "fp",
		Kind:        KindSites,
		Units:       4,
		Done:        []Range{{0, 2}},
		Values:      []uint64{math.Float64bits(0.25), math.Float64bits(0.5)},
	}
	data, err := json.Marshal(&legacy)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := New(path, 0).Arm("epp-batch", "fp", KindSites, 4)
	if err != nil {
		t.Fatalf("Arm against legacy v1 file: %v", err)
	}
	out := make([]float64, 4)
	st.RestoreSites(out)
	if out[0] != 0.25 || out[1] != 0.5 {
		t.Fatalf("legacy restore: %v", out)
	}
	// Committing more work rewrites the file at the current version, with
	// a checksum.
	if err := st.CommitSites(2, 4, []float64{0.75, 1}); err != nil {
		t.Fatal(err)
	}
	f, err := Load(path)
	if err != nil || f.Version != Version || f.Checksum == "" {
		t.Fatalf("rewritten legacy file: %+v, %v", f, err)
	}
}

// TestArmQuarantinesCorruptFile: Arm moves an unreadable checkpoint to
// <path>.corrupt and reports a structured error; the immediate re-Arm (and
// ArmRecovering in one call) starts fresh while the quarantined bytes
// survive for forensics.
func TestArmQuarantinesCorruptFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	if err := os.WriteFile(path, []byte(`{"version":2,"kind":"sites",`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := New(path, 0).Arm("epp-batch", "fp", KindSites, 4)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Arm(corrupt) = %v, want *CorruptError", err)
	}
	if ce.Quarantined != path+".corrupt" {
		t.Fatalf("quarantine path %q", ce.Quarantined)
	}
	if _, serr := os.Stat(ce.Quarantined); serr != nil {
		t.Fatalf("quarantined file missing: %v", serr)
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Fatalf("corrupt file still in place (stat err %v)", serr)
	}
	// The path is clear now: a fresh Arm succeeds with no restored work.
	st, err := New(path, 0).Arm("epp-batch", "fp", KindSites, 4)
	if err != nil || st.DoneUnits() != 0 {
		t.Fatalf("re-Arm after quarantine: %v (done %d)", err, st.DoneUnits())
	}

	// ArmRecovering folds both steps: corrupt file in place, one call.
	path2 := filepath.Join(dir, "ck2.json")
	if err := os.WriteFile(path2, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, ce2, err := New(path2, 0).ArmRecovering("epp-batch", "fp", KindSites, 4)
	if err != nil || ce2 == nil || st2 == nil || st2.DoneUnits() != 0 {
		t.Fatalf("ArmRecovering = %v, %v, %v", st2, ce2, err)
	}

	// An identity mismatch is NOT corruption: no quarantine, hard error.
	path3 := filepath.Join(dir, "ck3.json")
	st3, err := New(path3, 0).Arm("epp-batch", "fpA", KindSites, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := st3.CommitSites(0, 1, []float64{1}); err != nil {
		t.Fatal(err)
	}
	_, ce3, err := New(path3, 0).ArmRecovering("epp-batch", "fpB", KindSites, 4)
	if err == nil || ce3 != nil {
		t.Fatalf("mismatched fingerprint: err=%v ce=%v (want hard error, no quarantine)", err, ce3)
	}
	if _, serr := os.Stat(path3); serr != nil {
		t.Fatalf("mismatched file was moved: %v", serr)
	}
}

func TestIntervalCadence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	// A huge interval: only the initial commit cadence decides writes — with
	// interval > 0 nothing is due immediately, so no file appears until Flush.
	st, err := New(path, 1e18).Arm("epp-batch", "fp", KindSites, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CommitSites(0, 2, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("checkpoint written before cadence was due (stat err %v)", err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	f, err := Load(path)
	if err != nil || f == nil {
		t.Fatalf("Load after Flush: %v, %v", f, err)
	}
	if len(f.Done) != 1 || f.Done[0] != (Range{0, 2}) {
		t.Fatalf("flushed done = %v, want [{0 2}]", f.Done)
	}
}

func TestAtomicWriteLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	st, err := New(path, 0).Arm("epp-batch", "fp", KindSites, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CommitSites(0, 2, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "ck.json" {
			t.Errorf("stray file %q left next to the checkpoint", e.Name())
		}
	}
	// The written file is valid standalone JSON of the documented shape.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if f.Version != Version {
		t.Fatalf("written version %d, want %d", f.Version, Version)
	}
}

func TestWordFlushRefusesInconsistentState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	st, err := New(path, 1e18).Arm("monte-carlo", "fp", KindWords, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Commit without a due write: done bits advance, counters do not.
	if err := st.CommitWord(0, func() Counters { t.Fatal("snap called though no write was due"); return Counters{} }); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("Flush wrote a word-major state whose counters lag its done bits")
	}
	// FlushCounters with a consistent snapshot does write.
	if err := st.FlushCounters(Counters{Detected: []int64{1}, Words: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("FlushCounters did not write: %v", err)
	}
}
