// Bit-parallel gate evaluation: EvalWord folds one gate kind over 64-bit
// pattern words, the primitive every simulator kernel in the repository
// shares.

package logic

// This file provides n-ary Boolean evaluation of gate kinds over plain bools
// and over 64-wide bit-parallel words (one simulation pattern per bit). The
// word forms are the hot path of the Monte Carlo baseline simulator.

// EvalBool evaluates gate kind k over the given fanin values. Source kinds
// (Input, DFF) are not evaluable here; callers must supply their values
// externally. Const0/Const1 ignore ins.
func EvalBool(k Kind, ins []bool) bool {
	switch k {
	case Const0:
		return false
	case Const1:
		return true
	case Buf:
		return ins[0]
	case Not:
		return !ins[0]
	case And:
		for _, v := range ins {
			if !v {
				return false
			}
		}
		return true
	case Nand:
		for _, v := range ins {
			if !v {
				return true
			}
		}
		return false
	case Or:
		for _, v := range ins {
			if v {
				return true
			}
		}
		return false
	case Nor:
		for _, v := range ins {
			if v {
				return false
			}
		}
		return true
	case Xor:
		p := false
		for _, v := range ins {
			p = p != v
		}
		return p
	case Xnor:
		p := true
		for _, v := range ins {
			p = p != v
		}
		return p
	}
	panic("logic: EvalBool on non-gate kind " + k.String())
}

// EvalWord evaluates gate kind k bitwise over 64 parallel patterns.
func EvalWord(k Kind, ins []uint64) uint64 {
	switch k {
	case Const0:
		return 0
	case Const1:
		return ^uint64(0)
	case Buf:
		return ins[0]
	case Not:
		return ^ins[0]
	case And:
		v := ^uint64(0)
		for _, w := range ins {
			v &= w
		}
		return v
	case Nand:
		v := ^uint64(0)
		for _, w := range ins {
			v &= w
		}
		return ^v
	case Or:
		v := uint64(0)
		for _, w := range ins {
			v |= w
		}
		return v
	case Nor:
		v := uint64(0)
		for _, w := range ins {
			v |= w
		}
		return ^v
	case Xor:
		v := uint64(0)
		for _, w := range ins {
			v ^= w
		}
		return v
	case Xnor:
		v := uint64(0)
		for _, w := range ins {
			v ^= w
		}
		return ^v
	}
	panic("logic: EvalWord on non-gate kind " + k.String())
}

// ControllingValue returns (value, ok): the input value that forces the gate
// output regardless of other inputs, if the kind has one. AND/NAND are
// controlled by 0, OR/NOR by 1; XOR/XNOR, Buf and Not have none.
func ControllingValue(k Kind) (bool, bool) {
	switch k {
	case And, Nand:
		return false, true
	case Or, Nor:
		return true, true
	}
	return false, false
}

// OutputInversion reports whether the kind complements its "core" function
// (NAND vs AND, NOR vs OR, XNOR vs XOR, NOT vs BUF).
func OutputInversion(k Kind) bool {
	switch k {
	case Nand, Nor, Xnor, Not:
		return true
	}
	return false
}

// DeInvert maps an inverting kind to its non-inverting core (NAND→AND,
// NOR→OR, XNOR→XOR, NOT→BUF); non-inverting kinds map to themselves.
func DeInvert(k Kind) Kind {
	switch k {
	case Nand:
		return And
	case Nor:
		return Or
	case Xnor:
		return Xor
	case Not:
		return Buf
	}
	return k
}
