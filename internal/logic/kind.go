// Package logic defines the gate-level value and gate-kind algebra shared by
// every other package in the repository: Boolean gate kinds with n-ary
// evaluation over single bits and over 64-wide bit-parallel words, and the
// four-valued error-propagation symbol algebra used by the EPP engine
// (Asadi & Tahoori, DATE 2005).
package logic

import "fmt"

// Kind identifies the function of a gate (or the role of a non-gate node such
// as a primary input or a D flip-flop).
type Kind uint8

// Gate kinds. Input and DFF are "source" kinds for combinational analysis:
// their value for the current clock cycle does not depend on any current-cycle
// fanin. Const0/Const1 are tie cells.
const (
	Input  Kind = iota // primary input (no fanin)
	DFF                // D flip-flop (one fanin: D), output is stored state
	Buf                // buffer, one fanin
	Not                // inverter, one fanin
	And                // n-ary AND, n >= 1
	Nand               // n-ary NAND, n >= 1
	Or                 // n-ary OR, n >= 1
	Nor                // n-ary NOR, n >= 1
	Xor                // n-ary XOR (odd parity), n >= 1
	Xnor               // n-ary XNOR (even parity), n >= 1
	Const0             // constant logic 0, no fanin
	Const1             // constant logic 1, no fanin
	numKinds
)

var kindNames = [numKinds]string{
	Input:  "INPUT",
	DFF:    "DFF",
	Buf:    "BUFF",
	Not:    "NOT",
	And:    "AND",
	Nand:   "NAND",
	Or:     "OR",
	Nor:    "NOR",
	Xor:    "XOR",
	Xnor:   "XNOR",
	Const0: "CONST0",
	Const1: "CONST1",
}

// String returns the canonical upper-case name of the kind, matching the
// ISCAS'89 .bench spelling where one exists (e.g. BUFF for a buffer).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k is one of the defined kinds.
func (k Kind) Valid() bool { return k < numKinds }

// IsSource reports whether the node's current-cycle value is independent of
// its current-cycle fanins (primary inputs, flip-flops, tie cells).
func (k Kind) IsSource() bool {
	return k == Input || k == DFF || k == Const0 || k == Const1
}

// IsGate reports whether k is a combinational gate (has fanins that determine
// its output in the current cycle).
func (k Kind) IsGate() bool {
	switch k {
	case Buf, Not, And, Nand, Or, Nor, Xor, Xnor:
		return true
	}
	return false
}

// Inverting reports whether the gate kind inverts the "controlled" output
// (NOT, NAND, NOR, XNOR). For XNOR this refers to the parity complement.
func (k Kind) Inverting() bool {
	return k == Not || k == Nand || k == Nor || k == Xnor
}

// MinFanin returns the minimum legal fanin count for the kind.
func (k Kind) MinFanin() int {
	switch k {
	case Input, Const0, Const1:
		return 0
	case DFF, Buf, Not:
		return 1
	default:
		return 1
	}
}

// MaxFanin returns the maximum legal fanin count for the kind, or -1 for
// unbounded (n-ary gates).
func (k Kind) MaxFanin() int {
	switch k {
	case Input, Const0, Const1:
		return 0
	case DFF, Buf, Not:
		return 1
	default:
		return -1
	}
}

// FaninOK reports whether a fanin count n is legal for kind k.
func (k Kind) FaninOK(n int) bool {
	if n < k.MinFanin() {
		return false
	}
	if max := k.MaxFanin(); max >= 0 && n > max {
		return false
	}
	return true
}

// ParseKind maps a .bench-style gate name (case-insensitive) to a Kind.
// Both "BUF" and "BUFF" are accepted for buffers.
func ParseKind(s string) (Kind, bool) {
	switch upper(s) {
	case "INPUT":
		return Input, true
	case "DFF":
		return DFF, true
	case "BUF", "BUFF":
		return Buf, true
	case "NOT", "INV":
		return Not, true
	case "AND":
		return And, true
	case "NAND":
		return Nand, true
	case "OR":
		return Or, true
	case "NOR":
		return Nor, true
	case "XOR":
		return Xor, true
	case "XNOR":
		return Xnor, true
	case "CONST0", "GND", "TIE0":
		return Const0, true
	case "CONST1", "VDD", "TIE1":
		return Const1, true
	}
	return 0, false
}

// upper upper-cases an ASCII string without importing strings (hot path in
// the .bench lexer).
func upper(s string) string {
	b := []byte(s)
	changed := false
	for i := range b {
		if b[i] >= 'a' && b[i] <= 'z' {
			b[i] -= 'a' - 'A'
			changed = true
		}
	}
	if !changed {
		return s
	}
	return string(b)
}

// AllGateKinds lists the combinational gate kinds, useful for randomized
// circuit generation and property tests.
func AllGateKinds() []Kind {
	return []Kind{Buf, Not, And, Nand, Or, Nor, Xor, Xnor}
}
