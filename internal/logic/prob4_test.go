package logic

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// randProb4 draws a random normalized four-valued state.
func randProb4(rng *rand.Rand) Prob4 {
	var p Prob4
	sum := 0.0
	for i := range p {
		p[i] = rng.Float64()
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

func prob4Close(a, b Prob4, eps float64) bool {
	for i := range a {
		if math.Abs(a[i]-b[i]) > eps {
			return false
		}
	}
	return true
}

func TestFromSP(t *testing.T) {
	p := FromSP(0.3)
	if p.P1() != 0.3 || p.P0() != 0.7 || p.PA() != 0 || p.PABar() != 0 {
		t.Errorf("FromSP(0.3) = %v", p)
	}
	if !p.Valid(1e-12) {
		t.Errorf("FromSP(0.3) invalid: %v", p)
	}
}

func TestErrorSite(t *testing.T) {
	p := ErrorSite()
	if p.PA() != 1 || p.Sum() != 1 {
		t.Errorf("ErrorSite() = %v", p)
	}
	if p.PErr() != 1 {
		t.Errorf("ErrorSite().PErr() = %v", p.PErr())
	}
}

func TestInvertInvolution(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 100; i++ {
		p := randProb4(rng)
		if got := p.Invert().Invert(); !prob4Close(got, p, 0) {
			t.Fatalf("double inversion changed state: %v -> %v", p, got)
		}
		inv := p.Invert()
		if inv.PA() != p.PABar() || inv.P0() != p.P1() {
			t.Fatalf("inversion did not swap fields: %v -> %v", p, inv)
		}
		if inv.PErr() != p.PErr() {
			t.Fatalf("inversion changed PErr")
		}
	}
}

// TestSymbolicAlgebra pins the correlated-error algebra that makes polarity
// tracking work at reconvergence gates.
func TestSymbolicAlgebra(t *testing.T) {
	cases := []struct {
		k    Kind
		x, y Sym
		want Sym
	}{
		// AND: a · a̅ = 0 because the two carry complementary values.
		{And, SymA, SymABar, SymZero},
		{And, SymA, SymA, SymA},
		{And, SymABar, SymABar, SymABar},
		{And, SymA, SymOne, SymA},
		{And, SymA, SymZero, SymZero},
		// OR: a + a̅ = 1.
		{Or, SymA, SymABar, SymOne},
		{Or, SymA, SymA, SymA},
		{Or, SymA, SymZero, SymA},
		{Or, SymABar, SymOne, SymOne},
		// XOR: a ⊕ a = 0, a ⊕ a̅ = 1, a ⊕ 1 = a̅.
		{Xor, SymA, SymA, SymZero},
		{Xor, SymA, SymABar, SymOne},
		{Xor, SymA, SymZero, SymA},
		{Xor, SymA, SymOne, SymABar},
		{Xor, SymABar, SymABar, SymZero},
		{Xor, SymZero, SymOne, SymOne},
	}
	for _, c := range cases {
		if got := symEval(c.k, c.x, c.y); got != c.want {
			t.Errorf("symEval(%v, %v, %v) = %v, want %v", c.k, c.x, c.y, got, c.want)
		}
		// All three cores are commutative.
		if got := symEval(c.k, c.y, c.x); got != c.want {
			t.Errorf("symEval(%v, %v, %v) = %v, want %v (commuted)", c.k, c.y, c.x, got, c.want)
		}
	}
}

// TestCombine2Normalized: combining normalized states yields a normalized
// state for every core kind.
func TestCombine2Normalized(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, k := range []Kind{And, Or, Xor} {
		for i := 0; i < 200; i++ {
			x, y := randProb4(rng), randProb4(rng)
			out := Combine2(k, x, y)
			if !out.Valid(1e-9) {
				t.Fatalf("Combine2(%v, %v, %v) = %v not normalized (sum %v)",
					k, x, y, out, out.Sum())
			}
		}
	}
}

// TestCombine2MatchesPaperANDRule: the generic 4×4 enumeration must coincide
// with the closed-form product rules of the paper's Table 1 for AND and OR.
func TestCombine2MatchesPaperANDRule(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 500; i++ {
		x, y := randProb4(rng), randProb4(rng)

		and := Combine2(And, x, y)
		p1 := x.P1() * y.P1()
		pa := (x.P1()+x.PA())*(y.P1()+y.PA()) - p1
		pab := (x.P1()+x.PABar())*(y.P1()+y.PABar()) - p1
		want := Prob4{SymA: pa, SymABar: pab, SymZero: 1 - p1 - pa - pab, SymOne: p1}
		if !prob4Close(and, want, 1e-12) {
			t.Fatalf("AND mismatch: enum %v, closed form %v", and, want)
		}

		or := Combine2(Or, x, y)
		p0 := x.P0() * y.P0()
		pa = (x.P0()+x.PA())*(y.P0()+y.PA()) - p0
		pab = (x.P0()+x.PABar())*(y.P0()+y.PABar()) - p0
		wantOr := Prob4{SymA: pa, SymABar: pab, SymZero: p0, SymOne: 1 - p0 - pa - pab}
		if !prob4Close(or, wantOr, 1e-12) {
			t.Fatalf("OR mismatch: enum %v, closed form %v", or, wantOr)
		}
	}
}

// TestCombineNDuality: NAND == Invert(AND) etc. at the distribution level.
func TestCombineNDuality(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	duals := map[Kind]Kind{Nand: And, Nor: Or, Xnor: Xor}
	for inv, core := range duals {
		for i := 0; i < 100; i++ {
			ins := []Prob4{randProb4(rng), randProb4(rng), randProb4(rng)}
			a := CombineN(inv, ins)
			b := CombineN(core, ins).Invert()
			if !prob4Close(a, b, 1e-12) {
				t.Fatalf("%v != Invert(%v): %v vs %v", inv, core, a, b)
			}
		}
	}
}

// TestCombineNOffPathReducesToSP: with purely off-path inputs (no error
// mass), the EPP combination must reduce to ordinary signal probability
// propagation.
func TestCombineNOffPathReducesToSP(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	for i := 0; i < 200; i++ {
		p, q, r := rng.Float64(), rng.Float64(), rng.Float64()
		ins := []Prob4{FromSP(p), FromSP(q), FromSP(r)}

		and := CombineN(And, ins)
		if math.Abs(and.P1()-p*q*r) > 1e-12 || and.PErr() != 0 {
			t.Fatalf("AND of off-path states: %v, want P1=%v", and, p*q*r)
		}
		or := CombineN(Or, ins)
		want := 1 - (1-p)*(1-q)*(1-r)
		if math.Abs(or.P1()-want) > 1e-12 || or.PErr() != 0 {
			t.Fatalf("OR of off-path states: %v, want P1=%v", or, want)
		}
		xor := CombineN(Xor, ins[:2])
		wantX := p*(1-q) + q*(1-p)
		if math.Abs(xor.P1()-wantX) > 1e-12 {
			t.Fatalf("XOR of off-path states: %v, want P1=%v", xor, wantX)
		}
	}
}

// TestErrMassConservationBuffer: a buffer/inverter chain preserves total
// error mass.
func TestErrMassConservationBuffer(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for i := 0; i < 100; i++ {
		p := randProb4(rng)
		buf := CombineN(Buf, []Prob4{p})
		not := CombineN(Not, []Prob4{p})
		if !prob4Close(buf, p, 0) {
			t.Fatalf("buffer changed state")
		}
		if math.Abs(not.PErr()-p.PErr()) > 1e-15 {
			t.Fatalf("inverter changed error mass")
		}
	}
}

func TestClamp(t *testing.T) {
	p := Prob4{-1e-13, 0.5, 0.25, 0.25 + 1e-13}
	c := p.Clamp()
	if c[0] != 0 {
		t.Errorf("Clamp kept tiny negative: %v", c)
	}
	if !c.Valid(1e-9) {
		t.Errorf("Clamp produced invalid state: %v", c)
	}
}

func TestProb4String(t *testing.T) {
	p := Prob4{SymA: 0.042, SymABar: 0.392, SymZero: 0.168, SymOne: 0.398}
	want := "0.042(a) + 0.392(a̅) + 0.168(0) + 0.398(1)"
	if got := p.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestSymGF2RoundTrip checks the GF(2) encoding of symbols.
func TestSymGF2RoundTrip(t *testing.T) {
	f := func(raw uint8) bool {
		s := Sym(raw % uint8(NumSyms))
		e, c := symGF2(s)
		return gf2Sym(e, c) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
