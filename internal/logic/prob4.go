// Prob4 is the paper's four-valued probability state (Pa, Pā, P0, P1):
// the polarity-tracking error-propagation alphabet of the EPP method.

package logic

import (
	"fmt"
	"math"
)

// Sym is one of the four symbolic values an on-path signal can take during
// error propagation probability (EPP) analysis: the erroneous value with even
// polarity (A), with odd polarity (ABar), or a blocked constant (Zero, One).
//
// The polarity algebra is the paper's key device: A denotes the *same*
// unknown erroneous Boolean value everywhere it appears within one analysis,
// so A AND ABar = 0, A XOR A = 0, A XOR ABar = 1, etc. Tracking it makes the
// single topological sweep exact at reconvergence gates up to the signal
// independence assumption.
type Sym uint8

const (
	SymA    Sym = iota // erroneous value, even number of inversions from the site
	SymABar            // erroneous value, odd number of inversions
	SymZero            // error blocked, signal is logic 0
	SymOne             // error blocked, signal is logic 1
	NumSyms
)

var symNames = [NumSyms]string{"a", "a̅", "0", "1"}

// String returns the paper's notation for the symbol: a, a̅, 0 or 1.
func (s Sym) String() string {
	if s < NumSyms {
		return symNames[s]
	}
	return fmt.Sprintf("Sym(%d)", uint8(s))
}

// Prob4 is the probability distribution of an on-path signal over the four
// symbols, indexed by Sym. For a well-formed on-path state the entries are
// non-negative and sum to 1. Off-path signals are represented with
// Pa = Pā = 0 and P1 = SP, P0 = 1−SP.
type Prob4 [NumSyms]float64

// FromSP returns the off-path (pure signal probability) state for a line with
// probability sp of holding logic 1.
func FromSP(sp float64) Prob4 {
	return Prob4{SymZero: 1 - sp, SymOne: sp}
}

// ErrorSite returns the state of the error site itself: the erroneous value
// is present with even polarity with certainty.
func ErrorSite() Prob4 { return Prob4{SymA: 1} }

// PA returns the probability of carrying the error with even polarity.
func (p Prob4) PA() float64 { return p[SymA] }

// PABar returns the probability of carrying the error with odd polarity.
func (p Prob4) PABar() float64 { return p[SymABar] }

// P0 returns the probability the error is blocked at logic 0.
func (p Prob4) P0() float64 { return p[SymZero] }

// P1 returns the probability the error is blocked at logic 1.
func (p Prob4) P1() float64 { return p[SymOne] }

// PErr returns Pa + Pā: the total probability that the erroneous value is
// visible on the signal with either polarity.
func (p Prob4) PErr() float64 { return p[SymA] + p[SymABar] }

// Sum returns the total mass (1 for a normalized state).
func (p Prob4) Sum() float64 {
	return p[SymA] + p[SymABar] + p[SymZero] + p[SymOne]
}

// Invert returns the state seen through an inverter: polarities and logic
// constants swap.
func (p Prob4) Invert() Prob4 {
	return Prob4{
		SymA:    p[SymABar],
		SymABar: p[SymA],
		SymZero: p[SymOne],
		SymOne:  p[SymZero],
	}
}

// Valid reports whether the state is a probability distribution: entries in
// [-eps, 1+eps] and total within eps of 1.
func (p Prob4) Valid(eps float64) bool {
	for _, v := range p {
		if v < -eps || v > 1+eps || math.IsNaN(v) {
			return false
		}
	}
	return math.Abs(p.Sum()-1) <= eps
}

// Clamp snaps tiny negative round-off to zero and renormalizes if the sum
// drifted from 1 by floating point error. It does not attempt to repair
// grossly invalid states.
func (p Prob4) Clamp() Prob4 {
	for i, v := range p {
		if v < 0 && v > -1e-12 {
			p[i] = 0
		}
	}
	if s := p.Sum(); s > 0 && math.Abs(s-1) > 1e-15 && math.Abs(s-1) < 1e-9 {
		inv := 1 / s
		for i := range p {
			p[i] *= inv
		}
	}
	return p
}

// String renders the state in the paper's additive notation, e.g.
// "0.042(a) + 0.392(a̅) + 0.168(0) + 0.398(1)". Zero terms are kept so the
// output is positionally stable for golden tests.
func (p Prob4) String() string {
	return fmt.Sprintf("%.3f(a) + %.3f(a̅) + %.3f(0) + %.3f(1)",
		p[SymA], p[SymABar], p[SymZero], p[SymOne])
}

// symEval computes the symbolic result of a 2-input gate core (And, Or, Xor,
// Buf is not meaningful here) over two symbols, honouring the shared-error
// correlation: A and ABar are complementary unknowns, so e.g. And(A, ABar)=0.
func symEval(k Kind, x, y Sym) Sym {
	switch k {
	case And:
		switch {
		case x == SymZero || y == SymZero:
			return SymZero
		case x == SymOne:
			return y
		case y == SymOne:
			return x
		case x == y: // a·a or a̅·a̅
			return x
		default: // a·a̅ = 0
			return SymZero
		}
	case Or:
		switch {
		case x == SymOne || y == SymOne:
			return SymOne
		case x == SymZero:
			return y
		case y == SymZero:
			return x
		case x == y:
			return x
		default: // a + a̅ = 1
			return SymOne
		}
	case Xor:
		// XOR truth over {a, a̅, 0, 1}: translate to GF(2) with a as unknown.
		// a⊕a=0, a⊕a̅=1, a⊕0=a, a⊕1=a̅, plus constants.
		xe, xc := symGF2(x) // value = xe·a ⊕ xc
		ye, yc := symGF2(y)
		return gf2Sym(xe != ye, xc != yc)
	}
	panic("logic: symEval on kind " + k.String())
}

// symGF2 expresses a symbol as e·a ⊕ c over GF(2).
func symGF2(s Sym) (e, c bool) {
	switch s {
	case SymA:
		return true, false
	case SymABar:
		return true, true
	case SymZero:
		return false, false
	default:
		return false, true
	}
}

// gf2Sym is the inverse of symGF2.
func gf2Sym(e, c bool) Sym {
	switch {
	case e && !c:
		return SymA
	case e && c:
		return SymABar
	case !e && !c:
		return SymZero
	default:
		return SymOne
	}
}

// Combine2 composes two independent on-path/off-path states through a
// two-input gate core (And, Or or Xor) by exhaustive 4×4 case enumeration.
// This is the generic construction from which the paper's closed-form
// Table 1 rules are a special case; both are implemented and cross-checked.
func Combine2(k Kind, x, y Prob4) Prob4 {
	var out Prob4
	for sx := Sym(0); sx < NumSyms; sx++ {
		px := x[sx]
		if px == 0 {
			continue
		}
		for sy := Sym(0); sy < NumSyms; sy++ {
			py := y[sy]
			if py == 0 {
				continue
			}
			out[symEval(k, sx, sy)] += px * py
		}
	}
	return out
}

// CombineN folds n >= 1 independent input states through an n-ary gate of
// kind k (any combinational kind). Inverting kinds apply the final inversion
// after folding their non-inverting core.
func CombineN(k Kind, ins []Prob4) Prob4 {
	if len(ins) == 0 {
		switch k {
		case Const0:
			return FromSP(0)
		case Const1:
			return FromSP(1)
		}
		panic("logic: CombineN with no inputs for kind " + k.String())
	}
	core := DeInvert(k)
	acc := ins[0]
	if core != Buf {
		for _, in := range ins[1:] {
			acc = Combine2(core, acc, in)
		}
	}
	if OutputInversion(k) {
		acc = acc.Invert()
	}
	return acc.Clamp()
}
