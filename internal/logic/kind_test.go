package logic

import "testing"

func TestParseKind(t *testing.T) {
	cases := []struct {
		in   string
		want Kind
		ok   bool
	}{
		{"AND", And, true},
		{"and", And, true},
		{"And", And, true},
		{"NAND", Nand, true},
		{"OR", Or, true},
		{"NOR", Nor, true},
		{"NOT", Not, true},
		{"INV", Not, true},
		{"BUF", Buf, true},
		{"BUFF", Buf, true},
		{"XOR", Xor, true},
		{"XNOR", Xnor, true},
		{"DFF", DFF, true},
		{"dff", DFF, true},
		{"INPUT", Input, true},
		{"GND", Const0, true},
		{"VDD", Const1, true},
		{"MUX", 0, false},
		{"", 0, false},
		{"ANDX", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseKind(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("ParseKind(%q) = %v, %v; want %v, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k == Const0 || k == Const1 {
			continue // multiple spellings; canonical name is CONSTx
		}
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Errorf("ParseKind(%v.String()) = %v, %v; want %v", k, got, ok, k)
		}
	}
	if ParseKindMust("CONST0") != Const0 || ParseKindMust("CONST1") != Const1 {
		t.Error("CONST0/CONST1 spellings did not round-trip")
	}
}

// ParseKindMust is a test helper.
func ParseKindMust(s string) Kind {
	k, ok := ParseKind(s)
	if !ok {
		panic("bad kind " + s)
	}
	return k
}

func TestKindPredicates(t *testing.T) {
	for _, k := range []Kind{Input, DFF, Const0, Const1} {
		if !k.IsSource() {
			t.Errorf("%v should be a source", k)
		}
		if k.IsGate() {
			t.Errorf("%v should not be a gate", k)
		}
	}
	for _, k := range AllGateKinds() {
		if k.IsSource() {
			t.Errorf("%v should not be a source", k)
		}
		if !k.IsGate() {
			t.Errorf("%v should be a gate", k)
		}
	}
}

func TestFaninOK(t *testing.T) {
	cases := []struct {
		k  Kind
		n  int
		ok bool
	}{
		{Input, 0, true},
		{Input, 1, false},
		{DFF, 1, true},
		{DFF, 0, false},
		{DFF, 2, false},
		{Not, 1, true},
		{Not, 2, false},
		{Buf, 1, true},
		{And, 1, true},
		{And, 2, true},
		{And, 9, true},
		{And, 0, false},
		{Xor, 2, true},
		{Const0, 0, true},
		{Const1, 1, false},
	}
	for _, c := range cases {
		if got := c.k.FaninOK(c.n); got != c.ok {
			t.Errorf("%v.FaninOK(%d) = %v, want %v", c.k, c.n, got, c.ok)
		}
	}
}

func TestInvertingAndDeInvert(t *testing.T) {
	pairs := map[Kind]Kind{
		Nand: And,
		Nor:  Or,
		Xnor: Xor,
		Not:  Buf,
	}
	for inv, core := range pairs {
		if !OutputInversion(inv) {
			t.Errorf("OutputInversion(%v) = false", inv)
		}
		if OutputInversion(core) {
			t.Errorf("OutputInversion(%v) = true", core)
		}
		if DeInvert(inv) != core {
			t.Errorf("DeInvert(%v) = %v, want %v", inv, DeInvert(inv), core)
		}
		if DeInvert(core) != core {
			t.Errorf("DeInvert(%v) changed a non-inverting kind", core)
		}
	}
}

func TestControllingValue(t *testing.T) {
	if v, ok := ControllingValue(And); !ok || v != false {
		t.Error("AND must be controlled by 0")
	}
	if v, ok := ControllingValue(Nor); !ok || v != true {
		t.Error("NOR must be controlled by 1")
	}
	if _, ok := ControllingValue(Xor); ok {
		t.Error("XOR has no controlling value")
	}
	if _, ok := ControllingValue(Not); ok {
		t.Error("NOT has no controlling value")
	}
}
