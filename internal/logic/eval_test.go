package logic

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestEvalBoolTruthTables(t *testing.T) {
	cases := []struct {
		k    Kind
		ins  []bool
		want bool
	}{
		{And, []bool{true, true}, true},
		{And, []bool{true, false}, false},
		{And, []bool{true, true, true}, true},
		{And, []bool{true, true, false}, false},
		{Nand, []bool{true, true}, false},
		{Nand, []bool{false, true}, true},
		{Or, []bool{false, false}, false},
		{Or, []bool{false, true}, true},
		{Nor, []bool{false, false}, true},
		{Nor, []bool{true, false}, false},
		{Xor, []bool{true, false}, true},
		{Xor, []bool{true, true}, false},
		{Xor, []bool{true, true, true}, true},
		{Xnor, []bool{true, true}, true},
		{Xnor, []bool{true, false}, false},
		{Not, []bool{true}, false},
		{Not, []bool{false}, true},
		{Buf, []bool{true}, true},
		{And, []bool{true}, true},
		{Or, []bool{false}, false},
		{Const0, nil, false},
		{Const1, nil, true},
	}
	for _, c := range cases {
		if got := EvalBool(c.k, c.ins); got != c.want {
			t.Errorf("EvalBool(%v, %v) = %v, want %v", c.k, c.ins, got, c.want)
		}
	}
}

// TestEvalWordMatchesBool checks the bit-parallel evaluator against the
// scalar evaluator bit by bit for every kind and random words.
func TestEvalWordMatchesBool(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	kinds := append(AllGateKinds(), Const0, Const1)
	for _, k := range kinds {
		nIn := k.MinFanin()
		if k.MaxFanin() < 0 {
			nIn = 1 + rng.IntN(5)
		}
		for trial := 0; trial < 50; trial++ {
			words := make([]uint64, nIn)
			for i := range words {
				words[i] = rng.Uint64()
			}
			got := EvalWord(k, words)
			for bit := 0; bit < 64; bit++ {
				ins := make([]bool, nIn)
				for i := range ins {
					ins[i] = words[i]>>uint(bit)&1 == 1
				}
				want := EvalBool(k, ins)
				if (got>>uint(bit)&1 == 1) != want {
					t.Fatalf("kind %v: word eval bit %d = %v, scalar = %v (inputs %v)",
						k, bit, !want, want, ins)
				}
			}
		}
	}
}

// TestDeMorganProperty checks NAND(xs) == NOT(AND(xs)) and the NOR dual over
// random word inputs with testing/quick.
func TestDeMorganProperty(t *testing.T) {
	f := func(a, b, c uint64) bool {
		ins := []uint64{a, b, c}
		if EvalWord(Nand, ins) != ^EvalWord(And, ins) {
			return false
		}
		if EvalWord(Nor, ins) != ^EvalWord(Or, ins) {
			return false
		}
		if EvalWord(Xnor, ins) != ^EvalWord(Xor, ins) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestXorLinearity checks XOR's GF(2) linearity: xor(a,b,c) == xor(xor(a,b),c).
func TestXorLinearity(t *testing.T) {
	f := func(a, b, c uint64) bool {
		lhs := EvalWord(Xor, []uint64{a, b, c})
		rhs := EvalWord(Xor, []uint64{EvalWord(Xor, []uint64{a, b}), c})
		return lhs == rhs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalPanicsOnSourceKinds(t *testing.T) {
	for _, k := range []Kind{Input, DFF} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("EvalBool(%v) did not panic", k)
				}
			}()
			EvalBool(k, []bool{true})
		}()
	}
}
