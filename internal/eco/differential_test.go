package eco_test

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/eco"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/harden"
	"repro/internal/netlist"
	"repro/internal/ser"
)

// The differential edit-sequence harness: apply a randomized sequence of TMR
// edits to a circuit and, at every step, demand that the ECO-cached estimate
// is byte-identical to a cold recompute of the same configuration. The cache
// can therefore never change a result — only the amount of work — and the
// MemoHits assertions prove the comparison is not vacuous (the cached run
// really did restore sites instead of sweeping them).

// diffConfig is one cell of the engines × workers × frames matrix.
type diffConfig struct {
	engine  string
	workers int
	frames  int
	vectors int // sampling engines only
}

func (dc diffConfig) String() string {
	return fmt.Sprintf("%s/w%d/f%d", dc.engine, dc.workers, dc.frames)
}

func (dc diffConfig) serConfig(cache *eco.Cache, st *engine.Stats) ser.Config {
	cfg := ser.Config{
		Engine:  dc.engine,
		Workers: dc.workers,
		ECO:     cache,
		Stats:   st,
	}
	if dc.frames > 1 {
		cfg.Frames = dc.frames
	}
	if dc.engine == "monte-carlo" {
		cfg.Method = ser.MethodMonteCarlo
		cfg.MC.Vectors = dc.vectors
		cfg.MC.Seed = 42
	}
	return cfg
}

// reportsIdentical compares two reports bitwise — every float via its
// IEEE-754 bit pattern, so a ±0.0 or NaN-payload discrepancy fails too.
func reportsIdentical(t *testing.T, cold, warm *ser.Report) {
	t.Helper()
	if cold.Circuit != warm.Circuit || cold.Engine != warm.Engine || cold.Method != warm.Method {
		t.Fatalf("report headers differ: cold %v/%v/%v warm %v/%v/%v",
			cold.Circuit, cold.Engine, cold.Method, warm.Circuit, warm.Engine, warm.Method)
	}
	if len(cold.Nodes) != len(warm.Nodes) {
		t.Fatalf("node counts differ: cold %d warm %d", len(cold.Nodes), len(warm.Nodes))
	}
	if math.Float64bits(cold.TotalFIT) != math.Float64bits(warm.TotalFIT) {
		t.Fatalf("TotalFIT differs bitwise: cold %v warm %v", cold.TotalFIT, warm.TotalFIT)
	}
	for i := range cold.Nodes {
		cn, wn := cold.Nodes[i], warm.Nodes[i]
		if cn.ID != wn.ID || cn.Name != wn.Name {
			t.Fatalf("node %d identity differs: cold %d/%q warm %d/%q", i, cn.ID, cn.Name, wn.ID, wn.Name)
		}
		for _, f := range []struct {
			field      string
			cold, warm float64
		}{
			{"RateFIT", cn.RateFIT, wn.RateFIT},
			{"PLatched", cn.PLatched, wn.PLatched},
			{"PSensitized", cn.PSensitized, wn.PSensitized},
			{"SERFIT", cn.SERFIT, wn.SERFIT},
		} {
			if math.Float64bits(f.cold) != math.Float64bits(f.warm) {
				t.Fatalf("node %d (%s) %s differs bitwise: cold %v warm %v",
					i, cn.Name, f.field, f.cold, f.warm)
			}
		}
	}
}

// pickGates returns the edit sequence for a circuit: a deterministic
// pseudo-random spread of gate IDs (seeded by the circuit size so every
// matrix cell of the same circuit edits the same gates).
func pickGates(c *netlist.Circuit, steps int) []netlist.ID {
	var gates []netlist.ID
	for i := range c.Nodes {
		if c.Nodes[i].Kind.IsGate() {
			gates = append(gates, netlist.ID(i))
		}
	}
	if len(gates) == 0 {
		return nil
	}
	picked := make([]netlist.ID, 0, steps)
	state := uint64(c.N())*2654435761 + 1
	for len(picked) < steps {
		state = state*6364136223846793005 + 1442695040888963407
		g := gates[int(state>>33)%len(gates)]
		dup := false
		for _, p := range picked {
			dup = dup || p == g
		}
		if !dup {
			picked = append(picked, g)
		}
	}
	return picked
}

// runDifferential drives one (circuit, config) cell through an edit sequence.
func runDifferential(t *testing.T, c *netlist.Circuit, dc diffConfig, steps int) {
	t.Helper()
	ctx := context.Background()
	cache, err := eco.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	edits := pickGates(c, steps)
	cur := c
	var prev *netlist.Circuit
	for step := 0; step <= len(edits); step++ {
		if step > 0 {
			prev = cur
			cur, err = harden.TMR(cur, []netlist.ID{edits[step-1]})
			if err != nil {
				t.Fatalf("step %d: TMR: %v", step, err)
			}
		}
		coldSt, warmSt := &engine.Stats{}, &engine.Stats{}
		cold, err := ser.Run(ctx, cur, dc.serConfig(nil, coldSt))
		if err != nil {
			t.Fatalf("step %d: cold run: %v", step, err)
		}
		warm, err := ser.Run(ctx, cur, dc.serConfig(cache, warmSt))
		if err != nil {
			t.Fatalf("step %d: cached run: %v", step, err)
		}
		reportsIdentical(t, cold, warm)
		n := int64(cur.N())
		if got := warmSt.MemoHits.Load() + warmSt.Sites.Load(); got != n {
			t.Fatalf("step %d: MemoHits(%d) + Sites(%d) = %d, want %d (whole sweep)",
				step, warmSt.MemoHits.Load(), warmSt.Sites.Load(), got, n)
		}
		// Site-major engines must reuse at least every cone the differ calls
		// unchanged relative to the previous step (the cache may hold more,
		// from earlier steps). The word-major monte-carlo engine reuses
		// all-or-nothing, so its cross-edit runs legitimately recompute
		// everything. On tiny circuits one TMR edit can touch every cone;
		// the bound degrades to 0 there rather than going vacuously green.
		if step > 0 && dc.engine != "monte-carlo" {
			unchanged := int64(cur.N() - len(eco.ChangedSites(prev, cur, dc.frames)))
			if got := warmSt.MemoHits.Load(); got < unchanged {
				t.Fatalf("step %d: cached re-estimate restored %d sites, want at least the %d unchanged cones",
					step, got, unchanged)
			}
		}
		// Re-running the identical request must be a pure replay for every
		// engine: all sites restored, none swept, and still byte-identical.
		replaySt := &engine.Stats{}
		replay, err := ser.Run(ctx, cur, dc.serConfig(cache, replaySt))
		if err != nil {
			t.Fatalf("step %d: replay run: %v", step, err)
		}
		reportsIdentical(t, cold, replay)
		if replaySt.MemoHits.Load() != n || replaySt.Sites.Load() != 0 {
			t.Fatalf("step %d: replay swept %d sites and restored %d, want 0 swept / %d restored",
				step, replaySt.Sites.Load(), replaySt.MemoHits.Load(), n)
		}
	}
}

func TestDifferentialEditSequence(t *testing.T) {
	circuits := []struct {
		name string
		c    *netlist.Circuit
		// small circuits are within the exact engines' exhaustive limit
		small bool
		seq   bool
	}{
		{"c17", circuitFile(t, "c17.bench"), true, false},
		{"majority", circuitFile(t, "majority.bench"), true, false},
		{"smallrandom", gen.SmallRandom(7), true, false},
		{"smallrandomseq", gen.SmallRandomSequential(13), true, true},
	}
	for _, tc := range circuits {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			for _, eng := range []string{"epp-batch", "epp-scalar", "monte-carlo", "enum", "bdd"} {
				for _, workers := range []int{1, 4} {
					for _, frames := range []int{1, 2} {
						// The exact engines reject the multi-cycle analysis;
						// frames > 1 is only meaningful with flip-flops.
						if frames > 1 && (eng == "enum" || eng == "bdd" || !tc.seq) {
							continue
						}
						dc := diffConfig{engine: eng, workers: workers, frames: frames, vectors: 128}
						t.Run(dc.String(), func(t *testing.T) {
							runDifferential(t, tc.c, dc, 2)
						})
					}
				}
			}
		})
	}
}

// TestDifferentialS9234 runs the edit sequence on the largest published
// profile with the production engine. One worker pool size and a single
// edit keep it inside unit-test time; the bench_test acceptance test covers
// the touched-cone ratio on this circuit.
func TestDifferentialS9234(t *testing.T) {
	if testing.Short() {
		t.Skip("s9234 differential harness is not a -short test")
	}
	c, err := gen.ByName("s9234")
	if err != nil {
		t.Fatal(err)
	}
	runDifferential(t, c, diffConfig{engine: "epp-batch", workers: 4, frames: 1}, 1)
}
