package eco_test

import (
	"context"
	"math"
	"testing"

	"repro/internal/eco"
	"repro/internal/gen"
	"repro/internal/harden"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/ser"
)

// FuzzConeDiffer checks the differ's soundness bound on randomized edits:
// after any mutation, every site whose exact epp-scalar P_sensitized value
// changes BITWISE must appear in ChangedSites AND in AnalyticChangedSites —
// at one frame and at two. The analytic flavor is the binding one (it is
// what the epp engines memoize on, and it is strictly tighter than the
// structural flavor), so it gets the same adversarial treatment. (The
// converse — a reported site whose value happens not to change — is
// allowed: the differ is conservative, a spurious invalidation only costs a
// recompute.) A counterexample here would be a cache that silently serves a
// stale value, the one failure mode the whole ECO design must exclude.
func FuzzConeDiffer(f *testing.F) {
	f.Add(uint64(1), byte(0), uint16(0), uint16(0))
	f.Add(uint64(2), byte(1), uint16(3), uint16(1))
	f.Add(uint64(3), byte(2), uint16(5), uint16(2))
	f.Add(uint64(7), byte(3), uint16(9), uint16(4))
	f.Add(uint64(11), byte(4), uint16(2), uint16(7))
	f.Add(uint64(13), byte(5), uint16(8), uint16(3))
	f.Fuzz(func(t *testing.T, seed uint64, mutSel byte, a, b uint16) {
		var base *netlist.Circuit
		if mutSel&1 == 0 {
			base = gen.SmallRandomSequential(seed % 64)
		} else {
			base = gen.SmallRandom(seed % 64)
		}
		mutated := mutate(t, base, mutSel/2%3, int(a), int(b))
		if mutated == nil {
			return // mutation not applicable to this circuit
		}
		frames := []int{1}
		if len(base.FFs) > 0 {
			frames = append(frames, 2)
		}
		for _, fr := range frames {
			baseRep := estimateScalar(t, base, fr)
			mutRep := estimateScalar(t, mutated, fr)
			flavors := []struct {
				name    string
				changed []netlist.ID
			}{
				{"ChangedSites", eco.ChangedSites(base, mutated, fr)},
				{"AnalyticChangedSites", eco.AnalyticChangedSites(base, mutated, fr)},
			}
			for _, fl := range flavors {
				changed := make(map[netlist.ID]bool)
				for _, id := range fl.changed {
					changed[id] = true
				}
				// Every appended node is new and must be reported.
				for id := base.N(); id < mutated.N(); id++ {
					if !changed[netlist.ID(id)] {
						t.Errorf("frames %d: new node %d not in %s", fr, id, fl.name)
					}
				}
				// Every surviving site whose exact value moved must be reported.
				n := base.N()
				if mutated.N() < n {
					n = mutated.N()
				}
				for id := 0; id < n; id++ {
					bb := math.Float64bits(baseRep.Nodes[id].PSensitized)
					mb := math.Float64bits(mutRep.Nodes[id].PSensitized)
					if bb != mb && !changed[netlist.ID(id)] {
						t.Errorf("frames %d: site %d (%s) changed %v -> %v but is not in %s",
							fr, id, base.NameOf(netlist.ID(id)), baseRep.Nodes[id].PSensitized, mutRep.Nodes[id].PSensitized, fl.name)
					}
				}
			}
		}
	})
}

func estimateScalar(t *testing.T, c *netlist.Circuit, frames int) *ser.Report {
	t.Helper()
	cfg := ser.Config{Engine: "epp-scalar"}
	if frames > 1 {
		cfg.Frames = frames
	}
	rep, err := ser.Run(context.Background(), c, cfg)
	if err != nil {
		t.Fatalf("frames %d: %v", frames, err)
	}
	return rep
}

// mutate applies one structural edit to c and rebuilds: a gate-kind swap
// (kind 0), a fanin rewire to a strictly lower-level node (kind 1), or a
// single-gate TMR (kind 2). Returns nil when the pick does not land on an
// applicable node — the fuzzer treats that input as uninteresting.
func mutate(t *testing.T, c *netlist.Circuit, kind byte, a, b int) *netlist.Circuit {
	t.Helper()
	var gates []netlist.ID
	for i := range c.Nodes {
		if c.Nodes[i].Kind.IsGate() {
			gates = append(gates, netlist.ID(i))
		}
	}
	if len(gates) == 0 {
		return nil
	}
	target := gates[a%len(gates)]

	if kind == 2 {
		out, err := harden.TMR(c, []netlist.ID{target})
		if err != nil {
			t.Fatalf("TMR(%d): %v", target, err)
		}
		return out
	}

	// Rebuild with one node edited, TMR-style: copy (dropping the CSR-backed
	// Fanout slices — netlist.New recomputes adjacency), mutate, revalidate.
	nodes := make([]netlist.Node, c.N())
	for i := range nodes {
		src := c.Node(netlist.ID(i))
		nodes[i] = netlist.Node{
			ID:    src.ID,
			Name:  src.Name,
			Kind:  src.Kind,
			Fanin: append([]netlist.ID(nil), src.Fanin...),
			IsPO:  src.IsPO,
		}
	}
	switch kind {
	case 0: // kind swap, arity-preserving
		swap := map[logic.Kind]logic.Kind{
			logic.And: logic.Nand, logic.Nand: logic.And,
			logic.Or: logic.Nor, logic.Nor: logic.Or,
			logic.Xor: logic.Xnor, logic.Xnor: logic.Xor,
			logic.Not: logic.Buf, logic.Buf: logic.Not,
		}
		nk, ok := swap[nodes[target].Kind]
		if !ok {
			return nil
		}
		nodes[target].Kind = nk
	case 1: // rewire one fanin to a strictly lower-level node (stays acyclic)
		tn := &nodes[target]
		if len(tn.Fanin) == 0 {
			return nil
		}
		j := b % len(tn.Fanin)
		lvl := c.Level(target)
		var cands []netlist.ID
		for i := 0; i < c.N(); i++ {
			id := netlist.ID(i)
			if c.Level(id) < lvl && id != tn.Fanin[j] {
				cands = append(cands, id)
			}
		}
		if len(cands) == 0 {
			return nil
		}
		tn.Fanin[j] = cands[(a+b)%len(cands)]
	}
	out, err := netlist.New(c.Name+"_mut", nodes,
		append([]netlist.ID(nil), c.PIs...),
		append([]netlist.ID(nil), c.POs...),
		append([]netlist.ID(nil), c.FFs...))
	if err != nil {
		// Some rewires are structurally invalid (e.g. a now-dangling net the
		// validator rejects); skip rather than fail — the fuzzer explores.
		return nil
	}
	return out
}
