// Package eco memoizes per-site P_sensitized results across netlist edits —
// the incremental (ECO, "engineering change order") re-estimation layer
// behind the paper's rank → harden → re-estimate loop. After an edit (a TMR
// transform, a gate swap, a rewire), only the sites whose observation cones
// intersect the changed region are recomputed; every other site's value is
// restored from the cache, and the assembled Report is byte-identical to a
// cold full recomputation.
//
// # Keying: content-addressed cones
//
// A cached value is keyed by the pair
//
//	(request key, cone hash of the site)
//
// where the request key digests every result-affecting option that is not
// circuit structure (engine, frames, vectors, seed, rules, BDD budget,
// latch parameters — the same fields as engine.Request.Fingerprint minus
// the circuit content and the SP vector), and the cone hash is a SHA-256
// digest of the site's full observation-cone closure: every node whose
// content can influence the site's P_sensitized value, under the requested
// frame count.
//
// Invalidation is therefore implicit, by content addressing: an edited
// circuit yields new cone hashes for exactly the sites whose closures
// changed, so a stale value can never be looked up — its key no longer
// exists. The explicit differ (ChangedSites) is derived from the same
// hashes; it exists for observability (how many cones did this edit touch?)
// and for the fuzz harness that cross-checks the soundness argument below,
// not for correctness.
//
// # Soundness argument
//
// The cache is sound iff equal cone hashes imply equal P_sensitized values
// (for the same request key). The hash is built so that equality of hashes
// implies equality of everything the engine actually reads, and it comes in
// two flavors because the engine classes read different closures:
//
//  1. Backward closure — structural flavor (ConeHashes; sampling and exact
//     engines). A per-node support digest D is computed in f topological
//     sweeps (f = frames): sources digest their identity and kind, gates
//     digest (ID, kind, D of each fanin in declaration order), and a
//     flip-flop at sweep k digests its D-fanin's support from sweep k−1 —
//     so D bounds flip-flop crossings at f−1, exactly the reach of an
//     f-frame analysis, and handles sequential feedback loops by
//     construction (the iteration is over sweeps, not paths). D(n)
//     determines the good-simulation value distribution at n (a pure
//     function of the backward structure and the per-source seeded
//     streams; see the sampling clause below) and the exact engines'
//     enumeration/BDD function of n. base(n) = (D(n), is-PO, is-observed).
//  2. Backward closure — analytic flavor (AnalyticConeHashes; the EPP
//     engines). An EPP engine never reads a cone member's deep backward
//     structure: propagation through member m consumes only m's identity,
//     kind and the numeric signal probabilities of m and of
//     m's fanins (the side inputs that gate propagation). base(m) therefore
//     digests exactly (ID, kind, is-PO, is-observed, SP bits of m, and per
//     fanin its SP bits in slot order) — with the SP values as IEEE-754
//     bit patterns, so "equal" means the engine's arithmetic sees literally
//     identical inputs. A fanin's identity is digested only through its SP
//     value: rewiring a side input to a driver with bit-identical SP (the
//     voter of a TMR'd balanced gate) changes nothing the engine reads, so
//     it memo-hits. (The residual ambiguity — a pure slot permutation of
//     two fanins with bit-equal SPs — is value-preserving for every kind in
//     the netlist model, all of which are symmetric; no edit the toolchain
//     produces permutes slots.) This is the flavor that makes ECO incremental in
//     practice: a TMR voter shifts deep structure everywhere downstream,
//     but only the sites whose cones see a changed SP or changed wiring are
//     invalidated. (Any structurally-unchanged cone is also
//     analytically-unchanged — SP is a function of backward structure —
//     so the analytic flavor is strictly tighter.)
//  3. Forward closure — both flavors. The cone hash is computed in f
//     reverse-topological sweeps U_r, r = 0..f−1 (r = remaining flip-flop
//     crossings): U_r(n) folds base(n) with U_r of every combinational
//     consumer (in fanout-CSR order, which pins the engine's cone discovery
//     order) and — when r > 0 — U_{r−1} of every flip-flop consumer. The
//     site's hash is U_{f−1}(site). Equal hashes therefore pin, for every
//     node reachable from the site within the frame budget, the full base
//     tuple of the flavor in use.
//  4. Engine independence of everything else. Every engine computes a
//     site's value from exactly its flavor's closure: EPP propagates
//     four-valued states over the forward cone using the digested SPs and
//     folds per-output miss products in canonical ascending output-ID
//     order (output IDs are in the analytic base, the observability bits
//     select them); the sampling kernels replay the site's cone
//     against good values determined by the cone inputs' backward
//     supports; the exact engines enumerate or build BDDs over the cone's
//     input support. All are packing-invariant and worker-invariant (the
//     repository's standing bit-exactness contracts), so skipping memo-hit
//     sites cannot perturb the recomputed ones.
//
// Two deliberate conservatisms keep the argument simple: node IDs are part
// of every digest, so a hit additionally requires the edit to preserve IDs
// (the harden.TMR transform does — originals keep their IDs, new gates are
// appended); and base(n) always includes the single-frame observability
// bit, which can only split hash classes, never merge them. Conservatism
// costs hits, never correctness.
//
// For the sampling engines one extra clause is required: vector streams are
// drawn per (seed, word, source) with sources enumerated in ascending ID
// over the whole circuit, so inserting or removing any source shifts the
// draws of every later source. The engine layer therefore folds a digest of
// the full ordered source-ID list into the sampling request key
// (engine.Request memo key), invalidating all sampling entries on any
// source-set change; and the word-major shared-good-sim kernel prices a
// sweep by words, not sites, so the monte-carlo engine reuses the cache
// all-or-nothing (a full-circuit hit skips the sweep; any miss recomputes
// every site).
//
// The cache itself stores float64 results as IEEE-754 bit patterns
// (math.Float64bits), both in memory and on disk, so restored values are
// bit-identical to computed ones — the same discipline as internal/resume.
package eco

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sigprob"
)

// Hash is a SHA-256 cone digest.
type Hash [32]byte

// Range is a contiguous half-open node-ID range [Lo, Hi) of memo hits, the
// unit the engine sweep drivers schedule around (mirrors resume.Range).
type Range struct{ Lo, Hi int }

// ConeHashes computes the per-site observation-cone digest of every node of
// c under an analysis of the given frame count (frames < 1 is treated as
// 1). Two sites with equal digests — in the same or in different circuits —
// have identical observation-cone closures, so every engine computes
// identical P_sensitized values for them under the same request key. See
// the package documentation for the construction and soundness argument.
// Cost: frames backward plus frames forward O(edges) SHA-256 sweeps.
func ConeHashes(c *netlist.Circuit, frames int) []Hash {
	if frames < 1 {
		frames = 1
	}
	d := newDigester()
	return d.upSweep(c, frames, d.structuralBase(c, frames))
}

// AnalyticConeHashes computes the tighter analytic-flavor cone digests (see
// the package soundness argument, clause 2) for the EPP engines: the
// backward closure of each cone member collapses to its own and its fanins'
// signal-probability bit patterns instead of the full structural support.
// sp must be the request's signal-probability vector — for the standing
// ECO eligibility contract, the default topological vector under nil source
// bias, which is a pure function of the circuit. Two sites with equal
// analytic digests have EPP values that are bit-identical under the same
// request key. Every structurally-unchanged site (ConeHashes) is also
// analytically unchanged, never the converse.
func AnalyticConeHashes(c *netlist.Circuit, frames int, sp []float64) []Hash {
	if frames < 1 {
		frames = 1
	}
	if len(sp) != c.N() {
		panic(fmt.Sprintf("eco: AnalyticConeHashes: sp length %d for a %d-node circuit", len(sp), c.N()))
	}
	d := newDigester()
	return d.upSweep(c, frames, d.analyticBase(c, sp))
}

// digester bundles one reusable SHA-256 state with its write helpers.
type digester struct {
	h   hash.Hash
	buf [8]byte
}

func newDigester() *digester { return &digester{h: sha256.New()} }

func (d *digester) wInt(v int64) {
	binary.LittleEndian.PutUint64(d.buf[:], uint64(v))
	d.h.Write(d.buf[:])
}
func (d *digester) wHash(p *Hash) { d.h.Write(p[:]) }
func (d *digester) sum(out *Hash) {
	d.h.Sum(out[:0]) // appends the 32 digest bytes in place
	d.h.Reset()
}

// structuralBase computes base(n) = (D(n), is-PO, is-observed) with D the
// f-sweep backward support digest: flip-flops chain into the previous sweep
// so crossings are bounded at frames-1 (sweep 1 digests a flip-flop as
// opaque initial state).
func (d *digester) structuralBase(c *netlist.Circuit, frames int) []Hash {
	n := c.N()
	kinds := c.Kinds()
	topo := c.Topo()
	faninIdx, faninArr := c.FaninCSR()

	down := make([]Hash, n)
	prev := make([]Hash, n)
	for k := 1; k <= frames; k++ {
		down, prev = prev, down
		for _, id := range topo {
			kind := kinds[id]
			switch {
			case kind == logic.DFF:
				if k == 1 || faninIdx[id] == faninIdx[id+1] {
					d.wInt(int64('F'))
					d.wInt(int64(id))
					d.wInt(int64(kind))
				} else {
					d.wInt(int64('f'))
					d.wInt(int64(id))
					d.wInt(int64(kind))
					d.wHash(&prev[faninArr[faninIdx[id]]])
				}
			case kind.IsSource():
				d.wInt(int64('s'))
				d.wInt(int64(id))
				d.wInt(int64(kind))
			default:
				d.wInt(int64('g'))
				d.wInt(int64(id))
				d.wInt(int64(kind))
				fanins := faninArr[faninIdx[id]:faninIdx[id+1]]
				d.wInt(int64(len(fanins)))
				for _, f := range fanins {
					d.wHash(&down[f])
				}
			}
			d.sum(&down[id])
		}
	}

	base := make([]Hash, n)
	for id := 0; id < n; id++ {
		d.wInt(int64('b'))
		d.wHash(&down[id])
		d.wInt(obsBits(c, netlist.ID(id)))
		d.sum(&base[id])
	}
	return base
}

// analyticBase computes the EPP-flavor base(n): identity, kind,
// observability, the node's own SP bits, and per fanin (in declaration
// order) its SP bits — exactly the inputs the EPP rules and the
// level-ordered output fold consume for this member. The fanin's ID is
// deliberately absent: the engine reads a side input only as a numeric
// probability, so rewiring a fanin to a different driver with a
// bit-identical SP (the TMR voter of a balanced gate) must memo-hit, not
// invalidate the member's entire backward cone. Which fanins are inside
// the cone — and the cone's shape and fold order — is pinned by the
// forward edge folds of upSweep, not here. Frame depth never enters the
// backward side: the SP vector is static across frames.
func (d *digester) analyticBase(c *netlist.Circuit, sp []float64) []Hash {
	n := c.N()
	kinds := c.Kinds()
	faninIdx, faninArr := c.FaninCSR()

	base := make([]Hash, n)
	for id := 0; id < n; id++ {
		d.wInt(int64('B'))
		d.wInt(int64(id))
		d.wInt(int64(kinds[id]))
		d.wInt(obsBits(c, netlist.ID(id)))
		d.wInt(int64(math.Float64bits(sp[id])))
		if kinds[id] == logic.DFF {
			// A flip-flop's D cone never enters its own forward value: the
			// capture probability is computed at the D driver (a cone member
			// in its own right), and the relaunch reads only sp of the
			// flip-flop itself, a source constant. Digesting the D fanin here
			// would spuriously invalidate the flip-flop site whenever its
			// driver cone changes.
			d.wInt(int64('F'))
		} else {
			fanins := faninArr[faninIdx[id]:faninIdx[id+1]]
			d.wInt(int64(len(fanins)))
			for _, f := range fanins {
				d.wInt(int64(math.Float64bits(sp[f])))
			}
		}
		d.sum(&base[id])
	}
	return base
}

// obsBits packs the is-PO and is-observed flags into one digest word.
func obsBits(c *netlist.Circuit, id netlist.ID) int64 {
	v := int64(0)
	if c.Nodes[id].IsPO {
		v |= 1
	}
	if c.IsObserved(id) {
		v |= 2
	}
	return v
}

// upSweep computes the forward cone digests over the given per-node base:
// frames reverse-topological sweeps, layered by remaining flip-flop
// crossings. U_r folds the node's base with U_r of combinational consumers
// and, when crossings remain, U_{r-1} of flip-flop consumers (the
// relaunched propagation from the captured state). Edges into flip-flops at
// r == 0 are dropped: with no frames left, a capture is never observed.
//
// Combinational levels deliberately never enter the digest. Every engine's
// value is a pure function of the cone's dataflow graph (levels only
// schedule the sweeps — any topological order computes the same floats),
// and the one order-sensitive reduction, the EPP per-output miss product,
// is folded in canonical ascending output-ID order by both epp engines
// (see core.Analyzer.EPP). An edit that re-levels a cone without changing
// its dataflow — a TMR voter inserted upstream adds two logic levels
// across its entire fanout — therefore must not invalidate it.
func (d *digester) upSweep(c *netlist.Circuit, frames int, base []Hash) []Hash {
	n := c.N()
	kinds := c.Kinds()
	topo := c.Topo()
	fanoutIdx, fanoutArr := c.FanoutCSR()

	var upPrev []Hash
	up := make([]Hash, n)
	for r := 0; r < frames; r++ {
		if r > 0 {
			upPrev = up
			up = make([]Hash, n)
		}
		for i := len(topo) - 1; i >= 0; i-- {
			id := topo[i]
			d.wInt(int64('u'))
			d.wHash(&base[id])
			fanouts := fanoutArr[fanoutIdx[id]:fanoutIdx[id+1]]
			for _, o := range fanouts {
				if kinds[o] == logic.DFF {
					if r > 0 {
						d.wInt(int64('x')) // crossing marker
						d.wHash(&upPrev[o])
					}
					continue
				}
				d.wInt(int64('c')) // combinational consumer edge
				d.wHash(&up[o])
			}
			d.sum(&up[id])
		}
	}
	return up
}

// ChangedSites compares the cone hashes of an edited circuit against its
// base and returns, ascending, every node ID of edited whose P_sensitized
// value may differ from the same ID in base under a frames-frame analysis:
// sites whose cone digest changed, plus all IDs new to edited. The
// complement is the reuse guarantee — a site not returned has an identical
// observation-cone closure in both circuits, so every engine computes an
// identical value for it (see the package soundness argument). This is the
// netlist differ behind the cache's observability counters and the fuzz
// harness; the cache itself never consults it (invalidation is implicit in
// the content-addressed keys).
func ChangedSites(base, edited *netlist.Circuit, frames int) []netlist.ID {
	return diffHashes(ConeHashes(base, frames), ConeHashes(edited, frames))
}

// AnalyticChangedSites is ChangedSites under the analytic (EPP) flavor —
// the set the epp engines actually re-sweep after the edit. Both circuits
// are hashed against their own default topological signal probabilities
// (the ECO eligibility contract). Always a subset of ChangedSites plus the
// new IDs.
func AnalyticChangedSites(base, edited *netlist.Circuit, frames int) []netlist.ID {
	return diffHashes(
		AnalyticConeHashes(base, frames, sigprob.Topological(base, sigprob.Config{})),
		AnalyticConeHashes(edited, frames, sigprob.Topological(edited, sigprob.Config{})),
	)
}

func diffHashes(oldH, newH []Hash) []netlist.ID {
	var out []netlist.ID
	for id := range newH {
		if id >= len(oldH) || newH[id] != oldH[id] {
			out = append(out, netlist.ID(id))
		}
	}
	return out
}

// Cache is the per-site result memo: request key → cone hash → IEEE-754
// value bits. The zero value is not usable; create with NewCache (process
// memory only) or Open (directory-backed, persisted by Flush). A Cache is
// safe for concurrent use by any number of requests and is meant to be
// shared — across the edit iterations of one optimizer run, across
// requests of one daemon, across processes via the directory.
type Cache struct {
	dir string // "" = memory only

	mu    sync.Mutex
	reqs  map[string]*reqEntry
	cones map[coneKey][]Hash
}

// coneKey identifies a memoized cone-hash computation. For the analytic
// flavor, sp digests the request's signal-probability vector, so a caller
// violating the topological-SP contract can only miss, never alias.
type coneKey struct {
	circuit string // netlist.Circuit.ContentHash
	frames  int
	flavor  byte // 's' structural, 'a' analytic
	sp      Hash // analytic flavor only: SHA-256 of the SP bit patterns
}

// reqEntry holds one request key's value map and its persistence state.
type reqEntry struct {
	vals   map[Hash]uint64 // cone hash → math.Float64bits of the result
	loaded bool            // disk file consulted (Open caches only)
	dirty  bool            // has entries not yet flushed
}

// NewCache returns an in-memory cache: results survive across runs within
// the process (the interactive optimizer loop) but are not persisted.
func NewCache() *Cache {
	return &Cache{reqs: map[string]*reqEntry{}, cones: map[coneKey][]Hash{}}
}

// Open returns a directory-backed cache: each request key's entries live in
// <dir>/<key>.eco, written atomically by Flush and loaded lazily on first
// lookup. A missing, torn or checksum-failing file is treated as empty — a
// miss is always safe — and overwritten by the next Flush. The directory is
// created if needed.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("eco: Open with an empty directory (use NewCache for a memory-only cache)")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("eco: %w", err)
	}
	c := NewCache()
	c.dir = dir
	return c, nil
}

// Hashes returns the structural-flavor cone hashes of c under frames,
// memoized by the circuit's content hash so repeated requests against one
// netlist pay the sweeps once. The returned slice is shared; callers must
// not modify it.
func (ca *Cache) Hashes(c *netlist.Circuit, frames int) []Hash {
	if frames < 1 {
		frames = 1
	}
	k := coneKey{circuit: c.ContentHash(), frames: frames, flavor: 's'}
	return ca.cone(k, func() []Hash { return ConeHashes(c, frames) })
}

// AnalyticHashes is Hashes under the analytic (EPP) flavor, memoized by the
// circuit's content hash plus a digest of the SP vector's bit patterns.
func (ca *Cache) AnalyticHashes(c *netlist.Circuit, frames int, sp []float64) []Hash {
	if frames < 1 {
		frames = 1
	}
	k := coneKey{circuit: c.ContentHash(), frames: frames, flavor: 'a', sp: spDigest(sp)}
	return ca.cone(k, func() []Hash { return AnalyticConeHashes(c, frames, sp) })
}

func spDigest(sp []float64) Hash {
	h := sha256.New()
	var buf [8]byte
	for _, v := range sp {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

func (ca *Cache) cone(k coneKey, compute func() []Hash) []Hash {
	ca.mu.Lock()
	h, ok := ca.cones[k]
	ca.mu.Unlock()
	if ok {
		return h
	}
	h = compute()
	ca.mu.Lock()
	ca.cones[k] = h
	ca.mu.Unlock()
	return h
}

// Lookup restores every cached value for the request key into out (indexed
// by site ID, parallel to hashes) and returns the hit ranges, ascending and
// disjoint, plus the total hit count. Entries of out outside the returned
// ranges are left untouched.
func (ca *Cache) Lookup(key string, hashes []Hash, out []float64) ([]Range, int) {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	e := ca.entry(key)
	var (
		ranges []Range
		hits   int
		open   = false
		lo     = 0
	)
	for id, h := range hashes {
		bits, ok := e.vals[h]
		if ok {
			out[id] = math.Float64frombits(bits)
			hits++
			if !open {
				open, lo = true, id
			}
			continue
		}
		if open {
			ranges = append(ranges, Range{Lo: lo, Hi: id})
			open = false
		}
	}
	if open {
		ranges = append(ranges, Range{Lo: lo, Hi: len(hashes)})
	}
	return ranges, hits
}

// Store records the computed values of sites [lo, hi) (vals[i] is the value
// of site lo+i) under the request key. Safe to call concurrently from sweep
// workers.
func (ca *Cache) Store(key string, hashes []Hash, lo, hi int, vals []float64) {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	e := ca.entry(key)
	for id := lo; id < hi; id++ {
		e.vals[hashes[id]] = math.Float64bits(vals[id-lo])
	}
	e.dirty = true
}

// entry returns the request key's map, loading the directory file on first
// touch. Caller holds ca.mu.
func (ca *Cache) entry(key string) *reqEntry {
	e := ca.reqs[key]
	if e == nil {
		e = &reqEntry{vals: map[Hash]uint64{}}
		ca.reqs[key] = e
	}
	if ca.dir != "" && !e.loaded {
		e.loaded = true
		loadFile(filepath.Join(ca.dir, key+".eco"), e.vals)
	}
	return e
}

// Flush persists every dirty request key to the directory (atomic
// temp+rename per file). A memory-only cache flushes trivially. Keys are
// written in sorted order so the write sequence is deterministic.
func (ca *Cache) Flush() error {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	if ca.dir == "" {
		//serlint:allow detrange commutative flag reset, no output is produced
		for _, e := range ca.reqs {
			e.dirty = false
		}
		return nil
	}
	keys := make([]string, 0, len(ca.reqs))
	//serlint:allow detrange collect-then-sort: keys are sorted before any write
	for k, e := range ca.reqs {
		if e.dirty {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := ca.reqs[k]
		if err := writeFile(filepath.Join(ca.dir, k+".eco"), e.vals); err != nil {
			return err
		}
		e.dirty = false
	}
	return nil
}

// Len reports how many values are cached under the request key (loading the
// directory file if needed) — an observability hook for tests and stats.
func (ca *Cache) Len(key string) int {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	return len(ca.entry(key).vals)
}

// File format: "SERECO1\n", uint64 LE record count, then count records of
// 32-byte cone hash + 8-byte LE value bits sorted by hash, then the SHA-256
// of everything before it. Any deviation — short file, bad magic, checksum
// mismatch — makes the loader treat the file as empty: for a memo cache a
// miss is always sound, so unlike internal/resume there is nothing to
// quarantine.

var ecoMagic = []byte("SERECO1\n")

// loadFile merges a cache file's records into vals; on any corruption it
// loads nothing.
func loadFile(path string, vals map[Hash]uint64) {
	data, err := os.ReadFile(path)
	if err != nil {
		return
	}
	if len(data) < len(ecoMagic)+8+sha256.Size || string(data[:len(ecoMagic)]) != string(ecoMagic) {
		return
	}
	body, csum := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if sha256.Sum256(body) != Hash(csum) {
		return
	}
	count := binary.LittleEndian.Uint64(body[len(ecoMagic):])
	recs := body[len(ecoMagic)+8:]
	if uint64(len(recs)) != count*40 {
		return
	}
	for i := uint64(0); i < count; i++ {
		rec := recs[i*40:]
		var h Hash
		copy(h[:], rec[:32])
		vals[h] = binary.LittleEndian.Uint64(rec[32:40])
	}
}

// writeFile writes the records atomically (temp + rename), sorted by hash
// so equal caches serialize byte-identically.
func writeFile(path string, vals map[Hash]uint64) error {
	hashes := make([]Hash, 0, len(vals))
	for h := range vals {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool { return string(hashes[i][:]) < string(hashes[j][:]) })
	buf := make([]byte, 0, len(ecoMagic)+8+40*len(hashes)+sha256.Size)
	buf = append(buf, ecoMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(hashes)))
	for i := range hashes {
		buf = append(buf, hashes[i][:]...)
		buf = binary.LittleEndian.AppendUint64(buf, vals[hashes[i]])
	}
	csum := sha256.Sum256(buf)
	buf = append(buf, csum[:]...)
	tmp, err := os.CreateTemp(filepath.Dir(path), ".eco-*")
	if err != nil {
		return fmt.Errorf("eco: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("eco: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("eco: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("eco: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("eco: %w", err)
	}
	return nil
}
