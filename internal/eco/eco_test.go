package eco_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/eco"
	"repro/internal/gen"
	"repro/internal/harden"
	"repro/internal/netlist"
)

func circuitFile(t testing.TB, name string) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseFile("../../testdata/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestConeHashesDeterministic: the hashes are a pure function of circuit
// content — identical across repeated computation and across a deep clone.
func TestConeHashesDeterministic(t *testing.T) {
	for _, frames := range []int{1, 2, 3} {
		c := gen.SmallRandomSequential(11)
		h1 := eco.ConeHashes(c, frames)
		h2 := eco.ConeHashes(c, frames)
		h3 := eco.ConeHashes(c.Clone(), frames)
		for id := range h1 {
			if h1[id] != h2[id] || h1[id] != h3[id] {
				t.Fatalf("frames %d: hash of node %d not deterministic", frames, id)
			}
		}
	}
}

// TestConeHashesFrameSensitive: on a sequential circuit the frame count must
// change at least some cone hashes (deeper closures), while a purely
// combinational circuit's hashes may not depend on frames beyond structure.
func TestConeHashesFrameSensitive(t *testing.T) {
	c := gen.SmallRandomSequential(3)
	h1 := eco.ConeHashes(c, 1)
	h2 := eco.ConeHashes(c, 2)
	diff := 0
	for id := range h1 {
		if h1[id] != h2[id] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("frames 1 vs 2 produced identical hashes on a sequential circuit")
	}
}

// TestChangedSitesTMR: after a TMR edit, the differ must report the
// protected gate's consumers' fan-in region as changed while leaving
// disjoint cones untouched — and every new node is always reported.
func TestChangedSitesTMR(t *testing.T) {
	c := circuitFile(t, "c17.bench")
	var gate netlist.ID = -1
	for i := range c.Nodes {
		if c.Nodes[i].Kind.IsGate() {
			gate = netlist.ID(i)
			break
		}
	}
	edited, err := harden.TMR(c, []netlist.ID{gate})
	if err != nil {
		t.Fatal(err)
	}
	changed := eco.ChangedSites(c, edited, 1)
	if len(changed) == 0 {
		t.Fatal("TMR edit reported no changed sites")
	}
	mark := make(map[netlist.ID]bool, len(changed))
	for _, id := range changed {
		mark[id] = true
	}
	// The protected gate itself changed (its fanout now feeds the voter).
	if !mark[gate] {
		t.Errorf("protected gate %d not reported changed", gate)
	}
	// Every appended node is new and must be reported.
	for id := c.N(); id < edited.N(); id++ {
		if !mark[netlist.ID(id)] {
			t.Errorf("new node %d not reported changed", id)
		}
	}
	if len(changed) == edited.N() {
		t.Errorf("differ invalidated every site — no incrementality on c17 TMR")
	}
}

// TestCacheRoundTrip: Store → Lookup restores bit-identical values and
// reports the right ranges; a directory-backed cache survives reopen.
func TestCacheRoundTrip(t *testing.T) {
	c := gen.SmallRandom(5)
	n := c.N()
	dir := t.TempDir()
	ca, err := eco.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	hashes := ca.Hashes(c, 1)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1.0 / float64(i+3)
	}
	const key = "reqkey"
	ca.Store(key, hashes, 0, n, vals)
	if err := ca.Flush(); err != nil {
		t.Fatal(err)
	}

	reopened, err := eco.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, n)
	ranges, hits := reopened.Lookup(key, hashes, out)
	if hits != n {
		t.Fatalf("hits = %d, want %d", hits, n)
	}
	if len(ranges) != 1 || ranges[0] != (eco.Range{Lo: 0, Hi: n}) {
		t.Fatalf("ranges = %v, want one full range", ranges)
	}
	for i := range vals {
		if out[i] != vals[i] {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], vals[i])
		}
	}
	// A different request key shares nothing.
	if _, hits := reopened.Lookup("other", hashes, out); hits != 0 {
		t.Fatalf("foreign key hit %d entries", hits)
	}
}

// TestCachePartialRanges: holes in the hit set come back as multiple
// disjoint ranges and untouched out entries.
func TestCachePartialRanges(t *testing.T) {
	c := gen.SmallRandom(9)
	n := c.N()
	if n < 8 {
		t.Skip("circuit too small")
	}
	ca := eco.NewCache()
	hashes := ca.Hashes(c, 1)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)
	}
	const key = "k"
	ca.Store(key, hashes, 0, 3, vals[0:3])
	ca.Store(key, hashes, 5, n, vals[5:])
	out := make([]float64, n)
	for i := range out {
		out[i] = -1
	}
	ranges, hits := ca.Lookup(key, hashes, out)
	if hits != n-2 {
		t.Fatalf("hits = %d, want %d", hits, n-2)
	}
	want := []eco.Range{{Lo: 0, Hi: 3}, {Lo: 5, Hi: n}}
	if len(ranges) != 2 || ranges[0] != want[0] || ranges[1] != want[1] {
		t.Fatalf("ranges = %v, want %v", ranges, want)
	}
	if out[3] != -1 || out[4] != -1 {
		t.Fatalf("missed entries were touched: out[3]=%v out[4]=%v", out[3], out[4])
	}
}

// TestCacheCorruptFile: a torn or tampered cache file degrades to an empty
// cache (a miss is sound), never to garbage values.
func TestCacheCorruptFile(t *testing.T) {
	c := gen.SmallRandom(2)
	n := c.N()
	dir := t.TempDir()
	ca, err := eco.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	hashes := ca.Hashes(c, 1)
	vals := make([]float64, n)
	const key = "abc123"
	ca.Store(key, hashes, 0, n, vals)
	if err := ca.Flush(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+".eco")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, mut := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"bitflip": func(b []byte) []byte {
			b2 := append([]byte(nil), b...)
			b2[len(b2)/2] ^= 0x40
			return b2
		},
		"empty": func([]byte) []byte { return nil },
	} {
		if err := os.WriteFile(path, mut(data), 0o644); err != nil {
			t.Fatal(err)
		}
		fresh, err := eco.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, n)
		if _, hits := fresh.Lookup(key, hashes, out); hits != 0 {
			t.Errorf("%s: corrupt file yielded %d hits, want 0", name, hits)
		}
	}
}

// TestOpenEmptyDir: Open requires a directory.
func TestOpenEmptyDir(t *testing.T) {
	if _, err := eco.Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}
