package eco_test

import (
	"context"
	"encoding/json"
	"os"
	"sort"
	"testing"

	"repro/internal/eco"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/harden"
	"repro/internal/netlist"
	"repro/internal/ser"
)

// ecoRun estimates c with the cache attached and returns the sweep counters.
func ecoRun(tb testing.TB, c *netlist.Circuit, cache *eco.Cache) (*ser.Report, *engine.Stats) {
	tb.Helper()
	st := &engine.Stats{}
	rep, err := ser.Run(context.Background(), c, ser.Config{ECO: cache, Stats: st})
	if err != nil {
		tb.Fatal(err)
	}
	return rep, st
}

// firstGates returns the lowest-ID combinational gates of c.
func firstGates(c *netlist.Circuit, k int) []netlist.ID {
	var gates []netlist.ID
	for i := range c.Nodes {
		if c.Nodes[i].Kind.IsGate() {
			gates = append(gates, netlist.ID(i))
			if len(gates) == k {
				break
			}
		}
	}
	return gates
}

// cheapestGates predicts, with the differ alone (no engine run), the k
// single-gate TMR edits with the smallest re-estimate footprint, scanning
// every stride-th gate. This is the differ doing its production job: a TMR
// invalidates the backward cone of the protected gate's fanins (its
// replicas are new consumers of them) plus the forward region its voter's
// shifted signal probability cascades through, so the footprint varies from
// a few sites to the whole circuit depending on where the gate sits —
// an ECO flow ranks candidates by predicted cost exactly like this.
func cheapestGates(tb testing.TB, c *netlist.Circuit, stride, k int) []netlist.ID {
	tb.Helper()
	type cand struct {
		g    netlist.ID
		cost int
	}
	var cands []cand
	seen := 0
	for i := range c.Nodes {
		if !c.Nodes[i].Kind.IsGate() {
			continue
		}
		seen++
		if seen%stride != 0 {
			continue
		}
		g := netlist.ID(i)
		ed, err := harden.TMR(c, []netlist.ID{g})
		if err != nil {
			tb.Fatal(err)
		}
		cands = append(cands, cand{g, len(eco.AnalyticChangedSites(c, ed, 1))})
	}
	if len(cands) < k {
		tb.Fatalf("cheapestGates: only %d candidates at stride %d, want %d", len(cands), stride, k)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return cands[i].g < cands[j].g
	})
	out := make([]netlist.ID, k)
	for i := range out {
		out[i] = cands[i].g
	}
	return out
}

// TestECOIncrementalSweepRatio is the PR's acceptance bound: on s9234, a
// single-gate TMR re-estimate sweeps fewer than 25% of the sites — the
// rest restore from the cone-hash cache. The edit is the differ-predicted
// cheapest candidate (see cheapestGates); the engine counters are the
// proof that the engine actually skipped what the differ promised, and the
// differential harness separately proves the restored values are exact.
func TestECOIncrementalSweepRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("s9234 acceptance bound is not a -short test")
	}
	c, err := gen.ByName("s9234")
	if err != nil {
		t.Fatal(err)
	}
	cache := eco.NewCache()
	ecoRun(t, c, cache) // prime: full sweep of the base circuit

	edited, err := harden.TMR(c, cheapestGates(t, c, 13, 1))
	if err != nil {
		t.Fatal(err)
	}
	_, st := ecoRun(t, edited, cache)
	n := int64(edited.N())
	swept, hits := st.Sites.Load(), st.MemoHits.Load()
	if swept+hits != n {
		t.Fatalf("Sites(%d) + MemoHits(%d) = %d, want %d", swept, hits, swept+hits, n)
	}
	if ratio := float64(swept) / float64(n); ratio >= 0.25 {
		t.Fatalf("single-site TMR re-estimate swept %d of %d sites (%.1f%%), want < 25%%",
			swept, n, 100*ratio)
	} else {
		t.Logf("s9234 re-estimate: swept %d of %d sites (%.2f%%), %d restored", swept, n, 100*ratio, hits)
	}
}

// TestECOBenchArtifact emits the touched-cones-per-edit measurement as JSON
// when ECO_BENCH_JSON names an output path (the CI eco job uploads it), so
// the incremental-sweep ratio is tracked across commits, not just bounded.
func TestECOBenchArtifact(t *testing.T) {
	path := os.Getenv("ECO_BENCH_JSON")
	if path == "" {
		t.Skip("set ECO_BENCH_JSON=<path> to emit the artifact")
	}
	c, err := gen.ByName("s9234")
	if err != nil {
		t.Fatal(err)
	}
	type editRec struct {
		Gate       string  `json:"gate"`
		Sites      int64   `json:"sites"`
		SweptSites int64   `json:"swept_sites"`
		MemoHits   int64   `json:"memo_hits"`
		Ratio      float64 `json:"swept_ratio"`
	}
	out := struct {
		Circuit string    `json:"circuit"`
		Nodes   int       `json:"nodes"`
		Engine  string    `json:"engine"`
		Edits   []editRec `json:"edits"`
	}{Circuit: "s9234", Nodes: c.N(), Engine: "epp-batch"}

	cache := eco.NewCache()
	ecoRun(t, c, cache)
	cur := c
	for _, g := range cheapestGates(t, c, 13, 3) {
		cur, err = harden.TMR(cur, []netlist.ID{g})
		if err != nil {
			t.Fatal(err)
		}
		_, st := ecoRun(t, cur, cache)
		n := int64(cur.N())
		swept := st.Sites.Load()
		out.Edits = append(out.Edits, editRec{
			Gate:       c.NameOf(g),
			Sites:      n,
			SweptSites: swept,
			MemoHits:   st.MemoHits.Load(),
			Ratio:      float64(swept) / float64(n),
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}

// BenchmarkECOReestimate measures a one-gate-TMR re-estimate against the
// cache primed with the base circuit — each iteration protects a different
// gate, so every measurement is a genuine partial sweep (the new cone misses,
// the rest restores). Compare with BenchmarkColdEstimate for the saving.
func BenchmarkECOReestimate(b *testing.B) {
	c, err := gen.ByName("s9234")
	if err != nil {
		b.Fatal(err)
	}
	cache := eco.NewCache()
	ecoRun(b, c, cache)
	gates := firstGates(c, c.NumGates())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		edited, err := harden.TMR(c, []netlist.ID{gates[i%len(gates)]})
		if err != nil {
			b.Fatal(err)
		}
		ecoRun(b, edited, cache)
	}
}

// BenchmarkColdEstimate is the uncached baseline for BenchmarkECOReestimate:
// the same one-gate-TMR estimate paying the full sweep.
func BenchmarkColdEstimate(b *testing.B) {
	c, err := gen.ByName("s9234")
	if err != nil {
		b.Fatal(err)
	}
	gates := firstGates(c, c.NumGates())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		edited, err := harden.TMR(c, []netlist.ID{gates[i%len(gates)]})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ser.Run(context.Background(), edited, ser.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
