// Package netlist provides the gate-level circuit data model used throughout
// the repository: a named, immutable directed graph of gates, primary
// inputs, primary outputs and D flip-flops, with dense integer node IDs so
// analyses can use slice-indexed per-node state on their hot paths.
//
// Adjacency is finalized at Build time into CSR (compressed sparse row)
// form: all fanin edges live in one flat array indexed by per-node offsets
// (FaninCSR), and likewise for fanout edges (FanoutCSR). The per-node
// Node.Fanin/Node.Fanout slices are views into those arrays, so casual
// traversal code and the sweep kernels (core, sigprob, simulate, graph)
// read the same storage — the kernels just index it contiguously, together
// with the dense Kinds and Levels side arrays, instead of dereferencing a
// Node struct per step.
//
// Circuits are constructed either programmatically through Builder or from an
// ISCAS'89 .bench file via the bench package. After Build succeeds the
// Circuit is immutable and safe for concurrent use by any number of analyses.
package netlist

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"repro/internal/logic"
)

// ID is a dense node identifier: the index of the node in Circuit.Nodes.
type ID int32

// InvalidID is returned by lookups that fail.
const InvalidID ID = -1

// Node is one net of the circuit together with the gate that drives it.
// Gate-level netlists have a 1:1 correspondence between a gate and the net it
// drives, so a single Node models both.
type Node struct {
	ID     ID
	Name   string
	Kind   logic.Kind
	Fanin  []ID // driver nodes of this gate's inputs, in declaration order
	Fanout []ID // nodes that use this node as an input, sorted ascending
	IsPO   bool // true if the net is declared a primary output
}

// IsSource reports whether the node's value in the current clock cycle is
// independent of current-cycle fanins (primary input, flip-flop, tie cell).
func (n *Node) IsSource() bool { return n.Kind.IsSource() }

// Circuit is an immutable gate-level netlist.
//
// Adjacency is stored twice: per-node through Node.Fanin/Node.Fanout for
// ergonomic traversal, and as CSR (compressed sparse row) flat arrays for
// the analysis hot paths. The per-node slices alias the CSR arrays, so the
// two views are one allocation and always consistent; sweeping the circuit
// in ID or topological order reads the edge lists as a single contiguous
// block instead of chasing one heap allocation per node.
type Circuit struct {
	Name  string
	Nodes []Node // index == ID

	PIs []ID // primary inputs, in declaration order
	POs []ID // primary outputs, in declaration order
	FFs []ID // D flip-flops, in declaration order

	byName map[string]ID

	// Derived, computed once at Build time.
	observed []ID         // nodes observable at a latching point (PO or FF D input)
	obsMask  []bool       // obsMask[id] == node id is an observation point
	topo     []ID         // combinational topological order (sources first)
	level    []int        // combinational level per node (sources at 0)
	kinds    []logic.Kind // kinds[id] == Nodes[id].Kind, densely packed

	// CSR adjacency. Node id's fanins are faninArr[faninIdx[id]:faninIdx[id+1]]
	// (declaration order); its fanouts are the analogous fanoutArr span
	// (ascending consumer ID, one entry per use).
	faninIdx  []int32
	faninArr  []ID
	fanoutIdx []int32
	fanoutArr []ID

	// Reachable-observation signatures, computed lazily on first use (the
	// Circuit is otherwise immutable, so a Once keeps concurrent readers
	// safe). See ObsSignatures.
	obsSigOnce sync.Once
	obsSig     []uint64

	// Content hash, computed lazily on first use (same immutability
	// argument). See ContentHash.
	hashOnce sync.Once
	hash     string
}

// N returns the number of nodes.
func (c *Circuit) N() int { return len(c.Nodes) }

// Node returns the node with the given ID. The ID must be valid.
func (c *Circuit) Node(id ID) *Node { return &c.Nodes[id] }

// ByName returns the ID of the node with the given name, or InvalidID.
func (c *Circuit) ByName(name string) ID {
	if id, ok := c.byName[name]; ok {
		return id
	}
	return InvalidID
}

// NameOf returns the name of node id (convenience for reports).
func (c *Circuit) NameOf(id ID) string { return c.Nodes[id].Name }

// KindOf returns the kind of node id from the dense kind array.
func (c *Circuit) KindOf(id ID) logic.Kind { return c.kinds[id] }

// Kinds returns the dense per-node kind array, indexed by ID. The slice is
// shared; callers must not modify it. Hot loops index this instead of
// loading whole Node structs.
func (c *Circuit) Kinds() []logic.Kind { return c.kinds }

// Levels returns the dense per-node combinational level array, indexed by
// ID. The slice is shared; callers must not modify it.
func (c *Circuit) Levels() []int { return c.level }

// FaninOf returns node id's fanin list as a view into the CSR array.
// Identical contents to Nodes[id].Fanin (which aliases the same storage).
func (c *Circuit) FaninOf(id ID) []ID {
	s, e := c.faninIdx[id], c.faninIdx[id+1]
	return c.faninArr[s:e:e]
}

// FanoutOf returns node id's fanout list as a view into the CSR array.
func (c *Circuit) FanoutOf(id ID) []ID {
	s, e := c.fanoutIdx[id], c.fanoutIdx[id+1]
	return c.fanoutArr[s:e:e]
}

// FaninCSR exposes the raw fanin CSR layout: node id's fanins are
// arr[idx[id]:idx[id+1]]. Both slices are shared and must not be modified.
// This is the preferred adjacency access for sweep kernels: one bounds
// check amortizes over the whole sweep and the edge data is contiguous.
func (c *Circuit) FaninCSR() (idx []int32, arr []ID) { return c.faninIdx, c.faninArr }

// FanoutCSR exposes the raw fanout CSR layout (see FaninCSR).
func (c *Circuit) FanoutCSR() (idx []int32, arr []ID) { return c.fanoutIdx, c.fanoutArr }

// NumGates returns the number of combinational gate nodes (everything except
// primary inputs, flip-flops and tie cells).
func (c *Circuit) NumGates() int {
	n := 0
	for i := range c.Nodes {
		if c.Nodes[i].Kind.IsGate() {
			n++
		}
	}
	return n
}

// Sources returns the IDs of all combinational sources: primary inputs,
// flip-flop outputs, and tie cells, in ID order.
func (c *Circuit) Sources() []ID {
	var out []ID
	for i := range c.Nodes {
		if c.Nodes[i].IsSource() {
			out = append(out, ID(i))
		}
	}
	return out
}

// Observed returns the IDs of all observation points: primary outputs plus
// every node that feeds the D input of a flip-flop. An SEU whose effect
// reaches an observation point with an erroneous value is considered
// latched-visible (it will be captured subject to the latching-window model).
// The returned slice is shared; callers must not modify it.
func (c *Circuit) Observed() []ID { return c.observed }

// IsObserved reports whether node id is an observation point.
func (c *Circuit) IsObserved(id ID) bool { return c.obsMask[id] }

// ObsSignatures returns the per-node cone signature: a 64-bit bitmask of the
// observation points reachable from each node through combinational gates
// (flip-flops are time-frame boundaries, exactly as in forward-cone
// extraction). Observation point i of Observed() owns bit i when there are
// at most 64 observation points; otherwise adjacent observation points share
// a bit (i scaled into [0,64)), so the mask is a locality-preserving sketch
// of the reachable-output set rather than an exact one. Two properties hold
// regardless of circuit size:
//
//   - sig[id] == 0 iff no observation point is reachable from id (an SEU at
//     id can never be latched), and
//   - nodes whose forward cones feed the same outputs have equal signatures,
//     so sorting by signature clusters sites with heavily overlapping cones.
//
// The signatures are computed once per Circuit with a single reverse
// topological sweep over the fanout CSR (O(edges)) and cached; the returned
// slice is shared and must not be modified.
func (c *Circuit) ObsSignatures() []uint64 {
	c.obsSigOnce.Do(func() {
		sig := make([]uint64, c.N())
		obs := c.Observed()
		for i, id := range obs {
			bit := i
			if len(obs) > 64 {
				bit = i * 64 / len(obs)
			}
			sig[id] |= 1 << uint(bit)
		}
		topo := c.topo
		for i := len(topo) - 1; i >= 0; i-- {
			id := topo[i]
			s := sig[id]
			for _, o := range c.fanoutArr[c.fanoutIdx[id]:c.fanoutIdx[id+1]] {
				if c.kinds[o] == logic.DFF {
					continue // time-frame boundary: do not cross
				}
				s |= sig[o]
			}
			sig[id] = s
		}
		c.obsSig = sig
	})
	return c.obsSig
}

// ContentHash returns a hex SHA-256 digest of the circuit's full structural
// content: name, node kinds, node names, fanin lists (in declaration order)
// and the PI/PO/FF declaration orders. Two circuits have equal hashes iff a
// node-by-node comparison of that content would find no difference, so the
// hash identifies "the same netlist" across processes — which is what the
// checkpoint/resume fingerprint needs. Derived structures (topological
// order, levels, CSR layout) are functions of the hashed content and add
// nothing. Computed once per Circuit and cached; safe for concurrent use.
func (c *Circuit) ContentHash() string {
	c.hashOnce.Do(func() {
		h := sha256.New()
		var buf [8]byte
		wInt := func(v int64) {
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
		}
		wStr := func(s string) {
			wInt(int64(len(s)))
			h.Write([]byte(s))
		}
		wIDs := func(ids []ID) {
			wInt(int64(len(ids)))
			for _, id := range ids {
				wInt(int64(id))
			}
		}
		wStr(c.Name)
		wInt(int64(len(c.Nodes)))
		for id := range c.Nodes {
			n := &c.Nodes[id]
			wInt(int64(n.Kind))
			wStr(n.Name)
			wIDs(c.faninArr[c.faninIdx[id]:c.faninIdx[id+1]])
		}
		wIDs(c.PIs)
		wIDs(c.POs)
		wIDs(c.FFs)
		c.hash = hex.EncodeToString(h.Sum(nil))
	})
	return c.hash
}

// Topo returns a combinational topological order of all nodes: every source
// (PI, FF, tie) precedes any gate, and every gate appears after all of its
// fanins. Edges into flip-flops are not ordering constraints (the FF output
// is prior-cycle state). The returned slice is shared; do not modify.
func (c *Circuit) Topo() []ID { return c.topo }

// Level returns the combinational level of node id: 0 for sources, and
// 1 + max(level of fanins) for gates.
func (c *Circuit) Level(id ID) int { return c.level[id] }

// MaxLevel returns the largest combinational level in the circuit (the
// logical depth).
func (c *Circuit) MaxLevel() int {
	m := 0
	for _, l := range c.level {
		if l > m {
			m = l
		}
	}
	return m
}

// Stats summarizes the structural properties of a circuit.
type Stats struct {
	Name      string
	Nodes     int
	PIs       int
	POs       int
	FFs       int
	Gates     int
	PerKind   map[logic.Kind]int
	MaxLevel  int
	MaxFanin  int
	MaxFanout int
	Edges     int
}

// Stats computes structural statistics for the circuit.
func (c *Circuit) Stats() Stats {
	s := Stats{
		Name:     c.Name,
		Nodes:    c.N(),
		PIs:      len(c.PIs),
		POs:      len(c.POs),
		FFs:      len(c.FFs),
		PerKind:  make(map[logic.Kind]int),
		MaxLevel: c.MaxLevel(),
	}
	for i := range c.Nodes {
		n := &c.Nodes[i]
		s.PerKind[n.Kind]++
		if n.Kind.IsGate() {
			s.Gates++
		}
		if len(n.Fanin) > s.MaxFanin {
			s.MaxFanin = len(n.Fanin)
		}
		if len(n.Fanout) > s.MaxFanout {
			s.MaxFanout = len(n.Fanout)
		}
		s.Edges += len(n.Fanin)
	}
	return s
}

// String renders a one-line summary of the stats.
func (s Stats) String() string {
	return fmt.Sprintf("%s: %d nodes (%d PI, %d PO, %d FF, %d gates), depth %d, %d edges",
		s.Name, s.Nodes, s.PIs, s.POs, s.FFs, s.Gates, s.MaxLevel, s.Edges)
}

// Clone returns a deep copy of the circuit with independent slices. The copy
// is immediately usable; derived structures are shared-by-value copies.
func (c *Circuit) Clone() *Circuit {
	cp := &Circuit{
		Name:      c.Name,
		Nodes:     make([]Node, len(c.Nodes)),
		PIs:       append([]ID(nil), c.PIs...),
		POs:       append([]ID(nil), c.POs...),
		FFs:       append([]ID(nil), c.FFs...),
		byName:    make(map[string]ID, len(c.byName)),
		observed:  append([]ID(nil), c.observed...),
		obsMask:   append([]bool(nil), c.obsMask...),
		topo:      append([]ID(nil), c.topo...),
		level:     append([]int(nil), c.level...),
		kinds:     append([]logic.Kind(nil), c.kinds...),
		faninIdx:  append([]int32(nil), c.faninIdx...),
		faninArr:  append([]ID(nil), c.faninArr...),
		fanoutIdx: append([]int32(nil), c.fanoutIdx...),
		fanoutArr: append([]ID(nil), c.fanoutArr...),
	}
	copy(cp.Nodes, c.Nodes)
	cp.aliasAdjacency() // point the copied nodes at the copied CSR arrays
	for k, v := range c.byName {
		cp.byName[k] = v
	}
	return cp
}

// NodesOfKind returns the IDs of all nodes with the given kind, ascending.
func (c *Circuit) NodesOfKind(k logic.Kind) []ID {
	var out []ID
	for i := range c.Nodes {
		if c.Nodes[i].Kind == k {
			out = append(out, ID(i))
		}
	}
	return out
}

// SortedNames returns all node names sorted, mostly useful in tests.
func (c *Circuit) SortedNames() []string {
	names := make([]string, 0, len(c.Nodes))
	for i := range c.Nodes {
		names = append(names, c.Nodes[i].Name)
	}
	sort.Strings(names)
	return names
}
