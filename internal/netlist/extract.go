// Subcircuit extraction helpers used by the cone-bounded exact backends.

package netlist

import (
	"fmt"
	"sort"

	"repro/internal/logic"
)

// ExtractCone builds a standalone circuit containing exactly the transitive
// fanin cones of the given root nodes, stopping at sources. The roots become
// the primary outputs of the extracted circuit; primary inputs and flip-flop
// outputs on the cut become primary inputs (flip-flops are converted to
// inputs because their driving logic is outside the extracted cone). Node
// names are preserved.
//
// This is the standard "cone extraction" utility for debugging a single
// output's logic or handing a slice of a large design to an exhaustive
// analysis (package exact).
func ExtractCone(c *Circuit, roots []ID) (*Circuit, error) {
	if len(roots) == 0 {
		return nil, fmt.Errorf("netlist: ExtractCone with no roots")
	}
	keep := make(map[ID]bool)
	var stack []ID
	for _, r := range roots {
		if r < 0 || int(r) >= c.N() {
			return nil, fmt.Errorf("netlist: ExtractCone: invalid root %d", r)
		}
		if !keep[r] {
			keep[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := c.Node(id)
		if n.IsSource() {
			continue // cut here; becomes an input of the extraction
		}
		for _, f := range n.Fanin {
			if !keep[f] {
				keep[f] = true
				stack = append(stack, f)
			}
		}
	}

	// Deterministic node order: original ID order.
	ids := make([]ID, 0, len(keep))
	for id := range keep {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	remap := make(map[ID]ID, len(ids))
	nodes := make([]Node, 0, len(ids))
	var pis []ID
	for _, old := range ids {
		n := c.Node(old)
		id := ID(len(nodes))
		remap[old] = id
		kind := n.Kind
		if kind == logic.DFF || kind == logic.Input {
			kind = logic.Input
		}
		nodes = append(nodes, Node{ID: id, Name: n.Name, Kind: kind})
		if kind == logic.Input {
			pis = append(pis, id)
		}
	}
	for _, old := range ids {
		n := c.Node(old)
		id := remap[old]
		if nodes[id].Kind == logic.Input {
			continue
		}
		fanin := make([]ID, len(n.Fanin))
		for i, f := range n.Fanin {
			fanin[i] = remap[f]
		}
		nodes[id].Fanin = fanin
	}
	var pos []ID
	seen := make(map[ID]bool)
	for _, r := range roots {
		id := remap[r]
		if !seen[id] {
			seen[id] = true
			nodes[id].IsPO = true
			pos = append(pos, id)
		}
	}
	return New(c.Name+"_cone", nodes, pis, pos, nil)
}
