package netlist

import (
	"fmt"
	"testing"

	"repro/internal/logic"
)

// buildSample constructs a small sequential circuit used across tests:
//
//	in0, in1 : inputs
//	ff0      : DFF whose D is n_or
//	n_and  = AND(in0, in1)
//	n_not  = NOT(n_and)
//	n_or   = OR(n_not, ff0)
//	out: n_or is a primary output
func buildSample(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder("sample")
	in0 := b.Input("in0")
	in1 := b.Input("in1")
	and := b.And("n_and", in0, in1)
	not := b.Not("n_not", and)
	// DFF forward reference: create the OR after the FF using a two-step
	// trick — build OR first, then FF, as Builder needs existing IDs.
	ff := b.DFF("ff0", and) // placeholder D; reassigned below via fresh build
	or := b.Or("n_or", not, ff)
	b.MarkOutput(or)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return c
}

func TestBuilderBasic(t *testing.T) {
	c := buildSample(t)
	if c.N() != 6 {
		t.Fatalf("N() = %d, want 6", c.N())
	}
	if len(c.PIs) != 2 || len(c.POs) != 1 || len(c.FFs) != 1 {
		t.Fatalf("interface counts: %d PI %d PO %d FF", len(c.PIs), len(c.POs), len(c.FFs))
	}
	and := c.ByName("n_and")
	if and == InvalidID {
		t.Fatal("n_and not found")
	}
	if got := c.Node(and).Kind; got != logic.And {
		t.Fatalf("n_and kind = %v", got)
	}
	if c.ByName("nope") != InvalidID {
		t.Fatal("lookup of missing name should return InvalidID")
	}
}

func TestFanoutComputation(t *testing.T) {
	c := buildSample(t)
	and := c.ByName("n_and")
	// n_and feeds n_not and ff0.
	fo := c.Node(and).Fanout
	if len(fo) != 2 {
		t.Fatalf("n_and fanout = %v, want 2 entries", fo)
	}
	names := map[string]bool{}
	for _, id := range fo {
		names[c.NameOf(id)] = true
	}
	if !names["n_not"] || !names["ff0"] {
		t.Fatalf("n_and fanout names = %v", names)
	}
}

func TestObservedPoints(t *testing.T) {
	c := buildSample(t)
	// Observed: n_or (PO) and n_and (feeds ff0's D).
	obs := c.Observed()
	if len(obs) != 2 {
		t.Fatalf("observed = %v, want 2 entries", obs)
	}
	if !c.IsObserved(c.ByName("n_or")) {
		t.Error("n_or should be observed (PO)")
	}
	if !c.IsObserved(c.ByName("n_and")) {
		t.Error("n_and should be observed (feeds DFF)")
	}
	if c.IsObserved(c.ByName("n_not")) {
		t.Error("n_not should not be observed")
	}
}

func TestTopoOrderProperty(t *testing.T) {
	c := buildSample(t)
	pos := make(map[ID]int)
	for i, id := range c.Topo() {
		pos[id] = i
	}
	if len(pos) != c.N() {
		t.Fatalf("topo order covers %d of %d nodes", len(pos), c.N())
	}
	for i := range c.Nodes {
		n := &c.Nodes[i]
		if !n.Kind.IsGate() {
			continue
		}
		for _, f := range n.Fanin {
			if pos[f] >= pos[n.ID] {
				t.Errorf("fanin %s not before gate %s in topo order", c.NameOf(f), n.Name)
			}
		}
	}
}

func TestLevels(t *testing.T) {
	c := buildSample(t)
	if l := c.Level(c.ByName("in0")); l != 0 {
		t.Errorf("level(in0) = %d", l)
	}
	if l := c.Level(c.ByName("ff0")); l != 0 {
		t.Errorf("level(ff0) = %d, FFs are level 0 sources", l)
	}
	if l := c.Level(c.ByName("n_and")); l != 1 {
		t.Errorf("level(n_and) = %d", l)
	}
	if l := c.Level(c.ByName("n_not")); l != 2 {
		t.Errorf("level(n_not) = %d", l)
	}
	if l := c.Level(c.ByName("n_or")); l != 3 {
		t.Errorf("level(n_or) = %d", l)
	}
	if c.MaxLevel() != 3 {
		t.Errorf("MaxLevel = %d", c.MaxLevel())
	}
}

func TestStats(t *testing.T) {
	c := buildSample(t)
	s := c.Stats()
	if s.Gates != 3 || s.PIs != 2 || s.FFs != 1 || s.POs != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.PerKind[logic.And] != 1 || s.PerKind[logic.Or] != 1 || s.PerKind[logic.Not] != 1 {
		t.Errorf("per-kind = %v", s.PerKind)
	}
	if s.MaxFanin != 2 {
		t.Errorf("MaxFanin = %d", s.MaxFanin)
	}
	// Edges counts all fanin references including the DFF's D:
	// and:2 + not:1 + ff:1 + or:2 = 6.
	if s.Edges != 6 {
		t.Errorf("Edges = %d, want 6", s.Edges)
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	b := NewBuilder("dup")
	in := b.Input("x")
	b.Not("x", in) // duplicate
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestBadFaninCountRejected(t *testing.T) {
	b := NewBuilder("bad")
	in := b.Input("x")
	b.Gate(logic.Not, "n", in, in) // NOT with two inputs
	if _, err := b.Build(); err == nil {
		t.Fatal("NOT with 2 fanins accepted")
	}
}

func TestCombinationalCycleRejected(t *testing.T) {
	// Construct a cycle through the raw constructor: a = AND(b, x), b = AND(a, x).
	nodes := []Node{
		{ID: 0, Name: "x", Kind: logic.Input},
		{ID: 1, Name: "a", Kind: logic.And, Fanin: []ID{2, 0}},
		{ID: 2, Name: "b", Kind: logic.And, Fanin: []ID{1, 0}, IsPO: true},
	}
	if _, err := New("cyc", nodes, []ID{0}, []ID{2}, nil); err == nil {
		t.Fatal("combinational cycle accepted")
	}
}

func TestSequentialLoopAllowed(t *testing.T) {
	// A loop broken by a DFF is legal: ff = DFF(n), n = NOT(ff).
	nodes := []Node{
		{ID: 0, Name: "ff", Kind: logic.DFF, Fanin: []ID{1}},
		{ID: 1, Name: "n", Kind: logic.Not, Fanin: []ID{0}, IsPO: true},
	}
	c, err := New("seqloop", nodes, nil, []ID{1}, []ID{0})
	if err != nil {
		t.Fatalf("sequential loop rejected: %v", err)
	}
	if c.Level(1) != 1 {
		t.Errorf("level(n) = %d", c.Level(1))
	}
}

func TestEmptyCircuitRejected(t *testing.T) {
	b := NewBuilder("empty")
	if _, err := b.Build(); err == nil {
		t.Fatal("empty circuit accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	c := buildSample(t)
	cp := c.Clone()
	if cp.N() != c.N() || cp.Name != c.Name {
		t.Fatal("clone differs")
	}
	// Mutating the clone must not affect the original.
	cp.Nodes[0].Name = "mutated"
	cp.Nodes[2].Fanin[0] = 99
	if c.Nodes[0].Name == "mutated" {
		t.Error("clone shares node slice")
	}
	if c.Nodes[2].Fanin[0] == 99 {
		t.Error("clone shares fanin slice")
	}
	if cp.ByName("in0") != c.ByName("in0") {
		t.Error("clone lost name index")
	}
}

func TestNodesOfKind(t *testing.T) {
	c := buildSample(t)
	ffs := c.NodesOfKind(logic.DFF)
	if len(ffs) != 1 || c.NameOf(ffs[0]) != "ff0" {
		t.Errorf("NodesOfKind(DFF) = %v", ffs)
	}
}

func TestMarkOutputIdempotent(t *testing.T) {
	b := NewBuilder("po")
	in := b.Input("x")
	n := b.Not("n", in)
	b.MarkOutput(n)
	b.MarkOutput(n)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.POs) != 1 {
		t.Fatalf("duplicate MarkOutput produced %d POs", len(c.POs))
	}
}

func TestMarkOutputInvalidID(t *testing.T) {
	b := NewBuilder("po")
	b.Input("x")
	b.MarkOutput(42)
	if _, err := b.Build(); err == nil {
		t.Fatal("invalid MarkOutput accepted")
	}
}

func TestRawConstructorValidation(t *testing.T) {
	// Mismatched ID.
	nodes := []Node{{ID: 5, Name: "x", Kind: logic.Input}}
	if _, err := New("bad", nodes, []ID{0}, nil, nil); err == nil {
		t.Error("mismatched ID accepted")
	}
	// Out-of-range fanin.
	nodes = []Node{
		{ID: 0, Name: "x", Kind: logic.Input},
		{ID: 1, Name: "g", Kind: logic.Not, Fanin: []ID{7}, IsPO: true},
	}
	if _, err := New("bad", nodes, []ID{0}, []ID{1}, nil); err == nil {
		t.Error("out-of-range fanin accepted")
	}
}

// obsBitOf reproduces the ObsSignatures bit assignment for observation
// point index i of nObs total.
func obsBitOf(i, nObs int) uint {
	if nObs > 64 {
		return uint(i * 64 / nObs)
	}
	return uint(i)
}

// TestObsSignatures cross-checks the one-pass reverse-reach signatures
// against a brute-force forward DFS per node: a node's signature must be
// exactly the union of the bits of the observation points reachable from it
// through combinational gates (never through a flip-flop).
func TestObsSignatures(t *testing.T) {
	c := buildSample(t)
	sig := c.ObsSignatures()
	if len(sig) != c.N() {
		t.Fatalf("len(sig) = %d, want %d", len(sig), c.N())
	}
	obs := c.Observed()
	obsBit := map[ID]uint{}
	for i, id := range obs {
		obsBit[id] = obsBitOf(i, len(obs))
	}
	for id := 0; id < c.N(); id++ {
		// Brute-force forward reach, stopping at DFF boundaries.
		want := uint64(0)
		seen := map[ID]bool{ID(id): true}
		stack := []ID{ID(id)}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if bit, ok := obsBit[n]; ok {
				want |= 1 << bit
			}
			for _, o := range c.FanoutOf(n) {
				if seen[o] || c.KindOf(o) == logic.DFF {
					continue
				}
				seen[o] = true
				stack = append(stack, o)
			}
		}
		if sig[id] != want {
			t.Errorf("sig[%s] = %#x, want %#x", c.NameOf(ID(id)), sig[id], want)
		}
	}
	// The DFF-boundary rule is covered by the brute-force cross-check above
	// (its DFS skips flip-flops exactly as the signature sweep must). Pin
	// the non-zero property separately: every node of this circuit reaches
	// some observation point combinationally.
	for id := 0; id < c.N(); id++ {
		if sig[id] == 0 {
			t.Errorf("sig[%s] = 0, but every node here reaches an output", c.NameOf(ID(id)))
		}
	}
	// Cached: second call returns the same slice.
	if &sig[0] != &c.ObsSignatures()[0] {
		t.Error("ObsSignatures not cached")
	}
}

// TestObsSignaturesManyOutputs exercises the scaled bit assignment (more
// than 64 observation points must share the 64 bits, preserving the
// sig==0 ⇔ unobservable property).
func TestObsSignaturesManyOutputs(t *testing.T) {
	b := NewBuilder("wide")
	in := b.Input("in")
	for i := 0; i < 130; i++ {
		b.MarkOutput(b.Buf(fmt.Sprintf("o%d", i), in))
	}
	orphanIn := b.Input("orphan_in")
	orphan := b.And("orphan", in, orphanIn) // drives nothing: unobservable
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sig := c.ObsSignatures()
	if got := sig[in]; got != ^uint64(0) {
		t.Errorf("sig[in] = %#x, want all 130 outputs' bits (full mask)", got)
	}
	if sig[orphan] != 0 {
		t.Errorf("sig[orphan] = %#x, want 0 (no reachable observation point)", sig[orphan])
	}
}
