package netlist

import (
	"testing"

	"repro/internal/logic"
)

// extractSample: two outputs sharing logic, one FF in the fanin.
func extractSample(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder("ex")
	a := b.Input("a")
	x := b.Input("x")
	ff := b.DFF("ff", a) // driven by a; inside fanin of g2
	g1 := b.And("g1", a, x)
	g2 := b.Or("g2", g1, ff)
	g3 := b.Not("g3", g1)
	b.MarkOutput(g2)
	b.MarkOutput(g3)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestExtractSingleRoot(t *testing.T) {
	c := extractSample(t)
	sub, err := ExtractCone(c, []ID{c.ByName("g3")})
	if err != nil {
		t.Fatal(err)
	}
	// g3's cone: g3, g1, a, x — no FF, no g2.
	if sub.N() != 4 {
		t.Fatalf("extracted %d nodes, want 4", sub.N())
	}
	if sub.ByName("g2") != InvalidID || sub.ByName("ff") != InvalidID {
		t.Error("extraction leaked nodes outside the cone")
	}
	if len(sub.PIs) != 2 || len(sub.POs) != 1 {
		t.Fatalf("interface: %d PIs %d POs", len(sub.PIs), len(sub.POs))
	}
	if !sub.Node(sub.ByName("g3")).IsPO {
		t.Error("root not marked PO")
	}
	// Gate structure preserved.
	g1 := sub.Node(sub.ByName("g1"))
	if g1.Kind != logic.And || len(g1.Fanin) != 2 {
		t.Errorf("g1 = %+v", g1)
	}
}

func TestExtractConvertsFFToInput(t *testing.T) {
	c := extractSample(t)
	sub, err := ExtractCone(c, []ID{c.ByName("g2")})
	if err != nil {
		t.Fatal(err)
	}
	ff := sub.ByName("ff")
	if ff == InvalidID {
		t.Fatal("ff missing from cone")
	}
	if sub.Node(ff).Kind != logic.Input {
		t.Errorf("ff kind = %v, want Input", sub.Node(ff).Kind)
	}
	if len(sub.FFs) != 0 {
		t.Errorf("extracted circuit has %d FFs", len(sub.FFs))
	}
	// The FF's driving logic (node a as D) must not drag in extra logic...
	// a is already in the cone as a PI; the D edge is cut.
	if got := len(sub.Node(ff).Fanin); got != 0 {
		t.Errorf("converted FF kept %d fanins", got)
	}
}

func TestExtractMultipleRoots(t *testing.T) {
	c := extractSample(t)
	sub, err := ExtractCone(c, []ID{c.ByName("g2"), c.ByName("g3")})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.POs) != 2 {
		t.Fatalf("POs = %d", len(sub.POs))
	}
	// Shared node g1 appears once.
	count := 0
	for i := range sub.Nodes {
		if sub.Nodes[i].Name == "g1" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("g1 duplicated %d times", count)
	}
}

func TestExtractDuplicateRootsDeduped(t *testing.T) {
	c := extractSample(t)
	g2 := c.ByName("g2")
	sub, err := ExtractCone(c, []ID{g2, g2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.POs) != 1 {
		t.Errorf("duplicate roots produced %d POs", len(sub.POs))
	}
}

func TestExtractErrors(t *testing.T) {
	c := extractSample(t)
	if _, err := ExtractCone(c, nil); err == nil {
		t.Error("no roots accepted")
	}
	if _, err := ExtractCone(c, []ID{999}); err == nil {
		t.Error("invalid root accepted")
	}
}

func TestExtractPreservesNamesAndTopo(t *testing.T) {
	c := extractSample(t)
	sub, err := ExtractCone(c, []ID{c.ByName("g2")})
	if err != nil {
		t.Fatal(err)
	}
	// The extraction is a valid circuit: topological order covers all nodes.
	if len(sub.Topo()) != sub.N() {
		t.Error("extraction broke topological order")
	}
	for i := range sub.Nodes {
		if c.ByName(sub.Nodes[i].Name) == InvalidID {
			t.Errorf("invented node %q", sub.Nodes[i].Name)
		}
	}
}
