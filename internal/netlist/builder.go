// Builder assembles immutable Circuits programmatically, with the same
// validation the parsers apply.

package netlist

import (
	"errors"
	"fmt"

	"repro/internal/logic"
)

// Builder incrementally assembles a Circuit. Methods record errors instead of
// failing fast; Build reports the first error encountered. A zero Builder is
// not usable; call NewBuilder.
type Builder struct {
	name   string
	nodes  []Node
	byName map[string]ID
	pis    []ID
	pos    []ID
	ffs    []ID
	errs   []error
}

// NewBuilder returns a Builder for a circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, byName: make(map[string]ID)}
}

// Errf records a construction error.
func (b *Builder) Errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

func (b *Builder) add(name string, kind logic.Kind, fanin []ID) ID {
	if name == "" {
		b.Errf("netlist: empty node name")
		name = fmt.Sprintf("__anon%d", len(b.nodes))
	}
	if _, dup := b.byName[name]; dup {
		b.Errf("netlist: duplicate node name %q", name)
		return b.byName[name]
	}
	id := ID(len(b.nodes))
	b.nodes = append(b.nodes, Node{ID: id, Name: name, Kind: kind, Fanin: fanin})
	b.byName[name] = id
	return id
}

// Input declares a primary input and returns its ID.
func (b *Builder) Input(name string) ID {
	id := b.add(name, logic.Input, nil)
	b.pis = append(b.pis, id)
	return id
}

// Const adds a tie cell driving constant v.
func (b *Builder) Const(name string, v bool) ID {
	k := logic.Const0
	if v {
		k = logic.Const1
	}
	return b.add(name, k, nil)
}

// Gate adds a combinational gate of the given kind driving net name.
func (b *Builder) Gate(kind logic.Kind, name string, fanin ...ID) ID {
	if !kind.IsGate() {
		b.Errf("netlist: %q: kind %v is not a combinational gate", name, kind)
	}
	if !kind.FaninOK(len(fanin)) {
		b.Errf("netlist: %q: %v gate with %d fanins", name, kind, len(fanin))
	}
	return b.add(name, kind, append([]ID(nil), fanin...))
}

// Not adds an inverter.
func (b *Builder) Not(name string, in ID) ID { return b.Gate(logic.Not, name, in) }

// Buf adds a buffer.
func (b *Builder) Buf(name string, in ID) ID { return b.Gate(logic.Buf, name, in) }

// And adds an n-ary AND gate.
func (b *Builder) And(name string, in ...ID) ID { return b.Gate(logic.And, name, in...) }

// Nand adds an n-ary NAND gate.
func (b *Builder) Nand(name string, in ...ID) ID { return b.Gate(logic.Nand, name, in...) }

// Or adds an n-ary OR gate.
func (b *Builder) Or(name string, in ...ID) ID { return b.Gate(logic.Or, name, in...) }

// Nor adds an n-ary NOR gate.
func (b *Builder) Nor(name string, in ...ID) ID { return b.Gate(logic.Nor, name, in...) }

// Xor adds an n-ary XOR gate.
func (b *Builder) Xor(name string, in ...ID) ID { return b.Gate(logic.Xor, name, in...) }

// Xnor adds an n-ary XNOR gate.
func (b *Builder) Xnor(name string, in ...ID) ID { return b.Gate(logic.Xnor, name, in...) }

// DFF adds a D flip-flop whose D input is the node d.
func (b *Builder) DFF(name string, d ID) ID {
	id := b.add(name, logic.DFF, []ID{d})
	b.ffs = append(b.ffs, id)
	return id
}

// MarkOutput declares an existing node a primary output.
func (b *Builder) MarkOutput(id ID) {
	if int(id) < 0 || int(id) >= len(b.nodes) {
		b.Errf("netlist: MarkOutput: invalid id %d", id)
		return
	}
	if b.nodes[id].IsPO {
		return
	}
	b.nodes[id].IsPO = true
	b.pos = append(b.pos, id)
}

// Build validates the netlist, computes fanout lists, observation points,
// the combinational topological order and levels, and returns the immutable
// Circuit. The Builder must not be reused after Build.
func (b *Builder) Build() (*Circuit, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	c := &Circuit{
		Name:   b.name,
		Nodes:  b.nodes,
		PIs:    b.pis,
		POs:    b.pos,
		FFs:    b.ffs,
		byName: b.byName,
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	c.buildCSR()
	c.computeObserved()
	if err := c.computeTopo(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Circuit) validate() error {
	if len(c.Nodes) == 0 {
		return errors.New("netlist: empty circuit")
	}
	n := ID(len(c.Nodes))
	for i := range c.Nodes {
		node := &c.Nodes[i]
		if !node.Kind.Valid() {
			return fmt.Errorf("netlist: node %q: invalid kind", node.Name)
		}
		if !node.Kind.FaninOK(len(node.Fanin)) {
			return fmt.Errorf("netlist: node %q: %v with %d fanins", node.Name, node.Kind, len(node.Fanin))
		}
		for _, f := range node.Fanin {
			if f < 0 || f >= n {
				return fmt.Errorf("netlist: node %q: fanin id %d out of range", node.Name, f)
			}
			if f == node.ID && node.Kind != logic.DFF {
				return fmt.Errorf("netlist: node %q: combinational self-loop", node.Name)
			}
		}
	}
	return nil
}

// buildCSR lays the adjacency out as two CSR (compressed sparse row)
// structures — flat fanin and fanout arrays with per-node offset indexes —
// and re-points every Node.Fanin/Node.Fanout at the corresponding span, so
// the per-node view and the flat view share storage. Analyses that sweep
// many nodes per call read the flat arrays directly (FaninCSR/FanoutCSR)
// and touch one contiguous block of memory instead of len(Nodes) separate
// allocations.
func (c *Circuit) buildCSR() {
	n := len(c.Nodes)
	edges := 0
	for i := range c.Nodes {
		edges += len(c.Nodes[i].Fanin)
	}

	c.kinds = make([]logic.Kind, n)
	for i := range c.Nodes {
		c.kinds[i] = c.Nodes[i].Kind
	}

	// Fanin CSR: copy each node's declaration-order fanin list.
	c.faninIdx = make([]int32, n+1)
	c.faninArr = make([]ID, edges)
	off := int32(0)
	for i := range c.Nodes {
		c.faninIdx[i] = off
		off += int32(copy(c.faninArr[off:], c.Nodes[i].Fanin))
	}
	c.faninIdx[n] = off

	// Fanout CSR: counting pass, prefix sums, then a fill pass that visits
	// consumers in ascending ID order (so each span is sorted, one entry per
	// use, matching the documented Node.Fanout contract).
	c.fanoutIdx = make([]int32, n+1)
	c.fanoutArr = make([]ID, edges)
	for _, f := range c.faninArr {
		c.fanoutIdx[f+1]++
	}
	for i := 0; i < n; i++ {
		c.fanoutIdx[i+1] += c.fanoutIdx[i]
	}
	cursor := make([]int32, n)
	copy(cursor, c.fanoutIdx[:n])
	for i := range c.Nodes {
		for _, f := range c.Nodes[i].Fanin {
			c.fanoutArr[cursor[f]] = ID(i)
			cursor[f]++
		}
	}

	c.aliasAdjacency()
}

// aliasAdjacency points every Node.Fanin/Node.Fanout at its CSR span. The
// three-index slice expressions cap each view so an append by a caller
// reallocates instead of bleeding into the next node's span.
func (c *Circuit) aliasAdjacency() {
	for i := range c.Nodes {
		c.Nodes[i].Fanin = c.FaninOf(ID(i))
		c.Nodes[i].Fanout = c.FanoutOf(ID(i))
	}
}

func (c *Circuit) computeObserved() {
	c.obsMask = make([]bool, len(c.Nodes))
	for i := range c.Nodes {
		if c.Nodes[i].IsPO {
			c.obsMask[i] = true
		}
		if c.Nodes[i].Kind == logic.DFF {
			// The D fanin is observable at this FF.
			c.obsMask[c.Nodes[i].Fanin[0]] = true
		}
	}
	for i := range c.Nodes {
		if c.obsMask[i] {
			c.observed = append(c.observed, ID(i))
		}
	}
}

// computeTopo builds the combinational topological order with Kahn's
// algorithm; edges into flip-flops are not ordering constraints. A remaining
// node indicates a combinational cycle, which is an error.
func (c *Circuit) computeTopo() error {
	n := len(c.Nodes)
	indeg := make([]int32, n)
	for i := range c.Nodes {
		if c.Nodes[i].Kind.IsSource() {
			continue // sources have no current-cycle dependence
		}
		indeg[i] = int32(len(c.Nodes[i].Fanin))
	}
	order := make([]ID, 0, n)
	queue := make([]ID, 0, n)
	for i := range c.Nodes {
		if indeg[i] == 0 {
			queue = append(queue, ID(i))
		}
	}
	level := make([]int, n)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		node := &c.Nodes[id]
		if node.Kind.IsGate() {
			lv := 0
			for _, f := range node.Fanin {
				if level[f] >= lv {
					lv = level[f] + 1
				}
			}
			level[id] = lv
		}
		for _, out := range node.Fanout {
			if c.Nodes[out].Kind.IsSource() {
				continue
			}
			indeg[out]--
			if indeg[out] == 0 {
				queue = append(queue, out)
			}
		}
	}
	if len(order) != n {
		for i := range c.Nodes {
			if indeg[i] > 0 {
				return fmt.Errorf("netlist: combinational cycle through node %q", c.Nodes[i].Name)
			}
		}
	}
	c.topo = order
	c.level = level
	return nil
}
