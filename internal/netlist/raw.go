// The raw mutable netlist representation shared by the parsers and
// Builder before freezing into a Circuit.

package netlist

import "fmt"

// New constructs a Circuit from a fully prepared node list. It is the
// low-level entry point used by netlist parsers, which need to resolve
// forward references before any node ordering exists; most code should use
// Builder instead.
//
// Requirements: nodes[i].ID == i, names are unique and non-empty, fanin IDs
// are in range, pos lists the IDs whose IsPO flag is set, and pis/ffs list
// the Input/DFF nodes in the desired declaration order. New validates the
// structure, computes fanout lists, observation points, the combinational
// topological order and levels.
func New(name string, nodes []Node, pis, pos, ffs []ID) (*Circuit, error) {
	byName := make(map[string]ID, len(nodes))
	for i := range nodes {
		if nodes[i].ID != ID(i) {
			return nil, fmt.Errorf("netlist: node %d has ID %d", i, nodes[i].ID)
		}
		if nodes[i].Name == "" {
			return nil, fmt.Errorf("netlist: node %d has empty name", i)
		}
		if _, dup := byName[nodes[i].Name]; dup {
			return nil, fmt.Errorf("netlist: duplicate node name %q", nodes[i].Name)
		}
		byName[nodes[i].Name] = ID(i)
	}
	c := &Circuit{
		Name:   name,
		Nodes:  nodes,
		PIs:    pis,
		POs:    pos,
		FFs:    ffs,
		byName: byName,
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	c.buildCSR()
	c.computeObserved()
	if err := c.computeTopo(); err != nil {
		return nil, err
	}
	return c, nil
}
