package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := NewTable("Demo", "Circuit", "Value")
	tb.AddRow("s953", "0.354")
	tb.AddRow("s38417", "14.180")
	tb.AddNote("runtimes in ms")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + rule + 2 rows + note.
	if len(lines) != 6 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Circuit") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("rule = %q", lines[2])
	}
	// Columns align: "Value" column starts at the same offset in all rows.
	col := strings.Index(lines[1], "Value")
	if got := strings.Index(lines[4], "14.180"); got != col {
		t.Errorf("column misaligned: header at %d, row at %d\n%s", col, got, out)
	}
	if !strings.Contains(lines[5], "note: runtimes in ms") {
		t.Errorf("note missing: %q", lines[5])
	}
}

func TestAddRowPadsShortRows(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("x")
	if len(tb.Rows[0]) != 3 {
		t.Fatalf("row not padded: %v", tb.Rows[0])
	}
}

func TestAddRowf(t *testing.T) {
	tb := NewTable("", "name", "f", "i")
	tb.AddRowf("x", 3.14159, 42)
	if tb.Rows[0][0] != "x" || tb.Rows[0][2] != "42" {
		t.Fatalf("row = %v", tb.Rows[0])
	}
	if !strings.HasPrefix(tb.Rows[0][1], "3.14") {
		t.Fatalf("float cell = %q", tb.Rows[0][1])
	}
}

func TestCellFloatFormats(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{1234567, "1.23e+06"},
		{0.0000123, "1.23e-05"},
		{123.456, "123.5"},
		{0.434, "0.434"},
	}
	for _, c := range cases {
		if got := Cell(c.in); got != c.want {
			t.Errorf("Cell(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("1", "x,y") // comma must be quoted
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestNoTitle(t *testing.T) {
	tb := NewTable("", "h")
	tb.AddRow("v")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(buf.String(), "\n") {
		t.Error("empty title produced a blank line")
	}
}
