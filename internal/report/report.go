// Package report renders experiment results as aligned plain-text tables and
// CSV, used by the benchmark harness executables to print the Table 2
// reproduction in the paper's layout.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of string cells under a header.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Header) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row of formatted values: each argument is rendered with
// Cell.
func (t *Table) AddRowf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		cells[i] = Cell(v)
	}
	t.AddRow(cells...)
}

// AddNote appends a footnote printed below the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Cell renders a single value compactly: floats get adaptive precision,
// everything else uses %v.
func Cell(v any) string {
	switch x := v.(type) {
	case float64:
		return formatFloat(x)
	case float32:
		return formatFloat(float64(x))
	case string:
		return x
	default:
		return fmt.Sprintf("%v", v)
	}
}

func formatFloat(x float64) string {
	ax := x
	if ax < 0 {
		ax = -ax
	}
	switch {
	case x == 0:
		return "0"
	case ax >= 100000 || ax < 0.001:
		return fmt.Sprintf("%.3g", x)
	case ax >= 100:
		return fmt.Sprintf("%.1f", x)
	default:
		return fmt.Sprintf("%.3f", x)
	}
}

// Render writes the table to w with column alignment.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes the header and rows in CSV form.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
