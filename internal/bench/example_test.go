package bench_test

import (
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
)

// ExampleParseString parses a tiny sequential netlist and prints its
// structure.
func ExampleParseString() {
	c, err := bench.ParseString(`
# toggle flop with enable
INPUT(en)
OUTPUT(q)
q = DFF(d)
nq = NOT(q)
d = AND(en, nq)
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.Stats())
	// Output:
	// circuit: 4 nodes (1 PI, 1 PO, 1 FF, 2 gates), depth 2, 4 edges
}

// ExampleWrite round-trips a netlist through the writer.
func ExampleWrite() {
	c, err := bench.ParseString("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
	if err != nil {
		log.Fatal(err)
	}
	if err := bench.Write(os.Stdout, c); err != nil {
		log.Fatal(err)
	}
	// Output:
	// # circuit
	// # 1 inputs, 1 outputs, 0 D-type flipflops, 1 gates
	// INPUT(a)
	// OUTPUT(y)
	//
	// y = NOT(a)
}
