// Package bench reads and writes gate-level netlists in the ISCAS'85/'89
// .bench format, the lingua franca of the academic test/reliability
// community and the format the paper's benchmark circuits (s953 … s38417)
// are distributed in.
//
// The grammar accepted (case-insensitive keywords, '#' comments):
//
//	INPUT(name)
//	OUTPUT(name)
//	name = GATE(arg1, arg2, ...)     GATE ∈ AND OR NAND NOR NOT BUFF XOR XNOR DFF
//
// Forward references are allowed, as in the original benchmark files. The
// parser is hand written (no regexp) and reports errors with line numbers.
package bench

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// ParseError describes a syntax or semantic error in a .bench source.
type ParseError struct {
	File string // file name if known, else "<input>"
	Line int    // 1-based line number
	Msg  string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

// Options control parsing behaviour.
type Options struct {
	// Name sets the circuit name. If empty, the file base name (without
	// extension) or "circuit" is used.
	Name string
	// ImplicitInputs, when true, treats references to undeclared signals as
	// primary inputs instead of failing. Some circulated benchmark variants
	// rely on this.
	ImplicitInputs bool
}

type stmt struct {
	line  int
	out   string
	kind  logic.Kind
	args  []string
	isIn  bool
	isOut bool
}

// ParseFile parses the .bench file at path.
func ParseFile(path string) (*netlist.Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	name = strings.TrimSuffix(name, ".bench")
	return ParseWithOptions(f, Options{Name: name})
}

// Parse parses .bench source from r with default options.
func Parse(r io.Reader) (*netlist.Circuit, error) {
	return ParseWithOptions(r, Options{})
}

// ParseString parses .bench source held in a string.
func ParseString(src string) (*netlist.Circuit, error) {
	return Parse(strings.NewReader(src))
}

// ParseWithOptions parses .bench source from r.
func ParseWithOptions(r io.Reader, opt Options) (*netlist.Circuit, error) {
	file := "<input>"
	cname := opt.Name
	if cname == "" {
		cname = "circuit"
	}
	fail := func(line int, format string, args ...any) error {
		return &ParseError{File: file, Line: line, Msg: fmt.Sprintf(format, args...)}
	}

	var stmts []stmt
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		s, err := parseLine(line, lineNo, fail)
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(stmts) == 0 {
		return nil, fail(lineNo, "empty netlist")
	}
	return assemble(cname, stmts, opt, fail)
}

// parseLine parses a single non-empty, comment-stripped line.
func parseLine(line string, no int, fail func(int, string, ...any) error) (stmt, error) {
	if eq := strings.IndexByte(line, '='); eq >= 0 {
		out := strings.TrimSpace(line[:eq])
		if out == "" || !validName(out) {
			return stmt{}, fail(no, "invalid signal name %q on left of '='", out)
		}
		rhs := strings.TrimSpace(line[eq+1:])
		op, args, err := parseCall(rhs, no, fail)
		if err != nil {
			return stmt{}, err
		}
		kind, ok := logic.ParseKind(op)
		if !ok || kind == logic.Input {
			return stmt{}, fail(no, "unknown gate type %q", op)
		}
		if !kind.FaninOK(len(args)) {
			return stmt{}, fail(no, "%s gate %q with %d inputs", kind, out, len(args))
		}
		return stmt{line: no, out: out, kind: kind, args: args}, nil
	}
	op, args, err := parseCall(line, no, fail)
	if err != nil {
		return stmt{}, err
	}
	if len(args) != 1 {
		return stmt{}, fail(no, "%s declaration takes exactly one signal", op)
	}
	switch strings.ToUpper(op) {
	case "INPUT":
		return stmt{line: no, out: args[0], isIn: true}, nil
	case "OUTPUT":
		return stmt{line: no, out: args[0], isOut: true}, nil
	}
	return stmt{}, fail(no, "expected INPUT(...), OUTPUT(...) or assignment, got %q", line)
}

// parseCall parses "OP(a, b, c)".
func parseCall(s string, no int, fail func(int, string, ...any) error) (op string, args []string, err error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", nil, fail(no, "malformed expression %q", s)
	}
	op = strings.TrimSpace(s[:open])
	if op == "" {
		return "", nil, fail(no, "missing operator in %q", s)
	}
	inner := s[open+1 : len(s)-1]
	if strings.TrimSpace(inner) == "" {
		return "", nil, fail(no, "empty argument list in %q", s)
	}
	for _, part := range strings.Split(inner, ",") {
		a := strings.TrimSpace(part)
		if a == "" || !validName(a) {
			return "", nil, fail(no, "invalid signal name %q in %q", a, s)
		}
		args = append(args, a)
	}
	return op, args, nil
}

// validName reports whether s is a legal .bench signal name: any run of
// characters excluding whitespace, parens, commas, '=' and '#'.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '(' || c == ')' || c == ',' || c == '=' || c == '#':
			return false
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			return false
		}
	}
	return true
}

// assemble resolves names (forward references allowed) and constructs the
// immutable circuit.
func assemble(cname string, stmts []stmt, opt Options, fail func(int, string, ...any) error) (*netlist.Circuit, error) {
	ids := make(map[string]netlist.ID)
	var nodes []netlist.Node
	var pis, pos, ffs []netlist.ID

	define := func(name string, kind logic.Kind, line int) (netlist.ID, error) {
		if _, dup := ids[name]; dup {
			return 0, fail(line, "signal %q defined more than once", name)
		}
		id := netlist.ID(len(nodes))
		nodes = append(nodes, netlist.Node{ID: id, Name: name, Kind: kind})
		ids[name] = id
		return id, nil
	}

	// Pass 1: declare all defined signals (inputs and gate/DFF outputs).
	var outputs []stmt
	for _, s := range stmts {
		switch {
		case s.isIn:
			id, err := define(s.out, logic.Input, s.line)
			if err != nil {
				return nil, err
			}
			pis = append(pis, id)
		case s.isOut:
			outputs = append(outputs, s)
		default:
			id, err := define(s.out, s.kind, s.line)
			if err != nil {
				return nil, err
			}
			if s.kind == logic.DFF {
				ffs = append(ffs, id)
			}
		}
	}

	// Pass 2: resolve fanin references.
	resolve := func(name string, line int) (netlist.ID, error) {
		if id, ok := ids[name]; ok {
			return id, nil
		}
		if opt.ImplicitInputs {
			id := netlist.ID(len(nodes))
			nodes = append(nodes, netlist.Node{ID: id, Name: name, Kind: logic.Input})
			ids[name] = id
			pis = append(pis, id)
			return id, nil
		}
		return 0, fail(line, "undefined signal %q", name)
	}
	for _, s := range stmts {
		if s.isIn || s.isOut {
			continue
		}
		id := ids[s.out]
		fanin := make([]netlist.ID, len(s.args))
		for i, a := range s.args {
			f, err := resolve(a, s.line)
			if err != nil {
				return nil, err
			}
			fanin[i] = f
		}
		nodes[id].Fanin = fanin
	}

	// Pass 3: mark outputs.
	for _, s := range outputs {
		id, ok := ids[s.out]
		if !ok {
			var err error
			id, err = resolve(s.out, s.line)
			if err != nil {
				return nil, err
			}
		}
		if !nodes[id].IsPO {
			nodes[id].IsPO = true
			pos = append(pos, id)
		}
	}

	return netlist.New(cname, nodes, pis, pos, ffs)
}
