// .bench serialization: Write emits a Circuit in the ISCAS'85/'89 netlist
// format accepted by Parse, so circuits round-trip through the parser.

package bench

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Write emits the circuit in .bench format: a header comment, INPUT and
// OUTPUT declarations, then one assignment per flip-flop and gate in node
// order. The output round-trips through Parse to an isomorphic circuit.
func Write(w io.Writer, c *netlist.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	s := c.Stats()
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d D-type flipflops, %d gates\n",
		s.PIs, s.POs, s.FFs, s.Gates)
	for _, id := range c.PIs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.NameOf(id))
	}
	for _, id := range c.POs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.NameOf(id))
	}
	fmt.Fprintln(bw)
	for i := range c.Nodes {
		n := &c.Nodes[i]
		switch n.Kind {
		case logic.Input:
			continue
		case logic.Const0, logic.Const1:
			// .bench has no tie-cell syntax; emit the conventional
			// one-input workaround used by circulated benchmark variants.
			return fmt.Errorf("bench: cannot serialize tie cell %q (kind %v)", n.Name, n.Kind)
		default:
			fmt.Fprintf(bw, "%s = %s(", n.Name, n.Kind)
			for j, f := range n.Fanin {
				if j > 0 {
					bw.WriteString(", ")
				}
				bw.WriteString(c.NameOf(f))
			}
			bw.WriteString(")\n")
		}
	}
	return bw.Flush()
}

// WriteFile writes the circuit to the file at path in .bench format.
func WriteFile(path string, c *netlist.Circuit) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
