package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/logic"
)

const sampleSrc = `
# simple sequential sample
INPUT(G0)
INPUT(G1)
OUTPUT(G5)

G2 = DFF(G4)        # state element
G3 = NAND(G0, G1)
G4 = OR(G3, G2)
G5 = NOT(G4)
`

func TestParseSample(t *testing.T) {
	c, err := ParseString(sampleSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if c.N() != 6 {
		t.Fatalf("N = %d, want 6", c.N())
	}
	if len(c.PIs) != 2 || len(c.POs) != 1 || len(c.FFs) != 1 {
		t.Fatalf("interface: %d/%d/%d", len(c.PIs), len(c.POs), len(c.FFs))
	}
	g3 := c.ByName("G3")
	if c.Node(g3).Kind != logic.Nand {
		t.Errorf("G3 kind = %v", c.Node(g3).Kind)
	}
	if len(c.Node(g3).Fanin) != 2 {
		t.Errorf("G3 fanin = %v", c.Node(g3).Fanin)
	}
	// DFF forward reference: G2 = DFF(G4) references G4 before definition.
	g2 := c.ByName("G2")
	if c.Node(g2).Kind != logic.DFF || c.NameOf(c.Node(g2).Fanin[0]) != "G4" {
		t.Errorf("G2 = %+v", c.Node(g2))
	}
	if !c.Node(c.ByName("G5")).IsPO {
		t.Error("G5 not marked PO")
	}
}

func TestParseCaseInsensitiveAndWhitespace(t *testing.T) {
	src := "input( a )\noutput(y)\ny = nand( a , a )\n"
	c, err := ParseString(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if c.Node(c.ByName("y")).Kind != logic.Nand {
		t.Error("lower-case nand not parsed")
	}
}

func TestRoundTrip(t *testing.T) {
	c, err := ParseString(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatalf("Write: %v", err)
	}
	c2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-Parse: %v\nsource:\n%s", err, buf.String())
	}
	if c2.N() != c.N() {
		t.Fatalf("round trip changed node count: %d -> %d", c.N(), c2.N())
	}
	for i := range c.Nodes {
		a, b := &c.Nodes[i], c2.Nodes[i]
		if a.Name != b.Name || a.Kind != b.Kind || len(a.Fanin) != len(b.Fanin) || a.IsPO != b.IsPO {
			t.Fatalf("node %d differs: %+v vs %+v", i, a, b)
		}
		for j := range a.Fanin {
			if c.NameOf(a.Fanin[j]) != c2.NameOf(b.Fanin[j]) {
				t.Fatalf("node %s fanin %d differs", a.Name, j)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		frag string // expected substring of the error
	}{
		{"undefined", "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n", "undefined signal"},
		{"duplicate", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = NOT(a)\n", "more than once"},
		{"dup-input", "INPUT(a)\nINPUT(a)\nOUTPUT(a)\n", "more than once"},
		{"badgate", "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n", "unknown gate"},
		{"malformed", "INPUT(a)\nOUTPUT(y)\ny = AND(a", "malformed"},
		{"empty-args", "INPUT(a)\nOUTPUT(y)\ny = AND()\n", "empty argument"},
		{"input-arity", "INPUT(a, b)\n", "exactly one"},
		{"not-arity", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a, b)\n", "2 inputs"},
		{"junk", "INPUT(a)\nwat\n", "malformed"},
		{"empty", "  \n# only a comment\n", "empty netlist"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseString(c.src)
			if err == nil {
				t.Fatalf("no error for %q", c.src)
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Fatalf("error %q does not contain %q", err, c.frag)
			}
		})
	}
}

func TestParseErrorHasLineNumber(t *testing.T) {
	_, err := ParseString("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.Line != 3 {
		t.Errorf("error line = %d, want 3", pe.Line)
	}
	if !strings.Contains(pe.Error(), ":3:") {
		t.Errorf("formatted error %q lacks line number", pe.Error())
	}
}

func TestImplicitInputs(t *testing.T) {
	src := "OUTPUT(y)\ny = AND(a, b)\n"
	if _, err := ParseString(src); err == nil {
		t.Fatal("undeclared signals accepted without option")
	}
	c, err := ParseWithOptions(strings.NewReader(src), Options{ImplicitInputs: true})
	if err != nil {
		t.Fatalf("ImplicitInputs parse: %v", err)
	}
	if len(c.PIs) != 2 {
		t.Fatalf("implicit inputs: %d PIs", len(c.PIs))
	}
}

func TestOutputOfUndeclaredSignal(t *testing.T) {
	// OUTPUT referencing a never-defined signal is an error by default.
	src := "INPUT(a)\nOUTPUT(ghost)\nx = NOT(a)\n"
	if _, err := ParseString(src); err == nil {
		t.Fatal("OUTPUT of undefined signal accepted")
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := "# header\n\nINPUT(a) # trailing comment\n\n# mid\nOUTPUT(y)\ny = BUFF(a)\n"
	c, err := ParseString(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if c.Node(c.ByName("y")).Kind != logic.Buf {
		t.Error("BUFF not parsed")
	}
}

func TestParseDFFChain(t *testing.T) {
	// Two FFs in a row plus a purely sequential cycle (legal).
	src := `
INPUT(a)
OUTPUT(q1)
q0 = DFF(d0)
q1 = DFF(q0)
d0 = XOR(a, q1)
`
	c, err := ParseString(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(c.FFs) != 2 {
		t.Fatalf("FFs = %d", len(c.FFs))
	}
	// d0 must be an observation point (feeds q0's D); q0 feeds q1's D.
	if !c.IsObserved(c.ByName("d0")) {
		t.Error("d0 should be observed")
	}
	if !c.IsObserved(c.ByName("q0")) {
		t.Error("q0 should be observed (feeds q1)")
	}
}

func TestWriterRejectsTieCells(t *testing.T) {
	// Build a circuit with a tie cell via the builder and confirm Write
	// reports a clear error instead of emitting invalid .bench.
	src := "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"
	c, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatalf("plain circuit should serialize: %v", err)
	}
}

func TestValidName(t *testing.T) {
	good := []string{"G0", "a_b", "n[3]", "x.y", "123", "a-b"}
	bad := []string{"", "a b", "a,b", "a(b", "a)b", "a=b", "a#b"}
	for _, s := range good {
		if !validName(s) {
			t.Errorf("validName(%q) = false", s)
		}
	}
	for _, s := range bad {
		if validName(s) {
			t.Errorf("validName(%q) = true", s)
		}
	}
}
