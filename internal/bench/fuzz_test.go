package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzParse exercises the hand-written .bench parser with arbitrary input:
// it must never panic, and any input it accepts must survive a
// write/re-parse round trip with the node count preserved.
func FuzzParse(f *testing.F) {
	seeds := []string{
		sampleSrc,
		"INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n",
		"INPUT(a)\nOUTPUT(y)\ny = AND(a, a)\n",
		"# only a comment\n",
		"INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = XOR(a, q)\n",
		"y = AND(", "INPUT(", "OUTPUT()", "a = ", "= NOT(a)",
		"INPUT(a)\ny=BUFF(a)\nOUTPUT(y)",
		strings.Repeat("INPUT(x)\n", 3),
	}
	// Real benchmark fixtures give the mutator a full valid netlist to start
	// from, reaching much deeper parser and writer states than the synthetic
	// fragments above.
	files, err := filepath.Glob("../../testdata/*.bench")
	if err != nil {
		f.Fatal(err)
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, string(data))
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseString(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if werr := Write(&buf, c); werr != nil {
			return // tie cells etc. may be unserializable
		}
		c2, rerr := Parse(&buf)
		if rerr != nil {
			t.Fatalf("accepted netlist did not round-trip: %v\ninput: %q\nemitted:\n%s",
				rerr, src, buf.String())
		}
		if c2.N() != c.N() {
			t.Fatalf("round trip changed node count %d -> %d for input %q", c.N(), c2.N(), src)
		}
	})
}
