package seq

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/sigprob"
	"repro/internal/simulate"
)

func mustParse(t *testing.T, src string) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func analyzer(t *testing.T, c *netlist.Circuit) *Analyzer {
	t.Helper()
	a, err := New(c, sigprob.Topological(c, sigprob.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestShiftRegisterLatency: a 3-stage shift register delivers the error to
// the output after exactly 3 more frames; detection probability is a step
// function of the frame budget.
func TestShiftRegisterLatency(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
OUTPUT(z)
d0 = BUFF(a)
q0 = DFF(d0)
q1 = DFF(q0)
q2 = DFF(q1)
z  = BUFF(q2)
`)
	a := analyzer(t, c)
	site := c.ByName("d0")
	want := []float64{0, 0, 0, 1, 1} // frames 1..5
	for k := 1; k <= 5; k++ {
		got := a.PDetect(site, k)
		if math.Abs(got-want[k-1]) > 1e-12 {
			t.Errorf("PDetect(d0, %d) = %v, want %v", k, got, want[k-1])
		}
	}
	curve := a.PDetectCurve(site, 5)
	for k := range curve {
		if math.Abs(curve[k]-want[k]) > 1e-12 {
			t.Errorf("curve[%d] = %v, want %v", k, curve[k], want[k])
		}
	}
}

// TestFrameOneMatchesPOOnlyEPP: with a one-frame budget, PDetect counts only
// primary outputs (unlike P_sensitized, which also counts FF D inputs).
func TestFrameOneMatchesPOOnlyEPP(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
INPUT(b)
OUTPUT(y)
g = AND(a, b)
y = BUFF(g)
q = DFF(g)
`)
	a := analyzer(t, c)
	// SEU at g: reaches PO y always through the buffer.
	if got := a.PDetect(c.ByName("g"), 1); got != 1 {
		t.Errorf("PDetect(g, 1) = %v", got)
	}
	// SEU at a: reaches y iff b=1 -> 0.5 in frame 1.
	if got := a.PDetect(c.ByName("a"), 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("PDetect(a, 1) = %v", got)
	}
}

// TestMonotoneInFrames: more frames can only increase detection probability.
func TestMonotoneInFrames(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		c := gen.SmallRandomSequential(seed + 60)
		a := analyzer(t, c)
		for id := 0; id < c.N(); id += 5 {
			curve := a.PDetectCurve(netlist.ID(id), 6)
			for k := 1; k < len(curve); k++ {
				if curve[k] < curve[k-1]-1e-12 {
					t.Fatalf("seed %d site %d: curve not monotone: %v", seed, id, curve)
				}
			}
			for k, p := range curve {
				if p < -1e-12 || p > 1+1e-12 {
					t.Fatalf("seed %d site %d frame %d: p = %v", seed, id, k, p)
				}
			}
		}
	}
}

// TestDeadEndFF: an error captured only by a flip-flop that never reaches a
// primary output is never detected no matter the budget.
func TestDeadEndFF(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
OUTPUT(y)
y = BUFF(a)
d = NOT(a)
q = DFF(d)
sink = NOT(q)
q2 = DFF(sink)
`)
	a := analyzer(t, c)
	// SEU at d: captured by q, which feeds only q2's cone, which feeds no PO.
	for k := 1; k <= 6; k++ {
		if got := a.PDetect(c.ByName("d"), k); got != 0 {
			t.Errorf("PDetect(d, %d) = %v, want 0", k, got)
		}
	}
}

// TestAgainstSequentialSimulator: the analytical multi-cycle extension must
// track two-machine fault-injection simulation on random sequential
// circuits. The analytical model treats FF captures as independent, so the
// comparison uses a loose statistical bound.
func TestAgainstSequentialSimulator(t *testing.T) {
	sumAbs, n := 0.0, 0
	for seed := uint64(0); seed < 5; seed++ {
		c := gen.SmallRandomSequential(seed + 80)
		a := analyzer(t, c)
		for _, frames := range []int{1, 2, 4} {
			sim := simulate.NewSequential(c, simulate.SeqOptions{
				Frames: frames, Trials: 1 << 13, Seed: seed,
			})
			for id := 0; id < c.N(); id += 4 {
				got := a.PDetect(netlist.ID(id), frames)
				ref := sim.PDetect(netlist.ID(id)).PDetect
				sumAbs += math.Abs(got - ref)
				n++
			}
		}
	}
	mean := sumAbs / float64(n)
	t.Logf("multi-cycle EPP vs sequential simulation: mean |diff| = %.4f over %d points", mean, n)
	if mean > 0.08 {
		t.Errorf("mean difference %v exceeds 0.08", mean)
	}
}

// TestExactFrameOneAgainstSimulator: at frames = 1 there is no cross-frame
// correlation, so on a fanout-free path the analytic value is exact.
func TestExactFrameOneAgainstSimulator(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
INPUT(b)
INPUT(cc)
OUTPUT(y)
g1 = AND(a, b)
g2 = OR(g1, cc)
y = BUFF(g2)
`)
	a := analyzer(t, c)
	sim := simulate.NewSequential(c, simulate.SeqOptions{Frames: 1, Trials: 1 << 15, Seed: 3})
	for _, name := range []string{"a", "g1", "g2"} {
		got := a.PDetect(c.ByName(name), 1)
		r := sim.PDetect(c.ByName(name))
		if math.Abs(got-r.PDetect) > 5*r.StdErr+1e-9 {
			t.Errorf("site %s: analytic %v, simulated %v ± %v", name, got, r.PDetect, r.StdErr)
		}
	}
}

// TestPDetectPanicsOnZeroFrames documents the API contract.
func TestPDetectPanicsOnZeroFrames(t *testing.T) {
	c := mustParse(t, "INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n")
	a := analyzer(t, c)
	defer func() {
		if recover() == nil {
			t.Error("PDetect(0 frames) did not panic")
		}
	}()
	a.PDetect(c.ByName("a"), 0)
}

// TestWeightedCompositionIdentities pins the latch-window-weighted
// composition's algebra on random sequential circuits: weight 1 reproduces
// the unweighted analysis bit-exactly, weight 0 leaves only the
// through-flip-flop (later-frame) detections, and the estimate is monotone
// nondecreasing in the weight and bounded by the unweighted value.
func TestWeightedCompositionIdentities(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		c := gen.SmallRandomSequential(seed + 140)
		a := analyzer(t, c)
		for _, frames := range []int{1, 2, 4} {
			for id := 0; id < c.N(); id++ {
				site := netlist.ID(id)
				plain := a.PDetect(site, frames)
				if w1 := a.PDetectWeighted(site, frames, 1); w1 != plain {
					t.Fatalf("seed %d frames %d site %d: weight 1 %v != PDetect %v (must be bit-exact)",
						seed, frames, id, w1, plain)
				}
				prev := -1.0
				for _, w := range []float64{0, 0.18, 0.5, 0.97, 1} {
					pw := a.PDetectWeighted(site, frames, w)
					if pw < 0 || pw > plain+1e-15 {
						t.Fatalf("seed %d frames %d site %d weight %v: %v outside [0, %v]",
							seed, frames, id, w, pw, plain)
					}
					if pw < prev-1e-15 {
						t.Fatalf("seed %d frames %d site %d: not monotone in weight (%v after %v)",
							seed, frames, id, pw, prev)
					}
					prev = pw
				}
				if frames == 1 {
					if z := a.PDetectWeighted(site, 1, 0); z != 0 {
						t.Fatalf("seed %d site %d: frames=1 weight 0 gives %v, want 0 (strike-only analysis)",
							seed, id, z)
					}
				}
			}
		}
	}
}

// TestWeightedBatchMatchesScalar: the batched weighted sweep is the scalar
// weighted composition, site for site, at every weight — the property the
// parallel engine distribution relies on.
func TestWeightedBatchMatchesScalar(t *testing.T) {
	c := gen.SmallRandomSequential(17)
	a := analyzer(t, c)
	b := analyzer(t, c)
	const frames = 3
	for _, w := range []float64{0, 0.18, 1} {
		sites := make([]netlist.ID, c.N())
		for id := range sites {
			sites[id] = netlist.ID(id)
		}
		out := make([]float64, c.N())
		a.PDetectBatchWeighted(sites, frames, w, out)
		for id := range sites {
			if want := b.PDetectWeighted(netlist.ID(id), frames, w); out[id] != want {
				t.Fatalf("weight %v site %d: batch %v != scalar %v", w, id, out[id], want)
			}
		}
	}
}

// TestWeightedPanicsOnBadWeight: out-of-range weights are programming
// errors, rejected loudly.
func TestWeightedPanicsOnBadWeight(t *testing.T) {
	c := gen.SmallRandomSequential(5)
	a := analyzer(t, c)
	for _, w := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("weight %v accepted", w)
				}
			}()
			a.PDetectWeighted(0, 2, w)
		}()
	}
}
