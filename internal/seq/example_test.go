package seq_test

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/seq"
	"repro/internal/sigprob"
)

// ExampleAnalyzer_PDetectCurve: a 2-stage pipeline delivers an error to the
// primary output exactly two clock edges after the strike, producing a step
// detection-latency curve.
func ExampleAnalyzer_PDetectCurve() {
	c, err := bench.ParseString(`
INPUT(a)
OUTPUT(z)
d0 = BUFF(a)
q0 = DFF(d0)
q1 = DFF(q0)
z  = BUFF(q1)
`)
	if err != nil {
		log.Fatal(err)
	}
	an, err := seq.New(c, sigprob.Topological(c, sigprob.Config{}))
	if err != nil {
		log.Fatal(err)
	}
	curve := an.PDetectCurve(c.ByName("d0"), 4)
	for k, p := range curve {
		fmt.Printf("within %d cycle(s): %.0f\n", k+1, p)
	}
	// Output:
	// within 1 cycle(s): 0
	// within 2 cycle(s): 0
	// within 3 cycle(s): 1
	// within 4 cycle(s): 1
}
