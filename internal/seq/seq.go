// Package seq extends the paper's single-cycle EPP analysis to multi-cycle
// (sequential) error propagation: an erroneous value that is captured by
// flip-flops at the strike cycle keeps propagating through the combinational
// logic in subsequent cycles until it either reaches a primary output or is
// logically masked everywhere.
//
// The DATE 2005 paper stops at the flip-flop boundary (P_sensitized counts
// FF D inputs as detecting outputs); multi-cycle propagation is the
// extension the authors pursued in their follow-up work. The model here is
// the standard frame-unrolled approximation:
//
//   - One EPP sweep per error source (the original site, plus each flip-flop
//     output) yields, per source s: pPO(s), the probability the error
//     reaches a primary output in that frame, and cap(s → f), the
//     probability it reaches flip-flop f's D input with either polarity.
//
//   - R(f, k) — the probability an error held in flip-flop f is observed at
//     a primary output within k frames — satisfies
//
//     R(f, 1) = pPO(f)
//     R(f, k) = 1 − (1 − pPO(f)) · ∏_g (1 − cap(f→g)·R(g, k−1))
//
//   - PDetect(site, K) composes the strike-frame sweep with R over the
//     captured flip-flops.
//
// Flip-flop captures within one frame are treated as independent (the same
// assumption the single-cycle method makes across reconvergent outputs), and
// a captured error is assumed to be latched with certainty. The
// latch-window coupling is the Weighted variants: the strike frame's
// primary-output detection term is a narrow transient racing the capturing
// register's latching window, so PDetectWeighted/PDetectBatchWeighted scale
// it by a strike weight (latch.Model.FrameWeight(0)); detections in frames
// >= 1 are full-cycle values re-launched from flip-flops, whose capture
// weight is identically 1 (latch.Model.FrameWeight(k >= 1)), so the
// lookahead recursion R is never derated and flip-flop captures carry the
// error deterministically — exactly the semantics of the Monte Carlo
// kernel's carried lane state. Validation against the sequential
// fault-injection simulator (simulate.Sequential) is in the test suite.
package seq

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sched"
)

// Analyzer computes multi-cycle detection probabilities over a fixed circuit
// and signal probability assignment. Not safe for concurrent use.
type Analyzer struct {
	c    *netlist.Circuit
	epp  *core.Analyzer
	nFFs int
	// ffIndex maps a DFF node ID to its dense index in sweep vectors.
	ffIndex map[netlist.ID]int
	ffIDs   []netlist.ID
	// memoized per-FF single-frame sweeps.
	ffSweep []*frameSweep
	// rCache memoizes the converged R(·, lookahead) vectors, which are
	// site-independent, so an all-nodes multi-cycle analysis pays the R
	// iteration once per frame budget instead of once per site.
	rCache map[int][]float64
	// batchScratch holds the batched strike-sweep results reused across
	// PDetectBatch calls.
	batchScratch []core.Result
}

// frameSweep is the one-frame propagation profile of an error source.
type frameSweep struct {
	pPO float64   // probability of reaching a primary output this frame
	cap []float64 // per-FF-index probability of reaching that FF's D input
}

// New returns a multi-cycle analyzer using the given off-path signal
// probabilities (as in core.New).
func New(c *netlist.Circuit, sp []float64) (*Analyzer, error) {
	epp, err := core.New(c, sp, core.Options{})
	if err != nil {
		return nil, err
	}
	a := &Analyzer{
		c:       c,
		epp:     epp,
		nFFs:    len(c.FFs),
		ffIndex: make(map[netlist.ID]int, len(c.FFs)),
	}
	a.ffIDs = append(a.ffIDs, c.FFs...)
	for i, ff := range c.FFs {
		a.ffIndex[ff] = i
	}
	a.ffSweep = make([]*frameSweep, a.nFFs)
	a.rCache = make(map[int][]float64)
	return a, nil
}

// rVector returns the memoized R(·, lookahead) vector: per flip-flop, the
// probability an error held in it is observed at a primary output within
// lookahead frames. lookahead >= 1.
func (a *Analyzer) rVector(lookahead int) []float64 {
	if r, ok := a.rCache[lookahead]; ok {
		return r
	}
	a.ensureFFProfiles()
	r := make([]float64, a.nFFs)
	if lookahead == 1 {
		for i := 0; i < a.nFFs; i++ {
			r[i] = a.ffProfile(i).pPO
		}
	} else {
		prev := a.rVector(lookahead - 1)
		for i := 0; i < a.nFFs; i++ {
			fs := a.ffProfile(i)
			miss := 1 - fs.pPO
			for j, c := range fs.cap {
				if c > 0 {
					miss *= 1 - c*prev[j]
				}
			}
			r[i] = 1 - miss
		}
	}
	a.rCache[lookahead] = r
	return r
}

// sweepFrom runs one single-frame EPP sweep from source and splits the
// outcome into the PO-detection probability and per-FF capture
// probabilities.
func (a *Analyzer) sweepFrom(source netlist.ID) *frameSweep {
	res := a.epp.EPP(source)
	return a.profileFromResult(&res)
}

// profileFromResult converts one EPP Result (scalar or batched) into the
// PO-detection probability and per-FF capture probabilities.
func (a *Analyzer) profileFromResult(res *core.Result) *frameSweep {
	fs := &frameSweep{cap: make([]float64, a.nFFs)}
	missPO := 1.0
	for _, o := range res.Outputs {
		perr := o.State.PErr()
		node := a.c.Node(o.Output)
		if node.IsPO {
			missPO *= 1 - perr
		}
		// The same net may also feed one or more flip-flops.
		for _, fo := range node.Fanout {
			if a.c.Node(fo).Kind == logic.DFF && a.c.Node(fo).Fanin[0] == o.Output {
				fs.cap[a.ffIndex[fo]] = perr
			}
		}
	}
	fs.pPO = 1 - missPO
	return fs
}

// ffProfile memoizes the single-frame sweep from flip-flop index i.
func (a *Analyzer) ffProfile(i int) *frameSweep {
	if a.ffSweep[i] == nil {
		a.ffSweep[i] = a.sweepFrom(a.ffIDs[i])
	}
	return a.ffSweep[i]
}

// ensureFFProfiles computes every flip-flop's single-frame profile through
// the EPP analyzer's batched engine, a batch of sources per union-cone
// sweep. The R iteration (rVector) needs all of them anyway, so batching
// here amortizes cone extraction across flip-flops exactly as the
// all-sites analysis does across error sites.
func (a *Analyzer) ensureFFProfiles() {
	if a.nFFs == 0 {
		return
	}
	missing := 0
	for i := range a.ffSweep {
		if a.ffSweep[i] == nil {
			missing++
		}
	}
	if missing == 0 {
		return
	}
	eng := a.epp.Batch()
	sites := make([]netlist.ID, 0, eng.Width())
	idx := make([]int, 0, eng.Width())
	results := make([]core.Result, eng.Width())
	flush := func() {
		if len(sites) == 0 {
			return
		}
		eng.EPPBatch(sites, results[:len(sites)])
		for j := range sites {
			a.ffSweep[idx[j]] = a.profileFromResult(&results[j])
		}
		sites = sites[:0]
		idx = idx[:0]
	}
	for i := 0; i < a.nFFs; i++ {
		if a.ffSweep[i] != nil {
			continue
		}
		sites = append(sites, a.ffIDs[i])
		idx = append(idx, i)
		if len(sites) == eng.Width() {
			flush()
		}
	}
	flush()
}

// PDetect returns the probability that an SEU at site is observed at a
// primary output within frames clock cycles; frames = 1 is the strike cycle
// only. frames must be >= 1.
func (a *Analyzer) PDetect(site netlist.ID, frames int) float64 {
	return a.PDetectWeighted(site, frames, 1)
}

// PDetectWeighted is PDetect with the strike frame's primary-output
// detection term scaled by strikeWeight — the latch-window coupling of the
// multi-cycle composition (pass latch.Model.FrameWeight(0)). The model:
// a detection event in frame k is captured by the observing register with
// probability w(k), independent across frames; w(0) = strikeWeight (the
// transient races the window) and w(k >= 1) = 1 (re-launched flip-flop
// values are full-cycle levels), so only the strike term is derated —
// flip-flop captures themselves carry the error deterministically and the
// lookahead recursion is unchanged. strikeWeight must lie in [0, 1];
// PDetectWeighted(site, frames, 1) == PDetect(site, frames) exactly.
func (a *Analyzer) PDetectWeighted(site netlist.ID, frames int, strikeWeight float64) float64 {
	if frames < 1 {
		panic(fmt.Sprintf("seq: PDetectWeighted with frames = %d", frames))
	}
	checkStrikeWeight(strikeWeight)
	strike := a.sweepFrom(site)
	if frames == 1 {
		return strikeWeight * strike.pPO
	}
	return a.compose(strike, a.rVector(frames-1), strikeWeight)
}

// checkStrikeWeight rejects out-of-range strike weights: a weight outside
// [0, 1] is a programming error (latch.Model.FrameWeight clamps), not a
// runtime condition.
func checkStrikeWeight(w float64) {
	if !(w >= 0 && w <= 1) { // also catches NaN
		panic(fmt.Sprintf("seq: strike weight %v outside [0,1]", w))
	}
}

// compose combines a strike-frame profile with the per-FF lookahead vector,
// the strike term derated by w0 (1 = the unweighted composition).
func (a *Analyzer) compose(strike *frameSweep, r []float64, w0 float64) float64 {
	miss := 1 - w0*strike.pPO
	for j, c := range strike.cap {
		if c > 0 {
			miss *= 1 - c*r[j]
		}
	}
	return 1 - miss
}

// BatchWidth returns the lane count of the analyzer's batched strike-sweep
// engine — the natural chunk size for PDetectBatch.
func (a *Analyzer) BatchWidth() int { return a.epp.Batch().Width() }

// Schedule returns the underlying cone-locality site schedule, so all-sites
// callers can pack PDetectBatch chunks the way the single-cycle sweeps do.
func (a *Analyzer) Schedule() *sched.Schedule { return a.epp.Schedule() }

// PDetectBatch computes PDetect(sites[i], frames) into out[i] for one batch
// of at most BatchWidth sites: one batched union-cone strike sweep serves
// the whole batch, and the per-FF lookahead vector is memoized across
// calls. Results are bit-identical under any batch composition (the strike
// sweeps are packing-invariant and the composition is per-site arithmetic),
// which is what lets all-sites callers distribute batches over workers.
// len(out) must equal len(sites).
func (a *Analyzer) PDetectBatch(sites []netlist.ID, frames int, out []float64) {
	a.PDetectBatchWeighted(sites, frames, 1, out)
}

// PDetectBatchWeighted is PDetectBatch with the strike-frame detection term
// scaled by strikeWeight (see PDetectWeighted for the model). The weighting
// is per-site arithmetic applied after the packing-invariant strike sweeps,
// so the batch-composition and worker-distribution guarantees of
// PDetectBatch hold unchanged at every weight.
func (a *Analyzer) PDetectBatchWeighted(sites []netlist.ID, frames int, strikeWeight float64, out []float64) {
	if frames < 1 {
		panic(fmt.Sprintf("seq: PDetectBatchWeighted with frames = %d", frames))
	}
	checkStrikeWeight(strikeWeight)
	if len(sites) != len(out) {
		panic(fmt.Sprintf("seq: PDetectBatchWeighted with %d sites and %d outputs", len(sites), len(out)))
	}
	var r []float64
	if frames > 1 {
		r = a.rVector(frames - 1)
	}
	eng := a.epp.Batch()
	if cap(a.batchScratch) < eng.Width() {
		a.batchScratch = make([]core.Result, eng.Width())
	}
	for lo := 0; lo < len(sites); lo += eng.Width() {
		hi := lo + eng.Width()
		if hi > len(sites) {
			hi = len(sites)
		}
		results := a.batchScratch[:hi-lo]
		eng.EPPBatch(sites[lo:hi], results)
		for i := range results {
			strike := a.profileFromResult(&results[i])
			if frames == 1 {
				out[lo+i] = strikeWeight * strike.pPO
			} else {
				out[lo+i] = a.compose(strike, r, strikeWeight)
			}
		}
	}
}

// PDetectAll returns PDetect(site, frames) for every node of the circuit in
// one batched pass: the strike-frame sweeps run on the batched EPP engine
// (as the all-sites single-cycle analysis does) and the per-FF lookahead
// vector is computed once and shared across sites.
func (a *Analyzer) PDetectAll(frames int) []float64 {
	out := make([]float64, a.c.N())
	if err := a.PDetectAllInto(context.Background(), frames, out, false, nil); err != nil {
		panic("seq: " + err.Error()) // unreachable: the background ctx never cancels
	}
	return out
}

// PDetectAllInto is the context-aware form of PDetectAll: it writes
// PDetect(id, frames) to out[id] for every node, checks ctx between batches
// (returning ctx.Err() promptly with out partially filled), and — when
// onBatch is non-nil — invokes it after each batch finalizes; a non-nil
// return aborts the sweep and is returned verbatim. ordered pins the sweep
// to ascending node IDs so every onBatch range [lo, hi) is a final
// out[lo:hi] node-ID range (the streaming contract); without it batches are
// packed from the cone-locality schedule — bit-identical results, onBatch
// ranges then index sweep positions and only their hi−lo counts are
// meaningful. len(out) must equal the circuit's node count.
func (a *Analyzer) PDetectAllInto(ctx context.Context, frames int, out []float64, ordered bool, onBatch func(lo, hi int) error) error {
	if frames < 1 {
		panic(fmt.Sprintf("seq: PDetectAllInto with frames = %d", frames))
	}
	n := a.c.N()
	if len(out) != n {
		return fmt.Errorf("seq: output slice has %d entries for %d nodes", len(out), n)
	}
	if frames > 1 {
		// Warm the lookahead memo before the sweep so cancellation is
		// checked ahead of the one-off R iteration.
		if err := ctx.Err(); err != nil {
			return err
		}
		a.rVector(frames - 1)
	}
	w := a.BatchWidth()
	// Unless ordered emission is required, pack batches from the
	// cone-locality schedule like the single-cycle AllSites sweeps; the
	// batched kernel is packing-invariant and per-lane Outputs are emitted
	// in canonical ID order, so the composed results are bit-identical
	// either way.
	var order []netlist.ID
	if !ordered {
		order = a.Schedule().Order
	}
	sites := make([]netlist.ID, 0, w)
	tmp := make([]float64, w)
	for lo := 0; lo < n; lo += w {
		if err := ctx.Err(); err != nil {
			return err
		}
		hi := lo + w
		if hi > n {
			hi = n
		}
		batch := order
		if batch != nil {
			batch = order[lo:hi]
		} else {
			sites = sites[:0]
			for id := lo; id < hi; id++ {
				sites = append(sites, netlist.ID(id))
			}
			batch = sites
		}
		a.PDetectBatch(batch, frames, tmp[:hi-lo])
		for i, site := range batch {
			out[site] = tmp[i]
		}
		if onBatch != nil {
			if err := onBatch(lo, hi); err != nil {
				return err
			}
		}
	}
	return nil
}

// PDetectCurve returns PDetect(site, k) for k = 1..frames in one pass, useful
// for plotting detection-latency curves.
func (a *Analyzer) PDetectCurve(site netlist.ID, frames int) []float64 {
	if frames < 1 {
		panic(fmt.Sprintf("seq: PDetectCurve with frames = %d", frames))
	}
	out := make([]float64, frames)
	strike := a.sweepFrom(site)
	out[0] = strike.pPO
	for k := 2; k <= frames; k++ {
		out[k-1] = a.compose(strike, a.rVector(k-1), 1)
	}
	return out
}
