// Package linttest runs a serlint analyzer over a testdata fixture
// directory and checks its diagnostics against `// want "regexp"`
// expectations embedded in the fixture source — the same contract as
// golang.org/x/tools' analysistest, rebuilt on the stdlib-only loader so
// the suite needs no module downloads.
//
// A want comment asserts one or more diagnostics on its own line:
//
//	for k := range m { // want `range over map`
//	x := time.Now()    // want "time.Now" "second diagnostic on this line"
//
// Each quoted string is an anchored-nowhere regexp matched against the
// diagnostic message. Every diagnostic must be claimed by a want on its
// line and every want must be claimed by a diagnostic; leftovers on
// either side fail the test.
package linttest

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// expectation is one parsed want pattern, keyed to a fixture line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	used bool
}

// Run analyzes the fixture package in dir (all non-test .go files) with a
// and compares diagnostics to the fixtures' want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	diags, fset, files := analyze(t, a, dir)

	wants := parseWants(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !claim(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(w.file), w.line, w.raw)
		}
	}
}

// Diagnostics runs a over the fixture package in dir and returns the raw
// diagnostics, for tests that assert on them directly.
func Diagnostics(t *testing.T, a *analysis.Analyzer, dir string) ([]analysis.Diagnostic, *token.FileSet) {
	t.Helper()
	diags, fset, _ := analyze(t, a, dir)
	return diags, fset
}

// analyze parses and type-checks the fixture directory and runs the
// analyzer. Any load or type error is fatal: fixtures are meant to be
// real, compilable Go.
func analyze(t *testing.T, a *analysis.Analyzer, dir string) ([]analysis.Diagnostic, *token.FileSet, []*fixtureFile) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: reading fixture dir: %v", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("linttest: no fixture files in %s", dir)
	}

	fset := token.NewFileSet()
	files, err := loader.ParseFiles(fset, names)
	if err != nil {
		t.Fatalf("linttest: parsing fixtures: %v", err)
	}

	var imports []string
	seen := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			seen[path] = true
			imports = append(imports, path)
		}
	}
	sort.Strings(imports)
	exports, err := loader.Exports(imports)
	if err != nil {
		t.Fatalf("linttest: resolving export data: %v", err)
	}
	pkg, info, err := loader.Check(fset, files, "fixture", nil, loader.FileLookup(exports), "")
	if err != nil {
		t.Fatalf("linttest: type-checking fixtures: %v", err)
	}

	pass := &analysis.Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
	if err := a.Run(pass); err != nil {
		t.Fatalf("linttest: running %s: %v", a.Name, err)
	}
	var ff []*fixtureFile
	for i, f := range files {
		ff = append(ff, &fixtureFile{name: names[i], file: f})
	}
	return pass.Diagnostics(), fset, ff
}

type fixtureFile struct {
	name string
	file *ast.File
}

// claim marks the first unused expectation at file:line whose pattern
// matches msg, reporting whether one was found.
func claim(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.used && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.used = true
			return true
		}
	}
	return false
}

// wantRE extracts the quoted patterns of a want comment: each is either a
// Go-quoted string or a backquoted raw string.
var wantRE = regexp.MustCompile("(\"(?:[^\"\\\\]|\\\\.)*\")|(`[^`]*`)")

// parseWants collects every want comment in the fixture files.
func parseWants(t *testing.T, fset *token.FileSet, files []*fixtureFile) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, ff := range files {
		for _, cg := range ff.file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				body := strings.TrimPrefix(text, "want ")
				matches := wantRE.FindAllString(body, -1)
				if len(matches) == 0 {
					t.Fatalf("%s:%d: want comment with no quoted pattern", filepath.Base(pos.Filename), pos.Line)
				}
				for _, m := range matches {
					pat, err := unquotePattern(m)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", filepath.Base(pos.Filename), pos.Line, m, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: want pattern %s: %v", filepath.Base(pos.Filename), pos.Line, m, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	return wants
}

func unquotePattern(s string) (string, error) {
	if strings.HasPrefix(s, "`") {
		if len(s) < 2 || !strings.HasSuffix(s, "`") {
			return "", fmt.Errorf("unterminated raw string")
		}
		return s[1 : len(s)-1], nil
	}
	return strconv.Unquote(s)
}
