// Package deferunlock flags mu.Lock() calls that are not immediately
// followed by defer mu.Unlock() in sweep-driver and recovery paths. PR 6's
// panic isolation contract — a panicking worker or user callback is
// recovered into a structured error without deadlocking the sweep — holds
// only when the unlock is deferred before any code that can panic runs;
// a manual unlock after the critical section keeps the lock held exactly
// when recovery needs it released.
//
// Short manual critical sections that are provably panic-free (plain field
// reads under a hot mutex) are suppressed in place with
// //serlint:allow deferunlock <reason>, which keeps every such exception
// auditable in lint-report.json.
package deferunlock

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the deferunlock check.
var Analyzer = &analysis.Analyzer{
	Name: "deferunlock",
	Doc:  "flags sync lock acquisitions not immediately followed by the matching defer unlock",
	Run:  run,
}

var unlockFor = map[string]string{
	"Lock":  "Unlock",
	"RLock": "RUnlock",
}

func run(pass *analysis.Pass) error {
	analysis.WalkStack(pass.Files, func(n ast.Node, _ []ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			recv, lockName, ok := syncLockCall(pass.TypesInfo, stmt)
			if !ok {
				continue
			}
			want := unlockFor[lockName]
			if i+1 < len(block.List) {
				if d, ok := block.List[i+1].(*ast.DeferStmt); ok {
					if r, name, ok := syncUnlockExpr(pass.TypesInfo, d.Call); ok &&
						name == want && types.ExprString(r) == types.ExprString(recv) {
						continue
					}
				}
			}
			pass.Reportf(stmt.Pos(), "%s.%s() is not immediately followed by defer %s.%s(); panic recovery depends on the deferred unlock (or //serlint:allow deferunlock <reason>)",
				types.ExprString(recv), lockName, types.ExprString(recv), want)
		}
		return true
	})
	return nil
}

// syncLockCall matches a statement of the form `recv.Lock()` or
// `recv.RLock()` where the method comes from package sync (directly, via
// embedding, or through the sync.Locker interface).
func syncLockCall(info *types.Info, stmt ast.Stmt) (recv ast.Expr, name string, ok bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return nil, "", false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil, "", false
	}
	return syncMethod(info, call, unlockFor)
}

func syncUnlockExpr(info *types.Info, call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	return syncMethod(info, call, map[string]string{"Unlock": "", "RUnlock": ""})
}

func syncMethod(info *types.Info, call *ast.CallExpr, names map[string]string) (ast.Expr, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	if _, named := names[sel.Sel.Name]; !named {
		return nil, "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}
