// Fixture for the deferunlock analyzer: Lock without an immediate
// deferred Unlock.
package fixture

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func positiveManualUnlock(c *counter) {
	c.mu.Lock() // want `c\.mu\.Lock\(\) is not immediately followed by defer c\.mu\.Unlock\(\)`
	c.n++
	c.mu.Unlock()
}

func positiveGapBeforeDefer(c *counter) {
	c.mu.Lock() // want `c\.mu\.Lock\(\) is not immediately followed by defer c\.mu\.Unlock\(\)`
	c.n++
	defer c.mu.Unlock()
}

func positiveWrongReceiver(c, d *counter) {
	c.mu.Lock() // want `c\.mu\.Lock\(\) is not immediately followed by defer c\.mu\.Unlock\(\)`
	defer d.mu.Unlock()
	c.n++
}

func negativeDeferred(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

type table struct {
	mu sync.RWMutex
	m  map[string]int
}

func positiveReadLock(t *table, k string) int {
	t.mu.RLock() // want `t\.mu\.RLock\(\) is not immediately followed by defer t\.mu\.RUnlock\(\)`
	v := t.m[k]
	t.mu.RUnlock()
	return v
}

func negativeReadLock(t *table, k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

// negativeLocker exercises an embedded mutex: the methods still resolve to
// package sync, and the deferred form passes.
type embedded struct {
	sync.Mutex
	n int
}

func negativeEmbedded(e *embedded) {
	e.Lock()
	defer e.Unlock()
	e.n++
}

func positiveEmbedded(e *embedded) {
	e.Lock() // want `e\.Lock\(\) is not immediately followed by defer e\.Unlock\(\)`
	e.n++
	e.Unlock()
}

// negativeNotSync is a lookalike type outside package sync; its Lock is
// none of our business.
type fakeLock struct{ held bool }

func (f *fakeLock) Lock()   { f.held = true }
func (f *fakeLock) Unlock() { f.held = false }

func negativeFake(f *fakeLock) {
	f.Lock()
	f.held = true
	f.Unlock()
}
