package deferunlock_test

import (
	"testing"

	"repro/internal/lint/deferunlock"
	"repro/internal/lint/linttest"
)

func TestDeferunlock(t *testing.T) {
	linttest.Run(t, deferunlock.Analyzer, "testdata")
}
