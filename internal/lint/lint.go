// Package lint assembles serlint, the repo's determinism-contract checker:
// six analyzers over the mini framework in internal/lint/analysis, the
// //serlint:allow suppression directive, and the package-scope table that
// says where each analyzer is load-bearing.
//
// # The determinism contract
//
// Every acceptance property this reproduction advertises — byte-identical
// resumed Reports, bit-identical distributed folds, worker-count-invariant
// sweeps, seed-pinned Monte Carlo streams — reduces to a small set of
// coding invariants. serlint enforces them mechanically at `go vet` time:
//
//   - detrange: no result may depend on map iteration order. Result-producing
//     packages iterate sorted keys (or demonstrably collect-then-sort).
//   - detsource: kernels and fingerprint-relevant code take no entropy from
//     the environment — no time.Now/Since/Until, no global math/rand; all
//     randomness flows from an explicitly seeded, plumbed *rand.Rand.
//   - deferunlock: in sweep-driver and recovery paths, mu.Lock() is
//     immediately followed by defer mu.Unlock(), the ordering that keeps a
//     panicking user callback from deadlocking the sweep (PR 6).
//   - atomiconly: a field accessed through sync/atomic anywhere is accessed
//     through sync/atomic everywhere — the lock-free cursor pattern tolerates
//     no mixed plain loads.
//   - ctxflow: internal code with a caller context in scope does not mint
//     context.Background()/TODO(), and exported funcs that accept a ctx use
//     it — dropped contexts break cancellation and deadline propagation.
//   - bitfloat: float64 results crossing a checkpoint or wire boundary
//     travel as IEEE-754 bit patterns (math.Float64bits as uint64), the
//     PR 6/7 convention that makes folds bit-exact by construction.
//
// # Suppressions
//
// A finding that is intentional is silenced in place with
//
//	//serlint:allow <analyzer> <reason>
//
// on the finding's line, the line above it, or in the doc comment of the
// enclosing top-level declaration (which covers the whole declaration).
// The reason is mandatory — a directive without one is itself a finding
// that cannot be suppressed — so every escape hatch stays auditable:
// `serlint -report lint-report.json ./...` dumps all directives in force.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/atomiconly"
	"repro/internal/lint/bitfloat"
	"repro/internal/lint/ctxflow"
	"repro/internal/lint/deferunlock"
	"repro/internal/lint/detrange"
	"repro/internal/lint/detsource"
)

// Analyzers returns the full serlint suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomiconly.Analyzer,
		bitfloat.Analyzer,
		ctxflow.Analyzer,
		deferunlock.Analyzer,
		detrange.Analyzer,
		detsource.Analyzer,
	}
}

// Names returns the set of valid analyzer names for directive validation.
func Names() map[string]bool {
	names := make(map[string]bool)
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// scopes maps each analyzer to the module-relative package paths where it
// is enforced. The sentinel "..." means every package of the module. The
// table is deliberately explicit rather than pattern-based: adding a new
// result-producing package to the repo should force a conscious decision
// here.
var scopes = map[string][]string{
	// Packages whose outputs are folded into Reports, checkpoints, or wire
	// frames: map-order leakage there breaks byte-identity.
	detrangeName: {
		"internal/core", "internal/simulate", "internal/engine",
		"internal/seq", "internal/serd", "internal/resume", "internal/sched",
		"internal/eco",
	},
	// Kernel and fingerprint-relevant packages: results must be a pure
	// function of (circuit, options, seed). serd/table2 are deliberately
	// out of scope — wall-clock there is operational (latency, cadence,
	// breaker probes), and their result paths are guarded by detrange,
	// bitfloat, and the coordinator's placement-only fold.
	detsourceName: {
		"internal/core", "internal/simulate", "internal/engine",
		"internal/seq", "internal/logic", "internal/latch",
		"internal/sigprob", "internal/exact", "internal/bdd",
		"internal/bddsp", "internal/sched", "internal/netlist",
		"internal/graph", "internal/faults", "internal/ser",
		"internal/gen", "internal/harden", "internal/resume",
		"internal/eco",
	},
	// Sweep drivers and recovery paths where PR 6's panic isolation
	// depends on defer-unlock ordering.
	deferunlockName: {
		"internal/engine", "internal/simulate", "internal/serd",
		"internal/resume", "internal/circuitio", "internal/faultinject",
		"internal/chaos",
	},
	atomiconlyName: {"..."},
	ctxflowName:    {"..."},
	// Checkpoint and wire serialization paths standardized on IEEE-754
	// bit patterns in PR 6/7.
	bitfloatName: {"internal/resume", "internal/serd", "internal/circuitio", "internal/eco"},
}

const (
	detrangeName    = "detrange"
	detsourceName   = "detsource"
	deferunlockName = "deferunlock"
	atomiconlyName  = "atomiconly"
	ctxflowName     = "ctxflow"
	bitfloatName    = "bitfloat"
)

// Run executes every in-scope analyzer over one type-checked package and
// returns the surviving diagnostics: suppression directives applied,
// directive problems (missing reason, unknown analyzer) appended, sorted
// by position. Packages outside the module produce nothing.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, modulePath, importPath string) ([]analysis.Diagnostic, error) {
	if modulePath == "" || importPath == "" {
		return nil, nil
	}
	if importPath != modulePath && !strings.HasPrefix(importPath, modulePath+"/") {
		return nil, nil
	}
	var diags []analysis.Diagnostic
	for _, a := range Analyzers() {
		if !InScope(a.Name, modulePath, importPath) {
			continue
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, importPath, err)
		}
		diags = append(diags, pass.Diagnostics()...)
	}
	kept, _ := Filter(fset, files, diags, Names())
	return kept, nil
}

// InScope reports whether the analyzer runs over the package with the
// given import path in the module modulePath. Packages outside the module
// (stdlib, other modules) are never in scope.
func InScope(analyzer, modulePath, importPath string) bool {
	if modulePath == "" || importPath == "" {
		return false
	}
	var rel string
	switch {
	case importPath == modulePath:
		rel = "."
	case strings.HasPrefix(importPath, modulePath+"/"):
		rel = importPath[len(modulePath)+1:]
	default:
		return false
	}
	for _, s := range scopes[analyzer] {
		if s == "..." || s == rel {
			return true
		}
	}
	return false
}
