// Suppression directives: parsing, validation, and diagnostic filtering
// for //serlint:allow. See the package doc for the directive grammar.

package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// directivePrefix is the exact comment prefix, //go:build-style (no space
// after the slashes).
const directivePrefix = "//serlint:allow"

// Suppression is one //serlint:allow directive found in source. It appears
// in lint-report.json whether or not a diagnostic currently lands on it —
// the report answers "what escape hatches are in force", not "which fired".
type Suppression struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Reason   string `json:"reason"`
}

// Directives extracts every //serlint:allow directive from the files,
// returning the well-formed suppressions plus problem diagnostics
// (missing mandatory reason, unknown analyzer name) attributed to the
// pseudo-analyzer "serlint". Problem diagnostics are not suppressible.
func Directives(fset *token.FileSet, files []*ast.File, known map[string]bool) ([]Suppression, []analysis.Diagnostic) {
	var sups []Suppression
	var problems []analysis.Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //serlint:allowed — not our directive
				}
				name, reason, ok := splitDirective(rest)
				pos := fset.Position(c.Pos())
				switch {
				case !ok:
					problems = append(problems, analysis.Diagnostic{
						Analyzer: "serlint",
						Pos:      c.Pos(),
						Message:  "malformed //serlint:allow directive: want //serlint:allow <analyzer> <reason>",
					})
				case !known[name]:
					problems = append(problems, analysis.Diagnostic{
						Analyzer: "serlint",
						Pos:      c.Pos(),
						Message:  "//serlint:allow names unknown analyzer \"" + name + "\"",
					})
				case reason == "":
					problems = append(problems, analysis.Diagnostic{
						Analyzer: "serlint",
						Pos:      c.Pos(),
						Message:  "//serlint:allow " + name + " is missing its mandatory reason",
					})
				default:
					sups = append(sups, Suppression{
						Analyzer: name,
						File:     pos.Filename,
						Line:     pos.Line,
						Reason:   reason,
					})
				}
			}
		}
	}
	return sups, problems
}

// splitDirective parses " <analyzer> <reason...>" after the prefix.
func splitDirective(rest string) (name, reason string, ok bool) {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", false
	}
	name = fields[0]
	reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), name))
	return name, reason, true
}

// Filter drops diagnostics covered by a suppression directive and appends
// the directive-problem diagnostics. A directive covers a diagnostic from
// its named analyzer when it sits on the diagnostic's line, on the line
// immediately above it, or in the doc comment of the top-level declaration
// enclosing the diagnostic (covering the declaration's whole line range).
// The surviving diagnostics are returned sorted by position; the in-force
// suppressions are returned for reporting.
func Filter(fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic, known map[string]bool) (kept []analysis.Diagnostic, sups []Suppression) {
	sups, problems := Directives(fset, files, known)

	// covered[analyzer][file] is the set of suppressed lines.
	covered := map[string]map[string]map[int]bool{}
	add := func(analyzer, file string, lo, hi int) {
		byFile := covered[analyzer]
		if byFile == nil {
			byFile = map[string]map[int]bool{}
			covered[analyzer] = byFile
		}
		lines := byFile[file]
		if lines == nil {
			lines = map[int]bool{}
			byFile[file] = lines
		}
		for l := lo; l <= hi; l++ {
			lines[l] = true
		}
	}
	for _, s := range sups {
		add(s.Analyzer, s.File, s.Line, s.Line+1)
	}
	// Doc-comment directives cover the whole declaration.
	for _, f := range files {
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.GenDecl:
				doc = d.Doc
			case *ast.FuncDecl:
				doc = d.Doc
			}
			if doc == nil {
				continue
			}
			for _, c := range doc.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				name, reason, ok := splitDirective(strings.TrimPrefix(c.Text, directivePrefix))
				if !ok || reason == "" || !known[name] {
					continue
				}
				lo := fset.Position(decl.Pos()).Line
				hi := fset.Position(decl.End()).Line
				add(name, fset.Position(c.Pos()).Filename, lo, hi)
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if covered[d.Analyzer][pos.Filename][pos.Line] {
			continue
		}
		kept = append(kept, d)
	}
	kept = append(kept, problems...)
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Pos != kept[j].Pos {
			return kept[i].Pos < kept[j].Pos
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	sort.Slice(sups, func(i, j int) bool {
		if sups[i].File != sups[j].File {
			return sups[i].File < sups[j].File
		}
		return sups[i].Line < sups[j].Line
	})
	return kept, sups
}
