// Fixture for the ctxflow analyzer: context plumbing discipline.
package fixture

import "context"

func positiveFreshRoot(ctx context.Context) error {
	child, cancel := context.WithCancel(context.Background()) // want `context\.Background\(\) detaches this work from the caller context`
	defer cancel()
	<-child.Done()
	return ctx.Err()
}

func positiveTODO(ctx context.Context) context.Context {
	_ = ctx
	return context.TODO() // want `context\.TODO\(\) detaches this work from the caller context`
}

// positiveInClosure minted inside a func literal still detaches from the
// enclosing ctx.
func positiveInClosure(ctx context.Context) func() context.Context {
	_ = ctx.Err()
	return func() context.Context {
		return context.Background() // want `context\.Background\(\) detaches this work from the caller context`
	}
}

func PositiveDropped(ctx context.Context, n int) int { // want `exported PositiveDropped accepts ctx but never uses it`
	return n * 2
}

type Engine struct{}

func (e *Engine) PositiveMethodDropped(ctx context.Context) error { // want `exported PositiveMethodDropped accepts ctx but never uses it`
	return nil
}

func NegativeUsed(ctx context.Context) error {
	return ctx.Err()
}

func NegativeUnderscore(_ context.Context, n int) int {
	return n
}

// negativeUnexportedDrop: the drop check covers the exported API surface
// only.
func negativeUnexportedDrop(ctx context.Context, n int) int {
	return n
}

type helper struct{}

// NegativeUnexportedRecv: exported method on an unexported type is not
// API surface.
func (h helper) NegativeUnexportedRecv(ctx context.Context) int {
	return 1
}

// negativeNoCtx: without a caller ctx in scope, minting a root is the only
// option and is not flagged.
func negativeNoCtx() context.Context {
	return context.Background()
}
