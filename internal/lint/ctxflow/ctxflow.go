// Package ctxflow enforces context plumbing discipline, the invariant
// behind prompt cancellation and deadline propagation in every sweep
// path. Two findings:
//
//  1. A function that already has a caller's context.Context in scope must
//     not mint a fresh context.Background() or context.TODO() — the new
//     root silently detaches the work from the caller's cancellation and
//     deadline, the exact failure mode the word-granular cancel tests
//     exist to prevent. Deliberately detached lifetimes (a background
//     janitor spawned from a request handler) are suppressed in place
//     with //serlint:allow ctxflow <reason>.
//
//  2. An exported function or method that accepts a context must use it.
//     A dropped ctx is an API lie: callers pass deadlines that are
//     silently ignored. A parameter named _ is an explicit, visible
//     statement that the context is unused and is not flagged.
package ctxflow

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "flags context.Background()/TODO() where a caller ctx is in scope, and exported funcs that drop their ctx param",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			params := ctxParams(pass.TypesInfo, fd)
			if len(params) == 0 {
				continue
			}
			flagFreshRoots(pass, fd)
			if fd.Name.IsExported() && exportedRecv(pass.TypesInfo, fd) {
				flagDropped(pass, fd, params)
			}
		}
	}
	return nil
}

// ctxParams returns the named (non-underscore) context.Context parameters
// of fd.
func ctxParams(info *types.Info, fd *ast.FuncDecl) []*ast.Ident {
	if fd.Type.Params == nil {
		return nil
	}
	var out []*ast.Ident
	for _, field := range fd.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || !isContext(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				out = append(out, name)
			}
		}
	}
	return out
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// exportedRecv reports whether fd is a plain function or a method on an
// exported receiver type; ctx drops on unexported types are a package-
// internal affair.
func exportedRecv(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.ParenExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// flagFreshRoots reports context.Background()/TODO() calls anywhere in the
// body, including nested function literals, where the caller ctx remains
// lexically in scope.
func flagFreshRoots(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name := analysis.PkgFuncName(pass.TypesInfo, call)
		if pkg == "context" && (name == "Background" || name == "TODO") {
			pass.Reportf(call.Pos(), "context.%s() detaches this work from the caller context already in scope; thread the ctx parameter (or //serlint:allow ctxflow <reason>)", name)
		}
		return true
	})
}

// flagDropped reports named ctx params with zero uses in the body.
func flagDropped(pass *analysis.Pass, fd *ast.FuncDecl, params []*ast.Ident) {
	for _, p := range params {
		obj := pass.TypesInfo.Defs[p]
		if obj == nil {
			continue
		}
		used := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if used {
				return false
			}
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				used = true
			}
			return !used
		})
		if !used {
			pass.Reportf(p.Pos(), "exported %s accepts ctx but never uses it; callers' deadlines and cancellation are silently ignored — plumb it or rename the parameter to _", fd.Name.Name)
		}
	}
}
