package ctxflow_test

import (
	"testing"

	"repro/internal/lint/ctxflow"
	"repro/internal/lint/linttest"
)

func TestCtxflow(t *testing.T) {
	linttest.Run(t, ctxflow.Analyzer, "testdata")
}
