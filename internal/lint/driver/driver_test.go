// End-to-end tests of the serlint driver: build the real binary once,
// synthesize a throwaway module, and exercise the `go vet -vettool`
// protocol, the standalone CLI, the handshake endpoints, and report mode
// exactly as CI uses them.
package driver_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	toolPath  string
	buildErr  error
)

// serlintBin builds cmd/serlint once per test process.
func serlintBin(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "serlint-driver-test")
		if err != nil {
			buildErr = err
			return
		}
		toolPath = filepath.Join(dir, "serlint")
		cmd := exec.Command("go", "build", "-o", toolPath, "repro/cmd/serlint")
		cmd.Dir = repoRoot(t)
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = err
			t.Logf("build output: %s", out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building serlint: %v", buildErr)
	}
	return toolPath
}

// repoRoot walks up from the test's working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// writeModule materializes a module in a temp dir from path->content.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		full := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(full), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const testGoMod = "module lintit\n\ngo 1.24\n"

func runVet(t *testing.T, dir string) (string, int) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+serlintBin(t), "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("go vet: %v\n%s", err, out)
	}
	return string(out), code
}

func TestVettoolFlagsViolation(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": testGoMod,
		"internal/core/clock.go": `package core

import "time"

func Stamp() time.Time { return time.Now() }
`,
	})
	out, code := runVet(t, dir)
	if code == 0 {
		t.Fatalf("go vet passed on a detsource violation; output:\n%s", out)
	}
	if !strings.Contains(out, "time.Now reads the wall clock") || !strings.Contains(out, "serlint:detsource") {
		t.Fatalf("diagnostic missing or unattributed:\n%s", out)
	}
	if !strings.Contains(out, "clock.go:5") {
		t.Fatalf("diagnostic not anchored to file:line:\n%s", out)
	}
}

func TestVettoolCleanPackagePasses(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": testGoMod,
		"internal/core/pure.go": `package core

func Fold(vals []float64) float64 {
	total := 0.0
	for _, v := range vals {
		total += v
	}
	return total
}
`,
	})
	out, code := runVet(t, dir)
	if code != 0 {
		t.Fatalf("go vet failed on a clean package (exit %d):\n%s", code, out)
	}
}

func TestVettoolHonorsSuppression(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": testGoMod,
		"internal/core/clock.go": `package core

import "time"

func Stamp() time.Time {
	return time.Now() //serlint:allow detsource integration-test reason
}
`,
	})
	out, code := runVet(t, dir)
	if code != 0 {
		t.Fatalf("suppressed finding still failed vet (exit %d):\n%s", code, out)
	}
}

func TestVettoolScopingSkipsOutOfScopePackages(t *testing.T) {
	// detsource does not cover internal/verilog, so the same violation
	// there must pass.
	dir := writeModule(t, map[string]string{
		"go.mod": testGoMod,
		"internal/verilog/clock.go": `package verilog

import "time"

func Stamp() time.Time { return time.Now() }
`,
	})
	out, code := runVet(t, dir)
	if code != 0 {
		t.Fatalf("out-of-scope package failed vet (exit %d):\n%s", code, out)
	}
}

func TestVettoolSkipsTestFiles(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": testGoMod,
		"internal/core/pure.go": `package core

func ID(x int) int { return x }
`,
		"internal/core/pure_test.go": `package core

import (
	"testing"
	"time"
)

func TestID(t *testing.T) {
	_ = time.Now() // violations in tests are exercised on purpose
	if ID(1) != 1 {
		t.Fatal("broken")
	}
}
`,
	})
	out, code := runVet(t, dir)
	if code != 0 {
		t.Fatalf("test-file clock read failed vet (exit %d):\n%s", code, out)
	}
}

func TestHandshake(t *testing.T) {
	out, err := exec.Command(serlintBin(t), "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	fields := strings.Fields(strings.TrimSpace(string(out)))
	// cmd/go's tool-ID parser: >= 3 fields, f[1] == "version", and a devel
	// tool's last field carries the buildID.
	if len(fields) < 3 || fields[0] != "serlint" || fields[1] != "version" {
		t.Fatalf("-V=full output %q does not satisfy the go tool handshake", out)
	}
	if fields[2] == "devel" && !strings.HasPrefix(fields[len(fields)-1], "buildID=") {
		t.Fatalf("-V=full devel output %q lacks a buildID field", out)
	}

	flagsOut, err := exec.Command(serlintBin(t), "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	var flags []any
	if err := json.Unmarshal(flagsOut, &flags); err != nil || len(flags) != 0 {
		t.Fatalf("-flags output %q is not an empty JSON array", flagsOut)
	}
}

func TestStandaloneCLI(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": testGoMod,
		"internal/core/clock.go": `package core

import "time"

func Stamp() time.Time { return time.Now() }
`,
	})
	cmd := exec.Command(serlintBin(t), "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() == 0 {
		t.Fatalf("standalone serlint ./... did not fail on a violation: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "serlint:detsource") {
		t.Fatalf("standalone run missing the diagnostic:\n%s", out)
	}
}

func TestReportMode(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": testGoMod,
		"internal/core/clock.go": `package core

import "time"

func Stamp() time.Time {
	return time.Now() //serlint:allow detsource report-test reason
}
`,
	})
	outPath := filepath.Join(dir, "lint-report.json")
	cmd := exec.Command(serlintBin(t), "-report", outPath, "./...")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("serlint -report: %v\n%s", err, out)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Tool         string `json:"tool"`
		Module       string `json:"module"`
		Suppressions []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Reason   string `json:"reason"`
		} `json:"suppressions"`
		Problems []string `json:"problems"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("lint-report.json: %v\n%s", err, data)
	}
	if rep.Tool != "serlint" || rep.Module != "lintit" {
		t.Fatalf("report header = %q/%q, want serlint/lintit", rep.Tool, rep.Module)
	}
	if len(rep.Suppressions) != 1 || rep.Suppressions[0].Analyzer != "detsource" ||
		rep.Suppressions[0].Reason != "report-test reason" || rep.Suppressions[0].Line != 6 {
		t.Fatalf("suppression inventory = %+v", rep.Suppressions)
	}
	if len(rep.Problems) != 0 {
		t.Fatalf("unexpected problems: %v", rep.Problems)
	}
}

func TestReportModeFailsOnMalformedDirective(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": testGoMod,
		"internal/core/clock.go": `package core

//serlint:allow detsource
func ID(x int) int { return x }
`,
	})
	outPath := filepath.Join(dir, "lint-report.json")
	cmd := exec.Command(serlintBin(t), "-report", outPath, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("report mode must exit 1 on a reasonless directive: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "missing its mandatory reason") {
		t.Fatalf("missing-reason problem not printed:\n%s", out)
	}
}
