// Vet-unit mode: analyze one package from the JSON config cmd/go hands a
// vettool, mirroring cmd/go's internal vetConfig struct field for field.

package driver

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/loader"
)

// unitConfig mirrors cmd/go/internal/work.vetConfig, the JSON document a
// vettool receives per analyzed package.
type unitConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serlint: %v\n", err)
		return 1
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "serlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// serlint exports no facts, so the vetx output is always an empty
	// placeholder — but it must exist or cmd/go reports a tool failure.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			_ = os.WriteFile(cfg.VetxOutput, []byte("serlint\n"), 0o666)
		}
	}

	// Dependency-only runs, test-binary variants ("p [p.test]", "p.test"),
	// and packages outside every analyzer's scope need no analysis.
	if cfg.VetxOnly || strings.Contains(cfg.ID, " [") || strings.HasSuffix(cfg.ImportPath, ".test") {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	files, err := loader.ParseFiles(fset, loader.NonTest(cfg.GoFiles))
	if err != nil {
		writeVetx()
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "serlint: %v\n", err)
		return 1
	}
	if len(files) == 0 {
		writeVetx()
		return 0
	}
	pkg, info, err := loader.Check(fset, files, cfg.ImportPath, cfg.ImportMap, loader.FileLookup(cfg.PackageFile), cfg.GoVersion)
	if err != nil {
		writeVetx()
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "serlint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, runErr := lint.Run(fset, files, pkg, info, cfg.ModulePath, cfg.ImportPath)
	writeVetx()
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "serlint: %v\n", runErr)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [serlint:%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return 2
}
