// Package driver is the serlint entry point behind cmd/serlint. It speaks
// the `go vet -vettool` protocol with the standard library only:
//
//   - `serlint -V=full` and `serlint -flags` answer cmd/go's tool
//     handshake (build-ID line, JSON flag list);
//   - `serlint <unit>.cfg` analyzes one vet unit: the JSON config cmd/go
//     writes per package, with imports type-checked from the export data
//     files listed in it (the same contract x/tools' unitchecker
//     implements);
//   - `serlint ./...` re-executes itself through `go vet -vettool` so the
//     standalone CLI and the vet integration share one code path and one
//     build cache;
//   - `serlint -report lint-report.json ./...` scans //serlint:allow
//     directives and writes the auditable suppression inventory.
package driver

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
)

// Main runs serlint with the given command-line arguments (excluding the
// program name) and returns the process exit code.
func Main(args []string) int {
	var reportPath string
	var rest []string
	for i := 0; i < len(args); i++ {
		arg := args[i]
		switch {
		case arg == "-V=full" || arg == "--V=full":
			return printVersion()
		case arg == "-flags" || arg == "--flags":
			// cmd/go queries the tool's analyzer flags; serlint has none.
			fmt.Println("[]")
			return 0
		case arg == "-report" || arg == "--report":
			if i+1 >= len(args) {
				fmt.Fprintln(os.Stderr, "serlint: -report requires a file argument")
				return 2
			}
			reportPath = args[i+1]
			i++
		case strings.HasPrefix(arg, "-report="):
			reportPath = strings.TrimPrefix(arg, "-report=")
		case arg == "-h" || arg == "-help" || arg == "--help":
			usage()
			return 0
		default:
			rest = append(rest, arg)
		}
	}

	if reportPath != "" {
		return runReport(reportPath, rest)
	}
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runUnit(rest[0])
	}
	if len(rest) == 0 {
		usage()
		return 2
	}
	return runVet(rest)
}

func usage() {
	fmt.Fprint(os.Stderr, `serlint enforces the repo's determinism contract (see internal/lint).

usage:
  serlint ./...                      vet packages (wraps go vet -vettool)
  serlint -report lint.json ./...    write the //serlint:allow inventory
  go vet -vettool=$(which serlint) ./...
`)
}

// printVersion answers cmd/go's -V=full handshake. The buildID hash makes
// vet's result cache invalidate whenever the serlint binary changes.
func printVersion() int {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("serlint version devel comments-go-here buildID=%x\n", h.Sum(nil))
	return 0
}

// runVet re-executes serlint as a vettool under go vet, which handles
// package loading, export data, and per-package caching.
func runVet(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "serlint: cannot locate own executable: %v\n", err)
		return 2
	}
	args := append([]string{"vet", "-vettool=" + exe}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "serlint: go vet: %v\n", err)
		return 2
	}
	return 0
}
