// Report mode: inventory every //serlint:allow directive in the matched
// packages and write it as JSON. CI uploads the result (lint-report.json)
// so the set of escape hatches in force is a reviewable artifact of every
// build, not something to grep for.

package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"repro/internal/lint"
	"repro/internal/lint/loader"
)

// report is the lint-report.json document.
type report struct {
	Tool         string             `json:"tool"`
	Module       string             `json:"module"`
	Suppressions []lint.Suppression `json:"suppressions"`
	// Problems lists malformed directives (missing reason, unknown
	// analyzer). A non-empty list fails the run: broken escape hatches
	// must not pass silently.
	Problems []string `json:"problems,omitempty"`
}

// reportPackage is the `go list -json` subset report mode needs.
type reportPackage struct {
	Dir          string
	ImportPath   string
	Module       *struct{ Path string }
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

func runReport(outPath string, patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json=Dir,ImportPath,Module,GoFiles,TestGoFiles,XTestGoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "serlint: go list: %v\n%s", err, stderr.String())
		return 2
	}

	rep := report{Tool: "serlint", Suppressions: []lint.Suppression{}}
	known := lint.Names()
	cwd, _ := os.Getwd()
	fset := token.NewFileSet()
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p reportPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			fmt.Fprintf(os.Stderr, "serlint: decoding go list output: %v\n", err)
			return 2
		}
		if rep.Module == "" && p.Module != nil {
			rep.Module = p.Module.Path
		}
		var names []string
		for _, group := range [][]string{p.GoFiles, p.TestGoFiles, p.XTestGoFiles} {
			for _, f := range group {
				names = append(names, filepath.Join(p.Dir, f))
			}
		}
		files, err := loader.ParseFiles(fset, names)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serlint: %v\n", err)
			return 2
		}
		sups, problems := lint.Directives(fset, files, known)
		for i := range sups {
			if rel, err := filepath.Rel(cwd, sups[i].File); err == nil && !filepath.IsAbs(rel) {
				sups[i].File = rel
			}
		}
		rep.Suppressions = append(rep.Suppressions, sups...)
		for _, d := range problems {
			rep.Problems = append(rep.Problems, fmt.Sprintf("%s: %s", fset.Position(d.Pos), d.Message))
		}
	}

	sort.Slice(rep.Suppressions, func(i, j int) bool {
		a, b := rep.Suppressions[i], rep.Suppressions[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	sort.Strings(rep.Problems)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "serlint: %v\n", err)
		return 2
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "serlint: %v\n", err)
		return 2
	}
	fmt.Printf("serlint: %d suppressions in force, %d problems -> %s\n", len(rep.Suppressions), len(rep.Problems), outPath)
	if len(rep.Problems) > 0 {
		for _, p := range rep.Problems {
			fmt.Fprintln(os.Stderr, p)
		}
		return 1
	}
	return 0
}
