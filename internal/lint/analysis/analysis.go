// Package analysis is a self-contained, dependency-free miniature of the
// golang.org/x/tools/go/analysis API: an Analyzer wraps a Run function over
// a type-checked package (a Pass) and reports position-anchored
// Diagnostics. The module vendors no third-party code, so serlint's
// analyzers build against this package instead of x/tools; the surface is
// deliberately API-shaped like the original (Analyzer.Name/Doc/Run,
// Pass.Fset/Files/Pkg/TypesInfo/Reportf) so the analyzers could be ported
// to the real framework by swapping one import.
//
// Facts (cross-package state) are intentionally unsupported: every serlint
// analyzer is package-local, which keeps the `go vet -vettool` protocol
// implementation in internal/lint/driver down to "type-check one unit,
// run the analyzers, print".
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static check. Name doubles as the identifier accepted by
// //serlint:allow suppression directives.
type Analyzer struct {
	Name string // short lower-case identifier, e.g. "detrange"
	Doc  string // one-paragraph contract statement shown by serlint -help
	Run  func(*Pass) error
}

// Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // parsed with comments
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings recorded so far, in report order.
func (p *Pass) Diagnostics() []Diagnostic { return p.diags }

// NewInfo returns a types.Info with every map the analyzers consult
// allocated. Drivers type-check with this so no analyzer ever finds a nil
// map where it expected resolution results.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// WalkStack traverses every file preorder, passing each node together with
// the stack of its ancestors (outermost first, not including the node
// itself). Returning false skips the node's children.
func WalkStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			descend := fn(n, stack)
			if descend {
				stack = append(stack, n)
			}
			return descend
		})
	}
}

// FuncOf resolves the called function object of a call expression, looking
// through parenthesization. It returns nil when the callee is not a named
// function or method (e.g. a conversion, a func-typed variable, or a
// builtin).
func FuncOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// IsPkgFunc reports whether call invokes the package-level function
// pkgPath.name (methods never match).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := FuncOf(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// PkgFuncName returns (pkgPath, funcName) for a call to a package-level
// function, or ("", "") for methods and everything else.
func PkgFuncName(info *types.Info, call *ast.CallExpr) (string, string) {
	fn := FuncOf(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}
