// Fixture for the detsource analyzer: wall-clock and global-rand entropy.
package fixture

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func positiveNow() time.Time {
	return time.Now() // want `time\.Now reads the wall clock in a determinism-critical package`
}

func positiveSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since reads the wall clock in a determinism-critical package`
}

func positiveUntil(t0 time.Time) time.Duration {
	return time.Until(t0) // want `time\.Until reads the wall clock in a determinism-critical package`
}

func positiveGlobalRand() int {
	return rand.Int() // want `rand\.Int draws from the process-global random source`
}

func positiveGlobalShuffle(s []int) {
	rand.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] }) // want `rand\.Shuffle draws from the process-global random source`
}

func positiveGlobalV2() int {
	return randv2.IntN(10) // want `rand/v2\.IntN draws from the process-global random source`
}

// negativeSeeded builds an explicit source — the sanctioned pattern.
func negativeSeeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// negativeSeededV2 builds an explicit v2 source.
func negativeSeededV2(seed uint64) float64 {
	r := randv2.New(randv2.NewPCG(seed, seed))
	return r.Float64()
}

// negativeMethods draws from a plumbed *rand.Rand; methods never match.
func negativeMethods(r *rand.Rand) int {
	return r.Intn(7)
}

// negativeClockFree uses time values without reading the clock.
func negativeClockFree(d time.Duration) time.Duration {
	return 2*d + time.Millisecond
}
