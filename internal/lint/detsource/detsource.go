// Package detsource flags environmental entropy in kernel and
// fingerprint-relevant packages: wall-clock reads (time.Now, time.Since,
// time.Until) and the process-global math/rand and math/rand/v2 sources
// (rand.Int, rand.Float64, rand.Shuffle, ...). A kernel's output must be a
// pure function of (circuit, options, seed) — seed-pinned golden tests,
// checkpoint fingerprints, and the distributed fold all depend on it — so
// all randomness has to flow from an explicitly seeded *rand.Rand plumbed
// through options, and all timing belongs to the callers that own
// scheduling.
//
// Constructing seeded sources stays legal: rand.New, rand.NewSource,
// rand.NewPCG, rand.NewChaCha8, and rand.NewZipf are not flagged, and
// methods on a *rand.Rand value are always fine.
package detsource

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// Analyzer is the detsource check.
var Analyzer = &analysis.Analyzer{
	Name: "detsource",
	Doc:  "flags wall-clock and unseeded global math/rand use in kernel and fingerprint-relevant packages",
	Run:  run,
}

// seededConstructors are the package-level math/rand(/v2) functions that
// build explicit sources rather than drawing from the global one.
var seededConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

var clockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func run(pass *analysis.Pass) error {
	analysis.WalkStack(pass.Files, func(n ast.Node, _ []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name := analysis.PkgFuncName(pass.TypesInfo, call)
		switch pkg {
		case "time":
			if clockFuncs[name] {
				pass.Reportf(call.Pos(), "time.%s reads the wall clock in a determinism-critical package; results must be a pure function of (circuit, options, seed)", name)
			}
		case "math/rand", "math/rand/v2":
			if !seededConstructors[name] {
				pass.Reportf(call.Pos(), "%s.%s draws from the process-global random source; use an explicitly seeded *rand.Rand plumbed through options", pathBase(pkg), name)
			}
		}
		return true
	})
	return nil
}

func pathBase(pkg string) string {
	if pkg == "math/rand/v2" {
		return "rand/v2"
	}
	return "rand"
}
