package detsource_test

import (
	"testing"

	"repro/internal/lint/detsource"
	"repro/internal/lint/linttest"
)

func TestDetsource(t *testing.T) {
	linttest.Run(t, detsource.Analyzer, "testdata")
}
