// Fixture for the bitfloat analyzer: floats leaving as decimal text or
// JSON numbers on checkpoint/wire paths.
package fixture

import (
	"fmt"
	"math"
)

func positiveVerbV(v float64) string {
	return fmt.Sprintf("value %v", v) // want `float value formatted with %v by fmt\.Sprintf`
}

func positiveVerbG(v float64) string {
	return fmt.Sprintf("%g", v) // want `float value formatted with %g by fmt\.Sprintf`
}

func positiveErrorf(v float64) error {
	return fmt.Errorf("bad value %f", v) // want `float value formatted with %f by fmt\.Errorf`
}

func positivePrintFamily(v float64) string {
	return fmt.Sprint(v) // want `float value formatted as decimal text by fmt\.Sprint`
}

func positiveSlice(vals []float64) string {
	return fmt.Sprintf("%v", vals) // want `float value formatted with %v by fmt\.Sprintf`
}

func positiveNonConstFormat(f string, v float64) string {
	return fmt.Sprintf(f, v) // want `float value passed to fmt\.Sprintf with a non-constant format string`
}

// negativeBits is the convention: uint64 bit patterns.
func negativeBits(v float64) string {
	return fmt.Sprintf("bits 0x%016x", math.Float64bits(v))
}

// negativeHexFloat: %x on a float is exact hexadecimal notation.
func negativeHexFloat(v float64) string {
	return fmt.Sprintf("%x", v)
}

// negativeInt: %v on non-floats is unrelated.
func negativeInt(n int) string {
	return fmt.Sprintf("%v", n)
}

// negativeSkippedOperand: the float is consumed by %x, the int by %v.
func negativeSkippedOperand(v float64, n int) string {
	return fmt.Sprintf("%x %v", v, n)
}

// positiveWire is a float JSON number on a wire struct.
type positiveWire struct {
	Total float64 `json:"total"` // want `float field Total is serialized as a JSON number`
}

// positiveWireSlice: slices of floats are numbers too.
type positiveWireSlice struct {
	Values []float64 `json:"values"` // want `float field Values is serialized as a JSON number`
}

// negativeBitsWire carries the IEEE-754 bit pattern.
type negativeBitsWire struct {
	TotalBits uint64   `json:"total_bits"`
	Values    []uint64 `json:"values"`
}

// negativeUntagged never crosses a serialization boundary.
type negativeUntagged struct {
	scratch float64
}

// negativeExcluded is excluded from serialization.
type negativeExcluded struct {
	Scratch float64 `json:"-"`
}

// negativeStringTag serializes as a JSON string, not a number.
type negativeStringTag struct {
	Total float64 `json:"total,string"`
}
