package bitfloat_test

import (
	"testing"

	"repro/internal/lint/bitfloat"
	"repro/internal/lint/linttest"
)

func TestBitfloat(t *testing.T) {
	linttest.Run(t, bitfloat.Analyzer, "testdata")
}
