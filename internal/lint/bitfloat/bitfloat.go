// Package bitfloat guards the bit-pattern convention of PR 6/7: float64
// SER values that cross a checkpoint or wire boundary travel as IEEE-754
// bit patterns (math.Float64bits as uint64), never as formatted decimal
// text, so resumed Reports and distributed folds are bit-exact by
// construction. Two findings in checkpoint/wire packages:
//
//  1. A float-typed argument formatted through a lossy-looking fmt verb
//     (%v, %g, %e, %f, or the verb-less Print family). Decimal formatting
//     is where NaN payloads, negative zero, and shortest-round-trip
//     assumptions go to die; hex float (%x/%X) and %b are exact and not
//     flagged.
//
//  2. A struct field of float type carrying a `json:"..."` tag — a JSON
//     number on a serialization boundary. Go's encoding/json does emit
//     shortest decimals that round-trip exact float64 values, so paths
//     that rely on that documented property (the NDJSON node tiles)
//     suppress with an explicit //serlint:allow bitfloat <reason>; paths
//     feeding the coordinator's fold or the checkpoint files must use
//     uint64 bit patterns instead.
package bitfloat

import (
	"go/ast"
	"go/types"
	"reflect"
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the bitfloat check.
var Analyzer = &analysis.Analyzer{
	Name: "bitfloat",
	Doc:  "flags float64 values serialized as decimal text or JSON numbers in checkpoint/wire paths",
	Run:  run,
}

// formatCalls maps fmt function name to the index of its format-string
// argument; -1 means the verb-less Print family (every operand is %v).
var formatCalls = map[string]int{
	"Sprintf":  0,
	"Printf":   0,
	"Errorf":   0,
	"Appendf":  1,
	"Fprintf":  1,
	"Print":    -1,
	"Println":  -1,
	"Sprint":   -1,
	"Sprintln": -1,
	"Fprint":   -1,
	"Fprintln": -1,
	"Append":   -1,
	"Appendln": -1,
}

func run(pass *analysis.Pass) error {
	analysis.WalkStack(pass.Files, func(n ast.Node, _ []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkFmtCall(pass, n)
		case *ast.StructType:
			checkJSONFields(pass, n)
		}
		return true
	})
	return nil
}

func checkFmtCall(pass *analysis.Pass, call *ast.CallExpr) {
	pkg, name := analysis.PkgFuncName(pass.TypesInfo, call)
	if pkg != "fmt" {
		return
	}
	fmtIdx, ok := formatCalls[name]
	if !ok {
		return
	}
	if fmtIdx < 0 {
		for _, arg := range call.Args {
			if isFloaty(pass.TypesInfo, arg) {
				pass.Reportf(arg.Pos(), "float value formatted as decimal text by fmt.%s on a checkpoint/wire path; use math.Float64bits (or //serlint:allow bitfloat <reason>)", name)
			}
		}
		return
	}
	if fmtIdx >= len(call.Args) {
		return
	}
	lit, ok := ast.Unparen(call.Args[fmtIdx]).(*ast.BasicLit)
	operands := call.Args[fmtIdx+1:]
	if !ok {
		// Non-literal format string: be conservative about float operands.
		for _, arg := range operands {
			if isFloaty(pass.TypesInfo, arg) {
				pass.Reportf(arg.Pos(), "float value passed to fmt.%s with a non-constant format string on a checkpoint/wire path; use math.Float64bits (or //serlint:allow bitfloat <reason>)", name)
			}
		}
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	for i, verb := range verbs(format) {
		if i >= len(operands) {
			break
		}
		if strings.ContainsRune("vgGeEfF", verb) && isFloaty(pass.TypesInfo, operands[i]) {
			pass.Reportf(operands[i].Pos(), "float value formatted with %%%c by fmt.%s on a checkpoint/wire path; decimal text is not the bit-pattern convention — use math.Float64bits or %%x (or //serlint:allow bitfloat <reason>)", verb, name)
		}
	}
}

// verbs returns the operand-consuming verbs of a format string in order,
// with '*' width/precision arguments represented as verb '*'.
func verbs(format string) []rune {
	var out []rune
	rs := []rune(format)
	for i := 0; i < len(rs); i++ {
		if rs[i] != '%' {
			continue
		}
		i++
		// flags, width, precision
		for i < len(rs) {
			r := rs[i]
			if r == '*' {
				out = append(out, '*')
				i++
				continue
			}
			if strings.ContainsRune("+-# 0.123456789[]", r) {
				i++
				continue
			}
			break
		}
		if i >= len(rs) {
			break
		}
		if rs[i] != '%' {
			out = append(out, rs[i])
		}
	}
	return out
}

// isFloaty reports whether the expression's type is a float, or a
// slice/array/map-of-float that a %v would render as decimal text.
func isFloaty(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return floatUnder(tv.Type, 0)
}

func floatUnder(t types.Type, depth int) bool {
	if depth > 3 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsFloat != 0
	case *types.Slice:
		return floatUnder(u.Elem(), depth+1)
	case *types.Array:
		return floatUnder(u.Elem(), depth+1)
	case *types.Map:
		return floatUnder(u.Elem(), depth+1)
	case *types.Pointer:
		return floatUnder(u.Elem(), depth+1)
	}
	return false
}

func checkJSONFields(pass *analysis.Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if field.Tag == nil {
			continue
		}
		raw, err := strconv.Unquote(field.Tag.Value)
		if err != nil {
			continue
		}
		jsonTag, ok := reflect.StructTag(raw).Lookup("json")
		if !ok || jsonTag == "-" || strings.Contains(jsonTag, ",string") {
			continue
		}
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || !floatUnder(tv.Type, 0) {
			continue
		}
		pos := field.Pos()
		name := "(embedded)"
		if len(field.Names) > 0 {
			pos = field.Names[0].Pos()
			name = field.Names[0].Name
		}
		pass.Reportf(pos, "float field %s is serialized as a JSON number; wire/checkpoint values use IEEE-754 bit patterns (uint64 via math.Float64bits) — or //serlint:allow bitfloat <reason>", name)
	}
}
