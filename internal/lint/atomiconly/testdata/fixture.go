// Fixture for the atomiconly analyzer: mixed atomic/plain access.
package fixture

import "sync/atomic"

type sweep struct {
	cursor int64
	limit  int64
	done   int64
}

// claim establishes cursor and done as atomic variables.
func claim(s *sweep) int64 {
	atomic.AddInt64(&s.done, 1)
	return atomic.AddInt64(&s.cursor, 1) - 1
}

func positivePlainRead(s *sweep) bool {
	return s.cursor >= s.limit // want `cursor is accessed with sync/atomic elsewhere in this package`
}

func positivePlainWrite(s *sweep) {
	s.done = 0 // want `done is accessed with sync/atomic elsewhere in this package`
}

func negativeAtomicRead(s *sweep) bool {
	return atomic.LoadInt64(&s.cursor) >= s.limit
}

func negativeAtomicStore(s *sweep) {
	atomic.StoreInt64(&s.done, 0)
}

// negativeCompositeKey: initialization keys are not shared accesses.
func negativeCompositeKey() *sweep {
	return &sweep{cursor: 0, done: 0, limit: 10}
}

// negativeUnrelated: limit is never touched atomically, so plain access
// is fine.
func negativeUnrelated(s *sweep) int64 {
	return s.limit
}

// Package-level atomic counter.
var generation int64

func bumpGeneration() int64 {
	return atomic.AddInt64(&generation, 1)
}

func positiveVarRead() int64 {
	return generation // want `generation is accessed with sync/atomic elsewhere in this package`
}

func negativeVarAtomic() int64 {
	return atomic.LoadInt64(&generation)
}
