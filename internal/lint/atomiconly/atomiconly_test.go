package atomiconly_test

import (
	"testing"

	"repro/internal/lint/atomiconly"
	"repro/internal/lint/linttest"
)

func TestAtomiconly(t *testing.T) {
	linttest.Run(t, atomiconly.Analyzer, "testdata")
}
