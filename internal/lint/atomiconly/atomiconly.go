// Package atomiconly flags mixed atomic/plain access: any variable or
// struct field that is accessed through sync/atomic somewhere in the
// package must be accessed through sync/atomic everywhere in the package.
// The repo's lock-free sweep cursors (PR 1) and chunk-claim counters rely
// on this — a single plain load of an atomically-advanced cursor is a data
// race whose observed value depends on the platform's memory model, i.e.
// scheduling leaking into behavior.
//
// Composite-literal keys are exempt (initialization before the value is
// shared is not an access in the racy sense), as is the address-of
// argument inside a sync/atomic call itself. Accesses that are provably
// pre- or post-concurrency (constructors, post-Wait readbacks) are
// suppressed in place with //serlint:allow atomiconly <reason>. The check
// is package-local by design: the analyzers carry no cross-package facts,
// and every atomic field in this module is unexported.
package atomiconly

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the atomiconly check.
var Analyzer = &analysis.Analyzer{
	Name: "atomiconly",
	Doc:  "flags plain reads/writes of variables that are elsewhere accessed via sync/atomic",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Pass 1: collect objects whose address is taken inside a sync/atomic
	// call — these are the "atomic variables" of the package.
	atomicVars := map[types.Object]bool{}
	analysis.WalkStack(pass.Files, func(n ast.Node, _ []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isAtomicCall(pass.TypesInfo, call) {
			return true
		}
		for _, arg := range call.Args {
			un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || un.Op.String() != "&" {
				continue
			}
			if obj := addressedObject(pass.TypesInfo, un.X); obj != nil {
				atomicVars[obj] = true
			}
		}
		return true
	})
	if len(atomicVars) == 0 {
		return nil
	}

	// Pass 2: flag every other appearance of those objects.
	analysis.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || !atomicVars[obj] {
			return true
		}
		if insideAtomicArg(pass.TypesInfo, stack) || isCompositeKey(id, stack) {
			return true
		}
		pass.Reportf(id.Pos(), "%s is accessed with sync/atomic elsewhere in this package; plain access is a data race — use the atomic API (or //serlint:allow atomiconly <reason>)", id.Name)
		return true
	})
	return nil
}

func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	pkg, _ := analysis.PkgFuncName(info, call)
	return pkg == "sync/atomic"
}

// addressedObject resolves &expr's operand to a field or variable object.
func addressedObject(info *types.Info, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	case *ast.IndexExpr:
		return addressedObject(info, e.X)
	}
	return nil
}

// insideAtomicArg reports whether the innermost enclosing &-expression is
// an argument of a sync/atomic call.
func insideAtomicArg(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		un, ok := stack[i].(*ast.UnaryExpr)
		if !ok || un.Op.String() != "&" {
			continue
		}
		for j := i - 1; j >= 0; j-- {
			if call, ok := stack[j].(*ast.CallExpr); ok {
				return isAtomicCall(info, call)
			}
			if _, ok := stack[j].(*ast.ParenExpr); !ok {
				break
			}
		}
	}
	return false
}

// isCompositeKey reports whether id is the key of a composite-literal
// element (struct initialization, not a shared access).
func isCompositeKey(id *ast.Ident, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	kv, ok := stack[len(stack)-1].(*ast.KeyValueExpr)
	if !ok || kv.Key != ast.Expr(id) {
		return false
	}
	_, inLit := stack[len(stack)-2].(*ast.CompositeLit)
	return inLit
}
