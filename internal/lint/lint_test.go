package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	return fset, []*ast.File{f}
}

// checkSrc type-checks a one-file fixture package against the local
// toolchain's export data, then runs every analyzer unscoped and filters.
func checkSrc(t *testing.T, src string) []analysis.Diagnostic {
	t.Helper()
	fset, files := parseSrc(t, src)
	var imports []string
	for _, imp := range files[0].Imports {
		imports = append(imports, strings.Trim(imp.Path.Value, `"`))
	}
	exports, err := loader.Exports(imports)
	if err != nil {
		t.Fatalf("resolving export data: %v", err)
	}
	pkg, info, err := loader.Check(fset, files, "fixture", nil, loader.FileLookup(exports), "")
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	var diags []analysis.Diagnostic
	for _, a := range Analyzers() {
		pass := &analysis.Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
		if err := a.Run(pass); err != nil {
			t.Fatalf("analyzer %s: %v", a.Name, err)
		}
		diags = append(diags, pass.Diagnostics()...)
	}
	kept, _ := Filter(fset, files, diags, Names())
	return kept
}

func TestSuppressionSameLine(t *testing.T) {
	kept := checkSrc(t, `package fixture

import "time"

func f() time.Time {
	return time.Now() //serlint:allow detsource fixture reason
}
`)
	if len(kept) != 0 {
		t.Fatalf("same-line directive did not suppress: %v", kept)
	}
}

func TestSuppressionLineAbove(t *testing.T) {
	kept := checkSrc(t, `package fixture

import "time"

func f() time.Time {
	//serlint:allow detsource fixture reason
	return time.Now()
}
`)
	if len(kept) != 0 {
		t.Fatalf("line-above directive did not suppress: %v", kept)
	}
}

func TestSuppressionDocCommentCoversDecl(t *testing.T) {
	kept := checkSrc(t, `package fixture

import "time"

// f reads the clock twice.
//
//serlint:allow detsource fixture reason
func f() time.Duration {
	t0 := time.Now()

	return time.Since(t0)
}
`)
	if len(kept) != 0 {
		t.Fatalf("doc-comment directive did not cover the declaration: %v", kept)
	}
}

func TestSuppressionWrongAnalyzerDoesNotSuppress(t *testing.T) {
	kept := checkSrc(t, `package fixture

import "time"

func f() time.Time {
	return time.Now() //serlint:allow detrange fixture reason
}
`)
	if len(kept) != 1 || kept[0].Analyzer != "detsource" {
		t.Fatalf("directive for another analyzer must not suppress; kept = %v", kept)
	}
}

func TestSuppressionMissingReasonRejected(t *testing.T) {
	kept := checkSrc(t, `package fixture

import "time"

func f() time.Time {
	return time.Now() //serlint:allow detsource
}
`)
	// The reasonless directive must not suppress, and must itself be
	// reported — two findings total.
	var sawFinding, sawProblem bool
	for _, d := range kept {
		switch d.Analyzer {
		case "detsource":
			sawFinding = true
		case "serlint":
			sawProblem = true
			if !strings.Contains(d.Message, "missing its mandatory reason") {
				t.Errorf("problem message = %q, want the mandatory-reason text", d.Message)
			}
		}
	}
	if !sawFinding || !sawProblem {
		t.Fatalf("want the original finding and a directive problem, got %v", kept)
	}
}

func TestSuppressionUnknownAnalyzerRejected(t *testing.T) {
	fset, files := parseSrc(t, `package fixture

//serlint:allow nosuchanalyzer because reasons
var x int
`)
	sups, problems := Directives(fset, files, Names())
	if len(sups) != 0 {
		t.Fatalf("unknown analyzer produced a suppression: %v", sups)
	}
	if len(problems) != 1 || !strings.Contains(problems[0].Message, `unknown analyzer "nosuchanalyzer"`) {
		t.Fatalf("want one unknown-analyzer problem, got %v", problems)
	}
}

func TestDirectiveProblemsAreNotSuppressible(t *testing.T) {
	fset, files := parseSrc(t, `package fixture

//serlint:allow detsource
var x int
`)
	kept, _ := Filter(fset, files, nil, Names())
	if len(kept) != 1 || kept[0].Analyzer != "serlint" {
		t.Fatalf("want the directive problem to survive filtering, got %v", kept)
	}
}

func TestDirectivesRecordWellFormed(t *testing.T) {
	fset, files := parseSrc(t, `package fixture

//serlint:allow detrange commutative counter fold
var x int
`)
	sups, problems := Directives(fset, files, Names())
	if len(problems) != 0 {
		t.Fatalf("unexpected problems: %v", problems)
	}
	if len(sups) != 1 || sups[0].Analyzer != "detrange" || sups[0].Reason != "commutative counter fold" {
		t.Fatalf("suppression = %+v, want detrange with the full reason", sups)
	}
}

func TestInScope(t *testing.T) {
	const mod = "repro"
	cases := []struct {
		analyzer, importPath string
		want                 bool
	}{
		{"detrange", "repro/internal/core", true},
		{"detrange", "repro/internal/verilog", false},
		{"detsource", "repro/internal/simulate", true},
		{"detsource", "repro/internal/serd", false}, // deliberately out of scope
		{"deferunlock", "repro/internal/serd", true},
		{"bitfloat", "repro/internal/resume", true},
		{"bitfloat", "repro/internal/core", false},
		{"atomiconly", "repro/internal/anything", true}, // "..." scope
		{"ctxflow", "repro", true},
		{"ctxflow", "otaher.example/mod/pkg", false}, // outside the module
		{"detrange", "reprox/internal/core", false},  // prefix, not a path boundary
	}
	for _, c := range cases {
		if got := InScope(c.analyzer, mod, c.importPath); got != c.want {
			t.Errorf("InScope(%s, %s, %s) = %v, want %v", c.analyzer, mod, c.importPath, got, c.want)
		}
	}
}

func TestAnalyzersHaveDocsAndStableNames(t *testing.T) {
	names := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing Name, Doc, or Run", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
		if _, ok := scopes[a.Name]; !ok {
			t.Errorf("analyzer %q has no scope entry", a.Name)
		}
	}
	if names["serlint"] {
		t.Error(`"serlint" is reserved for directive problems and cannot name an analyzer`)
	}
}
