// Fixture for the detrange analyzer: range-over-map iteration.
package fixture

import "sort"

// positiveFold folds map values in iteration order — the canonical
// order-dependent result.
func positiveFold(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `range over map map\[string\]float64 has non-deterministic iteration order`
		total += v * total // order-dependent: not commutative
	}
	return total
}

// positiveCollectNoSort collects keys but never sorts them, so the slice
// order still leaks map order.
func positiveCollectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `range over map map\[string\]int has non-deterministic iteration order`
		keys = append(keys, k)
	}
	return keys
}

// positiveMixedBody appends but also does other work in the body, so the
// collect-then-sort exemption must not apply.
func positiveMixedBody(m map[string]int) ([]string, int) {
	var keys []string
	n := 0
	for k := range m { // want `range over map map\[string\]int has non-deterministic iteration order`
		keys = append(keys, k)
		n++
	}
	sort.Strings(keys)
	return keys, n
}

// negativeCollectThenSort is the sanctioned prelude: append-only body,
// sorted before use in the same block.
func negativeCollectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// negativeCollectThenSliceSort uses the slices package sort.
func negativeCollectThenSliceSort(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sortInts(keys)
	sort.Ints(keys)
	return keys
}

func sortInts([]int) {}

// negativeNested collects inside a nested block and sorts in that same
// block.
func negativeNested(ms []map[string]int) [][]string {
	var out [][]string
	for _, m := range ms {
		var keys []string
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out = append(out, keys)
	}
	return out
}

// negativeSlice ranges over a slice, which is ordered.
func negativeSlice(s []int) int {
	t := 0
	for _, v := range s {
		t += v
	}
	return t
}

// mapAlias exercises named types whose underlying type is a map.
type mapAlias map[string]int

func positiveNamedMap(m mapAlias) int {
	n := 0
	for range m { // want `range over map fixture\.mapAlias has non-deterministic iteration order`
		n++
	}
	return n
}
