// Package detrange flags `for range` over map values in result-producing
// packages: Go randomizes map iteration order, so any value that is folded,
// appended, serialized, or compared inside such a loop can differ run to
// run — exactly the class of bug that breaks byte-identical resumed
// Reports and bit-identical distributed folds.
//
// One idiom is recognized as safe without a directive: a loop whose body
// only appends the iteration variables (or expressions over them) to local
// slices that are then passed to a sort.* or slices.Sort* call later in
// the same enclosing block — the canonical collect-then-sort prelude.
// Everything else needs either restructuring onto sorted keys or an
// explicit //serlint:allow detrange <reason> stating why order cannot
// reach a result (e.g. a commutative counter, a set membership test).
package detrange

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the detrange check.
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc:  "flags range-over-map iteration in result-producing packages unless keys are collected and sorted",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	analysis.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if collectThenSort(pass, rng, stack) {
			return true
		}
		pass.Reportf(rng.Pos(), "range over map %s has non-deterministic iteration order; iterate sorted keys (or //serlint:allow detrange <reason>)", typeName(tv.Type))
		return true
	})
	return nil
}

func typeName(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// collectThenSort reports whether rng is the safe collect-then-sort idiom:
// every statement in the body is `s = append(s, ...)` into a local slice,
// and each such slice is later passed to sort.*/slices.Sort* in the block
// that encloses the loop.
func collectThenSort(pass *analysis.Pass, rng *ast.RangeStmt, stack []ast.Node) bool {
	if len(rng.Body.List) == 0 {
		return false
	}
	// Phase 1: body must be append-only, and record the target objects.
	targets := map[types.Object]bool{}
	for _, stmt := range rng.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
			return false // not the builtin append
		}
		if len(call.Args) < 2 {
			return false
		}
		if arg0, ok := ast.Unparen(call.Args[0]).(*ast.Ident); !ok || arg0.Name != lhs.Name {
			return false // append target differs from assignee
		}
		obj := pass.TypesInfo.Uses[lhs]
		if obj == nil {
			obj = pass.TypesInfo.Defs[lhs]
		}
		if obj == nil {
			return false
		}
		targets[obj] = true
	}
	// Phase 2: find the block enclosing the loop and require a sort call
	// mentioning each target after the loop.
	var encl *ast.BlockStmt
	var child ast.Node = rng
	for i := len(stack) - 1; i >= 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			encl = b
			break
		}
		child = stack[i]
	}
	if encl == nil {
		return false
	}
	after := false
	sorted := map[types.Object]bool{}
	for _, stmt := range encl.List {
		if ast.Node(stmt) == child {
			after = true
			continue
		}
		if !after {
			continue
		}
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, _ := analysis.PkgFuncName(pass.TypesInfo, call)
			if pkg != "sort" && pkg != "slices" {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(a ast.Node) bool {
					if id, ok := a.(*ast.Ident); ok {
						if obj := pass.TypesInfo.Uses[id]; obj != nil && targets[obj] {
							sorted[obj] = true
						}
					}
					return true
				})
			}
			return true
		})
	}
	for obj := range targets {
		if !sorted[obj] {
			return false
		}
	}
	return true
}
