package detrange_test

import (
	"testing"

	"repro/internal/lint/detrange"
	"repro/internal/lint/linttest"
)

func TestDetrange(t *testing.T) {
	linttest.Run(t, detrange.Analyzer, "testdata")
}
