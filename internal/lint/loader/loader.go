// Package loader is the type-checking core shared by the serlint driver
// and the linttest fixture harness: parse Go files, resolve imports from
// gc export data (the .a files the go command already built), and produce
// the (*types.Package, *types.Info) pair the analyzers consume. Export
// data comes either from a `go vet` unit config (driver) or from
// `go list -export -deps -json` (linttest, fully offline — no module
// downloads, only the local toolchain's build cache).
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"

	"repro/internal/lint/analysis"
)

// ParseFiles parses the named files with comments retained.
func ParseFiles(fset *token.FileSet, filenames []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Check type-checks files as package path. Imports are canonicalized
// through importMap (identity when a path is absent) and resolved from gc
// export data via lookup. goVersion may be empty.
func Check(fset *token.FileSet, files []*ast.File, path string, importMap map[string]string, lookup func(path string) (io.ReadCloser, error), goVersion string) (*types.Package, *types.Info, error) {
	compilerImporter := importer.ForCompiler(fset, "gc", lookup)
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := importMap[importPath]; ok {
			importPath = mapped
		}
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.(types.ImporterFrom).ImportFrom(importPath, "", 0)
	})
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
	}
	info := analysis.NewInfo()
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Export     string
}

// Exports resolves export-data files for the given import paths and all
// their dependencies by shelling out to `go list -export -deps -json`.
// The returned map is keyed by import path. It works offline: go list
// compiles export data into the local build cache as needed.
func Exports(imports []string) (map[string]string, error) {
	if len(imports) == 0 {
		return map[string]string{}, nil
	}
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, imports...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export: %v\n%s", err, stderr.String())
	}
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -export: decoding output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// FileLookup adapts an import-path→file map to the lookup signature
// Check wants.
func FileLookup(files map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := files[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// NonTest filters out _test.go files. The determinism contract governs
// shipped code; test files exercise violations on purpose.
func NonTest(filenames []string) []string {
	var out []string
	for _, f := range filenames {
		if !strings.HasSuffix(f, "_test.go") {
			out = append(out, f)
		}
	}
	return out
}
