package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/latch"
	"repro/internal/netlist"
	"repro/internal/sigprob"
)

func circuitFile(t testing.TB, name string) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseFile("../../testdata/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRegistry(t *testing.T) {
	want := []string{"bdd", "enum", "epp-batch", "epp-scalar", "monte-carlo"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		e, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if e.Name() != name {
			t.Errorf("Lookup(%q).Name() = %q", name, e.Name())
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup of unknown engine succeeded")
	}
}

// TestConformance is the registry-wide agreement suite on the two testdata
// circuits (c17, the majority voter): every registered engine runs the same
// request, then
//
//   - deterministic engines of the same class must agree pairwise to 1e-9
//     (the analytic engines share the same arithmetic; the exact engines
//     share the same ground truth),
//   - the sampling engine must agree with the exact class within its
//     statistical tolerance,
//   - the analytic class must stay within the known EPP approximation error
//     of ground truth (sanity bound, not a precision claim).
func TestConformance(t *testing.T) {
	for _, file := range []string{"c17.bench", "majority.bench"} {
		t.Run(file, func(t *testing.T) {
			c := circuitFile(t, file)
			sp := sigprob.Topological(c, sigprob.Config{})
			results := map[string][]float64{}
			for _, e := range Engines() {
				req := &Request{Circuit: c, SP: sp, Vectors: 1 << 15, Seed: 3}
				out := make([]float64, c.N())
				if err := e.PSensitizedAll(context.Background(), req, out); err != nil {
					t.Fatalf("%s: %v", e.Name(), err)
				}
				results[e.Name()] = out
			}
			assertAgree := func(a, b string, tol float64) {
				t.Helper()
				for id := range results[a] {
					if d := math.Abs(results[a][id] - results[b][id]); d > tol {
						t.Errorf("%s vs %s at node %s: %v vs %v (|diff| %v > %v)",
							a, b, c.NameOf(netlist.ID(id)), results[a][id], results[b][id], d, tol)
					}
				}
			}
			// Within-class agreement: deterministic engines to 1e-9.
			assertAgree("epp-batch", "epp-scalar", 1e-9)
			assertAgree("enum", "bdd", 1e-9)
			// Sampling vs truth: binomial noise at 2^15 vectors is ~2.8e-3
			// per site; 5σ keeps the test deterministic-in-practice.
			assertAgree("monte-carlo", "enum", 5*2.8e-3)
			// Analytic vs truth: bounded by the EPP reconvergence error
			// (measured ≤ 0.094 on these circuits).
			assertAgree("epp-batch", "enum", 0.15)
		})
	}
}

// TestWorkerAndWidthInvariance: the batched engine's results are
// bit-identical across worker counts and agree across batch widths.
func TestWorkerAndWidthInvariance(t *testing.T) {
	c, err := gen.ByName("s953")
	if err != nil {
		t.Fatal(err)
	}
	sp := sigprob.Topological(c, sigprob.Config{})
	e, err := Lookup("epp-batch")
	if err != nil {
		t.Fatal(err)
	}
	base := make([]float64, c.N())
	if err := e.PSensitizedAll(context.Background(), &Request{Circuit: c, SP: sp, Workers: 1}, base); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 7} {
		out := make([]float64, c.N())
		if err := e.PSensitizedAll(context.Background(), &Request{Circuit: c, SP: sp, Workers: workers}, out); err != nil {
			t.Fatal(err)
		}
		for id := range out {
			if out[id] != base[id] {
				t.Fatalf("workers=%d: node %d differs: %v vs %v", workers, id, out[id], base[id])
			}
		}
	}
	for _, width := range []int{1, 8, 64} {
		out := make([]float64, c.N())
		if err := e.PSensitizedAll(context.Background(), &Request{Circuit: c, SP: sp, BatchWidth: width}, out); err != nil {
			t.Fatal(err)
		}
		for id := range out {
			if math.Abs(out[id]-base[id]) > 1e-12 {
				t.Fatalf("width=%d: node %d differs: %v vs %v", width, id, out[id], base[id])
			}
		}
	}
}

// TestCancellation: a pre-cancelled context returns ctx.Err() promptly from
// every engine, before any (or after at most one batch of) work.
func TestCancellation(t *testing.T) {
	c, err := gen.ByName("s953")
	if err != nil {
		t.Fatal(err)
	}
	sp := sigprob.Topological(c, sigprob.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, e := range Engines() {
		out := make([]float64, c.N())
		err := e.PSensitizedAll(ctx, &Request{Circuit: c, SP: sp, Vectors: 256}, out)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", e.Name(), err)
		}
	}
}

// TestCancellationMidSweep cancels from inside an OnBatch callback and
// checks the sweep stops early rather than draining all nodes.
func TestCancellationMidSweep(t *testing.T) {
	c, err := gen.ByName("s1196")
	if err != nil {
		t.Fatal(err)
	}
	sp := sigprob.Topological(c, sigprob.Config{})
	e, err := Lookup("epp-batch")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	req := &Request{
		Circuit: c,
		SP:      sp,
		Workers: 1,
		OnBatch: func(lo, hi int) error {
			seen += hi - lo
			if seen >= 64 {
				cancel()
			}
			return nil
		},
	}
	out := make([]float64, c.N())
	if err := e.PSensitizedAll(ctx, req, out); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if seen >= c.N() {
		t.Fatalf("sweep drained all %d nodes despite cancellation", c.N())
	}
}

// TestOnBatchError: an OnBatch error aborts the sweep and surfaces
// verbatim, serial and parallel.
func TestOnBatchError(t *testing.T) {
	c, err := gen.ByName("s953")
	if err != nil {
		t.Fatal(err)
	}
	sp := sigprob.Topological(c, sigprob.Config{})
	e, err := Lookup("epp-batch")
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop here")
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		calls := 0
		req := &Request{
			Circuit: c,
			SP:      sp,
			Workers: workers,
			OnBatch: func(lo, hi int) error {
				mu.Lock()
				defer mu.Unlock()
				calls++
				if calls == 2 {
					return sentinel
				}
				return nil
			},
		}
		out := make([]float64, c.N())
		if err := e.PSensitizedAll(context.Background(), req, out); !errors.Is(err, sentinel) {
			t.Errorf("workers=%d: err = %v, want sentinel", workers, err)
		}
	}
}

// TestFramesConformance: the batched and scalar engines agree on the
// multi-cycle detection probability.
func TestFramesConformance(t *testing.T) {
	c, err := gen.ByName("s1423") // FF-heavy profile
	if err != nil {
		t.Fatal(err)
	}
	sp := sigprob.Topological(c, sigprob.Config{})
	outs := map[string][]float64{}
	for _, name := range []string{"epp-batch", "epp-scalar"} {
		e, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, c.N())
		if err := e.PSensitizedAll(context.Background(), &Request{Circuit: c, SP: sp, Frames: 4, Workers: 1}, out); err != nil {
			t.Fatal(err)
		}
		outs[name] = out
	}
	for id := range outs["epp-batch"] {
		if d := math.Abs(outs["epp-batch"][id] - outs["epp-scalar"][id]); d > 1e-9 {
			t.Fatalf("frames: node %d: batch %v vs scalar %v", id, outs["epp-batch"][id], outs["epp-scalar"][id])
		}
	}
}

// TestMCEngineFrames: the monte-carlo engine accepts multi-cycle requests
// (the old "does not support multi-cycle frames" error path is gone), agrees
// with the analytic multi-cycle engines within sampling noise, is
// bit-identical across worker counts, and proves exactly one good simulation
// per (word, frame) through the Stats counters.
func TestMCEngineFrames(t *testing.T) {
	c, err := gen.ByName("s1423") // FF-heavy profile
	if err != nil {
		t.Fatal(err)
	}
	sp := sigprob.Topological(c, sigprob.Config{})
	mc, err := Lookup("monte-carlo")
	if err != nil {
		t.Fatal(err)
	}
	const frames, vectors = 4, 1 << 11
	var stats Stats
	base := make([]float64, c.N())
	req := &Request{Circuit: c, Frames: frames, Vectors: vectors, Seed: 11, Workers: 1, Stats: &stats}
	if err := mc.PSensitizedAll(context.Background(), req, base); err != nil {
		t.Fatalf("monte-carlo Frames=%d: %v", frames, err)
	}

	// Good-sim sharing: exactly one good simulation per (word, frame).
	words := int64((vectors + 63) / 64)
	if got := stats.Words.Load(); got != words {
		t.Errorf("Words = %d, want %d", got, words)
	}
	if got := stats.GoodSims.Load(); got != words*frames {
		t.Errorf("GoodSims = %d, want %d (one per word per frame)", got, words*frames)
	}

	// Worker invariance: integer detection counts, bit-identical results.
	for _, workers := range []int{2, 0} {
		out := make([]float64, c.N())
		req := &Request{Circuit: c, Frames: frames, Vectors: vectors, Seed: 11, Workers: workers}
		if err := mc.PSensitizedAll(context.Background(), req, out); err != nil {
			t.Fatal(err)
		}
		for id := range out {
			if out[id] != base[id] {
				t.Fatalf("workers=%d: node %d differs: %v vs %v", workers, id, out[id], base[id])
			}
		}
	}

	// Statistical agreement with the analytic multi-cycle composition: the
	// sampling estimate is unbiased, the analytic one carries the EPP
	// independence error, so hold the mean |diff| to the documented bound
	// rather than per-site noise.
	epp, err := Lookup("epp-batch")
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]float64, c.N())
	if err := epp.PSensitizedAll(context.Background(), &Request{Circuit: c, SP: sp, Frames: frames}, ref); err != nil {
		t.Fatal(err)
	}
	sumAbs := 0.0
	for id := range ref {
		sumAbs += math.Abs(base[id] - ref[id])
	}
	if mean := sumAbs / float64(c.N()); mean > 0.08 {
		t.Errorf("mean |monte-carlo - epp-batch| at Frames=%d: %v > 0.08", frames, mean)
	}
}

// TestAnalyticFramesWorkers: the multi-cycle sweeps of both analytic
// engines honor Request.Workers (epp-scalar used to hardcode a single
// worker; epp-batch used to run the serial PDetectAllInto) and stay
// bit-identical at any worker count — each worker's seq analyzer computes
// the same deterministic composition over packing-invariant strike sweeps.
func TestAnalyticFramesWorkers(t *testing.T) {
	c, err := gen.ByName("s1423")
	if err != nil {
		t.Fatal(err)
	}
	sp := sigprob.Topological(c, sigprob.Config{})
	for _, name := range []string{"epp-batch", "epp-scalar"} {
		e, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		base := make([]float64, c.N())
		if err := e.PSensitizedAll(context.Background(), &Request{Circuit: c, SP: sp, Frames: 3, Workers: 1}, base); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 0} {
			out := make([]float64, c.N())
			if err := e.PSensitizedAll(context.Background(), &Request{Circuit: c, SP: sp, Frames: 3, Workers: workers}, out); err != nil {
				t.Fatal(err)
			}
			for id := range out {
				if out[id] != base[id] {
					t.Fatalf("%s workers=%d: node %d differs: %v vs %v", name, workers, id, out[id], base[id])
				}
			}
		}
	}
}

// TestOnProgress: every engine reports monotone OnProgress counts in node
// units, ending exactly at (N, N) — including the word-major monte-carlo
// engine, whose progress must tick incrementally (more than one call) even
// though its per-site results finalize together, single- and multi-cycle.
func TestOnProgress(t *testing.T) {
	c, err := gen.ByName("s953")
	if err != nil {
		t.Fatal(err)
	}
	sp := sigprob.Topological(c, sigprob.Config{})
	cases := []struct {
		name   string
		frames int
	}{
		{"epp-batch", 1}, {"epp-batch", 3},
		{"epp-scalar", 1}, {"epp-scalar", 3},
		{"monte-carlo", 1}, {"monte-carlo", 3},
	}
	for _, tc := range cases {
		e, err := Lookup(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		// The callback runs on sweep worker goroutines under the engines'
		// progress mutex, so record the pairs and assert only after the
		// sweep returns — a t.Fatalf from inside would strand the mutex.
		var seen [][2]int
		req := &Request{
			Circuit: c, SP: sp, Frames: tc.frames, Vectors: 512, Workers: 1,
			OnProgress: func(done, total int) {
				seen = append(seen, [2]int{done, total})
			},
		}
		out := make([]float64, c.N())
		if err := e.PSensitizedAll(context.Background(), req, out); err != nil {
			t.Fatalf("%s frames=%d: %v", tc.name, tc.frames, err)
		}
		last := 0
		for i, s := range seen {
			if s[1] != c.N() {
				t.Fatalf("%s frames=%d: call %d total = %d, want %d", tc.name, tc.frames, i, s[1], c.N())
			}
			if s[0] < last {
				t.Fatalf("%s frames=%d: progress went backwards: %d after %d", tc.name, tc.frames, s[0], last)
			}
			last = s[0]
		}
		if last != c.N() {
			t.Errorf("%s frames=%d: final progress %d, want %d", tc.name, tc.frames, last, c.N())
		}
		if len(seen) < 2 {
			t.Errorf("%s frames=%d: OnProgress fired %d times, want incremental reporting", tc.name, tc.frames, len(seen))
		}
	}
}

// TestEngineErrors: unsupported configurations fail descriptively.
func TestEngineErrors(t *testing.T) {
	c := circuitFile(t, "c17.bench")
	bias := make([]float64, c.N())
	cases := []struct {
		name string
		req  Request
	}{
		{"enum", Request{Circuit: c, Frames: 2}},
		{"enum", Request{Circuit: c, Bias: bias}},
		{"bdd", Request{Circuit: c, Frames: 2}},
	}
	for _, tc := range cases {
		e, err := Lookup(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, c.N())
		if err := e.PSensitizedAll(context.Background(), &tc.req, out); err == nil {
			t.Errorf("%s with %+v: no error", tc.name, tc.req)
		}
	}
	// Mis-sized output slice.
	e, _ := Lookup("epp-batch")
	if err := e.PSensitizedAll(context.Background(), &Request{Circuit: c}, make([]float64, 3)); err == nil {
		t.Error("short output slice accepted")
	}
}

// TestOnBatchCoversAllNodes: the serial batch hooks tile [0, N) exactly.
func TestOnBatchCoversAllNodes(t *testing.T) {
	c, err := gen.ByName("s953")
	if err != nil {
		t.Fatal(err)
	}
	sp := sigprob.Topological(c, sigprob.Config{})
	for _, name := range []string{"epp-batch", "epp-scalar", "monte-carlo"} {
		e, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		next := 0
		req := &Request{
			Circuit: c, SP: sp, Workers: 1, Vectors: 64,
			OnBatch: func(lo, hi int) error {
				if lo != next {
					return fmt.Errorf("batch starts at %d, want %d", lo, next)
				}
				next = hi
				return nil
			},
		}
		out := make([]float64, c.N())
		if err := e.PSensitizedAll(context.Background(), req, out); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if next != c.N() {
			t.Fatalf("%s: batches covered [0,%d), want [0,%d)", name, next, c.N())
		}
	}
}

// TestBatchEngineOrderInvariance: with OrderedSweep the epp-batch engine
// sweeps ascending IDs (the streaming contract), without it the
// cone-locality schedule — and the two must produce bit-identical outputs
// (the kernel's packing invariance is what lets Run and RunStream agree
// exactly).
func TestBatchEngineOrderInvariance(t *testing.T) {
	c, err := gen.ByName("s1196")
	if err != nil {
		t.Fatal(err)
	}
	sp := sigprob.Topological(c, sigprob.Config{})
	e, err := Lookup("epp-batch")
	if err != nil {
		t.Fatal(err)
	}
	scheduled := make([]float64, c.N())
	if err := e.PSensitizedAll(context.Background(), &Request{Circuit: c, SP: sp}, scheduled); err != nil {
		t.Fatal(err)
	}
	byID := make([]float64, c.N())
	req := &Request{Circuit: c, SP: sp, OrderedSweep: true, OnBatch: func(lo, hi int) error { return nil }}
	if err := e.PSensitizedAll(context.Background(), req, byID); err != nil {
		t.Fatal(err)
	}
	for id := range byID {
		if scheduled[id] != byID[id] {
			t.Fatalf("node %d: scheduled %v != by-ID %v (must be bit-identical)", id, scheduled[id], byID[id])
		}
	}
}

// TestStatsCounters: the work counters quantify the two kernel wins — the
// batched EPP engine's swept-nodes-per-site and the monte-carlo engine's
// one-good-sim-per-word invariant.
func TestStatsCounters(t *testing.T) {
	c, err := gen.ByName("s953")
	if err != nil {
		t.Fatal(err)
	}
	sp := sigprob.Topological(c, sigprob.Config{})

	var epp Stats
	e, _ := Lookup("epp-batch")
	out := make([]float64, c.N())
	if err := e.PSensitizedAll(context.Background(), &Request{Circuit: c, SP: sp, Stats: &epp}, out); err != nil {
		t.Fatal(err)
	}
	if got := epp.Sites.Load(); got != int64(c.N()) {
		t.Errorf("epp-batch Sites = %d, want %d", got, c.N())
	}
	if epp.SweptNodesPerSite() <= 0 {
		t.Errorf("epp-batch SweptNodesPerSite = %v, want > 0", epp.SweptNodesPerSite())
	}

	var mc Stats
	m, _ := Lookup("monte-carlo")
	vectors := 500 // 8 words
	if err := m.PSensitizedAll(context.Background(), &Request{Circuit: c, Vectors: vectors, Seed: 2, Stats: &mc}, out); err != nil {
		t.Fatal(err)
	}
	words := int64((vectors + 63) / 64)
	if got := mc.Words.Load(); got != words {
		t.Errorf("monte-carlo Words = %d, want %d", got, words)
	}
	if got := mc.GoodSims.Load(); got != words {
		t.Errorf("monte-carlo GoodSims = %d, want %d (exactly one per word)", got, words)
	}
	if got := mc.GoodSimsPerWord(); got != 1 {
		t.Errorf("GoodSimsPerWord = %v, want exactly 1", got)
	}
}

// TestRulesWiring: Request.Rules reaches both analytic engines (the
// no-polarity ablation must change results where polarity matters and the
// two engines must agree under every rule set), is rejected for multi-cycle
// frames, and is ignored by the sampling engine.
func TestRulesWiring(t *testing.T) {
	// The reconvergent XOR-style structure where polarity tracking matters:
	// a NOT and a BUF path reconverging on an OR.
	c := circuitFile(t, "c17.bench")
	sp := sigprob.Topological(c, sigprob.Config{})
	results := map[core.RuleSet]map[string][]float64{}
	for _, rs := range []core.RuleSet{core.RulesClosedForm, core.RulesPairwise, core.RulesNoPolarity} {
		results[rs] = map[string][]float64{}
		for _, name := range []string{"epp-batch", "epp-scalar"} {
			e, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			out := make([]float64, c.N())
			if err := e.PSensitizedAll(context.Background(), &Request{Circuit: c, SP: sp, Rules: rs}, out); err != nil {
				t.Fatalf("%s rules %v: %v", name, rs, err)
			}
			results[rs][name] = out
		}
		for id := range results[rs]["epp-batch"] {
			if d := math.Abs(results[rs]["epp-batch"][id] - results[rs]["epp-scalar"][id]); d > 1e-12 {
				t.Errorf("rules %v node %d: batch %v vs scalar %v", rs,
					id, results[rs]["epp-batch"][id], results[rs]["epp-scalar"][id])
			}
		}
	}
	// Closed-form and pairwise are equivalent formulations; no-polarity is
	// the lossy ablation and must diverge somewhere on c17 (it has
	// reconvergent fanout with inversions).
	agree := func(a, b map[string][]float64) bool {
		for id := range a["epp-batch"] {
			if math.Abs(a["epp-batch"][id]-b["epp-batch"][id]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if !agree(results[core.RulesClosedForm], results[core.RulesPairwise]) {
		t.Error("closed-form and pairwise rules disagree (they are the same math)")
	}
	if agree(results[core.RulesClosedForm], results[core.RulesNoPolarity]) {
		t.Error("no-polarity ablation changed nothing on c17 — wiring suspect")
	}
	// Frames > 1 rejects a non-default rule set on both engines.
	for _, name := range []string{"epp-batch", "epp-scalar"} {
		e, _ := Lookup(name)
		out := make([]float64, c.N())
		err := e.PSensitizedAll(context.Background(),
			&Request{Circuit: c, SP: sp, Frames: 3, Rules: core.RulesPairwise}, out)
		if err == nil {
			t.Errorf("%s: Frames+Rules accepted", name)
		}
	}
}

// TestLatchWeightedConformance is the latch-window acceptance suite: with a
// latch model coupled into the multi-cycle request, the two analytic engines
// stay bit-compatible with each other, the monte-carlo engine tracks them
// within the documented mean |diff| <= 0.08 on c17, majority and a random
// sequential circuit at frames 1, 2 and 4, the weighted estimate never
// exceeds the unweighted one, and results stay bit-identical across worker
// counts.
func TestLatchWeightedConformance(t *testing.T) {
	lm := latch.Default()
	circuits := map[string]*netlist.Circuit{
		"c17":       circuitFile(t, "c17.bench"),
		"majority":  circuitFile(t, "majority.bench"),
		"small-seq": gen.SmallRandomSequential(77),
	}
	for name, c := range circuits {
		sp := sigprob.Topological(c, sigprob.Config{})
		for _, frames := range []int{1, 2, 4} {
			run := func(engName string, workers int, withLatch bool) []float64 {
				t.Helper()
				e, err := Lookup(engName)
				if err != nil {
					t.Fatal(err)
				}
				req := &Request{Circuit: c, SP: sp, Frames: frames, Vectors: 1 << 13, Seed: 9, Workers: workers}
				if withLatch {
					req.Latch = &lm
				}
				out := make([]float64, c.N())
				if err := e.PSensitizedAll(context.Background(), req, out); err != nil {
					t.Fatalf("%s %s frames=%d: %v", name, engName, frames, err)
				}
				return out
			}
			batch := run("epp-batch", 1, true)
			scalar := run("epp-scalar", 1, true)
			mc := run("monte-carlo", 1, true)
			plainBatch := run("epp-batch", 1, false)
			plainMC := run("monte-carlo", 1, false)

			sum := 0.0
			for id := range batch {
				if d := math.Abs(batch[id] - scalar[id]); d > 1e-9 {
					t.Fatalf("%s frames=%d node %d: epp-batch %v vs epp-scalar %v", name, frames, id, batch[id], scalar[id])
				}
				if batch[id] > plainBatch[id]+1e-15 {
					t.Fatalf("%s frames=%d node %d: weighted %v exceeds unweighted %v", name, frames, id, batch[id], plainBatch[id])
				}
				if mc[id] > plainMC[id]+1e-15 {
					t.Fatalf("%s frames=%d node %d: weighted MC %v exceeds unweighted %v", name, frames, id, mc[id], plainMC[id])
				}
				sum += math.Abs(batch[id] - mc[id])
			}
			if mean := sum / float64(c.N()); mean > 0.08 {
				t.Errorf("%s frames=%d: mean |epp-batch − monte-carlo| = %v > 0.08 (latch-weighted)", name, frames, mean)
			}

			// Worker invariance under weighting, all three engines.
			for _, engName := range []string{"epp-batch", "epp-scalar", "monte-carlo"} {
				base := run(engName, 1, true)
				for _, workers := range []int{2, 0} {
					got := run(engName, workers, true)
					for id := range got {
						if got[id] != base[id] {
							t.Fatalf("%s %s frames=%d workers=%d node %d: %v != %v",
								name, engName, frames, workers, id, got[id], base[id])
						}
					}
				}
			}
		}
	}
}
