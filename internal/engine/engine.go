// Package engine defines the pluggable P_sensitized backend interface of
// the SER pipeline and a registry of the built-in implementations.
//
// The paper's decomposition SER(n) = R_SEU(n) × P_latched(n) × P_sensitized(n)
// has exactly one expensive term, and this repository grew four independent
// ways to compute it: the scalar EPP sweep (the executable specification of
// the paper's method), the batched union-cone EPP kernel (the production
// path), random-vector fault injection (the baseline the paper compares
// against), and two exact backends (exhaustive enumeration and a BDD
// good/faulty miter). An Engine wraps one of those behind a uniform
// all-sites contract so that pipeline assembly, CLI selection, conformance
// testing and future sharded backends are table-driven rather than
// switch-driven.
//
// All engines honor context cancellation between batches (or between sites
// for the per-site backends) and support incremental result delivery through
// Request.OnBatch, which is what the public streaming API builds on.
package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/eco"
	"repro/internal/latch"
	"repro/internal/netlist"
	"repro/internal/resume"
	"repro/internal/sigprob"
	"repro/internal/simulate"
)

// Class groups engines by the nature of their estimate, which determines
// what agreement the conformance suite may demand between them.
type Class int

const (
	// ClassAnalytic engines compute the paper's closed-form EPP
	// approximation: deterministic, linear-time, exact only on fanout-free
	// circuits. All analytic engines must agree with each other to
	// floating-point tolerance.
	ClassAnalytic Class = iota
	// ClassSampling engines estimate by random simulation: unbiased, with
	// ~1/sqrt(vectors) noise. They agree with ClassExact only statistically.
	ClassSampling
	// ClassExact engines compute ground truth (no independence assumption,
	// no sampling). All exact engines must agree with each other to
	// floating-point tolerance.
	ClassExact
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassAnalytic:
		return "analytic"
	case ClassSampling:
		return "sampling"
	case ClassExact:
		return "exact"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Request carries one all-sites P_sensitized computation. The zero value of
// every field except Circuit is usable; engines that do not consume a field
// ignore it.
type Request struct {
	// Circuit is the netlist under analysis. Required.
	Circuit *netlist.Circuit
	// SP is the per-node signal probability vector consumed by the analytic
	// engines for off-path fanins (indexed by node ID). Nil means one
	// Parker–McCluskey topological sweep seeded with Bias.
	SP []float64
	// Bias is the per-source probability of logic 1 (indexed by node ID;
	// nil = 0.5 everywhere). It seeds the default SP computation, the
	// sampling engines' vector sources, and the BDD engine's source
	// probabilities. The enumeration engine supports only uniform sources
	// and rejects a non-nil Bias.
	Bias []float64
	// Workers bounds the engine's parallelism: 0 means all cores, 1 forces
	// a serial sweep. Engines that parallelize guarantee results identical
	// to the serial sweep (batch partitioning is worker-independent).
	Workers int
	// BatchWidth is the lane count for the batched EPP engine (0 = default,
	// clamped to [1, core.MaxBatchWidth]).
	BatchWidth int
	// Frames > 1 replaces the single-cycle P_sensitized with the
	// multi-cycle detection probability within Frames clock cycles: errors
	// are followed through flip-flops and detection means a primary output
	// differs in some frame. The analytic engines compose single-frame EPP
	// sweeps (internal/seq); the monte-carlo engine runs the frame-unrolled
	// batched kernel (simulate.MCSeqBatch). The exact engines reject it.
	// See Latch for the latching-window coupling of the composition.
	Frames int
	// Latch, when non-nil, couples the latching-window model into the
	// multi-cycle composition (Frames > 1): each frame's primary-output
	// detection contribution is weighted by Latch.FrameWeight(frame) — the
	// strike frame's transient races the capturing register's window
	// (FrameWeight(0)), while frames >= 1 re-launch full-cycle flip-flop
	// values whose weight is identically 1, so only the strike term is
	// derated. The analytic engines scale the strike term of the seq
	// composition; the monte-carlo engine composes the same quantity from
	// MCSeqBatch's integer frame counters (SeqResult.PDetectWeighted), so
	// worker invariance and the bit-exact kernel conformance are preserved
	// under weighting. Single-frame requests ignore the field — the
	// per-node static P_latched factor of the SER decomposition lives
	// outside the engines — as do the exact engines (which reject
	// Frames > 1 anyway).
	Latch *latch.Model
	// Vectors is the random-vector budget per site for the sampling
	// engines (0 = simulate default).
	Vectors int
	// Seed fixes the sampling engines' vector streams.
	Seed uint64
	// BDDBudget bounds the BDD engine's node count (0 = default); blow-ups
	// become errors rather than hangs.
	BDDBudget int
	// Rules selects the analytic engines' gate-rule implementation
	// (core.RulesClosedForm, the paper's Table 1 formulas, is the zero
	// default; RulesPairwise and RulesNoPolarity are the documented
	// ablations). Only meaningful for single-frame analytic engines; the
	// sampling and exact engines ignore it, and the multi-cycle path
	// rejects a non-default value.
	Rules core.RuleSet
	// OnBatch, when non-nil, is invoked after each batch of results is
	// finalized. The ranges tile [0, N) exactly, and hi−lo counts newly
	// finalized sites (what progress reporting needs), but [lo:hi) indexes
	// the engine's sweep schedule — only with OrderedSweep set is it also
	// the node-ID range out[lo:hi]. When Workers allows parallelism the
	// calls may arrive out of order (but never overlap); a non-nil return
	// aborts the sweep and is returned verbatim from PSensitizedAll.
	//
	// The monte-carlo engine finalizes all sites together (its outer loop
	// is over vector words, not sites), so its OnBatch calls all arrive
	// once the sweep completes, tiling [0, N) in ascending node-ID order;
	// cancellation is still honored per word and incremental progress is
	// reported through OnProgress instead.
	OnBatch func(lo, hi int) error
	// OnProgress, when non-nil, observes sweep progress: done out of total
	// in node units, with done monotonically nondecreasing across calls
	// (which never overlap) and reaching total exactly when the sweep
	// completes.
	// Unlike OnBatch it makes no claim that any result is final — the
	// word-major monte-carlo engine reports each completed 64-vector word
	// scaled to node units while every site finalizes together at the end;
	// the site-major engines report after each finalized batch. This is
	// the channel the public WithProgress option rides on.
	OnProgress func(done, total int)
	// OrderedSweep pins the batched EPP engine to ascending node-ID order,
	// making every OnBatch range an ID range with out[lo:hi] final — the
	// streaming API's contract. Without it the engine packs sites by cone
	// locality; the two orders produce bit-identical results (the kernel
	// is packing-invariant), only the work distribution differs.
	OrderedSweep bool
	// Stats, when non-nil, accumulates engine work counters for the sweep
	// (atomically, so one Stats may be shared across requests). The batched
	// EPP engine records swept union-cone nodes and sites; the monte-carlo
	// engine records good simulations and vector words — the ratios that
	// quantify the cone-locality and shared-good-sim savings. Under a
	// resumed checkpoint the sampling counters reflect the whole logical
	// sweep (restored words included); the site-major counters reflect only
	// the work actually performed by this call.
	Stats *Stats
	// Memo, when non-nil, memoizes per-site results across netlist edits
	// (the ECO cache): before sweeping, every site whose observation-cone
	// hash is cached under this request's memo key is restored from the
	// cache — bit-identical, stored as IEEE-754 bit patterns — and skipped
	// exactly like checkpoint-committed sites (restored ranges replay
	// through OnBatch first, the sweep covers the complement, freshly
	// computed batches are stored back). Engines are packing-invariant, so
	// a memo-assisted sweep is byte-identical to a cold one.
	//
	// Soundness contract (the ser layer enforces it, direct users must):
	// Bias must be nil — the engine rejects the combination — and SP, if
	// set, must be the circuit's default topological vector (nil-bias
	// Parker–McCluskey), because the memo key deliberately excludes circuit
	// content and SP: per-site values are then pure functions of the cone
	// content hashed by internal/eco. Memo cannot combine with Resume
	// (pick one restore source) or with a SiteLo/SiteHi shard (the
	// coordinator owns cross-request reuse). The word-major monte-carlo
	// engine reuses all-or-nothing: a full-circuit hit skips the sweep,
	// any miss recomputes every site (its shared-good-sim kernel prices a
	// sweep by words, not sites), and its memo key folds in the ordered
	// source-ID list (source insertion shifts every later source's vector
	// stream). Site-major engines force ascending-ID sweep order under a
	// memo, like under a checkpoint; results are unchanged.
	Memo *eco.Cache
	// Resume, when non-nil, makes the sweep crash-safe: completed units
	// (site batches or 64-vector words) and their integer counters are
	// committed to the checkpoint file at its cadence, and a sweep armed
	// against an existing checkpoint of the same request skips the
	// completed work and folds the saved results in, producing output
	// bit-identical to an uninterrupted run. The checkpoint's fingerprint
	// covers every result-affecting option (circuit content, engine,
	// frames, vectors, seed, rules, bias, SP, latch parameters) but not the
	// scheduling knobs (Workers, BatchWidth, OrderedSweep) — results are
	// worker-invariant, so a checkpoint resumes across machine sizes.
	// Arming against a checkpoint from a different request is an error.
	// Site-major engines force ascending-ID sweep order under a checkpoint
	// (committed ranges must be ID ranges); the kernels are
	// packing-invariant, so results are unchanged.
	Resume *resume.Checkpoint
	// SiteLo/SiteHi, when SiteHi > SiteLo, restrict the sweep to the node-ID
	// shard range [SiteLo, SiteHi) — the distributed coordinator's unit of
	// work. Only out entries inside the range are written (the rest are left
	// untouched), OnBatch ranges tile exactly [SiteLo, SiteHi), and progress
	// and *PartialError metadata count shard units (total = SiteHi−SiteLo).
	// The range is excluded from the request fingerprint — every shard of one
	// logical sweep fingerprints as that sweep — and because the engines are
	// packing-invariant, concatenating shard results reproduces the full
	// sweep bit-identically. A shard cannot carry its own Resume checkpoint
	// (the coordinator owns retry durability), and the word-major monte-carlo
	// engine rejects ranges: its shared-good-sim kernel amortizes one good
	// simulation across all sites per vector word, so sharding by site would
	// duplicate every good simulation in every shard. Both fields zero (the
	// zero value) means a full [0, N) sweep.
	SiteLo, SiteHi int
	// MaxSweepNodes, when > 0, bounds the node units of new work this call
	// may perform (units already restored from a checkpoint are free).
	// Site-major engines stop at the first batch boundary at or past the
	// budget; the word-major monte-carlo engine maps it to a word budget of
	// ceil(MaxSweepNodes × words / N) completed words. A budgeted stop
	// returns a *PartialError wrapping ErrBudget; combined with Resume,
	// repeated budgeted calls converge to completion.
	MaxSweepNodes int
}

// Stats accumulates engine work counters. All fields are atomic so engines
// may add from concurrent workers; the zero value is ready to use.
type Stats struct {
	// SweptNodes counts union-cone nodes visited by batched sweeps (for the
	// monte-carlo engine: union members visited, summed over words).
	SweptNodes atomic.Int64
	// Sites counts error sites analyzed.
	Sites atomic.Int64
	// GoodSims counts full-circuit good simulations (sampling engines).
	GoodSims atomic.Int64
	// Words counts 64-vector words applied (sampling engines).
	Words atomic.Int64
	// MemoHits counts sites restored from the ECO memo cache instead of
	// swept (Request.Memo). Sites counts only sites actually analyzed, so
	// MemoHits + Sites covers the whole sweep on a memo-assisted run —
	// the ratio is the incremental re-estimation saving.
	MemoHits atomic.Int64
}

// SweptNodesPerSite reports batching efficiency: union-cone nodes swept per
// site analyzed (lower is better; 0 if no sites were recorded).
func (s *Stats) SweptNodesPerSite() float64 {
	if n := s.Sites.Load(); n > 0 {
		return float64(s.SweptNodes.Load()) / float64(n)
	}
	return 0
}

// GoodSimsPerWord reports good-simulation sharing: full-circuit good
// simulations per 64-vector word. The shared-good-sim kernel's invariant
// value is exactly 1; the per-site estimator would cost one per site per
// word.
func (s *Stats) GoodSimsPerWord() float64 {
	if n := s.Words.Load(); n > 0 {
		return float64(s.GoodSims.Load()) / float64(n)
	}
	return 0
}

// sp returns the request's signal probability vector, computing the
// topological default if none was supplied.
func (r *Request) sp() []float64 {
	if r.SP != nil {
		return r.SP
	}
	return sigprob.Topological(r.Circuit, sigprob.Config{SourceProb: r.Bias})
}

// strikeWeight resolves the multi-cycle strike-frame capture weight: 1 (no
// derating) without a latch model, Latch.FrameWeight(0) with one.
func (r *Request) strikeWeight() float64 {
	if r.Latch == nil {
		return 1
	}
	return r.Latch.FrameWeight(0)
}

// mcOptions assembles the sampling engines' options from the request. The
// monte-carlo engine runs the shared-vector regime (simulate.MCBatch), so
// the flag is set for documentation symmetry even though MCBatch implies it.
func (r *Request) mcOptions() simulate.MCOptions {
	return simulate.MCOptions{Vectors: r.Vectors, Seed: r.Seed, SourceProb: r.Bias, SharedVectors: true}
}

// Engine computes P_sensitized for every node of a circuit.
type Engine interface {
	// Name is the stable identifier used by CLI -engine flags and the
	// registry. Lower-case, hyphenated.
	Name() string
	// Class reports the engine's estimate class (analytic, sampling,
	// exact), which fixes the agreement the conformance suite demands.
	Class() Class
	// PSensitizedAll writes P_sensitized(id) to out[id] for every node of
	// req.Circuit. len(out) must equal req.Circuit.N(). Cancellation of ctx
	// is honored between batches: the method returns ctx.Err() promptly and
	// out holds a partial result. A non-nil error from req.OnBatch aborts
	// the sweep the same way and is returned verbatim.
	PSensitizedAll(ctx context.Context, req *Request, out []float64) error
}

var (
	regMu    sync.RWMutex
	registry = map[string]Engine{}
)

// Register adds an engine to the registry. It panics if the name is empty
// or already taken — registration is an init-time programming error, not a
// runtime condition.
func Register(e Engine) {
	regMu.Lock()
	defer regMu.Unlock()
	name := e.Name()
	if name == "" {
		panic("engine: Register with empty name")
	}
	if _, dup := registry[name]; dup {
		panic("engine: duplicate Register of " + name)
	}
	registry[name] = e
}

// Lookup returns the registered engine with the given name, or an error
// naming the registered alternatives.
func Lookup(name string) (Engine, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	if e, ok := registry[name]; ok {
		return e, nil
	}
	return nil, fmt.Errorf("engine: unknown engine %q (registered: %v)", name, namesLocked())
}

// Names returns the registered engine names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Engines returns the registered engines sorted by name, for table-driven
// conformance testing.
func Engines() []Engine {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Engine, 0, len(registry))
	for _, name := range namesLocked() {
		out = append(out, registry[name])
	}
	return out
}

// checkOut validates the request/output pairing shared by every engine.
func checkOut(req *Request, out []float64) error {
	if req.Circuit == nil {
		return fmt.Errorf("engine: nil circuit")
	}
	if len(out) != req.Circuit.N() {
		return fmt.Errorf("engine: output slice has %d entries for %d nodes", len(out), req.Circuit.N())
	}
	return nil
}
