// The five built-in Engine implementations (epp-batch, epp-scalar,
// monte-carlo, enum, bdd) and the shared atomic-cursor parallelSweep they
// distribute batches with.

package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bddsp"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/netlist"
	"repro/internal/seq"
	"repro/internal/simulate"
)

func init() {
	Register(batchEngine{})
	Register(scalarEngine{})
	Register(mcEngine{})
	Register(enumEngine{})
	Register(bddEngine{})
}

// resolveWorkers maps the Request.Workers convention (0 = all cores) to a
// concrete goroutine count.
func resolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// parallelSweep partitions [0, n) into fixed chunk-aligned batches claimed
// from a lock-free atomic cursor by workers goroutines, each running its own
// do closure from newWorker. Because the partitioning depends only on chunk,
// every engine built on it produces bit-identical results at any worker
// count. Cancellation is checked before each claim; onBatch errors abort all
// workers. onProgress, when non-nil, observes the accumulated finished-site
// count after each batch, serialized under the same mutex as onBatch. With
// workers == 1 the sweep is strictly ordered, which is what the streaming
// API relies on.
func parallelSweep(ctx context.Context, n, chunk, workers int, onBatch func(lo, hi int) error, onProgress func(done, total int), newWorker func() (func(lo, hi int) error, error)) error {
	if workers > (n+chunk-1)/chunk {
		workers = (n + chunk - 1) / chunk
	}
	if workers < 1 {
		workers = 1
	}
	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
		mu     sync.Mutex
		abort  atomic.Bool
		first  error
		done   int
	)
	fail := func(err error) {
		mu.Lock()
		if first == nil {
			first = err
		}
		mu.Unlock()
		abort.Store(true)
	}
	for w := 0; w < workers; w++ {
		do, err := newWorker()
		if err != nil {
			fail(err)
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if abort.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				lo := int(cursor.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				if err := do(lo, hi); err != nil {
					fail(err)
					return
				}
				if onBatch != nil || onProgress != nil {
					mu.Lock()
					err := first
					if err == nil && onBatch != nil {
						err = onBatch(lo, hi)
					}
					if err == nil && onProgress != nil {
						done += hi - lo
						onProgress(done, n)
					}
					mu.Unlock()
					if err != nil {
						fail(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// batchEngine is the production EPP backend: core.BatchAnalyzer sweeping up
// to 64 error sites per union-cone pass, optionally across workers.
type batchEngine struct{}

func (batchEngine) Name() string { return "epp-batch" }
func (batchEngine) Class() Class { return ClassAnalytic }

func (batchEngine) PSensitizedAll(ctx context.Context, req *Request, out []float64) error {
	if err := checkOut(req, out); err != nil {
		return err
	}
	sp := req.sp()
	c := req.Circuit
	if req.Frames > 1 {
		if req.Rules != core.RulesClosedForm {
			return fmt.Errorf("engine: Rules %v requires a single-frame analysis", req.Rules)
		}
		// Batched multi-cycle composition distributed like the single-frame
		// sweep: each worker owns a seq analyzer (per-analyzer lookahead
		// memo; not safe for concurrent use) and claims batch-width chunks.
		// PDetectBatchWeighted is packing-invariant and the composition —
		// including the latch-window strike weight — is deterministic
		// arithmetic, so results are bit-identical at any worker count; the
		// first worker reuses the prototype (newWorker is called serially
		// before the goroutines start).
		w0 := req.strikeWeight()
		proto, err := seq.New(c, sp)
		if err != nil {
			return err
		}
		chunk := proto.BatchWidth()
		var order []netlist.ID
		if !req.OrderedSweep {
			order = proto.Schedule().Order
		}
		protoUsed := false
		return parallelSweep(ctx, c.N(), chunk, resolveWorkers(req.Workers), req.OnBatch, req.OnProgress,
			func() (func(lo, hi int) error, error) {
				sa := proto
				if protoUsed {
					var err error
					if sa, err = seq.New(c, sp); err != nil {
						return nil, err
					}
				}
				protoUsed = true
				sites := make([]netlist.ID, 0, chunk)
				tmp := make([]float64, chunk)
				return func(lo, hi int) error {
					batch := order
					if batch != nil {
						batch = order[lo:hi]
					} else {
						sites = sites[:0]
						for id := lo; id < hi; id++ {
							sites = append(sites, netlist.ID(id))
						}
						batch = sites
					}
					sa.PDetectBatchWeighted(batch, req.Frames, w0, tmp[:hi-lo])
					for i, site := range batch {
						out[site] = tmp[i]
					}
					return nil
				}, nil
			})
	}
	proto, err := core.New(c, sp, core.Options{Rules: req.Rules, BatchWidth: req.BatchWidth})
	if err != nil {
		return err
	}
	chunk := proto.Batch().Width()
	// Sweep order: cone-locality schedule positions by default, so lanes in
	// one batch share most of their union cone; ascending node IDs when the
	// caller needs OnBatch's out[lo:hi] ranges to be ID ranges (streaming).
	// The kernel is packing-invariant, so both orders produce bit-identical
	// results.
	var order []netlist.ID
	if !req.OrderedSweep {
		order = proto.Schedule().Order
	}
	return parallelSweep(ctx, c.N(), chunk, resolveWorkers(req.Workers), req.OnBatch, req.OnProgress,
		func() (func(lo, hi int) error, error) {
			local := proto.Clone()
			eng := local.Batch()
			sites := make([]netlist.ID, 0, eng.Width())
			tmp := make([]float64, eng.Width())
			var prevSwept, prevSites int64
			return func(lo, hi int) error {
				if order != nil {
					batch := order[lo:hi]
					eng.PSensitizedBatch(batch, tmp[:hi-lo])
					for i, site := range batch {
						out[site] = tmp[i]
					}
				} else {
					sites = sites[:0]
					for id := lo; id < hi; id++ {
						sites = append(sites, netlist.ID(id))
					}
					eng.PSensitizedBatch(sites, out[lo:hi])
				}
				if req.Stats != nil {
					swept, ns := eng.Counters()
					req.Stats.SweptNodes.Add(swept - prevSwept)
					req.Stats.Sites.Add(ns - prevSites)
					prevSwept, prevSites = swept, ns
				}
				return nil
			}, nil
		})
}

// scalarEngine is the executable specification: one scalar EPP sweep per
// site (core.Analyzer.EPP), against which the batched engine is verified.
type scalarEngine struct{}

func (scalarEngine) Name() string { return "epp-scalar" }
func (scalarEngine) Class() Class { return ClassAnalytic }

func (scalarEngine) PSensitizedAll(ctx context.Context, req *Request, out []float64) error {
	if err := checkOut(req, out); err != nil {
		return err
	}
	sp := req.sp()
	c := req.Circuit
	if req.Frames > 1 {
		if req.Rules != core.RulesClosedForm {
			return fmt.Errorf("engine: Rules %v requires a single-frame analysis", req.Rules)
		}
		// Per-site multi-cycle composition over scalar strike sweeps. Each
		// worker owns its own seq analyzer (the flip-flop lookahead vector
		// is memoized per analyzer and the type is not safe for concurrent
		// use); the composition — including the latch-window strike weight
		// — is deterministic arithmetic, so results are identical at any
		// worker count.
		w0 := req.strikeWeight()
		return parallelSweep(ctx, c.N(), 64, resolveWorkers(req.Workers), req.OnBatch, req.OnProgress,
			func() (func(lo, hi int) error, error) {
				sa, err := seq.New(c, sp)
				if err != nil {
					return nil, err
				}
				return func(lo, hi int) error {
					for id := lo; id < hi; id++ {
						out[id] = sa.PDetectWeighted(netlist.ID(id), req.Frames, w0)
					}
					return nil
				}, nil
			})
	}
	return parallelSweep(ctx, c.N(), 64, resolveWorkers(req.Workers), req.OnBatch, req.OnProgress,
		func() (func(lo, hi int) error, error) {
			an, err := core.New(c, sp, core.Options{Rules: req.Rules})
			if err != nil {
				return nil, err
			}
			return func(lo, hi int) error {
				for id := lo; id < hi; id++ {
					out[id] = an.EPP(netlist.ID(id)).PSensitized
				}
				return nil
			}, nil
		})
}

// mcEngine is the random-vector fault-injection baseline, built on the
// shared-good-sim batched kernels: the outer loop claims 64-vector words
// from an atomic cursor, each word costs exactly one full-circuit good
// simulation per frame shared by every error site, and faulty re-simulation
// runs over cone-locality site groups. A single-frame request runs
// simulate.MCBatch (P_sensitized: flip-flop captures count as detections);
// Frames > 1 runs the frame-unrolled simulate.MCSeqBatch (multi-cycle
// detection probability: corrupted flip-flop state carries across clock
// edges and only primary-output differences count — the same quantity the
// analytic engines compute through internal/seq). Vectors follow the
// shared-stream regime (word-indexed seeding), so results are identical at
// any worker count; see MCOptions.SharedVectors and SeqOptions.SharedVectors
// for the reproducibility contracts. Because the sweep is word-major,
// per-site results all finalize together: OnBatch calls arrive after the
// last word, tiling [0, N) in order, while OnProgress ticks per completed
// word and cancellation stays word-granular.
type mcEngine struct{}

func (mcEngine) Name() string { return "monte-carlo" }
func (mcEngine) Class() Class { return ClassSampling }

func (mcEngine) PSensitizedAll(ctx context.Context, req *Request, out []float64) error {
	if err := checkOut(req, out); err != nil {
		return err
	}
	c := req.Circuit
	opt := req.mcOptions()
	if req.OnProgress != nil {
		// Word-granular progress, scaled to node units: after word k of W
		// the sweep has done k/W of its total work on every site.
		n := c.N()
		opt.OnWord = func(done, total int) { req.OnProgress(n*done/total, n) }
	}
	var st simulate.MCStats
	if req.Frames > 1 {
		mb := simulate.NewMCSeqBatch(c, opt, req.Frames)
		res, err := mb.PDetectAll(ctx, resolveWorkers(req.Workers))
		if err != nil {
			return err
		}
		if req.Latch != nil {
			// Latch-window weighting, composed from the kernel's integer
			// frame counters — the same quantity the analytic engines
			// compute by scaling the strike term of the seq composition.
			w0 := req.strikeWeight()
			for id := range res {
				out[id] = res[id].PDetectWeighted(w0)
			}
		} else {
			for id := range res {
				out[id] = res[id].PDetect
			}
		}
		st = mb.Stats()
	} else {
		mb := simulate.NewMCBatch(c, opt)
		res, err := mb.EPPAll(ctx, resolveWorkers(req.Workers))
		if err != nil {
			return err
		}
		for id := range res {
			out[id] = res[id].PSensitized
		}
		st = mb.Stats()
	}
	if req.Stats != nil {
		req.Stats.GoodSims.Add(st.GoodSims)
		req.Stats.Words.Add(st.Words)
		req.Stats.SweptNodes.Add(st.SweptMembers)
		req.Stats.Sites.Add(st.Sites)
	}
	if req.OnBatch != nil {
		for lo := 0; lo < c.N(); lo += 64 {
			hi := lo + 64
			if hi > c.N() {
				hi = c.N()
			}
			if err := req.OnBatch(lo, hi); err != nil {
				return err
			}
		}
	}
	return nil
}

// enumEngine computes ground truth by exhaustive input enumeration (uniform
// sources, at most exact.MaxSupport of them). Chunk size 1: each site is
// 2^sources simulations, so cancellation is checked per site.
type enumEngine struct{}

func (enumEngine) Name() string { return "enum" }
func (enumEngine) Class() Class { return ClassExact }

func (enumEngine) PSensitizedAll(ctx context.Context, req *Request, out []float64) error {
	if err := checkOut(req, out); err != nil {
		return err
	}
	if req.Frames > 1 {
		return fmt.Errorf("engine: enum does not support multi-cycle frames")
	}
	if req.Bias != nil {
		return fmt.Errorf("engine: enum supports only uniform sources (Bias must be nil; use the bdd engine for biased sources)")
	}
	c := req.Circuit
	return parallelSweep(ctx, c.N(), 1, resolveWorkers(req.Workers), req.OnBatch, req.OnProgress,
		func() (func(lo, hi int) error, error) {
			return func(lo, hi int) error {
				for id := lo; id < hi; id++ {
					p, err := exact.PSensitized(c, netlist.ID(id))
					if err != nil {
						return err
					}
					out[id] = p
				}
				return nil
			}, nil
		})
}

// bddEngine computes ground truth with a BDD good/faulty miter per site,
// with per-source bias and a node budget that turns blow-ups into errors.
type bddEngine struct{}

func (bddEngine) Name() string { return "bdd" }
func (bddEngine) Class() Class { return ClassExact }

func (bddEngine) PSensitizedAll(ctx context.Context, req *Request, out []float64) error {
	if err := checkOut(req, out); err != nil {
		return err
	}
	if req.Frames > 1 {
		return fmt.Errorf("engine: bdd does not support multi-cycle frames")
	}
	c := req.Circuit
	return parallelSweep(ctx, c.N(), 1, resolveWorkers(req.Workers), req.OnBatch, req.OnProgress,
		func() (func(lo, hi int) error, error) {
			return func(lo, hi int) error {
				for id := lo; id < hi; id++ {
					p, err := bddsp.PSensitized(c, netlist.ID(id), req.Bias, req.BDDBudget)
					if err != nil {
						return err
					}
					out[id] = p
				}
				return nil
			}, nil
		})
}
