// The five built-in Engine implementations (epp-batch, epp-scalar,
// monte-carlo, enum, bdd), all running on the shared resilient sweep
// drivers (see resilience.go): atomic-cursor span distribution, panic
// isolation, checkpoint/resume, deadlines and node budgets.

package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"repro/internal/bddsp"
	"repro/internal/core"
	"repro/internal/eco"
	"repro/internal/exact"
	"repro/internal/netlist"
	"repro/internal/resume"
	"repro/internal/seq"
	"repro/internal/simulate"
)

func init() {
	Register(batchEngine{})
	Register(scalarEngine{})
	Register(mcEngine{})
	Register(enumEngine{})
	Register(bddEngine{})
}

// resolveWorkers maps the Request.Workers convention (0 = all cores) to a
// concrete goroutine count.
func resolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// batchEngine is the production EPP backend: core.BatchAnalyzer sweeping up
// to 64 error sites per union-cone pass, optionally across workers.
type batchEngine struct{}

func (batchEngine) Name() string { return "epp-batch" }
func (batchEngine) Class() Class { return ClassAnalytic }

func (batchEngine) PSensitizedAll(ctx context.Context, req *Request, out []float64) error {
	if err := checkOut(req, out); err != nil {
		return err
	}
	sp := req.sp()
	c := req.Circuit
	if req.Frames > 1 {
		if req.Rules != core.RulesClosedForm {
			return fmt.Errorf("engine: Rules %v requires a single-frame analysis", req.Rules)
		}
		// Batched multi-cycle composition distributed like the single-frame
		// sweep: each worker owns a seq analyzer (per-analyzer lookahead
		// memo; not safe for concurrent use) and claims batch-width chunks.
		// PDetectBatchWeighted is packing-invariant and the composition —
		// including the latch-window strike weight — is deterministic
		// arithmetic, so results are bit-identical at any worker count; the
		// first worker reuses the prototype (newWorker is called serially
		// before the goroutines start).
		w0 := req.strikeWeight()
		proto, err := seq.New(c, sp)
		if err != nil {
			return err
		}
		chunk := proto.BatchWidth()
		var order []netlist.ID
		if !req.sweepOrdered() {
			order = proto.Schedule().Order
		}
		protoUsed := false
		return siteSweep(ctx, req, "epp-batch", sp, chunk, out,
			func() (func(lo, hi int) error, error) {
				sa := proto
				if protoUsed {
					var err error
					if sa, err = seq.New(c, sp); err != nil {
						return nil, err
					}
				}
				protoUsed = true
				sites := make([]netlist.ID, 0, chunk)
				tmp := make([]float64, chunk)
				return func(lo, hi int) error {
					batch := order
					if batch != nil {
						batch = order[lo:hi]
					} else {
						sites = sites[:0]
						for id := lo; id < hi; id++ {
							sites = append(sites, netlist.ID(id))
						}
						batch = sites
					}
					sa.PDetectBatchWeighted(batch, req.Frames, w0, tmp[:hi-lo])
					for i, site := range batch {
						out[site] = tmp[i]
					}
					return nil
				}, nil
			})
	}
	proto, err := core.New(c, sp, core.Options{Rules: req.Rules, BatchWidth: req.BatchWidth})
	if err != nil {
		return err
	}
	chunk := proto.Batch().Width()
	// Sweep order: cone-locality schedule positions by default, so lanes in
	// one batch share most of their union cone; ascending node IDs when the
	// caller needs OnBatch's out[lo:hi] ranges to be ID ranges (streaming,
	// and any checkpointed sweep — committed ranges must be ID ranges). The
	// kernel is packing-invariant, so both orders produce bit-identical
	// results.
	var order []netlist.ID
	if !req.sweepOrdered() {
		order = proto.Schedule().Order
	}
	return siteSweep(ctx, req, "epp-batch", sp, chunk, out,
		func() (func(lo, hi int) error, error) {
			local := proto.Clone()
			eng := local.Batch()
			sites := make([]netlist.ID, 0, eng.Width())
			tmp := make([]float64, eng.Width())
			var prevSwept int64
			return func(lo, hi int) error {
				if order != nil {
					batch := order[lo:hi]
					eng.PSensitizedBatch(batch, tmp[:hi-lo])
					for i, site := range batch {
						out[site] = tmp[i]
					}
				} else {
					sites = sites[:0]
					for id := lo; id < hi; id++ {
						sites = append(sites, netlist.ID(id))
					}
					eng.PSensitizedBatch(sites, out[lo:hi])
				}
				if req.Stats != nil {
					// Sites are counted generically by siteSweep; only the
					// kernel's union-cone member count comes from here.
					swept, _ := eng.Counters()
					req.Stats.SweptNodes.Add(swept - prevSwept)
					prevSwept = swept
				}
				return nil
			}, nil
		})
}

// scalarEngine is the executable specification: one scalar EPP sweep per
// site (core.Analyzer.EPP), against which the batched engine is verified.
type scalarEngine struct{}

func (scalarEngine) Name() string { return "epp-scalar" }
func (scalarEngine) Class() Class { return ClassAnalytic }

func (scalarEngine) PSensitizedAll(ctx context.Context, req *Request, out []float64) error {
	if err := checkOut(req, out); err != nil {
		return err
	}
	sp := req.sp()
	c := req.Circuit
	if req.Frames > 1 {
		if req.Rules != core.RulesClosedForm {
			return fmt.Errorf("engine: Rules %v requires a single-frame analysis", req.Rules)
		}
		// Per-site multi-cycle composition over scalar strike sweeps. Each
		// worker owns its own seq analyzer (the flip-flop lookahead vector
		// is memoized per analyzer and the type is not safe for concurrent
		// use); the composition — including the latch-window strike weight
		// — is deterministic arithmetic, so results are identical at any
		// worker count.
		w0 := req.strikeWeight()
		return siteSweep(ctx, req, "epp-scalar", sp, 64, out,
			func() (func(lo, hi int) error, error) {
				sa, err := seq.New(c, sp)
				if err != nil {
					return nil, err
				}
				return func(lo, hi int) error {
					for id := lo; id < hi; id++ {
						out[id] = sa.PDetectWeighted(netlist.ID(id), req.Frames, w0)
					}
					return nil
				}, nil
			})
	}
	return siteSweep(ctx, req, "epp-scalar", sp, 64, out,
		func() (func(lo, hi int) error, error) {
			an, err := core.New(c, sp, core.Options{Rules: req.Rules})
			if err != nil {
				return nil, err
			}
			return func(lo, hi int) error {
				for id := lo; id < hi; id++ {
					out[id] = an.EPP(netlist.ID(id)).PSensitized
				}
				return nil
			}, nil
		})
}

// mcEngine is the random-vector fault-injection baseline, built on the
// shared-good-sim batched kernels: the outer loop claims 64-vector words
// from an atomic cursor, each word costs exactly one full-circuit good
// simulation per frame shared by every error site, and faulty re-simulation
// runs over cone-locality site groups. A single-frame request runs
// simulate.MCBatch (P_sensitized: flip-flop captures count as detections);
// Frames > 1 runs the frame-unrolled simulate.MCSeqBatch (multi-cycle
// detection probability: corrupted flip-flop state carries across clock
// edges and only primary-output differences count — the same quantity the
// analytic engines compute through internal/seq). Vectors follow the
// shared-stream regime (word-indexed seeding), so results are identical at
// any worker count; see MCOptions.SharedVectors and SeqOptions.SharedVectors
// for the reproducibility contracts. Because the sweep is word-major,
// per-site results all finalize together: OnBatch calls arrive after the
// last word, tiling [0, N) in order, while OnProgress ticks per completed
// word and cancellation stays word-granular.
//
// Resilience follows the word-major shape: a checkpoint commits completed
// words with the kernel's integer counters (per-word merge regime), the
// MaxSweepNodes budget maps to a word budget, and kernel or callback panics
// surface as *SweepPanicError with the failing word.
type mcEngine struct{}

func (mcEngine) Name() string { return "monte-carlo" }
func (mcEngine) Class() Class { return ClassSampling }

func (mcEngine) PSensitizedAll(ctx context.Context, req *Request, out []float64) error {
	if err := checkOut(req, out); err != nil {
		return err
	}
	c := req.Circuit
	n := c.N()
	if req.SiteHi > req.SiteLo {
		// The shared-good-sim kernel is word-major: each 64-vector word costs
		// one full-circuit good simulation amortized across every site, so a
		// site-range shard would re-pay all good simulations per shard —
		// sharding by site only multiplies work. The coordinator runs sampling
		// requests whole instead.
		return fmt.Errorf("engine: monte-carlo does not support a site-range shard (the word-major shared-good-sim kernel amortizes good simulations across all sites; shard by seed or run whole instead)")
	}
	if err := req.checkMemo(); err != nil {
		return err
	}
	var (
		memoKey    string
		memoHashes []eco.Hash
	)
	if req.Memo != nil {
		// All-or-nothing reuse: the shared-good-sim kernel prices a sweep by
		// vector words (one good simulation per word amortized across every
		// site), so skipping a site subset saves nothing — a full-circuit
		// hit skips the whole sweep, any miss recomputes every site and
		// stores the complete vector back. The memo key folds in the ordered
		// source-ID list (see Request.memoKey), so a source-set edit — which
		// shifts every later source's vector stream — can never alias.
		memoHashes = req.Memo.Hashes(c, req.memoFrames())
		memoKey = req.memoKey("monte-carlo", true)
		if _, hits := req.Memo.Lookup(memoKey, memoHashes, out); hits == n {
			if req.Stats != nil {
				req.Stats.MemoHits.Add(int64(n))
			}
			if req.OnProgress != nil {
				req.OnProgress(n, n)
			}
			if req.OnBatch != nil {
				for lo := 0; lo < n; lo += 64 {
					hi := lo + 64
					if hi > n {
						hi = n
					}
					if err := callOnBatch(req.OnBatch, lo, hi); err != nil {
						return wrapSweepErr("monte-carlo", n, n, err)
					}
				}
			}
			return nil
		}
		// Partial hits were written into out; the full recompute below
		// overwrites every entry, so nothing stale can survive.
	}
	opt := req.mcOptions()
	words := opt.Words()
	var wordsDone int // last OnWord done count, for partial-progress metadata
	onProgress := req.OnProgress
	opt.OnWord = func(done, total int) {
		wordsDone = done
		if onProgress != nil {
			// Word-granular progress, scaled to node units: after word k of
			// W the sweep has done k/W of its total work on every site.
			onProgress(n*done/total, n)
		}
	}
	var rs *resume.State
	if req.Resume != nil {
		// Corrupt checkpoints are quarantined and the sweep restarts fresh;
		// see the site-major path for the rationale.
		var err error
		rs, _, err = req.Resume.ArmRecovering("monte-carlo", req.Fingerprint("monte-carlo", nil), resume.KindWords, words)
		if err != nil {
			return err
		}
		opt.Resume = &simulate.Resume{Skip: rs.DoneMask(), Counters: countersIn(rs.Counters())}
		opt.OnCommit = func(word int, snap func() simulate.Counters) error {
			return rs.CommitWord(word, func() resume.Counters { return countersOut(snap()) })
		}
		opt.OnAbort = func(snap simulate.Counters) {
			// The interval cadence may not have written the last commits;
			// persist the final consistent partial state so the abort error's
			// "resume from the checkpoint" contract holds. The primary error
			// is already on its way to the caller — a failed best-effort
			// flush must not mask it.
			_ = rs.FlushCounters(countersOut(snap))
		}
		wordsDone = rs.DoneUnits()
	}
	if req.MaxSweepNodes > 0 {
		// Map the node budget to completed words: one word advances every
		// site by one 64-vector step, i.e. words/N of the sweep's node
		// units each — stop at the first word boundary at or past the
		// budget, like the site-major engines stop at a batch boundary.
		maxNew := (req.MaxSweepNodes*words + n - 1) / n
		if maxNew < 1 {
			maxNew = 1
		}
		opt.MaxNewWords = maxNew
	}
	finish := func(err error) error {
		if err == nil {
			return nil
		}
		var pe *simulate.PanicError
		if errors.As(err, &pe) {
			return &SweepPanicError{Engine: "monte-carlo", Unit: "word", Lo: pe.Word, Hi: pe.Word + 1, Value: pe.Value, Stack: pe.Stack}
		}
		if errors.Is(err, simulate.ErrWordBudget) {
			err = ErrBudget
		}
		return wrapSweepErr("monte-carlo", n, n*wordsDone/words, err)
	}
	var st simulate.MCStats
	fin := resume.Counters{} // final integer counters, for the completion flush
	if req.Frames > 1 {
		mb := simulate.NewMCSeqBatch(c, opt, req.Frames)
		res, err := mb.PDetectAll(ctx, resolveWorkers(req.Workers))
		if err != nil {
			return finish(err)
		}
		if req.Latch != nil {
			// Latch-window weighting, composed from the kernel's integer
			// frame counters — the same quantity the analytic engines
			// compute by scaling the strike term of the seq composition.
			w0 := req.strikeWeight()
			for id := range res {
				out[id] = res[id].PDetectWeighted(w0)
			}
		} else {
			for id := range res {
				out[id] = res[id].PDetect
			}
		}
		st = mb.Stats()
		if rs != nil {
			fin.Detected = make([]int64, n)
			fin.Later = make([]int64, n)
			fin.Frames = make([]int64, req.Frames*n)
			for id := range res {
				fin.Detected[id] = int64(res[id].Detected)
				fin.Later[id] = int64(res[id].DetectedLater)
			}
			for f := 0; f < req.Frames; f++ {
				copy(fin.Frames[f*n:(f+1)*n], mb.FrameDetected(f))
			}
		}
	} else {
		mb := simulate.NewMCBatch(c, opt)
		res, err := mb.EPPAll(ctx, resolveWorkers(req.Workers))
		if err != nil {
			return finish(err)
		}
		for id := range res {
			out[id] = res[id].PSensitized
		}
		st = mb.Stats()
		if rs != nil {
			fin.Detected = make([]int64, n)
			for id := range res {
				fin.Detected[id] = int64(res[id].Detected)
			}
		}
	}
	if rs != nil {
		// The sweep completed: persist the final all-words state — the
		// counters reconstructed from the kernel's integer results cover
		// every word (restored and new) — so a re-run restores the full
		// result without any simulation.
		fin.Words, fin.GoodSims, fin.LaneSims, fin.SweptMembers = st.Words, st.GoodSims, st.LaneSims, st.SweptMembers
		if err := rs.FlushCounters(fin); err != nil {
			return err
		}
	}
	if req.Stats != nil {
		req.Stats.GoodSims.Add(st.GoodSims)
		req.Stats.Words.Add(st.Words)
		req.Stats.SweptNodes.Add(st.SweptMembers)
		req.Stats.Sites.Add(st.Sites)
	}
	if req.Memo != nil {
		req.Memo.Store(memoKey, memoHashes, 0, n, out)
		if err := req.Memo.Flush(); err != nil {
			return err
		}
	}
	if req.OnBatch != nil {
		for lo := 0; lo < c.N(); lo += 64 {
			hi := lo + 64
			if hi > c.N() {
				hi = c.N()
			}
			if err := callOnBatch(req.OnBatch, lo, hi); err != nil {
				return wrapSweepErr("monte-carlo", n, n, err)
			}
		}
	}
	return nil
}

// countersIn converts a restored checkpoint counter snapshot to the kernel
// type (nil-safe).
func countersIn(c *resume.Counters) *simulate.Counters {
	if c == nil {
		return nil
	}
	return &simulate.Counters{
		Detected: c.Detected, Later: c.Later, Frames: c.Frames,
		Words: c.Words, GoodSims: c.GoodSims, LaneSims: c.LaneSims, SweptMembers: c.SweptMembers,
	}
}

// countersOut converts a kernel counter snapshot to the checkpoint type.
func countersOut(c simulate.Counters) resume.Counters {
	return resume.Counters{
		Detected: c.Detected, Later: c.Later, Frames: c.Frames,
		Words: c.Words, GoodSims: c.GoodSims, LaneSims: c.LaneSims, SweptMembers: c.SweptMembers,
	}
}

// enumEngine computes ground truth by exhaustive input enumeration (uniform
// sources, at most exact.MaxSupport of them). Chunk size 1: each site is
// 2^sources simulations, so cancellation is checked per site.
type enumEngine struct{}

func (enumEngine) Name() string { return "enum" }
func (enumEngine) Class() Class { return ClassExact }

func (enumEngine) PSensitizedAll(ctx context.Context, req *Request, out []float64) error {
	if err := checkOut(req, out); err != nil {
		return err
	}
	if req.Frames > 1 {
		return fmt.Errorf("engine: enum does not support multi-cycle frames")
	}
	if req.Bias != nil {
		return fmt.Errorf("engine: enum supports only uniform sources (Bias must be nil; use the bdd engine for biased sources)")
	}
	c := req.Circuit
	return siteSweep(ctx, req, "enum", nil, 1, out,
		func() (func(lo, hi int) error, error) {
			return func(lo, hi int) error {
				for id := lo; id < hi; id++ {
					p, err := exact.PSensitized(c, netlist.ID(id))
					if err != nil {
						return err
					}
					out[id] = p
				}
				return nil
			}, nil
		})
}

// bddEngine computes ground truth with a BDD good/faulty miter per site,
// with per-source bias and a node budget that turns blow-ups into errors.
type bddEngine struct{}

func (bddEngine) Name() string { return "bdd" }
func (bddEngine) Class() Class { return ClassExact }

func (bddEngine) PSensitizedAll(ctx context.Context, req *Request, out []float64) error {
	if err := checkOut(req, out); err != nil {
		return err
	}
	if req.Frames > 1 {
		return fmt.Errorf("engine: bdd does not support multi-cycle frames")
	}
	c := req.Circuit
	return siteSweep(ctx, req, "bdd", nil, 1, out,
		func() (func(lo, hi int) error, error) {
			return func(lo, hi int) error {
				for id := lo; id < hi; id++ {
					p, err := bddsp.PSensitized(c, netlist.ID(id), req.Bias, req.BDDBudget)
					if err != nil {
						return err
					}
					out[id] = p
				}
				return nil
			}, nil
		})
}
