// Tests for the site-range shard contract the distributed coordinator
// relies on: concatenated shard results are bit-identical to the full
// sweep, out entries outside the range stay untouched, OnBatch/progress
// run in shard units, and the invalid combinations are rejected.

package engine

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/latch"
	"repro/internal/resume"
	"repro/internal/sigprob"
)

// shardCuts returns shard boundaries splitting [0, n) into k uneven ranges —
// uneven on purpose, so span alignment differs from the full sweep's tiling
// and the test exercises packing invariance, not a lucky identical layout.
func shardCuts(n, k int) []int {
	cuts := []int{0}
	for i := 1; i < k; i++ {
		cut := i*n/k + i%2 // jitter off the even split
		if cut <= cuts[len(cuts)-1] {
			cut = cuts[len(cuts)-1] + 1
		}
		if cut > n {
			cut = n
		}
		cuts = append(cuts, cut)
	}
	return append(cuts, n)
}

// TestShardConcatBitIdentical: for every site-major engine, running the
// sweep as k site-range shards (each possibly at a different worker count)
// and concatenating the results reproduces the full-sweep output
// bit-identically, and no shard writes outside its range.
func TestShardConcatBitIdentical(t *testing.T) {
	for _, e := range Engines() {
		if e.Name() == "monte-carlo" {
			continue // word-major: rejects site ranges, covered below
		}
		for _, frames := range []int{1, 4} {
			if frames > 1 && e.Class() != ClassAnalytic {
				continue
			}
			t.Run(e.Name()+"/frames="+itoa(frames), func(t *testing.T) {
				c, sp := engineFixture(t, e.Name())
				var lm *latch.Model
				if frames > 1 {
					lm = &latch.Model{ClockPeriodPs: 1000, WindowPs: 120, PulseWidthPs: 180}
				}
				full := make([]float64, c.N())
				req := &Request{Circuit: c, SP: sp, Frames: frames, Latch: lm}
				if frames == 1 {
					req.Frames = 0
				}
				if err := e.PSensitizedAll(context.Background(), req, full); err != nil {
					t.Fatal(err)
				}
				for _, k := range []int{2, 3} {
					cuts := shardCuts(c.N(), k)
					got := make([]float64, c.N())
					for i := range got {
						got[i] = math.NaN() // sentinel: must survive outside every range
					}
					for s := 0; s+1 < len(cuts); s++ {
						lo, hi := cuts[s], cuts[s+1]
						sreq := &Request{
							Circuit: c, SP: sp, Frames: req.Frames, Latch: lm,
							SiteLo: lo, SiteHi: hi, Workers: 1 + s%3,
						}
						shard := make([]float64, c.N())
						for i := range shard {
							shard[i] = math.NaN()
						}
						if err := e.PSensitizedAll(context.Background(), sreq, shard); err != nil {
							t.Fatalf("shard [%d,%d): %v", lo, hi, err)
						}
						for id := 0; id < c.N(); id++ {
							inside := id >= lo && id < hi
							if inside == math.IsNaN(shard[id]) {
								t.Fatalf("shard [%d,%d) wrote out[%d]=%v, inside=%v", lo, hi, id, shard[id], inside)
							}
						}
						copy(got[lo:hi], shard[lo:hi])
					}
					for id := 0; id < c.N(); id++ {
						if math.Float64bits(got[id]) != math.Float64bits(full[id]) {
							t.Fatalf("k=%d: node %d: shard concat %v != full sweep %v (not bit-identical)", k, id, got[id], full[id])
						}
					}
				}
			})
		}
	}
}

// TestShardCallbacks: under a shard, OnBatch ranges tile exactly
// [SiteLo, SiteHi) and progress counts shard units reaching
// SiteHi−SiteLo exactly at completion.
func TestShardCallbacks(t *testing.T) {
	c, err := gen.ByName("s953")
	if err != nil {
		t.Fatal(err)
	}
	sp := sigprob.Topological(c, sigprob.Config{})
	lo0, hi0 := 37, c.N()-41
	covered := make([]bool, c.N())
	var lastDone, lastTotal int
	req := &Request{
		Circuit: c, SP: sp, SiteLo: lo0, SiteHi: hi0, Workers: 1,
		OnBatch: func(lo, hi int) error {
			if lo < lo0 || hi > hi0 {
				t.Errorf("OnBatch range [%d,%d) escapes shard [%d,%d)", lo, hi, lo0, hi0)
			}
			for id := lo; id < hi; id++ {
				if covered[id] {
					t.Errorf("site %d finalized twice", id)
				}
				covered[id] = true
			}
			return nil
		},
		OnProgress: func(done, total int) { lastDone, lastTotal = done, total },
	}
	e, err := Lookup("epp-batch")
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, c.N())
	if err := e.PSensitizedAll(context.Background(), req, out); err != nil {
		t.Fatal(err)
	}
	for id := lo0; id < hi0; id++ {
		if !covered[id] {
			t.Fatalf("site %d never finalized", id)
		}
	}
	if lastDone != hi0-lo0 || lastTotal != hi0-lo0 {
		t.Errorf("final progress %d/%d, want %d/%d (shard units)", lastDone, lastTotal, hi0-lo0, hi0-lo0)
	}
}

// TestShardValidation: inverted and out-of-bounds ranges, a shard carrying
// its own checkpoint, and a monte-carlo shard are all rejected with
// descriptive errors; the fingerprint ignores the range so every shard of a
// sweep fingerprints as that sweep.
func TestShardValidation(t *testing.T) {
	c, err := gen.ByName("s953")
	if err != nil {
		t.Fatal(err)
	}
	sp := sigprob.Topological(c, sigprob.Config{})
	eb, err := Lookup("epp-batch")
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, c.N())

	bad := []Request{
		{Circuit: c, SP: sp, SiteLo: 10, SiteHi: 5},
		{Circuit: c, SP: sp, SiteLo: -3, SiteHi: 5},
		{Circuit: c, SP: sp, SiteLo: 0, SiteHi: c.N() + 1},
	}
	for i := range bad {
		if err := eb.PSensitizedAll(context.Background(), &bad[i], out); err == nil {
			t.Errorf("range [%d,%d): sweep succeeded, want error", bad[i].SiteLo, bad[i].SiteHi)
		}
	}

	ck := resume.New(t.TempDir()+"/shard.ckpt", 0)
	withCkpt := &Request{Circuit: c, SP: sp, SiteLo: 0, SiteHi: 8, Resume: ck}
	if err := eb.PSensitizedAll(context.Background(), withCkpt, out); err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Errorf("shard+checkpoint: err = %v, want a checkpoint-refusal error", err)
	}

	mc, err := Lookup("monte-carlo")
	if err != nil {
		t.Fatal(err)
	}
	mcReq := &Request{Circuit: c, SiteLo: 0, SiteHi: 8, Vectors: 128}
	if err := mc.PSensitizedAll(context.Background(), mcReq, out); err == nil || !strings.Contains(err.Error(), "monte-carlo") {
		t.Errorf("monte-carlo shard: err = %v, want a rejection naming the engine", err)
	}

	fullReq := &Request{Circuit: c, SP: sp}
	shardReq := &Request{Circuit: c, SP: sp, SiteLo: 11, SiteHi: 200, Workers: 7}
	if fullReq.Fingerprint("epp-batch", sp) != shardReq.Fingerprint("epp-batch", sp) {
		t.Error("shard fingerprints differently from its full sweep; coordinator commit would be refused")
	}
}

// TestShardCancellation: a canceled shard surfaces a *PartialError whose
// progress metadata is in shard units.
func TestShardCancellation(t *testing.T) {
	c, err := gen.ByName("s953")
	if err != nil {
		t.Fatal(err)
	}
	sp := sigprob.Topological(c, sigprob.Config{})
	eb, err := Lookup("epp-batch")
	if err != nil {
		t.Fatal(err)
	}
	lo0, hi0 := 16, c.N()-16
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := &Request{
		Circuit: c, SP: sp, SiteLo: lo0, SiteHi: hi0, Workers: 1,
		OnProgress: func(done, total int) {
			if done > 0 {
				cancel()
			}
		},
	}
	out := make([]float64, c.N())
	err = eb.PSensitizedAll(ctx, req, out)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *PartialError", err)
	}
	if pe.Total != hi0-lo0 || pe.Done < 1 || pe.Done >= pe.Total {
		t.Errorf("PartialError %d/%d, want mid-shard stop of %d units", pe.Done, pe.Total, hi0-lo0)
	}
}
