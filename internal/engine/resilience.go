// The engines' resilience layer: the span-based parallel sweep driver with
// panic isolation, the checkpoint/resume plumbing shared by the site-major
// engines, node budgets, and the structured errors partial sweeps surface.

package engine

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/eco"
	"repro/internal/resume"
)

// ErrBudget is the sentinel wrapped by a *PartialError when a sweep stops at
// its MaxSweepNodes budget; test with errors.Is.
var ErrBudget = errors.New("engine: sweep node budget exhausted")

// PartialError reports a sweep that stopped before completion for an
// orderly reason — cancellation, a deadline, or the node budget — together
// with how much work had finalized. Err is the underlying cause
// (context.Canceled, context.DeadlineExceeded or ErrBudget), reachable
// through errors.Is/As via Unwrap. When the request carried a checkpoint,
// the finalized work is durable: re-running the same request resumes from
// Done units.
type PartialError struct {
	Done  int // node units finalized (restored units included)
	Total int // node units of the full sweep
	Err   error
}

// Error summarizes the stop and its progress.
func (e *PartialError) Error() string {
	return fmt.Sprintf("engine: sweep stopped after %d/%d node units: %v", e.Done, e.Total, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *PartialError) Unwrap() error { return e.Err }

// SweepPanicError is a panic recovered from inside a sweep — a worker
// goroutine processing a batch or word, or a user callback
// (OnBatch/OnProgress/OnWord) — converted to a returned error so a buggy
// callback or one poisoned input aborts the sweep cleanly instead of
// crashing the process.
type SweepPanicError struct {
	Engine string // registry name of the engine whose sweep panicked
	Unit   string // failing unit kind: "batch", "word", "setup" or "sweep"
	Lo, Hi int    // failing unit range: [Lo, Hi) sites, or word index Lo; -1 if unknown
	Value  any    // the recovered panic value
	Stack  []byte // stack of the panicking goroutine at recovery
}

// Error summarizes the panic; the full stack is in Stack.
func (e *SweepPanicError) Error() string {
	where := ""
	switch {
	case e.Unit == "word" && e.Lo >= 0:
		where = fmt.Sprintf(" at word %d", e.Lo)
	case e.Lo >= 0:
		where = fmt.Sprintf(" at %s [%d,%d)", e.Unit, e.Lo, e.Hi)
	}
	return fmt.Sprintf("engine: panic in %s sweep%s: %v", e.Engine, where, e.Value)
}

// Fingerprint canonically hashes everything that determines the request's
// results for the named engine: the circuit's content hash plus every
// result-affecting option. Pure scheduling knobs — Workers, BatchWidth,
// OrderedSweep, and the SiteLo/SiteHi shard range — are deliberately
// excluded: the engines guarantee results bit-identical across them, so a
// checkpoint written at one worker count resumes correctly at another, and
// shards of one logical sweep computed on different machines all
// fingerprint as that sweep — which is what lets a distributed coordinator
// commit returned shard ranges against a single full-sweep checkpoint. sp
// is the resolved signal probability vector for analytic engines (nil
// otherwise) so that an SP-affecting change upstream is caught even though
// SP is computed, not configured.
func (r *Request) Fingerprint(engineName string, sp []float64) string {
	h := sha256.New()
	var buf [8]byte
	wInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wF64 := func(v float64) { wInt(int64(math.Float64bits(v))) }
	wStr := func(s string) {
		wInt(int64(len(s)))
		h.Write([]byte(s))
	}
	wVec := func(v []float64) {
		wInt(int64(len(v)))
		for _, x := range v {
			wF64(x)
		}
	}
	wStr(engineName)
	wStr(r.Circuit.ContentHash())
	wInt(int64(r.Frames))
	wInt(int64(r.Vectors))
	wInt(int64(r.Seed))
	wInt(int64(r.Rules))
	wInt(int64(r.BDDBudget))
	if r.Latch == nil {
		wInt(0)
	} else {
		wInt(1)
		wF64(r.Latch.ClockPeriodPs)
		wF64(r.Latch.WindowPs)
		wF64(r.Latch.PulseWidthPs)
		wF64(r.Latch.AttenuationPerLevel)
	}
	wVec(r.Bias)
	wVec(sp)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// memoKey is the ECO cache's request identity: every result-affecting
// option of Fingerprint except circuit content and the SP vector, which the
// per-site cone hashes replace — that exclusion is what lets results
// transfer between an edited circuit and its base. Requires the Memo
// soundness contract (nil Bias, default topological SP); see Request.Memo.
// Sampling engines additionally fold in the ordered source-ID list: vector
// streams draw per source in global ascending-ID order, so a source-set
// change shifts every later source's draws even when cones are unchanged.
func (r *Request) memoKey(engineName string, sampling bool) string {
	h := sha256.New()
	var buf [8]byte
	wInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wF64 := func(v float64) { wInt(int64(math.Float64bits(v))) }
	wStr := func(s string) {
		wInt(int64(len(s)))
		h.Write([]byte(s))
	}
	wStr("eco-v1")
	wStr(engineName)
	wInt(int64(r.Frames))
	wInt(int64(r.Vectors))
	wInt(int64(r.Seed))
	wInt(int64(r.Rules))
	wInt(int64(r.BDDBudget))
	if r.Latch == nil {
		wInt(0)
	} else {
		wInt(1)
		wF64(r.Latch.ClockPeriodPs)
		wF64(r.Latch.WindowPs)
		wF64(r.Latch.PulseWidthPs)
		wF64(r.Latch.AttenuationPerLevel)
	}
	if sampling {
		srcs := r.Circuit.Sources()
		wInt(int64(len(srcs)))
		for _, id := range srcs {
			wInt(int64(id))
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// memoFrames normalizes the request's frame count for cone hashing.
func (r *Request) memoFrames() int {
	if r.Frames < 1 {
		return 1
	}
	return r.Frames
}

// memoHashes returns the cone hashes of the request's circuit in the flavor
// the named engine is sound under: the analytic (EPP) engines read only
// cone structure plus signal-probability values, so they use the tighter
// SP-flavor digests (sp is the sweep's own vector); sampling and exact
// engines depend on the full backward structure and use the structural
// flavor. See the internal/eco soundness argument.
func (r *Request) memoHashes(engName string, sp []float64) []eco.Hash {
	if e, err := Lookup(engName); err == nil && e.Class() == ClassAnalytic {
		return r.Memo.AnalyticHashes(r.Circuit, r.memoFrames(), sp)
	}
	return r.Memo.Hashes(r.Circuit, r.memoFrames())
}

// checkMemo validates the memo combination rules shared by all engines.
func (r *Request) checkMemo() error {
	if r.Memo == nil {
		return nil
	}
	if r.Resume != nil {
		return fmt.Errorf("engine: Memo cannot combine with Resume (pick one restore source; the ECO cache already persists results)")
	}
	if r.Bias != nil {
		return fmt.Errorf("engine: Memo requires nil Bias (per-site values must be pure functions of cone content; see Request.Memo)")
	}
	return nil
}

// span is one contiguous claimable range of a sweep's unit space.
type span struct{ lo, hi int }

// chunkSpans tiles [lo0, hi0) into chunk-sized spans aligned to lo0 — the
// fresh-sweep work list, identical to the historical atomic-cursor
// partitioning for the full range [0, n), and the shard work list for a
// site-range request.
func chunkSpans(lo0, hi0, chunk int) []span {
	spans := make([]span, 0, (hi0-lo0+chunk-1)/chunk)
	for lo := lo0; lo < hi0; lo += chunk {
		hi := lo + chunk
		if hi > hi0 {
			hi = hi0
		}
		spans = append(spans, span{lo, hi})
	}
	return spans
}

// pendingSpans tiles the complement of the done ranges (sorted, disjoint,
// within [0, n)) into spans of at most chunk units — the resumed-sweep work
// list. Pieces are aligned to the gap starts, not to absolute chunk
// multiples; engines built on this must be packing-invariant (they all
// are).
func pendingSpans(n, chunk int, done []resume.Range) []span {
	var spans []span
	next := 0
	emit := func(lo, hi int) {
		for ; lo+chunk < hi; lo += chunk {
			spans = append(spans, span{lo, lo + chunk})
		}
		if lo < hi {
			spans = append(spans, span{lo, hi})
		}
	}
	for _, r := range done {
		emit(next, r.Lo)
		next = r.Hi
	}
	emit(next, n)
	return spans
}

// sweepSpans is the shared driver of the site-major engines: spans are
// claimed from a lock-free atomic cursor by workers goroutines, each
// running its own do closure from newWorker. Because every engine built on
// it writes per-unit results exactly once, results are bit-identical at any
// worker count and any span partitioning. Cancellation is checked before
// each claim. After each completed span the driver runs the serialized
// report section — onBatch, then progress accounting against doneBase (units
// completed before this call, i.e. restored from a checkpoint), then the
// maxUnits budget check — under one mutex, with panics in callbacks or
// workers recovered into a *SweepPanicError that aborts the sweep. The
// returned done count (doneBase plus units completed here) is valid on
// error paths too, for partial-progress metadata.
func sweepSpans(ctx context.Context, spans []span, total, doneBase, workers, maxUnits int, onBatch func(lo, hi int) error, onProgress func(done, total int), newWorker func() (func(lo, hi int) error, error)) (int, error) {
	if len(spans) == 0 {
		if onProgress != nil && doneBase > 0 {
			onProgress(doneBase, total)
		}
		return doneBase, nil
	}
	if workers > len(spans) {
		workers = len(spans)
	}
	if workers < 1 {
		workers = 1
	}
	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
		mu     sync.Mutex
		abort  atomic.Bool
		first  error
		done   = doneBase
	)
	fail := func(err error) {
		func() {
			mu.Lock()
			defer mu.Unlock()
			if first == nil {
				first = err
			}
		}()
		abort.Store(true)
	}
	// report is the per-span critical section. The deferred recover turns a
	// callback panic into an error while the deferred unlock keeps the
	// mutex released either way — a panicking callback must never leave
	// wg.Wait() deadlocked behind a held lock.
	report := func(lo, hi int) (err error) {
		mu.Lock()
		defer mu.Unlock()
		defer func() {
			if r := recover(); r != nil {
				err = &SweepPanicError{Unit: "batch", Lo: lo, Hi: hi, Value: r, Stack: debug.Stack()}
			}
		}()
		if first != nil {
			return first
		}
		if onBatch != nil {
			if err := onBatch(lo, hi); err != nil {
				return err
			}
		}
		done += hi - lo
		if onProgress != nil {
			onProgress(done, total)
		}
		if maxUnits > 0 && done >= maxUnits && done < total {
			return ErrBudget
		}
		return nil
	}
	for w := 0; w < workers; w++ {
		do, err := newSweepWorker(newWorker)
		if err != nil {
			fail(err)
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			lo, hi := -1, -1
			defer func() {
				if r := recover(); r != nil {
					fail(&SweepPanicError{Unit: "batch", Lo: lo, Hi: hi, Value: r, Stack: debug.Stack()})
				}
			}()
			for {
				if abort.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= len(spans) {
					return
				}
				lo, hi = spans[i].lo, spans[i].hi
				if err := do(lo, hi); err != nil {
					fail(err)
					return
				}
				if err := report(lo, hi); err != nil {
					fail(err)
					return
				}
				lo, hi = -1, -1
			}
		}()
	}
	wg.Wait()
	return done, first
}

// newSweepWorker runs an engine's worker constructor with panic recovery:
// construction happens serially in the caller's goroutine, so a panic there
// (a poisoned circuit, say) must also become an error, not a crash.
func newSweepWorker(newWorker func() (func(lo, hi int) error, error)) (do func(lo, hi int) error, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &SweepPanicError{Unit: "setup", Lo: -1, Hi: -1, Value: r, Stack: debug.Stack()}
		}
	}()
	return newWorker()
}

// wrapSweepErr finalizes a sweep's error for the engine boundary: panic
// errors get the engine name attached; orderly stops (cancellation,
// deadline, budget) are wrapped in a *PartialError carrying the progress
// metadata; everything else — OnBatch user errors in particular — is
// returned verbatim, preserving the documented errors.Is identity.
func wrapSweepErr(engName string, total, done int, err error) error {
	if err == nil {
		return nil
	}
	var pe *SweepPanicError
	if errors.As(err, &pe) {
		if pe.Engine == "" {
			pe.Engine = engName
		}
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, ErrBudget) {
		return &PartialError{Done: done, Total: total, Err: err}
	}
	return err
}

// siteSweep runs a site-major all-sites sweep for an engine with the full
// resilience layer: checkpoint arming and replay, pending-span scheduling,
// per-batch commits, the node budget, and final flush. out must be the
// engine's result vector indexed by sweep unit — which is why engines under
// a checkpoint force ascending-ID order (Request.sweepOrdered): committed
// ranges must be ID ranges to be restorable. sp is the engine's resolved
// signal probability vector (nil for non-analytic engines), consumed by the
// request fingerprint.
func siteSweep(ctx context.Context, req *Request, engName string, sp []float64, chunk int, out []float64, newWorker func() (func(lo, hi int) error, error)) error {
	n := req.Circuit.N()
	lo0, hi0, sharded, err := req.shardRange(n)
	if err != nil {
		return err
	}
	total := hi0 - lo0
	var (
		spans    []span
		rs       *resume.State
		doneBase int
	)
	if err := req.checkMemo(); err != nil {
		return err
	}
	if req.Stats != nil {
		// Count analyzed sites generically: every chunk a worker actually
		// computes (restored sites — checkpoint or memo — are not analyzed,
		// so on a memo-assisted run MemoHits + Sites covers the whole sweep).
		stats, inner := req.Stats, newWorker
		newWorker = func() (func(lo, hi int) error, error) {
			w, err := inner()
			if err != nil {
				return nil, err
			}
			return func(lo, hi int) error {
				if err := w(lo, hi); err != nil {
					return err
				}
				stats.Sites.Add(int64(hi - lo))
				return nil
			}, nil
		}
	}
	onBatch := req.OnBatch
	if sharded {
		if req.Memo != nil {
			return fmt.Errorf("engine: a site-range shard cannot carry an ECO memo cache (the coordinator owns cross-request reuse)")
		}
		// A shard is one slice of a larger logical sweep whose durability the
		// coordinator owns (it commits returned ranges against the full-sweep
		// checkpoint); a per-shard checkpoint would fingerprint as the full
		// sweep while holding only the slice, so the combination is refused.
		if req.Resume != nil {
			return fmt.Errorf("engine: a site-range shard cannot carry its own checkpoint (the coordinator owns retry durability)")
		}
		spans = chunkSpans(lo0, hi0, chunk)
		maxUnits := 0
		if req.MaxSweepNodes > 0 {
			maxUnits = req.MaxSweepNodes
		}
		done, err := sweepSpans(ctx, spans, total, 0, resolveWorkers(req.Workers), maxUnits, onBatch, req.OnProgress, newWorker)
		return wrapSweepErr(engName, total, done, err)
	}
	if req.Resume != nil {
		// A corrupt checkpoint (torn bytes, failed checksum) has been
		// quarantined to <path>.corrupt by the resume layer; the sweep
		// restarts fresh rather than folding garbage, and the quarantined
		// file keeps the forensic evidence.
		var err error
		rs, _, err = req.Resume.ArmRecovering(engName, req.Fingerprint(engName, sp), resume.KindSites, n)
		if err != nil {
			return err
		}
		ranges := rs.RestoreSites(out)
		doneBase = rs.DoneUnits()
		// Replay restored ranges through OnBatch up front so streaming
		// consumers see every site exactly once across the interrupted and
		// resumed runs' perspective of this sweep.
		if onBatch != nil {
			for _, rg := range ranges {
				if err := callOnBatch(onBatch, rg.Lo, rg.Hi); err != nil {
					return wrapSweepErr(engName, n, doneBase, err)
				}
			}
		}
		spans = pendingSpans(n, chunk, ranges)
		inner := onBatch
		onBatch = func(lo, hi int) error {
			if err := rs.CommitSites(lo, hi, out[lo:hi]); err != nil {
				return err
			}
			if inner != nil {
				return inner(lo, hi)
			}
			return nil
		}
	} else if req.Memo != nil {
		// The memo restore mirrors the checkpoint path: cached sites are
		// restored into out (bit-identical — values are stored as IEEE-754
		// bit patterns keyed by cone hash), replayed through OnBatch so
		// streaming consumers see every site exactly once, and the sweep
		// covers the complement. Freshly computed batches are stored back
		// under the commit hook, and the cache is flushed on every exit
		// path, so even a budgeted or deadlined sweep banks its results.
		hashes := req.memoHashes(engName, sp)
		key := req.memoKey(engName, false)
		ranges, hits := req.Memo.Lookup(key, hashes, out)
		doneBase = hits
		if req.Stats != nil {
			req.Stats.MemoHits.Add(int64(hits))
		}
		if onBatch != nil {
			for _, rg := range ranges {
				if err := callOnBatch(onBatch, rg.Lo, rg.Hi); err != nil {
					return wrapSweepErr(engName, n, doneBase, err)
				}
			}
		}
		rr := make([]resume.Range, len(ranges))
		for i, rg := range ranges {
			rr[i] = resume.Range{Lo: rg.Lo, Hi: rg.Hi}
		}
		spans = pendingSpans(n, chunk, rr)
		memo, inner := req.Memo, onBatch
		onBatch = func(lo, hi int) error {
			memo.Store(key, hashes, lo, hi, out[lo:hi])
			if inner != nil {
				return inner(lo, hi)
			}
			return nil
		}
	} else {
		spans = chunkSpans(0, n, chunk)
	}
	maxUnits := 0
	if req.MaxSweepNodes > 0 {
		// The budget bounds this call's new work; restored units are free.
		maxUnits = doneBase + req.MaxSweepNodes
	}
	done, err := sweepSpans(ctx, spans, n, doneBase, resolveWorkers(req.Workers), maxUnits, onBatch, req.OnProgress, newWorker)
	if rs != nil {
		// Flush on every path: after an orderly stop (budget, deadline,
		// cancel) the committed batches since the last cadence write become
		// durable, so -checkpoint composes with -timeout into convergence.
		if ferr := rs.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	if req.Memo != nil {
		if ferr := req.Memo.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	return wrapSweepErr(engName, n, done, err)
}

// callOnBatch invokes a user OnBatch callback with panic recovery — used
// for checkpoint replay, which runs outside the sweep driver's own
// recovery.
func callOnBatch(onBatch func(lo, hi int) error, lo, hi int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &SweepPanicError{Unit: "batch", Lo: lo, Hi: hi, Value: r, Stack: debug.Stack()}
		}
	}()
	return onBatch(lo, hi)
}

// sweepOrdered reports whether the sweep must run in ascending node-ID
// order: requested explicitly (streaming), forced by a checkpoint (whose
// committed ranges must be ID ranges to be restorable), or forced by a
// site-range shard (whose [SiteLo, SiteHi) bounds are ID bounds, so the
// sweep positions must be IDs, not cone-locality schedule positions). The
// engines' kernels are packing-invariant, so the order never changes
// results.
func (r *Request) sweepOrdered() bool {
	return r.OrderedSweep || r.Resume != nil || r.Memo != nil || r.SiteHi > r.SiteLo
}

// shardRange validates and resolves the request's optional [SiteLo, SiteHi)
// shard range against the circuit's n sites. A range is active iff
// SiteHi > SiteLo; an inactive request sweeps the full [0, n). Engines that
// cannot honor a sub-range (the word-major monte-carlo sampler) reject
// active ranges themselves with a descriptive error.
func (r *Request) shardRange(n int) (lo, hi int, active bool, err error) {
	if r.SiteHi <= r.SiteLo {
		if r.SiteLo != 0 || r.SiteHi != 0 {
			return 0, 0, false, fmt.Errorf("engine: invalid site range [%d, %d): empty or inverted (leave both zero for a full sweep)", r.SiteLo, r.SiteHi)
		}
		return 0, n, false, nil
	}
	if r.SiteLo < 0 || r.SiteHi > n {
		return 0, 0, false, fmt.Errorf("engine: site range [%d, %d) out of bounds for %d sites", r.SiteLo, r.SiteHi, n)
	}
	return r.SiteLo, r.SiteHi, true, nil
}
