// Regression tests for the resilience layer shared by every engine: user
// callback panics surface as *SweepPanicError instead of crashing the
// process, node budgets stop sweeps as *PartialError, and no sweep — however
// it ends — leaves worker goroutines behind.

package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/sigprob"
)

// engineFixture returns a circuit sized for the engine: the exact engines
// pay 2^support (enum) or BDD construction per site, so they get c17; the
// swept engines get a profile with enough nodes for several batches.
func engineFixture(t *testing.T, engName string) (*netlist.Circuit, []float64) {
	t.Helper()
	var c *netlist.Circuit
	if engName == "enum" || engName == "bdd" {
		c = circuitFile(t, "c17.bench")
	} else {
		var err error
		c, err = gen.ByName("s953")
		if err != nil {
			t.Fatal(err)
		}
	}
	return c, sigprob.Topological(c, sigprob.Config{})
}

// TestCallbackPanicIsolation: a panicking OnBatch or OnProgress callback on
// any engine, serial or parallel, returns a *SweepPanicError naming the
// engine — the process must survive and the sweep's goroutines must wind
// down (wg.Wait must not deadlock behind the panic).
func TestCallbackPanicIsolation(t *testing.T) {
	for _, e := range Engines() {
		for _, cb := range []string{"OnBatch", "OnProgress"} {
			for _, workers := range []int{1, 4} {
				t.Run(e.Name()+"/"+cb+"/workers="+itoa(workers), func(t *testing.T) {
					c, sp := engineFixture(t, e.Name())
					req := &Request{Circuit: c, SP: sp, Vectors: 512, Seed: 5, Workers: workers}
					var mu sync.Mutex
					calls := 0
					boom := func() {
						mu.Lock()
						calls++
						n := calls
						mu.Unlock()
						if n == 2 {
							panic("injected callback panic")
						}
					}
					switch cb {
					case "OnBatch":
						req.OnBatch = func(lo, hi int) error { boom(); return nil }
					case "OnProgress":
						req.OnProgress = func(done, total int) { boom() }
					}
					out := make([]float64, c.N())
					err := e.PSensitizedAll(context.Background(), req, out)
					var spe *SweepPanicError
					if !errors.As(err, &spe) {
						t.Fatalf("err = %v (%T), want *SweepPanicError", err, err)
					}
					if spe.Engine != e.Name() {
						t.Errorf("panic attributed to %q, want %q", spe.Engine, e.Name())
					}
					if spe.Value != "injected callback panic" {
						t.Errorf("recovered value %v, want the injected panic", spe.Value)
					}
					if len(spe.Stack) == 0 {
						t.Error("no stack captured")
					}
				})
			}
		}
	}
}

// TestBudgetAllEngines: MaxSweepNodes stops every engine at the first unit
// boundary at or past the budget, surfacing a *PartialError that wraps
// ErrBudget and reports partial progress.
func TestBudgetAllEngines(t *testing.T) {
	for _, e := range Engines() {
		t.Run(e.Name(), func(t *testing.T) {
			c, sp := engineFixture(t, e.Name())
			budget := c.N() / 2
			req := &Request{Circuit: c, SP: sp, Vectors: 512, Seed: 5, Workers: 1, MaxSweepNodes: budget}
			out := make([]float64, c.N())
			err := e.PSensitizedAll(context.Background(), req, out)
			if !errors.Is(err, ErrBudget) {
				t.Fatalf("err = %v, want ErrBudget", err)
			}
			var perr *PartialError
			if !errors.As(err, &perr) {
				t.Fatalf("err = %T, want *PartialError", err)
			}
			if perr.Done < 1 || perr.Done >= perr.Total || perr.Total != c.N() {
				t.Errorf("PartialError reports %d/%d, want mid-sweep stop of %d units", perr.Done, perr.Total, c.N())
			}
		})
	}
}

// TestNoGoroutineLeaks: cancellation mid-sweep, an OnBatch error, and an
// injected callback panic each leave no live sweep goroutines on any engine.
func TestNoGoroutineLeaks(t *testing.T) {
	type scenario struct {
		name string
		run  func(t *testing.T, e Engine)
	}
	scenarios := []scenario{
		{"cancel", func(t *testing.T, e Engine) {
			c, sp := engineFixture(t, e.Name())
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			req := &Request{
				Circuit: c, SP: sp, Vectors: 512, Seed: 5, Workers: 4,
				OnProgress: func(done, total int) {
					if done > 0 {
						cancel()
					}
				},
			}
			out := make([]float64, c.N())
			if err := e.PSensitizedAll(ctx, req, out); !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
		}},
		{"onbatch-error", func(t *testing.T, e Engine) {
			c, sp := engineFixture(t, e.Name())
			sentinel := errors.New("stop")
			req := &Request{
				Circuit: c, SP: sp, Vectors: 512, Seed: 5, Workers: 4,
				OnBatch: func(lo, hi int) error { return sentinel },
			}
			out := make([]float64, c.N())
			if err := e.PSensitizedAll(context.Background(), req, out); !errors.Is(err, sentinel) {
				t.Fatalf("err = %v, want the sentinel", err)
			}
		}},
		{"onprogress-panic", func(t *testing.T, e Engine) {
			c, sp := engineFixture(t, e.Name())
			req := &Request{
				Circuit: c, SP: sp, Vectors: 512, Seed: 5, Workers: 4,
				OnProgress: func(done, total int) { panic("leak probe") },
			}
			out := make([]float64, c.N())
			err := e.PSensitizedAll(context.Background(), req, out)
			var spe *SweepPanicError
			if !errors.As(err, &spe) {
				t.Fatalf("err = %v, want *SweepPanicError", err)
			}
		}},
	}
	for _, e := range Engines() {
		for _, sc := range scenarios {
			t.Run(e.Name()+"/"+sc.name, func(t *testing.T) {
				before := runtime.NumGoroutine()
				sc.run(t, e)
				waitGoroutines(t, before)
			})
		}
	}
}

// waitGoroutines polls until the live goroutine count returns to the
// pre-sweep baseline (workers may still be winding down when the driver
// returns its error — only their eventual exit matters for leaks).
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d live, baseline %d\n%s", runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
