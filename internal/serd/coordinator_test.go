// Coordinator acceptance tests: the sharded fold must be byte-identical to
// a single-process run at every fleet size and retry history — including a
// worker killed mid-shard — and a checkpoint directory must turn a failed
// request's partial progress into a resumed request that re-dispatches only
// the holes. The s38417 matrix of the issue's acceptance criteria runs
// behind SERD_S38417=1 (the CI serd job sets it); the always-on tests cover
// the identical code paths on s953-class circuits.

package serd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"
)

// workerFleet starts n worker daemons, optionally wrapping each handler
// (fault injection, call recording), and returns their base URLs.
func workerFleet(t *testing.T, n int, wrap func(i int, h http.Handler) http.Handler) []string {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		w := New(Config{Logf: discardLogf})
		var h http.Handler = w.Handler()
		if wrap != nil {
			h = wrap(i, h)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

// killingHandler injects worker deaths: the first `kills` shard requests
// are answered by slamming the TCP connection shut mid-request — the
// coordinator sees a transport error, exactly as if the worker process had
// been killed — after which the worker serves normally.
type killingHandler struct {
	h     http.Handler
	mu    sync.Mutex
	kills int
	dealt int
}

func (k *killingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/shard" {
		k.mu.Lock()
		kill := k.kills > 0
		if kill {
			k.kills--
			k.dealt++
		}
		k.mu.Unlock()
		if kill {
			hj, ok := w.(http.Hijacker)
			if !ok {
				panic("test server not hijackable")
			}
			conn, _, err := hj.Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
	}
	k.h.ServeHTTP(w, r)
}

// recordingHandler logs the shard ranges a worker actually serves.
type recordingHandler struct {
	h      http.Handler
	mu     sync.Mutex
	ranges [][2]int
}

func (rh *recordingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/shard" {
		// The response echoes the served range, so record from it.
		rec := httptest.NewRecorder()
		rh.h.ServeHTTP(rec, r)
		if rec.Code == http.StatusOK {
			var sresp ShardResponse
			_ = json.Unmarshal(rec.Body.Bytes(), &sresp)
			rh.mu.Lock()
			rh.ranges = append(rh.ranges, [2]int{sresp.Lo, sresp.Hi})
			rh.mu.Unlock()
		}
		for k, vs := range rec.Header() {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(rec.Code)
		_, _ = w.Write(rec.Body.Bytes())
		return
	}
	rh.h.ServeHTTP(w, r)
}

func TestCoordinatorByteIdenticalToLocalRun(t *testing.T) {
	src := CircuitSource{Profile: "s953"}
	for _, fleet := range []int{1, 2} {
		for _, frames := range []int{1, 4} {
			t.Run(fmt.Sprintf("workers%d-frames%d", fleet, frames), func(t *testing.T) {
				workers := workerFleet(t, fleet, nil)
				_, ts := newTestServer(t, Config{Workers: workers, ShardsPerWorker: 3})
				opts := Options{Frames: frames}
				want := localRun(t, src, opts)

				resp := analyze(t, ts.URL, AnalyzeRequest{Circuit: src, Options: opts})
				requireReportsIdentical(t, "coordinated", resp.Report, want)

				// The coordinator's streamed form serves the same bits.
				lines := analyzeStream(t, ts.URL, AnalyzeRequest{Circuit: src, Options: opts})
				_, rep := decodeStream(t, lines)
				requireReportsIdentical(t, "coordinated-stream", rep, want)
			})
		}
	}
}

// TestCoordinatorSamplingRunsWhole: the word-major monte-carlo engine is
// never sharded — a coordinator with workers still answers sampling
// requests bit-identically by running them on its local pool.
func TestCoordinatorSamplingRunsWhole(t *testing.T) {
	workers := workerFleet(t, 2, nil)
	_, ts := newTestServer(t, Config{Workers: workers})
	src := CircuitSource{Bench: c17Bench(t)}
	opts := Options{Method: "monte-carlo", Vectors: 2048, Seed: 42}
	want := localRun(t, src, opts)
	resp := analyze(t, ts.URL, AnalyzeRequest{Circuit: src, Options: opts})
	requireReportsIdentical(t, "sampling-whole", resp.Report, want)
}

func TestCoordinatorWorkerKillRetry(t *testing.T) {
	src := CircuitSource{Profile: "s953"}
	want := localRun(t, src, Options{})

	var killer *killingHandler
	workers := workerFleet(t, 2, func(i int, h http.Handler) http.Handler {
		if i == 0 {
			killer = &killingHandler{h: h, kills: 1}
			return killer
		}
		return h
	})
	_, ts := newTestServer(t, Config{Workers: workers, ShardsPerWorker: 3})

	resp := analyze(t, ts.URL, AnalyzeRequest{Circuit: src, Options: Options{}})
	requireReportsIdentical(t, "kill-retry", resp.Report, want)
	if killer.dealt != 1 {
		t.Fatalf("injected %d kills, wanted exactly 1 dealt", killer.dealt)
	}
}

// TestCoordinatorAllWorkersDead: with every worker refusing shards the
// request must fail cleanly (no hang, no partial report), and the error
// must surface as a 5xx.
func TestCoordinatorAllWorkersDead(t *testing.T) {
	workers := workerFleet(t, 2, func(i int, h http.Handler) http.Handler {
		return &killingHandler{h: h, kills: 1 << 20}
	})
	_, ts := newTestServer(t, Config{Workers: workers, ShardsPerWorker: 2, ShardAttempts: 2})
	resp := postJSON(t, http.DefaultClient, ts.URL+"/v1/analyze",
		AnalyzeRequest{Circuit: CircuitSource{Profile: "s953"}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("all-dead fleet: HTTP %d (want 500)", resp.StatusCode)
	}
}

// TestDeadFleetFailsFast: a fleet that is gone for good (connection
// refused, so even the health probes fail) must still resolve the request
// — a 500 by default, a fully-uncovered 206 under allow_partial — instead
// of parking forever on breakers that will never close. Guards the
// failIfUnreachable path: the default attempt budget (2 + fleet size)
// exceeds the breaker threshold, so without it the final attempts would
// wait on a probe that never succeeds and the request would hang.
func TestDeadFleetFailsFast(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	for _, partial := range []bool{false, true} {
		t.Run(fmt.Sprintf("allowPartial=%v", partial), func(t *testing.T) {
			_, ts := newTestServer(t, Config{
				Workers:         []string{deadURL},
				ShardsPerWorker: 2,
				RetryBackoff:    time.Millisecond,
				BreakerProbe:    10 * time.Millisecond,
			})
			client := &http.Client{Timeout: 30 * time.Second}
			resp := postJSON(t, client, ts.URL+"/v1/analyze",
				AnalyzeRequest{Circuit: CircuitSource{Profile: "s953"}, AllowPartial: partial})
			defer resp.Body.Close()
			if !partial {
				if resp.StatusCode != http.StatusInternalServerError {
					t.Fatalf("dead fleet: HTTP %d (want 500)", resp.StatusCode)
				}
				return
			}
			if resp.StatusCode != http.StatusPartialContent {
				t.Fatalf("dead fleet with allow_partial: HTTP %d (want 206)", resp.StatusCode)
			}
			var ar AnalyzeResponse
			if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
				t.Fatal(err)
			}
			if !ar.Partial || len(ar.Uncovered) == 0 || ar.Uncovered[0].Lo != 0 {
				t.Fatalf("partial=%v uncovered=%v, want the whole sweep disclosed as uncovered", ar.Partial, ar.Uncovered)
			}
		})
	}
}

// TestCoordinatorCheckpointResume: a request that dies after committing one
// shard leaves durable progress under CheckpointDir; the retried request
// (fresh coordinator, same directory) re-dispatches only the holes and
// still produces the byte-identical report.
func TestCoordinatorCheckpointResume(t *testing.T) {
	src := CircuitSource{Profile: "s953"}
	want := localRun(t, src, Options{})
	dir := t.TempDir()
	const perWorker = 4

	// Phase 1: the lone worker serves exactly one shard, then dies for
	// good. ShardAttempts 1 makes the first post-commit failure fatal. A
	// one-worker coordinator dispatches sequentially, so the counter needs
	// no lock.
	served := 0
	w1 := workerFleet(t, 1, func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/shard" {
				if served >= 1 {
					conn, _, err := w.(http.Hijacker).Hijack()
					if err == nil {
						conn.Close()
					}
					return
				}
				served++
			}
			h.ServeHTTP(w, r)
		})
	})
	_, ts1 := newTestServer(t, Config{Workers: w1, ShardsPerWorker: perWorker, ShardAttempts: 1, CheckpointDir: dir})
	resp := postJSON(t, http.DefaultClient, ts1.URL+"/v1/analyze", AnalyzeRequest{Circuit: src})
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("phase-1 request succeeded despite the dead worker")
	}
	files, err := os.ReadDir(dir)
	if err != nil || len(files) != 1 {
		t.Fatalf("checkpoint dir after failed request: %v (err %v)", files, err)
	}

	// Phase 2: healthy worker, same checkpoint dir. Only the holes are
	// dispatched — strictly fewer shard calls than a cold request needs —
	// and the fold is still bit-identical.
	var rec *recordingHandler
	w2 := workerFleet(t, 1, func(i int, h http.Handler) http.Handler {
		rec = &recordingHandler{h: h}
		return rec
	})
	_, ts2 := newTestServer(t, Config{Workers: w2, ShardsPerWorker: perWorker, CheckpointDir: dir})
	got := analyze(t, ts2.URL, AnalyzeRequest{Circuit: src})
	requireReportsIdentical(t, "resumed", got.Report, want)

	rec.mu.Lock()
	resumedCalls := len(rec.ranges)
	ranges := rec.ranges
	rec.mu.Unlock()
	if resumedCalls == 0 || resumedCalls >= perWorker {
		t.Fatalf("resumed request dispatched %d shards (want 1..%d): %v", resumedCalls, perWorker-1, ranges)
	}

	// Phase 3: the finished checkpoint satisfies a repeat request with zero
	// shard dispatches (fresh daemon, so the report cache is cold too).
	var rec3 *recordingHandler
	w3 := workerFleet(t, 1, func(i int, h http.Handler) http.Handler {
		rec3 = &recordingHandler{h: h}
		return rec3
	})
	_, ts3 := newTestServer(t, Config{Workers: w3, ShardsPerWorker: perWorker, CheckpointDir: dir})
	again := analyze(t, ts3.URL, AnalyzeRequest{Circuit: src})
	requireReportsIdentical(t, "fully-checkpointed", again.Report, want)
	rec3.mu.Lock()
	calls3 := len(rec3.ranges)
	rec3.mu.Unlock()
	if calls3 != 0 {
		t.Fatalf("fully-checkpointed request still dispatched %d shards", calls3)
	}
}

// TestS38417Matrix is the issue's acceptance matrix: sharded coordinator
// results on s38417 for worker fleets of 1, 2 and 4 at frames 1 and 4, byte
// identical to the single-process run, including under one injected worker
// kill mid-shard. It costs many full sweeps of a 20k-gate circuit, so it
// only runs when SERD_S38417=1 (the CI serd job sets it).
func TestS38417Matrix(t *testing.T) {
	if os.Getenv("SERD_S38417") == "" {
		t.Skip("set SERD_S38417=1 to run the s38417 acceptance matrix")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	src := CircuitSource{Profile: "s38417"}
	for _, frames := range []int{1, 4} {
		opts := Options{Frames: frames}
		want := localRun(t, src, opts)
		for _, fleet := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("workers%d-frames%d", fleet, frames), func(t *testing.T) {
				// One injected worker kill in the 2-worker leg exercises
				// retry inside the matrix itself.
				var killer *killingHandler
				wrap := func(i int, h http.Handler) http.Handler {
					if fleet == 2 && i == 0 {
						killer = &killingHandler{h: h, kills: 1}
						return killer
					}
					return h
				}
				workers := workerFleet(t, fleet, wrap)
				_, ts := newTestServer(t, Config{Workers: workers})
				resp := analyze(t, ts.URL, AnalyzeRequest{Circuit: src, Options: opts})
				requireReportsIdentical(t, t.Name(), resp.Report, want)
				if killer != nil && killer.dealt != 1 {
					t.Fatalf("kill not dealt: %d", killer.dealt)
				}
			})
		}
	}
}
