// End-to-end tests of the daemon over real HTTP (httptest): report and
// stream byte-identity against direct library runs, cache semantics,
// concurrent mixed workloads, mid-stream disconnect draining, deterministic
// admission behavior, and the coordinator's bit-exact sharded fold with
// injected worker failures and checkpointed resume.

package serd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/circuitio"
	"repro/internal/netlist"
	"repro/internal/ser"
)

// newTestServerlessCircuit resolves a wire circuit source without a daemon,
// through the same shared parse path the daemon uses.
func newTestServerlessCircuit(src CircuitSource) (*netlist.Circuit, error) {
	return circuitio.Load(src.source())
}

// discardLogf silences server logs in tests (t.Logf would race with test
// teardown on late goroutines).
func discardLogf(string, ...any) {}

// newTestServer builds a Server and serves it over a real listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = discardLogf
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// c17Bench reads the checked-in c17 netlist as inline source text.
func c17Bench(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile("../../testdata/c17.bench")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// postJSON posts a request body and returns the response.
func postJSON(t *testing.T, client *http.Client, url string, req any) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// analyze posts a non-streaming analyze request and decodes the response,
// requiring HTTP 200.
func analyze(t *testing.T, base string, req AnalyzeRequest) AnalyzeResponse {
	t.Helper()
	resp := postJSON(t, http.DefaultClient, base+"/v1/analyze", req)
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: HTTP %d: %s", resp.StatusCode, body)
	}
	var out AnalyzeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return out
}

// analyzeStream posts a streaming analyze request and returns the raw
// NDJSON lines.
func analyzeStream(t *testing.T, base string, req AnalyzeRequest) []string {
	t.Helper()
	req.Stream = true
	resp := postJSON(t, http.DefaultClient, base+"/v1/analyze", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream: HTTP %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream: Content-Type = %q", ct)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream: %v", err)
	}
	return lines
}

// decodeStream reconstructs a Report from NDJSON lines, validating the
// frame protocol: header first, node tiles in ascending ID order, exactly
// one terminal total frame.
func decodeStream(t *testing.T, lines []string) (StreamHeader, *ser.Report) {
	t.Helper()
	if len(lines) < 2 {
		t.Fatalf("stream: only %d lines", len(lines))
	}
	var hdr StreamHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil || hdr.Type != FrameHeader {
		t.Fatalf("stream: bad header %q (err %v)", lines[0], err)
	}
	method, err := ser.ParseMethod(hdr.Method)
	if err != nil {
		t.Fatalf("stream: header method %q: %v", hdr.Method, err)
	}
	rep := &ser.Report{Circuit: hdr.Circuit, Method: method, Engine: hdr.Engine}
	sawTotal := false
	for _, line := range lines[1:] {
		if sawTotal {
			t.Fatalf("stream: frame after total: %q", line)
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("stream: bad frame %q: %v", line, err)
		}
		switch probe.Type {
		case FrameNode:
			var n StreamNode
			if err := json.Unmarshal([]byte(line), &n); err != nil {
				t.Fatal(err)
			}
			if n.ID != len(rep.Nodes) {
				t.Fatalf("stream: tile id %d at position %d (not ascending-ID order)", n.ID, len(rep.Nodes))
			}
			rep.Nodes = append(rep.Nodes, ser.NodeSER{
				ID:          netlist.ID(n.ID),
				Name:        n.Name,
				RateFIT:     n.RateFIT,
				PLatched:    n.PLatched,
				PSensitized: n.PSensitized,
				SERFIT:      n.SERFIT,
			})
		case FrameTotal:
			var tot StreamTotal
			if err := json.Unmarshal([]byte(line), &tot); err != nil {
				t.Fatal(err)
			}
			if tot.Nodes != len(rep.Nodes) {
				t.Fatalf("stream: total frame counts %d nodes, saw %d tiles", tot.Nodes, len(rep.Nodes))
			}
			rep.TotalFIT = tot.TotalFIT
			sawTotal = true
		case FrameError:
			t.Fatalf("stream: error frame: %s", line)
		default:
			t.Fatalf("stream: unknown frame type %q", probe.Type)
		}
	}
	if !sawTotal {
		t.Fatalf("stream: no total frame in %d lines", len(lines))
	}
	if hdr.Nodes != len(rep.Nodes) {
		t.Fatalf("stream: header claims %d nodes, got %d tiles", hdr.Nodes, len(rep.Nodes))
	}
	return hdr, rep
}

// requireReportsIdentical compares two Reports bit-for-bit: every float64
// must match on its IEEE-754 bit pattern, not within a tolerance.
func requireReportsIdentical(t *testing.T, label string, got, want *ser.Report) {
	t.Helper()
	if got.Circuit != want.Circuit || got.Method != want.Method || got.Engine != want.Engine {
		t.Fatalf("%s: identity (%q, %v, %q) != (%q, %v, %q)",
			label, got.Circuit, got.Method, got.Engine, want.Circuit, want.Method, want.Engine)
	}
	if len(got.Nodes) != len(want.Nodes) {
		t.Fatalf("%s: %d nodes != %d", label, len(got.Nodes), len(want.Nodes))
	}
	for i := range want.Nodes {
		g, w := &got.Nodes[i], &want.Nodes[i]
		if g.ID != w.ID || g.Name != w.Name ||
			math.Float64bits(g.RateFIT) != math.Float64bits(w.RateFIT) ||
			math.Float64bits(g.PLatched) != math.Float64bits(w.PLatched) ||
			math.Float64bits(g.PSensitized) != math.Float64bits(w.PSensitized) ||
			math.Float64bits(g.SERFIT) != math.Float64bits(w.SERFIT) {
			t.Fatalf("%s: node %d differs: got %+v want %+v", label, i, *g, *w)
		}
	}
	if math.Float64bits(got.TotalFIT) != math.Float64bits(want.TotalFIT) {
		t.Fatalf("%s: TotalFIT %x != %x", label, math.Float64bits(got.TotalFIT), math.Float64bits(want.TotalFIT))
	}
}

// localRun computes the reference Report for a wire request with the direct
// library path: the same circuit resolution and the same options mapping,
// but no daemon in between.
func localRun(t *testing.T, src CircuitSource, opts Options) *ser.Report {
	t.Helper()
	c, err := newTestServerlessCircuit(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := opts.config()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ser.Run(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestAnalyzeReportMatchesLocalRun(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		src  CircuitSource
		opts Options
	}{
		{"c17-default", CircuitSource{Bench: c17Bench(t)}, Options{}},
		{"s953-frames4", CircuitSource{Profile: "s953"}, Options{Frames: 4}},
		{"c17-monte-carlo", CircuitSource{Bench: c17Bench(t)}, Options{Method: "monte-carlo", Vectors: 4096, Seed: 7}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := localRun(t, tc.src, tc.opts)
			resp := analyze(t, ts.URL, AnalyzeRequest{Circuit: tc.src, Options: tc.opts})
			if resp.Cached {
				t.Fatal("first analyze reported cached")
			}
			requireReportsIdentical(t, tc.name, resp.Report, want)

			// Second request: served from the report cache, same bits.
			again := analyze(t, ts.URL, AnalyzeRequest{Circuit: tc.src, Options: tc.opts})
			if !again.Cached {
				t.Fatal("second analyze not cached")
			}
			if again.Fingerprint != resp.Fingerprint {
				t.Fatalf("fingerprint changed across requests: %s != %s", again.Fingerprint, resp.Fingerprint)
			}
			requireReportsIdentical(t, tc.name+"-cached", again.Report, want)

			// Third request addresses the circuit by content hash only.
			byHash := analyze(t, ts.URL, AnalyzeRequest{Circuit: CircuitSource{Hash: resp.Hash}, Options: tc.opts})
			requireReportsIdentical(t, tc.name+"-by-hash", byHash.Report, want)
		})
	}
}

func TestStreamByteIdenticalToRunAndCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	src := CircuitSource{Profile: "s953"}
	want := localRun(t, src, Options{})

	first := analyzeStream(t, ts.URL, AnalyzeRequest{Circuit: src})
	hdr1, rep1 := decodeStream(t, first)
	if hdr1.Cached {
		t.Fatal("first stream claims cached")
	}
	requireReportsIdentical(t, "live-stream", rep1, want)

	// Summing tile SERFITs in arrival order must land on the total frame's
	// bits exactly — the documented client-side reconstruction contract.
	var sum float64
	for i := range rep1.Nodes {
		sum += rep1.Nodes[i].SERFIT
	}
	if math.Float64bits(sum) != math.Float64bits(rep1.TotalFIT) {
		t.Fatalf("tile sum %x != total frame %x", math.Float64bits(sum), math.Float64bits(rep1.TotalFIT))
	}

	second := analyzeStream(t, ts.URL, AnalyzeRequest{Circuit: src})
	hdr2, rep2 := decodeStream(t, second)
	if !hdr2.Cached {
		t.Fatal("second stream not cached")
	}
	requireReportsIdentical(t, "cached-stream", rep2, want)

	// Byte identity from line 2 on: cache status lives only in the header.
	if len(first) != len(second) {
		t.Fatalf("stream lengths differ: %d != %d", len(first), len(second))
	}
	for i := 1; i < len(first); i++ {
		if first[i] != second[i] {
			t.Fatalf("line %d differs between live and cached stream:\n%s\n%s", i, first[i], second[i])
		}
	}

	// The stream path memoized the report: a non-streaming request now hits.
	if got := analyze(t, ts.URL, AnalyzeRequest{Circuit: src}); !got.Cached {
		t.Fatal("non-streaming request after stream not cached")
	}
	if st := s.reports.snapshot(); st.Entries == 0 || st.Hits == 0 {
		t.Fatalf("report cache stats after stream+hit: %+v", st)
	}
}

// TestStreamViaAcceptHeader exercises the Accept-negotiated stream switch.
func TestStreamViaAcceptHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(AnalyzeRequest{Circuit: CircuitSource{Bench: c17Bench(t)}})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Accept negotiation ignored: Content-Type = %q", ct)
	}
}

func TestAnalyzeRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name   string
		req    AnalyzeRequest
		status int
	}{
		{"unknown-profile", AnalyzeRequest{Circuit: CircuitSource{Profile: "s0"}}, http.StatusBadRequest},
		{"two-sources", AnalyzeRequest{Circuit: CircuitSource{Profile: "s953", Bench: "x"}}, http.StatusBadRequest},
		{"no-source", AnalyzeRequest{}, http.StatusBadRequest},
		{"bad-method", AnalyzeRequest{Circuit: CircuitSource{Profile: "s953"}, Options: Options{Method: "exactish"}}, http.StatusBadRequest},
		{"bad-engine", AnalyzeRequest{Circuit: CircuitSource{Profile: "s953"}, Options: Options{Engine: "nope"}}, http.StatusBadRequest},
		{"negative-timeout", AnalyzeRequest{Circuit: CircuitSource{Profile: "s953"}, Options: Options{TimeoutMs: -1}}, http.StatusBadRequest},
		{"unknown-hash", AnalyzeRequest{Circuit: CircuitSource{Hash: strings.Repeat("ab", 32)}}, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, http.DefaultClient, ts.URL+"/v1/analyze", tc.req)
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("HTTP %d (want %d): %s", resp.StatusCode, tc.status, body)
			}
			var e ErrorResponse
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("error body %q not an ErrorResponse (%v)", body, err)
			}
		})
	}
}

func TestShardEndpointMatchesLocalRange(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := CircuitSource{Profile: "s953"}
	c, err := newTestServerlessCircuit(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := Options{}.config()
	info, err := ser.Describe(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 7, 131
	want, err := ser.PSensitizedRange(context.Background(), c, cfg, lo, hi)
	if err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, http.DefaultClient, ts.URL+"/v1/shard", ShardRequest{Circuit: src, Lo: lo, Hi: hi})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("shard: HTTP %d: %s", resp.StatusCode, body)
	}
	var sresp ShardResponse
	if err := json.NewDecoder(resp.Body).Decode(&sresp); err != nil {
		t.Fatal(err)
	}
	if sresp.Fingerprint != info.Fingerprint || sresp.Engine != info.Engine {
		t.Fatalf("shard identity (%s, %s) != (%s, %s)", sresp.Fingerprint, sresp.Engine, info.Fingerprint, info.Engine)
	}
	if sresp.Lo != lo || sresp.Hi != hi || len(sresp.Values) != hi-lo {
		t.Fatalf("shard range echo [%d,%d) x%d", sresp.Lo, sresp.Hi, len(sresp.Values))
	}
	for i, b := range sresp.Values {
		if b != math.Float64bits(want[i]) {
			t.Fatalf("shard value %d: %x != %x", i, b, math.Float64bits(want[i]))
		}
	}

	// Invalid ranges and the word-major sampling engine are refused.
	for name, sreq := range map[string]ShardRequest{
		"inverted":    {Circuit: src, Lo: 10, Hi: 10},
		"oob":         {Circuit: src, Lo: 0, Hi: c.N() + 1},
		"monte-carlo": {Circuit: src, Options: Options{Method: "monte-carlo"}, Lo: 0, Hi: 8},
	} {
		resp := postJSON(t, http.DefaultClient, ts.URL+"/v1/shard", sreq)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("%s shard request accepted", name)
		}
	}
}

// TestConcurrentMixedRequests hammers one daemon from many goroutines with
// a mix of cached and uncached analyses (distinct monte-carlo seeds stay
// uncached per client) and requires every streamed Report to be
// bit-identical to the direct library run. The CI race job runs this under
// -race, which is the point: the caches, admission gate and stream writers
// all get exercised concurrently.
func TestConcurrentMixedRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 4})
	c17 := c17Bench(t)

	shared := []struct {
		name string
		src  CircuitSource
		opts Options
	}{
		{"c17", CircuitSource{Bench: c17}, Options{}},
		{"s953", CircuitSource{Profile: "s953"}, Options{}},
		{"s953-frames4", CircuitSource{Profile: "s953"}, Options{Frames: 4}},
	}
	want := map[string]*ser.Report{}
	for _, v := range shared {
		want[v.name] = localRun(t, v.src, v.opts)
	}
	// Per-goroutine uncached variants: a unique sampling seed each.
	const clients = 8
	for i := 0; i < clients; i++ {
		name := fmt.Sprintf("mc-%d", i)
		want[name] = localRun(t, CircuitSource{Bench: c17},
			Options{Method: "monte-carlo", Vectors: 1024, Seed: uint64(1000 + i)})
	}

	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				v := shared[(i+round)%len(shared)]
				name, src, opts := v.name, v.src, v.opts
				if round == 1 {
					// The uncached leg: this goroutine's private seed.
					name = fmt.Sprintf("mc-%d", i)
					src = CircuitSource{Bench: c17}
					opts = Options{Method: "monte-carlo", Vectors: 1024, Seed: uint64(1000 + i)}
				}
				req := AnalyzeRequest{Circuit: src, Options: opts, Stream: true}
				body, _ := json.Marshal(req)
				resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				lines, err := readLines(resp.Body)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("client %d %s: HTTP %d", i, name, resp.StatusCode)
					return
				}
				_, rep := decodeStream(t, lines)
				requireReportsIdentical(t, fmt.Sprintf("client-%d-%s", i, name), rep, want[name])
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// readLines is the goroutine-safe (no t.Fatal) stream reader.
func readLines(r io.Reader) ([]string, error) {
	var lines []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	return lines, sc.Err()
}

// TestStreamClientDisconnect proves a mid-stream disconnect cancels the
// sweep promptly and leaks nothing: the admission slot returns to the pool
// and the goroutine count settles back to its pre-request baseline.
func TestStreamClientDisconnect(t *testing.T) {
	s, ts := newTestServer(t, Config{PoolSize: 1})
	client := &http.Client{}

	// Warm the parse cache so the measured request is sweep-only, then
	// settle a goroutine baseline.
	analyze(t, ts.URL, AnalyzeRequest{Circuit: CircuitSource{Profile: "s9234"}, Options: Options{Engine: "epp-scalar"}})
	client.CloseIdleConnections()
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	// A deliberately slow request (scalar engine, multi-cycle) so the
	// disconnect lands mid-sweep, not after completion.
	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(AnalyzeRequest{
		Circuit: CircuitSource{Profile: "s9234"},
		Options: Options{Engine: "epp-scalar", Frames: 4},
		Stream:  true,
	})
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/analyze", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	// Read the header frame — the sweep is live now — then vanish.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		cancel()
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()
	client.CloseIdleConnections()

	deadline := time.Now().Add(15 * time.Second)
	for {
		st := s.adm.snapshot()
		if st.Active == 0 && runtime.NumGoroutine() <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("not drained after disconnect: active=%d goroutines=%d (baseline %d)\n%s",
				st.Active, runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The pool is whole again: a fresh request must succeed.
	got := analyze(t, ts.URL, AnalyzeRequest{Circuit: CircuitSource{Bench: c17Bench(t)}})
	if got.Report == nil {
		t.Fatal("post-disconnect analyze returned no report")
	}
}

// TestAdmissionOverload deterministically drives the daemon into load
// shedding by holding the only pool slot directly, and shows cache hits
// bypass admission entirely.
func TestAdmissionOverload(t *testing.T) {
	s, ts := newTestServer(t, Config{PoolSize: 1, MaxQueue: -1})
	c17 := CircuitSource{Bench: c17Bench(t)}

	// Prime the report cache while the pool is free.
	primed := analyze(t, ts.URL, AnalyzeRequest{Circuit: c17})

	// Occupy the single slot; with no queue every uncached request must
	// now be shed with 429 immediately.
	if err := s.adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, http.DefaultClient, ts.URL+"/v1/analyze",
		AnalyzeRequest{Circuit: c17, Options: Options{Frames: 4}})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("uncached analyze under saturation: HTTP %d (want 429)", resp.StatusCode)
	}
	if st := s.adm.snapshot(); st.Rejected == 0 {
		t.Fatalf("no rejection counted: %+v", st)
	}

	// The cached request sails through the saturated pool.
	hit := analyze(t, ts.URL, AnalyzeRequest{Circuit: c17})
	if !hit.Cached || hit.Fingerprint != primed.Fingerprint {
		t.Fatalf("cache hit under saturation: cached=%v fp=%s", hit.Cached, hit.Fingerprint)
	}

	s.adm.release()
	// Pool free again: the previously shed request now runs.
	ok := analyze(t, ts.URL, AnalyzeRequest{Circuit: c17, Options: Options{Frames: 4}})
	if ok.Cached {
		t.Fatal("post-release analyze unexpectedly cached")
	}
}

func TestAdmissionGate(t *testing.T) {
	a := newAdmission(2, 1)
	ctx := context.Background()
	if err := a.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(ctx); err != nil {
		t.Fatal(err)
	}

	// Third caller queues; wait until it is visibly queued.
	qctx, qcancel := context.WithCancel(ctx)
	defer qcancel()
	errc := make(chan error, 1)
	go func() { errc <- a.acquire(qctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for a.snapshot().Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("waiter never queued: %+v", a.snapshot())
		}
		time.Sleep(time.Millisecond)
	}

	// Fourth caller overflows the queue bound.
	if err := a.acquire(ctx); err != ErrOverloaded {
		t.Fatalf("overflow acquire: %v (want ErrOverloaded)", err)
	}

	// The queued caller gives up.
	qcancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("canceled waiter: %v", err)
	}

	a.release()
	if err := a.acquire(ctx); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	st := a.snapshot()
	if st.Admitted != 3 || st.Rejected != 1 || st.Canceled != 1 || st.Active != 2 || st.Queued != 0 {
		t.Fatalf("counters: %+v", st)
	}
}

func TestReportCacheEviction(t *testing.T) {
	mk := func(name string, nodes int) *ser.Report {
		rep := &ser.Report{Circuit: name, Nodes: make([]ser.NodeSER, nodes)}
		for i := range rep.Nodes {
			rep.Nodes[i].Name = name
		}
		return rep
	}
	a, b := mk("aaaa", 100), mk("bbbb", 100)
	// Bound the cache to about one report: inserting the second evicts the
	// first (LRU), never the newcomer.
	rc := newReportCache(reportBytes(a) + reportBytes(b)/2)
	rc.put("a", a)
	rc.put("b", b)
	if _, ok := rc.get("a"); ok {
		t.Fatal("oldest entry survived past the byte bound")
	}
	if got, ok := rc.get("b"); !ok || got != b {
		t.Fatal("newest entry evicted")
	}
	st := rc.snapshot()
	if st.Evictions != 1 || st.Entries != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}

	// A single oversized report is still cached (the bound protects the
	// steady state, not the single entry).
	rc2 := newReportCache(1)
	rc2.put("big", a)
	if _, ok := rc2.get("big"); !ok {
		t.Fatal("oversized single entry refused")
	}

	// put of an existing key refreshes rather than duplicates.
	rc.put("b", b)
	if st := rc.snapshot(); st.Entries != 1 {
		t.Fatalf("duplicate key grew the cache: %+v", st)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	analyze(t, ts.URL, AnalyzeRequest{Circuit: CircuitSource{Bench: c17Bench(t)}})
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Circuits.Entries != 1 || st.Reports.Entries != 1 || st.Admission.Admitted != 1 {
		t.Fatalf("stats after one analyze: %+v", st)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", hresp.StatusCode)
	}
}

func TestLoadgenSmoke(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	res, err := Loadgen(context.Background(), LoadgenConfig{
		Target:      ts.URL,
		Request:     AnalyzeRequest{Circuit: CircuitSource{Bench: c17Bench(t)}},
		Concurrency: 2,
		Duration:    300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.Errors != 0 || res.RPS <= 0 || res.P99Ms < res.P50Ms {
		t.Fatalf("loadgen result: %+v", res)
	}
}
