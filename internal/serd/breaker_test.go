// White-box tests of the worker breaker state machine with an explicit
// clock: closed -> open at the failure threshold, a single half-open probe
// slot per interval, probe success closing / probe failure re-opening, and
// context-failure exclusion is exercised end-to-end in coordinator tests.

package serd

import (
	"testing"
	"time"
)

func TestBreakerStateMachine(t *testing.T) {
	t0 := time.Unix(0, 0)
	b := newBreaker(2, time.Second)

	// Closed: admits without probing.
	if ok, probe, _ := b.admit(t0); !ok || probe {
		t.Fatalf("closed admit = %v, %v", ok, probe)
	}

	// One failure stays closed; the second opens.
	b.onFailure(t0)
	if st := b.snapshot(); st.State != BreakerClosed || st.ConsecutiveFailures != 1 {
		t.Fatalf("after 1 failure: %+v", st)
	}
	b.onFailure(t0)
	st := b.snapshot()
	if st.State != BreakerOpen || st.Opens != 1 {
		t.Fatalf("after 2 failures: %+v", st)
	}

	// Open: refused until the probe interval elapses, with the remaining
	// wait reported.
	if ok, _, wait := b.admit(t0.Add(400 * time.Millisecond)); ok || wait != 600*time.Millisecond {
		t.Fatalf("open admit = %v wait %v", ok, wait)
	}

	// Interval elapsed: exactly one caller gets the probe slot; a second
	// concurrent caller is told to wait.
	t1 := t0.Add(time.Second)
	ok, probe, _ := b.admit(t1)
	if !ok || !probe {
		t.Fatalf("probe admit = %v, %v", ok, probe)
	}
	if ok2, _, wait2 := b.admit(t1); ok2 || wait2 <= 0 {
		t.Fatalf("second half-open admit = %v wait %v", ok2, wait2)
	}

	// Probe failure re-opens for another full interval.
	b.probeResult(t1, false)
	if ok, _, _ := b.admit(t1.Add(500 * time.Millisecond)); ok {
		t.Fatal("admitted during re-opened interval")
	}
	t2 := t1.Add(time.Second)
	if ok, probe, _ := b.admit(t2); !ok || !probe {
		t.Fatal("second probe slot not granted")
	}

	// Probe success closes; the worker serves again and the failure run is
	// forgotten.
	b.probeResult(t2, true)
	st = b.snapshot()
	if st.State != BreakerClosed || st.ConsecutiveFailures != 0 || st.Probes != 2 {
		t.Fatalf("after successful probe: %+v", st)
	}
	b.onSuccess()
	if st := b.snapshot(); st.Successes != 1 || st.State != BreakerClosed {
		t.Fatalf("after success: %+v", st)
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := newBreaker(0, 0)
	if b.threshold != 2 || b.probeEvery != 500*time.Millisecond {
		t.Fatalf("defaults: threshold=%d probeEvery=%v", b.threshold, b.probeEvery)
	}
}
