// Per-worker circuit breakers for the coordinator's fleet. A breaker is
// closed (worker takes shards) until a run of consecutive health-relevant
// failures opens it; an open worker takes no shards, and after a probe
// interval one puller transitions the breaker half-open and sends a
// lightweight GET /v1/healthz probe — success closes the breaker and the
// worker rejoins the fleet, failure re-opens it for another interval.
// Breakers live on the coordinator and persist across requests, so a
// rebooted worker rejoins without a coordinator restart, replacing the old
// per-request permanent retirement. Context-caused failures (client
// disconnect, request deadline) never count: a canceled request says
// nothing about worker health.

package serd

import (
	"sync"
	"time"
)

// Breaker states, as reported in WorkerStats.State.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// WorkerStats is one worker's health as seen by the coordinator, exposed
// through GET /v1/stats.
type WorkerStats struct {
	URL                 string `json:"url"`
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Successes           int64  `json:"successes"`
	Failures            int64  `json:"failures"`
	Opens               int64  `json:"opens"`  // closed -> open transitions
	Probes              int64  `json:"probes"` // healthz probes sent
}

// breaker is the per-worker health state machine. All methods take an
// explicit now so the transition logic is testable without sleeping;
// callers pass time.Now().
type breaker struct {
	threshold  int           // consecutive failures that open the breaker
	probeEvery time.Duration // wait between healthz probes while open

	mu          sync.Mutex
	state       string
	consecutive int
	probeAt     time.Time // open: earliest time the next probe may run

	successes int64
	failures  int64
	opens     int64
	probes    int64
}

func newBreaker(threshold int, probeEvery time.Duration) *breaker {
	if threshold <= 0 {
		threshold = 2
	}
	if probeEvery <= 0 {
		probeEvery = 500 * time.Millisecond
	}
	return &breaker{threshold: threshold, probeEvery: probeEvery, state: BreakerClosed}
}

// admit asks whether this worker may take a shard now. ok means proceed;
// when probe is also true the caller holds the single half-open probe slot
// and MUST call probeResult before doing shard work. When !ok, wait is how
// long to sleep before asking again (another goroutine may hold the probe
// slot, or the open interval has not elapsed).
func (b *breaker) admit(now time.Time) (ok, probe bool, wait time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false, 0
	case BreakerHalfOpen:
		// A probe is already in flight elsewhere; check back soon.
		return false, false, b.probeEvery / 4
	default: // open
		if now.Before(b.probeAt) {
			return false, false, b.probeAt.Sub(now)
		}
		b.state = BreakerHalfOpen
		b.probes++
		return true, true, 0
	}
}

// probeResult reports the outcome of the half-open healthz probe taken via
// admit: success closes the breaker, failure (including a probe the caller
// could not complete) re-opens it for another interval.
func (b *breaker) probeResult(now time.Time, healthy bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if healthy {
		b.state = BreakerClosed
		b.consecutive = 0
		return
	}
	b.state = BreakerOpen
	b.probeAt = now.Add(b.probeEvery)
}

// onSuccess records a successful shard interaction.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.successes++
	b.consecutive = 0
	b.state = BreakerClosed
}

// onFailure records a health-relevant shard failure, opening the breaker
// at the threshold. Callers must NOT route context-caused errors here.
func (b *breaker) onFailure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	b.consecutive++
	if b.state == BreakerClosed && b.consecutive >= b.threshold {
		b.state = BreakerOpen
		b.opens++
		b.probeAt = now.Add(b.probeEvery)
	}
}

// snapshot returns the current stats (URL filled by the caller).
func (b *breaker) snapshot() WorkerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return WorkerStats{
		State:               b.state,
		ConsecutiveFailures: b.consecutive,
		Successes:           b.successes,
		Failures:            b.failures,
		Opens:               b.opens,
		Probes:              b.probes,
	}
}
