// The memoized-report cache: completed Reports keyed by the full request
// fingerprint, LRU-evicted under an approximate byte bound. Because the
// fingerprint covers every result-affecting input (circuit content, engine,
// frames, vectors, seed, rules, bias, signal probabilities, latch
// parameters), a hit can be served verbatim — byte-identical to recomputing
// — and repeat sweeps cost one map lookup.

package serd

import (
	"container/list"
	"sync"

	"repro/internal/ser"
)

// CacheStats is a point-in-time report-cache observation.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// reportBytes approximates a Report's resident size: the NodeSER slice (ID,
// four float64 factors, a name header) plus the name strings.
func reportBytes(rep *ser.Report) int64 {
	size := int64(128)
	for i := range rep.Nodes {
		size += 64 + int64(len(rep.Nodes[i].Name))
	}
	return size
}

type reportEntry struct {
	fp     string
	report *ser.Report
	size   int64
}

// reportCache is a byte-bounded LRU of completed Reports by fingerprint.
type reportCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[string]*list.Element
	lru      *list.List
	stats    CacheStats
}

func newReportCache(maxBytes int64) *reportCache {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &reportCache{maxBytes: maxBytes, entries: map[string]*list.Element{}, lru: list.New()}
}

// get returns the memoized report for the fingerprint, if resident. The
// returned Report is shared and must be treated as immutable.
func (rc *reportCache) get(fp string) (*ser.Report, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if el, ok := rc.entries[fp]; ok {
		rc.lru.MoveToFront(el)
		rc.stats.Hits++
		return el.Value.(*reportEntry).report, true
	}
	rc.stats.Misses++
	return nil, false
}

// put memoizes a completed report under its fingerprint, evicting LRU
// entries past the byte bound (an oversize single report is still kept —
// the bound protects the steady state).
func (rc *reportCache) put(fp string, rep *ser.Report) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if el, ok := rc.entries[fp]; ok {
		rc.lru.MoveToFront(el)
		return
	}
	e := &reportEntry{fp: fp, report: rep, size: reportBytes(rep)}
	rc.entries[fp] = rc.lru.PushFront(e)
	rc.bytes += e.size
	for rc.bytes > rc.maxBytes && rc.lru.Len() > 1 {
		back := rc.lru.Back()
		be := back.Value.(*reportEntry)
		rc.lru.Remove(back)
		delete(rc.entries, be.fp)
		rc.bytes -= be.size
		rc.stats.Evictions++
	}
}

// snapshot returns the current counters.
func (rc *reportCache) snapshot() CacheStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	s := rc.stats
	s.Entries = rc.lru.Len()
	s.Bytes = rc.bytes
	s.MaxBytes = rc.maxBytes
	return s
}
