// The coordinator half of the distributed mode: cut the sweep's node-ID
// space into shards, dispatch them over the worker daemons, commit returned
// ranges against one checkpoint identity, retry failures, and fold the
// committed values into the full P_sensitized vector. See the package doc
// for why the fold is bit-identical to a single-process sweep.

package serd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"path/filepath"
	"sync"

	"repro/internal/netlist"
	"repro/internal/resume"
	"repro/internal/ser"
)

// floatBits converts shard values to their wire representation.
func floatBits(vals []float64) []uint64 {
	out := make([]uint64, len(vals))
	for i, v := range vals {
		out[i] = math.Float64bits(v)
	}
	return out
}

// bitsFloat inverts floatBits.
func bitsFloat(bits []uint64) []float64 {
	out := make([]float64, len(bits))
	for i, b := range bits {
		out[i] = math.Float64frombits(b)
	}
	return out
}

// coordinator shards site sweeps over a fixed worker fleet.
type coordinator struct {
	workers       []string
	shards        int // target shard count per sweep
	maxAttempts   int // dispatch attempts per shard before the request fails
	checkpointDir string
	client        *http.Client
	logf          func(format string, args ...any)
}

func newCoordinator(cfg Config, logf func(format string, args ...any)) *coordinator {
	perWorker := cfg.ShardsPerWorker
	if perWorker <= 0 {
		perWorker = 2
	}
	attempts := cfg.ShardAttempts
	if attempts <= 0 {
		attempts = 2 + len(cfg.Workers)
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	return &coordinator{
		workers:       cfg.Workers,
		shards:        perWorker * len(cfg.Workers),
		maxAttempts:   attempts,
		checkpointDir: cfg.CheckpointDir,
		client:        client,
		logf:          logf,
	}
}

// shardTask is one dispatchable range with its retry budget.
type shardTask struct {
	lo, hi   int
	attempts int
}

// pendingShardTasks tiles the complement of the committed ranges into
// shard-sized tasks — on a fresh sweep the whole [0, n), on a resumed one
// only the holes a previous coordinator run (or a failed request) left.
func pendingShardTasks(n, chunk int, done []resume.Range) []shardTask {
	var tasks []shardTask
	emit := func(lo, hi int) {
		for ; lo+chunk < hi; lo += chunk {
			tasks = append(tasks, shardTask{lo: lo, hi: lo + chunk})
		}
		if lo < hi {
			tasks = append(tasks, shardTask{lo: lo, hi: hi})
		}
	}
	next := 0
	for _, r := range done {
		emit(next, r.Lo)
		next = r.Hi
	}
	emit(next, n)
	return tasks
}

// psensitized computes the full P_sensitized vector for the described
// request by sharding it over the worker fleet. Committed shard ranges are
// tracked through the resume machinery — file-backed under CheckpointDir
// (durable across requests: a retried request re-dispatches only the
// missing ranges), in-memory otherwise — and the returned vector is
// bit-identical to a local full sweep at any shard partitioning, worker
// count, and retry history.
func (co *coordinator) psensitized(ctx context.Context, c *netlist.Circuit, cfg ser.Config, src CircuitSource, info ser.Info) ([]float64, error) {
	n := c.N()
	ck := resume.InMemory()
	if co.checkpointDir != "" {
		ck = resume.New(filepath.Join(co.checkpointDir, info.Fingerprint+".ckpt"), 0)
	}
	st, err := ck.Arm(info.Engine, info.Fingerprint, resume.KindSites, n)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	restored := st.RestoreSites(out)
	chunk := (n + co.shards - 1) / co.shards
	tasks := pendingShardTasks(n, chunk, restored)
	if len(tasks) == 0 {
		return out, nil
	}

	// Dispatch: one puller goroutine per worker, a buffered task queue that
	// failed tasks are returned to (a popped task always leaves room for its
	// own requeue), completion/abort signaled through done. A worker that
	// fails twice in a row retires — a dead daemon must not keep draining
	// the queue's retry budget — and the live workers absorb its load.
	queue := make(chan shardTask, len(tasks))
	for _, t := range tasks {
		queue <- t
	}
	var (
		mu      sync.Mutex
		left    = len(tasks)
		fatal   error
		lastErr error
		done    = make(chan struct{})
		wg      sync.WaitGroup
	)
	finish := func(t shardTask, vals []float64, err error) {
		mu.Lock()
		defer mu.Unlock()
		if fatal != nil {
			return
		}
		if err == nil {
			copy(out[t.lo:t.hi], vals)
			if cerr := st.CommitSites(t.lo, t.hi, vals); cerr != nil && fatal == nil {
				fatal = cerr
				close(done)
				return
			}
			left--
			if left == 0 {
				close(done)
			}
			return
		}
		lastErr = err
		t.attempts++
		if t.attempts >= co.maxAttempts {
			fatal = fmt.Errorf("serd: shard [%d,%d) failed %d times: %w", t.lo, t.hi, t.attempts, err)
			close(done)
			return
		}
		queue <- t
	}
	for _, base := range co.workers {
		wg.Add(1)
		go func(base string) {
			defer wg.Done()
			consecutive := 0
			for {
				select {
				case <-done:
					return
				case <-ctx.Done():
					return
				case t := <-queue:
					vals, err := co.callShard(ctx, base, src, cfg, info, t.lo, t.hi)
					finish(t, vals, err)
					if err != nil {
						consecutive++
						if consecutive >= 2 {
							co.logf("serd: worker %s retired after %d consecutive failures: %v", base, consecutive, err)
							return
						}
					} else {
						consecutive = 0
					}
				}
			}
		}(base)
	}
	wg.Wait()
	// Flush whatever committed — under a checkpoint dir, even a failed
	// request leaves durable progress for the next attempt.
	if ferr := st.Flush(); ferr != nil && fatal == nil {
		fatal = ferr
	}
	switch {
	case fatal != nil:
		return nil, fatal
	case ctx.Err() != nil:
		return nil, ctx.Err()
	case left > 0:
		return nil, fmt.Errorf("serd: %d shard(s) undispatched: every worker is unavailable (last error: %w)", left, lastErr)
	}
	return out, nil
}

// callShard posts one shard request to a worker and validates the response:
// the returned fingerprint must match the coordinator's — a worker running
// a different build or model would otherwise fold skewed values into a
// result stamped with this sweep's identity — and the range and value count
// must echo the request.
func (co *coordinator) callShard(ctx context.Context, base string, src CircuitSource, cfg ser.Config, info ser.Info, lo, hi int) ([]float64, error) {
	sreq := ShardRequest{
		Circuit: src,
		Options: optionsFromConfig(cfg),
		Lo:      lo,
		Hi:      hi,
	}
	body, err := json.Marshal(&sreq)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/shard", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := co.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("serd: worker %s: shard [%d,%d): HTTP %d: %s", base, lo, hi, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var sresp ShardResponse
	if err := json.NewDecoder(resp.Body).Decode(&sresp); err != nil {
		return nil, fmt.Errorf("serd: worker %s: shard [%d,%d): %w", base, lo, hi, err)
	}
	if sresp.Fingerprint != info.Fingerprint {
		return nil, fmt.Errorf("serd: worker %s computed fingerprint %.12s for a sweep fingerprinted %.12s (version or model skew); refusing to fold", base, sresp.Fingerprint, info.Fingerprint)
	}
	if sresp.Lo != lo || sresp.Hi != hi || len(sresp.Values) != hi-lo {
		return nil, fmt.Errorf("serd: worker %s returned range [%d,%d) with %d values for requested [%d,%d)", base, sresp.Lo, sresp.Hi, len(sresp.Values), lo, hi)
	}
	return bitsFloat(sresp.Values), nil
}

// optionsFromConfig maps a resolved ser.Config back onto wire Options for
// shard dispatch. Only fields the analyze protocol itself accepts can be
// set (the handler built cfg from wire Options), so the round-trip is
// lossless for everything result-affecting; the per-request timeout stays
// coordinator-side (the shard inherits cancellation through the request
// context), and worker count is left to each worker's own sizing.
func optionsFromConfig(cfg ser.Config) Options {
	o := Options{
		Engine:    cfg.Engine,
		Frames:    cfg.Frames,
		Vectors:   cfg.MC.Vectors,
		SPVectors: cfg.SP.Vectors,
		Seed:      cfg.MC.Seed,
		BDDBudget: cfg.BDDBudget,
	}
	o.Method = cfg.Method.String()
	o.SPMethod = cfg.SPMethod.String()
	o.Rules = cfg.Rules.String()
	if cfg.Latch != nil {
		o.Latch = &LatchParams{
			ClockPeriodPs:       cfg.Latch.ClockPeriodPs,
			WindowPs:            cfg.Latch.WindowPs,
			PulseWidthPs:        cfg.Latch.PulseWidthPs,
			AttenuationPerLevel: cfg.Latch.AttenuationPerLevel,
		}
	}
	return o
}
