// The coordinator half of the distributed mode: cut the sweep's node-ID
// space into shards, dispatch them over the worker daemons, commit returned
// ranges against one checkpoint identity, and fold the committed values
// into the full P_sensitized vector (see the package doc for why the fold
// is bit-identical to a single-process sweep). Dispatch is chaos-hardened:
// failed shards requeue with exponential backoff and deterministic seeded
// jitter, each attempt carries an optional per-shard deadline so a stalled
// worker cannot hold a shard until the whole-request deadline, idle workers
// hedge the final straggler shards (first valid response wins, the loser's
// attempt is cancelled), shard values are validated (finite, in [0,1])
// before folding, and per-worker circuit breakers with healthz probing
// replace permanent retirement. With AllowPartial, a shard that exhausts
// its retry budget becomes an explicit uncovered hole instead of failing
// the request.

package serd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netlist"
	"repro/internal/resume"
	"repro/internal/ser"
)

// floatBits converts shard values to their wire representation.
func floatBits(vals []float64) []uint64 {
	out := make([]uint64, len(vals))
	for i, v := range vals {
		out[i] = math.Float64bits(v)
	}
	return out
}

// bitsFloat inverts floatBits.
func bitsFloat(bits []uint64) []float64 {
	out := make([]float64, len(bits))
	for i, b := range bits {
		out[i] = math.Float64frombits(b)
	}
	return out
}

// CoordinatorStats is the coordinator's health and dispatch counters,
// exposed through GET /v1/stats on coordinator daemons.
type CoordinatorStats struct {
	Workers      []WorkerStats `json:"workers"`
	Dispatched   int64         `json:"dispatched"`    // shard attempts issued
	Retries      int64         `json:"retries"`       // failed shards requeued with backoff
	Hedges       int64         `json:"hedges"`        // duplicate straggler dispatches
	Holes        int64         `json:"holes"`         // shards abandoned into partial results
	ValueRejects int64         `json:"value_rejects"` // responses refused for invalid values
}

// coordinator shards site sweeps over a fixed worker fleet. It lives for
// the daemon's lifetime, so its per-worker breakers carry health across
// requests: a worker opened by one request's failures is probed and
// rejoins for later requests without a coordinator restart.
type coordinator struct {
	workers       []string
	shards        int // target shard count per sweep
	maxAttempts   int // dispatch attempts per shard before it is exhausted
	checkpointDir string
	client        *http.Client
	logf          func(format string, args ...any)

	shardTimeout time.Duration // per-attempt deadline (0 = none)
	backoffBase  time.Duration // base requeue delay
	hedgeDelay   time.Duration // straggler age before hedging (< 0 = off)
	breakers     map[string]*breaker

	jmu    sync.Mutex
	jstate uint64 // splitmix64 jitter stream (seeded, deterministic)

	dispatched   atomic.Int64
	retries      atomic.Int64
	hedges       atomic.Int64
	holes        atomic.Int64
	valueRejects atomic.Int64
}

func newCoordinator(cfg Config, logf func(format string, args ...any)) *coordinator {
	perWorker := cfg.ShardsPerWorker
	if perWorker <= 0 {
		perWorker = 2
	}
	attempts := cfg.ShardAttempts
	if attempts <= 0 {
		attempts = 2 + len(cfg.Workers)
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	backoff := cfg.RetryBackoff
	if backoff <= 0 {
		backoff = 25 * time.Millisecond
	}
	hedge := cfg.HedgeDelay
	if hedge == 0 {
		hedge = 50 * time.Millisecond
	}
	seed := cfg.RetrySeed
	if seed == 0 {
		seed = 1
	}
	breakers := make(map[string]*breaker, len(cfg.Workers))
	for _, w := range cfg.Workers {
		breakers[w] = newBreaker(cfg.BreakerThreshold, cfg.BreakerProbe)
	}
	return &coordinator{
		workers:       cfg.Workers,
		shards:        perWorker * len(cfg.Workers),
		maxAttempts:   attempts,
		checkpointDir: cfg.CheckpointDir,
		client:        client,
		logf:          logf,
		shardTimeout:  cfg.ShardTimeout,
		backoffBase:   backoff,
		hedgeDelay:    hedge,
		breakers:      breakers,
		jstate:        seed,
	}
}

// stats snapshots the dispatch counters and per-worker breaker states.
func (co *coordinator) stats() *CoordinatorStats {
	cs := &CoordinatorStats{
		Dispatched:   co.dispatched.Load(),
		Retries:      co.retries.Load(),
		Hedges:       co.hedges.Load(),
		Holes:        co.holes.Load(),
		ValueRejects: co.valueRejects.Load(),
	}
	for _, w := range co.workers {
		ws := co.breakers[w].snapshot()
		ws.URL = w
		cs.Workers = append(cs.Workers, ws)
	}
	return cs
}

// jitter draws the next value in [0, 1) from the seeded splitmix64 stream.
// The stream is deterministic for a given RetrySeed and draw order, which
// is what makes chaos-test fault schedules replayable.
func (co *coordinator) jitter() float64 {
	co.jmu.Lock()
	defer co.jmu.Unlock()
	co.jstate += 0x9e3779b97f4a7c15
	z := co.jstate
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// backoffDelay is the wait before redispatching a shard that has failed
// `attempts` times: base·2^(attempts-1), capped at 64·base, scaled by a
// deterministic jitter factor in [0.5, 1.5) so a burst of failures does
// not resynchronize into a retry thundering herd.
func (co *coordinator) backoffDelay(attempts int) time.Duration {
	shift := attempts - 1
	if shift > 6 {
		shift = 6
	}
	d := co.backoffBase << uint(shift)
	return time.Duration((0.5 + co.jitter()) * float64(d))
}

// shardTask is one dispatchable range with its retry budget.
type shardTask struct {
	lo, hi   int
	attempts int
}

// pendingShardTasks tiles the complement of the committed ranges into
// shard-sized tasks — on a fresh sweep the whole [0, n), on a resumed one
// only the holes a previous coordinator run (or a failed request) left.
func pendingShardTasks(n, chunk int, done []resume.Range) []shardTask {
	var tasks []shardTask
	emit := func(lo, hi int) {
		for ; lo+chunk < hi; lo += chunk {
			tasks = append(tasks, shardTask{lo: lo, hi: lo + chunk})
		}
		if lo < hi {
			tasks = append(tasks, shardTask{lo: lo, hi: hi})
		}
	}
	next := 0
	for _, r := range done {
		emit(next, r.Lo)
		next = r.Hi
	}
	emit(next, n)
	return tasks
}

// uncoveredRanges returns the complement of the committed ranges over
// [0, n) — the holes a partial result must disclose.
func uncoveredRanges(n int, done []resume.Range) []Range {
	var out []Range
	next := 0
	for _, r := range done {
		if next < r.Lo {
			out = append(out, Range{Lo: next, Hi: r.Lo})
		}
		next = r.Hi
	}
	if next < n {
		out = append(out, Range{Lo: next, Hi: n})
	}
	return out
}

// flight is one shard range currently being attempted by one or two
// workers (two when hedged). attempts maps worker base URL to the cancel
// function of its in-flight attempt; a nil value is a claim registered by
// take before the attempt context exists.
type flight struct {
	task      shardTask
	started   time.Time
	attempts  map[string]context.CancelFunc
	committed bool
}

// dispatch is the per-request dispatch state shared by the worker pullers.
type dispatch struct {
	co   *coordinator
	ctx  context.Context
	st   *resume.State
	out  []float64
	src  CircuitSource
	cfg  ser.Config
	info ser.Info

	mu      sync.Mutex
	pending []shardTask
	flights map[int]*flight // keyed by task.lo
	left    int             // tasks not yet committed or abandoned
	lastErr error
	fatal   error
	partial bool // AllowPartial: exhausted shards become holes
	closed  bool
	done    chan struct{}
	wake    chan struct{} // closed+replaced to nudge idle pullers
}

func (d *dispatch) wakeLocked() {
	close(d.wake)
	d.wake = make(chan struct{})
}

func (d *dispatch) closeLocked() {
	if !d.closed {
		d.closed = true
		close(d.done)
	}
}

// take hands the calling worker its next unit of work: a pending task if
// any, otherwise a hedge of the oldest eligible straggler (a flight with a
// single live attempt by another worker, older than the hedge delay, with
// retry budget left). The returned flight has this worker's claim already
// registered. When there is nothing to do it returns a wake channel and a
// wait hint for idle sleeping.
func (d *dispatch) take(base string, now time.Time) (fl *flight, hedged bool, wakeCh chan struct{}, wait time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, false, nil, 0
	}
	if len(d.pending) > 0 {
		t := d.pending[0]
		d.pending = d.pending[1:]
		fl = &flight{task: t, started: now, attempts: map[string]context.CancelFunc{base: nil}}
		d.flights[t.lo] = fl
		return fl, false, nil, 0
	}
	wait = 50 * time.Millisecond
	if d.co.hedgeDelay >= 0 {
		var best *flight
		//serlint:allow detrange hedge-candidate selection is scheduling only: whichever flight is hedged, the winning values fold placement-only, so results are independent of iteration order
		for _, f := range d.flights {
			if f.committed || len(f.attempts) != 1 || f.task.attempts >= d.co.maxAttempts {
				continue
			}
			if _, mine := f.attempts[base]; mine {
				continue
			}
			if eligibleAt := f.started.Add(d.co.hedgeDelay); now.Before(eligibleAt) {
				if w := eligibleAt.Sub(now); w < wait {
					wait = w
				}
				continue
			}
			if best == nil || f.started.Before(best.started) {
				best = f
			}
		}
		if best != nil {
			best.attempts[base] = nil
			return best, true, nil, 0
		}
	}
	return nil, false, d.wake, wait
}

// register swaps this worker's claim for the live attempt's cancel
// function. It reports false — and withdraws the claim — when the flight
// resolved while the attempt context was being prepared.
func (d *dispatch) register(fl *flight, base string, cancel context.CancelFunc) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if fl.committed || d.closed {
		delete(fl.attempts, base)
		return false
	}
	fl.attempts[base] = cancel
	return true
}

// attemptContext derives one shard attempt's context: cancelable (for
// hedging) and deadline-bounded when a per-shard timeout is configured.
func (d *dispatch) attemptContext() (context.Context, context.CancelFunc) {
	if d.co.shardTimeout > 0 {
		return context.WithTimeout(d.ctx, d.co.shardTimeout)
	}
	return context.WithCancel(d.ctx)
}

// finish resolves one completed shard attempt: commit on the first valid
// response (cancelling any hedge sibling), requeue with backoff on a
// health-relevant failure, abandon into a hole (AllowPartial) or fail the
// request when the retry budget is exhausted. Failures caused by the
// request's own context (client disconnect, request deadline) and attempts
// cancelled because a hedge sibling already committed are not health
// signals and never touch the breaker — a client hanging up must not
// retire a healthy worker.
func (d *dispatch) finish(base string, br *breaker, fl *flight, vals []float64, err error) {
	//serlint:allow deferunlock resolution paths must release d.mu before touching the breaker and the checkpoint store (lock-ordering), so every exit unlocks manually; the critical sections are panic-free map/slice bookkeeping
	d.mu.Lock()
	delete(fl.attempts, base)
	if fl.committed || d.closed {
		d.mu.Unlock()
		return
	}
	if err == nil {
		fl.committed = true
		//serlint:allow detrange commutative: every sibling attempt is cancelled regardless of visit order
		for _, cancel := range fl.attempts {
			if cancel != nil {
				cancel()
			}
		}
		delete(d.flights, fl.task.lo)
		copy(d.out[fl.task.lo:fl.task.hi], vals)
		if cerr := d.st.CommitSites(fl.task.lo, fl.task.hi, vals); cerr != nil {
			d.fatal = cerr
			d.closeLocked()
			d.mu.Unlock()
			return
		}
		d.left--
		if d.left == 0 {
			d.closeLocked()
		} else {
			d.wakeLocked()
		}
		d.mu.Unlock()
		br.onSuccess()
		return
	}
	if d.ctx.Err() != nil {
		// The request itself is over; this failure says nothing about the
		// worker and there is nothing left to retry.
		d.mu.Unlock()
		return
	}
	d.lastErr = err
	fl.task.attempts++
	if len(fl.attempts) > 0 {
		// A hedge sibling is still racing this shard: leave the flight to
		// it instead of requeueing a range that may yet succeed.
		d.mu.Unlock()
		br.onFailure(time.Now())
		return
	}
	delete(d.flights, fl.task.lo)
	t := fl.task
	if t.attempts >= d.co.maxAttempts {
		if d.partial {
			d.co.holes.Add(1)
			d.co.logf("serd: shard [%d,%d) abandoned after %d attempts (%v); continuing toward a partial result", t.lo, t.hi, t.attempts, err)
			d.left--
			if d.left == 0 {
				d.closeLocked()
			}
			d.mu.Unlock()
			br.onFailure(time.Now())
			return
		}
		d.fatal = fmt.Errorf("serd: shard [%d,%d) failed %d times: %w", t.lo, t.hi, t.attempts, err)
		d.closeLocked()
		d.mu.Unlock()
		br.onFailure(time.Now())
		return
	}
	delay := d.co.backoffDelay(t.attempts)
	d.co.retries.Add(1)
	d.mu.Unlock()
	br.onFailure(time.Now())
	time.AfterFunc(delay, func() {
		d.mu.Lock()
		defer d.mu.Unlock()
		if !d.closed {
			d.pending = append(d.pending, t)
			d.wakeLocked()
		}
	})
}

// failIfUnreachable resolves a dispatch whose remaining work the fleet
// can no longer reach: every worker's breaker is open and no shard
// attempt is in flight, so the pending ranges would wait on health probes
// that are not succeeding — possibly forever, if the fleet is gone for
// good. A partial dispatch abandons the remaining ranges as holes; a
// strict one fails the request (the breakers persist, so a later request
// still readmits the fleet the moment a probe succeeds). Called by a
// puller whose own health probe just failed; reports true when the
// dispatch was closed and the puller should stop.
func (d *dispatch) failIfUnreachable(perr error) bool {
	//serlint:allow detrange commutative all-open predicate over the breaker set; order cannot change the answer
	for _, br := range d.co.breakers {
		if br.snapshot().State != BreakerOpen {
			return false
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return true
	}
	//serlint:allow detrange commutative any-in-flight predicate; order cannot change the answer
	for _, f := range d.flights {
		if len(f.attempts) > 0 {
			return false
		}
	}
	err := fmt.Errorf("serd: all %d worker(s) unhealthy with %d shard range(s) unresolved (last shard error: %v): %w", len(d.co.breakers), d.left, d.lastErr, perr)
	if d.partial {
		d.co.holes.Add(int64(d.left))
		d.co.logf("%v; continuing toward a partial result", err)
		d.left = 0
		d.closeLocked()
		return true
	}
	d.fatal = err
	d.closeLocked()
	return true
}

// sleepUntil waits for a wake signal (nil to ignore), the wait hint, or
// the end of the dispatch/request. It reports false when the worker
// should stop pulling.
func (d *dispatch) sleepUntil(wakeCh <-chan struct{}, wait time.Duration) bool {
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	if wakeCh == nil {
		select {
		case <-d.done:
			return false
		case <-d.ctx.Done():
			return false
		case <-timer.C:
			return true
		}
	}
	select {
	case <-d.done:
		return false
	case <-d.ctx.Done():
		return false
	case <-wakeCh:
		return true
	case <-timer.C:
		return true
	}
}

// runWorker is one worker's puller loop: gate on the worker's breaker
// (probing /v1/healthz when the open interval elapses), take work, attempt
// it under the per-shard deadline, and resolve the outcome. The loop exits
// when the dispatch completes, the request context ends, or — via
// failIfUnreachable — the whole fleet is unhealthy with work still
// unresolved. Short of that, an unhealthy worker idles on its breaker
// instead of retiring, so it rejoins as soon as a probe succeeds.
func (co *coordinator) runWorker(d *dispatch, base string) {
	br := co.breakers[base]
	for {
		select {
		case <-d.done:
			return
		case <-d.ctx.Done():
			return
		default:
		}
		ok, probe, wait := br.admit(time.Now())
		if !ok {
			if !d.sleepUntil(nil, wait) {
				return
			}
			continue
		}
		if probe {
			healthy := co.probeWorker(d.ctx, base) == nil
			br.probeResult(time.Now(), healthy)
			if !healthy {
				if d.failIfUnreachable(fmt.Errorf("worker %s health probe failed", base)) {
					return
				}
				continue
			}
		}
		fl, hedged, wakeCh, wait := d.take(base, time.Now())
		if fl == nil {
			if wakeCh == nil {
				return // dispatch closed
			}
			if !d.sleepUntil(wakeCh, wait) {
				return
			}
			continue
		}
		if hedged {
			co.hedges.Add(1)
		}
		actx, cancel := d.attemptContext()
		if !d.register(fl, base, cancel) {
			cancel()
			continue
		}
		co.dispatched.Add(1)
		vals, err := co.callShard(actx, base, d.src, d.cfg, d.info, fl.task.lo, fl.task.hi)
		cancel()
		d.finish(base, br, fl, vals, err)
	}
}

// probeWorker sends the lightweight health probe an open breaker requires
// before readmitting a worker.
func (co *coordinator) probeWorker(ctx context.Context, base string) error {
	pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, base+"/v1/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := co.client.Do(req)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 256))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serd: worker %s healthz: HTTP %d", base, resp.StatusCode)
	}
	return nil
}

// psensitized computes the full P_sensitized vector for the described
// request by sharding it over the worker fleet. Committed shard ranges are
// tracked through the resume machinery — file-backed under CheckpointDir
// (durable across requests: a retried request re-dispatches only the
// missing ranges; a corrupt checkpoint is quarantined and the sweep
// restarts fresh), in-memory otherwise — and the returned vector is
// bit-identical to a local full sweep at any shard partitioning, worker
// count, retry and hedge history. With allowPartial, shards that exhaust
// their retry budget are returned as explicit uncovered ranges instead of
// failing the request; the values at uncovered positions are unspecified
// and must not be read.
func (co *coordinator) psensitized(ctx context.Context, c *netlist.Circuit, cfg ser.Config, src CircuitSource, info ser.Info, allowPartial bool) ([]float64, []Range, error) {
	n := c.N()
	ck := resume.InMemory()
	if co.checkpointDir != "" {
		ck = resume.New(filepath.Join(co.checkpointDir, info.Fingerprint+".ckpt"), 0)
	}
	st, ce, err := ck.ArmRecovering(info.Engine, info.Fingerprint, resume.KindSites, n)
	if ce != nil {
		co.logf("serd: %v; restarting the sweep fresh", ce)
	}
	if err != nil {
		return nil, nil, err
	}
	out := make([]float64, n)
	restored := st.RestoreSites(out)
	chunk := (n + co.shards - 1) / co.shards
	tasks := pendingShardTasks(n, chunk, restored)
	if len(tasks) == 0 {
		return out, nil, nil
	}

	d := &dispatch{
		co:      co,
		ctx:     ctx,
		st:      st,
		out:     out,
		src:     src,
		cfg:     cfg,
		info:    info,
		pending: tasks,
		flights: make(map[int]*flight),
		left:    len(tasks),
		partial: allowPartial,
		done:    make(chan struct{}),
		wake:    make(chan struct{}),
	}
	var wg sync.WaitGroup
	for _, base := range co.workers {
		wg.Add(1)
		go func(base string) {
			defer wg.Done()
			co.runWorker(d, base)
		}(base)
	}
	wg.Wait()
	// Flush whatever committed — under a checkpoint dir, even a failed
	// request leaves durable progress for the next attempt.
	if ferr := st.Flush(); ferr != nil && d.fatal == nil {
		d.fatal = ferr
	}
	switch {
	case d.fatal != nil:
		return nil, nil, d.fatal
	case ctx.Err() != nil:
		return nil, nil, ctx.Err()
	case d.left > 0:
		// Unreachable by construction (pullers only stop at done/ctx), but
		// refuse to hand back a silently incomplete vector.
		return nil, nil, fmt.Errorf("serd: %d shard(s) unresolved (last error: %v)", d.left, d.lastErr)
	}
	if uncovered := uncoveredRanges(n, st.DoneRanges()); len(uncovered) > 0 {
		return out, uncovered, nil
	}
	return out, nil, nil
}

// callShard posts one shard request to a worker and validates the response:
// the returned fingerprint must match the coordinator's — a worker running
// a different build or model would otherwise fold skewed values into a
// result stamped with this sweep's identity — the range and value count
// must echo the request, and every value must be a finite probability in
// [0,1]; a NaN, infinity or out-of-range value is a per-worker error (it
// counts toward the breaker) rather than something to fold into a
// committed checkpoint.
func (co *coordinator) callShard(ctx context.Context, base string, src CircuitSource, cfg ser.Config, info ser.Info, lo, hi int) ([]float64, error) {
	sreq := ShardRequest{
		Circuit: src,
		Options: optionsFromConfig(cfg),
		Lo:      lo,
		Hi:      hi,
	}
	body, err := json.Marshal(&sreq)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/shard", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := co.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("serd: worker %s: shard [%d,%d): HTTP %d: %s", base, lo, hi, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var sresp ShardResponse
	if err := json.NewDecoder(resp.Body).Decode(&sresp); err != nil {
		return nil, fmt.Errorf("serd: worker %s: shard [%d,%d): %w", base, lo, hi, err)
	}
	if sresp.Fingerprint != info.Fingerprint {
		return nil, fmt.Errorf("serd: worker %s computed fingerprint %.12s for a sweep fingerprinted %.12s (version or model skew); refusing to fold", base, sresp.Fingerprint, info.Fingerprint)
	}
	if sresp.Lo != lo || sresp.Hi != hi || len(sresp.Values) != hi-lo {
		return nil, fmt.Errorf("serd: worker %s returned range [%d,%d) with %d values for requested [%d,%d)", base, sresp.Lo, sresp.Hi, len(sresp.Values), lo, hi)
	}
	vals := bitsFloat(sresp.Values)
	for i, v := range vals {
		if math.IsNaN(v) || v < 0 || v > 1 {
			co.valueRejects.Add(1)
			return nil, fmt.Errorf("serd: worker %s: shard [%d,%d): value for site %d is %s (bits 0x%016x), not a probability in [0,1]; refusing to fold",
				base, lo, hi, lo+i, strconv.FormatFloat(v, 'g', -1, 64), math.Float64bits(v))
		}
	}
	return vals, nil
}

// optionsFromConfig maps a resolved ser.Config back onto wire Options for
// shard dispatch. Only fields the analyze protocol itself accepts can be
// set (the handler built cfg from wire Options), so the round-trip is
// lossless for everything result-affecting; the per-request timeout stays
// coordinator-side (the shard inherits cancellation through the request
// context), and worker count is left to each worker's own sizing.
func optionsFromConfig(cfg ser.Config) Options {
	o := Options{
		Engine:    cfg.Engine,
		Frames:    cfg.Frames,
		Vectors:   cfg.MC.Vectors,
		SPVectors: cfg.SP.Vectors,
		Seed:      cfg.MC.Seed,
		BDDBudget: cfg.BDDBudget,
	}
	o.Method = cfg.Method.String()
	o.SPMethod = cfg.SPMethod.String()
	o.Rules = cfg.Rules.String()
	if cfg.Latch != nil {
		o.Latch = &LatchParams{
			ClockPeriodPs:       cfg.Latch.ClockPeriodPs,
			WindowPs:            cfg.Latch.WindowPs,
			PulseWidthPs:        cfg.Latch.PulseWidthPs,
			AttenuationPerLevel: cfg.Latch.AttenuationPerLevel,
		}
	}
	return o
}
