// Chaos acceptance matrix for the fault-tolerant coordinator: under every
// recoverable fault schedule the merged report must stay byte-identical to
// the single-process run — not merely close — and unrecoverable schedules
// must end in a clean failure or, with AllowPartial, an explicitly
// disclosed partial result. Faults are injected by the deterministic
// internal/chaos proxy in front of each worker's /v1/shard endpoint
// (healthz stays clean so breaker probes tell the truth); the seed comes
// from SERD_CHAOS_SEED (default 1), and failing runs write their dealt
// fault schedules under SERD_CHAOS_DIR for deterministic replay.

package serd

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/resume"
)

// chaosSeed reads the matrix seed from SERD_CHAOS_SEED (default 1).
func chaosSeed(t *testing.T) uint64 {
	t.Helper()
	v := os.Getenv("SERD_CHAOS_SEED")
	if v == "" {
		return 1
	}
	seed, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		t.Fatalf("SERD_CHAOS_SEED=%q: %v", v, err)
	}
	return seed
}

// shardOnly matches the dispatch endpoint, leaving health probes clean.
func shardOnly(r *http.Request) bool { return r.URL.Path == "/v1/shard" }

// chaosFleet starts n workers, each behind its own chaos proxy drawing from
// the shared config with a per-worker sub-seed.
func chaosFleet(t *testing.T, n int, cfg chaos.Config) ([]string, []*chaos.Proxy) {
	t.Helper()
	proxies := make([]*chaos.Proxy, n)
	urls := workerFleet(t, n, func(i int, h http.Handler) http.Handler {
		wcfg := cfg
		wcfg.Seed = cfg.Seed + uint64(i)*0x9e37
		proxies[i] = chaos.New(h, wcfg)
		return proxies[i]
	})
	return urls, proxies
}

// resilientConfig is the coordinator tuning the chaos tests run under:
// tight backoff and probe intervals keep wall time down, the per-shard
// deadline converts stalls into one lost attempt, and the retry budget
// covers the fault caps the schedules use.
func resilientConfig(workers []string, seed uint64) Config {
	return Config{
		Workers:         workers,
		ShardsPerWorker: 3,
		ShardAttempts:   8,
		ShardTimeout:    750 * time.Millisecond,
		RetryBackoff:    2 * time.Millisecond,
		RetrySeed:       seed,
		BreakerProbe:    20 * time.Millisecond,
		HedgeDelay:      10 * time.Millisecond,
	}
}

// writeChaosArtifact dumps the dealt fault schedules of a failed chaos test
// under SERD_CHAOS_DIR (CI uploads the directory), so the exact schedule
// can be replayed from its seed.
func writeChaosArtifact(t *testing.T, seed uint64, proxies []*chaos.Proxy) {
	dir := os.Getenv("SERD_CHAOS_DIR")
	if dir == "" || !t.Failed() {
		return
	}
	type artifact struct {
		Test      string          `json:"test"`
		Seed      uint64          `json:"seed"`
		Schedules [][]chaos.Fault `json:"schedules"` // per worker
	}
	a := artifact{Test: t.Name(), Seed: seed}
	for _, p := range proxies {
		a.Schedules = append(a.Schedules, p.Schedule())
	}
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return
	}
	_ = os.MkdirAll(dir, 0o755)
	name := strings.NewReplacer("/", "_", "=", "-").Replace(t.Name()) + ".json"
	_ = os.WriteFile(filepath.Join(dir, name), data, 0o644)
}

// TestChaosMatrixRecoverable: fleets of 1 and 2 workers, every fault kind,
// a bounded fault budget well inside the retry budget — the merged report
// must be byte-identical to the local run, every time, and the schedule
// must actually have dealt faults (a matrix that never injects proves
// nothing).
func TestChaosMatrixRecoverable(t *testing.T) {
	seed := chaosSeed(t)
	src := CircuitSource{Profile: "s953"}
	want := localRun(t, src, Options{})
	for _, fleet := range []int{1, 2} {
		for _, kind := range chaos.Kinds() {
			t.Run(fmt.Sprintf("fleet%d-%s", fleet, kind), func(t *testing.T) {
				maxFaults := 3
				if kind == chaos.KindStall {
					maxFaults = 2 // each stall burns a full shard deadline
				}
				workers, proxies := chaosFleet(t, fleet, chaos.Config{
					Seed:      seed,
					Kinds:     []chaos.Kind{kind},
					Rate:      1,
					MaxFaults: maxFaults,
					Match:     shardOnly,
					Delay:     30 * time.Millisecond,
				})
				t.Cleanup(func() { writeChaosArtifact(t, seed, proxies) })
				_, ts := newTestServer(t, resilientConfig(workers, seed))
				resp := analyze(t, ts.URL, AnalyzeRequest{Circuit: src})
				requireReportsIdentical(t, t.Name(), resp.Report, want)
				dealt := 0
				for _, p := range proxies {
					dealt += len(p.Schedule())
				}
				if dealt == 0 {
					t.Fatal("chaos proxy dealt no faults; the matrix asserted nothing")
				}
			})
		}
	}
}

// TestChaosMixedSchedules: seeded random mixes of all fault kinds at a
// partial rate across a 2-worker fleet — the closest shape to a genuinely
// misbehaving network — still converge byte-identically.
func TestChaosMixedSchedules(t *testing.T) {
	base := chaosSeed(t)
	src := CircuitSource{Profile: "s953"}
	want := localRun(t, src, Options{})
	for i := 0; i < 3; i++ {
		seed := base + uint64(i)*1013
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			workers, proxies := chaosFleet(t, 2, chaos.Config{
				Seed:      seed,
				Rate:      0.4,
				MaxFaults: 5,
				Match:     shardOnly,
				Delay:     20 * time.Millisecond,
			})
			t.Cleanup(func() { writeChaosArtifact(t, seed, proxies) })
			_, ts := newTestServer(t, resilientConfig(workers, seed))
			resp := analyze(t, ts.URL, AnalyzeRequest{Circuit: src})
			requireReportsIdentical(t, t.Name(), resp.Report, want)
		})
	}
}

// TestChaosUnrecoverableFailsCleanly: a fleet whose every shard dispatch is
// dropped, past any retry budget, must end in a clean 500 — no hang, no
// fabricated report.
func TestChaosUnrecoverableFailsCleanly(t *testing.T) {
	seed := chaosSeed(t)
	workers, _ := chaosFleet(t, 1, chaos.Config{
		Seed:  seed,
		Kinds: []chaos.Kind{chaos.KindDrop},
		Rate:  1,
		Match: shardOnly,
	})
	cfg := resilientConfig(workers, seed)
	cfg.ShardAttempts = 2
	_, ts := newTestServer(t, cfg)
	resp := postJSON(t, http.DefaultClient, ts.URL+"/v1/analyze",
		AnalyzeRequest{Circuit: CircuitSource{Profile: "s953"}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("unrecoverable fleet: HTTP %d (want 500)", resp.StatusCode)
	}
}

// TestChaosAllowPartialDegraded: with AllowPartial, the same unrecoverable
// fleet yields HTTP 206 with every node range disclosed as uncovered and an
// empty (never zero-filled) report; the partial result is not memoized, so
// once the fault clears the same daemon serves the complete report.
func TestChaosAllowPartialDegraded(t *testing.T) {
	seed := chaosSeed(t)
	src := CircuitSource{Profile: "s953"}
	want := localRun(t, src, Options{})
	workers, proxies := chaosFleet(t, 1, chaos.Config{
		Seed:  seed,
		Kinds: []chaos.Kind{chaos.KindDrop},
		Rate:  1,
		Match: shardOnly,
	})
	cfg := resilientConfig(workers, seed)
	cfg.ShardAttempts = 2
	_, ts := newTestServer(t, cfg)

	req := AnalyzeRequest{Circuit: src, AllowPartial: true}
	resp := postJSON(t, http.DefaultClient, ts.URL+"/v1/analyze", req)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("degraded analyze: HTTP %d (want 206): %s", resp.StatusCode, body)
	}
	var out AnalyzeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Partial {
		t.Fatal("206 response without partial flag")
	}
	if len(out.Uncovered) != 1 || out.Uncovered[0].Lo != 0 || out.Uncovered[0].Hi != len(want.Nodes) {
		t.Fatalf("uncovered = %v, want the whole range [0,%d)", out.Uncovered, len(want.Nodes))
	}
	if len(out.Report.Nodes) != 0 || out.Report.TotalFIT != 0 {
		t.Fatalf("fully-uncovered report has %d nodes, TotalFIT %v (holes must not be filled)",
			len(out.Report.Nodes), out.Report.TotalFIT)
	}

	// Fault clears: the same daemon must now produce the complete report —
	// and from a real sweep, proving the partial result was never memoized.
	for _, p := range proxies {
		p.Disable()
	}
	full := analyze(t, ts.URL, AnalyzeRequest{Circuit: src, AllowPartial: true})
	if full.Cached || full.Partial {
		t.Fatalf("post-recovery response: cached=%v partial=%v (partial must not be memoized)", full.Cached, full.Partial)
	}
	requireReportsIdentical(t, "post-recovery", full.Report, want)
}

// TestChaosPartialStream: the streamed form of a degraded result terminates
// with a partial frame disclosing the uncovered ranges instead of a total
// frame — a stream consumer cannot mistake it for a complete result.
func TestChaosPartialStream(t *testing.T) {
	seed := chaosSeed(t)
	src := CircuitSource{Profile: "s953"}
	want := localRun(t, src, Options{})
	workers, _ := chaosFleet(t, 1, chaos.Config{
		Seed:  seed,
		Kinds: []chaos.Kind{chaos.KindDrop},
		Rate:  1,
		Match: shardOnly,
	})
	cfg := resilientConfig(workers, seed)
	cfg.ShardAttempts = 2
	_, ts := newTestServer(t, cfg)

	resp := postJSON(t, http.DefaultClient, ts.URL+"/v1/analyze",
		AnalyzeRequest{Circuit: src, Stream: true, AllowPartial: true})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("partial stream: HTTP %d (want 206)", resp.StatusCode)
	}
	lines, err := readLines(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) < 2 {
		t.Fatalf("partial stream: only %d lines", len(lines))
	}
	var hdr StreamHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil || hdr.Type != FrameHeader {
		t.Fatalf("bad header %q (err %v)", lines[0], err)
	}
	var last StreamPartial
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil || last.Type != FramePartial {
		t.Fatalf("terminal frame %q (err %v), want a partial frame", lines[len(lines)-1], err)
	}
	if len(last.Uncovered) != 1 || last.Uncovered[0].Hi != len(want.Nodes) {
		t.Fatalf("partial frame uncovered = %v", last.Uncovered)
	}
	if last.Nodes != 0 || len(lines) != 2 {
		t.Fatalf("fully-uncovered stream carried %d tiles over %d lines", last.Nodes, len(lines))
	}
}

// TestChaosCheckpointCorruptionQuarantine: a corrupted on-disk checkpoint
// must not poison a retried request — the coordinator quarantines the file
// (with its evidence preserved under .corrupt), restarts the sweep from
// scratch, and still converges to the byte-identical report.
func TestChaosCheckpointCorruptionQuarantine(t *testing.T) {
	src := CircuitSource{Profile: "s953"}
	want := localRun(t, src, Options{})
	dir := t.TempDir()
	const perWorker = 4

	// Phase 1: one shard commits, then the worker dies for good, leaving a
	// partial checkpoint on disk.
	served := 0
	w1 := workerFleet(t, 1, func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/shard" {
				if served >= 1 {
					conn, _, err := w.(http.Hijacker).Hijack()
					if err == nil {
						conn.Close()
					}
					return
				}
				served++
			}
			h.ServeHTTP(w, r)
		})
	})
	_, ts1 := newTestServer(t, Config{Workers: w1, ShardsPerWorker: perWorker, ShardAttempts: 1, CheckpointDir: dir})
	resp := postJSON(t, http.DefaultClient, ts1.URL+"/v1/analyze", AnalyzeRequest{Circuit: src})
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("phase-1 request succeeded despite the dead worker")
	}

	// Corrupt the checkpoint: flip one digit inside the committed values so
	// the document still parses but the checksum no longer verifies.
	files, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(files) != 1 {
		t.Fatalf("checkpoint files = %v (err %v)", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	idx := strings.Index(string(data), `"values":[`)
	if idx < 0 {
		t.Fatalf("checkpoint has no values array to tamper: %s", data)
	}
	pos := idx + len(`"values":[`)
	if data[pos] == '1' {
		data[pos] = '2'
	} else {
		data[pos] = '1'
	}
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Phase 2: healthy worker, same directory. The corrupt file must be
	// quarantined and the full sweep re-dispatched.
	var rec *recordingHandler
	w2 := workerFleet(t, 1, func(i int, h http.Handler) http.Handler {
		rec = &recordingHandler{h: h}
		return rec
	})
	_, ts2 := newTestServer(t, Config{Workers: w2, ShardsPerWorker: perWorker, CheckpointDir: dir})
	got := analyze(t, ts2.URL, AnalyzeRequest{Circuit: src})
	requireReportsIdentical(t, "post-quarantine", got.Report, want)

	if _, err := os.Stat(files[0] + ".corrupt"); err != nil {
		t.Fatalf("quarantined checkpoint missing: %v", err)
	}
	rec.mu.Lock()
	calls := len(rec.ranges)
	rec.mu.Unlock()
	if calls != perWorker {
		t.Fatalf("post-quarantine request dispatched %d shards, want the full %d (no stale progress)", calls, perWorker)
	}
}

// coordStats fetches the coordinator half of /v1/stats.
func coordStats(t *testing.T, base string) *CoordinatorStats {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Coordinator == nil {
		t.Fatal("stats response has no coordinator section")
	}
	return stats.Coordinator
}

// TestCancelledRequestDoesNotTripBreaker: a shard attempt that fails only
// because the client hung up must not count against the worker — the next
// request finds the breaker closed and the worker serving.
func TestCancelledRequestDoesNotTripBreaker(t *testing.T) {
	src := CircuitSource{Profile: "s953"}
	want := localRun(t, src, Options{})
	var stalledOnce atomic.Bool
	workers := workerFleet(t, 1, func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/shard" && stalledOnce.CompareAndSwap(false, true) {
				// Stall the first shard until the request is abandoned. The
				// body must be drained first or net/http cannot detect the
				// abort and cancel the context.
				_, _ = io.Copy(io.Discard, r.Body)
				<-r.Context().Done()
				return
			}
			h.ServeHTTP(w, r)
		})
	})
	_, ts := newTestServer(t, Config{Workers: workers, ShardsPerWorker: 2})

	// First request: the worker stalls the first shard and the client gives
	// up. The failure is context-caused, not the worker's.
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	body, _ := json.Marshal(AnalyzeRequest{Circuit: src})
	hreq, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/analyze", strings.NewReader(string(body)))
	hreq.Header.Set("Content-Type", "application/json")
	if resp, err := http.DefaultClient.Do(hreq); err == nil {
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatal("stalled request succeeded")
		}
	}

	stats := coordStats(t, ts.URL)
	w0 := stats.Workers[0]
	if w0.State != BreakerClosed || w0.Failures != 0 || w0.Opens != 0 {
		t.Fatalf("cancellation counted against worker health: %+v", w0)
	}

	// Second request on the same daemon: the worker serves normally.
	got := analyze(t, ts.URL, AnalyzeRequest{Circuit: src})
	requireReportsIdentical(t, "post-cancel", got.Report, want)
}

// TestShardValueValidationTripsBreaker: a worker answering 200 with NaN
// values must have its responses rejected before the fold — counted as
// worker failures that open its breaker — while the healthy worker carries
// the sweep to the byte-identical result.
func TestShardValueValidationTripsBreaker(t *testing.T) {
	src := CircuitSource{Profile: "s953"}
	want := localRun(t, src, Options{})
	var mu sync.Mutex
	poisoned := 0
	workers := workerFleet(t, 2, func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/v1/shard" {
				h.ServeHTTP(w, r)
				return
			}
			mu.Lock()
			poison := poisoned < 2
			if poison {
				poisoned++
			}
			mu.Unlock()
			if !poison {
				h.ServeHTTP(w, r)
				return
			}
			// Serve the real response with one value replaced by NaN: a
			// plausible-looking but unfoldable shard.
			rec := record(t, h, r)
			var sresp ShardResponse
			if json.Unmarshal(rec, &sresp) == nil && len(sresp.Values) > 0 {
				sresp.Values[0] = math.Float64bits(math.NaN())
				out, _ := json.Marshal(&sresp)
				w.Header().Set("Content-Type", "application/json")
				_, _ = w.Write(out)
				return
			}
			_, _ = w.Write(rec)
		})
	})
	cfg := resilientConfig(workers, 1)
	_, ts := newTestServer(t, cfg)
	got := analyze(t, ts.URL, AnalyzeRequest{Circuit: src})
	requireReportsIdentical(t, "nan-rejected", got.Report, want)

	stats := coordStats(t, ts.URL)
	if stats.ValueRejects < 2 {
		t.Fatalf("value rejects = %d, want >= 2", stats.ValueRejects)
	}
	w0 := stats.Workers[0]
	if w0.Failures < 2 {
		t.Fatalf("poisoned worker's failures = %d, want >= 2: %+v", w0.Failures, w0)
	}
}

// record captures a handler's 200 response body (test helper for response
// tampering).
func record(t *testing.T, h http.Handler, r *http.Request) []byte {
	t.Helper()
	rec := newTamperRecorder()
	h.ServeHTTP(rec, r)
	return rec.body
}

type tamperRecorder struct {
	header http.Header
	body   []byte
}

func newTamperRecorder() *tamperRecorder { return &tamperRecorder{header: make(http.Header)} }

func (tr *tamperRecorder) Header() http.Header { return tr.header }
func (tr *tamperRecorder) WriteHeader(int)     {}
func (tr *tamperRecorder) Write(b []byte) (int, error) {
	tr.body = append(tr.body, b...)
	return len(b), nil
}

// TestHedgedDispatchBeatsStraggler: with one worker consistently slow, the
// idle worker hedges the straggler shards; the first valid response wins
// and the result stays byte-identical.
func TestHedgedDispatchBeatsStraggler(t *testing.T) {
	src := CircuitSource{Profile: "s953"}
	want := localRun(t, src, Options{})
	workers := workerFleet(t, 2, func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/shard" {
				select {
				case <-time.After(400 * time.Millisecond):
				case <-r.Context().Done():
					return
				}
			}
			h.ServeHTTP(w, r)
		})
	})
	cfg := Config{
		Workers:         workers,
		ShardsPerWorker: 2,
		HedgeDelay:      5 * time.Millisecond,
		RetryBackoff:    2 * time.Millisecond,
	}
	_, ts := newTestServer(t, cfg)
	start := time.Now()
	got := analyze(t, ts.URL, AnalyzeRequest{Circuit: src})
	elapsed := time.Since(start)
	requireReportsIdentical(t, "hedged", got.Report, want)

	stats := coordStats(t, ts.URL)
	if stats.Hedges == 0 {
		t.Fatalf("no hedged dispatches recorded (elapsed %v): %+v", elapsed, stats)
	}
}

// TestBreakerOpensThenWorkerRejoins: a worker that refuses every shard
// call fails the first request and opens its breaker; after it heals, the
// SAME daemon's next request probes it back into the fleet — no
// coordinator restart, the regression the old permanent retirement had.
func TestBreakerOpensThenWorkerRejoins(t *testing.T) {
	src := CircuitSource{Profile: "s953"}
	want := localRun(t, src, Options{})
	var mu sync.Mutex
	healthy := false
	workers := workerFleet(t, 1, func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			ok := healthy
			mu.Unlock()
			if r.URL.Path == "/v1/shard" && !ok {
				writeError(w, http.StatusServiceUnavailable, "worker rebooting")
				return
			}
			h.ServeHTTP(w, r)
		})
	})
	cfg := resilientConfig(workers, 1)
	cfg.ShardAttempts = 2
	_, ts := newTestServer(t, cfg)

	resp := postJSON(t, http.DefaultClient, ts.URL+"/v1/analyze", AnalyzeRequest{Circuit: src})
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("request against the rebooting worker: HTTP %d (want 500)", resp.StatusCode)
	}
	stats := coordStats(t, ts.URL)
	if stats.Workers[0].Opens == 0 {
		t.Fatalf("breaker never opened: %+v", stats.Workers[0])
	}

	mu.Lock()
	healthy = true
	mu.Unlock()
	got := analyze(t, ts.URL, AnalyzeRequest{Circuit: src})
	requireReportsIdentical(t, "rejoined", got.Report, want)
	stats = coordStats(t, ts.URL)
	w0 := stats.Workers[0]
	if w0.State != BreakerClosed || w0.Probes == 0 {
		t.Fatalf("worker did not rejoin through a probe: %+v", w0)
	}
}

// TestPendingShardTasks: table-driven edge cases of the complement tiler.
func TestPendingShardTasks(t *testing.T) {
	type r = struct{ Lo, Hi int }
	cases := []struct {
		name  string
		n     int
		chunk int
		done  []r
		want  []shardTask
	}{
		{name: "fresh-even", n: 10, chunk: 4, want: []shardTask{{lo: 0, hi: 4}, {lo: 4, hi: 8}, {lo: 8, hi: 10}}},
		{name: "chunk-exceeds-n", n: 5, chunk: 10, want: []shardTask{{lo: 0, hi: 5}}},
		{name: "adjacent-committed", n: 10, chunk: 4, done: []r{{2, 5}, {5, 7}},
			want: []shardTask{{lo: 0, hi: 2}, {lo: 7, hi: 10}}},
		{name: "fully-committed", n: 8, chunk: 3, done: []r{{0, 8}}, want: nil},
		{name: "empty-input", n: 0, chunk: 1, want: nil},
		{name: "hole-larger-than-chunk", n: 12, chunk: 3, done: []r{{0, 2}, {10, 12}},
			want: []shardTask{{lo: 2, hi: 5}, {lo: 5, hi: 8}, {lo: 8, hi: 10}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			done := make([]resume.Range, 0, len(tc.done))
			for _, d := range tc.done {
				done = append(done, resume.Range{Lo: d.Lo, Hi: d.Hi})
			}
			got := pendingShardTasks(tc.n, tc.chunk, done)
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i].lo != tc.want[i].lo || got[i].hi != tc.want[i].hi {
					t.Fatalf("task %d = %+v, want %+v (full: %v)", i, got[i], tc.want[i], got)
				}
			}
		})
	}
}
