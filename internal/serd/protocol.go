// The serd wire protocol: request/response JSON shapes for /v1/analyze and
// /v1/shard, the NDJSON stream frames, and their mapping onto ser.Config.
//
// Float64 results cross the wire in two representations, both lossless:
// analyze responses and node tiles use ordinary JSON numbers — Go's
// encoding/json emits the shortest decimal that round-trips the exact
// float64, so a client decoding a tile reconstructs bit-identical values —
// while shard responses use raw IEEE-754 bit patterns (math.Float64bits, as
// uint64), matching the checkpoint file convention, so not even a NaN
// payload could break the coordinator's bit-exact fold.

package serd

import (
	"fmt"
	"time"

	"repro/internal/circuitio"
	"repro/internal/latch"
	"repro/internal/ser"
)

// CircuitSource names the circuit of a request. Exactly one field must be
// set. Hash references a circuit already resident in the daemon's cache by
// content hash — the repeat-request fast path that skips re-uploading and
// re-parsing; a non-resident hash fails with HTTP 404 and the client
// re-sends the full source.
type CircuitSource struct {
	Bench   string `json:"bench,omitempty"`   // inline ISCAS'89 .bench text
	Path    string `json:"path,omitempty"`    // server-local netlist file (.bench, .v)
	Profile string `json:"profile,omitempty"` // generated synthetic profile name
	Hash    string `json:"hash,omitempty"`    // content hash of a cached circuit
}

// source converts to the circuitio form.
func (cs CircuitSource) source() circuitio.Source {
	return circuitio.Source{Bench: cs.Bench, Path: cs.Path, Profile: cs.Profile, Hash: cs.Hash}
}

// LatchParams carries an explicit latch model. Supplying it with frames > 1
// selects the latch-window-weighted multi-cycle composition, and it is part
// of the request fingerprint — weighted and unweighted analyses never alias
// in the report cache.
//
//serlint:allow bitfloat request parameters, not results: encoding/json emits the shortest decimal that round-trips the exact float64, and the fingerprint is computed server-side from the decoded values
type LatchParams struct {
	ClockPeriodPs       float64 `json:"clock_period_ps"`
	WindowPs            float64 `json:"window_ps"`
	PulseWidthPs        float64 `json:"pulse_width_ps"`
	AttenuationPerLevel float64 `json:"attenuation_per_level,omitempty"`
}

// Options is the result-determining analysis configuration of a request,
// mirroring the sersim functional options. Workers and TimeoutMs are
// scheduling knobs — they shape execution, never results, and are excluded
// from the request fingerprint like their library counterparts.
type Options struct {
	Method    string       `json:"method,omitempty"`     // "epp" (default) or "monte-carlo"
	Engine    string       `json:"engine,omitempty"`     // registry name override
	SPMethod  string       `json:"sp_method,omitempty"`  // "topological" (default) or "monte-carlo"
	Frames    int          `json:"frames,omitempty"`     // > 1 = multi-cycle analysis
	Vectors   int          `json:"vectors,omitempty"`    // sampling engines' vector budget
	SPVectors int          `json:"sp_vectors,omitempty"` // MC signal-probability vector budget
	Seed      uint64       `json:"seed,omitempty"`
	Rules     string       `json:"rules,omitempty"` // "closed-form" (default), "pairwise", "no-polarity"
	BDDBudget int          `json:"bdd_budget,omitempty"`
	Latch     *LatchParams `json:"latch,omitempty"`
	Workers   int          `json:"workers,omitempty"`    // sweep parallelism (scheduling only)
	TimeoutMs int64        `json:"timeout_ms,omitempty"` // per-request deadline (scheduling only)
}

// config maps the wire options onto a ser.Config. Unknown names fail here,
// before any work is admitted.
func (o Options) config() (ser.Config, error) {
	var cfg ser.Config
	var err error
	if o.Method != "" {
		if cfg.Method, err = ser.ParseMethod(o.Method); err != nil {
			return cfg, err
		}
	}
	if o.SPMethod != "" {
		if cfg.SPMethod, err = ser.ParseSPMethod(o.SPMethod); err != nil {
			return cfg, err
		}
	}
	if o.Rules != "" {
		if cfg.Rules, err = ser.ParseRuleSet(o.Rules); err != nil {
			return cfg, err
		}
	}
	cfg.Engine = o.Engine
	cfg.Frames = o.Frames
	cfg.MC.Vectors = o.Vectors
	cfg.MC.Seed = o.Seed
	cfg.SP.Vectors = o.SPVectors
	cfg.SP.Seed = o.Seed
	cfg.BDDBudget = o.BDDBudget
	cfg.Workers = o.Workers
	if o.TimeoutMs < 0 {
		return cfg, fmt.Errorf("serd: timeout_ms = %d is negative", o.TimeoutMs)
	}
	cfg.Timeout = time.Duration(o.TimeoutMs) * time.Millisecond
	if o.Latch != nil {
		cfg.Latch = &latch.Model{
			ClockPeriodPs:       o.Latch.ClockPeriodPs,
			WindowPs:            o.Latch.WindowPs,
			PulseWidthPs:        o.Latch.PulseWidthPs,
			AttenuationPerLevel: o.Latch.AttenuationPerLevel,
		}
	}
	return cfg, nil
}

// AnalyzeRequest is the body of POST /v1/analyze.
type AnalyzeRequest struct {
	Circuit CircuitSource `json:"circuit"`
	Options Options       `json:"options"`
	// Stream selects the NDJSON per-node-tile response (also selectable
	// with Accept: application/x-ndjson). Without it the handler responds
	// with one AnalyzeResponse JSON document.
	Stream bool `json:"stream,omitempty"`
	// AllowPartial opts in to degraded results on coordinator daemons: when
	// shards exhaust their retry budget, the request succeeds with HTTP 206
	// and a report covering only the committed node ranges, with the holes
	// disclosed in Uncovered — never silently zero-filled. Requests without
	// it keep the strict all-or-nothing contract. Partial results are never
	// memoized, so a later retry can still produce the complete report.
	AllowPartial bool `json:"allow_partial,omitempty"`
}

// Range is a half-open node-ID interval [Lo, Hi) on the wire, used to
// disclose the uncovered holes of a partial result.
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// AnalyzeResponse is the non-streaming response of POST /v1/analyze.
type AnalyzeResponse struct {
	Hash        string      `json:"hash"`        // circuit content hash (reusable as circuit.hash)
	Fingerprint string      `json:"fingerprint"` // full request fingerprint (the report-cache key)
	Cached      bool        `json:"cached"`      // true if served from the report cache
	Report      *ser.Report `json:"report"`
	// Partial marks a degraded result (HTTP 206): Report covers only the
	// nodes outside Uncovered, and TotalFIT sums only those nodes. Set only
	// when the request opted in with AllowPartial.
	Partial   bool    `json:"partial,omitempty"`
	Uncovered []Range `json:"uncovered,omitempty"`
}

// NDJSON stream frame types, one JSON object per line. The frame order is
// header, then one node tile per node in ascending ID order, then exactly
// one total or error frame. Everything after the header line is a pure
// function of the request fingerprint — cache status and other per-serving
// metadata live only in the header — so two streams of the same logical
// request are byte-identical from line 2 on, cached or not.
const (
	FrameHeader  = "header"
	FrameNode    = "node"
	FrameTotal   = "total"
	FrameError   = "error"
	FramePartial = "partial"
)

// StreamHeader is the first NDJSON frame.
type StreamHeader struct {
	Type        string `json:"type"` // FrameHeader
	Circuit     string `json:"circuit"`
	Hash        string `json:"hash"`
	Fingerprint string `json:"fingerprint"`
	Engine      string `json:"engine"`
	Method      string `json:"method"`
	Nodes       int    `json:"nodes"`
	Cached      bool   `json:"cached"`
}

// StreamNode is one per-node tile: the NodeSER decomposition. JSON numbers
// round-trip float64 exactly, so a client summing SERFIT in arrival order
// reconstructs TotalFIT bit-identically to a local Run.
//
//serlint:allow bitfloat documented lossless convention (package doc): tiles use JSON shortest-decimal numbers, which round-trip the exact float64 bits
type StreamNode struct {
	Type        string  `json:"type"` // FrameNode
	ID          int     `json:"id"`
	Name        string  `json:"name"`
	RateFIT     float64 `json:"rate_fit"`
	PLatched    float64 `json:"p_latched"`
	PSensitized float64 `json:"p_sensitized"`
	SERFIT      float64 `json:"ser_fit"`
}

// StreamTotal terminates a successful stream.
//
//serlint:allow bitfloat documented lossless convention (package doc): JSON shortest-decimal round-trips the exact float64 bits
type StreamTotal struct {
	Type     string  `json:"type"` // FrameTotal
	Nodes    int     `json:"nodes"`
	TotalFIT float64 `json:"total_fit"`
}

// StreamError terminates a failed stream (the HTTP status is long gone by
// the time a mid-sweep error surfaces).
type StreamError struct {
	Type  string `json:"type"` // FrameError
	Error string `json:"error"`
}

// StreamPartial terminates a degraded stream (AllowPartial requests only):
// the preceding node tiles cover exactly the committed ranges, Uncovered
// lists the holes, and TotalFIT sums the covered nodes only. A client that
// needs the complete result must retry the request.
//
//serlint:allow bitfloat documented lossless convention (package doc): JSON shortest-decimal round-trips the exact float64 bits
type StreamPartial struct {
	Type      string  `json:"type"` // FramePartial
	Nodes     int     `json:"nodes"`
	TotalFIT  float64 `json:"total_fit"`
	Uncovered []Range `json:"uncovered"`
}

// ShardRequest is the body of POST /v1/shard: compute P_sensitized for the
// node-ID range [Lo, Hi) of the request's sweep. Scheduling fields of
// Options apply to the worker's local sweep; the range itself is excluded
// from the fingerprint, so every shard of one sweep reports the same
// fingerprint — the coordinator's commit key.
type ShardRequest struct {
	Circuit CircuitSource `json:"circuit"`
	Options Options       `json:"options"`
	Lo      int           `json:"lo"`
	Hi      int           `json:"hi"`
}

// ShardResponse carries the shard's results as raw IEEE-754 bit patterns in
// node-ID order (Values[i] is site Lo+i), the representation the resume
// checkpoint files also use: integer JSON round-trips exactly, so the
// coordinator's fold is bit-exact by construction.
type ShardResponse struct {
	Fingerprint string   `json:"fingerprint"`
	Engine      string   `json:"engine"`
	Lo          int      `json:"lo"`
	Hi          int      `json:"hi"`
	Values      []uint64 `json:"values"`
}

// ErrorResponse is the JSON body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Circuits  circuitio.Stats `json:"circuits"` // parsed-circuit cache
	Reports   CacheStats      `json:"reports"`  // memoized-report cache
	Admission AdmissionStats  `json:"admission"`
	// Coordinator is present only on coordinator daemons: dispatch counters
	// and the per-worker breaker states.
	Coordinator *CoordinatorStats `json:"coordinator,omitempty"`
}
