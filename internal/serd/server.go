// Package serd is the SER-as-a-service layer: a long-running HTTP daemon
// that parses and finalizes each circuit once (content-addressed cache),
// memoizes completed Reports by full request fingerprint, streams per-node
// result tiles as NDJSON with per-request cancellation and deadlines,
// bounds concurrent engine work with admission control, and optionally
// distributes site sweeps over worker daemons.
//
// # Why the distributed merge is deterministic
//
// The coordinator shards a sweep's node-ID space [0, N) into ranges and
// asks each worker for P_sensitized over one range (POST /v1/shard). The
// fold back into a single Report is bit-identical to a single-process run —
// not approximately, and not only in expectation — because of three
// properties the engine layer already guarantees:
//
//  1. Packing invariance: every site-major engine computes each site's
//     value independently of how sites are grouped into batches or ranges,
//     and writes it exactly once. A shard [lo, hi) therefore produces
//     exactly the float64 values positions lo..hi-1 of a full local sweep
//     would produce, at any worker count on the remote side.
//  2. Lossless transport: shard values cross the wire as raw IEEE-754 bit
//     patterns (math.Float64bits as JSON integers — the same convention as
//     the resume checkpoint files), so transport cannot perturb a bit.
//  3. Order-free merge: shard ranges are disjoint, so the fold is pure
//     placement — out[lo:hi] = shard — with no arithmetic and hence no
//     merge-order hazard. The only summation (TotalFIT) happens after the
//     merge, in ascending node-ID order, exactly as a local Run sums.
//
// Retries inherit the same argument: a shard recomputed after a worker
// failure yields the identical bits, so commit-once bookkeeping (the resume
// checkpoint machinery, file-backed or in-memory) only has to prevent
// double-commit accounting, never reconcile conflicting values. The request
// fingerprint deliberately excludes the shard range — every shard of one
// logical sweep fingerprints as that sweep — so all shards commit against
// one checkpoint identity, and a worker answering with a different
// fingerprint (version or model skew) is rejected rather than folded.
//
// The word-major monte-carlo engine is the deliberate exception: its kernel
// amortizes one good simulation per vector word across all sites, so
// sharding by site would duplicate that dominant cost in every shard. The
// coordinator runs sampling requests whole on the local engine pool.
package serd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"time"

	"repro/internal/circuitio"
	"repro/internal/eco"
	"repro/internal/engine"
	"repro/internal/netlist"
	"repro/internal/ser"
)

// Config configures a Server.
type Config struct {
	// PoolSize bounds concurrent engine sweeps (0 = GOMAXPROCS).
	PoolSize int
	// MaxQueue bounds requests waiting for a pool slot before the daemon
	// sheds load with 429 (0 = 4× pool size; negative = no queue, every
	// request past the pool is shed immediately).
	MaxQueue int
	// CircuitCacheBytes bounds the parsed-circuit cache (0 = 256 MiB).
	CircuitCacheBytes int64
	// ReportCacheBytes bounds the memoized-report cache (0 = 64 MiB).
	ReportCacheBytes int64
	// Workers, when non-empty, turns the daemon into a coordinator: analytic
	// and exact sweeps are sharded over these worker base URLs
	// (http://host:port) via POST /v1/shard and folded bit-identically.
	Workers []string
	// ShardsPerWorker sets how many shards the coordinator cuts per worker
	// (0 = 2): more shards = finer retry granularity and better balance,
	// at more per-request overhead.
	ShardsPerWorker int
	// ShardAttempts bounds dispatch attempts per shard before the request
	// fails (0 = 2 + number of workers).
	ShardAttempts int
	// ECOCacheDir, when non-empty, opens a directory-backed eco.Cache and
	// attaches it to every eligible locally-run analysis (ser.AttachECO):
	// repeat and incrementally-edited circuits restore unchanged cones from
	// the cache instead of re-sweeping them. Coordinator-sharded sweeps
	// never consult it — shards cover ID ranges, not cone-hash keys — and
	// ineligible requests (biased sources, Monte Carlo SPs) run uncached.
	ECOCacheDir string
	// CheckpointDir, when non-empty, makes coordinator shard commits durable:
	// each sweep's progress lands in <dir>/<fingerprint>.ckpt and a retried
	// request re-dispatches only the missing ranges. Empty = in-memory
	// commit tracking (retry within one request only).
	CheckpointDir string
	// ShardTimeout bounds each shard dispatch attempt (0 = no per-attempt
	// deadline; the request deadline still applies). With it, a stalled
	// worker costs one attempt instead of the whole request.
	ShardTimeout time.Duration
	// RetryBackoff is the base delay before a failed shard is redispatched
	// (0 = 25ms). Attempt k waits base·2^(k-1) — capped at 64·base — scaled
	// by a deterministic jitter factor in [0.5, 1.5).
	RetryBackoff time.Duration
	// RetrySeed seeds the deterministic jitter stream (0 = 1). Two
	// coordinators with the same seed and failure history draw identical
	// backoff schedules — the hook chaos tests replay faults through.
	RetrySeed uint64
	// BreakerThreshold is the run of consecutive health-relevant failures
	// that opens a worker's circuit breaker (0 = 2).
	BreakerThreshold int
	// BreakerProbe is the interval between GET /v1/healthz probes of an
	// open worker (0 = 500ms). A probe success closes the breaker and the
	// worker rejoins the fleet without a coordinator restart.
	BreakerProbe time.Duration
	// HedgeDelay is how long a shard's only attempt must run before an idle
	// worker hedges it with a duplicate dispatch — first valid response
	// wins, the loser is cancelled (0 = 50ms; negative disables hedging).
	HedgeDelay time.Duration
	// Client is the coordinator's HTTP client (nil = http.DefaultClient).
	Client *http.Client
	// Logf receives operational log lines (nil = log.Printf).
	Logf func(format string, args ...any)
}

// Server is the serd HTTP front end. Create with New, expose via Handler.
type Server struct {
	cfg      Config
	circuits *circuitio.Cache
	reports  *reportCache
	adm      *admission
	coord    *coordinator
	eco      *eco.Cache // nil unless ECOCacheDir is set and opened
	logf     func(format string, args ...any)
	mux      *http.ServeMux
}

// New builds a Server from the configuration.
func New(cfg Config) *Server {
	pool := cfg.PoolSize
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	queue := cfg.MaxQueue
	if queue == 0 {
		queue = 4 * pool
	} else if queue < 0 {
		queue = 0
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	s := &Server{
		cfg:      cfg,
		circuits: circuitio.New(cfg.CircuitCacheBytes),
		reports:  newReportCache(cfg.ReportCacheBytes),
		adm:      newAdmission(pool, queue),
		logf:     logf,
		mux:      http.NewServeMux(),
	}
	if len(cfg.Workers) > 0 {
		s.coord = newCoordinator(cfg, logf)
	}
	if cfg.ECOCacheDir != "" {
		cache, err := eco.Open(cfg.ECOCacheDir)
		if err != nil {
			// The cache is an accelerator, never a correctness dependency:
			// an unopenable directory degrades to uncached sweeps.
			logf("serd: ECO cache disabled: %v", err)
		} else {
			s.eco = cache
		}
	}
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/shard", s.handleShard)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// writeError emits the uniform JSON error body with the given status.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// errStatus maps a pipeline error onto an HTTP status for non-streaming
// responses: load shedding is 429, a client-side cancellation 499 (nginx's
// convention), an expired request deadline 504, everything else 500 (bad
// requests were already rejected before admission).
func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, context.Canceled):
		return 499
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// loadCircuit resolves a request's circuit through the parse-once cache,
// mapping the error classes onto HTTP statuses: an unknown hash is 404 (the
// client re-sends the full source), anything else a 400.
func (s *Server) loadCircuit(w http.ResponseWriter, src CircuitSource) (*netlist.Circuit, bool) {
	c, err := s.circuits.Load(src.source())
	if err != nil {
		if errors.Is(err, circuitio.ErrNotCached) {
			writeError(w, http.StatusNotFound, "%v", err)
		} else {
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return nil, false
	}
	return c, true
}

// handleAnalyze serves POST /v1/analyze: resolve the circuit (parse-once
// cache), resolve and validate the options, fingerprint the request, and
// serve from the report cache if possible; otherwise admit the request to
// the engine pool, run the sweep — locally or sharded over workers — and
// memoize the completed Report. The response is one JSON document, or an
// NDJSON tile stream when requested.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "serd: bad analyze request: %v", err)
		return
	}
	c, ok := s.loadCircuit(w, req.Circuit)
	if !ok {
		return
	}
	cfg, err := req.Options.config()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	info, err := ser.Describe(c, cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	stream := req.Stream || r.Header.Get("Accept") == "application/x-ndjson"

	// Cache hit: serve the memoized Report without touching admission — a
	// saturated engine pool must never delay a map lookup.
	if rep, ok := s.reports.get(info.Fingerprint); ok {
		if stream {
			s.streamReport(w, r, c, info, rep, true)
		} else {
			s.writeReport(w, c, info, rep, true)
		}
		return
	}

	ctx := r.Context()
	if err := s.adm.acquire(ctx); err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	defer s.adm.release()

	if stream && s.coord == nil {
		// Local streaming path: tiles go out as the sweep finalizes them.
		s.streamLive(w, r, c, cfg, info)
		return
	}
	rep, uncovered, err := s.runReport(ctx, c, cfg, req.Circuit, info, req.AllowPartial)
	if err != nil {
		// A canceled client is gone; don't log it as a failure.
		if !errors.Is(err, context.Canceled) {
			s.logf("serd: analyze %s engine=%s: %v", c.Name, info.Engine, err)
		}
		writeError(w, errStatus(err), "%v", err)
		return
	}
	if len(uncovered) > 0 {
		// Degraded result: disclosed holes, HTTP 206, and never memoized —
		// a retried request must be able to produce the complete report.
		s.logf("serd: analyze %s engine=%s: partial result, %d uncovered range(s)", c.Name, info.Engine, len(uncovered))
		if stream {
			s.streamPartialReport(w, r, c, info, rep, uncovered)
		} else {
			s.writePartialReport(w, c, info, rep, uncovered)
		}
		return
	}
	s.reports.put(info.Fingerprint, rep)
	if stream {
		s.streamReport(w, r, c, info, rep, false)
	} else {
		s.writeReport(w, c, info, rep, false)
	}
}

// runReport computes the Report for an admitted request: sharded over the
// worker fleet when this daemon coordinates and the engine is site-major,
// locally otherwise (sampling engines always run whole — see the package
// doc). A non-empty uncovered return (possible only with allowPartial on a
// coordinator) marks a degraded report covering only the committed ranges.
func (s *Server) runReport(ctx context.Context, c *netlist.Circuit, cfg ser.Config, src CircuitSource, info ser.Info, allowPartial bool) (*ser.Report, []Range, error) {
	if s.coord != nil && info.Class != engine.ClassSampling {
		psens, uncovered, err := s.coord.psensitized(ctx, c, cfg, src, info, allowPartial)
		if err != nil {
			return nil, nil, err
		}
		if len(uncovered) > 0 {
			rep, err := partialReport(c, cfg, psens, uncovered)
			return rep, uncovered, err
		}
		rep, err := ser.Assemble(c, cfg, psens)
		return rep, nil, err
	}
	ser.AttachECO(&cfg, s.eco)
	rep, err := ser.Run(ctx, c, cfg)
	return rep, nil, err
}

// partialReport assembles a degraded report from a P_sensitized vector with
// holes: the uncovered nodes are dropped from the report entirely (their
// vector positions are unspecified, never folded in as zeros), and TotalFIT
// is re-summed over the covered nodes in ascending ID order — the same
// order a full assembly sums, so the covered nodes' contributions are
// bit-identical to their values in the complete report.
func partialReport(c *netlist.Circuit, cfg ser.Config, psens []float64, uncovered []Range) (*ser.Report, error) {
	hole := make([]bool, len(psens))
	for _, r := range uncovered {
		for i := r.Lo; i < r.Hi && i >= 0; i++ {
			hole[i] = true
			psens[i] = 0 // defined input for Assemble; the node is dropped below
		}
	}
	rep, err := ser.Assemble(c, cfg, psens)
	if err != nil {
		return nil, err
	}
	covered := rep.Nodes[:0]
	var total float64
	for i := range rep.Nodes {
		ns := rep.Nodes[i]
		if id := int(ns.ID); id >= 0 && id < len(hole) && hole[id] {
			continue
		}
		covered = append(covered, ns)
		total += ns.SERFIT
	}
	rep.Nodes = covered
	rep.TotalFIT = total
	return rep, nil
}

// writeReport emits the non-streaming analyze response.
func (s *Server) writeReport(w http.ResponseWriter, c *netlist.Circuit, info ser.Info, rep *ser.Report, cached bool) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(AnalyzeResponse{
		Hash:        c.ContentHash(),
		Fingerprint: info.Fingerprint,
		Cached:      cached,
		Report:      rep,
	})
}

// writePartialReport emits the degraded non-streaming response: HTTP 206
// with the partial flag and the uncovered ranges disclosed.
func (s *Server) writePartialReport(w http.ResponseWriter, c *netlist.Circuit, info ser.Info, rep *ser.Report, uncovered []Range) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusPartialContent)
	_ = json.NewEncoder(w).Encode(AnalyzeResponse{
		Hash:        c.ContentHash(),
		Fingerprint: info.Fingerprint,
		Report:      rep,
		Partial:     true,
		Uncovered:   uncovered,
	})
}

// handleShard serves POST /v1/shard: the worker half of the coordinator
// protocol. It computes P_sensitized for the node-ID range [lo, hi) of the
// described sweep and returns the values as IEEE-754 bit patterns together
// with the full-sweep fingerprint the coordinator commits against. Shard
// work passes through the same admission gate as local analyses.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	var req ShardRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "serd: bad shard request: %v", err)
		return
	}
	c, ok := s.loadCircuit(w, req.Circuit)
	if !ok {
		return
	}
	cfg, err := req.Options.config()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Lo < 0 || req.Hi > c.N() || req.Hi <= req.Lo {
		writeError(w, http.StatusBadRequest, "serd: shard range [%d,%d) invalid for %d nodes", req.Lo, req.Hi, c.N())
		return
	}
	info, err := ser.Describe(c, cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx := r.Context()
	if err := s.adm.acquire(ctx); err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	defer s.adm.release()
	vals, err := ser.PSensitizedRange(ctx, c, cfg, req.Lo, req.Hi)
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			s.logf("serd: shard [%d,%d) %s engine=%s: %v", req.Lo, req.Hi, c.Name, info.Engine, err)
		}
		writeError(w, errStatus(err), "%v", err)
		return
	}
	resp := ShardResponse{Fingerprint: info.Fingerprint, Engine: info.Engine, Lo: req.Lo, Hi: req.Hi, Values: floatBits(vals)}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// handleStats serves GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		Circuits:  s.circuits.Stats(),
		Reports:   s.reports.snapshot(),
		Admission: s.adm.snapshot(),
	}
	if s.coord != nil {
		resp.Coordinator = s.coord.stats()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}
