// Admission control: a bounded engine pool (semaphore) fronted by a bounded
// wait queue. Every uncached analysis or shard execution must acquire a pool
// slot before any engine work starts; when the pool is full, requests wait
// in FIFO-ish semaphore order up to the queue bound, and past it the daemon
// sheds load with HTTP 429 immediately rather than building an unbounded
// backlog. Report-cache hits never pass through admission — serving a
// memoized result is a map lookup, and a saturated pool must not delay it.

package serd

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrOverloaded is returned by acquire when the wait queue is full; the
// HTTP layer maps it to 429 Too Many Requests.
var ErrOverloaded = errors.New("serd: engine pool and queue are full")

// AdmissionStats is a point-in-time admission observation.
type AdmissionStats struct {
	PoolSize int   `json:"pool_size"`
	MaxQueue int   `json:"max_queue"`
	Active   int   `json:"active"`   // slots currently held
	Queued   int   `json:"queued"`   // requests waiting for a slot
	Admitted int64 `json:"admitted"` // slots ever granted
	Rejected int64 `json:"rejected"` // 429s issued
	Canceled int64 `json:"canceled"` // gave up waiting (client gone / deadline)
}

// admission is the semaphore + queue-depth gate.
type admission struct {
	slots    chan struct{}
	poolSize int
	maxQueue int

	mu     sync.Mutex
	queued int

	admitted atomic.Int64
	rejected atomic.Int64
	canceled atomic.Int64
}

// newAdmission builds a gate with poolSize concurrent slots and up to
// maxQueue waiters.
func newAdmission(poolSize, maxQueue int) *admission {
	if poolSize < 1 {
		poolSize = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{slots: make(chan struct{}, poolSize), poolSize: poolSize, maxQueue: maxQueue}
}

// acquire obtains a pool slot, waiting in the queue if the pool is full.
// It returns ErrOverloaded when the queue is already at its bound, or
// ctx.Err() if the caller goes away while waiting. On success the caller
// must release().
func (a *admission) acquire(ctx context.Context) error {
	// Fast path: a free slot skips queue accounting entirely.
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		return nil
	default:
	}
	//serlint:allow deferunlock queue gate: the lock must release before blocking on the slot channel, and the overflow path must release before counting the rejection; both critical sections are single panic-free integer updates
	a.mu.Lock()
	if a.queued >= a.maxQueue {
		a.mu.Unlock()
		a.rejected.Add(1)
		return ErrOverloaded
	}
	a.queued++
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		defer a.mu.Unlock()
		a.queued--
	}()
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		return nil
	case <-ctx.Done():
		a.canceled.Add(1)
		return ctx.Err()
	}
}

// release returns a slot to the pool.
func (a *admission) release() {
	<-a.slots
}

// snapshot returns the current counters.
func (a *admission) snapshot() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	queued := a.queued
	return AdmissionStats{
		PoolSize: a.poolSize,
		MaxQueue: a.maxQueue,
		Active:   len(a.slots),
		Queued:   queued,
		Admitted: a.admitted.Load(),
		Rejected: a.rejected.Load(),
		Canceled: a.canceled.Load(),
	}
}
