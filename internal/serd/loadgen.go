// The load generator behind `serd -mode loadgen`: closed-loop concurrent
// clients replaying one analyze request against a running daemon, measuring
// requests/sec and latency quantiles. The canonical benchmark primes the
// report cache with one uncached request and then measures the cached
// fast path — the steady state of the paper's interactive
// rank→harden→re-estimate loop, where repeat sweeps are cache hits.

package serd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// LoadgenConfig configures one load-generation run.
type LoadgenConfig struct {
	// Target is the daemon's base URL (http://host:port).
	Target string
	// Request is the analyze request every client replays.
	Request AnalyzeRequest
	// Concurrency is the closed-loop client count (0 = 8).
	Concurrency int
	// Duration bounds the measured phase (0 = 10 s).
	Duration time.Duration
	// Client is the HTTP client (nil = a dedicated client with enough idle
	// connections for the concurrency).
	Client *http.Client
}

// LoadgenResult is the measured outcome, shaped for bench-serd.json.
//
//serlint:allow bitfloat operational latency/throughput metrics for humans and plots; they are never folded into a Report or compared bit-for-bit
type LoadgenResult struct {
	Target      string  `json:"target"`
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"duration_sec"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	RPS         float64 `json:"rps"`
	P50Ms       float64 `json:"p50_ms"`
	P90Ms       float64 `json:"p90_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MeanMs      float64 `json:"mean_ms"`
	MaxMs       float64 `json:"max_ms"`
}

// Loadgen primes the daemon with one synchronous request (parse + sweep +
// memoization all happen here, so the measured phase exercises the cached
// path) and then runs Concurrency closed-loop clients for Duration,
// recording per-request latency. Requests that fail (non-2xx, transport
// error) count as errors and do not contribute latency samples.
func Loadgen(ctx context.Context, cfg LoadgenConfig) (*LoadgenResult, error) {
	conc := cfg.Concurrency
	if conc <= 0 {
		conc = 8
	}
	dur := cfg.Duration
	if dur <= 0 {
		dur = 10 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: conc}}
	}
	body, err := json.Marshal(&cfg.Request)
	if err != nil {
		return nil, err
	}
	do := func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.Target+"/v1/analyze", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("HTTP %d", resp.StatusCode)
		}
		return nil
	}
	// Prime: one full uncached round trip, unmeasured.
	if err := do(ctx); err != nil {
		return nil, fmt.Errorf("serd: loadgen prime request failed: %w", err)
	}

	runCtx, cancel := context.WithTimeout(ctx, dur)
	defer cancel()
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []float64 // milliseconds
		errCount  int64
	)
	start := time.Now()
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []float64
			var errs int64
			for runCtx.Err() == nil {
				t0 := time.Now()
				err := do(runCtx)
				if runCtx.Err() != nil {
					break // deadline mid-request: don't count the truncated sample
				}
				if err != nil {
					errs++
					continue
				}
				local = append(local, float64(time.Since(t0).Nanoseconds())/1e6)
			}
			mu.Lock()
			defer mu.Unlock()
			latencies = append(latencies, local...)
			errCount += errs
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &LoadgenResult{
		Target:      cfg.Target,
		Concurrency: conc,
		DurationSec: elapsed.Seconds(),
		Requests:    int64(len(latencies)),
		Errors:      errCount,
	}
	if len(latencies) == 0 {
		return res, fmt.Errorf("serd: loadgen completed no successful requests (%d errors)", errCount)
	}
	sort.Float64s(latencies)
	res.RPS = float64(len(latencies)) / elapsed.Seconds()
	res.P50Ms = quantile(latencies, 0.50)
	res.P90Ms = quantile(latencies, 0.90)
	res.P99Ms = quantile(latencies, 0.99)
	res.MaxMs = latencies[len(latencies)-1]
	var sum float64
	for _, l := range latencies {
		sum += l
	}
	res.MeanMs = sum / float64(len(latencies))
	return res, nil
}

// quantile reads the q-quantile from sorted samples (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
