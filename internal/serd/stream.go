// NDJSON streaming of analyze results: one header frame, one tile per node
// in ascending ID order, one total (or error) frame. The tile and total
// frames are a pure function of the request fingerprint — per-serving
// metadata (cache status) lives only in the header — so a cached stream is
// byte-identical to the live stream that populated the cache from line 2 on.

package serd

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/netlist"
	"repro/internal/ser"
)

// flushEvery is the tile cadence between explicit flushes: frequent enough
// that clients observe steady progress (and disconnect tests see bytes
// early), coarse enough to not syscall per node on big circuits.
const flushEvery = 64

// streamWriter serializes NDJSON frames with periodic flushing. Write
// errors are sticky: once the client is gone every subsequent frame is
// dropped, and err reports the first failure.
type streamWriter struct {
	bw      *bufio.Writer
	enc     *json.Encoder
	flusher http.Flusher
	tiles   int
	err     error
}

func newStreamWriter(w http.ResponseWriter) *streamWriter {
	sw := &streamWriter{bw: bufio.NewWriter(w)}
	sw.enc = json.NewEncoder(sw.bw)
	sw.flusher, _ = w.(http.Flusher)
	return sw
}

// frame writes one NDJSON line (Encode appends the newline).
func (sw *streamWriter) frame(v any) bool {
	if sw.err != nil {
		return false
	}
	if err := sw.enc.Encode(v); err != nil {
		sw.err = err
		return false
	}
	return true
}

// tile writes a node frame, flushing at the cadence.
func (sw *streamWriter) tile(v *StreamNode) bool {
	if !sw.frame(v) {
		return false
	}
	sw.tiles++
	if sw.tiles%flushEvery == 0 {
		sw.flush()
	}
	return sw.err == nil
}

// flush pushes buffered frames to the client.
func (sw *streamWriter) flush() {
	if sw.err != nil {
		return
	}
	if err := sw.bw.Flush(); err != nil {
		sw.err = err
		return
	}
	if sw.flusher != nil {
		sw.flusher.Flush()
	}
}

// nodeFrame converts one NodeSER into its wire tile.
func nodeFrame(ns *ser.NodeSER) *StreamNode {
	return &StreamNode{
		Type:        FrameNode,
		ID:          int(ns.ID),
		Name:        ns.Name,
		RateFIT:     ns.RateFIT,
		PLatched:    ns.PLatched,
		PSensitized: ns.PSensitized,
		SERFIT:      ns.SERFIT,
	}
}

// header builds the first frame of a stream.
func header(c *netlist.Circuit, info ser.Info, cached bool) *StreamHeader {
	return &StreamHeader{
		Type:        FrameHeader,
		Circuit:     c.Name,
		Hash:        c.ContentHash(),
		Fingerprint: info.Fingerprint,
		Engine:      info.Engine,
		Method:      info.Method.String(),
		Nodes:       c.N(),
		Cached:      cached,
	}
}

// streamLive runs the sweep through ser.Stream, emitting each node tile as
// its engine batch finalizes, while accumulating the Report for
// memoization. The request context is the sweep context: a client
// disconnect cancels the engine promptly (the stream consumer also stops at
// the first failed write, whichever signal lands first). TotalFIT
// accumulates in yield order — ascending node ID, the same order Run sums —
// so the memoized Report and the total frame are bit-identical to a local
// Run of the request.
func (s *Server) streamLive(w http.ResponseWriter, r *http.Request, c *netlist.Circuit, cfg ser.Config, info ser.Info) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	sw := newStreamWriter(w)
	if !sw.frame(header(c, info, false)) {
		return
	}
	sw.flush()
	rep := &ser.Report{Circuit: c.Name, Method: cfg.Method, Engine: info.Engine, Nodes: make([]ser.NodeSER, 0, c.N())}
	var sweepErr error
	for ns, err := range ser.Stream(r.Context(), c, cfg) {
		if err != nil {
			sweepErr = err
			break
		}
		rep.Nodes = append(rep.Nodes, ns)
		rep.TotalFIT += ns.SERFIT
		if !sw.tile(nodeFrame(&ns)) {
			// Client gone: breaking out cancels the sweep after the current
			// batch; nothing further can be written.
			return
		}
	}
	if sweepErr != nil {
		if !errors.Is(sweepErr, context.Canceled) {
			s.logf("serd: stream %s engine=%s: %v", c.Name, info.Engine, sweepErr)
		}
		sw.frame(&StreamError{Type: FrameError, Error: sweepErr.Error()})
		sw.flush()
		return
	}
	// Describe already normalized the method (sampling engines report
	// monte-carlo even when selected via WithEngine); mirror it so the
	// memoized report matches Run's.
	rep.Method = info.Method
	s.reports.put(info.Fingerprint, rep)
	sw.frame(&StreamTotal{Type: FrameTotal, Nodes: len(rep.Nodes), TotalFIT: rep.TotalFIT})
	sw.flush()
}

// streamReport streams an already-complete Report — the cache-hit path and
// the coordinator path. Tile and total frames are encoded exactly as
// streamLive encodes them, so cached and live streams are byte-identical
// after the header line.
func (s *Server) streamReport(w http.ResponseWriter, r *http.Request, c *netlist.Circuit, info ser.Info, rep *ser.Report, cached bool) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	sw := newStreamWriter(w)
	if !sw.frame(header(c, info, cached)) {
		return
	}
	sw.flush()
	for i := range rep.Nodes {
		if r.Context().Err() != nil {
			return
		}
		if !sw.tile(nodeFrame(&rep.Nodes[i])) {
			return
		}
	}
	sw.frame(&StreamTotal{Type: FrameTotal, Nodes: len(rep.Nodes), TotalFIT: rep.TotalFIT})
	sw.flush()
}

// streamPartialReport streams a degraded report (AllowPartial requests
// whose dispatch left holes): HTTP 206, tiles for the covered nodes only,
// and a terminal partial frame disclosing the uncovered ranges in place of
// the total frame — a stream consumer cannot mistake a degraded result for
// a complete one.
func (s *Server) streamPartialReport(w http.ResponseWriter, r *http.Request, c *netlist.Circuit, info ser.Info, rep *ser.Report, uncovered []Range) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusPartialContent)
	sw := newStreamWriter(w)
	if !sw.frame(header(c, info, false)) {
		return
	}
	sw.flush()
	for i := range rep.Nodes {
		if r.Context().Err() != nil {
			return
		}
		if !sw.tile(nodeFrame(&rep.Nodes[i])) {
			return
		}
	}
	sw.frame(&StreamPartial{Type: FramePartial, Nodes: len(rep.Nodes), TotalFIT: rep.TotalFIT, Uncovered: uncovered})
	sw.flush()
}
