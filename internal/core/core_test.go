package core

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sigprob"
)

func mustParse(t *testing.T, src string) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// fig1 builds the circuit and signal probabilities of the paper's Figure 1:
// SP(B)=0.2, SP(C)=0.3, SP(F)=0.7, SEU at A.
func fig1(t *testing.T) (*netlist.Circuit, []float64) {
	t.Helper()
	c := mustParse(t, `
INPUT(A)
INPUT(B)
INPUT(C)
INPUT(F)
OUTPUT(H)
E = NOT(A)
G = AND(E, F)
D = AND(A, B)
H = OR(C, D, G)
`)
	prob := make([]float64, c.N())
	prob[c.ByName("A")] = 0.5 // on-path; value irrelevant
	prob[c.ByName("B")] = 0.2
	prob[c.ByName("C")] = 0.3
	prob[c.ByName("F")] = 0.7
	sp := sigprob.Topological(c, sigprob.Config{SourceProb: prob})
	return c, sp
}

// TestFigure1 reproduces the paper's worked example (experiment E1):
//
//	P(E) = 1(a̅)
//	P(G) = 0.7(a̅) + 0.3(0)
//	P(D) = 0.2(a) + 0.8(0)
//	P(H) = 0.042(a) + 0.392(a̅) + 0.168(0) + 0.398(1)
func TestFigure1(t *testing.T) {
	for _, rules := range []RuleSet{RulesClosedForm, RulesPairwise} {
		c, sp := fig1(t)
		a := MustNew(c, sp, Options{Rules: rules})
		res := a.EPP(c.ByName("A"))

		check := func(name string, want logic.Prob4) {
			t.Helper()
			got, on := a.StateOf(c.ByName(name))
			if !on {
				t.Fatalf("[%v] %s not on-path", rules, name)
			}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-12 {
					t.Fatalf("[%v] P(%s) = %v, want %v", rules, name, got, want)
				}
			}
		}
		check("E", logic.Prob4{logic.SymABar: 1})
		check("G", logic.Prob4{logic.SymABar: 0.7, logic.SymZero: 0.3})
		check("D", logic.Prob4{logic.SymA: 0.2, logic.SymZero: 0.8})
		check("H", logic.Prob4{
			logic.SymA:    0.042,
			logic.SymABar: 0.392,
			logic.SymZero: 0.168,
			logic.SymOne:  0.398,
		})

		// P_sensitized(A) = Pa(H) + Pā(H) = 0.434 (single reachable output).
		if math.Abs(res.PSensitized-0.434) > 1e-12 {
			t.Errorf("[%v] PSensitized = %v, want 0.434", rules, res.PSensitized)
		}
		if res.ConeSize != 5 {
			t.Errorf("[%v] cone size = %d, want 5", rules, res.ConeSize)
		}
		if len(res.Outputs) != 1 || c.NameOf(res.Outputs[0].Output) != "H" {
			t.Errorf("[%v] outputs = %v", rules, res.Outputs)
		}
	}
}

// TestFigure1StateString pins the paper's additive rendering of P(H).
func TestFigure1StateString(t *testing.T) {
	c, sp := fig1(t)
	a := MustNew(c, sp, Options{})
	a.EPP(c.ByName("A"))
	st, _ := a.StateOf(c.ByName("H"))
	want := "0.042(a) + 0.392(a̅) + 0.168(0) + 0.398(1)"
	if got := st.String(); got != want {
		t.Errorf("P(H) = %q, want %q", got, want)
	}
}

// TestErrorSiteState: the site itself carries the error with certainty.
func TestErrorSiteState(t *testing.T) {
	c, sp := fig1(t)
	a := MustNew(c, sp, Options{})
	a.EPP(c.ByName("A"))
	st, on := a.StateOf(c.ByName("A"))
	if !on || st.PA() != 1 {
		t.Errorf("site state = %v (on=%v)", st, on)
	}
}

// TestOffPathNodesNotStamped: off-path signals have no on-path state.
func TestOffPathNodesNotStamped(t *testing.T) {
	c, sp := fig1(t)
	a := MustNew(c, sp, Options{})
	a.EPP(c.ByName("A"))
	for _, off := range []string{"B", "C", "F"} {
		if _, on := a.StateOf(c.ByName(off)); on {
			t.Errorf("off-path %s has on-path state", off)
		}
	}
}

// TestInverterChainPolarity: through k inverters the error arrives with
// polarity a (k even) or a̅ (k odd), always with probability 1.
func TestInverterChainPolarity(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
OUTPUT(n4)
n1 = NOT(a)
n2 = NOT(n1)
n3 = NOT(n2)
n4 = NOT(n3)
`)
	sp := sigprob.Topological(c, sigprob.Config{})
	a := MustNew(c, sp, Options{})
	res := a.EPP(c.ByName("a"))
	if res.PSensitized != 1 {
		t.Fatalf("PSensitized = %v, want 1", res.PSensitized)
	}
	for i, name := range []string{"n1", "n2", "n3", "n4"} {
		st, _ := a.StateOf(c.ByName(name))
		if i%2 == 0 { // n1, n3: odd number of inversions
			if st.PABar() != 1 {
				t.Errorf("%s state = %v, want pure a̅", name, st)
			}
		} else {
			if st.PA() != 1 {
				t.Errorf("%s state = %v, want pure a", name, st)
			}
		}
	}
}

// TestReconvergenceMasking: EPP's polarity tracking must detect that
// XOR(a, NOT(a)) structurally masks the error (P_sensitized = 0), which a
// polarity-blind analysis would get wrong.
func TestReconvergenceMasking(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
OUTPUT(y)
n = NOT(a)
y = XOR(a, n)
`)
	sp := sigprob.Topological(c, sigprob.Config{})
	a := MustNew(c, sp, Options{})
	if got := a.EPP(c.ByName("a")).PSensitized; got != 0 {
		t.Errorf("masked reconvergence: %v, want 0", got)
	}

	// Same-polarity reconvergence at XOR also cancels: XOR(a, a).
	c2 := mustParse(t, `
INPUT(a)
OUTPUT(y)
b1 = BUFF(a)
b2 = BUFF(a)
y = XOR(b1, b2)
`)
	sp2 := sigprob.Topological(c2, sigprob.Config{})
	a2 := MustNew(c2, sp2, Options{})
	if got := a2.EPP(c2.ByName("a")).PSensitized; got != 0 {
		t.Errorf("same-polarity reconvergence: %v, want 0", got)
	}
}

// TestUnobservableSite: no path to any output means P_sensitized = 0 with an
// empty output list.
func TestUnobservableSite(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
OUTPUT(y)
y = BUFF(a)
dead = NOT(a)
`)
	sp := sigprob.Topological(c, sigprob.Config{})
	a := MustNew(c, sp, Options{})
	res := a.EPP(c.ByName("dead"))
	if res.PSensitized != 0 || len(res.Outputs) != 0 {
		t.Errorf("dead site: %+v", res)
	}
}

// TestObservedSiteIsCertain: an SEU at an observation point itself is always
// sensitized.
func TestObservedSiteIsCertain(t *testing.T) {
	c, sp := fig1(t)
	a := MustNew(c, sp, Options{})
	if got := a.EPP(c.ByName("H")).PSensitized; got != 1 {
		t.Errorf("PSensitized(H) = %v, want 1", got)
	}
}

// TestSequentialBoundary: propagation stops at the FF's D input and counts
// it as an output.
func TestSequentialBoundary(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
INPUT(b)
OUTPUT(z)
d = AND(a, b)
q = DFF(d)
z = BUFF(q)
`)
	sp := sigprob.Topological(c, sigprob.Config{})
	an := MustNew(c, sp, Options{})
	res := an.EPP(c.ByName("a"))
	if math.Abs(res.PSensitized-0.5) > 1e-12 {
		t.Errorf("PSensitized = %v, want 0.5", res.PSensitized)
	}
	if len(res.Outputs) != 1 || c.NameOf(res.Outputs[0].Output) != "d" {
		t.Errorf("outputs = %v, want [d]", res.Outputs)
	}
	// z is behind the FF: never part of this cone.
	if _, on := an.StateOf(c.ByName("z")); on {
		t.Error("analysis crossed the flip-flop")
	}
}

// TestAnalyzerReuseAcrossSites: running many sites back to back on one
// Analyzer must give the same answers as fresh Analyzers (epoch reuse).
func TestAnalyzerReuseAcrossSites(t *testing.T) {
	c, sp := fig1(t)
	shared := MustNew(c, sp, Options{})
	for id := 0; id < c.N(); id++ {
		fresh := MustNew(c, sp, Options{})
		got := shared.EPP(netlist.ID(id)).PSensitized
		want := fresh.EPP(netlist.ID(id)).PSensitized
		if math.Abs(got-want) > 1e-15 {
			t.Errorf("node %d: reused %v, fresh %v", id, got, want)
		}
	}
}

// TestNewValidation: bad signal probability vectors are rejected.
func TestNewValidation(t *testing.T) {
	c, sp := fig1(t)
	if _, err := New(c, sp[:2], Options{}); err == nil {
		t.Error("short SP vector accepted")
	}
	bad := append([]float64(nil), sp...)
	bad[0] = 1.5
	if _, err := New(c, bad, Options{}); err == nil {
		t.Error("out-of-range SP accepted")
	}
}

// TestCloneIsIndependent: a cloned analyzer can interleave queries without
// corrupting the original.
func TestCloneIsIndependent(t *testing.T) {
	c, sp := fig1(t)
	a := MustNew(c, sp, Options{})
	b := a.Clone()
	resA := a.EPP(c.ByName("A"))
	b.EPP(c.ByName("C"))
	// a's last state must still describe site A.
	st, on := a.StateOf(c.ByName("H"))
	if !on {
		t.Fatal("clone query corrupted original's state")
	}
	if math.Abs(st.PErr()-resA.PSensitized) > 1e-12 {
		t.Errorf("state mismatch after clone use")
	}
}
