package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/sigprob"
	"repro/internal/simulate"
)

// TestClosedFormEqualsPairwise (experiment E2/A1): on random circuits, the
// paper's Table 1 closed-form rules and the generic 4×4 pairwise fold must
// produce identical states at every node of every cone.
func TestClosedFormEqualsPairwise(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		c := gen.SmallRandomSequential(seed)
		sp := sigprob.Topological(c, sigprob.Config{})
		cf := MustNew(c, sp, Options{Rules: RulesClosedForm})
		pw := MustNew(c, sp, Options{Rules: RulesPairwise})
		for id := 0; id < c.N(); id++ {
			a := cf.EPP(netlist.ID(id))
			b := pw.EPP(netlist.ID(id))
			if math.Abs(a.PSensitized-b.PSensitized) > 1e-9 {
				t.Fatalf("seed %d site %d: closed %v, pairwise %v",
					seed, id, a.PSensitized, b.PSensitized)
			}
			for i := range a.Outputs {
				for s := range a.Outputs[i].State {
					d := a.Outputs[i].State[s] - b.Outputs[i].State[s]
					if math.Abs(d) > 1e-9 {
						t.Fatalf("seed %d site %d output %d: state mismatch %v vs %v",
							seed, id, i, a.Outputs[i].State, b.Outputs[i].State)
					}
				}
			}
		}
	}
}

// TestStatesAreDistributions: every on-path state produced during full-
// circuit analysis is a valid probability distribution and every
// P_sensitized lies in [0,1].
func TestStatesAreDistributions(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		c := gen.SmallRandomSequential(seed + 100)
		sp := sigprob.Topological(c, sigprob.Config{})
		a := MustNew(c, sp, Options{})
		for id := 0; id < c.N(); id++ {
			res := a.EPP(netlist.ID(id))
			if res.PSensitized < -1e-12 || res.PSensitized > 1+1e-12 {
				t.Fatalf("seed %d site %d: PSensitized = %v", seed, id, res.PSensitized)
			}
			for _, o := range res.Outputs {
				if !o.State.Valid(1e-9) {
					t.Fatalf("seed %d site %d output %d: invalid state %v (sum %v)",
						seed, id, o.Output, o.State, o.State.Sum())
				}
			}
		}
	}
}

// TestExactOnTrees: on fanout-free circuits with exact (enumerated) signal
// probabilities, the independence assumption holds and EPP must equal
// exhaustive ground truth at float precision for every site.
func TestExactOnTrees(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		c := gen.TreeRandom(seed)
		sp, err := exact.SignalProb(c)
		if err != nil {
			t.Fatal(err)
		}
		a := MustNew(c, sp, Options{})
		for id := 0; id < c.N(); id++ {
			got := a.EPP(netlist.ID(id)).PSensitized
			want, err := exact.PSensitized(c, netlist.ID(id))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("seed %d site %s: EPP %v, exact %v",
					seed, c.NameOf(netlist.ID(id)), got, want)
			}
		}
	}
}

// TestAccuracyOnRandomCircuits (experiment E3 in miniature): on small random
// circuits with reconvergent fanout, EPP is an approximation; assert the
// average absolute error against exhaustive ground truth stays within the
// regime the paper reports (average difference ~5-6%, here bounded at 10%
// mean and 35% worst-node to keep the test deterministic and robust).
func TestAccuracyOnRandomCircuits(t *testing.T) {
	totalErr, totalN := 0.0, 0
	worst := 0.0
	for seed := uint64(0); seed < 10; seed++ {
		c := gen.SmallRandom(seed + 300)
		spTruth, err := exact.SignalProb(c)
		if err != nil {
			t.Fatal(err)
		}
		a := MustNew(c, spTruth, Options{})
		for id := 0; id < c.N(); id++ {
			got := a.EPP(netlist.ID(id)).PSensitized
			want, err := exact.PSensitized(c, netlist.ID(id))
			if err != nil {
				t.Fatal(err)
			}
			e := math.Abs(got - want)
			totalErr += e
			totalN++
			if e > worst {
				worst = e
			}
		}
	}
	mean := totalErr / float64(totalN)
	t.Logf("EPP vs exact over %d sites: mean |err| = %.4f, worst = %.4f", totalN, mean, worst)
	if mean > 0.10 {
		t.Errorf("mean absolute error %v exceeds 0.10", mean)
	}
	if worst > 0.60 {
		t.Errorf("worst-case node error %v exceeds 0.60", worst)
	}
}

// TestAgainstMonteCarloLargeVectors: EPP and the Monte Carlo baseline must
// agree closely on random circuits when MC has enough vectors — this is the
// paper's Table 2 accuracy comparison in miniature. Circuits here carry a
// realistic input support (the independence assumption degrades on degenerate
// 2-to-3-input circuits, which real benchmarks do not resemble; the
// exhaustive test above covers that pathology with a generous bound).
func TestAgainstMonteCarloLargeVectors(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		c := gen.MustRandom(gen.Params{
			Name: "mcacc", Seed: seed + 500, PIs: 12, POs: 5, FFs: 3, Gates: 120,
		})
		sp := sigprob.MonteCarlo(c, sigprob.Config{Vectors: 1 << 15, Seed: seed})
		a := MustNew(c, sp, Options{})
		mc := simulate.NewMonteCarlo(c, simulate.MCOptions{Vectors: 1 << 14, Seed: seed * 7})
		sumAbs, n := 0.0, 0
		for id := 0; id < c.N(); id++ {
			e := a.EPP(netlist.ID(id)).PSensitized
			m := mc.EPP(netlist.ID(id)).PSensitized
			sumAbs += math.Abs(e - m)
			n++
		}
		mean := sumAbs / float64(n)
		t.Logf("seed %d: mean |EPP-MC| = %.4f over %d sites", seed, mean, n)
		if mean > 0.12 {
			t.Errorf("seed %d: mean difference vs Monte Carlo = %v", seed, mean)
		}
	}
}

// TestPSensitizedAllMatchesEPP: the batched all-sites kernel must agree
// with the scalar per-site API. Tolerance is 1e-12, not exact: the batched
// engine folds per-output misses in union-cone order, which can reorder the
// floating-point product within a level relative to the scalar sweep (see
// TestBatchMatchesScalar for the exhaustive cross-check).
func TestPSensitizedAllMatchesEPP(t *testing.T) {
	c := gen.SmallRandomSequential(77)
	sp := sigprob.Topological(c, sigprob.Config{})
	a := MustNew(c, sp, Options{})
	batch := a.PSensitizedAll()
	for id := 0; id < c.N(); id++ {
		want := a.EPP(netlist.ID(id)).PSensitized
		if math.Abs(batch[id]-want) > 1e-12 {
			t.Fatalf("site %d: batch %v, EPP %v", id, batch[id], want)
		}
	}
}

// TestAllSitesParallelMatchesSerial: the multi-core sweep must be
// deterministic and equal to the serial sweep.
func TestAllSitesParallelMatchesSerial(t *testing.T) {
	c := gen.MustRandom(gen.Params{Name: "p", Seed: 9, PIs: 10, POs: 5, FFs: 4, Gates: 300})
	sp := sigprob.Topological(c, sigprob.Config{})
	a := MustNew(c, sp, Options{})
	serial := a.AllSites()
	parallel := a.AllSitesParallel(4)
	if len(serial) != len(parallel) {
		t.Fatal("length mismatch")
	}
	for id := range serial {
		if serial[id].PSensitized != parallel[id].PSensitized {
			t.Fatalf("site %d: serial %v, parallel %v",
				id, serial[id].PSensitized, parallel[id].PSensitized)
		}
		if serial[id].ConeSize != parallel[id].ConeSize {
			t.Fatalf("site %d: cone sizes differ", id)
		}
	}
}

// TestMoreOutputsNeverDecreasePSensitized (quick property): adding an
// independent observing branch can only increase P_sensitized. Built as a
// quick.Check over generated seeds.
func TestMoreOutputsNeverDecreasePSensitized(t *testing.T) {
	f := func(rawSeed uint16) bool {
		seed := uint64(rawSeed)
		c := gen.TreeRandom(seed)
		sp := sigprob.Topological(c, sigprob.Config{})
		a := MustNew(c, sp, Options{})
		// Root output observed; P_sensitized of any node is in [0,1] and the
		// root (observed) has exactly 1.
		root := c.POs[0]
		if got := a.EPP(root).PSensitized; got != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestXorConeClosedFormDelegation: cones containing XOR gates work under
// both rule sets (closed form delegates XOR to the fold).
func TestXorConeClosedFormDelegation(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
g = XOR(a, b)
y = XNOR(g, c)
`)
	sp := sigprob.Topological(c, sigprob.Config{})
	for _, rules := range []RuleSet{RulesClosedForm, RulesPairwise} {
		an := MustNew(c, sp, Options{Rules: rules})
		got := an.EPP(c.ByName("a")).PSensitized
		// XOR chain: error always propagates regardless of b, c.
		if math.Abs(got-1) > 1e-12 {
			t.Errorf("[%v] XOR chain: %v, want 1", rules, got)
		}
	}
}

// TestRuleSetString covers the diagnostic names.
func TestRuleSetString(t *testing.T) {
	if RulesClosedForm.String() != "closed-form" || RulesPairwise.String() != "pairwise" {
		t.Error("RuleSet names changed")
	}
	if RuleSet(9).String() == "" {
		t.Error("unknown RuleSet must render")
	}
}

// TestConst declares tie cells inside a cone work (off-path constants).
func TestConstOffPath(t *testing.T) {
	b := netlist.NewBuilder("tie")
	a := b.Input("a")
	one := b.Const("one", true)
	zero := b.Const("zero", false)
	y := b.And("y", a, one)  // transparent
	z := b.And("z", a, zero) // blocked
	b.MarkOutput(y)
	b.MarkOutput(z)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sp := sigprob.Topological(c, sigprob.Config{})
	an := MustNew(c, sp, Options{})
	res := an.EPP(a)
	if math.Abs(res.PSensitized-1) > 1e-12 {
		t.Errorf("AND with const-1 side input must propagate: %v", res.PSensitized)
	}
	stZ, _ := an.StateOf(z)
	if stZ.PErr() != 0 {
		t.Errorf("AND with const-0 side input must block: %v", stZ)
	}
}
