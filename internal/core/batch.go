package core

import (
	"runtime"
	"sync"

	"repro/internal/netlist"
)

// AllSites runs the EPP analysis with every node of the circuit as the error
// site ("we consider all circuit nodes as possible error sites", paper §2)
// and returns one Result per node, indexed by node ID. Output state slices
// are populated; the analysis is single-threaded — see AllSitesParallel for
// the multi-core variant used by the benchmark harness.
func (a *Analyzer) AllSites() []Result {
	out := make([]Result, a.c.N())
	for id := 0; id < a.c.N(); id++ {
		out[id] = a.EPP(netlist.ID(id))
	}
	return out
}

// PSensitizedAll computes only the P_sensitized value for every node,
// avoiding per-output result allocation. This is the kernel timed as "SysT"
// in the Table 2 reproduction.
func (a *Analyzer) PSensitizedAll() []float64 {
	out := make([]float64, a.c.N())
	for id := 0; id < a.c.N(); id++ {
		cone := a.walker.ForwardCone(netlist.ID(id))
		a.sweep(&cone)
		missAll := 1.0
		for _, o := range cone.Outputs {
			missAll *= 1 - a.state[o].PErr()
		}
		if len(cone.Outputs) == 0 {
			out[id] = 0
		} else {
			out[id] = 1 - missAll
		}
	}
	return out
}

// AllSitesParallel runs AllSites across workers goroutines (0 means
// GOMAXPROCS), each with its own cloned Analyzer.
func (a *Analyzer) AllSitesParallel(workers int) []Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := a.c.N()
	out := make([]Result, n)
	var next int64
	var mu sync.Mutex
	take := func(chunk int) (int, int) {
		mu.Lock()
		defer mu.Unlock()
		lo := int(next)
		if lo >= n {
			return 0, 0
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		next = int64(hi)
		return lo, hi
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := a.Clone()
			for {
				lo, hi := take(64)
				if lo == hi {
					return
				}
				for id := lo; id < hi; id++ {
					out[id] = local.EPP(netlist.ID(id))
				}
			}
		}()
	}
	wg.Wait()
	return out
}
