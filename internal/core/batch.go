// Batched all-sites EPP kernel: core.BatchAnalyzer sweeps up to 64 error
// sites per union-cone pass with struct-of-arrays Prob4 lanes — the
// production path behind AllSites, PSensitizedAll and the epp-batch engine.

package core

import (
	"fmt"
	"math/bits"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// MaxBatchWidth is the largest number of error sites a BatchAnalyzer can
// process per pass: one lane per bit of the uint64 on-path masks.
const MaxBatchWidth = 64

// DefaultBatchWidth is the lane count used by the AllSites entry points. It
// trades cone-extraction amortization (wider is better: consecutive sites
// have heavily overlapping cones, and the width sweep in the benchmark
// suite is monotonically faster up to the mask limit on every ISCAS
// profile) against lane-state memory — 32 bytes per on-path node per lane,
// i.e. up to |union cone| × width × 32 B of reusable scratch per engine.
const DefaultBatchWidth = MaxBatchWidth

// BatchAnalyzer is the batched implementation of the all-sites EPP kernel.
// It processes up to Width error sites per sweep: one forward DFS extracts
// the union of the sites' cones, a per-node uint64 mask records which lanes
// (sites) each node is on-path for, and a single pass in topological order
// computes all lanes' four-valued states together. Per-lane state is stored
// struct-of-arrays (separate Pa/Pā/P0/P1 float64 arrays, lane-major within a
// node) so the inner loops touch contiguous memory.
//
// Compared with running the scalar Analyzer once per site this amortizes,
// across the whole batch: the cone DFS and topological sort, the fanin
// index and gate-kind loads, and the gate-rule dispatch. The 2-input
// AND/OR/NAND/NOR gates that dominate mapped netlists additionally take a
// branch-free closed-form path evaluated directly on the lane arrays.
//
// The scalar Analyzer.EPP remains the executable specification: for every
// site, the batched states are computed with the same rule arithmetic in
// the same fanin order, and agree with the scalar sweep to ≤ 1e-12 (the
// only divergence is floating-point product order when folding output
// misses, see TestBatchMatchesScalar).
//
// A BatchAnalyzer is not safe for concurrent use; create one per goroutine
// (AllSitesParallel does).
type BatchAnalyzer struct {
	a      *Analyzer
	stride int // configured lane count (batch width)

	// Per-node epoch-stamped scratch. stamp marks union-cone membership in
	// the current batch; seedStamp validates seed (the lanes a node is the
	// error site of); mask is valid for stamped nodes after the node has
	// been swept; pos is the node's dense index into the lane arrays.
	mask      []uint64
	seed      []uint64
	pos       []int32
	stamp     []uint32
	seedStamp []uint32
	epoch     uint32

	// Union-cone extraction scratch (same technique as graph.Walker).
	stack   []netlist.ID
	touched []netlist.ID
	counts  []int32
	members []netlist.ID
	obs     []netlist.ID // observed union members, in sweep order

	// Struct-of-arrays lane state, indexed pos*stride + lane.
	pa, pab, p0, p1 []float64

	miss  []float64 // per-lane running ∏ (1 − PErr(output))
	csize []int32   // per-lane on-path signal count
	ins   []logic.Prob4

	// Cumulative work counters since construction (or ResetCounters): how
	// many union-cone nodes were swept and how many sites were analyzed.
	// sweptNodes/sitesSwept is the batching efficiency — with perfect cone
	// overlap it approaches |cone|/width per site; with disjoint cones it
	// equals the mean cone size. See Counters.
	sweptNodes int64
	sitesSwept int64
}

// NewBatch returns a batched engine over the same circuit, signal
// probabilities and rule set as a. width is clamped to [1, MaxBatchWidth].
func NewBatch(a *Analyzer, width int) *BatchAnalyzer {
	if width < 1 {
		width = 1
	}
	if width > MaxBatchWidth {
		width = MaxBatchWidth
	}
	n := a.c.N()
	return &BatchAnalyzer{
		a:         a,
		stride:    width,
		mask:      make([]uint64, n),
		seed:      make([]uint64, n),
		pos:       make([]int32, n),
		stamp:     make([]uint32, n),
		seedStamp: make([]uint32, n),
		miss:      make([]float64, width),
		csize:     make([]int32, width),
		ins:       make([]logic.Prob4, 0, 8),
	}
}

// Width returns the configured batch width (lanes per pass).
func (b *BatchAnalyzer) Width() int { return b.stride }

// Counters returns the cumulative work counters: union-cone nodes swept and
// sites analyzed since construction (or the last ResetCounters). Their ratio
// is the batching efficiency the cone-locality scheduler optimizes — swept
// nodes per site, lower is better (the per-site minimum is the mean cone
// size divided by the batch width when cones overlap perfectly).
func (b *BatchAnalyzer) Counters() (sweptNodes, sites int64) {
	return b.sweptNodes, b.sitesSwept
}

// ResetCounters zeroes the work counters.
func (b *BatchAnalyzer) ResetCounters() {
	b.sweptNodes, b.sitesSwept = 0, 0
}

// Batch returns the Analyzer's batched engine (lazily created at the
// Options.BatchWidth lane count), the engine behind the AllSites entry
// points. Callers with their own site sets (e.g. the multi-cycle analysis
// batching flip-flop sweeps) should use this rather than NewBatch so the
// O(N) scratch is shared and the configured width is honored. Like the
// Analyzer itself it is not safe for concurrent use.
func (a *Analyzer) Batch() *BatchAnalyzer {
	if a.batch == nil {
		w := a.opt.BatchWidth
		if w == 0 {
			w = DefaultBatchWidth
		}
		a.batch = NewBatch(a, w)
	}
	return a.batch
}

// PSensitizedBatch computes P_sensitized for up to Width error sites in one
// batched sweep, writing out[i] for sites[i]. len(out) must equal
// len(sites); sites must be valid node IDs. Performs no per-site heap
// allocation (scratch grows once to the largest union cone seen and is
// reused).
func (b *BatchAnalyzer) PSensitizedBatch(sites []netlist.ID, out []float64) {
	if len(sites) != len(out) {
		panic(fmt.Sprintf("core: PSensitizedBatch: %d sites, %d outputs", len(sites), len(out)))
	}
	if len(sites) == 0 {
		return
	}
	b.run(sites)
	for i := range sites {
		out[i] = 1 - b.miss[i]
	}
}

// EPPBatch runs the batched analysis for up to Width sites and writes one
// full Result (per-output states, cone size) per site into out.
func (b *BatchAnalyzer) EPPBatch(sites []netlist.ID, out []Result) {
	if len(sites) != len(out) {
		panic(fmt.Sprintf("core: EPPBatch: %d sites, %d results", len(sites), len(out)))
	}
	if len(sites) == 0 {
		return
	}
	b.run(sites)
	stride := b.stride
	for i, site := range sites {
		out[i] = Result{
			Site:        site,
			PSensitized: 1 - b.miss[i],
			ConeSize:    int(b.csize[i]),
		}
	}
	// Gather per-lane output states in ascending node-ID order (b.obs is
	// sorted after the sweep; see run).
	for _, id := range b.obs {
		base := int(b.pos[id]) * stride
		for mm := b.mask[id]; mm != 0; mm &= mm - 1 {
			l := bits.TrailingZeros64(mm)
			j := base + l
			st := logic.Prob4{
				logic.SymA:    b.pa[j],
				logic.SymABar: b.pab[j],
				logic.SymZero: b.p0[j],
				logic.SymOne:  b.p1[j],
			}
			out[l].Outputs = append(out[l].Outputs, OutputEPP{Output: id, State: st})
		}
	}
}

// run executes one batched pass: seed the lanes, extract the union cone,
// order it topologically, then sweep all lanes in a single pass.
func (b *BatchAnalyzer) run(sites []netlist.ID) {
	if len(sites) == 0 {
		return
	}
	if len(sites) > b.stride {
		panic(fmt.Sprintf("core: batch of %d sites exceeds width %d", len(sites), b.stride))
	}
	a := b.a
	c := a.c
	n := c.N()

	b.epoch++
	if b.epoch == 0 { // uint32 wraparound: invalidate all stamps
		for i := range b.stamp {
			b.stamp[i] = 0
			b.seedStamp[i] = 0
		}
		b.epoch = 1
	}

	// Seed lanes and start the union DFS from every site.
	b.touched = b.touched[:0]
	b.stack = b.stack[:0]
	for lane, site := range sites {
		if site < 0 || int(site) >= n {
			panic(fmt.Sprintf("core: batch: invalid site %d", site))
		}
		if b.seedStamp[site] != b.epoch {
			b.seedStamp[site] = b.epoch
			b.seed[site] = 0
		}
		b.seed[site] |= 1 << uint(lane)
		if b.stamp[site] != b.epoch {
			b.stamp[site] = b.epoch
			b.touched = append(b.touched, site)
			b.stack = append(b.stack, site)
		}
	}
	foIdx, foArr := c.FanoutCSR()
	kinds := c.Kinds()
	for len(b.stack) > 0 {
		id := b.stack[len(b.stack)-1]
		b.stack = b.stack[:len(b.stack)-1]
		for _, o := range foArr[foIdx[id]:foIdx[id+1]] {
			if b.stamp[o] == b.epoch {
				continue
			}
			if kinds[o] == logic.DFF {
				continue // time-frame boundary: do not cross
			}
			b.stamp[o] = b.epoch
			b.touched = append(b.touched, o)
			b.stack = append(b.stack, o)
		}
	}

	// Counting sort by combinational level — a valid topological order, as
	// in graph.Walker.ForwardCone.
	levels := c.Levels()
	maxLv := 0
	for _, id := range b.touched {
		if lv := levels[id]; lv > maxLv {
			maxLv = lv
		}
	}
	if cap(b.counts) < maxLv+2 {
		b.counts = make([]int32, maxLv+2)
	}
	counts := b.counts[:maxLv+2]
	for i := range counts {
		counts[i] = 0
	}
	for _, id := range b.touched {
		counts[levels[id]+1]++
	}
	for lv := 1; lv < len(counts); lv++ {
		counts[lv] += counts[lv-1]
	}
	if cap(b.members) < len(b.touched) {
		b.members = make([]netlist.ID, len(b.touched))
	}
	b.members = b.members[:len(b.touched)]
	for _, id := range b.touched {
		lv := levels[id]
		b.members[counts[lv]] = id
		counts[lv]++
	}

	// Size the lane arrays for this union cone.
	stride := b.stride
	if need := len(b.members) * stride; cap(b.pa) < need {
		b.pa = make([]float64, need)
		b.pab = make([]float64, need)
		b.p0 = make([]float64, need)
		b.p1 = make([]float64, need)
	}

	for i := 0; i < len(sites); i++ {
		b.miss[i] = 1
		b.csize[i] = 0
	}
	b.obs = b.obs[:0]

	b.sweepUnion()

	// Fold each lane's per-output miss product in ascending output-ID
	// order. The order is canonical — independent of which sites share the
	// batch and of the union sweep's within-level tie-breaking — which
	// makes every batched result bit-identical under any site packing (see
	// TestBatchPackingInvariance); lane states themselves are already
	// packing-invariant because a lane's arithmetic only ever reads its own
	// lane and off-path signal probabilities. The scalar engine folds in
	// the same canonical order (see Analyzer.EPP).
	slices.Sort(b.obs)
	for _, id := range b.obs {
		base := int(b.pos[id]) * stride
		for mm := b.mask[id]; mm != 0; mm &= mm - 1 {
			l := bits.TrailingZeros64(mm)
			j := base + l
			b.miss[l] *= 1 - (b.pa[j] + b.pab[j])
		}
	}
	b.sweptNodes += int64(len(b.members))
	b.sitesSwept += int64(len(sites))
}

// sweepUnion is the batched step 3: one pass over the union cone in
// topological order, computing every lane's state at every node.
func (b *BatchAnalyzer) sweepUnion() {
	a := b.a
	c := a.c
	kinds := a.kinds
	fiIdx, fiArr := a.fiIdx, a.fiArr
	stride := b.stride
	closed := a.opt.Rules != RulesPairwise
	fast := a.opt.Rules == RulesClosedForm

	for i, id := range b.members {
		b.pos[id] = int32(i)
		base := i * stride

		var m uint64
		if b.seedStamp[id] == b.epoch {
			m = b.seed[id]
		}
		sb := m // seed (error-site) lanes of this node
		kind := kinds[id]
		fs, fe := int(fiIdx[id]), int(fiIdx[id+1])
		if kind.IsGate() {
			for _, f := range fiArr[fs:fe] {
				if b.stamp[f] == b.epoch {
					m |= b.mask[f]
				}
			}
		}
		b.mask[id] = m

		// Error-site lanes hold the erroneous value with certainty.
		for mm := sb; mm != 0; mm &= mm - 1 {
			j := base + bits.TrailingZeros64(mm)
			b.pa[j], b.pab[j], b.p0[j], b.p1[j] = 1, 0, 0, 0
		}

		if compute := m &^ sb; compute != 0 {
			nf := fe - fs
			switch {
			case fast && nf == 2 && (kind == logic.And || kind == logic.Nand):
				b.and2Lanes(base, compute, fiArr[fs], fiArr[fs+1], kind == logic.Nand)
			case fast && nf == 2 && (kind == logic.Or || kind == logic.Nor):
				b.or2Lanes(base, compute, fiArr[fs], fiArr[fs+1], kind == logic.Nor)
			case fast && (kind == logic.And || kind == logic.Nand):
				b.andNLanes(base, compute, fiArr[fs:fe], kind == logic.Nand)
			case fast && (kind == logic.Or || kind == logic.Nor):
				b.orNLanes(base, compute, fiArr[fs:fe], kind == logic.Nor)
			case fast && (kind == logic.Buf || kind == logic.Not):
				b.unaryLanes(base, compute, fiArr[fs], kind == logic.Not)
			default:
				b.genericLanes(base, compute, kind, fiArr[fs:fe], closed)
			}
		}

		if c.IsObserved(id) && m != 0 {
			b.obs = append(b.obs, id) // miss folding happens post-sweep, in ID order
		}
		for mm := m; mm != 0; mm &= mm - 1 {
			b.csize[bits.TrailingZeros64(mm)]++
		}
	}
}

// laneIn loads fanin f's state for lane l: its on-path lane state if f is on
// path for l in this batch, the off-path signal-probability state otherwise.
func (b *BatchAnalyzer) laneIn(f netlist.ID, l int) (xa, xab, x0, x1 float64) {
	if b.stamp[f] == b.epoch && b.mask[f]>>uint(l)&1 == 1 {
		j := int(b.pos[f])*b.stride + l
		return b.pa[j], b.pab[j], b.p0[j], b.p1[j]
	}
	s := b.a.sp[f]
	return 0, 0, 1 - s, s
}

// and2Lanes is the branch-light closed-form path for 2-input AND/NAND: the
// fanin pair, their on-path flags and their off-path states are hoisted out
// of the lane loop, and the Table 1 AND rule is applied with exactly the
// arithmetic (and operation order) of the scalar andRule.
func (b *BatchAnalyzer) and2Lanes(base int, compute uint64, fx, fy netlist.ID, invert bool) {
	onX := b.stamp[fx] == b.epoch
	onY := b.stamp[fy] == b.epoch
	var mx, my uint64
	var bx, by int
	if onX {
		mx = b.mask[fx]
		bx = int(b.pos[fx]) * b.stride
	}
	if onY {
		my = b.mask[fy]
		by = int(b.pos[fy]) * b.stride
	}
	spx, spy := b.a.sp[fx], b.a.sp[fy]

	for mm := compute; mm != 0; mm &= mm - 1 {
		l := bits.TrailingZeros64(mm)
		var xa, xab, x1 float64
		if mx>>uint(l)&1 == 1 {
			j := bx + l
			xa, xab, x1 = b.pa[j], b.pab[j], b.p1[j]
		} else {
			xa, xab, x1 = 0, 0, spx
		}
		var ya, yab, y1 float64
		if my>>uint(l)&1 == 1 {
			j := by + l
			ya, yab, y1 = b.pa[j], b.pab[j], b.p1[j]
		} else {
			ya, yab, y1 = 0, 0, spy
		}

		p1 := x1 * y1
		pa := (x1+xa)*(y1+ya) - p1
		pab := (x1+xab)*(y1+yab) - p1
		if pa < 0 {
			pa = 0
		}
		if pab < 0 {
			pab = 0
		}
		p0 := 1 - (p1 + pa + pab)
		if p0 < 0 {
			p0 = 0
		}
		j := base + l
		if invert {
			b.pa[j], b.pab[j], b.p0[j], b.p1[j] = pab, pa, p1, p0
		} else {
			b.pa[j], b.pab[j], b.p0[j], b.p1[j] = pa, pab, p0, p1
		}
	}
}

// or2Lanes is the dual of and2Lanes for 2-input OR/NOR (Table 1 OR rule).
func (b *BatchAnalyzer) or2Lanes(base int, compute uint64, fx, fy netlist.ID, invert bool) {
	onX := b.stamp[fx] == b.epoch
	onY := b.stamp[fy] == b.epoch
	var mx, my uint64
	var bx, by int
	if onX {
		mx = b.mask[fx]
		bx = int(b.pos[fx]) * b.stride
	}
	if onY {
		my = b.mask[fy]
		by = int(b.pos[fy]) * b.stride
	}
	spx, spy := b.a.sp[fx], b.a.sp[fy]

	for mm := compute; mm != 0; mm &= mm - 1 {
		l := bits.TrailingZeros64(mm)
		var xa, xab, x0 float64
		if mx>>uint(l)&1 == 1 {
			j := bx + l
			xa, xab, x0 = b.pa[j], b.pab[j], b.p0[j]
		} else {
			xa, xab, x0 = 0, 0, 1-spx
		}
		var ya, yab, y0 float64
		if my>>uint(l)&1 == 1 {
			j := by + l
			ya, yab, y0 = b.pa[j], b.pab[j], b.p0[j]
		} else {
			ya, yab, y0 = 0, 0, 1-spy
		}

		p0 := x0 * y0
		pa := (x0+xa)*(y0+ya) - p0
		pab := (x0+xab)*(y0+yab) - p0
		if pa < 0 {
			pa = 0
		}
		if pab < 0 {
			pab = 0
		}
		p1 := 1 - (p0 + pa + pab)
		if p1 < 0 {
			p1 = 0
		}
		j := base + l
		if invert {
			b.pa[j], b.pab[j], b.p0[j], b.p1[j] = pab, pa, p1, p0
		} else {
			b.pa[j], b.pab[j], b.p0[j], b.p1[j] = pa, pab, p0, p1
		}
	}
}

// andNLanes applies the n-ary Table 1 AND rule per lane (same accumulation
// order as the scalar andRule: fanins in declaration order).
func (b *BatchAnalyzer) andNLanes(base int, compute uint64, fanin []netlist.ID, invert bool) {
	for mm := compute; mm != 0; mm &= mm - 1 {
		l := bits.TrailingZeros64(mm)
		p1, pa, pab := 1.0, 1.0, 1.0
		for _, f := range fanin {
			xa, xab, _, x1 := b.laneIn(f, l)
			p1 *= x1
			pa *= x1 + xa
			pab *= x1 + xab
		}
		pa -= p1
		pab -= p1
		if pa < 0 {
			pa = 0
		}
		if pab < 0 {
			pab = 0
		}
		p0 := 1 - (p1 + pa + pab)
		if p0 < 0 {
			p0 = 0
		}
		j := base + l
		if invert {
			b.pa[j], b.pab[j], b.p0[j], b.p1[j] = pab, pa, p1, p0
		} else {
			b.pa[j], b.pab[j], b.p0[j], b.p1[j] = pa, pab, p0, p1
		}
	}
}

// orNLanes applies the n-ary Table 1 OR rule per lane (dual of andNLanes).
func (b *BatchAnalyzer) orNLanes(base int, compute uint64, fanin []netlist.ID, invert bool) {
	for mm := compute; mm != 0; mm &= mm - 1 {
		l := bits.TrailingZeros64(mm)
		p0, pa, pab := 1.0, 1.0, 1.0
		for _, f := range fanin {
			xa, xab, x0, _ := b.laneIn(f, l)
			p0 *= x0
			pa *= x0 + xa
			pab *= x0 + xab
		}
		pa -= p0
		pab -= p0
		if pa < 0 {
			pa = 0
		}
		if pab < 0 {
			pab = 0
		}
		p1 := 1 - (p0 + pa + pab)
		if p1 < 0 {
			p1 = 0
		}
		j := base + l
		if invert {
			b.pa[j], b.pab[j], b.p0[j], b.p1[j] = pab, pa, p1, p0
		} else {
			b.pa[j], b.pab[j], b.p0[j], b.p1[j] = pa, pab, p0, p1
		}
	}
}

// unaryLanes handles BUF (copy) and NOT (polarity/constant swap) lanes.
func (b *BatchAnalyzer) unaryLanes(base int, compute uint64, f netlist.ID, invert bool) {
	for mm := compute; mm != 0; mm &= mm - 1 {
		l := bits.TrailingZeros64(mm)
		xa, xab, x0, x1 := b.laneIn(f, l)
		j := base + l
		if invert {
			b.pa[j], b.pab[j], b.p0[j], b.p1[j] = xab, xa, x1, x0
		} else {
			b.pa[j], b.pab[j], b.p0[j], b.p1[j] = xa, xab, x0, x1
		}
	}
}

// genericLanes is the fallback shared with the scalar sweep: gather fanin
// Prob4 states and apply the configured rule implementation. XOR/XNOR under
// every rule set, and all gates under RulesPairwise/RulesNoPolarity, take
// this path, so the batched engine inherits the scalar semantics exactly.
func (b *BatchAnalyzer) genericLanes(base int, compute uint64, kind logic.Kind, fanin []netlist.ID, closed bool) {
	noPol := b.a.opt.Rules == RulesNoPolarity
	for mm := compute; mm != 0; mm &= mm - 1 {
		l := bits.TrailingZeros64(mm)
		b.ins = b.ins[:0]
		for _, f := range fanin {
			xa, xab, x0, x1 := b.laneIn(f, l)
			b.ins = append(b.ins, logic.Prob4{
				logic.SymA:    xa,
				logic.SymABar: xab,
				logic.SymZero: x0,
				logic.SymOne:  x1,
			})
		}
		var st logic.Prob4
		if closed {
			st = closedForm(kind, b.ins)
		} else {
			st = logic.CombineN(kind, b.ins)
		}
		if noPol {
			st[logic.SymA] += st[logic.SymABar]
			st[logic.SymABar] = 0
		}
		j := base + l
		b.pa[j], b.pab[j], b.p0[j], b.p1[j] = st[logic.SymA], st[logic.SymABar], st[logic.SymZero], st[logic.SymOne]
	}
}

// AllSites runs the EPP analysis with every node of the circuit as the error
// site ("we consider all circuit nodes as possible error sites", paper §2)
// and returns one Result per node, indexed by node ID. The analysis runs on
// the batched engine (DefaultBatchWidth sites per union-cone sweep) with
// sites packed by the cone-locality scheduler, so lanes in one batch share
// most of their union cone; because the batched engine is packing-invariant
// (see run), the results are bit-identical to any other packing. See
// AllSitesParallel for the multi-core variant.
func (a *Analyzer) AllSites() []Result {
	n := a.c.N()
	out := make([]Result, n)
	eng := a.Batch()
	order := a.Schedule().Order
	tmp := make([]Result, eng.stride)
	for lo := 0; lo < n; lo += eng.stride {
		hi := lo + eng.stride
		if hi > n {
			hi = n
		}
		eng.EPPBatch(order[lo:hi], tmp[:hi-lo])
		for _, r := range tmp[:hi-lo] {
			out[r.Site] = r
		}
	}
	return out
}

// PSensitizedAll computes only the P_sensitized value for every node,
// avoiding per-output result allocation. This is the kernel timed as "SysT"
// in the Table 2 reproduction; it runs on the batched engine over the
// cone-locality schedule and performs no per-site heap allocation.
func (a *Analyzer) PSensitizedAll() []float64 {
	n := a.c.N()
	out := make([]float64, n)
	eng := a.Batch()
	order := a.Schedule().Order
	tmp := make([]float64, eng.stride)
	for lo := 0; lo < n; lo += eng.stride {
		hi := lo + eng.stride
		if hi > n {
			hi = n
		}
		sites := order[lo:hi]
		eng.PSensitizedBatch(sites, tmp[:hi-lo])
		for i, site := range sites {
			out[site] = tmp[i]
		}
	}
	return out
}

// AllSitesParallel runs AllSites across workers goroutines (0 means
// GOMAXPROCS), each with its own cloned Analyzer and batched engine.
// Scheduled batches are claimed from a lock-free atomic cursor in fixed
// DefaultBatchWidth-aligned chunks; together with the batched engine's
// packing invariance this makes every floating-point result identical to
// the serial AllSites regardless of worker count or scheduling.
func (a *Analyzer) AllSitesParallel(workers int) []Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := a.c.N()
	out := make([]Result, n)
	order := a.Schedule().Order // resolve once; worker clones share it
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := a.Clone()
			eng := local.Batch()
			k := int64(eng.stride)
			tmp := make([]Result, eng.stride)
			for {
				lo := cursor.Add(k) - k
				if lo >= int64(n) {
					return
				}
				hi := int(lo) + eng.stride
				if hi > n {
					hi = n
				}
				eng.EPPBatch(order[lo:hi], tmp[:hi-int(lo)])
				for _, r := range tmp[:hi-int(lo)] {
					out[r.Site] = r
				}
			}
		}()
	}
	wg.Wait()
	return out
}
