package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sigprob"
)

// batchWidths are the lane counts the batched engine is cross-checked at:
// the degenerate scalar-equivalent width, small widths that force many
// partial batches, and the full mask width.
var batchWidths = []int{1, 4, 8, 64}

// TestBatchMatchesScalar is the batched engine's conformance suite: on
// random generated circuits, for every rule set and every batch width, the
// batched P_sensitized of every site must match the scalar Analyzer (the
// executable specification) to ≤ 1e-12, and the per-output states must
// match to the same tolerance. The only legitimate divergence between the
// two engines is floating-point product order when folding per-output miss
// probabilities, which is far below this bound.
func TestBatchMatchesScalar(t *testing.T) {
	rules := []RuleSet{RulesClosedForm, RulesPairwise, RulesNoPolarity}
	for seed := uint64(0); seed < 6; seed++ {
		c := gen.SmallRandomSequential(seed + 40)
		sp := sigprob.Topological(c, sigprob.Config{})
		for _, rs := range rules {
			scalar := MustNew(c, sp, Options{Rules: rs})
			want := make([]Result, c.N())
			for id := 0; id < c.N(); id++ {
				want[id] = scalar.EPP(netlist.ID(id))
			}
			for _, width := range batchWidths {
				eng := NewBatch(MustNew(c, sp, Options{Rules: rs}), width)
				got := make([]Result, c.N())
				sites := make([]netlist.ID, 0, width)
				for lo := 0; lo < c.N(); lo += width {
					hi := lo + width
					if hi > c.N() {
						hi = c.N()
					}
					sites = sites[:0]
					for id := lo; id < hi; id++ {
						sites = append(sites, netlist.ID(id))
					}
					eng.EPPBatch(sites, got[lo:hi])
				}
				for id := 0; id < c.N(); id++ {
					g, w := got[id], want[id]
					if d := math.Abs(g.PSensitized - w.PSensitized); d > 1e-12 {
						t.Fatalf("seed %d rules %v width %d site %d: batched %v, scalar %v (|d| = %g)",
							seed, rs, width, id, g.PSensitized, w.PSensitized, d)
					}
					if g.ConeSize != w.ConeSize {
						t.Fatalf("seed %d rules %v width %d site %d: cone size %d, scalar %d",
							seed, rs, width, id, g.ConeSize, w.ConeSize)
					}
					if len(g.Outputs) != len(w.Outputs) {
						t.Fatalf("seed %d rules %v width %d site %d: %d outputs, scalar %d",
							seed, rs, width, id, len(g.Outputs), len(w.Outputs))
					}
					// Both engines emit outputs in a valid topological
					// order, but within-level tie-breaking differs (single-
					// root vs multi-root DFS discovery), so match by node.
					wantState := make(map[netlist.ID]logic.Prob4, len(w.Outputs))
					for _, o := range w.Outputs {
						wantState[o.Output] = o.State
					}
					for i, o := range g.Outputs {
						ws, ok := wantState[o.Output]
						if !ok {
							t.Fatalf("seed %d rules %v width %d site %d output %d: node %d not in scalar outputs",
								seed, rs, width, id, i, o.Output)
						}
						for s := range o.State {
							if d := o.State[s] - ws[s]; math.Abs(d) > 1e-12 {
								t.Fatalf("seed %d rules %v width %d site %d output node %d: state %v, scalar %v",
									seed, rs, width, id, o.Output, o.State, ws)
							}
						}
					}
				}
			}
		}
	}
}

// TestBatchPSensitizedMatchesEPPBatch: the allocation-free P_sensitized
// entry point and the full-result entry point must agree exactly.
func TestBatchPSensitizedMatchesEPPBatch(t *testing.T) {
	c := gen.SmallRandomSequential(99)
	sp := sigprob.Topological(c, sigprob.Config{})
	a := MustNew(c, sp, Options{})
	all := a.PSensitizedAll()
	res := a.AllSites()
	for id := 0; id < c.N(); id++ {
		if all[id] != res[id].PSensitized {
			t.Fatalf("site %d: PSensitizedAll %v, AllSites %v", id, all[id], res[id].PSensitized)
		}
	}
}

// TestBatchPartialAndRepeatedBatches: a batch narrower than the width, and
// re-use of one engine across many batches, must not leak state between
// passes (epoch/stamp discipline).
func TestBatchPartialAndRepeatedBatches(t *testing.T) {
	c := gen.SmallRandomSequential(7)
	sp := sigprob.Topological(c, sigprob.Config{})
	a := MustNew(c, sp, Options{})
	eng := NewBatch(a, 8)
	want := make([]float64, c.N())
	for id := 0; id < c.N(); id++ {
		want[id] = a.EPP(netlist.ID(id)).PSensitized
	}
	// Singleton batches through a width-8 engine, twice over (stale seeds
	// and masks from previous passes must be invisible).
	for pass := 0; pass < 2; pass++ {
		var out [1]float64
		for id := 0; id < c.N(); id++ {
			eng.PSensitizedBatch([]netlist.ID{netlist.ID(id)}, out[:])
			if d := math.Abs(out[0] - want[id]); d > 1e-12 {
				t.Fatalf("pass %d site %d: batched %v, scalar %v", pass, id, out[0], want[id])
			}
		}
	}
}

// TestBatchWidthClamp: constructor clamps out-of-range widths.
func TestBatchWidthClamp(t *testing.T) {
	c := gen.SmallRandomSequential(1)
	sp := sigprob.Topological(c, sigprob.Config{})
	a := MustNew(c, sp, Options{})
	if w := NewBatch(a, 0).Width(); w != 1 {
		t.Errorf("width 0 clamped to %d, want 1", w)
	}
	if w := NewBatch(a, 1000).Width(); w != MaxBatchWidth {
		t.Errorf("width 1000 clamped to %d, want %d", w, MaxBatchWidth)
	}
}

// TestBatchPackingInvariance: the batched engine must produce bit-identical
// results for ANY site order and ANY packing of sites into batches — the
// property that lets the cone-locality scheduler reorder the all-sites
// sweep freely. Exercised for every rule set and the full width ladder,
// against the ascending-ID width-64 packing as the reference, with results
// additionally cross-checked against the scalar engine to 1e-12.
func TestBatchPackingInvariance(t *testing.T) {
	rules := []RuleSet{RulesClosedForm, RulesPairwise, RulesNoPolarity}
	for seed := uint64(0); seed < 3; seed++ {
		c := gen.SmallRandomSequential(seed + 70)
		sp := sigprob.Topological(c, sigprob.Config{})
		n := c.N()
		for _, rs := range rules {
			// Reference: ascending IDs, width 64.
			ref := make([]float64, n)
			refEng := NewBatch(MustNew(c, sp, Options{Rules: rs}), 64)
			sites := make([]netlist.ID, 0, 64)
			for lo := 0; lo < n; lo += 64 {
				hi := min(lo+64, n)
				sites = sites[:0]
				for id := lo; id < hi; id++ {
					sites = append(sites, netlist.ID(id))
				}
				refEng.PSensitizedBatch(sites, ref[lo:hi])
			}
			scalar := MustNew(c, sp, Options{Rules: rs})

			// Shuffled site orders at several widths, deterministic in seed.
			rng := rand.New(rand.NewPCG(seed, 1234))
			for _, width := range batchWidths {
				perm := rng.Perm(n)
				eng := NewBatch(MustNew(c, sp, Options{Rules: rs}), width)
				got := make([]float64, n)
				tmp := make([]float64, width)
				for lo := 0; lo < n; lo += width {
					hi := min(lo+width, n)
					sites = sites[:0]
					for _, p := range perm[lo:hi] {
						sites = append(sites, netlist.ID(p))
					}
					eng.PSensitizedBatch(sites, tmp[:hi-lo])
					for i, site := range sites {
						got[site] = tmp[i]
					}
				}
				for id := 0; id < n; id++ {
					if got[id] != ref[id] {
						t.Fatalf("seed %d rules %v width %d site %d: shuffled packing %v != reference %v (must be bit-identical)",
							seed, rs, width, id, got[id], ref[id])
					}
					if d := math.Abs(got[id] - scalar.EPP(netlist.ID(id)).PSensitized); d > 1e-12 {
						t.Fatalf("seed %d rules %v width %d site %d: |batch - scalar| = %g > 1e-12",
							seed, rs, width, id, d)
					}
				}
			}
		}
	}
}

// TestAllSitesUsesSchedule: the all-sites entry points sweep the
// cone-locality schedule yet index results by node ID, bit-equal to an
// explicit ID-ordered reference loop.
func TestAllSitesUsesSchedule(t *testing.T) {
	c := gen.SmallRandomSequential(31)
	sp := sigprob.Topological(c, sigprob.Config{})
	a := MustNew(c, sp, Options{})
	s := a.Schedule()
	if s.Len() != c.N() {
		t.Fatalf("schedule covers %d sites, want %d", s.Len(), c.N())
	}
	if s != a.Clone().Schedule() {
		t.Error("Clone does not share the schedule")
	}
	got := a.PSensitizedAll()
	ref := make([]float64, c.N())
	eng := NewBatch(MustNew(c, sp, Options{}), DefaultBatchWidth)
	sites := make([]netlist.ID, 0, DefaultBatchWidth)
	for lo := 0; lo < c.N(); lo += DefaultBatchWidth {
		hi := min(lo+DefaultBatchWidth, c.N())
		sites = sites[:0]
		for id := lo; id < hi; id++ {
			sites = append(sites, netlist.ID(id))
		}
		eng.PSensitizedBatch(sites, ref[lo:hi])
	}
	for id := range ref {
		if got[id] != ref[id] {
			t.Fatalf("site %d: scheduled sweep %v != ID-ordered sweep %v", id, got[id], ref[id])
		}
	}
	swept, nsites := a.Batch().Counters()
	if nsites != int64(c.N()) || swept <= 0 {
		t.Fatalf("counters = (%d swept, %d sites), want sites == %d", swept, nsites, c.N())
	}
	a.Batch().ResetCounters()
	if sw, si := a.Batch().Counters(); sw != 0 || si != 0 {
		t.Fatalf("ResetCounters left (%d, %d)", sw, si)
	}
}

// TestBatchEpochWraparound forces the uint32 epoch counter through its
// wraparound (epoch++ overflowing to 0 must invalidate all stamps rather
// than treat stale stamps as current) and checks results straddling the
// wrap are unchanged.
func TestBatchEpochWraparound(t *testing.T) {
	c := gen.SmallRandomSequential(3)
	sp := sigprob.Topological(c, sigprob.Config{})
	a := MustNew(c, sp, Options{})
	eng := NewBatch(a, 8)
	want := make([]float64, c.N())
	for id := 0; id < c.N(); id++ {
		want[id] = a.EPP(netlist.ID(id)).PSensitized
	}
	check := func(tag string) {
		t.Helper()
		var out [1]float64
		for id := 0; id < c.N(); id++ {
			eng.PSensitizedBatch([]netlist.ID{netlist.ID(id)}, out[:])
			if d := math.Abs(out[0] - want[id]); d > 1e-12 {
				t.Fatalf("%s: site %d: %v, want %v", tag, id, out[0], want[id])
			}
		}
	}
	check("pre-wrap")
	// Park the engine two increments before overflow: the next run() takes
	// epoch to ^uint32(0), the one after wraps to 0 and must invalidate.
	eng.epoch = ^uint32(0) - 2
	check("straddling wrap")
	if eng.epoch >= ^uint32(0)-2 {
		t.Fatalf("epoch = %d, wraparound branch not exercised", eng.epoch)
	}
	check("post-wrap")
}
