package core

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sigprob"
)

// batchWidths are the lane counts the batched engine is cross-checked at:
// the degenerate scalar-equivalent width, small widths that force many
// partial batches, and the full mask width.
var batchWidths = []int{1, 4, 8, 64}

// TestBatchMatchesScalar is the batched engine's conformance suite: on
// random generated circuits, for every rule set and every batch width, the
// batched P_sensitized of every site must match the scalar Analyzer (the
// executable specification) to ≤ 1e-12, and the per-output states must
// match to the same tolerance. The only legitimate divergence between the
// two engines is floating-point product order when folding per-output miss
// probabilities, which is far below this bound.
func TestBatchMatchesScalar(t *testing.T) {
	rules := []RuleSet{RulesClosedForm, RulesPairwise, RulesNoPolarity}
	for seed := uint64(0); seed < 6; seed++ {
		c := gen.SmallRandomSequential(seed + 40)
		sp := sigprob.Topological(c, sigprob.Config{})
		for _, rs := range rules {
			scalar := MustNew(c, sp, Options{Rules: rs})
			want := make([]Result, c.N())
			for id := 0; id < c.N(); id++ {
				want[id] = scalar.EPP(netlist.ID(id))
			}
			for _, width := range batchWidths {
				eng := NewBatch(MustNew(c, sp, Options{Rules: rs}), width)
				got := make([]Result, c.N())
				sites := make([]netlist.ID, 0, width)
				for lo := 0; lo < c.N(); lo += width {
					hi := lo + width
					if hi > c.N() {
						hi = c.N()
					}
					sites = sites[:0]
					for id := lo; id < hi; id++ {
						sites = append(sites, netlist.ID(id))
					}
					eng.EPPBatch(sites, got[lo:hi])
				}
				for id := 0; id < c.N(); id++ {
					g, w := got[id], want[id]
					if d := math.Abs(g.PSensitized - w.PSensitized); d > 1e-12 {
						t.Fatalf("seed %d rules %v width %d site %d: batched %v, scalar %v (|d| = %g)",
							seed, rs, width, id, g.PSensitized, w.PSensitized, d)
					}
					if g.ConeSize != w.ConeSize {
						t.Fatalf("seed %d rules %v width %d site %d: cone size %d, scalar %d",
							seed, rs, width, id, g.ConeSize, w.ConeSize)
					}
					if len(g.Outputs) != len(w.Outputs) {
						t.Fatalf("seed %d rules %v width %d site %d: %d outputs, scalar %d",
							seed, rs, width, id, len(g.Outputs), len(w.Outputs))
					}
					// Both engines emit outputs in a valid topological
					// order, but within-level tie-breaking differs (single-
					// root vs multi-root DFS discovery), so match by node.
					wantState := make(map[netlist.ID]logic.Prob4, len(w.Outputs))
					for _, o := range w.Outputs {
						wantState[o.Output] = o.State
					}
					for i, o := range g.Outputs {
						ws, ok := wantState[o.Output]
						if !ok {
							t.Fatalf("seed %d rules %v width %d site %d output %d: node %d not in scalar outputs",
								seed, rs, width, id, i, o.Output)
						}
						for s := range o.State {
							if d := o.State[s] - ws[s]; math.Abs(d) > 1e-12 {
								t.Fatalf("seed %d rules %v width %d site %d output node %d: state %v, scalar %v",
									seed, rs, width, id, o.Output, o.State, ws)
							}
						}
					}
				}
			}
		}
	}
}

// TestBatchPSensitizedMatchesEPPBatch: the allocation-free P_sensitized
// entry point and the full-result entry point must agree exactly.
func TestBatchPSensitizedMatchesEPPBatch(t *testing.T) {
	c := gen.SmallRandomSequential(99)
	sp := sigprob.Topological(c, sigprob.Config{})
	a := MustNew(c, sp, Options{})
	all := a.PSensitizedAll()
	res := a.AllSites()
	for id := 0; id < c.N(); id++ {
		if all[id] != res[id].PSensitized {
			t.Fatalf("site %d: PSensitizedAll %v, AllSites %v", id, all[id], res[id].PSensitized)
		}
	}
}

// TestBatchPartialAndRepeatedBatches: a batch narrower than the width, and
// re-use of one engine across many batches, must not leak state between
// passes (epoch/stamp discipline).
func TestBatchPartialAndRepeatedBatches(t *testing.T) {
	c := gen.SmallRandomSequential(7)
	sp := sigprob.Topological(c, sigprob.Config{})
	a := MustNew(c, sp, Options{})
	eng := NewBatch(a, 8)
	want := make([]float64, c.N())
	for id := 0; id < c.N(); id++ {
		want[id] = a.EPP(netlist.ID(id)).PSensitized
	}
	// Singleton batches through a width-8 engine, twice over (stale seeds
	// and masks from previous passes must be invisible).
	for pass := 0; pass < 2; pass++ {
		var out [1]float64
		for id := 0; id < c.N(); id++ {
			eng.PSensitizedBatch([]netlist.ID{netlist.ID(id)}, out[:])
			if d := math.Abs(out[0] - want[id]); d > 1e-12 {
				t.Fatalf("pass %d site %d: batched %v, scalar %v", pass, id, out[0], want[id])
			}
		}
	}
}

// TestBatchWidthClamp: constructor clamps out-of-range widths.
func TestBatchWidthClamp(t *testing.T) {
	c := gen.SmallRandomSequential(1)
	sp := sigprob.Topological(c, sigprob.Config{})
	a := MustNew(c, sp, Options{})
	if w := NewBatch(a, 0).Width(); w != 1 {
		t.Errorf("width 0 clamped to %d, want 1", w)
	}
	if w := NewBatch(a, 1000).Width(); w != MaxBatchWidth {
		t.Errorf("width 1000 clamped to %d, want %d", w, MaxBatchWidth)
	}
}
