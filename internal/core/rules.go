// Gate propagation rules: the paper's closed-form Table 1 formulas, the
// exhaustive pairwise symbol-table fold (an executable specification with
// identical results), and the no-polarity ablation — selected by
// Options.Rules and shared by the scalar and batched analyzers.

package core

import (
	"fmt"

	"repro/internal/logic"
)

// closedForm implements the paper's Table 1 EPP calculation rules for
// elementary gates, generalized in the obvious dual way to NAND/NOR/BUF, and
// falling back to the pairwise symbol fold for XOR/XNOR (which Table 1 does
// not cover).
//
// AND:  P1(out) = ∏ P1(Xi)
//
//	Pa(out) = ∏ [P1(Xi)+Pa(Xi)] − P1(out)
//	Pā(out) = ∏ [P1(Xi)+Pā(Xi)] − P1(out)
//	P0(out) = 1 − (P1+Pa+Pā)(out)
//
// OR:   dual with the roles of 0 and 1 exchanged.
// NOT:  P1↔P0, Pa↔Pā.
func closedForm(k logic.Kind, ins []logic.Prob4) logic.Prob4 {
	switch k {
	case logic.Buf:
		return ins[0]
	case logic.Not:
		return ins[0].Invert()
	case logic.And:
		return andRule(ins)
	case logic.Nand:
		return andRule(ins).Invert()
	case logic.Or:
		return orRule(ins)
	case logic.Nor:
		return orRule(ins).Invert()
	case logic.Xor, logic.Xnor:
		return logic.CombineN(k, ins)
	case logic.Const0:
		return logic.FromSP(0)
	case logic.Const1:
		return logic.FromSP(1)
	}
	panic(fmt.Sprintf("core: closedForm on kind %v", k))
}

// andRule is the AND row of Table 1. The subtractions can produce tiny
// negative round-off; snap it to zero inline (a full Clamp costs ~20% of the
// whole sweep on the hot path).
func andRule(ins []logic.Prob4) logic.Prob4 {
	p1, pa, pab := 1.0, 1.0, 1.0
	for i := range ins {
		p1 *= ins[i][logic.SymOne]
		pa *= ins[i][logic.SymOne] + ins[i][logic.SymA]
		pab *= ins[i][logic.SymOne] + ins[i][logic.SymABar]
	}
	pa -= p1
	pab -= p1
	if pa < 0 {
		pa = 0
	}
	if pab < 0 {
		pab = 0
	}
	p0 := 1 - (p1 + pa + pab)
	if p0 < 0 {
		p0 = 0
	}
	return logic.Prob4{logic.SymA: pa, logic.SymABar: pab, logic.SymZero: p0, logic.SymOne: p1}
}

// orRule is the OR row of Table 1 (the dual of andRule).
func orRule(ins []logic.Prob4) logic.Prob4 {
	p0, pa, pab := 1.0, 1.0, 1.0
	for i := range ins {
		p0 *= ins[i][logic.SymZero]
		pa *= ins[i][logic.SymZero] + ins[i][logic.SymA]
		pab *= ins[i][logic.SymZero] + ins[i][logic.SymABar]
	}
	pa -= p0
	pab -= p0
	if pa < 0 {
		pa = 0
	}
	if pab < 0 {
		pab = 0
	}
	p1 := 1 - (p0 + pa + pab)
	if p1 < 0 {
		p1 = 0
	}
	return logic.Prob4{logic.SymA: pa, logic.SymABar: pab, logic.SymZero: p0, logic.SymOne: p1}
}
