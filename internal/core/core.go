// Package core implements the paper's primary contribution: analytical
// computation of the error propagation probability (EPP) from any error site
// to all reachable outputs in a single topological sweep, using four-valued
// probability states with error-polarity tracking (Asadi & Tahoori,
// "An Accurate SER Estimation Method Based on Propagation Probability",
// DATE 2005, §2).
//
// For an error site n the analysis follows the paper's three steps:
//
//  1. Path construction — extract all on-path signals (forward DFS from n,
//     stopping at flip-flop boundaries).
//  2. Ordering — visit the on-path gates in combinational topological order.
//  3. EPP computation — propagate the (Pa, Pā, P0, P1) state through each
//     on-path gate using the Table 1 rules, reading plain signal
//     probabilities for off-path fanins.
//
// P_sensitized(n) = 1 − ∏_j (1 − (Pa(POj) + Pā(POj))) over reachable outputs.
//
// Two engines implement the analysis. Analyzer.EPP is the scalar reference:
// one site, one cone, one sweep — the executable specification of the
// paper's method. BatchAnalyzer is the production kernel behind AllSites,
// PSensitizedAll and AllSitesParallel: it sweeps up to MaxBatchWidth sites
// at once over the union of their cones, tracking per-node on-path lane
// membership in a uint64 mask and storing the four-valued states
// struct-of-arrays, which amortizes cone extraction, adjacency loads and
// rule dispatch across the batch (~5× on the large ISCAS'89 profiles). Both
// engines read the netlist through the CSR adjacency arrays
// (netlist.Circuit.FaninCSR/FanoutCSR) and fold the per-output miss product
// in canonical ascending output-ID order, so a site's P_sensitized is a
// pure function of its cone's dataflow graph, signal probabilities and
// observation points — never of sweep scheduling or combinational levels.
//
// The batched engine is additionally packing-invariant: a site's result is
// bit-identical no matter which sites share its batch, in what order, at
// what width. Lane arithmetic never reads companion lanes. The AllSites
// entry points exploit this by packing batches from the cone-locality site
// schedule (internal/sched) — lanes in one batch share most of their union
// cone — while remaining bit-equal to any other packing; callers driving
// PSensitizedBatch/EPPBatch directly may order sites freely.
package core

import (
	"fmt"
	"slices"

	"repro/internal/graph"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sched"
)

// RuleSet selects the gate-rule implementation used by the sweep.
type RuleSet int

const (
	// RulesClosedForm uses the paper's Table 1 product formulas for
	// AND/OR/NAND/NOR/NOT/BUF and the pairwise fold for XOR/XNOR. This is
	// the default and fastest implementation.
	RulesClosedForm RuleSet = iota
	// RulesPairwise folds every n-ary gate two inputs at a time through the
	// exhaustive 4×4 symbol table. Equivalent results (an ablation target),
	// useful as an executable specification.
	RulesPairwise
	// RulesNoPolarity is the ablation of the paper's key idea: after every
	// gate the a̅ mass is folded into a, i.e. all reconvergent error paths
	// are assumed to meet with an even inversion-count difference. Exact on
	// fanout-free circuits, wrong wherever opposite-polarity paths
	// reconverge (see TestPolarityAblation). Exists to quantify what the
	// four-valued polarity tracking buys.
	RulesNoPolarity
)

// String names the rule set.
func (r RuleSet) String() string {
	switch r {
	case RulesClosedForm:
		return "closed-form"
	case RulesPairwise:
		return "pairwise"
	case RulesNoPolarity:
		return "no-polarity"
	}
	return fmt.Sprintf("RuleSet(%d)", int(r))
}

// Options configure an Analyzer.
type Options struct {
	// Rules selects the propagation rule implementation.
	Rules RuleSet
	// BatchWidth sets the lane count of the batched engine behind the
	// AllSites/PSensitizedAll entry points: how many error sites share one
	// union-cone sweep. 0 means DefaultBatchWidth; values are clamped to
	// [1, MaxBatchWidth]. Width 1 degenerates to per-site sweeps (useful
	// for debugging); widths beyond ~8 mostly trade memory for diminishing
	// amortization returns.
	BatchWidth int
}

// OutputEPP records the four-valued state reaching one observation point.
type OutputEPP struct {
	Output netlist.ID
	State  logic.Prob4
}

// Result is the EPP analysis of one error site.
type Result struct {
	Site netlist.ID
	// PSensitized is the probability that the erroneous value is propagated
	// to at least one reachable output (PO or FF D input).
	PSensitized float64
	// Outputs lists the reachable observation points with their final
	// states, in topological order.
	Outputs []OutputEPP
	// ConeSize is the number of on-path signals traversed.
	ConeSize int
}

// Analyzer computes EPP over a fixed circuit and a fixed off-path signal
// probability assignment. It keeps reusable epoch-stamped scratch so a full
// all-nodes analysis performs no per-site allocation beyond results. An
// Analyzer is not safe for concurrent use; Clone one per goroutine.
type Analyzer struct {
	c      *netlist.Circuit
	sp     []float64 // off-path signal probability per node
	opt    Options
	walker *graph.Walker
	state  []logic.Prob4 // on-path state, valid where stamp == epoch
	stamp  []uint32
	epoch  uint32
	ins    []logic.Prob4 // fanin gather scratch
	obs    []netlist.ID  // output-ID sort scratch for the miss-product fold

	// CSR adjacency views cached from the circuit (shared, read-only).
	fiIdx []int32
	fiArr []netlist.ID
	kinds []logic.Kind

	batch *BatchAnalyzer  // lazily created engine behind the AllSites entry points
	order *sched.Schedule // lazily computed cone-locality site schedule
}

// New returns an Analyzer for circuit c using the given signal probabilities
// (indexed by node ID; typically from sigprob.Topological or
// sigprob.MonteCarlo). The slice is read, not copied; it must not be
// modified while the Analyzer is in use.
func New(c *netlist.Circuit, sp []float64, opt Options) (*Analyzer, error) {
	if len(sp) != c.N() {
		return nil, fmt.Errorf("core: signal probability vector has %d entries for %d nodes", len(sp), c.N())
	}
	for i, p := range sp {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("core: signal probability of node %q is %v, outside [0,1]", c.NameOf(netlist.ID(i)), p)
		}
	}
	a := &Analyzer{
		c:      c,
		sp:     sp,
		opt:    opt,
		walker: graph.NewWalker(c),
		state:  make([]logic.Prob4, c.N()),
		stamp:  make([]uint32, c.N()),
		ins:    make([]logic.Prob4, 0, 8),
		kinds:  c.Kinds(),
	}
	a.fiIdx, a.fiArr = c.FaninCSR()
	return a, nil
}

// MustNew is New for known-good arguments; it panics on error. Intended for
// examples and tests.
func MustNew(c *netlist.Circuit, sp []float64, opt Options) *Analyzer {
	a, err := New(c, sp, opt)
	if err != nil {
		panic(err)
	}
	return a
}

// Clone returns an independent Analyzer sharing the circuit and signal
// probabilities, for concurrent use from another goroutine. The clone also
// shares the (immutable) site schedule, so worker fleets do not recompute
// it.
func (a *Analyzer) Clone() *Analyzer {
	cp, err := New(a.c, a.sp, a.opt)
	if err != nil {
		panic("core: Clone: " + err.Error())
	}
	cp.order = a.order
	return cp
}

// Schedule returns the cone-locality site schedule the AllSites entry
// points sweep in (computed lazily, cached, shared with Clones). Callers
// running their own PSensitizedBatch/EPPBatch loops over all sites should
// pack batches from Schedule().Order for the same locality win; any packing
// produces bit-identical results.
func (a *Analyzer) Schedule() *sched.Schedule {
	if a.order == nil {
		a.order = sched.ConeLocality(a.c)
	}
	return a.order
}

// Circuit returns the analyzed circuit.
func (a *Analyzer) Circuit() *netlist.Circuit { return a.c }

// SignalProb returns the off-path signal probability of node id.
func (a *Analyzer) SignalProb(id netlist.ID) float64 { return a.sp[id] }

// EPP runs the three-step analysis for one error site and returns the
// per-output states and P_sensitized.
func (a *Analyzer) EPP(site netlist.ID) Result {
	if site < 0 || int(site) >= a.c.N() {
		panic(fmt.Sprintf("core: EPP: invalid site %d", site))
	}
	cone := a.walker.ForwardCone(site)
	a.sweep(&cone)

	res := Result{Site: site, ConeSize: cone.Size()}
	if len(cone.Outputs) > 0 {
		res.Outputs = make([]OutputEPP, len(cone.Outputs))
	}
	for i, out := range cone.Outputs {
		res.Outputs[i] = OutputEPP{Output: out, State: a.state[out]}
	}
	// Fold the per-output miss product in ascending output-ID order — the
	// same canonical order as the batched engine — so the result depends
	// only on the set of reachable outputs and their states, not on the
	// sweep's level ordering (see BatchAnalyzer.run).
	a.obs = append(a.obs[:0], cone.Outputs...)
	slices.Sort(a.obs)
	missAll := 1.0
	for _, out := range a.obs {
		missAll *= 1 - a.state[out].PErr()
	}
	res.PSensitized = 1 - missAll
	if len(cone.Outputs) == 0 {
		res.PSensitized = 0 // error site reaches no latching point
	}
	return res
}

// sweep performs step 3: one pass over the cone in topological order.
func (a *Analyzer) sweep(cone *graph.Cone) {
	a.epoch++
	if a.epoch == 0 { // uint32 wraparound: invalidate all stamps
		for i := range a.stamp {
			a.stamp[i] = 0
		}
		a.epoch = 1
	}
	a.state[cone.Root] = logic.ErrorSite()
	a.stamp[cone.Root] = a.epoch

	for _, id := range cone.Members[1:] {
		kind := a.kinds[id]
		a.ins = a.ins[:0]
		for _, f := range a.fiArr[a.fiIdx[id]:a.fiIdx[id+1]] {
			if a.stamp[f] == a.epoch {
				a.ins = append(a.ins, a.state[f]) // on-path fanin
			} else {
				a.ins = append(a.ins, logic.FromSP(a.sp[f])) // off-path fanin
			}
		}
		var st logic.Prob4
		if a.opt.Rules == RulesPairwise {
			st = logic.CombineN(kind, a.ins)
		} else {
			st = closedForm(kind, a.ins)
		}
		if a.opt.Rules == RulesNoPolarity {
			st[logic.SymA] += st[logic.SymABar]
			st[logic.SymABar] = 0
		}
		a.state[id] = st
		a.stamp[id] = a.epoch
	}
}

// StateOf returns the four-valued state computed for node id by the most
// recent EPP call, and whether the node was on-path in that analysis.
func (a *Analyzer) StateOf(id netlist.ID) (logic.Prob4, bool) {
	if a.stamp[id] != a.epoch || a.epoch == 0 {
		return logic.Prob4{}, false
	}
	return a.state[id], true
}
