package core

import (
	"math"
	"testing"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/sigprob"
)

// TestPolarityAblationCrispCase: the circuit where polarity tracking is the
// difference between the right and the wrong answer.
//
//	n = NOT(a); x = XOR(a, n); y = AND(x, a)
//
// x is constant 1 (so y follows a and a flip at a always propagates,
// P_sensitized = 1). Full polarity rules reach x as a ⊕ a̅ = 1 and get 1;
// the no-polarity ablation sees a ⊕ a = 0 at x, kills the side input of the
// AND, and reports 0.
func TestPolarityAblationCrispCase(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
OUTPUT(y)
n = NOT(a)
x = XOR(a, n)
y = AND(x, a)
`)
	truth, err := exact.PSensitized(c, c.ByName("a"))
	if err != nil {
		t.Fatal(err)
	}
	if truth != 1 {
		t.Fatalf("ground truth = %v, want 1", truth)
	}
	sp := sigprob.Topological(c, sigprob.Config{})

	full := MustNew(c, sp, Options{Rules: RulesClosedForm})
	if got := full.EPP(c.ByName("a")).PSensitized; got != 1 {
		t.Errorf("polarity-tracking rules: %v, want 1", got)
	}

	blind := MustNew(c, sp, Options{Rules: RulesNoPolarity})
	if got := blind.EPP(c.ByName("a")).PSensitized; got != 0 {
		t.Errorf("no-polarity ablation: %v, want 0 (the documented failure)", got)
	}
}

// TestNoPolarityExactOnTrees: with no reconvergence there is nothing for
// polarity tracking to disambiguate, so the ablation stays exact — the
// degradation is specifically a reconvergence effect.
func TestNoPolarityExactOnTrees(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		c := gen.TreeRandom(seed + 700)
		sp, err := exact.SignalProb(c)
		if err != nil {
			t.Fatal(err)
		}
		a := MustNew(c, sp, Options{Rules: RulesNoPolarity})
		for id := 0; id < c.N(); id++ {
			got := a.EPP(netlist.ID(id)).PSensitized
			want, err := exact.PSensitized(c, netlist.ID(id))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("seed %d site %d: no-polarity %v, exact %v (trees must be exact)",
					seed, id, got, want)
			}
		}
	}
}

// TestPolarityAblationAggregate: on random reconvergent circuits the
// polarity-tracking rules are at least as accurate in aggregate as the
// ablation, quantifying the paper's central claim.
func TestPolarityAblationAggregate(t *testing.T) {
	maeFull, maeBlind := 0.0, 0.0
	sites := 0
	for seed := uint64(0); seed < 10; seed++ {
		c := gen.SmallRandom(seed + 900)
		sp, err := exact.SignalProb(c)
		if err != nil {
			t.Fatal(err)
		}
		full := MustNew(c, sp, Options{Rules: RulesClosedForm})
		blind := MustNew(c, sp, Options{Rules: RulesNoPolarity})
		for id := 0; id < c.N(); id++ {
			truth, err := exact.PSensitized(c, netlist.ID(id))
			if err != nil {
				t.Fatal(err)
			}
			maeFull += math.Abs(full.EPP(netlist.ID(id)).PSensitized - truth)
			maeBlind += math.Abs(blind.EPP(netlist.ID(id)).PSensitized - truth)
			sites++
		}
	}
	maeFull /= float64(sites)
	maeBlind /= float64(sites)
	t.Logf("polarity ablation over %d sites: MAE full=%.4f, no-polarity=%.4f", sites, maeFull, maeBlind)
	if maeFull > maeBlind+1e-9 {
		t.Errorf("polarity tracking made aggregate accuracy worse: %v vs %v", maeFull, maeBlind)
	}
}

// TestNoPolarityStatesStillNormalized: the ablation still produces valid
// distributions.
func TestNoPolarityStatesStillNormalized(t *testing.T) {
	c := gen.SmallRandomSequential(42)
	sp := sigprob.Topological(c, sigprob.Config{})
	a := MustNew(c, sp, Options{Rules: RulesNoPolarity})
	for id := 0; id < c.N(); id++ {
		for _, o := range a.EPP(netlist.ID(id)).Outputs {
			if !o.State.Valid(1e-9) {
				t.Fatalf("site %d: invalid state %v", id, o.State)
			}
			if o.State.PABar() != 0 {
				t.Fatalf("site %d: ablation leaked a̅ mass: %v", id, o.State)
			}
		}
	}
}
