package core_test

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/sigprob"
)

// ExampleAnalyzer_EPP reproduces the paper's Figure 1 calculation.
func ExampleAnalyzer_EPP() {
	c, err := bench.ParseString(`
INPUT(A)
INPUT(B)
INPUT(C)
INPUT(F)
OUTPUT(H)
E = NOT(A)
G = AND(E, F)
D = AND(A, B)
H = OR(C, D, G)
`)
	if err != nil {
		log.Fatal(err)
	}
	prob := make([]float64, c.N())
	prob[c.ByName("A")] = 0.5
	prob[c.ByName("B")] = 0.2
	prob[c.ByName("C")] = 0.3
	prob[c.ByName("F")] = 0.7
	sp := sigprob.Topological(c, sigprob.Config{SourceProb: prob})

	an, err := core.New(c, sp, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res := an.EPP(c.ByName("A"))
	state, _ := an.StateOf(c.ByName("H"))
	fmt.Printf("P(H) = %v\n", state)
	fmt.Printf("P_sensitized(A) = %.3f\n", res.PSensitized)
	// Output:
	// P(H) = 0.042(a) + 0.392(a̅) + 0.168(0) + 0.398(1)
	// P_sensitized(A) = 0.434
}
