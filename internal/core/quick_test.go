package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sigprob"
)

// TestQuickPSensitizedBounds: for arbitrary generated circuits and sites,
// P_sensitized is a probability and zero exactly when no output is
// reachable.
func TestQuickPSensitizedBounds(t *testing.T) {
	f := func(rawSeed uint16, rawSite uint16) bool {
		c := gen.SmallRandomSequential(uint64(rawSeed))
		sp := sigprob.Topological(c, sigprob.Config{})
		a := MustNew(c, sp, Options{})
		site := netlist.ID(int(rawSite) % c.N())
		res := a.EPP(site)
		if res.PSensitized < 0 || res.PSensitized > 1+1e-12 {
			return false
		}
		if len(res.Outputs) == 0 && res.PSensitized != 0 {
			return false
		}
		if len(res.Outputs) > 0 {
			// P_sensitized >= max per-output PErr (union bound lower edge).
			maxOut := 0.0
			for _, o := range res.Outputs {
				if p := o.State.PErr(); p > maxOut {
					maxOut = p
				}
			}
			if res.PSensitized < maxOut-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickObservedSiteCertain: any observation point, used as its own error
// site, is sensitized with probability exactly 1.
func TestQuickObservedSiteCertain(t *testing.T) {
	f := func(rawSeed uint16) bool {
		c := gen.SmallRandomSequential(uint64(rawSeed) + 1000)
		sp := sigprob.Topological(c, sigprob.Config{})
		a := MustNew(c, sp, Options{})
		for _, obs := range c.Observed() {
			if a.EPP(obs).PSensitized != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickSPMonotoneInErrorMass: scaling every off-path SP toward 0.5
// keeps results valid distributions (numerical robustness under arbitrary
// SP vectors).
func TestQuickValidUnderArbitrarySP(t *testing.T) {
	f := func(rawSeed uint16, rawBias uint8) bool {
		c := gen.SmallRandom(uint64(rawSeed) + 2000)
		bias := float64(rawBias) / 255 // arbitrary uniform source bias
		prob := make([]float64, c.N())
		for i := range prob {
			prob[i] = bias
		}
		sp := sigprob.Topological(c, sigprob.Config{SourceProb: prob})
		a := MustNew(c, sp, Options{})
		for id := 0; id < c.N(); id += 3 {
			res := a.EPP(netlist.ID(id))
			if math.IsNaN(res.PSensitized) || res.PSensitized < -1e-12 || res.PSensitized > 1+1e-12 {
				return false
			}
			for _, o := range res.Outputs {
				if !o.State.Valid(1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickBufferChainInvariance: inserting a buffer chain between the site
// and the rest of the circuit never changes P_sensitized.
func TestQuickBufferChainInvariance(t *testing.T) {
	f := func(rawLen uint8) bool {
		chainLen := int(rawLen%5) + 1
		b := netlist.NewBuilder("chain")
		a := b.Input("a")
		x := b.Input("x")
		cur := b.And("g", a, x)
		for i := 0; i < chainLen; i++ {
			cur = b.Buf("buf"+string(rune('0'+i)), cur)
		}
		b.MarkOutput(cur)
		c, err := b.Build()
		if err != nil {
			return false
		}
		sp := sigprob.Topological(c, sigprob.Config{})
		an := MustNew(c, sp, Options{})
		// P_sensitized(a) = P(x=1) = 0.5 regardless of chain length.
		return math.Abs(an.EPP(c.ByName("a")).PSensitized-0.5) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestQuickInversionParity: through a NOT chain of length k, the error
// arrives with polarity a (k even) or a̅ (k odd) — quick-checked over chain
// lengths.
func TestQuickInversionParity(t *testing.T) {
	f := func(rawLen uint8) bool {
		k := int(rawLen%8) + 1
		b := netlist.NewBuilder("inv")
		cur := b.Input("a")
		for i := 0; i < k; i++ {
			cur = b.Not("n"+string(rune('0'+i)), cur)
		}
		b.MarkOutput(cur)
		c, err := b.Build()
		if err != nil {
			return false
		}
		sp := sigprob.Topological(c, sigprob.Config{})
		an := MustNew(c, sp, Options{})
		an.EPP(c.ByName("a"))
		st, on := an.StateOf(cur)
		if !on {
			return false
		}
		if k%2 == 0 {
			return st[logic.SymA] == 1
		}
		return st[logic.SymABar] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
