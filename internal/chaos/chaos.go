// Package chaos is a deterministic in-process HTTP chaos proxy: it wraps an
// http.Handler and injects network-shaped faults — dropped connections,
// response delays, stalls, truncated bodies, corrupted bodies, 5xx bursts —
// into a seed-keyed subset of the requests that pass through it.
//
// Determinism is the point. All fault decisions are drawn from one
// splitmix64 stream keyed by Config.Seed and consumed in matched-request
// ordinal order, so a given seed always yields the same fault schedule
// (which ordinals fault, and how). Concurrency can reorder which physical
// request receives which ordinal, but a resilient client must converge to
// the same result under every assignment — that is exactly the property the
// serd chaos acceptance matrix asserts — and Schedule() exports the
// schedule that was actually dealt, so a failing seed can be replayed.
//
// Every fault kind is guaranteed client-detectable: drops and truncations
// surface as transport errors, corruption replaces a span of the body with
// 0x00 bytes (never valid JSON, so a JSON client cannot misparse it as a
// clean response), stalls hold the request until the client's own deadline
// fires, and bursts answer 503. With MaxFaults set, the proxy deals at most
// that many faults and then serves cleanly forever — the knob that makes a
// schedule recoverable by construction for a client with a retry budget.
package chaos

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Kind names one injectable fault.
type Kind string

const (
	// KindDrop slams the connection shut before any response bytes.
	KindDrop Kind = "drop"
	// KindDelay serves the real response after Config.Delay.
	KindDelay Kind = "delay"
	// KindStall never responds; the connection holds until the client's
	// context or deadline gives up.
	KindStall Kind = "stall"
	// KindTruncate sends the real response's headers with the full
	// Content-Length but closes after half the body.
	KindTruncate Kind = "truncate"
	// KindCorrupt serves the real response with a span of the body
	// overwritten by 0x00 bytes (guaranteed-invalid JSON).
	KindCorrupt Kind = "corrupt"
	// KindBurst answers 503 for this and the next 1–3 matched requests.
	KindBurst Kind = "burst"
)

// Kinds lists every fault kind, in the order the acceptance matrix sweeps.
func Kinds() []Kind {
	return []Kind{KindDrop, KindDelay, KindStall, KindTruncate, KindCorrupt, KindBurst}
}

// Fault is one dealt fault: which matched-request ordinal drew it and what
// was injected. The slice of these is the replayable failure schedule.
type Fault struct {
	Ordinal int  `json:"ordinal"` // 0-based matched-request index
	Kind    Kind `json:"kind"`
}

// Config configures a Proxy.
type Config struct {
	// Seed keys the fault schedule (0 = 1). Same seed, same schedule.
	Seed uint64
	// Kinds are the fault kinds the schedule draws from (empty = Kinds()).
	Kinds []Kind
	// Rate is the probability in [0, 1] that a matched request faults.
	Rate float64
	// MaxFaults caps the total faults dealt; once reached the proxy serves
	// cleanly forever (0 = unlimited).
	MaxFaults int
	// Match selects the faultable requests (nil = every request). Health
	// endpoints are typically left unmatched so probes tell the truth.
	Match func(r *http.Request) bool
	// Delay is KindDelay's added latency (0 = 50ms).
	Delay time.Duration
}

// Proxy injects faults into requests passing through to the wrapped
// handler. Create with New; safe for concurrent use.
type Proxy struct {
	inner http.Handler
	cfg   Config

	mu       sync.Mutex
	rng      uint64
	ordinal  int
	burst    int // matched requests still owed a 503 by a dealt burst
	disabled bool
	dealt    []Fault
}

// New wraps inner with a chaos proxy.
func New(inner http.Handler, cfg Config) *Proxy {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if len(cfg.Kinds) == 0 {
		cfg.Kinds = Kinds()
	}
	if cfg.Delay <= 0 {
		cfg.Delay = 50 * time.Millisecond
	}
	return &Proxy{inner: inner, cfg: cfg, rng: cfg.Seed}
}

// next draws the next value of the seeded splitmix64 stream (held lock).
func (p *Proxy) next() uint64 {
	p.rng += 0x9e3779b97f4a7c15
	z := p.rng
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Disable turns the proxy clean from now on (dealt faults stay recorded).
func (p *Proxy) Disable() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.disabled = true
	p.burst = 0
}

// Schedule returns the faults dealt so far, in ordinal order — the replay
// artifact a failing chaos test should log alongside its seed.
func (p *Proxy) Schedule() []Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Fault(nil), p.dealt...)
}

// decide assigns the next matched request its fate: "" for a clean pass.
func (p *Proxy) decide() Kind {
	p.mu.Lock()
	defer p.mu.Unlock()
	ord := p.ordinal
	p.ordinal++
	if p.disabled {
		return ""
	}
	if p.burst > 0 {
		p.burst--
		p.dealt = append(p.dealt, Fault{Ordinal: ord, Kind: KindBurst})
		return KindBurst
	}
	if p.cfg.MaxFaults > 0 && len(p.dealt) >= p.cfg.MaxFaults {
		return ""
	}
	// Two draws per matched request — fault? and which? — so the schedule
	// is a pure function of the seed and the ordinal sequence.
	draw := float64(p.next()>>11) / float64(1<<53)
	pick := p.next()
	if draw >= p.cfg.Rate {
		return ""
	}
	kind := p.cfg.Kinds[pick%uint64(len(p.cfg.Kinds))]
	if kind == KindBurst {
		p.burst = 1 + int(pick>>32)%3 // 1–3 follow-up 503s
	}
	p.dealt = append(p.dealt, Fault{Ordinal: ord, Kind: kind})
	return kind
}

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if p.cfg.Match != nil && !p.cfg.Match(r) {
		p.inner.ServeHTTP(w, r)
		return
	}
	switch p.decide() {
	case KindDrop:
		hijackClose(w, nil, 0)
	case KindDelay:
		t := time.NewTimer(p.cfg.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-r.Context().Done():
			return
		}
		p.inner.ServeHTTP(w, r)
	case KindStall:
		// Drain the body first: with unread request bytes pending, net/http
		// cannot detect the client abandoning the connection, and the
		// request context would never fire.
		_, _ = io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
		// The client is gone; closing without a response mirrors a worker
		// wedged past its deadline.
		hijackClose(w, nil, 0)
	case KindTruncate:
		rec := record(p.inner, r)
		hijackClose(w, rec, len(rec.body)/2)
	case KindCorrupt:
		rec := record(p.inner, r)
		if n := len(rec.body); n > 2 {
			for i := n / 3; i < n/3+n/4 && i < n; i++ {
				rec.body[i] = 0x00
			}
		}
		rec.replay(w, len(rec.body))
	case KindBurst:
		http.Error(w, "chaos: injected 503", http.StatusServiceUnavailable)
	default:
		p.inner.ServeHTTP(w, r)
	}
}

// recorder captures the inner handler's full response so a fault can
// transform it before anything reaches the wire.
type recorder struct {
	code   int
	header http.Header
	body   []byte
}

func record(h http.Handler, r *http.Request) *recorder {
	rec := &recorder{code: http.StatusOK, header: make(http.Header)}
	h.ServeHTTP(rec, r)
	return rec
}

func (rec *recorder) Header() http.Header { return rec.header }
func (rec *recorder) WriteHeader(code int) {
	rec.code = code
}
func (rec *recorder) Write(b []byte) (int, error) {
	rec.body = append(rec.body, b...)
	return len(b), nil
}

// replay writes the recorded status and headers, then the first n body
// bytes, through the normal ResponseWriter path.
func (rec *recorder) replay(w http.ResponseWriter, n int) {
	for k, vs := range rec.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(rec.code)
	_, _ = w.Write(rec.body[:n])
}

// hijackClose takes over the TCP connection and closes it — immediately
// (rec == nil: a dropped connection) or after writing the recorded response
// with its full Content-Length but only n body bytes (a truncation the
// client must detect as an unexpected EOF, since the advertised length
// never arrives). Falls back to an empty 502 when the server does not
// support hijacking.
func hijackClose(w http.ResponseWriter, rec *recorder, n int) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	conn, buf, err := hj.Hijack()
	if err != nil {
		return
	}
	defer conn.Close()
	if rec == nil {
		return
	}
	ct := rec.header.Get("Content-Type")
	if ct == "" {
		ct = "application/json"
	}
	fmt.Fprintf(buf, "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n",
		rec.code, http.StatusText(rec.code), ct, len(rec.body))
	_, _ = buf.Write(rec.body[:n])
	_ = buf.Flush()
}
