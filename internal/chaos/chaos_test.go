// Unit tests of the chaos proxy itself: the schedule must be a pure
// function of the seed, every fault kind must be client-detectable, and
// MaxFaults must turn the proxy clean after the budget. The end-to-end
// assertion — a resilient coordinator converging to byte-identical results
// under these faults — lives in the serd chaos acceptance matrix.

package chaos

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"
)

// okHandler answers a small fixed JSON document.
func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok","values":[1,2,3,4,5,6,7,8]}`))
	})
}

// runSchedule drives n serial requests through a fresh proxy with the given
// seed and returns the dealt schedule. Errors are expected — faults are the
// point — so responses are only drained, never asserted.
func runSchedule(t *testing.T, seed uint64, n int) []Fault {
	t.Helper()
	p := New(okHandler(), Config{Seed: seed, Rate: 0.5})
	ts := httptest.NewServer(p)
	defer ts.Close()
	client := &http.Client{Timeout: 250 * time.Millisecond}
	for i := 0; i < n; i++ {
		resp, err := client.Get(ts.URL)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	return p.Schedule()
}

func TestScheduleDeterministicPerSeed(t *testing.T) {
	a := runSchedule(t, 7, 40)
	b := runSchedule(t, 7, 40)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("seed 7 dealt no faults in 40 requests at rate 0.5")
	}
	c := runSchedule(t, 8, 40)
	if reflect.DeepEqual(a, c) {
		t.Fatal("seeds 7 and 8 dealt identical schedules")
	}
}

// forceKind builds a proxy that deals exactly kind on every request.
func forceKind(kind Kind, max int) *Proxy {
	return New(okHandler(), Config{Kinds: []Kind{kind}, Rate: 1, MaxFaults: max})
}

func TestEveryKindClientDetectable(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			p := forceKind(kind, 0)
			ts := httptest.NewServer(p)
			defer ts.Close()

			ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
			defer cancel()
			req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
			resp, err := http.DefaultClient.Do(req)
			var body []byte
			if err == nil {
				body, err = io.ReadAll(resp.Body)
				resp.Body.Close()
			}

			switch kind {
			case KindDrop, KindStall, KindTruncate:
				// Transport-level failures: no intact response can exist.
				if err == nil {
					t.Fatalf("%s: client got %d with body %q, wanted a transport error", kind, resp.StatusCode, body)
				}
			case KindDelay:
				if err != nil {
					t.Fatalf("delay: %v", err)
				}
				var doc struct {
					Status string `json:"status"`
				}
				if jerr := json.Unmarshal(body, &doc); jerr != nil || doc.Status != "ok" {
					t.Fatalf("delay: body %q (err %v), wanted the clean response", body, jerr)
				}
			case KindCorrupt:
				if err != nil {
					t.Fatalf("corrupt: %v", err)
				}
				var doc any
				if json.Unmarshal(body, &doc) == nil {
					t.Fatalf("corrupt: body %q still parses as JSON — corruption must be detectable", body)
				}
			case KindBurst:
				if err != nil {
					t.Fatalf("burst: %v", err)
				}
				if resp.StatusCode != http.StatusServiceUnavailable {
					t.Fatalf("burst: HTTP %d, want 503", resp.StatusCode)
				}
			}
			if len(p.Schedule()) == 0 {
				t.Fatalf("%s: no fault recorded in the schedule", kind)
			}
		})
	}
}

func TestDelayAddsLatency(t *testing.T) {
	p := New(okHandler(), Config{Kinds: []Kind{KindDelay}, Rate: 1, MaxFaults: 1, Delay: 80 * time.Millisecond})
	ts := httptest.NewServer(p)
	defer ts.Close()
	start := time.Now()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Fatalf("delayed request returned in %v, want >= 80ms", d)
	}
}

func TestMaxFaultsThenClean(t *testing.T) {
	p := forceKind(KindDrop, 2)
	ts := httptest.NewServer(p)
	defer ts.Close()
	failures := 0
	for i := 0; i < 6; i++ {
		resp, err := http.Get(ts.URL)
		if err != nil {
			failures++
			continue
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if failures != 2 {
		t.Fatalf("%d requests failed, want exactly MaxFaults = 2", failures)
	}
	if got := p.Schedule(); len(got) != 2 {
		t.Fatalf("schedule records %d faults, want 2: %v", len(got), got)
	}
}

func TestDisableAndMatch(t *testing.T) {
	matched := func(r *http.Request) bool { return r.URL.Path == "/faulty" }
	p := New(okHandler(), Config{Kinds: []Kind{KindBurst}, Rate: 1, Match: matched})
	ts := httptest.NewServer(p)
	defer ts.Close()

	// Unmatched path is never faulted even at rate 1.
	resp, err := http.Get(ts.URL + "/clean")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("unmatched path: %v HTTP %v", err, resp)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/faulty")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("matched path: %v %v, want 503", err, resp)
	}
	resp.Body.Close()

	p.Disable()
	resp, err = http.Get(ts.URL + "/faulty")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("disabled proxy: %v %v, want 200", err, resp)
	}
	resp.Body.Close()
}
