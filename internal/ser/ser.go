// Package ser assembles the full soft-error-rate estimate of the paper:
// SER(n) = R_SEU(n) × P_latched(n) × P_sensitized(n) for every circuit node,
// with the expensive P_sensitized term computed by a pluggable backend from
// the engine registry (the paper's EPP method — scalar or batched —, the
// random-simulation baseline, or an exact backend). It also implements the
// paper's stated use-case: identifying the most vulnerable components and
// evaluating selective hardening.
//
// Run is the context-aware pipeline entry point; Stream is its incremental
// sibling that yields one NodeSER at a time. Estimate is the original
// synchronous entry point, retained as a thin wrapper.
package ser

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"math"
	"runtime/debug"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/eco"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/latch"
	"repro/internal/netlist"
	"repro/internal/resume"
	"repro/internal/sigprob"
	"repro/internal/simulate"
)

// Method selects the P_sensitized estimator.
type Method int

const (
	// MethodEPP is the paper's propagation-probability analysis.
	MethodEPP Method = iota
	// MethodMonteCarlo is the random-simulation baseline.
	MethodMonteCarlo
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodEPP:
		return "epp"
	case MethodMonteCarlo:
		return "monte-carlo"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// SPMethod selects the signal probability source feeding the EPP engine.
type SPMethod int

const (
	// SPTopological is the fast Parker–McCluskey sweep.
	SPTopological SPMethod = iota
	// SPMonteCarlo is simulation-based signal probability, the accurate
	// design-flow by-product the paper leverages (its cost is "SPT").
	SPMonteCarlo
)

// String names the signal probability method.
func (m SPMethod) String() string {
	switch m {
	case SPTopological:
		return "topological"
	case SPMonteCarlo:
		return "monte-carlo"
	}
	return fmt.Sprintf("SPMethod(%d)", int(m))
}

// ParseMethod inverts Method.String: it maps the canonical method name
// ("epp", "monte-carlo") back to the Method, so flags, JSON and reports all
// share one vocabulary.
func ParseMethod(s string) (Method, error) {
	for _, m := range []Method{MethodEPP, MethodMonteCarlo} {
		if s == m.String() {
			return m, nil
		}
	}
	return 0, fmt.Errorf("ser: unknown method %q (want %q or %q)", s, MethodEPP, MethodMonteCarlo)
}

// ParseSPMethod inverts SPMethod.String ("topological", "monte-carlo").
func ParseSPMethod(s string) (SPMethod, error) {
	for _, m := range []SPMethod{SPTopological, SPMonteCarlo} {
		if s == m.String() {
			return m, nil
		}
	}
	return 0, fmt.Errorf("ser: unknown signal probability method %q (want %q or %q)", s, SPTopological, SPMonteCarlo)
}

// ParseRuleSet inverts core.RuleSet.String ("closed-form", "pairwise",
// "no-polarity"), so flags and reports share the rule-set vocabulary.
func ParseRuleSet(s string) (core.RuleSet, error) {
	for _, r := range []core.RuleSet{core.RulesClosedForm, core.RulesPairwise, core.RulesNoPolarity} {
		if s == r.String() {
			return r, nil
		}
	}
	return 0, fmt.Errorf("ser: unknown rule set %q (want %q, %q or %q)",
		s, core.RulesClosedForm, core.RulesPairwise, core.RulesNoPolarity)
}

// Config configures an SER estimation run.
type Config struct {
	Method   Method
	SPMethod SPMethod
	// Engine overrides the Method-derived P_sensitized backend with a named
	// engine from the registry ("" = epp-batch for MethodEPP, monte-carlo
	// for MethodMonteCarlo). See engine.Names for the registered set.
	Engine string
	// SP configures signal probability computation (bias, vectors, seed).
	SP sigprob.Config
	// MC configures the sampling engines (MethodMonteCarlo or an explicit
	// sampling Engine): the pipeline consumes its Vectors, Seed and
	// SourceProb fields. The kernel-level fields (SharedVectors, OnWord)
	// are managed by the engine layer — the monte-carlo engine always runs
	// the shared-vector batched kernels and reports progress through
	// Progress — so values set here for them are ignored.
	MC simulate.MCOptions
	// Faults is the R_SEU model; nil is replaced by faults.Default().
	Faults *faults.Model
	// Latch is the P_latched model; nil is replaced by latch.Default().
	//
	// Setting it explicitly does more than swap the static per-node factor:
	// together with Frames > 1 it couples the latching window into the
	// multi-cycle composition (the engine weights each frame's detection
	// contribution by Latch.FrameWeight — the strike-cycle transient races
	// the capture window, re-launched flip-flop values are full-cycle levels
	// with weight 1). The per-node P_latched factor then becomes the
	// electrical-masking residual (latch.Model.ResidualProbabilities), so
	// the timing window is counted exactly once per path — inside
	// P_sensitized — rather than twice. With Latch nil the multi-cycle
	// analysis keeps the uncoupled composition (every detection counted in
	// full) under the default static factor, matching earlier releases.
	Latch *latch.Model
	// Workers bounds parallelism for the P_sensitized sweep (0 = all cores).
	Workers int
	// Frames, when > 1, replaces the single-cycle P_sensitized with the
	// multi-cycle detection probability within Frames clock cycles
	// (primary-output observation only; errors are followed through
	// flip-flops — the sequential extension). Supported by the analytic
	// engines (the internal/seq composition) and the monte-carlo engine
	// (the frame-unrolled simulate.MCSeqBatch kernel); the exact engines
	// reject it. Combine with an explicit Latch model for the
	// latch-window-weighted composition (see Latch).
	Frames int
	// BatchWidth sets the batched EPP engine's lane count (0 = default).
	BatchWidth int
	// Rules selects the EPP engines' gate-rule implementation: the paper's
	// closed-form Table 1 rules (core.RulesClosedForm, default), the
	// pairwise symbol-table fold (core.RulesPairwise, an executable
	// specification with identical results), or the polarity-tracking
	// ablation (core.RulesNoPolarity). Requires an analytic engine and a
	// single-frame analysis.
	Rules core.RuleSet
	// BDDBudget bounds the bdd engine's node count (0 = default).
	BDDBudget int
	// Progress, when non-nil, is called with the number of node units of
	// work finished so far and the total. Site-major engines report after
	// each completed batch; the word-major monte-carlo engine reports after
	// each completed 64-vector word, scaled to node units (its per-site
	// results all finalize together at the last word). done is
	// monotonically nondecreasing, reaches total exactly at completion, and
	// calls never overlap. A resumed run starts reporting at the restored
	// unit count. A panic in the callback aborts the sweep with a
	// *engine.SweepPanicError instead of crashing the process.
	Progress func(done, total int)
	// Timeout, when > 0, bounds the whole run: the pipeline context gets a
	// deadline, enforced by the engines at batch/word granularity. An
	// expired deadline surfaces as a *engine.PartialError wrapping
	// context.DeadlineExceeded (errors.Is-testable) with the finalized unit
	// counts.
	Timeout time.Duration
	// MaxSweepNodes, when > 0, bounds the node units of new P_sensitized
	// work one call may perform; see engine.Request.MaxSweepNodes. A
	// budgeted stop surfaces as a *engine.PartialError wrapping
	// engine.ErrBudget. Combined with CheckpointPath, repeated budgeted
	// calls converge to a complete run.
	MaxSweepNodes int
	// CheckpointPath, when non-empty, makes the P_sensitized sweep
	// crash-safe: progress is committed to this file (atomic temp+rename
	// writes, format documented in internal/resume) and a later run of the
	// same configuration resumes from it, producing a Report byte-identical
	// to an uninterrupted run. The file identifies its request by
	// fingerprint; resuming with a different circuit or configuration is an
	// error. Worker count may differ between the interrupted and resumed
	// runs — results are worker-invariant.
	CheckpointPath string
	// CheckpointInterval is the minimum time between checkpoint writes.
	// <= 0 writes after every committed batch or word — maximally durable
	// and deterministic, at the cost of one small file write per unit.
	CheckpointInterval time.Duration
	// ECO, when non-nil, memoizes per-site P_sensitized results across
	// netlist edits: sites whose observation-cone content hash is already
	// cached are restored bit-identically and skipped, so re-estimating an
	// edited circuit (the rank → harden → re-estimate loop) costs only the
	// touched cones. The Report is byte-identical to an uncached run.
	// Requires a configuration whose per-site values are pure functions of
	// cone content: topological signal probabilities with default (nil)
	// source bias, and no checkpoint (the cache already persists results);
	// Validate rejects anything else — use AttachECO for opportunistic
	// attachment. Stream runs uncached (restored ranges would break its
	// ordered emission). Share one cache across runs (it is safe for
	// concurrent use); see internal/eco for the soundness argument.
	ECO *eco.Cache
	// Stats, when non-nil, accumulates the engine's work counters for the
	// run — swept sites/nodes, sampling words, ECO memo hits. One Stats may
	// be shared across runs (counters are atomic); use a fresh Stats per
	// run to measure a single sweep, e.g. to verify an incremental
	// re-estimate swept only the edited region.
	Stats *engine.Stats
}

// engineName resolves the effective engine: an explicit override wins,
// otherwise the Method picks its canonical backend.
func (cfg *Config) engineName() string {
	if cfg.Engine != "" {
		return cfg.Engine
	}
	if cfg.Method == MethodMonteCarlo {
		return "monte-carlo"
	}
	return "epp-batch"
}

// EngineName resolves the effective P_sensitized backend this configuration
// selects: the explicit Engine override if set, else the Method's canonical
// engine. It does not validate that the engine exists.
func (cfg *Config) EngineName() string { return cfg.engineName() }

// Validate rejects contradictory or out-of-range configurations with
// descriptive errors instead of silently ignoring them. c may be nil when no
// circuit is at hand; per-node slice lengths are then not checked.
func (cfg *Config) Validate(c *netlist.Circuit) error {
	switch cfg.Method {
	case MethodEPP, MethodMonteCarlo:
	default:
		return fmt.Errorf("ser: unknown method %v", cfg.Method)
	}
	switch cfg.SPMethod {
	case SPTopological, SPMonteCarlo:
	default:
		return fmt.Errorf("ser: unknown signal probability method %v", cfg.SPMethod)
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("ser: Workers = %d is negative (0 means all cores)", cfg.Workers)
	}
	if cfg.Frames < 0 {
		return fmt.Errorf("ser: Frames = %d is negative (1 means single-cycle)", cfg.Frames)
	}
	if cfg.BatchWidth < 0 || cfg.BatchWidth > core.MaxBatchWidth {
		return fmt.Errorf("ser: BatchWidth = %d outside [0, %d]", cfg.BatchWidth, core.MaxBatchWidth)
	}
	switch cfg.Rules {
	case core.RulesClosedForm, core.RulesPairwise, core.RulesNoPolarity:
	default:
		return fmt.Errorf("ser: unknown rule set %v", cfg.Rules)
	}
	if cfg.MC.Vectors < 0 {
		return fmt.Errorf("ser: MC.Vectors = %d is negative", cfg.MC.Vectors)
	}
	if cfg.SP.Vectors < 0 {
		return fmt.Errorf("ser: SP.Vectors = %d is negative", cfg.SP.Vectors)
	}
	if cfg.BDDBudget < 0 {
		return fmt.Errorf("ser: BDDBudget = %d is negative", cfg.BDDBudget)
	}
	if cfg.Timeout < 0 {
		return fmt.Errorf("ser: Timeout = %v is negative (0 means no deadline)", cfg.Timeout)
	}
	if cfg.MaxSweepNodes < 0 {
		return fmt.Errorf("ser: MaxSweepNodes = %d is negative (0 means no budget)", cfg.MaxSweepNodes)
	}
	eng, err := engine.Lookup(cfg.engineName())
	if err != nil {
		return err
	}
	if cfg.Method == MethodMonteCarlo && eng.Class() != engine.ClassSampling {
		return fmt.Errorf("ser: engine %q contradicts MethodMonteCarlo (drop the method or pick the monte-carlo engine)", eng.Name())
	}
	if cfg.Frames > 1 && eng.Class() == engine.ClassExact {
		return fmt.Errorf("ser: Frames = %d requires an engine that can follow errors through flip-flops (EPP or monte-carlo); %q cannot", cfg.Frames, eng.Name())
	}
	if cfg.Rules != core.RulesClosedForm {
		if eng.Class() != engine.ClassAnalytic {
			return fmt.Errorf("ser: Rules %v requires an EPP engine; %q does not use propagation rules", cfg.Rules, eng.Name())
		}
		if cfg.Frames > 1 {
			return fmt.Errorf("ser: Rules %v requires a single-frame analysis (the multi-cycle composition is closed-form only)", cfg.Rules)
		}
	}
	// Model cross-checks: an explicit model must be valid up front — for the
	// latch model especially, because with Frames > 1 it also parameterizes
	// the frame composition (the strike-frame capture weight), not just the
	// static per-node factor.
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return err
		}
	}
	if cfg.Latch != nil {
		if err := cfg.Latch.Validate(); err != nil {
			return err
		}
	}
	if err := validBias("SP.SourceProb", cfg.SP.SourceProb, c); err != nil {
		return err
	}
	if err := validBias("MC.SourceProb", cfg.MC.SourceProb, c); err != nil {
		return err
	}
	if cfg.ECO != nil {
		return cfg.ecoEligible()
	}
	return nil
}

// ecoEligible reports whether the configuration may carry an ECO cache:
// the memoization is sound only when each site's P_sensitized value is a
// pure function of its observation-cone content, which requires the default
// topological signal probabilities and unbiased sources (a Monte Carlo SP
// vector or a bias vector is a whole-circuit input that no per-site hash
// covers). A checkpoint is rejected as a conflicting restore source.
func (cfg *Config) ecoEligible() error {
	if cfg.SPMethod != SPTopological {
		return fmt.Errorf("ser: the ECO cache requires topological signal probabilities (SPMethod %v makes SP a whole-circuit input the per-site cone hashes cannot cover)", cfg.SPMethod)
	}
	if cfg.SP.SourceProb != nil || cfg.MC.SourceProb != nil {
		return fmt.Errorf("ser: the ECO cache requires default (nil) source bias (a bias vector is indexed by whole-circuit node IDs, outside the per-site cone hashes)")
	}
	if cfg.CheckpointPath != "" {
		return fmt.Errorf("ser: the ECO cache cannot combine with a checkpoint (pick one restore source; the cache already persists results)")
	}
	return nil
}

// AttachECO attaches the cache to cfg when the configuration is eligible
// (see Config.ECO) and reports whether it did. Use it when the caller — a
// daemon serving arbitrary requests, say — wants incremental re-estimation
// opportunistically rather than as a hard requirement: ineligible
// configurations simply run uncached instead of erroring.
func AttachECO(cfg *Config, cache *eco.Cache) bool {
	if cache == nil || cfg.ECO != nil {
		return cfg.ECO != nil
	}
	if cfg.ecoEligible() != nil {
		return false
	}
	cfg.ECO = cache
	return true
}

// validBias checks a per-source probability vector for range and, when the
// circuit is known, length.
func validBias(field string, bias []float64, c *netlist.Circuit) error {
	if bias == nil {
		return nil
	}
	if c != nil && len(bias) != c.N() {
		return fmt.Errorf("ser: %s has %d entries for %d nodes", field, len(bias), c.N())
	}
	for i, p := range bias {
		if math.IsNaN(p) || p < 0 || p > 1 {
			return fmt.Errorf("ser: %s[%d] = %v outside [0,1]", field, i, p)
		}
	}
	return nil
}

// NodeSER is the per-node soft error rate decomposition. In the
// latch-window-weighted multi-cycle mode (an explicit Latch model with
// Frames > 1) the timing window moves inside PSensitized — weighted per
// detection frame by the engine — and PLatched reports the
// electrical-masking residual instead of the full static factor, keeping
// SERFIT a single-window product either way.
type NodeSER struct {
	ID          netlist.ID
	Name        string
	RateFIT     float64 // R_SEU(n), FIT
	PLatched    float64 // P_latched(n)
	PSensitized float64 // P_sensitized(n)
	SERFIT      float64 // product, FIT
}

// Report is the result of a full-circuit SER estimation.
type Report struct {
	Circuit  string
	Method   Method
	Engine   string    // registry name of the P_sensitized backend used
	Nodes    []NodeSER // indexed by node ID
	TotalFIT float64   // sum over nodes
}

// prepared is the validated, resolved state shared by Run, Stream and
// PSensitized: the engine, its request, and the R_SEU / P_latched models.
type prepared struct {
	eng    engine.Engine
	req    engine.Request
	faults faults.Model
	latch  latch.Model
}

// prepare validates cfg against c, resolves the engine and models, and
// assembles the engine request (computing the signal probability vector for
// analytic engines per cfg.SPMethod).
func prepare(c *netlist.Circuit, cfg *Config) (*prepared, error) {
	if err := cfg.Validate(c); err != nil {
		return nil, err
	}
	p := &prepared{faults: faults.Default(), latch: latch.Default()}
	if cfg.Faults != nil {
		p.faults = *cfg.Faults
	}
	if cfg.Latch != nil {
		p.latch = *cfg.Latch
	}
	if err := p.faults.Validate(); err != nil {
		return nil, err
	}
	if err := p.latch.Validate(); err != nil {
		return nil, err
	}
	eng, err := engine.Lookup(cfg.engineName())
	if err != nil {
		return nil, err
	}
	p.eng = eng
	if eng.Class() == engine.ClassSampling {
		// Normalize so the report names the method actually used even when
		// the engine was selected directly.
		cfg.Method = MethodMonteCarlo
	}
	// The sampling engines draw fault-injection vectors from MC.SourceProb
	// only (matching the original Estimate semantics — an SP-only bias must
	// not leak into the injection vectors); everything else reads the
	// signal-probability bias. WithSourceBias sets both.
	bias := cfg.SP.SourceProb
	if eng.Class() == engine.ClassSampling {
		bias = cfg.MC.SourceProb
	}
	p.req = engine.Request{
		Circuit:    c,
		Bias:       bias,
		Workers:    cfg.Workers,
		BatchWidth: cfg.BatchWidth,
		Frames:     cfg.Frames,
		Rules:      cfg.Rules,
		Vectors:    cfg.MC.Vectors,
		Seed:       cfg.MC.Seed,
		BDDBudget:  cfg.BDDBudget,
	}
	if cfg.Latch != nil {
		// An explicitly chosen latch model couples the latching window into
		// the multi-cycle composition (the engines consult it only when
		// Frames > 1); the default model keeps the uncoupled composition for
		// compatibility. The static per-node factor always applies.
		p.req.Latch = &p.latch
	}
	p.req.MaxSweepNodes = cfg.MaxSweepNodes
	p.req.Stats = cfg.Stats
	if cfg.CheckpointPath != "" {
		p.req.Resume = resume.New(cfg.CheckpointPath, cfg.CheckpointInterval)
	}
	// Validate already vetted eligibility (ecoEligible); the engine enforces
	// its own combination rules (no shard, no resume, nil bias) besides.
	p.req.Memo = cfg.ECO
	if eng.Class() == engine.ClassAnalytic {
		p.req.SP = SignalProbabilities(c, *cfg)
	}
	return p, nil
}

// runEngine invokes the engine's all-sites sweep with the pipeline-level
// deadline applied and a defense-in-depth panic guard: the sweep drivers
// recover worker and callback panics themselves, but a panic on an
// engine's synchronous setup path (kernel construction, say) must equally
// surface as an error rather than crash the caller.
func (p *prepared) runEngine(ctx context.Context, cfg *Config, psens []float64) (err error) {
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			err = &engine.SweepPanicError{Engine: p.eng.Name(), Unit: "sweep", Lo: -1, Hi: -1, Value: r, Stack: debug.Stack()}
		}
	}()
	return p.eng.PSensitizedAll(ctx, &p.req, psens)
}

// platchVector resolves the per-node P_latched factor: the static
// window+attenuation probability normally; the electrical-masking residual
// when the latching window is coupled into the multi-cycle composition —
// the engines then apply the timing window per detection frame, and
// multiplying the static window in again would count it twice on the
// strike path (and wrongly derate full-cycle later-frame detections).
func (p *prepared) platchVector(c *netlist.Circuit) []float64 {
	if p.req.Latch != nil && p.req.Frames > 1 {
		return p.latch.ResidualProbabilities(c)
	}
	return p.latch.Probabilities(c)
}

// nodeSER assembles one node's SER decomposition from the factor vectors.
func nodeSER(c *netlist.Circuit, id netlist.ID, rates, platch, psens []float64) NodeSER {
	n := NodeSER{
		ID:          id,
		Name:        c.NameOf(id),
		RateFIT:     rates[id],
		PLatched:    platch[id],
		PSensitized: psens[id],
	}
	n.SERFIT = n.RateFIT * n.PLatched * n.PSensitized
	return n
}

// assemble builds the Report from a complete P_sensitized vector: the cheap
// deterministic tail of the pipeline — R_SEU and P_latched factors, the
// per-node products, the ID-order total. Shared by Run and by Assemble (the
// coordinator's fold path) so a Report assembled from shard-merged psens
// values is arithmetically identical to one from a local sweep.
func (p *prepared) assemble(c *netlist.Circuit, cfg *Config, psens []float64) *Report {
	n := c.N()
	rates := p.faults.RatesFIT(c)
	platch := p.platchVector(c)
	rep := &Report{Circuit: c.Name, Method: cfg.Method, Engine: p.eng.Name(), Nodes: make([]NodeSER, n)}
	for id := 0; id < n; id++ {
		ns := nodeSER(c, netlist.ID(id), rates, platch, psens)
		rep.Nodes[id] = ns
		rep.TotalFIT += ns.SERFIT
	}
	return rep
}

// Run executes the full pipeline — signal probabilities, per-site
// P_sensitized through the configured engine, R_SEU and P_latched models —
// and returns the assembled report. Cancellation of ctx is honored between
// engine batches and returns ctx.Err().
func Run(ctx context.Context, c *netlist.Circuit, cfg Config) (*Report, error) {
	p, err := prepare(c, &cfg)
	if err != nil {
		return nil, err
	}
	// Progress rides the engine's OnProgress channel: site-major engines
	// report per finalized batch, the word-major monte-carlo engine per
	// completed vector word (its sites all finalize together at the end).
	p.req.OnProgress = cfg.Progress
	psens := make([]float64, c.N())
	if err := p.runEngine(ctx, &cfg, psens); err != nil {
		return nil, err
	}
	return p.assemble(c, &cfg, psens), nil
}

// Assemble builds the Report for cfg from an externally computed complete
// P_sensitized vector — the distributed coordinator's fold path: workers
// return shard slices of the same engine sweep, the coordinator stitches
// them into psens, and because engines guarantee packing invariance and this
// tail is deterministic ID-order arithmetic, the result is byte-identical to
// Run on one machine. psens must have one entry per node.
func Assemble(c *netlist.Circuit, cfg Config, psens []float64) (*Report, error) {
	p, err := prepare(c, &cfg)
	if err != nil {
		return nil, err
	}
	if len(psens) != c.N() {
		return nil, fmt.Errorf("ser: psens has %d entries for %d nodes", len(psens), c.N())
	}
	return p.assemble(c, &cfg, psens), nil
}

// Info identifies a request for caching and distribution without running
// it: the request fingerprint (circuit content plus every result-affecting
// option — see engine.Request.Fingerprint), the resolved engine, its class,
// and the normalized method.
type Info struct {
	Fingerprint string
	Engine      string
	Class       engine.Class
	Method      Method
}

// Describe validates cfg against c and returns the request's identity. Two
// requests with equal fingerprints produce byte-identical Reports, which is
// what makes the fingerprint a sound memoization and shard-commit key. The
// SiteLo/SiteHi shard range is excluded by construction, so a shard
// describes as the full sweep it belongs to.
func Describe(c *netlist.Circuit, cfg Config) (Info, error) {
	p, err := prepare(c, &cfg)
	if err != nil {
		return Info{}, err
	}
	return Info{
		Fingerprint: p.req.Fingerprint(p.eng.Name(), p.req.SP),
		Engine:      p.eng.Name(),
		Class:       p.eng.Class(),
		Method:      cfg.Method,
	}, nil
}

// PSensitizedRange computes P_sensitized for the node-ID shard [lo, hi)
// only — the distributed worker's unit of work — returning the hi−lo shard
// values in ID order. Only site-major engines support ranges; the word-major
// monte-carlo engine rejects them (its shared-good-sim kernel amortizes one
// good simulation across all sites, so site-sharding would duplicate that
// work in every shard — the coordinator runs sampling requests whole
// instead). Concatenating every shard of [0, N) reproduces the full sweep's
// vector bit-identically at any shard partitioning and worker count.
func PSensitizedRange(ctx context.Context, c *netlist.Circuit, cfg Config, lo, hi int) ([]float64, error) {
	p, err := prepare(c, &cfg)
	if err != nil {
		return nil, err
	}
	p.req.SiteLo, p.req.SiteHi = lo, hi
	p.req.OnProgress = cfg.Progress
	out := make([]float64, c.N())
	if err := p.runEngine(ctx, &cfg, out); err != nil {
		return nil, err
	}
	return out[lo:hi], nil
}

// errStreamStopped signals through the engine that the stream consumer
// broke out of the loop; it is never surfaced to callers.
var errStreamStopped = errors.New("ser: stream consumer stopped")

// Stream is the incremental form of Run: it yields one NodeSER per node in
// ID order as each engine batch completes, without materializing a Report —
// the factor vectors aside, memory stays O(batch). Per-site engines sweep
// single-threaded so emission order is deterministic; the sampling engine
// keeps its internal word-level parallelism (its results finalize together
// and emit in order regardless of worker count). On failure or
// cancellation the final yield carries the error (with a zero NodeSER);
// breaking out of the loop stops the sweep after the current batch.
func Stream(ctx context.Context, c *netlist.Circuit, cfg Config) iter.Seq2[NodeSER, error] {
	return func(yield func(NodeSER, error) bool) {
		p, err := prepare(c, &cfg)
		if err != nil {
			yield(NodeSER{}, err)
			return
		}
		n := c.N()
		rates := p.faults.RatesFIT(c)
		platch := p.platchVector(c)
		psens := make([]float64, n)
		// Stream runs uncached: a memo restore replays hit ranges before the
		// complement is swept, which would break the in-ID-order emission
		// contract. Run keeps the cache; Stream trades it for ordering.
		p.req.Memo = nil
		// Ordered emission needs OnBatch ranges to be final node-ID ranges.
		// For the per-site engines that means a serial sweep; the sampling
		// engine keeps its word-level parallelism — it finalizes all sites
		// together and emits ordered tiles at the end regardless of worker
		// count, with bit-identical results.
		p.req.OrderedSweep = true
		if p.eng.Class() != engine.ClassSampling {
			p.req.Workers = 1
		}
		p.req.OnProgress = cfg.Progress
		stopped := false
		p.req.OnBatch = func(lo, hi int) error {
			for id := lo; id < hi; id++ {
				if !yield(nodeSER(c, netlist.ID(id), rates, platch, psens), nil) {
					stopped = true
					return errStreamStopped
				}
			}
			return nil
		}
		if err := p.runEngine(ctx, &cfg, psens); err != nil && !stopped {
			yield(NodeSER{}, err)
		}
	}
}

// Estimate runs the full analysis on circuit c.
//
// Deprecated: Estimate is the original synchronous entry point, kept as a
// thin wrapper over Run with a background context. New code should call Run
// (or Stream) for cancellation, engine selection and progress reporting.
func Estimate(c *netlist.Circuit, cfg Config) (*Report, error) {
	return Run(context.Background(), c, cfg)
}

// PSensitized computes the per-node sensitization probability vector with
// the configured engine (the expensive term; exposed separately for the
// benchmark harness).
func PSensitized(c *netlist.Circuit, cfg Config) ([]float64, error) {
	p, err := prepare(c, &cfg)
	if err != nil {
		return nil, err
	}
	out := make([]float64, c.N())
	if err := p.runEngine(context.Background(), &cfg, out); err != nil {
		return nil, err
	}
	return out, nil
}

// SignalProbabilities computes the configured signal probability vector.
func SignalProbabilities(c *netlist.Circuit, cfg Config) []float64 {
	if cfg.SPMethod == SPMonteCarlo {
		return sigprob.MonteCarlo(c, cfg.SP)
	}
	return sigprob.Topological(c, cfg.SP)
}

// Ranked returns the nodes sorted by SER, most vulnerable first; ties break
// by ID for determinism.
func (r *Report) Ranked() []NodeSER {
	out := append([]NodeSER(nil), r.Nodes...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].SERFIT != out[j].SERFIT {
			return out[i].SERFIT > out[j].SERFIT
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// TopK returns the k most vulnerable nodes (fewer if the circuit is smaller).
func (r *Report) TopK(k int) []NodeSER {
	ranked := r.Ranked()
	if k > len(ranked) {
		k = len(ranked)
	}
	return ranked[:k]
}

// HardeningResult quantifies the effect of protecting a set of nodes.
type HardeningResult struct {
	Protected    []netlist.ID
	BeforeFIT    float64
	AfterFIT     float64
	ReductionPct float64
}

// Harden evaluates the paper's selective-hardening use-case: protect the k
// most vulnerable nodes (e.g. by gate upsizing or local triplication),
// modeled as reducing their R_SEU by the given factor in [0,1] (0 = perfect
// protection), and report the circuit-level SER reduction.
func (r *Report) Harden(k int, residual float64) HardeningResult {
	if residual < 0 {
		residual = 0
	}
	if residual > 1 {
		residual = 1
	}
	top := r.TopK(k)
	res := HardeningResult{BeforeFIT: r.TotalFIT, AfterFIT: r.TotalFIT}
	for _, n := range top {
		res.Protected = append(res.Protected, n.ID)
		res.AfterFIT -= n.SERFIT * (1 - residual)
	}
	if res.BeforeFIT > 0 {
		res.ReductionPct = 100 * (res.BeforeFIT - res.AfterFIT) / res.BeforeFIT
	}
	return res
}
