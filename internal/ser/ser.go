// Package ser assembles the full soft-error-rate estimate of the paper:
// SER(n) = R_SEU(n) × P_latched(n) × P_sensitized(n) for every circuit node,
// with P_sensitized computed either analytically (the paper's EPP method,
// package core) or by random simulation (the baseline, package simulate).
// It also implements the paper's stated use-case: identifying the most
// vulnerable components and evaluating selective hardening.
package ser

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/latch"
	"repro/internal/netlist"
	"repro/internal/seq"
	"repro/internal/sigprob"
	"repro/internal/simulate"
)

// Method selects the P_sensitized estimator.
type Method int

const (
	// MethodEPP is the paper's propagation-probability analysis.
	MethodEPP Method = iota
	// MethodMonteCarlo is the random-simulation baseline.
	MethodMonteCarlo
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodEPP:
		return "epp"
	case MethodMonteCarlo:
		return "monte-carlo"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// SPMethod selects the signal probability source feeding the EPP engine.
type SPMethod int

const (
	// SPTopological is the fast Parker–McCluskey sweep.
	SPTopological SPMethod = iota
	// SPMonteCarlo is simulation-based signal probability, the accurate
	// design-flow by-product the paper leverages (its cost is "SPT").
	SPMonteCarlo
)

// String names the signal probability method.
func (m SPMethod) String() string {
	switch m {
	case SPTopological:
		return "topological"
	case SPMonteCarlo:
		return "monte-carlo"
	}
	return fmt.Sprintf("SPMethod(%d)", int(m))
}

// Config configures an SER estimation run.
type Config struct {
	Method   Method
	SPMethod SPMethod
	// SP configures signal probability computation (bias, vectors, seed).
	SP sigprob.Config
	// MC configures the Monte Carlo P_sensitized baseline (MethodMonteCarlo).
	MC simulate.MCOptions
	// Faults is the R_SEU model; zero value is replaced by faults.Default().
	Faults *faults.Model
	// Latch is the P_latched model; nil is replaced by latch.Default().
	Latch *latch.Model
	// Workers bounds parallelism for the EPP all-nodes sweep (0 = all cores).
	Workers int
	// Frames, when > 1, replaces the single-cycle P_sensitized with the
	// multi-cycle detection probability within Frames clock cycles
	// (primary-output observation only; errors are followed through
	// flip-flops — the sequential extension, MethodEPP only).
	Frames int
}

// NodeSER is the per-node soft error rate decomposition.
type NodeSER struct {
	ID          netlist.ID
	Name        string
	RateFIT     float64 // R_SEU(n), FIT
	PLatched    float64 // P_latched(n)
	PSensitized float64 // P_sensitized(n)
	SERFIT      float64 // product, FIT
}

// Report is the result of a full-circuit SER estimation.
type Report struct {
	Circuit  string
	Method   Method
	Nodes    []NodeSER // indexed by node ID
	TotalFIT float64   // sum over nodes
}

// Estimate runs the full analysis on circuit c.
func Estimate(c *netlist.Circuit, cfg Config) (*Report, error) {
	fm := faults.Default()
	if cfg.Faults != nil {
		fm = *cfg.Faults
	}
	lm := latch.Default()
	if cfg.Latch != nil {
		lm = *cfg.Latch
	}
	if err := fm.Validate(); err != nil {
		return nil, err
	}
	if err := lm.Validate(); err != nil {
		return nil, err
	}

	psens, err := PSensitized(c, cfg)
	if err != nil {
		return nil, err
	}
	rates := fm.RatesFIT(c)
	platch := lm.Probabilities(c)

	rep := &Report{Circuit: c.Name, Method: cfg.Method, Nodes: make([]NodeSER, c.N())}
	for id := 0; id < c.N(); id++ {
		n := NodeSER{
			ID:          netlist.ID(id),
			Name:        c.NameOf(netlist.ID(id)),
			RateFIT:     rates[id],
			PLatched:    platch[id],
			PSensitized: psens[id],
		}
		n.SERFIT = n.RateFIT * n.PLatched * n.PSensitized
		rep.Nodes[id] = n
		rep.TotalFIT += n.SERFIT
	}
	return rep, nil
}

// PSensitized computes the per-node sensitization probability vector with
// the configured method (the expensive term; exposed separately for the
// benchmark harness).
func PSensitized(c *netlist.Circuit, cfg Config) ([]float64, error) {
	switch cfg.Method {
	case MethodEPP:
		sp := SignalProbabilities(c, cfg)
		if cfg.Frames > 1 {
			sa, err := seq.New(c, sp)
			if err != nil {
				return nil, err
			}
			return sa.PDetectAll(cfg.Frames), nil
		}
		an, err := core.New(c, sp, core.Options{})
		if err != nil {
			return nil, err
		}
		if cfg.Workers == 1 {
			return an.PSensitizedAll(), nil
		}
		results := an.AllSitesParallel(cfg.Workers)
		out := make([]float64, c.N())
		for id, r := range results {
			out[id] = r.PSensitized
		}
		return out, nil
	case MethodMonteCarlo:
		mc := simulate.NewMonteCarlo(c, cfg.MC)
		out := make([]float64, c.N())
		for id := 0; id < c.N(); id++ {
			out[id] = mc.EPP(netlist.ID(id)).PSensitized
		}
		return out, nil
	}
	return nil, fmt.Errorf("ser: unknown method %v", cfg.Method)
}

// SignalProbabilities computes the configured signal probability vector.
func SignalProbabilities(c *netlist.Circuit, cfg Config) []float64 {
	if cfg.SPMethod == SPMonteCarlo {
		return sigprob.MonteCarlo(c, cfg.SP)
	}
	return sigprob.Topological(c, cfg.SP)
}

// Ranked returns the nodes sorted by SER, most vulnerable first; ties break
// by ID for determinism.
func (r *Report) Ranked() []NodeSER {
	out := append([]NodeSER(nil), r.Nodes...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].SERFIT != out[j].SERFIT {
			return out[i].SERFIT > out[j].SERFIT
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// TopK returns the k most vulnerable nodes (fewer if the circuit is smaller).
func (r *Report) TopK(k int) []NodeSER {
	ranked := r.Ranked()
	if k > len(ranked) {
		k = len(ranked)
	}
	return ranked[:k]
}

// HardeningResult quantifies the effect of protecting a set of nodes.
type HardeningResult struct {
	Protected    []netlist.ID
	BeforeFIT    float64
	AfterFIT     float64
	ReductionPct float64
}

// Harden evaluates the paper's selective-hardening use-case: protect the k
// most vulnerable nodes (e.g. by gate upsizing or local triplication),
// modeled as reducing their R_SEU by the given factor in [0,1] (0 = perfect
// protection), and report the circuit-level SER reduction.
func (r *Report) Harden(k int, residual float64) HardeningResult {
	if residual < 0 {
		residual = 0
	}
	if residual > 1 {
		residual = 1
	}
	top := r.TopK(k)
	res := HardeningResult{BeforeFIT: r.TotalFIT, AfterFIT: r.TotalFIT}
	for _, n := range top {
		res.Protected = append(res.Protected, n.ID)
		res.AfterFIT -= n.SERFIT * (1 - residual)
	}
	if res.BeforeFIT > 0 {
		res.ReductionPct = 100 * (res.BeforeFIT - res.AfterFIT) / res.BeforeFIT
	}
	return res
}
