package ser

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/seq"
	"repro/internal/sigprob"
	"repro/internal/simulate"
)

func sample(t *testing.T) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(`
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
g1 = AND(a, b)
g2 = OR(g1, c)
y = NOT(g2)
q = DFF(g1)
`)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEstimateEPPBasics(t *testing.T) {
	c := sample(t)
	rep, err := Estimate(c, Config{Method: MethodEPP})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Nodes) != c.N() {
		t.Fatalf("nodes = %d", len(rep.Nodes))
	}
	if rep.TotalFIT <= 0 {
		t.Fatalf("total FIT = %v", rep.TotalFIT)
	}
	// Inputs contribute nothing (R_SEU = 0).
	if rep.Nodes[c.ByName("a")].SERFIT != 0 {
		t.Error("input has nonzero SER")
	}
	// Every gate's SER is the product of its three factors.
	for _, n := range rep.Nodes {
		want := n.RateFIT * n.PLatched * n.PSensitized
		if math.Abs(n.SERFIT-want) > 1e-18 {
			t.Fatalf("node %s: SER %v != product %v", n.Name, n.SERFIT, want)
		}
		if n.PSensitized < 0 || n.PSensitized > 1 || n.PLatched < 0 || n.PLatched > 1 {
			t.Fatalf("node %s: probabilities out of range: %+v", n.Name, n)
		}
	}
}

func TestEPPvsMonteCarloAgree(t *testing.T) {
	c := gen.SmallRandom(11)
	epp, err := Estimate(c, Config{Method: MethodEPP, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := Estimate(c, Config{
		Method: MethodMonteCarlo,
		MC:     simulate.MCOptions{Vectors: 1 << 14, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if epp.TotalFIT <= 0 || mc.TotalFIT <= 0 {
		t.Fatal("degenerate totals")
	}
	rel := math.Abs(epp.TotalFIT-mc.TotalFIT) / mc.TotalFIT
	t.Logf("total SER: EPP %.4g FIT, MC %.4g FIT, rel diff %.3f", epp.TotalFIT, mc.TotalFIT, rel)
	if rel > 0.15 {
		t.Errorf("EPP and MC totals differ by %v (> 15%%)", rel)
	}
}

func TestRankedOrdering(t *testing.T) {
	c := sample(t)
	rep, err := Estimate(c, Config{Method: MethodEPP})
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Ranked()
	for i := 1; i < len(r); i++ {
		if r[i-1].SERFIT < r[i].SERFIT {
			t.Fatalf("ranking not descending at %d", i)
		}
	}
	// TopK truncates.
	if got := rep.TopK(3); len(got) != 3 {
		t.Fatalf("TopK(3) = %d entries", len(got))
	}
	if got := rep.TopK(1000); len(got) != c.N() {
		t.Fatalf("TopK(1000) = %d entries", len(got))
	}
}

func TestHardening(t *testing.T) {
	c := gen.SmallRandom(13)
	rep, err := Estimate(c, Config{Method: MethodEPP, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Perfect protection of everything removes all SER.
	all := rep.Harden(c.N(), 0)
	if math.Abs(all.AfterFIT) > rep.TotalFIT*1e-12 {
		t.Errorf("full hardening leaves %v FIT", all.AfterFIT)
	}
	// Protecting top-5 helps at least as much as top-1.
	h1, h5 := rep.Harden(1, 0), rep.Harden(5, 0)
	if h5.AfterFIT > h1.AfterFIT+1e-15 {
		t.Errorf("protecting more nodes increased SER: %v vs %v", h5.AfterFIT, h1.AfterFIT)
	}
	// Residual softens the benefit.
	hSoft := rep.Harden(5, 0.5)
	if hSoft.AfterFIT < h5.AfterFIT {
		t.Errorf("residual 0.5 cannot beat perfect protection")
	}
	if h5.ReductionPct < 0 || h5.ReductionPct > 100 {
		t.Errorf("reduction = %v%%", h5.ReductionPct)
	}
}

func TestHardenResidualClamped(t *testing.T) {
	c := sample(t)
	rep, err := Estimate(c, Config{Method: MethodEPP})
	if err != nil {
		t.Fatal(err)
	}
	a := rep.Harden(2, -1)
	b := rep.Harden(2, 0)
	if a.AfterFIT != b.AfterFIT {
		t.Error("negative residual not clamped to 0")
	}
	x := rep.Harden(2, 2)
	if x.AfterFIT != rep.TotalFIT {
		t.Error("residual > 1 not clamped to 1 (no-op)")
	}
}

func TestWorkersConsistency(t *testing.T) {
	c := gen.SmallRandom(17)
	serial, err := Estimate(c, Config{Method: MethodEPP, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Estimate(c, Config{Method: MethodEPP, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for id := range serial.Nodes {
		if serial.Nodes[id].SERFIT != parallel.Nodes[id].SERFIT {
			t.Fatalf("node %d: serial %v, parallel %v",
				id, serial.Nodes[id].SERFIT, parallel.Nodes[id].SERFIT)
		}
	}
}

func TestSPMethodAblation(t *testing.T) {
	c := gen.SmallRandom(19)
	topo, err := Estimate(c, Config{Method: MethodEPP, SPMethod: SPTopological, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := Estimate(c, Config{Method: MethodEPP, SPMethod: SPMonteCarlo, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Different SP sources give close but not necessarily equal totals.
	rel := math.Abs(topo.TotalFIT-mc.TotalFIT) / mc.TotalFIT
	if rel > 0.2 {
		t.Errorf("SP ablation diverges: %v vs %v", topo.TotalFIT, mc.TotalFIT)
	}
}

// TestMultiCycleFrames: Frames > 1 follows errors through flip-flops; the
// per-node vector must match the seq analyzer directly, and totals must be
// at least the PO-only single-frame totals.
func TestMultiCycleFrames(t *testing.T) {
	c := gen.MustRandom(gen.Params{Name: "mcf", Seed: 51, PIs: 8, POs: 3, FFs: 8, Gates: 120})
	p4, err := PSensitized(c, Config{Method: MethodEPP, Frames: 4})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := seq.New(c, sigprob.Topological(c, sigprob.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < c.N(); id++ {
		want := sa.PDetect(netlist.ID(id), 4)
		if math.Abs(p4[id]-want) > 1e-12 {
			t.Fatalf("node %d: Frames=4 vector %v, seq %v", id, p4[id], want)
		}
		// Frames=1 (single-cycle P_sensitized) counts FF D inputs as
		// detections, so it can exceed the 4-frame PO-only probability; but
		// the PO-only 1-frame value never exceeds the 4-frame one.
		if sa.PDetect(netlist.ID(id), 1) > p4[id]+1e-12 {
			t.Fatalf("node %d: more frames decreased PO detection", id)
		}
	}
}

func TestMethodStrings(t *testing.T) {
	if MethodEPP.String() != "epp" || MethodMonteCarlo.String() != "monte-carlo" {
		t.Error("Method names changed")
	}
	if SPTopological.String() != "topological" || SPMonteCarlo.String() != "monte-carlo" {
		t.Error("SPMethod names changed")
	}
}

func TestInvalidModelsRejected(t *testing.T) {
	c := sample(t)
	bad := Config{Method: MethodEPP}
	fm := faults.Default()
	fm.FluxPerCm2Hour = -1
	bad.Faults = &fm
	if _, err := Estimate(c, bad); err == nil {
		t.Error("invalid faults model accepted")
	}
}
