package simulate

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// panicMergeWorker is a wordWorker whose merge panics — the regression
// shape for the worker-exit merge deadlock: before the deferred unlock, a
// panic inside merge left the sweep mutex held, so the goroutine's recover
// path (fail, which takes the same mutex) deadlocked the whole sweep
// instead of reporting a *PanicError.
type panicMergeWorker struct {
	words atomic.Int64
}

func (w *panicMergeWorker) runWord(int64)     { w.words.Add(1) }
func (w *panicMergeWorker) merge(t *mcTotals) { panic("merge exploded") }
func (w *panicMergeWorker) reset()            {}

// TestRunWordSweepMergePanicDoesNotDeadlock locks in the fix for a real
// bug found by serlint's deferunlock analyzer: the worker-exit merge (the
// !perWordMerge regime — no commit hook, no progress hook) ran
// mu.Lock(); wk.merge(tot); mu.Unlock(), so a panicking merge escaped
// with the mutex held and the deferred recover's fail() self-deadlocked.
// The sweep must instead return a structured *PanicError promptly.
func TestRunWordSweepMergePanicDoesNotDeadlock(t *testing.T) {
	t.Parallel()
	wk := &panicMergeWorker{}
	cfg := wordSweepCfg{workers: 2, words: 8}
	var tot mcTotals
	done := make(chan error, 1)
	go func() {
		done <- runWordSweep(context.Background(), cfg, &tot, func() wordWorker { return wk })
	}()
	select {
	case err := <-done:
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("runWordSweep returned %v, want *PanicError", err)
		}
		if pe.Value != "merge exploded" {
			t.Fatalf("PanicError.Value = %v, want the merge panic value", pe.Value)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("runWordSweep deadlocked after a merge panic (mutex held across the panicking merge)")
	}
	if wk.words.Load() != int64(cfg.words) {
		t.Fatalf("ran %d words, want %d (merge panics only at worker exit)", wk.words.Load(), cfg.words)
	}
}
