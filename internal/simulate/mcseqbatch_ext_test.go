package simulate_test

// The analytical cross-check lives in an external test package: it needs
// sigprob for the seq analyzer's signal probabilities, and sigprob itself
// imports simulate.

import (
	"context"
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/seq"
	"repro/internal/sigprob"
	"repro/internal/simulate"
)

// TestMCSeqBatchVsAnalyticalSeq cross-checks the frame-unrolled Monte Carlo
// kernel against the analytical multi-cycle extension (package seq): mean
// |diff| over all sites and several frame budgets must stay within the same
// bound the analytical model is held to against Sequential — the two
// multi-cycle paths must tell one story.
func TestMCSeqBatchVsAnalyticalSeq(t *testing.T) {
	sumAbs, n := 0.0, 0
	for seed := uint64(0); seed < 3; seed++ {
		c := gen.SmallRandomSequential(seed + 80)
		a, err := seq.New(c, sigprob.Topological(c, sigprob.Config{}))
		if err != nil {
			t.Fatal(err)
		}
		for _, frames := range []int{2, 4} {
			mb := simulate.NewMCSeqBatch(c, simulate.MCOptions{Vectors: 1 << 12, Seed: seed + 9}, frames)
			got, err := mb.PDetectAll(context.Background(), 0)
			if err != nil {
				t.Fatal(err)
			}
			for id := 0; id < c.N(); id++ {
				sumAbs += math.Abs(got[id].PDetect - a.PDetect(netlist.ID(id), frames))
				n++
			}
		}
	}
	mean := sumAbs / float64(n)
	t.Logf("mean |MCSeqBatch - seq analytical| over %d (site, frames) pairs: %v", n, mean)
	if mean > 0.08 {
		t.Errorf("mean difference %v exceeds 0.08", mean)
	}
}
