package simulate_test

import (
	"math"
	"repro/internal/bench"
	"strings"
	"testing"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/netlist"
	. "repro/internal/simulate"
)

func mustParse(t *testing.T, src string) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestNaiveConvergesToExact: the paper-era scalar baseline estimates the
// same quantity as exhaustive enumeration. (External test package: exact
// imports simulate, so this test cannot live in-package.)
func TestNaiveConvergesToExact(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		c := gen.SmallRandom(seed + 200)
		naive := NewNaive(c, MCOptions{Vectors: 1 << 13, Seed: seed})
		for id := 0; id < c.N(); id += 5 {
			truth, err := exact.PSensitized(c, netlist.ID(id))
			if err != nil {
				t.Fatal(err)
			}
			r := naive.EPP(netlist.ID(id))
			if math.Abs(r.PSensitized-truth) > 5*r.StdErr+1e-9 {
				t.Errorf("seed %d site %d: naive %v, exact %v (±%v)",
					seed, id, r.PSensitized, truth, r.StdErr)
			}
		}
	}
}

// TestNaiveDeterminism.
func TestNaiveDeterminism(t *testing.T) {
	c := gen.SmallRandom(7)
	site := netlist.ID(c.N() - 1)
	a := NewNaive(c, MCOptions{Vectors: 1024, Seed: 5}).EPP(site)
	b := NewNaive(c, MCOptions{Vectors: 1024, Seed: 5}).EPP(site)
	if a.Detected != b.Detected {
		t.Fatalf("same seed, different counts: %d vs %d", a.Detected, b.Detected)
	}
}

// TestNaiveRespectsBias: with P(side input = 1) = 1, a flip through an AND
// always propagates.
func TestNaiveRespectsBias(t *testing.T) {
	c := mustParse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")
	prob := make([]float64, c.N())
	prob[c.ByName("a")] = 0.5
	prob[c.ByName("b")] = 1.0
	naive := NewNaive(c, MCOptions{Vectors: 512, Seed: 2, SourceProb: prob})
	if r := naive.EPP(c.ByName("a")); r.PSensitized != 1 {
		t.Errorf("biased naive: %v, want 1", r.PSensitized)
	}
}

// TestMCResultString: diagnostic rendering carries the key fields.
func TestMCResultString(t *testing.T) {
	r := MCResult{Site: 3, PSensitized: 0.25, StdErr: 0.01, Vectors: 1024, Detected: 256}
	s := r.String()
	for _, frag := range []string{"site 3", "0.25", "256/1024"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

// TestEPPAllMatchesSingle.
func TestEPPAllMatchesSingle(t *testing.T) {
	c := gen.SmallRandom(9)
	sites := []netlist.ID{0, netlist.ID(c.N() / 2), netlist.ID(c.N() - 1)}
	mc := NewMonteCarlo(c, MCOptions{Vectors: 512, Seed: 8})
	all := mc.EPPAll(sites)
	single := NewMonteCarlo(c, MCOptions{Vectors: 512, Seed: 8})
	for i, s := range sites {
		want := single.EPP(s)
		if all[i].PSensitized != want.PSensitized {
			t.Errorf("site %d: batch %v, single %v", s, all[i].PSensitized, want.PSensitized)
		}
	}
}

// TestFaultyValue: after FaultySim the faulty value of the site is the
// complement of the good value, and off-cone values are untouched.
func TestFaultyValue(t *testing.T) {
	c := mustParse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ng = AND(a, b)\ny = NOT(g)\n")
	eng := NewEngine(c)
	eng.SetSource(c.ByName("a"), 0xDEADBEEF)
	eng.SetSource(c.ByName("b"), 0x12345678)
	eng.Run()
	w := graph.NewWalker(c)
	cone := w.ForwardCone(c.ByName("g"))
	eng.FaultySim(&cone)
	if eng.FaultyValue(c.ByName("g")) != ^eng.Value(c.ByName("g")) {
		t.Error("site not complemented in the faulty machine")
	}
	if eng.FaultyValue(c.ByName("y")) != eng.Value(c.ByName("g")) {
		t.Error("faulty value did not propagate through the inverter")
	}
}
