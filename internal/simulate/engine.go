// Package simulate implements a 64-way bit-parallel gate-level logic
// simulator with single-event-upset fault injection, and on top of it the
// random-vector (Monte Carlo) error-propagation-probability estimators that
// the paper uses as its accuracy and runtime baseline ("SimT" in Table 2).
//
// The simulator evaluates 64 input patterns per machine word, and faulty
// re-simulation is restricted to the structural fault cone, so the baseline
// is a competently engineered comparator rather than a strawman.
//
// Two single-cycle estimators share those kernels. MonteCarlo is the
// per-site estimator (one vector stream and one good simulation per site
// per word — the paper-era baseline shape, and the per-site cost model
// Table 2's SimT column reports). MCBatch is the production all-sites form:
// vectors are shared across sites (MCOptions.SharedVectors), so each
// 64-vector word costs exactly one good simulation for the whole circuit,
// and faulty re-simulation runs over cone-locality site groups
// (internal/sched) with per-site results bit-identical to the per-site
// estimator under the shared stream.
//
// The multi-cycle pair mirrors them. Sequential is the per-site two-machine
// ground-truth simulator (good and faulty machines in lock step across
// clock cycles); MCSeqBatch is its production all-sites form, frame-unrolled
// so each 64-vector word costs exactly one good simulation per frame shared
// by all sites, with corrupted flip-flop state carried per lane across
// clock edges.
//
// # Multi-cycle seeding and state-carry contract
//
// The shared-vector regime of the multi-cycle estimators (MCSeqBatch
// always; Sequential when SeqOptions.SharedVectors is set) derives one
// vector stream per 64-vector word, seeded by (Seed, word index) through
// wordSeed, and draws from it in a fixed order:
//
//  1. the initial flip-flop state words, in Circuit.FFs order (both
//     machines start from identical state);
//  2. for each frame in turn, the primary-input words in Circuit.PIs order
//     (both machines see identical inputs every cycle).
//
// The error site is complemented during frame 0 only; at each clock edge
// every flip-flop atomically captures its D input in both machines (all D
// values are read before any flip-flop is written, so FF-to-FF chains shift
// by exactly one stage per cycle), which is the only way divergence crosses
// a frame boundary. Detection means a primary output differed in any frame
// — the multi-cycle PDetect quantity of internal/seq, distinct from the
// single-cycle P_sensitized, which counts flip-flop D inputs as detecting
// observation points. Because the draws depend only on (Seed, word) and the
// frame-k draw sequence is a prefix of the frame-(k+1) sequence, per-site
// results are bit-identical between MCSeqBatch and shared-vector Sequential
// at any grouping or worker count, and every site's estimate is exactly
// monotone in the frame budget for a fixed Seed and vector count.
package simulate

import (
	"repro/internal/graph"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// Engine is a bit-parallel logic simulator over a fixed circuit. Each node
// value is a 64-bit word: bit i is the node's value under input pattern i.
// An Engine is not safe for concurrent use; create one per goroutine.
type Engine struct {
	c      *netlist.Circuit
	values []uint64 // current good-machine values, indexed by node ID
	faulty []uint64 // scratch for faulty re-simulation
	ins    []uint64 // fanin gather scratch

	// CSR adjacency views cached from the circuit (shared, read-only).
	fiIdx []int32
	fiArr []netlist.ID
	kinds []logic.Kind
}

// NewEngine returns a simulator for circuit c.
func NewEngine(c *netlist.Circuit) *Engine {
	e := &Engine{
		c:      c,
		values: make([]uint64, c.N()),
		faulty: make([]uint64, c.N()),
		ins:    make([]uint64, 0, 8),
		kinds:  c.Kinds(),
	}
	e.fiIdx, e.fiArr = c.FaninCSR()
	return e
}

// Circuit returns the simulated circuit.
func (e *Engine) Circuit() *netlist.Circuit { return e.c }

// SetSource assigns the 64-pattern word for a source node (primary input or
// flip-flop output). Tie cells are set automatically by Run.
func (e *Engine) SetSource(id netlist.ID, word uint64) {
	e.values[id] = word
}

// Run evaluates every gate in combinational topological order from the
// currently assigned source words.
func (e *Engine) Run() {
	for _, id := range e.c.Topo() {
		switch k := e.kinds[id]; k {
		case logic.Input, logic.DFF:
			// keep assigned word
		case logic.Const0:
			e.values[id] = 0
		case logic.Const1:
			e.values[id] = ^uint64(0)
		default:
			e.values[id] = e.evalInto(e.values, k, id)
		}
	}
}

// evalInto evaluates the kind-k gate driving node id, reading fanin words
// from vals via the CSR adjacency.
func (e *Engine) evalInto(vals []uint64, k logic.Kind, id netlist.ID) uint64 {
	e.ins = e.ins[:0]
	for _, f := range e.fiArr[e.fiIdx[id]:e.fiIdx[id+1]] {
		e.ins = append(e.ins, vals[f])
	}
	return logic.EvalWord(k, e.ins)
}

// Value returns the current good-machine word of node id (valid after Run).
func (e *Engine) Value(id netlist.ID) uint64 { return e.values[id] }

// ValueBit returns pattern bit's good value of node id.
func (e *Engine) ValueBit(id netlist.ID, bit uint) bool {
	return e.values[id]>>(bit%64)&1 == 1
}

// FaultySim re-simulates the circuit with the value of site complemented in
// all 64 patterns (an SEU present at that node), restricted to the given
// fault cone, and returns a word whose bit i is 1 iff the erroneous value is
// visible at one or more observation points under pattern i.
//
// Run must have been called first for the current source words. The cone must
// be the forward cone of site (graph.Walker.ForwardCone).
func (e *Engine) FaultySim(cone *graph.Cone) uint64 {
	c := e.c
	site := cone.Root
	// Seed the faulty value map lazily: only cone members diverge.
	e.faulty[site] = ^e.values[site]
	var detected uint64
	if c.IsObserved(site) {
		detected |= e.faulty[site] ^ e.values[site]
	}
	for _, id := range cone.Members[1:] {
		e.ins = e.ins[:0]
		for _, f := range e.fiArr[e.fiIdx[id]:e.fiIdx[id+1]] {
			if cone.Contains(f) {
				e.ins = append(e.ins, e.faulty[f])
			} else {
				e.ins = append(e.ins, e.values[f])
			}
		}
		w := logic.EvalWord(e.kinds[id], e.ins)
		e.faulty[id] = w
		if c.IsObserved(id) {
			detected |= w ^ e.values[id]
		}
	}
	return detected
}

// FaultyValue returns the faulty-machine word of a cone member after
// FaultySim.
func (e *Engine) FaultyValue(id netlist.ID) uint64 { return e.faulty[id] }
