// The deliberately naive per-site baseline (full two-simulation per word,
// no cone restriction) used to calibrate Table 2's SimT column.

package simulate

import (
	"math"
	"math/rand/v2"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Naive is the conventional random-vector fault-injection estimator of the
// paper's era (its references [2,3,4,6]): scalar (one pattern at a time)
// evaluation and full-circuit faulty re-simulation per vector, with no
// bit-parallelism and no cone restriction. This is the comparator the
// paper's Table 2 "SimT" column measures; the bit-parallel MonteCarlo type
// in this package is our own strengthened baseline, reported separately as
// an ablation.
type Naive struct {
	c      *netlist.Circuit
	opt    MCOptions
	good   []bool
	faulty []bool
	ins    []bool
}

// NewNaive returns a naive estimator for circuit c.
func NewNaive(c *netlist.Circuit, opt MCOptions) *Naive {
	opt.setDefaults()
	return &Naive{
		c:      c,
		opt:    opt,
		good:   make([]bool, c.N()),
		faulty: make([]bool, c.N()),
		ins:    make([]bool, 0, 8),
	}
}

// EPP estimates P_sensitized for one error site with scalar random
// simulation.
func (n *Naive) EPP(site netlist.ID) MCResult {
	c := n.c
	rng := rand.New(rand.NewPCG(n.opt.Seed^(uint64(site)*0x9e3779b97f4a7c15+7), 0xd1342543de82ef95))
	detected := 0
	for v := 0; v < n.opt.Vectors; v++ {
		// Draw one random assignment for every source.
		for i := range c.Nodes {
			if c.Nodes[i].IsSource() {
				p := 0.5
				if n.opt.SourceProb != nil {
					p = n.opt.SourceProb[i]
				}
				n.good[i] = rng.Float64() < p
			}
		}
		n.evalAll(n.good, netlist.InvalidID)
		copySourceValues(c, n.faulty, n.good)
		n.evalAll(n.faulty, site)
		for _, obs := range c.Observed() {
			if n.good[obs] != n.faulty[obs] {
				detected++
				break
			}
		}
	}
	p := float64(detected) / float64(n.opt.Vectors)
	return MCResult{
		Site:        site,
		PSensitized: p,
		StdErr:      math.Sqrt(p * (1 - p) / float64(n.opt.Vectors)),
		Vectors:     n.opt.Vectors,
		Detected:    detected,
	}
}

// evalAll evaluates the whole circuit in topological order into vals,
// complementing the value of flip (if valid) after computing it.
func (n *Naive) evalAll(vals []bool, flip netlist.ID) {
	c := n.c
	for _, id := range c.Topo() {
		node := c.Node(id)
		switch node.Kind {
		case logic.Input, logic.DFF:
			// source value already present
		case logic.Const0:
			vals[id] = false
		case logic.Const1:
			vals[id] = true
		default:
			n.ins = n.ins[:0]
			for _, f := range node.Fanin {
				n.ins = append(n.ins, vals[f])
			}
			vals[id] = logic.EvalBool(node.Kind, n.ins)
		}
		if id == flip {
			vals[id] = !vals[id]
		}
	}
}

func copySourceValues(c *netlist.Circuit, dst, src []bool) {
	for i := range c.Nodes {
		if c.Nodes[i].IsSource() {
			dst[i] = src[i]
		}
	}
}
