// Per-site two-machine multi-cycle fault-injection simulator — the ground
// truth MCSeqBatch is conformance-tested against.

package simulate

import (
	"math"
	"math/bits"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// SeqOptions configure the multi-cycle fault-injection estimator.
type SeqOptions struct {
	// Frames is the number of clock cycles simulated per trial, including
	// the strike cycle. Must be >= 1.
	Frames int
	// Trials is the number of random trials (rounded up to a multiple of
	// 64). Default 10000.
	Trials int
	// Seed fixes the random streams.
	Seed uint64
	// SourceProb optionally biases primary inputs and the initial flip-flop
	// state (indexed by node ID); nil means 0.5.
	SourceProb []float64
	// SharedVectors selects the shared-stream regime of the multi-cycle
	// seeding contract: the trials of 64-trial word w are drawn from a
	// stream seeded by (Seed, w) via wordSeed, first the initial flip-flop
	// state words (in Circuit.FFs order), then each frame's primary-input
	// words (in Circuit.PIs order) — so every error site sees the same
	// initial state and input sequence. This is the regime MCSeqBatch is
	// built on (sharing the good trajectory across sites requires the sites
	// to share the word's vectors), and setting it on a per-site Sequential
	// reproduces MCSeqBatch's per-site results bit-exactly (see
	// TestMCSeqBatchMatchesSequentialShared).
	//
	// Default false: each site draws one continuous stream seeded by
	// (Seed, site), the historical regime.
	SharedVectors bool
}

func (o *SeqOptions) setDefaults() {
	if o.Trials <= 0 {
		o.Trials = 10000
	}
	if o.Frames < 1 {
		o.Frames = 1
	}
}

// SeqResult is the multi-cycle Monte Carlo estimate for one error site.
//
// Detected and DetectedLater expose the integer trial counts behind PDetect
// so downstream compositions stay exact: Detected/Trials == PDetect, and the
// difference Detected − DetectedLater counts the trials observed only as the
// strike-cycle transient — the contribution the latch-window weighting
// derates (a frame-0 detection is a narrow pulse racing the capture window,
// while a detection in any later frame is a full-cycle value re-launched
// from a flip-flop, captured with certainty; see latch.Model.FrameWeight).
// The weighted detection probability is therefore
//
//	(DetectedLater + w0·(Detected − DetectedLater)) / Trials
//
// with w0 the strike-frame capture weight, computable from the integer
// counters alone — no per-trial floats, so worker invariance and the
// bit-exact Sequential/MCSeqBatch agreement extend to the weighted estimate.
type SeqResult struct {
	Site          netlist.ID
	Frames        int
	PDetect       float64 // probability a primary output differed in any frame
	StdErr        float64
	Trials        int
	Detected      int // trials in which a primary output differed in any frame
	DetectedLater int // trials in which a primary output differed in a frame >= 1
}

// PDetectWeighted returns the latch-window-weighted detection probability:
// later-frame detections count in full (a re-launched flip-flop value is a
// stable full-cycle level, captured with certainty — latch.Model.FrameWeight
// is identically 1 for frames >= 1), while trials observed only during the
// strike cycle are derated by strikeWeight, the transient's capture-window
// probability (latch.Model.FrameWeight(0)). Computed from the integer trial
// counters, so the weighted estimate inherits every exactness property of
// the counts: PDetectWeighted(1) == PDetect bit-exactly, and two estimators
// with equal counters agree at every weight.
func (r SeqResult) PDetectWeighted(strikeWeight float64) float64 {
	if r.Trials == 0 {
		return 0
	}
	later := float64(r.DetectedLater)
	strikeOnly := float64(r.Detected - r.DetectedLater)
	return (later + strikeWeight*strikeOnly) / float64(r.Trials)
}

// Sequential estimates the probability that an SEU at a node is observed at
// a primary output within a bounded number of clock cycles, by lock-step
// good/faulty two-machine simulation: both machines see identical primary
// input streams and identical initial flip-flop state; the fault machine has
// the error site complemented during the strike cycle; thereafter the
// corrupted flip-flop state carries the error. 64 trials run per word.
//
// This is the ground-truth instrument for the multi-cycle analytical
// extension in package seq.
type Sequential struct {
	c   *netlist.Circuit
	opt SeqOptions

	good   []uint64
	faulty []uint64
	ins    []uint64
	nextG  []uint64 // snapshot of D values for the atomic clock edge
	nextF  []uint64
}

// NewSequential returns a multi-cycle estimator for circuit c.
func NewSequential(c *netlist.Circuit, opt SeqOptions) *Sequential {
	opt.setDefaults()
	return &Sequential{
		c:      c,
		opt:    opt,
		good:   make([]uint64, c.N()),
		faulty: make([]uint64, c.N()),
		ins:    make([]uint64, 0, 8),
		nextG:  make([]uint64, len(c.FFs)),
		nextF:  make([]uint64, len(c.FFs)),
	}
}

// PDetect runs the estimation for one error site.
func (s *Sequential) PDetect(site netlist.ID) SeqResult {
	c := s.c
	// Only the vector source differs between the regimes: per-site keeps one
	// decorrelated stream seeded by (Seed, site); shared re-seeds per word by
	// (Seed, w) — identical draws for every site, the MCSeqBatch contract.
	var src *VectorSource
	if !s.opt.SharedVectors {
		src = NewVectorSource(s.opt.Seed^(uint64(site)*0xa0761d6478bd642f+13), s.opt.SourceProb)
	}
	words := (s.opt.Trials + 63) / 64
	detected, detectedLater := 0, 0
	for w := 0; w < words; w++ {
		if s.opt.SharedVectors {
			src = NewVectorSource(wordSeed(s.opt.Seed, int64(w)), s.opt.SourceProb)
		}
		var detWord, detLaterWord uint64
		// Identical initial flip-flop state in both machines.
		for _, ff := range c.FFs {
			v := src.Word(ff)
			s.good[ff] = v
			s.faulty[ff] = v
		}
		for frame := 0; frame < s.opt.Frames; frame++ {
			// Fresh primary inputs each cycle, shared by both machines.
			for _, pi := range c.PIs {
				v := src.Word(pi)
				s.good[pi] = v
				s.faulty[pi] = v
			}
			flip := netlist.InvalidID
			if frame == 0 {
				flip = site
			}
			s.eval(s.good, netlist.InvalidID)
			s.eval(s.faulty, flip)
			var frameWord uint64
			for _, po := range c.POs {
				frameWord |= s.good[po] ^ s.faulty[po]
			}
			detWord |= frameWord
			if frame > 0 {
				detLaterWord |= frameWord
			}
			// Clock edge: capture all D values atomically (read every D
			// before writing any FF, so FF-to-FF chains shift by exactly
			// one stage per cycle).
			for i, ff := range c.FFs {
				d := c.Node(ff).Fanin[0]
				s.nextG[i] = s.good[d]
				s.nextF[i] = s.faulty[d]
			}
			for i, ff := range c.FFs {
				s.good[ff] = s.nextG[i]
				s.faulty[ff] = s.nextF[i]
			}
		}
		detected += bits.OnesCount64(detWord)
		detectedLater += bits.OnesCount64(detLaterWord)
	}
	n := words * 64
	p := float64(detected) / float64(n)
	return SeqResult{
		Site:          site,
		Frames:        s.opt.Frames,
		PDetect:       p,
		StdErr:        math.Sqrt(p * (1 - p) / float64(n)),
		Trials:        n,
		Detected:      detected,
		DetectedLater: detectedLater,
	}
}

// eval evaluates the combinational logic in topological order, complementing
// the value of flip (if valid) after computing it.
func (s *Sequential) eval(vals []uint64, flip netlist.ID) {
	c := s.c
	for _, id := range c.Topo() {
		n := c.Node(id)
		switch n.Kind {
		case logic.Input, logic.DFF:
			// state already present
		case logic.Const0:
			vals[id] = 0
		case logic.Const1:
			vals[id] = ^uint64(0)
		default:
			s.ins = s.ins[:0]
			for _, f := range n.Fanin {
				s.ins = append(s.ins, vals[f])
			}
			vals[id] = logic.EvalWord(n.Kind, s.ins)
		}
		if id == flip {
			vals[id] = ^vals[id]
		}
	}
}
