// VectorSource: the deterministic biased random-vector generator behind
// every sampling estimator's seeding contract.

package simulate

import (
	"math/rand/v2"

	"repro/internal/netlist"
)

// VectorSource produces random 64-pattern source words, optionally biased so
// that each source holds logic 1 with a configured probability. Bias is
// realized with 16-bit dyadic precision using bit-sliced comparison, which
// keeps generation O(16) words per source instead of 64 float draws.
type VectorSource struct {
	rng   *rand.Rand
	prob1 []float64 // per node; only source entries are consulted
}

// NewVectorSource returns a generator seeded deterministically. prob1 may be
// nil, meaning every source is unbiased (probability 0.5 of logic 1).
func NewVectorSource(seed uint64, prob1 []float64) *VectorSource {
	return &VectorSource{
		rng:   rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15)),
		prob1: prob1,
	}
}

// Word returns a fresh 64-pattern word for source node id.
func (v *VectorSource) Word(id netlist.ID) uint64 {
	p := 0.5
	if v.prob1 != nil {
		p = v.prob1[id]
	}
	if p == 0.5 {
		return v.rng.Uint64()
	}
	return biasedWord(v.rng, p)
}

// Fill assigns fresh random words to every source of the engine's circuit.
func (v *VectorSource) Fill(e *Engine) {
	c := e.Circuit()
	for i := range c.Nodes {
		if c.Nodes[i].IsSource() {
			e.SetSource(netlist.ID(i), v.Word(netlist.ID(i)))
		}
	}
}

// biasedWord generates a word whose bits are 1 independently with probability
// p, quantized to 16 binary digits. Construction: write p in binary as
// 0.b1 b2 … b16; a bit is 1 iff the first random "digit word" position where
// the random digit differs from b chooses below p. Implemented with the
// classic bit-slice scan.
func biasedWord(rng *rand.Rand, p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return ^uint64(0)
	}
	// undecided: bits whose comparison to p is still tied.
	undecided := ^uint64(0)
	var result uint64
	for i := 0; i < 16; i++ {
		p *= 2
		var digit uint64 // b_i replicated implicitly: 1 if p >= 1
		if p >= 1 {
			digit = ^uint64(0)
			p -= 1
		}
		r := rng.Uint64()
		// Random digit 0 while threshold digit 1 -> bit is 1 (below p).
		result |= undecided & ^r & digit
		// Still tied where random digit == threshold digit.
		undecided &= ^(r ^ digit)
		if undecided == 0 {
			break
		}
	}
	return result
}
