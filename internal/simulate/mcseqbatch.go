// Frame-unrolled batched Monte Carlo kernel for the multi-cycle detection
// probability, with per-frame exact sweep masks and per-frame detection
// counters.

package simulate

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"runtime"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// MCSeqBatch is the frame-unrolled batched Monte Carlo estimator of the
// multi-cycle detection probability: the same two-machine fault-injection
// semantics as Sequential (an SEU complements the error site during the
// strike cycle; corrupted flip-flop state carries the error into subsequent
// cycles; detection means a primary output differed in any frame), with the
// good-machine work shared across all error sites exactly as MCBatch shares
// it for the single-cycle estimate.
//
// The per-site Sequential estimator re-runs the full good trajectory once
// per site per word — O(sites × words × frames) full-circuit simulations
// where O(words × frames) suffices, because the good machine depends only on
// the vectors. MCSeqBatch inverts the loops: the outer loop claims 64-vector
// words from an atomic cursor, each word costs exactly one full-circuit good
// simulation per frame (the whole good trajectory is recorded), and the
// inner loop re-simulates every site group's divergence against it:
//
//   - Frame 0 (the strike cycle) sweeps the group's combinational strike
//     cone with the site flips, exactly as MCBatch — but detection counts
//     primary outputs only, since flip-flop captures are carried state here,
//     not detections.
//
//   - At each clock edge the carried divergence is captured: for every
//     flip-flop the group's error can ever reach, the faulty D-input word is
//     latched per lane (equal to the good D value wherever the lane did not
//     diverge), mirroring Sequential's atomic edge.
//
//   - Frame k >= 1 sweeps its exact reachable cone: the combinational
//     forward cone of the flip-flops a lane's divergence can reach within k
//     clock edges, precomputed per (group, frame) with per-member lane
//     masks. Early frames of deep flip-flop pipelines therefore sweep only
//     the stages the error can actually have reached, not the full
//     frame-budget superset; once the carried set stops growing the later
//     frames share one sweep structure.
//
// Detection is counted per frame: detected trials (a primary output
// differed in any frame) and later-frame detections (frames >= 1) are
// folded per site into SeqResult.Detected / SeqResult.DetectedLater, and
// FrameDetected exposes the per-frame counters — all integers summed in
// canonical site/frame order, which is what lets the latch-window-weighted
// composition (see SeqResult) stay bit-exact and worker-invariant.
//
// Faulty evaluation per lane is bitwise identical to the two-machine
// simulation over the full circuit (values outside the swept cone equal the
// good machine's by construction), so per-site detection counts — and
// therefore every SeqResult — are independent of the grouping, identical at
// any worker count, and bit-exact against a per-site Sequential run in the
// shared-vector regime (SeqOptions.SharedVectors).
//
// Vectors follow the multi-cycle shared-stream contract: one stream per
// 64-vector word, seeded by (Seed, word index) via wordSeed, drawing first
// the initial flip-flop state words (in Circuit.FFs order) and then each
// frame's primary-input words (in Circuit.PIs order). Sites that reach no
// observation point (ObsSignatures == 0) are excluded from the lane groups
// entirely: a site that cannot even reach a flip-flop D input can never be
// detected in any frame.
//
// An MCSeqBatch may be reused for repeated PDetectAll calls but is not safe
// for concurrent use.
type MCSeqBatch struct {
	c      *netlist.Circuit
	opt    MCOptions
	frames int

	groups     []mcSeqGroup
	maxMembers int // largest member list over groups and frames
	maxFFs     int // largest carried-FF set, sizes the per-lane state scratch
	skipped    int // sites excluded as unobservable
	isPO       []bool

	frameDet []int64 // per-frame detection counters of the last PDetectAll
	stats    MCStats
}

// mcSeqGroup extends the strike-frame group with the sequential structures:
// the flip-flops that can ever carry the group's divergence (with per-FF
// lane masks and D inputs) and, per frame >= 1, the exact combinational
// sweep of the flip-flops reachable within that many clock edges.
type mcSeqGroup struct {
	mcGroup // frame 0: sites, strike-cone members, lane masks, site lanes

	ffIDs  []netlist.ID // flip-flops reachable by the group's divergence
	ffMask []uint64     // per ffIDs entry: lanes whose divergence can ever reach it
	ffD    []netlist.ID // D input (fanin[0]) of each carried flip-flop

	// frames[k-1] is the sweep of frame k: the combinational forward cone
	// of the flip-flops a lane can reach within k clock edges. Lane masks
	// only grow with k, so later entries may alias earlier ones once the
	// carried set reaches its fixpoint.
	frames []mcSeqFrame
}

// mcSeqFrame is one frame's exact faulty sweep: members in combinational
// topological order, per-member lane masks, and for flip-flop members the
// index of their carried state in the group's ffIDs.
type mcSeqFrame struct {
	members []netlist.ID
	mask    []uint64
	ffPos   []int32
}

// NewMCSeqBatch builds the frame-unrolled batched estimator for circuit c
// with the given frame budget (clamped to >= 1). The precomputed structures
// are shared read-only by all PDetectAll workers.
func NewMCSeqBatch(c *netlist.Circuit, opt MCOptions, frames int) *MCSeqBatch {
	opt.setDefaults()
	if frames < 1 {
		frames = 1
	}
	m := &MCSeqBatch{c: c, opt: opt, frames: frames}
	base, maxMembers, skipped := buildMCGroups(c)
	m.maxMembers = maxMembers
	m.skipped = skipped
	m.isPO = make([]bool, c.N())
	for _, po := range c.POs {
		m.isPO[po] = true
	}

	m.groups = make([]mcSeqGroup, len(base))
	for gi := range base {
		m.groups[gi].mcGroup = base[gi]
	}
	if frames == 1 {
		// A single-frame budget never runs the capture or frames>=1 sweeps,
		// so the sequential closure structures would be dead weight —
		// construction then costs the same as MCBatch's.
		return m
	}

	n := c.N()
	mask := make([]uint64, n)  // sequential lane-closure state
	smask := make([]uint64, n) // per-frame on-path lane masks (scratch)
	dmask := make([]uint64, len(c.FFs))
	ffLocal := make([]int32, n) // FF id -> index into the group's ffIDs
	ffSeen := make([]int32, n)  // group stamp: FF already in the group's ffIDs
	for i := range ffSeen {
		ffSeen[i] = -1
	}
	topo := c.Topo()
	kinds := c.Kinds()
	fiIdx, fiArr := c.FaninCSR()

	for gi := range m.groups {
		g := &m.groups[gi]
		g.frames = make([]mcSeqFrame, 0, frames-1)

		// Lane closure over the sequential graph: after edge step k,
		// mask[id] bit l is set iff lane l's divergence can reach id within
		// k clock edges. One combinational topological pass per iteration,
		// then a clock-edge step that pushes each flip-flop's D-input mask
		// onto its output. The per-edge states are exactly the frame sweeps:
		// frame k's faulty sweep covers the combinational cone of the
		// flip-flops carrying lanes after k edges — the exact reachable set
		// for that frame, not the frame-budget superset. Masks only
		// accumulate, so once no flip-flop gains a lane the remaining frames
		// share the last sweep structure.
		for i := range mask {
			mask[i] = 0
		}
		for lane, site := range g.sites {
			mask[site] |= 1 << uint(lane)
		}
		for edge := 1; edge < frames; edge++ {
			for _, id := range topo {
				if kinds[id].IsGate() {
					mk := mask[id]
					for _, f := range fiArr[fiIdx[id]:fiIdx[id+1]] {
						mk |= mask[f]
					}
					mask[id] = mk
				}
			}
			// Atomic clock edge: read every D mask before writing any FF
			// (mirroring the simulator's edge), so a lane crosses exactly
			// one flip-flop stage per step and mask stays the exact
			// <= edge reach — non-atomic updates would let lanes jump whole
			// FF chains in one step and inflate the early frames' sweeps.
			changed := false
			for i, ff := range c.FFs {
				dmask[i] = mask[fiArr[fiIdx[ff]]]
			}
			for i, ff := range c.FFs {
				d := fiArr[fiIdx[ff]]
				if add := dmask[i] &^ mask[ff]; add != 0 {
					// Membership needs its own stamp: an FF that is itself an
					// error site has a nonzero seeded mask before it ever
					// captures anything.
					if ffSeen[ff] != int32(gi) {
						ffSeen[ff] = int32(gi)
						ffLocal[ff] = int32(len(g.ffIDs))
						g.ffIDs = append(g.ffIDs, ff)
						g.ffD = append(g.ffD, d)
					}
					mask[ff] |= add
					changed = true
				}
			}

			// Frame `edge` sweep: the combinational cone of the currently
			// carried flip-flops. Filtering the circuit topological order
			// keeps it a valid evaluation order.
			var fr mcSeqFrame
			for i := range smask {
				smask[i] = 0
			}
			for _, ff := range g.ffIDs {
				smask[ff] = mask[ff]
			}
			for _, id := range topo {
				if kinds[id].IsGate() {
					mk := smask[id]
					for _, f := range fiArr[fiIdx[id]:fiIdx[id+1]] {
						mk |= smask[f]
					}
					smask[id] = mk
				}
				if smask[id] != 0 {
					fp := int32(-1)
					if kinds[id] == logic.DFF {
						fp = ffLocal[id]
					}
					fr.members = append(fr.members, id)
					fr.mask = append(fr.mask, smask[id])
					fr.ffPos = append(fr.ffPos, fp)
				}
			}
			g.frames = append(g.frames, fr)
			if len(fr.members) > m.maxMembers {
				m.maxMembers = len(fr.members)
			}
			if !changed {
				// Carried-lane fixpoint: every remaining frame sweeps the
				// same cone with the same masks.
				for len(g.frames) < frames-1 {
					g.frames = append(g.frames, fr)
				}
				break
			}
		}

		// Finalize the capture masks to the closure fixpoint: lanes whose
		// divergence can ever reach each carried flip-flop.
		g.ffMask = make([]uint64, len(g.ffIDs))
		for j, ff := range g.ffIDs {
			g.ffMask[j] = mask[ff]
		}
		if len(g.ffIDs) > m.maxFFs {
			m.maxFFs = len(g.ffIDs)
		}
	}
	return m
}

// Circuit returns the simulated circuit.
func (m *MCSeqBatch) Circuit() *netlist.Circuit { return m.c }

// Frames returns the frame budget.
func (m *MCSeqBatch) Frames() int { return m.frames }

// Stats returns the work counters of the most recent PDetectAll call. The
// kernel's defining invariant is GoodSims == Words × Frames: exactly one
// full-circuit good simulation per (64-vector word, frame), shared by all
// sites.
func (m *MCSeqBatch) Stats() MCStats { return m.stats }

// FrameDetected returns the per-frame detection counters of the most recent
// PDetectAll call: the returned slice, indexed by node ID, counts the trials
// in which a primary output differed during frame `frame` (0 = the strike
// cycle). A trial may be detected in several frames, so the per-frame counts
// can sum to more than SeqResult.Detected; their union is Detected and the
// union over frames >= 1 is DetectedLater. The counters are integers folded
// in canonical (site, frame) order, identical at any worker count. The
// returned slice aliases kernel state — treat it as read-only.
func (m *MCSeqBatch) FrameDetected(frame int) []int64 {
	if m.frameDet == nil || frame < 0 || frame >= m.frames {
		return nil
	}
	n := m.c.N()
	return m.frameDet[frame*n : (frame+1)*n]
}

// PDetectAll estimates the multi-cycle detection probability for every node
// of the circuit (indexed by node ID) across workers goroutines (0 =
// GOMAXPROCS). Each 64-vector word costs exactly one good simulation per
// frame shared by all sites. Cancellation of ctx is honored between word
// claims; on cancellation the partial estimate is discarded and ctx.Err()
// returned. Results are identical at any worker count.
func (m *MCSeqBatch) PDetectAll(ctx context.Context, workers int) ([]SeqResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	words := (m.opt.Vectors + 63) / 64
	n := m.c.N()
	tot := &mcTotals{
		detected: make([]int64, n),
		later:    make([]int64, n),
		frames:   make([]int64, m.frames*n),
	}
	cfg := wordSweepCfg{
		workers: workers,
		words:   words,
		maxNew:  m.opt.MaxNewWords,
		onWord:  m.opt.OnWord,
		commit:  m.opt.OnCommit,
	}
	if r := m.opt.Resume; r != nil {
		if len(r.Skip) != words {
			return nil, fmt.Errorf("simulate: Resume.Skip has %d words, sweep has %d", len(r.Skip), words)
		}
		if err := tot.seed(r.Counters, n, m.frames); err != nil {
			return nil, err
		}
		cfg.skip = r.Skip
	}
	if err := runWordSweep(ctx, cfg, tot,
		func() wordWorker { return newMCSeqWorker(m) }); err != nil {
		if m.opt.OnCommit != nil && m.opt.OnAbort != nil {
			m.opt.OnAbort(tot.snapshot())
		}
		return nil, err
	}
	tot.stats.Sites = int64(n)
	tot.stats.Unobservable = int64(m.skipped)
	m.stats = tot.stats
	m.frameDet = tot.frames

	trials := words * 64
	out := make([]SeqResult, n)
	for id := 0; id < n; id++ {
		p := float64(tot.detected[id]) / float64(trials)
		out[id] = SeqResult{
			Site:          netlist.ID(id),
			Frames:        m.frames,
			PDetect:       p,
			StdErr:        math.Sqrt(p * (1 - p) / float64(trials)),
			Trials:        trials,
			Detected:      int(tot.detected[id]),
			DetectedLater: int(tot.later[id]),
		}
	}
	return out, nil
}

// mcSeqWorker is the per-goroutine state of one PDetectAll sweep: a
// bit-parallel engine for the shared good trajectory, the per-frame good
// value snapshots, the lane-value scratch for faulty re-simulation, and the
// per-lane carried flip-flop state.
type mcSeqWorker struct {
	mcCounters
	m        *MCSeqBatch
	eng      *Engine
	goodBuf  []uint64 // frames × N good values, frame-major
	lanes    []uint64 // faulty lane values, member-major: lanes[i*64+lane]
	faultyFF []uint64 // carried faulty FF state: faultyFF[ffLocal*64+lane]
	pos      []int32
	stamp    []int64
	stampVal int64
	ins      []uint64
}

func newMCSeqWorker(m *MCSeqBatch) *mcSeqWorker {
	n := m.c.N()
	return &mcSeqWorker{
		mcCounters: mcCounters{
			detected: make([]int64, n),
			later:    make([]int64, n),
			frames:   make([]int64, m.frames*n),
		},
		m:        m,
		eng:      NewEngine(m.c),
		goodBuf:  make([]uint64, m.frames*n),
		lanes:    make([]uint64, m.maxMembers*mcLanes),
		faultyFF: make([]uint64, m.maxFFs*mcLanes),
		pos:      make([]int32, n),
		stamp:    make([]int64, n),
		ins:      make([]uint64, 0, 8),
	}
}

// runWord applies word w's shared vectors: the full good trajectory (one
// good simulation per frame), then per site group the frame-unrolled faulty
// sweep with flip-flop state carried across clock edges.
func (wk *mcSeqWorker) runWord(w int64) {
	m := wk.m
	c := m.c
	n := c.N()
	eng := wk.eng
	fiIdx, fiArr := eng.fiIdx, eng.fiArr
	kinds := eng.kinds

	// Good trajectory under the multi-cycle seeding contract: one stream per
	// word, initial flip-flop state first, then each frame's primary inputs.
	src := NewVectorSource(wordSeed(m.opt.Seed, w), m.opt.SourceProb)
	for _, ff := range c.FFs {
		eng.values[ff] = src.Word(ff)
	}
	for f := 0; f < m.frames; f++ {
		for _, pi := range c.PIs {
			eng.values[pi] = src.Word(pi)
		}
		eng.Run()
		copy(wk.goodBuf[f*n:(f+1)*n], eng.values)
		wk.goodSims++
		if f+1 < m.frames {
			// Clock edge: the snapshot makes the capture atomic, so FF-to-FF
			// chains shift by exactly one stage per cycle.
			good := wk.goodBuf[f*n : (f+1)*n]
			for _, ff := range c.FFs {
				eng.values[ff] = good[fiArr[fiIdx[ff]]]
			}
		}
	}
	wk.words++

	for gi := range m.groups {
		g := &m.groups[gi]
		// det unions the per-frame detection masks detF; detLater unions
		// the frames >= 1 only. The three integer counter families folded
		// from them (any-frame, later-frame, per-frame) are what the
		// latch-window-weighted composition consumes.
		var det, detLater, detF [mcLanes]uint64

		// Frame 0: strike-cone sweep with the site flips, against the frame-0
		// good values. Identical arithmetic to MCBatch, but detection counts
		// primary outputs only — flip-flop captures are carried, not counted.
		good := wk.goodBuf[:n]
		wk.stampVal++
		for i, id := range g.members {
			wk.stamp[id] = wk.stampVal
			wk.pos[id] = int32(i)
		}
		for i, id := range g.members {
			mk := g.mask[i]
			base := i * mcLanes
			for mm := mk; mm != 0; mm &= mm - 1 {
				l := bits.TrailingZeros64(mm)
				var v uint64
				if g.siteIdx[l] == int32(i) {
					// Lane l's error site: the SEU forces the complement of
					// the good value in all 64 patterns of the strike cycle.
					v = ^good[id]
				} else {
					wk.ins = wk.ins[:0]
					for _, f := range fiArr[fiIdx[id]:fiIdx[id+1]] {
						if wk.stamp[f] == wk.stampVal && g.mask[wk.pos[f]]>>uint(l)&1 == 1 {
							wk.ins = append(wk.ins, wk.lanes[int(wk.pos[f])*mcLanes+l])
						} else {
							wk.ins = append(wk.ins, good[f])
						}
					}
					v = logic.EvalWord(kinds[id], wk.ins)
				}
				wk.lanes[base+l] = v
				if m.isPO[id] {
					detF[l] |= v ^ good[id]
				}
			}
			wk.laneSims += int64(bits.OnesCount64(mk))
		}
		wk.sweptMembers += int64(len(g.members))
		for l, site := range g.sites {
			det[l] |= detF[l]
			wk.frames[site] += int64(bits.OnesCount64(detF[l]))
		}
		if m.frames > 1 {
			wk.capture(g, g.mask, good)
		}

		// Frame k >= 1: sweep the exact reachable cone of that frame — the
		// combinational cone of the flip-flops a lane can reach within k
		// clock edges — against the frame's good values, divergence entering
		// only through the captured state.
		for f := 1; f < m.frames; f++ {
			fr := &g.frames[f-1]
			good := wk.goodBuf[f*n : (f+1)*n]
			wk.stampVal++
			for i, id := range fr.members {
				wk.stamp[id] = wk.stampVal
				wk.pos[id] = int32(i)
			}
			for l := range detF {
				detF[l] = 0
			}
			for i, id := range fr.members {
				mk := fr.mask[i]
				base := i * mcLanes
				if fp := fr.ffPos[i]; fp >= 0 {
					fb := int(fp) * mcLanes
					for mm := mk; mm != 0; mm &= mm - 1 {
						l := bits.TrailingZeros64(mm)
						v := wk.faultyFF[fb+l]
						wk.lanes[base+l] = v
						if m.isPO[id] {
							detF[l] |= v ^ good[id]
						}
					}
				} else {
					for mm := mk; mm != 0; mm &= mm - 1 {
						l := bits.TrailingZeros64(mm)
						wk.ins = wk.ins[:0]
						for _, fin := range fiArr[fiIdx[id]:fiIdx[id+1]] {
							if wk.stamp[fin] == wk.stampVal && fr.mask[wk.pos[fin]]>>uint(l)&1 == 1 {
								wk.ins = append(wk.ins, wk.lanes[int(wk.pos[fin])*mcLanes+l])
							} else {
								wk.ins = append(wk.ins, good[fin])
							}
						}
						v := logic.EvalWord(kinds[id], wk.ins)
						wk.lanes[base+l] = v
						if m.isPO[id] {
							detF[l] |= v ^ good[id]
						}
					}
				}
				wk.laneSims += int64(bits.OnesCount64(mk))
			}
			wk.sweptMembers += int64(len(fr.members))
			for l, site := range g.sites {
				det[l] |= detF[l]
				detLater[l] |= detF[l]
				wk.frames[f*n+int(site)] += int64(bits.OnesCount64(detF[l]))
			}
			if f+1 < m.frames {
				wk.capture(g, fr.mask, good)
			}
		}

		for l, site := range g.sites {
			wk.detected[site] += int64(bits.OnesCount64(det[l]))
			wk.later[site] += int64(bits.OnesCount64(detLater[l]))
		}
	}
}

// capture latches the carried divergence at a clock edge: for every carried
// flip-flop, the faulty D-input word per lane — the lane value where the D
// input was on-path in the frame just swept (memberMask is that frame's
// per-member mask array), the good value otherwise. Reads only lanes and
// good, writes only faultyFF, so the edge is atomic like Sequential's.
func (wk *mcSeqWorker) capture(g *mcSeqGroup, memberMask []uint64, good []uint64) {
	for j, d := range g.ffD {
		gv := good[d]
		base := j * mcLanes
		var dmask uint64
		dbase := 0
		if wk.stamp[d] == wk.stampVal {
			p := int(wk.pos[d])
			dmask = memberMask[p]
			dbase = p * mcLanes
		}
		for mm := g.ffMask[j]; mm != 0; mm &= mm - 1 {
			l := bits.TrailingZeros64(mm)
			v := gv
			if dmask>>uint(l)&1 == 1 {
				v = wk.lanes[dbase+l]
			}
			wk.faultyFF[base+l] = v
		}
	}
}
