package simulate

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/netlist"
)

func seqCircuit(t *testing.T, src string) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSequentialShiftRegister: deterministic pipeline — the flip delivered
// at frame 0 reaches the PO exactly at frame 3, with probability 1.
func TestSequentialShiftRegister(t *testing.T) {
	c := seqCircuit(t, `
INPUT(a)
OUTPUT(z)
d0 = BUFF(a)
q0 = DFF(d0)
q1 = DFF(q0)
q2 = DFF(q1)
z  = BUFF(q2)
`)
	site := c.ByName("d0")
	for frames, want := range map[int]float64{1: 0, 2: 0, 3: 0, 4: 1, 5: 1} {
		s := NewSequential(c, SeqOptions{Frames: frames, Trials: 256, Seed: 1})
		if got := s.PDetect(site).PDetect; got != want {
			t.Errorf("frames=%d: PDetect = %v, want %v", frames, got, want)
		}
	}
}

// TestSequentialFrameOneMatchesCombinational: with one frame and no FF in
// the path, the sequential estimator must agree with the combinational
// ground truth (y = AND(a, b): flip at a detected iff b = 1).
func TestSequentialFrameOneMatchesCombinational(t *testing.T) {
	c := seqCircuit(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")
	s := NewSequential(c, SeqOptions{Frames: 1, Trials: 1 << 15, Seed: 2})
	r := s.PDetect(c.ByName("a"))
	if math.Abs(r.PDetect-0.5) > 5*r.StdErr+1e-9 {
		t.Errorf("PDetect = %v ± %v, want 0.5", r.PDetect, r.StdErr)
	}
}

// TestSequentialMonotoneInFrames: a larger frame budget can only help.
func TestSequentialMonotoneInFrames(t *testing.T) {
	c := seqCircuit(t, `
INPUT(a)
INPUT(b)
OUTPUT(z)
g = AND(a, b)
q = DFF(g)
z = OR(q, b)
`)
	site := c.ByName("g")
	// One 64-trial word: with a shared seed the frame-k run consumes the
	// same random prefix as frame-(k-1), so the per-trial detection
	// indicator — and hence the estimate — is exactly monotone. (Across
	// multiple words the stream positions shift with the frame count and
	// monotonicity only holds statistically.)
	prev := -1.0
	for frames := 1; frames <= 4; frames++ {
		s := NewSequential(c, SeqOptions{Frames: frames, Trials: 64, Seed: 7})
		got := s.PDetect(site).PDetect
		if got < prev-1e-12 {
			t.Errorf("frames=%d: PDetect dropped from %v to %v", frames, prev, got)
		}
		prev = got
	}
}

// TestSequentialDeterminism.
func TestSequentialDeterminism(t *testing.T) {
	c := seqCircuit(t, `
INPUT(a)
OUTPUT(z)
d = NOT(a)
q = DFF(d)
z = XOR(q, a)
`)
	a := NewSequential(c, SeqOptions{Frames: 3, Trials: 2048, Seed: 9}).PDetect(c.ByName("d"))
	b := NewSequential(c, SeqOptions{Frames: 3, Trials: 2048, Seed: 9}).PDetect(c.ByName("d"))
	if a.PDetect != b.PDetect {
		t.Errorf("same seed, different results: %v vs %v", a.PDetect, b.PDetect)
	}
}

// TestSequentialDefaults: zero-value options are filled in.
func TestSequentialDefaults(t *testing.T) {
	c := seqCircuit(t, "INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n")
	s := NewSequential(c, SeqOptions{})
	r := s.PDetect(c.ByName("a"))
	if r.Frames != 1 || r.Trials < 10000 {
		t.Errorf("defaults not applied: %+v", r)
	}
	if r.PDetect != 1 {
		t.Errorf("buffer to PO must always detect: %v", r.PDetect)
	}
}
