package simulate

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/logic"
	"repro/internal/netlist"
)

func mustParse(t *testing.T, src string) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestEngineMatchesScalarEval simulates random circuits with the word engine
// and re-evaluates every pattern bit with the scalar evaluator.
func TestEngineMatchesScalarEval(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for seed := uint64(0); seed < 5; seed++ {
		c := gen.SmallRandomSequential(seed)
		eng := NewEngine(c)
		words := make(map[netlist.ID]uint64)
		for _, s := range c.Sources() {
			w := rng.Uint64()
			words[s] = w
			eng.SetSource(s, w)
		}
		eng.Run()
		for bit := uint(0); bit < 64; bit += 17 {
			vals := make([]bool, c.N())
			for _, id := range c.Topo() {
				n := c.Node(id)
				switch {
				case n.IsSource():
					vals[id] = words[id]>>bit&1 == 1
				default:
					ins := make([]bool, len(n.Fanin))
					for i, f := range n.Fanin {
						ins[i] = vals[f]
					}
					vals[id] = logic.EvalBool(n.Kind, ins)
				}
				if got := eng.ValueBit(id, bit); got != vals[id] {
					t.Fatalf("seed %d node %s bit %d: engine %v, scalar %v",
						seed, c.NameOf(id), bit, got, vals[id])
				}
			}
		}
	}
}

// TestFaultySimMatchesFullResim checks cone-limited faulty re-simulation
// against a brute-force full re-simulation on an independent engine with the
// fault modeled as an injected inverter.
func TestFaultySimMatchesFullResim(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for seed := uint64(0); seed < 5; seed++ {
		c := gen.SmallRandomSequential(seed + 10)
		eng := NewEngine(c)
		w := graph.NewWalker(c)
		for trial := 0; trial < 10; trial++ {
			words := make(map[netlist.ID]uint64)
			for _, s := range c.Sources() {
				wd := rng.Uint64()
				words[s] = wd
				eng.SetSource(s, wd)
			}
			eng.Run()
			site := netlist.ID(rng.IntN(c.N()))
			cone := w.ForwardCone(site)
			got := eng.FaultySim(&cone)

			// Brute force: full faulty evaluation of every node.
			faulty := make([]uint64, c.N())
			for _, id := range c.Topo() {
				n := c.Node(id)
				if n.IsSource() {
					faulty[id] = words[id]
				} else {
					ins := make([]uint64, len(n.Fanin))
					for i, f := range n.Fanin {
						ins[i] = faulty[f]
					}
					faulty[id] = logic.EvalWord(n.Kind, ins)
				}
				if id == site {
					faulty[id] = ^faulty[id]
				}
			}
			var want uint64
			for _, obs := range c.Observed() {
				want |= faulty[obs] ^ eng.Value(obs)
			}
			if got != want {
				t.Fatalf("seed %d trial %d site %d: FaultySim=%x, brute force=%x",
					seed, trial, site, got, want)
			}
		}
	}
}

// TestMonteCarloDeterminism: same seed, same estimate; different seed,
// (almost surely) different estimate stream but close value.
func TestMonteCarloDeterminism(t *testing.T) {
	c := gen.SmallRandom(3)
	site := netlist.ID(c.N() - 1)
	a := NewMonteCarlo(c, MCOptions{Vectors: 2048, Seed: 99}).EPP(site)
	b := NewMonteCarlo(c, MCOptions{Vectors: 2048, Seed: 99}).EPP(site)
	if a.PSensitized != b.PSensitized || a.Detected != b.Detected {
		t.Fatalf("same seed, different results: %v vs %v", a, b)
	}
}

// TestMonteCarloKnownCircuit: on y = AND(site, b) with b uniform, an SEU at
// site propagates iff b=1, so P = 0.5. Standard error bounds the check.
func TestMonteCarloKnownCircuit(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(a, b)
`)
	mc := NewMonteCarlo(c, MCOptions{Vectors: 1 << 16, Seed: 7})
	r := mc.EPP(c.ByName("a"))
	if math.Abs(r.PSensitized-0.5) > 5*r.StdErr+1e-9 {
		t.Errorf("P(a propagates) = %v ± %v, want 0.5", r.PSensitized, r.StdErr)
	}
	// The output node itself always propagates (it is observed).
	r = mc.EPP(c.ByName("y"))
	if r.PSensitized != 1 {
		t.Errorf("P(y) = %v, want 1", r.PSensitized)
	}
}

// TestMonteCarloUnobservableNode: a node with no path to any observation
// point has P_sensitized exactly 0.
func TestMonteCarloUnobservableNode(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
OUTPUT(y)
y = BUFF(a)
dead = NOT(a)
dead2 = NOT(dead)
`)
	mc := NewMonteCarlo(c, MCOptions{Vectors: 512, Seed: 1})
	if r := mc.EPP(c.ByName("dead")); r.PSensitized != 0 {
		t.Errorf("dead node P = %v", r.PSensitized)
	}
}

// TestMonteCarloXorAlwaysPropagates: y = XOR(a, b): a flip at a always
// flips y regardless of b.
func TestMonteCarloXorAlwaysPropagates(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = XOR(a, b)
`)
	mc := NewMonteCarlo(c, MCOptions{Vectors: 4096, Seed: 5})
	if r := mc.EPP(c.ByName("a")); r.PSensitized != 1 {
		t.Errorf("XOR propagation = %v, want exactly 1", r.PSensitized)
	}
}

// TestBiasedWordStatistics: the dyadic bias generator produces the requested
// ones-density within Monte Carlo tolerance.
func TestBiasedWordStatistics(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	for _, p := range []float64{0, 0.125, 0.3, 0.5, 0.8125, 1} {
		ones, total := 0, 0
		for i := 0; i < 4096; i++ {
			w := biasedWord(rng, p)
			for ; w != 0; w &= w - 1 {
				ones++
			}
			total += 64
		}
		got := float64(ones) / float64(total)
		tol := 4 * math.Sqrt(p*(1-p)/float64(total)) // ~4 sigma
		if math.Abs(got-p) > tol+1.0/65536 {         // + dyadic quantization
			t.Errorf("biasedWord(%v): density %v", p, got)
		}
	}
}

// TestVectorSourceBias: VectorSource honours per-source probabilities.
func TestVectorSourceBias(t *testing.T) {
	c := mustParse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")
	prob := make([]float64, c.N())
	prob[c.ByName("a")] = 1.0
	prob[c.ByName("b")] = 0.0
	src := NewVectorSource(1, prob)
	eng := NewEngine(c)
	src.Fill(eng)
	if eng.Value(c.ByName("a")) != ^uint64(0) {
		t.Error("p=1 source not all ones")
	}
	if eng.Value(c.ByName("b")) != 0 {
		t.Error("p=0 source not all zeros")
	}
}

// TestEngineConstants: tie cells evaluate to their constants.
func TestEngineConstants(t *testing.T) {
	b := netlist.NewBuilder("ties")
	one := b.Const("one", true)
	zero := b.Const("zero", false)
	in := b.Input("a")
	y := b.And("y", in, one)
	z := b.Or("z", in, zero)
	b.MarkOutput(y)
	b.MarkOutput(z)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(c)
	eng.SetSource(in, 0xF0F0)
	eng.Run()
	if eng.Value(y) != 0xF0F0 || eng.Value(z) != 0xF0F0 {
		t.Errorf("constants mis-evaluated: y=%x z=%x", eng.Value(y), eng.Value(z))
	}
}
