// Per-site Monte Carlo estimator of P_sensitized — the paper-era baseline
// shape; see MCBatch for the production shared-good-sim form.

package simulate

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/graph"
	"repro/internal/netlist"
)

// MCOptions configure the Monte Carlo error-propagation estimator.
type MCOptions struct {
	// Vectors is the number of random input vectors to apply (rounded up to
	// a multiple of 64). Default 10000.
	Vectors int
	// Seed makes runs reproducible. Two estimators with equal seeds apply
	// identical vector sequences.
	Seed uint64
	// SourceProb optionally biases each source's probability of logic 1
	// (indexed by node ID); nil means 0.5 everywhere.
	SourceProb []float64
	// SharedVectors selects the shared-stream vector regime: the vectors of
	// 64-pattern word w are drawn from a stream seeded by (Seed, w), so
	// every error site sees the same vector sequence. This is the regime
	// MCBatch is built on — the good simulation of a word can be shared by
	// all sites only if the sites share the word's vectors — and setting it
	// on a per-site MonteCarlo reproduces MCBatch's per-site results
	// bit-exactly (see TestMCBatchMatchesPerSite). Each site's estimate is
	// unchanged in distribution either way; what changes is the joint
	// behavior (estimates of different sites become correlated through the
	// shared vectors) and the per-site detection counts for a given Seed.
	//
	// Default false: each site draws its own stream seeded by (Seed, site),
	// the historical regime, kept so existing per-site results stay
	// reproducible (both regimes are pinned by TestMonteCarloSeedGolden).
	SharedVectors bool
	// OnWord, when non-nil, is invoked by the batched kernels (MCBatch,
	// MCSeqBatch) after each completed 64-vector word with the number of
	// words finished so far and the total. Calls are serialized under a
	// mutex, so done is strictly increasing and calls never overlap — the
	// word-granular progress signal the word-major sweeps can honestly
	// report (per-site results all finalize together at the last word). The
	// per-site estimators ignore it. A panic in the callback aborts the
	// sweep with a *PanicError instead of crashing the worker goroutine.
	OnWord func(done, total int)
	// Resume, when non-nil, seeds a batched sweep from a prior partial run:
	// words with Skip[w] set are not re-run and the saved Counters are
	// folded into the totals before the sweep starts. Because every counter
	// is an integer sum over words under the shared-stream vector regime,
	// the completed sweep is bit-identical to an uninterrupted one. The
	// per-site estimators ignore it.
	Resume *Resume
	// OnCommit, when non-nil, is invoked by the batched kernels under the
	// merge mutex after each word's counters are folded into the sweep
	// totals, before OnWord — the durability hook checkpointing rides on.
	// snap returns a copy of the totals consistent with every committed
	// word including this one; call it only if the commit will be
	// persisted. Setting OnCommit switches the sweep to per-word merging
	// (workers fold into the shared totals after every word instead of once
	// at exit), which is what makes the snapshot meaningful mid-sweep. A
	// non-nil error aborts the sweep and is returned verbatim.
	OnCommit func(word int, snap func() Counters) error
	// OnAbort, when non-nil alongside OnCommit, is invoked once after the
	// sweep's workers have stopped on any failed or truncated run —
	// cancellation, deadline, budget stop, recovered panic — with a counter
	// snapshot consistent with every committed word (the per-word merge
	// regime guarantees the totals never include an uncommitted word). The
	// durability layer uses it to flush the final partial state that the
	// interval-based commit cadence may not have written yet.
	OnAbort func(snap Counters)
	// MaxNewWords, when > 0, bounds the number of words one sweep call may
	// process (not counting words skipped via Resume). When it truncates
	// the sweep, the kernel processes exactly that many words and returns
	// ErrWordBudget — combined with OnCommit the completed words are
	// durable, so repeated budgeted calls converge to completion.
	MaxNewWords int
}

// Resume seeds a batched Monte Carlo sweep with the completed work of a
// prior partial run; see MCOptions.Resume.
type Resume struct {
	// Skip marks the 64-vector words already completed, indexed by word.
	// Its length must equal the sweep's word count.
	Skip []bool
	// Counters is the integer counter snapshot over exactly the skipped
	// words (nil means all-zero, a fresh start).
	Counters *Counters
}

// Counters is a snapshot of a batched sweep's integer totals: the per-site
// (and, multi-cycle, per-frame) detection tallies plus the work counters of
// MCStats that accumulate per word. Everything in it is a plain sum over
// completed words, which is what lets a resumed sweep fold it back in with
// bit-identical results.
type Counters struct {
	Detected []int64 // per site
	Later    []int64 // per site, multi-cycle kernels only
	Frames   []int64 // frame-major frames×n, multi-cycle kernels only

	Words        int64
	GoodSims     int64
	LaneSims     int64
	SweptMembers int64
}

func (o *MCOptions) setDefaults() {
	if o.Vectors <= 0 {
		o.Vectors = 10000
	}
}

// Words returns the number of 64-vector words a sweep with these options
// applies — the unit count word-major checkpoints are tracked in.
func (o MCOptions) Words() int {
	o.setDefaults()
	return (o.Vectors + 63) / 64
}

// MCResult is the Monte Carlo estimate of P_sensitized for one error site.
type MCResult struct {
	Site        netlist.ID
	PSensitized float64 // detected / applied
	StdErr      float64 // binomial standard error of the estimate
	Vectors     int     // vectors actually applied (multiple of 64)
	Detected    int     // vectors on which an observation point flipped
}

// String renders the estimate with its standard error.
func (r MCResult) String() string {
	return fmt.Sprintf("site %d: P=%0.4f ± %0.4f (%d/%d vectors)",
		r.Site, r.PSensitized, r.StdErr, r.Detected, r.Vectors)
}

// MonteCarlo estimates P_sensitized by random-vector fault injection: the
// prior-art method the paper compares against, kept in its per-site shape
// (one vector stream and one good simulation per site per word — the cost
// model Table 2's SimT column reports). For each 64-pattern word it runs a
// good simulation, injects a flip at the error site, re-simulates the fault
// cone only, and counts patterns where any reachable observation point
// differs. Production all-sites sweeps should use MCBatch, which shares the
// good simulations across sites; with MCOptions.SharedVectors set this
// estimator reproduces MCBatch's per-site results bit-exactly, which is how
// the two are conformance-tested against each other.
type MonteCarlo struct {
	eng    *Engine
	walker *graph.Walker
	opt    MCOptions
}

// NewMonteCarlo returns an estimator for circuit c.
func NewMonteCarlo(c *netlist.Circuit, opt MCOptions) *MonteCarlo {
	opt.setDefaults()
	return &MonteCarlo{
		eng:    NewEngine(c),
		walker: graph.NewWalker(c),
		opt:    opt,
	}
}

// EPP estimates the error propagation probability from the given error site
// to all reachable observation points.
func (m *MonteCarlo) EPP(site netlist.ID) MCResult {
	cone := m.walker.ForwardCone(site)
	words := (m.opt.Vectors + 63) / 64
	// Only the vector source differs between the regimes: per-site keeps one
	// decorrelated stream seeded by (Seed, site); shared re-seeds per word
	// by (Seed, w) — identical vectors for every site, the MCBatch contract.
	// One loop body, so the documented bit-exact MCBatch equivalence cannot
	// desynchronize.
	var perSiteSrc *VectorSource
	if !m.opt.SharedVectors {
		perSiteSrc = NewVectorSource(m.opt.Seed^(uint64(site)*0xbf58476d1ce4e5b9+1), m.opt.SourceProb)
	}
	detected := 0
	for w := 0; w < words; w++ {
		src := perSiteSrc
		if src == nil {
			src = NewVectorSource(wordSeed(m.opt.Seed, int64(w)), m.opt.SourceProb)
		}
		src.Fill(m.eng)
		m.eng.Run()
		detected += bits.OnesCount64(m.eng.FaultySim(&cone))
	}
	n := words * 64
	p := float64(detected) / float64(n)
	return MCResult{
		Site:        site,
		PSensitized: p,
		StdErr:      math.Sqrt(p * (1 - p) / float64(n)),
		Vectors:     n,
		Detected:    detected,
	}
}

// EPPAll estimates P_sensitized for every node ID in sites, serially on one
// engine. It exists for baseline comparisons; the production all-sites path
// is MCBatch.EPPAll, which shares each word's good simulation across all
// sites and parallelizes over words.
func (m *MonteCarlo) EPPAll(sites []netlist.ID) []MCResult {
	out := make([]MCResult, len(sites))
	for i, s := range sites {
		out[i] = m.EPP(s)
	}
	return out
}
