// Shared-good-sim batched Monte Carlo kernel for the single-cycle
// P_sensitized estimate, plus the word-major sweep driver and counter
// plumbing shared with the multi-cycle kernel.

package simulate

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sched"
)

// mcLanes is the lane count of one Monte Carlo site group: like the batched
// EPP engine, one bit of a uint64 lane mask per site.
const mcLanes = 64

// MCStats are the work counters of one MCBatch.EPPAll sweep, the quantities
// the shared-good-sim design optimizes. GoodSims == Words is the kernel's
// defining invariant: the good machine depends only on the vectors, never on
// the error site, so exactly one full-circuit simulation is performed per
// 64-vector word — against Words × Sites for the per-site estimator.
type MCStats struct {
	Words        int64 // 64-vector words applied
	GoodSims     int64 // full-circuit good simulations (one per word)
	LaneSims     int64 // faulty node re-evaluations, summed over sites and words
	SweptMembers int64 // union-cone members visited, summed over groups and words
	Sites        int64 // error sites estimated
	Unobservable int64 // sites excluded up front (no reachable observation point)
}

// MCBatch is the batched Monte Carlo error-propagation estimator: the same
// random-vector fault-injection semantics as MonteCarlo, restructured so the
// good-machine work is shared across all error sites.
//
// The per-site estimator re-runs the full good simulation once per site per
// word — O(sites × words) full-circuit simulations where O(words) suffices,
// because the good values depend only on the vectors. MCBatch inverts the
// loops: the outer loop claims 64-vector words (one good simulation each),
// and the inner loop re-simulates every site's fault cone against those good
// values. Sites are packed into 64-lane groups by the cone-locality
// scheduler (sched.ConeLocality), so one pass over a group's union cone
// serves 64 sites and the union stays close to a single cone; sites that
// reach no observation point are excluded from the groups entirely (their
// P_sensitized is identically 0). Faulty evaluation per lane is bitwise
// identical to Engine.FaultySim over the site's own cone, so per-site
// detection counts — and therefore every MCResult — are independent of the
// grouping.
//
// Vectors are drawn from the shared-stream regime (one stream per word,
// seeded by (Seed, word index) — see MCOptions.SharedVectors): every site
// sees the same vectors, which is what makes the good sharing sound. A
// per-site MonteCarlo with SharedVectors set reproduces MCBatch's results
// bit-exactly; the estimate of each site is unchanged in distribution, but
// estimates of different sites are correlated through the shared vectors
// (see the MCOptions.SharedVectors contract).
//
// Word claims are distributed over workers by an atomic cursor. Detection
// counts are integers summed per site, so results are identical at any
// worker count. An MCBatch may be reused for repeated EPPAll calls but is
// not safe for concurrent use.
type MCBatch struct {
	c   *netlist.Circuit
	opt MCOptions

	groups     []mcGroup
	maxMembers int // largest group union cone, sizes the lane scratch
	skipped    int // sites excluded as unobservable

	stats MCStats
}

// mcGroup is one scheduled 64-lane site group with its precomputed union
// cone: members in combinational level (= topological) order, a per-member
// lane-membership mask, and per lane the member index of its error site.
type mcGroup struct {
	sites   []netlist.ID
	members []netlist.ID
	mask    []uint64
	siteIdx [mcLanes]int32
}

// NewMCBatch builds the batched estimator for circuit c: schedules all
// observable sites by cone locality and extracts one union cone per 64-site
// group. The precomputed structures are shared read-only by all EPPAll
// workers.
func NewMCBatch(c *netlist.Circuit, opt MCOptions) *MCBatch {
	opt.setDefaults()
	m := &MCBatch{c: c, opt: opt}
	m.groups, m.maxMembers, m.skipped = buildMCGroups(c)
	return m
}

// buildMCGroups schedules all observable sites by cone locality and extracts
// one strike-frame union cone per 64-site group — the shared front half of
// NewMCBatch and NewMCSeqBatch. Cones stop at flip-flop boundaries; skipped
// counts the sites excluded because no observation point is reachable.
func buildMCGroups(c *netlist.Circuit) (groups []mcGroup, maxMembers, skipped int) {
	// Observable sites only, in cone-locality order: a site whose signature
	// is zero reaches no observation point, so no vector can ever detect it.
	sig := c.ObsSignatures()
	order := sched.ConeLocality(c).Order
	sites := make([]netlist.ID, 0, len(order))
	for _, id := range order {
		if sig[id] != 0 {
			sites = append(sites, id)
		}
	}
	skipped = c.N() - len(sites)

	n := c.N()
	stamp := make([]int32, n)
	pos := make([]int32, n)
	maskTmp := make([]uint64, n)
	for i := range stamp {
		stamp[i] = -1
	}
	var stack, touched, membuf []netlist.ID
	var counts []int32
	foIdx, foArr := c.FanoutCSR()
	fiIdx, fiArr := c.FaninCSR()
	kinds := c.Kinds()
	levels := c.Levels()

	for lo := 0; lo < len(sites); lo += mcLanes {
		hi := lo + mcLanes
		if hi > len(sites) {
			hi = len(sites)
		}
		gi := int32(len(groups))
		gsites := sites[lo:hi]

		// Union-cone DFS from every lane's site, accumulating lane masks.
		touched = touched[:0]
		stack = stack[:0]
		for _, site := range gsites {
			if stamp[site] != gi {
				stamp[site] = gi
				maskTmp[site] = 0
				touched = append(touched, site)
				stack = append(stack, site)
			}
		}
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, o := range foArr[foIdx[id]:foIdx[id+1]] {
				if stamp[o] == gi {
					continue
				}
				if kinds[o] == logic.DFF {
					continue // time-frame boundary: do not cross
				}
				stamp[o] = gi
				maskTmp[o] = 0
				touched = append(touched, o)
				stack = append(stack, o)
			}
		}
		// Counting sort by combinational level: a valid topological order.
		maxLv := 0
		for _, id := range touched {
			if lv := levels[id]; lv > maxLv {
				maxLv = lv
			}
		}
		if cap(counts) < maxLv+2 {
			counts = make([]int32, maxLv+2)
		}
		cnt := counts[:maxLv+2]
		for i := range cnt {
			cnt[i] = 0
		}
		for _, id := range touched {
			cnt[levels[id]+1]++
		}
		for lv := 1; lv < len(cnt); lv++ {
			cnt[lv] += cnt[lv-1]
		}
		if cap(membuf) < len(touched) {
			membuf = make([]netlist.ID, len(touched))
		}
		membuf = membuf[:len(touched)]
		for _, id := range touched {
			lv := levels[id]
			membuf[cnt[lv]] = id
			cnt[lv]++
		}

		g := mcGroup{
			sites:   append([]netlist.ID(nil), gsites...),
			members: append([]netlist.ID(nil), membuf...),
			mask:    make([]uint64, len(membuf)),
		}
		for i, id := range g.members {
			pos[id] = int32(i)
		}
		// Lane masks by forward propagation in topological order: a node is
		// on-path for lane l iff it is lane l's site or has an on-path fanin.
		for lane, site := range gsites {
			maskTmp[site] |= 1 << uint(lane)
			g.siteIdx[lane] = pos[site]
		}
		for lane := len(gsites); lane < mcLanes; lane++ {
			g.siteIdx[lane] = -1
		}
		for i, id := range g.members {
			mk := maskTmp[id]
			if kinds[id].IsGate() {
				for _, f := range fiArr[fiIdx[id]:fiIdx[id+1]] {
					if stamp[f] == gi {
						mk |= maskTmp[f]
					}
				}
				maskTmp[id] = mk
			}
			g.mask[i] = mk
		}
		if len(g.members) > maxMembers {
			maxMembers = len(g.members)
		}
		groups = append(groups, g)
	}
	return groups, maxMembers, skipped
}

// Circuit returns the simulated circuit.
func (m *MCBatch) Circuit() *netlist.Circuit { return m.c }

// Stats returns the work counters of the most recent EPPAll call.
func (m *MCBatch) Stats() MCStats { return m.stats }

// wordWorker is the per-goroutine state of a word-major sweep, shared by the
// MCBatch and MCSeqBatch drivers: runWord processes one claimed 64-vector
// word; merge folds the worker's detection counts and work counters into
// the sweep totals (called under the driver's mutex — at worker exit
// normally, after every word in the per-word commit regime); reset zeroes
// the local tallies between per-word merges.
type wordWorker interface {
	runWord(w int64)
	merge(tot *mcTotals)
	reset()
}

// mcTotals accumulates the integer counters of one word-major sweep. The
// detected slice is always present; the multi-cycle slices are non-nil only
// for MCSeqBatch sweeps. Every counter is an integer summed per site (and
// per frame), so the totals — and everything composed from them, including
// the latch-window-weighted estimate — are identical at any worker count.
type mcTotals struct {
	detected []int64 // per site: trials detected in any frame
	later    []int64 // per site: trials detected in a frame >= 1 (multi-cycle only)
	frames   []int64 // frame-major frames×n: trials with a PO difference in that frame (multi-cycle only)
	stats    MCStats
}

// mcCounters is the per-worker tally embedded by both kernels' workers: the
// per-site (and, for the multi-cycle kernel, per-frame) detection counts and
// the MCStats work counters, merged into the sweep totals under the driver's
// mutex.
type mcCounters struct {
	detected []int64
	later    []int64 // nil for single-cycle workers
	frames   []int64 // nil for single-cycle workers

	words, goodSims, laneSims, sweptMembers int64
}

func (c *mcCounters) merge(tot *mcTotals) {
	for id, d := range c.detected {
		tot.detected[id] += d
	}
	for id, d := range c.later {
		tot.later[id] += d
	}
	for i, d := range c.frames {
		tot.frames[i] += d
	}
	tot.stats.Words += c.words
	tot.stats.GoodSims += c.goodSims
	tot.stats.LaneSims += c.laneSims
	tot.stats.SweptMembers += c.sweptMembers
}

// reset zeroes the tallies so the worker can be merged per word (the
// OnCommit regime) instead of once at exit.
func (c *mcCounters) reset() {
	clear(c.detected)
	clear(c.later)
	clear(c.frames)
	c.words, c.goodSims, c.laneSims, c.sweptMembers = 0, 0, 0, 0
}

// seed folds a resumed run's counter snapshot into fresh totals, validating
// the shapes against the kernel's (n sites, frames frames; frames == 0
// means the single-cycle kernel, whose later/frames slices are nil).
func (tot *mcTotals) seed(c *Counters, n, frames int) error {
	if c == nil {
		return nil
	}
	if len(c.Detected) != n {
		return fmt.Errorf("simulate: resumed counters have %d sites, sweep has %d", len(c.Detected), n)
	}
	copy(tot.detected, c.Detected)
	if frames > 0 {
		if len(c.Later) != n || len(c.Frames) != frames*n {
			return fmt.Errorf("simulate: resumed counters have %d/%d multi-cycle entries, sweep wants %d/%d",
				len(c.Later), len(c.Frames), n, frames*n)
		}
		copy(tot.later, c.Later)
		copy(tot.frames, c.Frames)
	} else if len(c.Later) != 0 || len(c.Frames) != 0 {
		return fmt.Errorf("simulate: resumed counters carry multi-cycle entries for a single-cycle sweep")
	}
	tot.stats.Words = c.Words
	tot.stats.GoodSims = c.GoodSims
	tot.stats.LaneSims = c.LaneSims
	tot.stats.SweptMembers = c.SweptMembers
	return nil
}

// snapshot copies the totals into an exported Counters value — what
// MCOptions.OnCommit hands to the durability layer.
func (tot *mcTotals) snapshot() Counters {
	return Counters{
		Detected:     append([]int64(nil), tot.detected...),
		Later:        append([]int64(nil), tot.later...),
		Frames:       append([]int64(nil), tot.frames...),
		Words:        tot.stats.Words,
		GoodSims:     tot.stats.GoodSims,
		LaneSims:     tot.stats.LaneSims,
		SweptMembers: tot.stats.SweptMembers,
	}
}

// ErrWordBudget reports that a sweep stopped at its MaxNewWords budget with
// the remaining words unprocessed; see MCOptions.MaxNewWords.
var ErrWordBudget = errors.New("simulate: word budget exhausted")

// PanicError is a panic recovered from a word-major sweep — in a worker
// processing a word or in a user callback (OnWord/OnCommit) — converted to
// an error so one poisoned word or buggy callback aborts the sweep cleanly
// instead of crashing the process.
type PanicError struct {
	Word  int    // 64-vector word being processed; -1 if not word-bound
	Value any    // the recovered panic value
	Stack []byte // stack of the panicking goroutine at recovery
}

// Error summarizes the panic; the full stack is in Stack.
func (e *PanicError) Error() string {
	if e.Word < 0 {
		return fmt.Sprintf("simulate: panic in word sweep: %v", e.Value)
	}
	return fmt.Sprintf("simulate: panic in word sweep at word %d: %v", e.Word, e.Value)
}

// wordSweepCfg parameterizes runWordSweep; see MCOptions for the contracts
// of the optional fields.
type wordSweepCfg struct {
	workers int
	words   int    // total words of the full request
	skip    []bool // words already completed by a resumed run (nil: none)
	maxNew  int    // MaxNewWords bound (0: none)
	onWord  func(done, total int)
	commit  func(word int, snap func() Counters) error
}

// runWordSweep is the shared driver of the batched Monte Carlo kernels: it
// claims pending 64-vector words from an atomic cursor across workers
// goroutines (each with its own worker from newWorker), reports per-word
// OnWord progress under the merge mutex (so done counts are strictly
// increasing and calls never overlap), honors ctx between word claims, and
// merges per-worker counters into tot — per word under the mutex when a
// commit hook is set (so each commit's snapshot covers exactly the
// committed words), otherwise once at worker exit. Panics in workers or
// callbacks are recovered into a *PanicError that aborts the sweep; on any
// abort the partial result is discarded by the caller and the error
// returned. All counters are integers summed per site (and per frame), so
// the totals are identical at any worker count and any merge regime.
func runWordSweep(ctx context.Context, cfg wordSweepCfg, tot *mcTotals, newWorker func() wordWorker) error {
	pending := make([]int32, 0, cfg.words)
	doneBase := 0
	for w := 0; w < cfg.words; w++ {
		if cfg.skip != nil && cfg.skip[w] {
			doneBase++
			continue
		}
		pending = append(pending, int32(w))
	}
	budgetHit := false
	if cfg.maxNew > 0 && len(pending) > cfg.maxNew {
		pending = pending[:cfg.maxNew]
		budgetHit = true
	}
	if len(pending) == 0 {
		if cfg.onWord != nil && doneBase > 0 {
			cfg.onWord(doneBase, cfg.words)
		}
		return nil
	}
	workers := cfg.workers
	if workers > len(pending) {
		workers = len(pending)
	}
	if workers < 1 {
		workers = 1
	}
	var (
		cursor    atomic.Int64
		abort     atomic.Bool
		wg        sync.WaitGroup
		mu        sync.Mutex
		firstErr  error
		wordsDone = doneBase
	)
	fail := func(err error) {
		func() {
			mu.Lock()
			defer mu.Unlock()
			if firstErr == nil {
				firstErr = err
			}
		}()
		abort.Store(true)
	}
	perWordMerge := cfg.commit != nil
	// afterWord runs the post-word critical section: fold the worker's
	// counters into the totals (per-word regime), commit, then report
	// progress. The deferred recover turns a callback panic into an error
	// while the deferred unlock keeps the mutex released either way — a
	// panicking callback must never leave the sweep deadlocked.
	afterWord := func(word int, wk wordWorker) (err error) {
		mu.Lock()
		defer mu.Unlock()
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Word: word, Value: r, Stack: debug.Stack()}
			}
		}()
		if firstErr != nil {
			return firstErr
		}
		if perWordMerge {
			wk.merge(tot)
			wk.reset()
		}
		wordsDone++
		if cfg.commit != nil {
			if err := cfg.commit(word, tot.snapshot); err != nil {
				return err
			}
		}
		if cfg.onWord != nil {
			cfg.onWord(wordsDone, cfg.words)
		}
		return nil
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cur := -1
			defer func() {
				if r := recover(); r != nil {
					fail(&PanicError{Word: cur, Value: r, Stack: debug.Stack()})
				}
			}()
			wk := newWorker()
			for {
				if abort.Load() {
					break
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					break
				}
				i := cursor.Add(1) - 1
				if i >= int64(len(pending)) {
					break
				}
				cur = int(pending[i])
				wk.runWord(int64(cur))
				if perWordMerge || cfg.onWord != nil {
					if err := afterWord(cur, wk); err != nil {
						fail(err)
						break
					}
				}
				cur = -1
			}
			// The deferred unlock matters: a merge panic with the mutex
			// still held would turn the outer recover's fail() — which
			// takes the same mutex — into a self-deadlock instead of a
			// structured *PanicError.
			if !perWordMerge {
				func() {
					mu.Lock()
					defer mu.Unlock()
					wk.merge(tot)
				}()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if budgetHit {
		return ErrWordBudget
	}
	return nil
}

// EPPAll estimates P_sensitized for every node of the circuit (indexed by
// node ID) across workers goroutines (0 = GOMAXPROCS). Each 64-vector word
// costs exactly one good simulation shared by all sites. Cancellation of
// ctx is honored between word claims; on cancellation the partial estimate
// is discarded and ctx.Err() returned. Results are identical at any worker
// count.
func (m *MCBatch) EPPAll(ctx context.Context, workers int) ([]MCResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	words := (m.opt.Vectors + 63) / 64
	n := m.c.N()
	tot := &mcTotals{detected: make([]int64, n)}
	cfg := wordSweepCfg{
		workers: workers,
		words:   words,
		maxNew:  m.opt.MaxNewWords,
		onWord:  m.opt.OnWord,
		commit:  m.opt.OnCommit,
	}
	if r := m.opt.Resume; r != nil {
		if len(r.Skip) != words {
			return nil, fmt.Errorf("simulate: Resume.Skip has %d words, sweep has %d", len(r.Skip), words)
		}
		if err := tot.seed(r.Counters, n, 0); err != nil {
			return nil, err
		}
		cfg.skip = r.Skip
	}
	if err := runWordSweep(ctx, cfg, tot,
		func() wordWorker { return newMCWorker(m) }); err != nil {
		if m.opt.OnCommit != nil && m.opt.OnAbort != nil {
			m.opt.OnAbort(tot.snapshot())
		}
		return nil, err
	}
	tot.stats.Sites = int64(n)
	tot.stats.Unobservable = int64(m.skipped)
	m.stats = tot.stats

	nv := words * 64
	out := make([]MCResult, n)
	for id := 0; id < n; id++ {
		p := float64(tot.detected[id]) / float64(nv)
		out[id] = MCResult{
			Site:        netlist.ID(id),
			PSensitized: p,
			StdErr:      math.Sqrt(p * (1 - p) / float64(nv)),
			Vectors:     nv,
			Detected:    int(tot.detected[id]),
		}
	}
	return out, nil
}

// mcWorker is the per-goroutine state of one EPPAll sweep: a bit-parallel
// engine for the shared good simulation, the lane-value scratch for faulty
// re-simulation, and local counters merged under the mutex at exit.
type mcWorker struct {
	mcCounters
	m        *MCBatch
	eng      *Engine
	lanes    []uint64 // faulty lane values, member-major: lanes[i*64+lane]
	pos      []int32  // member index of node, valid where stamp == current
	stamp    []int64  // int64: one epoch per (word, group), never wraps in practice
	stampVal int64
	ins      []uint64
}

func newMCWorker(m *MCBatch) *mcWorker {
	return &mcWorker{
		mcCounters: mcCounters{detected: make([]int64, m.c.N())},
		m:          m,
		eng:        NewEngine(m.c),
		lanes:      make([]uint64, m.maxMembers*mcLanes),
		pos:        make([]int32, m.c.N()),
		stamp:      make([]int64, m.c.N()),
		ins:        make([]uint64, 0, 8),
	}
}

// runWord applies word w's shared vectors: one good simulation, then one
// union-cone faulty sweep per site group.
func (wk *mcWorker) runWord(w int64) {
	m := wk.m
	src := NewVectorSource(wordSeed(m.opt.Seed, w), m.opt.SourceProb)
	src.Fill(wk.eng)
	wk.eng.Run()
	wk.words++
	wk.goodSims++

	c := m.c
	good := wk.eng.values
	fiIdx, fiArr := wk.eng.fiIdx, wk.eng.fiArr
	kinds := wk.eng.kinds
	for gi := range m.groups {
		g := &m.groups[gi]
		wk.stampVal++
		for i, id := range g.members {
			wk.stamp[id] = wk.stampVal
			wk.pos[id] = int32(i)
		}
		var det [mcLanes]uint64
		for i, id := range g.members {
			mk := g.mask[i]
			base := i * mcLanes
			for mm := mk; mm != 0; mm &= mm - 1 {
				l := bits.TrailingZeros64(mm)
				var v uint64
				if g.siteIdx[l] == int32(i) {
					// Lane l's error site: the SEU forces the complement of
					// the good value in all 64 patterns.
					v = ^good[id]
				} else {
					wk.ins = wk.ins[:0]
					for _, f := range fiArr[fiIdx[id]:fiIdx[id+1]] {
						if wk.stamp[f] == wk.stampVal && g.mask[wk.pos[f]]>>uint(l)&1 == 1 {
							wk.ins = append(wk.ins, wk.lanes[int(wk.pos[f])*mcLanes+l])
						} else {
							wk.ins = append(wk.ins, good[f])
						}
					}
					v = logic.EvalWord(kinds[id], wk.ins)
				}
				wk.lanes[base+l] = v
				if c.IsObserved(id) {
					det[l] |= v ^ good[id]
				}
			}
			wk.laneSims += int64(bits.OnesCount64(mk))
		}
		wk.sweptMembers += int64(len(g.members))
		for l, site := range g.sites {
			wk.detected[site] += int64(bits.OnesCount64(det[l]))
		}
	}
}

// wordSeed derives the deterministic vector-source seed of 64-vector word w
// in the shared-stream regime (see MCOptions.SharedVectors): every site —
// and every worker claiming the word — sees identical vectors for word w.
func wordSeed(seed uint64, w int64) uint64 {
	return seed ^ (uint64(w)*0x94d049bb133111eb + 0x2545f4914f6cdd1d)
}
