package simulate

import (
	"context"
	"errors"
	"math"
	"math/bits"
	"testing"

	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/netlist"
)

// TestMCSeqBatchMatchesSequentialShared is the kernel's conformance suite:
// for every site of random sequential circuits and several frame budgets,
// the batched multi-cycle estimate must equal a per-site Sequential run in
// the shared-vector regime BIT-EXACTLY — same detection counts, same
// trajectory, same standard error. Faulty lane evaluation is two-machine
// simulation arithmetic over the same good trajectory, so any divergence is
// a grouping or state-carry bug, not noise.
func TestMCSeqBatchMatchesSequentialShared(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		c := gen.SmallRandomSequential(seed + 50)
		for _, frames := range []int{1, 2, 4} {
			opt := MCOptions{Vectors: 256, Seed: seed + 1}
			mb := NewMCSeqBatch(c, opt, frames)
			got, err := mb.PDetectAll(context.Background(), 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != c.N() {
				t.Fatalf("seed %d: %d results for %d nodes", seed, len(got), c.N())
			}
			ps := NewSequential(c, SeqOptions{
				Frames: frames, Trials: 256, Seed: seed + 1, SharedVectors: true,
			})
			for id := 0; id < c.N(); id++ {
				want := ps.PDetect(netlist.ID(id))
				g := got[id]
				if g != want {
					t.Fatalf("seed %d frames %d site %d: batched %+v, per-site shared %+v",
						seed, frames, id, g, want)
				}
				// The weighted estimate is pure integer-counter arithmetic,
				// so it inherits the bit-exact agreement at every weight.
				for _, w := range []float64{0, 0.18, 1} {
					if g.PDetectWeighted(w) != want.PDetectWeighted(w) {
						t.Fatalf("seed %d frames %d site %d weight %v: batched %v != per-site %v",
							seed, frames, id, w, g.PDetectWeighted(w), want.PDetectWeighted(w))
					}
				}
			}
		}
	}
}

// TestMCSeqBatchStatisticalVsSequential: against the historical per-site
// regime (independent streams) the batched kernel must agree within the
// binomial noise of both estimators — the statistical half of the
// conformance story, on the combinational testdata circuits (where every
// frame is an independent trial) and a flip-flop-bearing random circuit.
func TestMCSeqBatchStatisticalVsSequential(t *testing.T) {
	circuits := map[string]*netlist.Circuit{
		"small-seq": gen.SmallRandomSequential(77),
	}
	for _, file := range []string{"c17.bench", "majority.bench"} {
		c, err := bench.ParseFile("../../testdata/" + file)
		if err != nil {
			t.Fatal(err)
		}
		circuits[file] = c
	}
	for name, c := range circuits {
		mb := NewMCSeqBatch(c, MCOptions{Vectors: 1 << 13, Seed: 5}, 3)
		got, err := mb.PDetectAll(context.Background(), 2)
		if err != nil {
			t.Fatal(err)
		}
		sim := NewSequential(c, SeqOptions{Frames: 3, Trials: 1 << 13, Seed: 99})
		for id := 0; id < c.N(); id++ {
			ref := sim.PDetect(netlist.ID(id))
			tol := 5*(got[id].StdErr+ref.StdErr) + 1e-9
			if d := math.Abs(got[id].PDetect - ref.PDetect); d > tol {
				t.Errorf("%s site %d: batched %v, per-site %v (|diff| %v > %v)",
					name, id, got[id].PDetect, ref.PDetect, d, tol)
			}
		}
	}
}

// TestMCSeqBatchShiftRegister: deterministic pipeline — the flip delivered at
// frame 0 reaches the PO exactly at frame 4, with probability 1, through
// three flip-flop stages.
func TestMCSeqBatchShiftRegister(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
OUTPUT(z)
d0 = BUFF(a)
q0 = DFF(d0)
q1 = DFF(q0)
q2 = DFF(q1)
z  = BUFF(q2)
`)
	site := c.ByName("d0")
	for frames, want := range map[int]float64{1: 0, 2: 0, 3: 0, 4: 1, 5: 1} {
		mb := NewMCSeqBatch(c, MCOptions{Vectors: 256, Seed: 1}, frames)
		got, err := mb.PDetectAll(context.Background(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if got[site].PDetect != want {
			t.Errorf("frames=%d: PDetect = %v, want %v", frames, got[site].PDetect, want)
		}
	}
}

// TestMCSeqBatchMonotoneFrames: under the shared regime every word's stream
// is re-seeded by (Seed, w) and the frame-k draws are a prefix of the
// frame-(k+1) draws, so the per-trial detection indicator — and hence every
// site's estimate — is exactly monotone in the frame budget, at any word
// count.
func TestMCSeqBatchMonotoneFrames(t *testing.T) {
	c := gen.SmallRandomSequential(31)
	prev := make([]float64, c.N())
	for i := range prev {
		prev[i] = -1
	}
	for frames := 1; frames <= 4; frames++ {
		mb := NewMCSeqBatch(c, MCOptions{Vectors: 512, Seed: 7}, frames)
		got, err := mb.PDetectAll(context.Background(), 2)
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < c.N(); id++ {
			if got[id].PDetect < prev[id] {
				t.Fatalf("site %d: PDetect dropped from %v to %v at frames=%d",
					id, prev[id], got[id].PDetect, frames)
			}
			prev[id] = got[id].PDetect
		}
	}
}

// TestMCSeqBatchWorkerInvariance: detection counts are summed integers, so
// the result is identical at any worker count.
func TestMCSeqBatchWorkerInvariance(t *testing.T) {
	c := gen.SmallRandomSequential(61)
	mb := NewMCSeqBatch(c, MCOptions{Vectors: 512, Seed: 7}, 3)
	base, err := mb.PDetectAll(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		got, err := mb.PDetectAll(context.Background(), workers)
		if err != nil {
			t.Fatal(err)
		}
		for id := range got {
			if got[id] != base[id] {
				t.Fatalf("workers=%d site %d: %+v != %+v", workers, id, got[id], base[id])
			}
		}
	}
}

// TestMCSeqBatchGoodSimInvariant: exactly one good simulation per (64-vector
// word, frame), regardless of site count — the defining counter of the
// frame-unrolled kernel. The per-site Sequential estimator pays
// words × frames × sites.
func TestMCSeqBatchGoodSimInvariant(t *testing.T) {
	c := gen.SmallRandomSequential(42)
	vectors, frames := 1000, 3 // rounds up to 16 words
	mb := NewMCSeqBatch(c, MCOptions{Vectors: vectors, Seed: 1}, frames)
	if _, err := mb.PDetectAll(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	st := mb.Stats()
	words := int64((vectors + 63) / 64)
	if st.Words != words || st.GoodSims != words*int64(frames) {
		t.Fatalf("stats = %+v, want Words == %d, GoodSims == %d (one per word per frame)",
			st, words, words*int64(frames))
	}
	if st.Sites != int64(c.N()) {
		t.Fatalf("Sites = %d, want %d", st.Sites, c.N())
	}
	if perSite := words * int64(frames) * int64(c.N()); perSite < 5*st.GoodSims {
		t.Fatalf("good-sim saving %d/%d < 5x", perSite, st.GoodSims)
	}
	if st.LaneSims <= 0 || st.SweptMembers <= 0 {
		t.Fatalf("work counters not recorded: %+v", st)
	}
}

// TestMCSeqBatchUnobservableSites: sites with no reachable observation point
// are excluded from the lane groups and report P = 0 with full trial
// accounting in every frame budget.
func TestMCSeqBatchUnobservableSites(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
INPUT(b)
OUTPUT(y)
dead = AND(a, b)
y = OR(a, b)
`)
	mb := NewMCSeqBatch(c, MCOptions{Vectors: 128, Seed: 3}, 2)
	out, err := mb.PDetectAll(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	dead := c.ByName("dead")
	if out[dead].PDetect != 0 {
		t.Fatalf("dead node: %+v, want P = 0", out[dead])
	}
	if out[dead].Trials != 128 || out[dead].Frames != 2 {
		t.Fatalf("dead node accounting = %+v, want 128 trials over 2 frames", out[dead])
	}
	if got := mb.Stats().Unobservable; got != 1 {
		t.Fatalf("Stats().Unobservable = %d, want 1 (just the dead gate)", got)
	}
}

// TestMCSeqBatchCancellation: a pre-cancelled context aborts before (or
// promptly after) the first word and surfaces ctx.Err() — cancellation is
// word-granular, never waiting for the sweep to drain.
func TestMCSeqBatchCancellation(t *testing.T) {
	c := gen.SmallRandomSequential(13)
	mb := NewMCSeqBatch(c, MCOptions{Vectors: 1 << 14, Seed: 5}, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mb.PDetectAll(ctx, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestMCSeqBatchOnWord: the word-granular progress hook fires once per
// completed word with strictly increasing done counts ending at the total —
// what the engine layer's streaming progress builds on. MCBatch shares the
// hook and contract.
func TestMCSeqBatchOnWord(t *testing.T) {
	c := gen.SmallRandomSequential(21)
	wantWords := (520 + 63) / 64
	for _, kernel := range []string{"seq", "single"} {
		// The hook runs on sweep worker goroutines under the driver's mutex,
		// so record the (done, total) pairs and assert only after the sweep
		// returns — a t.Fatalf from inside would strand the mutex.
		var seen [][2]int
		opt := MCOptions{Vectors: 520, Seed: 2, OnWord: func(done, total int) {
			seen = append(seen, [2]int{done, total})
		}}
		var err error
		if kernel == "seq" {
			_, err = NewMCSeqBatch(c, opt, 2).PDetectAll(context.Background(), 3)
		} else {
			_, err = NewMCBatch(c, opt).EPPAll(context.Background(), 3)
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != wantWords {
			t.Fatalf("%s: OnWord fired %d times, want %d", kernel, len(seen), wantWords)
		}
		for i, s := range seen {
			if s[0] != i+1 || s[1] != wantWords {
				t.Fatalf("%s: call %d was OnWord(%d, %d), want (%d, %d)", kernel, i, s[0], s[1], i+1, wantWords)
			}
		}
	}
}

// TestMCSeqBatchSeedGolden pins the shared-regime multi-cycle stream for a
// fixed seed: the per-site Sequential value in the shared regime and the
// batched kernel must keep reproducing it verbatim. If the value changes, a
// seeding or state-carry change has silently broken reproducibility.
func TestMCSeqBatchSeedGolden(t *testing.T) {
	c := gen.SmallRandomSequential(1)
	site := netlist.ID(2) // mid-probability site: 0.1 < P < 0.9
	shared := NewSequential(c, SeqOptions{Frames: 3, Trials: 1024, Seed: 1, SharedVectors: true}).PDetect(site)
	t.Logf("shared: %+v", shared)
	const wantDetected = 130
	if got := int(shared.PDetect * float64(shared.Trials)); got != wantDetected {
		t.Errorf("shared regime: detected = %d/%d, want %d (multi-cycle word stream changed!)",
			got, shared.Trials, wantDetected)
	}
	batched, err := NewMCSeqBatch(c, MCOptions{Vectors: 1024, Seed: 1}, 3).PDetectAll(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if batched[site].PDetect != shared.PDetect {
		t.Errorf("MCSeqBatch PDetect = %v, want shared-regime %v", batched[site].PDetect, shared.PDetect)
	}
}

// TestMCSeqBatchFrameCounters: the per-frame detection counters are
// consistent with the joint counts — the union over all frames is Detected,
// the union over frames >= 1 is DetectedLater, each frame's count is
// bounded by the union, and frame 0's count can never exceed Detected −
// DetectedLater + DetectedLater (trivially) while a strike-only trial shows
// up in frame 0 alone.
func TestMCSeqBatchFrameCounters(t *testing.T) {
	c := gen.SmallRandomSequential(23)
	const frames = 4
	mb := NewMCSeqBatch(c, MCOptions{Vectors: 512, Seed: 3}, frames)
	got, err := mb.PDetectAll(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < frames; f++ {
		if fd := mb.FrameDetected(f); len(fd) != c.N() {
			t.Fatalf("FrameDetected(%d) has %d entries for %d nodes", f, len(fd), c.N())
		}
	}
	if mb.FrameDetected(-1) != nil || mb.FrameDetected(frames) != nil {
		t.Fatal("out-of-range FrameDetected returned a slice")
	}
	for id := 0; id < c.N(); id++ {
		r := got[id]
		if r.Detected < r.DetectedLater || r.DetectedLater < 0 {
			t.Fatalf("site %d: Detected %d < DetectedLater %d", id, r.Detected, r.DetectedLater)
		}
		if want := float64(r.Detected) / float64(r.Trials); r.PDetect != want {
			t.Fatalf("site %d: PDetect %v != Detected/Trials %v", id, r.PDetect, want)
		}
		var sumLater, maxAny int64
		for f := 0; f < frames; f++ {
			fd := mb.FrameDetected(f)[id]
			if fd < 0 || fd > int64(r.Detected) {
				t.Fatalf("site %d frame %d: count %d outside [0, Detected=%d]", id, f, fd, r.Detected)
			}
			if fd > maxAny {
				maxAny = fd
			}
			if f >= 1 {
				sumLater += fd
			}
		}
		// Unions bound their members and are bounded by the sums.
		if int64(r.DetectedLater) > sumLater {
			t.Fatalf("site %d: DetectedLater %d exceeds per-frame sum %d", id, r.DetectedLater, sumLater)
		}
		if maxAny > int64(r.Detected) {
			t.Fatalf("site %d: a single frame's count %d exceeds the union %d", id, maxAny, r.Detected)
		}
		// Frame 0 alone accounts for every strike-only trial.
		if f0 := mb.FrameDetected(0)[id]; int64(r.Detected-r.DetectedLater) > f0 {
			t.Fatalf("site %d: strike-only %d exceeds frame-0 count %d", id, r.Detected-r.DetectedLater, f0)
		}
	}
}

// TestMCSeqBatchFrameCountersWorkerInvariance: the per-frame counters are
// folded integers, identical at any worker count.
func TestMCSeqBatchFrameCountersWorkerInvariance(t *testing.T) {
	c := gen.SmallRandomSequential(29)
	const frames = 3
	mb := NewMCSeqBatch(c, MCOptions{Vectors: 512, Seed: 11}, frames)
	if _, err := mb.PDetectAll(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	base := make([][]int64, frames)
	for f := range base {
		base[f] = append([]int64(nil), mb.FrameDetected(f)...)
	}
	for _, workers := range []int{2, 0} {
		if _, err := mb.PDetectAll(context.Background(), workers); err != nil {
			t.Fatal(err)
		}
		for f := 0; f < frames; f++ {
			got := mb.FrameDetected(f)
			for id := range got {
				if got[id] != base[f][id] {
					t.Fatalf("workers=%d frame %d site %d: %d != %d", workers, f, id, got[id], base[f][id])
				}
			}
		}
	}
}

// TestMCSeqBatchPerFrameExactMasks: on a flip-flop pipeline, frame k's
// faulty sweep covers exactly the stages the divergence can have reached
// within k clock edges — not the frame-budget superset. White-box check of
// the per-(group, frame) structures on a 3-stage shift register.
func TestMCSeqBatchPerFrameExactMasks(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
OUTPUT(z)
d0 = BUFF(a)
q0 = DFF(d0)
q1 = DFF(q0)
q2 = DFF(q1)
z  = BUFF(q2)
`)
	const frames = 4
	mb := NewMCSeqBatch(c, MCOptions{Vectors: 128, Seed: 1}, frames)
	want := [][]string{
		{"q0"},                  // frame 1: one edge crossed
		{"q0", "q1"},            // frame 2
		{"q0", "q1", "q2", "z"}, // frame 3: the PO cone opens up
	}
	// All sites land in one group on a circuit this small.
	if len(mb.groups) != 1 {
		t.Fatalf("%d groups, want 1", len(mb.groups))
	}
	g := &mb.groups[0]
	if len(g.frames) != frames-1 {
		t.Fatalf("%d frame sweeps, want %d", len(g.frames), frames-1)
	}
	lane := -1
	for l, s := range g.sites {
		if s == c.ByName("d0") {
			lane = l
		}
	}
	if lane < 0 {
		t.Fatal("site d0 not in the group")
	}
	for k, names := range want {
		fr := &g.frames[k]
		members := map[string]bool{}
		for i, id := range fr.members {
			if fr.mask[i]>>uint(lane)&1 == 1 {
				members[c.NameOf(id)] = true
			}
		}
		for _, n := range names {
			if !members[n] {
				t.Errorf("frame %d: %s missing from d0's sweep (got %v)", k+1, n, members)
			}
			delete(members, n)
		}
		for n := range members {
			t.Errorf("frame %d: %s swept but unreachable within %d edges", k+1, n, k+1)
		}
	}
	// And the exactness is visible in the lane-work counter: the old
	// budget-superset design swept every later frame at the final cone
	// size, so its per-word lane cost is a strict upper bound.
	if _, err := mb.PDetectAll(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	exactLanes := mb.Stats().LaneSims
	words := int64((128 + 63) / 64)
	fin := &g.frames[frames-2]
	var perWordSuperset int64
	for i := range g.members {
		perWordSuperset += int64(bits.OnesCount64(g.mask[i]))
	}
	for f := 1; f < frames; f++ {
		for i := range fin.members {
			perWordSuperset += int64(bits.OnesCount64(fin.mask[i]))
		}
	}
	if exactLanes >= perWordSuperset*words {
		t.Errorf("LaneSims = %d, want < superset bound %d (per-frame masks should cut work)",
			exactLanes, perWordSuperset*words)
	}
}

// TestSeqResultPDetectWeighted pins the weighted-composition algebra on the
// integer counters.
func TestSeqResultPDetectWeighted(t *testing.T) {
	r := SeqResult{Trials: 200, Detected: 80, DetectedLater: 30}
	if got := r.PDetectWeighted(1); got != float64(80)/200 {
		t.Errorf("weight 1: %v, want Detected/Trials", got)
	}
	if got := r.PDetectWeighted(0); got != float64(30)/200 {
		t.Errorf("weight 0: %v, want DetectedLater/Trials", got)
	}
	if got, want := r.PDetectWeighted(0.5), (30+0.5*50)/200; got != want {
		t.Errorf("weight 0.5: %v, want %v", got, want)
	}
	if got := (SeqResult{}).PDetectWeighted(0.5); got != 0 {
		t.Errorf("zero result: %v, want 0", got)
	}
}
