package simulate

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/netlist"
)

// TestMCSeqBatchMatchesSequentialShared is the kernel's conformance suite:
// for every site of random sequential circuits and several frame budgets,
// the batched multi-cycle estimate must equal a per-site Sequential run in
// the shared-vector regime BIT-EXACTLY — same detection counts, same
// trajectory, same standard error. Faulty lane evaluation is two-machine
// simulation arithmetic over the same good trajectory, so any divergence is
// a grouping or state-carry bug, not noise.
func TestMCSeqBatchMatchesSequentialShared(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		c := gen.SmallRandomSequential(seed + 50)
		for _, frames := range []int{1, 2, 4} {
			opt := MCOptions{Vectors: 256, Seed: seed + 1}
			mb := NewMCSeqBatch(c, opt, frames)
			got, err := mb.PDetectAll(context.Background(), 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != c.N() {
				t.Fatalf("seed %d: %d results for %d nodes", seed, len(got), c.N())
			}
			ps := NewSequential(c, SeqOptions{
				Frames: frames, Trials: 256, Seed: seed + 1, SharedVectors: true,
			})
			for id := 0; id < c.N(); id++ {
				want := ps.PDetect(netlist.ID(id))
				g := got[id]
				if g.Site != want.Site || g.Frames != want.Frames ||
					g.Trials != want.Trials || g.PDetect != want.PDetect ||
					g.StdErr != want.StdErr {
					t.Fatalf("seed %d frames %d site %d: batched %+v, per-site shared %+v",
						seed, frames, id, g, want)
				}
			}
		}
	}
}

// TestMCSeqBatchStatisticalVsSequential: against the historical per-site
// regime (independent streams) the batched kernel must agree within the
// binomial noise of both estimators — the statistical half of the
// conformance story, on the combinational testdata circuits (where every
// frame is an independent trial) and a flip-flop-bearing random circuit.
func TestMCSeqBatchStatisticalVsSequential(t *testing.T) {
	circuits := map[string]*netlist.Circuit{
		"small-seq": gen.SmallRandomSequential(77),
	}
	for _, file := range []string{"c17.bench", "majority.bench"} {
		c, err := bench.ParseFile("../../testdata/" + file)
		if err != nil {
			t.Fatal(err)
		}
		circuits[file] = c
	}
	for name, c := range circuits {
		mb := NewMCSeqBatch(c, MCOptions{Vectors: 1 << 13, Seed: 5}, 3)
		got, err := mb.PDetectAll(context.Background(), 2)
		if err != nil {
			t.Fatal(err)
		}
		sim := NewSequential(c, SeqOptions{Frames: 3, Trials: 1 << 13, Seed: 99})
		for id := 0; id < c.N(); id++ {
			ref := sim.PDetect(netlist.ID(id))
			tol := 5*(got[id].StdErr+ref.StdErr) + 1e-9
			if d := math.Abs(got[id].PDetect - ref.PDetect); d > tol {
				t.Errorf("%s site %d: batched %v, per-site %v (|diff| %v > %v)",
					name, id, got[id].PDetect, ref.PDetect, d, tol)
			}
		}
	}
}

// TestMCSeqBatchShiftRegister: deterministic pipeline — the flip delivered at
// frame 0 reaches the PO exactly at frame 4, with probability 1, through
// three flip-flop stages.
func TestMCSeqBatchShiftRegister(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
OUTPUT(z)
d0 = BUFF(a)
q0 = DFF(d0)
q1 = DFF(q0)
q2 = DFF(q1)
z  = BUFF(q2)
`)
	site := c.ByName("d0")
	for frames, want := range map[int]float64{1: 0, 2: 0, 3: 0, 4: 1, 5: 1} {
		mb := NewMCSeqBatch(c, MCOptions{Vectors: 256, Seed: 1}, frames)
		got, err := mb.PDetectAll(context.Background(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if got[site].PDetect != want {
			t.Errorf("frames=%d: PDetect = %v, want %v", frames, got[site].PDetect, want)
		}
	}
}

// TestMCSeqBatchMonotoneFrames: under the shared regime every word's stream
// is re-seeded by (Seed, w) and the frame-k draws are a prefix of the
// frame-(k+1) draws, so the per-trial detection indicator — and hence every
// site's estimate — is exactly monotone in the frame budget, at any word
// count.
func TestMCSeqBatchMonotoneFrames(t *testing.T) {
	c := gen.SmallRandomSequential(31)
	prev := make([]float64, c.N())
	for i := range prev {
		prev[i] = -1
	}
	for frames := 1; frames <= 4; frames++ {
		mb := NewMCSeqBatch(c, MCOptions{Vectors: 512, Seed: 7}, frames)
		got, err := mb.PDetectAll(context.Background(), 2)
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < c.N(); id++ {
			if got[id].PDetect < prev[id] {
				t.Fatalf("site %d: PDetect dropped from %v to %v at frames=%d",
					id, prev[id], got[id].PDetect, frames)
			}
			prev[id] = got[id].PDetect
		}
	}
}

// TestMCSeqBatchWorkerInvariance: detection counts are summed integers, so
// the result is identical at any worker count.
func TestMCSeqBatchWorkerInvariance(t *testing.T) {
	c := gen.SmallRandomSequential(61)
	mb := NewMCSeqBatch(c, MCOptions{Vectors: 512, Seed: 7}, 3)
	base, err := mb.PDetectAll(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		got, err := mb.PDetectAll(context.Background(), workers)
		if err != nil {
			t.Fatal(err)
		}
		for id := range got {
			if got[id] != base[id] {
				t.Fatalf("workers=%d site %d: %+v != %+v", workers, id, got[id], base[id])
			}
		}
	}
}

// TestMCSeqBatchGoodSimInvariant: exactly one good simulation per (64-vector
// word, frame), regardless of site count — the defining counter of the
// frame-unrolled kernel. The per-site Sequential estimator pays
// words × frames × sites.
func TestMCSeqBatchGoodSimInvariant(t *testing.T) {
	c := gen.SmallRandomSequential(42)
	vectors, frames := 1000, 3 // rounds up to 16 words
	mb := NewMCSeqBatch(c, MCOptions{Vectors: vectors, Seed: 1}, frames)
	if _, err := mb.PDetectAll(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	st := mb.Stats()
	words := int64((vectors + 63) / 64)
	if st.Words != words || st.GoodSims != words*int64(frames) {
		t.Fatalf("stats = %+v, want Words == %d, GoodSims == %d (one per word per frame)",
			st, words, words*int64(frames))
	}
	if st.Sites != int64(c.N()) {
		t.Fatalf("Sites = %d, want %d", st.Sites, c.N())
	}
	if perSite := words * int64(frames) * int64(c.N()); perSite < 5*st.GoodSims {
		t.Fatalf("good-sim saving %d/%d < 5x", perSite, st.GoodSims)
	}
	if st.LaneSims <= 0 || st.SweptMembers <= 0 {
		t.Fatalf("work counters not recorded: %+v", st)
	}
}

// TestMCSeqBatchUnobservableSites: sites with no reachable observation point
// are excluded from the lane groups and report P = 0 with full trial
// accounting in every frame budget.
func TestMCSeqBatchUnobservableSites(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
INPUT(b)
OUTPUT(y)
dead = AND(a, b)
y = OR(a, b)
`)
	mb := NewMCSeqBatch(c, MCOptions{Vectors: 128, Seed: 3}, 2)
	out, err := mb.PDetectAll(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	dead := c.ByName("dead")
	if out[dead].PDetect != 0 {
		t.Fatalf("dead node: %+v, want P = 0", out[dead])
	}
	if out[dead].Trials != 128 || out[dead].Frames != 2 {
		t.Fatalf("dead node accounting = %+v, want 128 trials over 2 frames", out[dead])
	}
	if got := mb.Stats().Unobservable; got != 1 {
		t.Fatalf("Stats().Unobservable = %d, want 1 (just the dead gate)", got)
	}
}

// TestMCSeqBatchCancellation: a pre-cancelled context aborts before (or
// promptly after) the first word and surfaces ctx.Err() — cancellation is
// word-granular, never waiting for the sweep to drain.
func TestMCSeqBatchCancellation(t *testing.T) {
	c := gen.SmallRandomSequential(13)
	mb := NewMCSeqBatch(c, MCOptions{Vectors: 1 << 14, Seed: 5}, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mb.PDetectAll(ctx, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestMCSeqBatchOnWord: the word-granular progress hook fires once per
// completed word with strictly increasing done counts ending at the total —
// what the engine layer's streaming progress builds on. MCBatch shares the
// hook and contract.
func TestMCSeqBatchOnWord(t *testing.T) {
	c := gen.SmallRandomSequential(21)
	wantWords := (520 + 63) / 64
	for _, kernel := range []string{"seq", "single"} {
		// The hook runs on sweep worker goroutines under the driver's mutex,
		// so record the (done, total) pairs and assert only after the sweep
		// returns — a t.Fatalf from inside would strand the mutex.
		var seen [][2]int
		opt := MCOptions{Vectors: 520, Seed: 2, OnWord: func(done, total int) {
			seen = append(seen, [2]int{done, total})
		}}
		var err error
		if kernel == "seq" {
			_, err = NewMCSeqBatch(c, opt, 2).PDetectAll(context.Background(), 3)
		} else {
			_, err = NewMCBatch(c, opt).EPPAll(context.Background(), 3)
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != wantWords {
			t.Fatalf("%s: OnWord fired %d times, want %d", kernel, len(seen), wantWords)
		}
		for i, s := range seen {
			if s[0] != i+1 || s[1] != wantWords {
				t.Fatalf("%s: call %d was OnWord(%d, %d), want (%d, %d)", kernel, i, s[0], s[1], i+1, wantWords)
			}
		}
	}
}

// TestMCSeqBatchSeedGolden pins the shared-regime multi-cycle stream for a
// fixed seed: the per-site Sequential value in the shared regime and the
// batched kernel must keep reproducing it verbatim. If the value changes, a
// seeding or state-carry change has silently broken reproducibility.
func TestMCSeqBatchSeedGolden(t *testing.T) {
	c := gen.SmallRandomSequential(1)
	site := netlist.ID(2) // mid-probability site: 0.1 < P < 0.9
	shared := NewSequential(c, SeqOptions{Frames: 3, Trials: 1024, Seed: 1, SharedVectors: true}).PDetect(site)
	t.Logf("shared: %+v", shared)
	const wantDetected = 130
	if got := int(shared.PDetect * float64(shared.Trials)); got != wantDetected {
		t.Errorf("shared regime: detected = %d/%d, want %d (multi-cycle word stream changed!)",
			got, shared.Trials, wantDetected)
	}
	batched, err := NewMCSeqBatch(c, MCOptions{Vectors: 1024, Seed: 1}, 3).PDetectAll(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if batched[site].PDetect != shared.PDetect {
		t.Errorf("MCSeqBatch PDetect = %v, want shared-regime %v", batched[site].PDetect, shared.PDetect)
	}
}
