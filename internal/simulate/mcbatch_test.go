package simulate

import (
	"context"
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/netlist"
)

// TestMCBatchMatchesPerSite is the kernel's conformance suite: for every
// site of random sequential circuits, the batched estimate must equal a
// per-site MonteCarlo run in the shared-vector regime BIT-EXACTLY — same
// detection counts, same vectors, same standard error. Faulty lane
// evaluation is FaultySim's arithmetic over the same cone against the same
// good values, so any divergence is a grouping bug, not noise.
func TestMCBatchMatchesPerSite(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		c := gen.SmallRandomSequential(seed + 50)
		opt := MCOptions{Vectors: 256, Seed: seed + 1}
		mb := NewMCBatch(c, opt)
		got, err := mb.EPPAll(context.Background(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != c.N() {
			t.Fatalf("seed %d: %d results for %d nodes", seed, len(got), c.N())
		}
		optShared := opt
		optShared.SharedVectors = true
		ps := NewMonteCarlo(c, optShared)
		for id := 0; id < c.N(); id++ {
			want := ps.EPP(netlist.ID(id))
			g := got[id]
			if g.Site != want.Site || g.Detected != want.Detected ||
				g.Vectors != want.Vectors || g.PSensitized != want.PSensitized ||
				g.StdErr != want.StdErr {
				t.Fatalf("seed %d site %d: batched %+v, per-site shared %+v", seed, id, g, want)
			}
		}
	}
}

// TestMCBatchWorkerInvariance: detection counts are summed integers, so the
// result is identical at any worker count.
func TestMCBatchWorkerInvariance(t *testing.T) {
	c := gen.SmallRandomSequential(61)
	mb := NewMCBatch(c, MCOptions{Vectors: 512, Seed: 7})
	base, err := mb.EPPAll(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		got, err := mb.EPPAll(context.Background(), workers)
		if err != nil {
			t.Fatal(err)
		}
		for id := range got {
			if got[id] != base[id] {
				t.Fatalf("workers=%d site %d: %+v != %+v", workers, id, got[id], base[id])
			}
		}
	}
}

// TestMCBatchGoodSimInvariant: exactly one good simulation per 64-vector
// word, regardless of site count — the defining counter of the kernel. The
// per-site estimator pays words × sites.
func TestMCBatchGoodSimInvariant(t *testing.T) {
	c := gen.SmallRandomSequential(42)
	vectors := 1000 // rounds up to 16 words
	mb := NewMCBatch(c, MCOptions{Vectors: vectors, Seed: 1})
	if _, err := mb.EPPAll(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	st := mb.Stats()
	words := int64((vectors + 63) / 64)
	if st.Words != words || st.GoodSims != words {
		t.Fatalf("stats = %+v, want Words == GoodSims == %d", st, words)
	}
	if st.Sites != int64(c.N()) {
		t.Fatalf("Sites = %d, want %d", st.Sites, c.N())
	}
	if perSite := words * int64(c.N()); perSite < 5*st.GoodSims {
		t.Fatalf("good-sim saving %d/%d < 5x", perSite, st.GoodSims)
	}
	if st.LaneSims <= 0 || st.SweptMembers <= 0 {
		t.Fatalf("work counters not recorded: %+v", st)
	}
}

// TestMCBatchUnobservableSites: sites with no reachable observation point
// are excluded from the lane groups and report P = 0 with full vector
// accounting.
func TestMCBatchUnobservableSites(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
INPUT(b)
OUTPUT(y)
dead = AND(a, b)
y = OR(a, b)
`)
	mb := NewMCBatch(c, MCOptions{Vectors: 128, Seed: 3})
	out, err := mb.EPPAll(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	dead := c.ByName("dead")
	if out[dead].PSensitized != 0 || out[dead].Detected != 0 {
		t.Fatalf("dead node: %+v, want P = 0", out[dead])
	}
	if out[dead].Vectors != 128 {
		t.Fatalf("dead node vectors = %d, want 128", out[dead].Vectors)
	}
	if got := mb.Stats().Unobservable; got != 1 {
		t.Fatalf("Stats().Unobservable = %d, want 1 (just the dead gate)", got)
	}
	// And an always-observed site: a is a PO's fanin through OR... the PO
	// itself must be P = 1 (its own flip is always visible).
	y := c.ByName("y")
	if out[y].PSensitized != 1 {
		t.Fatalf("PO site: %+v, want P = 1", out[y])
	}
}

// TestMCBatchCancellation: a pre-cancelled context aborts before (or
// promptly after) the first word and surfaces ctx.Err().
func TestMCBatchCancellation(t *testing.T) {
	c := gen.SmallRandomSequential(13)
	mb := NewMCBatch(c, MCOptions{Vectors: 1 << 14, Seed: 5})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mb.EPPAll(ctx, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestMonteCarloSeedGolden pins one MCResult per vector regime for a fixed
// seed, making the reproducibility contract explicit: the per-site regime
// must keep producing the historical stream, and the shared regime (the
// monte-carlo engine's, via MCBatch) is versioned by wordSeed. If either
// value changes, a seeding change has silently broken reproducibility.
func TestMonteCarloSeedGolden(t *testing.T) {
	c := gen.SmallRandomSequential(1)
	site := netlist.ID(2) // mid-probability site: 0.1 < P < 0.9, regimes differ
	perSite := NewMonteCarlo(c, MCOptions{Vectors: 1024, Seed: 1}).EPP(site)
	shared := NewMonteCarlo(c, MCOptions{Vectors: 1024, Seed: 1, SharedVectors: true}).EPP(site)
	t.Logf("per-site: %v", perSite)
	t.Logf("shared:   %v", shared)
	if got, want := perSite.Detected, 134; got != want {
		t.Errorf("per-site regime: Detected = %d, want %d (seed stream changed!)", got, want)
	}
	if got, want := shared.Detected, 121; got != want {
		t.Errorf("shared regime: Detected = %d, want %d (wordSeed stream changed!)", got, want)
	}
	// MCBatch inherits the shared-regime value verbatim.
	batched, err := NewMCBatch(c, MCOptions{Vectors: 1024, Seed: 1}).EPPAll(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if batched[site].Detected != shared.Detected {
		t.Errorf("MCBatch Detected = %d, want shared-regime %d", batched[site].Detected, shared.Detected)
	}
}
