// Package latch models P_latched(n) — the probability that an erroneous
// value present at node n is captured by a downstream flip-flop — the second
// factor of the paper's SER decomposition.
//
// The model is the standard latching-window argument (Mohanram & Touba, ITC
// 2003; Nguyen & Yagil, IRPS 2003): a transient of width W arriving at a
// flip-flop with setup+hold window T_w is latched iff it overlaps the window,
// which for a uniformly arriving pulse happens with probability
// (W + T_w) / T_clk, clamped to [0, 1]. Electrical masking attenuates the
// pulse as it propagates, modeled as a per-level retention factor applied
// over the node's shortest structural distance to an observation point.
//
// The model is consumed in two places. Probabilities is the per-node static
// factor of the paper's decomposition (the strike transient's attenuated
// capture probability). FrameWeight is the multi-cycle coupling: in a
// frame-unrolled analysis the strike-cycle detection events are still narrow
// transients racing the latching window, while events in later frames are
// re-launched from flip-flop outputs as full-cycle levels — FrameWeight
// derates each frame's detection contribution accordingly.
package latch

import (
	"fmt"
	"math"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Model computes per-node latching probabilities.
type Model struct {
	// ClockPeriodPs is the clock period in picoseconds (default 1000 — a
	// 1 GHz design).
	ClockPeriodPs float64
	// PulseWidthPs is the nominal SEU transient width at the strike site in
	// picoseconds (default 150).
	PulseWidthPs float64
	// WindowPs is the flip-flop setup+hold (latching) window in picoseconds
	// (default 30).
	WindowPs float64
	// AttenuationPerLevel multiplies the effective pulse width for every
	// logic level between the node and its nearest observation point,
	// modeling electrical masking (default 0.95; 1 disables attenuation).
	AttenuationPerLevel float64
}

// Default returns the documented default model (see package comment).
func Default() Model {
	return Model{
		ClockPeriodPs:       1000,
		PulseWidthPs:        150,
		WindowPs:            30,
		AttenuationPerLevel: 0.95,
	}
}

// Validate reports whether the parameters are physically meaningful.
func (m Model) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"clock period", m.ClockPeriodPs},
		{"pulse width", m.PulseWidthPs},
		{"window", m.WindowPs},
		{"attenuation per level", m.AttenuationPerLevel},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("latch: %s %v is not finite", f.name, f.v)
		}
	}
	if m.ClockPeriodPs <= 0 {
		return fmt.Errorf("latch: clock period %v ps must be positive", m.ClockPeriodPs)
	}
	if m.PulseWidthPs < 0 || m.WindowPs < 0 {
		return fmt.Errorf("latch: negative pulse width or window")
	}
	if m.AttenuationPerLevel <= 0 || m.AttenuationPerLevel > 1 {
		return fmt.Errorf("latch: attenuation per level %v outside (0,1]", m.AttenuationPerLevel)
	}
	return nil
}

// FrameWeight returns the capture weight of detection events in frame
// `frame` of a multi-cycle (frame-unrolled) analysis: the probability that
// an erroneous value observed at a primary output during that frame is
// actually registered by the capturing element, under the same
// latching-window argument as Probabilities.
//
// Frame 0 is the strike cycle — the observed value is the raw SEU transient
// of width PulseWidthPs, so the weight is (PulseWidthPs + WindowPs) /
// ClockPeriodPs, clamped to [0, 1]. The weight is deliberately
// un-attenuated: per-node electrical masking stays in the per-node factor
// of the SER decomposition. To keep the timing window counted exactly once
// per path, a latch-window-weighted composition must pair FrameWeight with
// ResidualProbabilities (window-free electrical masking) as the per-node
// factor, not with Probabilities (which already contains the window).
//
// Frames >= 1 are re-launched from flip-flop outputs: the erroneous value is
// a full-swing level held for the whole clock period, so the effective pulse
// equals ClockPeriodPs and (ClockPeriodPs + WindowPs) / ClockPeriodPs clamps
// to exactly 1 — a stable wrong value always overlaps the window. The
// weights are therefore nondecreasing in the frame index, and the weighted
// multi-cycle composition (internal/seq, the monte-carlo engine) needs only
// FrameWeight(0): later frames are never derated.
func (m Model) FrameWeight(frame int) float64 {
	width := m.PulseWidthPs
	if frame > 0 {
		width = m.ClockPeriodPs
	}
	p := (width + m.WindowPs) / m.ClockPeriodPs
	if p > 1 {
		return 1
	}
	if p < 0 || math.IsNaN(p) {
		return 0
	}
	return p
}

// Probabilities returns P_latched for every node, indexed by node ID.
// Nodes that reach no observation point get probability 0.
func (m Model) Probabilities(c *netlist.Circuit) []float64 {
	dist := distanceToObserved(c)
	out := make([]float64, c.N())
	for id := 0; id < c.N(); id++ {
		if dist[id] < 0 {
			continue // unobservable
		}
		width := m.PulseWidthPs
		for l := 0; l < dist[id]; l++ {
			width *= m.AttenuationPerLevel
		}
		p := (width + m.WindowPs) / m.ClockPeriodPs
		if p > 1 {
			p = 1
		}
		out[id] = p
	}
	return out
}

// ResidualProbabilities returns the electrical-masking residual of the
// static factor, indexed by node ID: how much of the strike transient
// survives the combinational path to the nearest observation point,
// relative to an undegraded pulse — (W·a^d + T_w) / (W + T_w), clamped to
// [0, 1], with d the node's distance to observation (0 for unobservable
// nodes, as in Probabilities).
//
// This is the per-node factor of the latch-window-weighted multi-cycle
// composition: there the timing window is applied per detection frame
// (FrameWeight), so the static factor must carry only the attenuation or
// the strike frame's window would be counted twice. For an unattenuated
// node the residual is exactly 1, and Probabilities factors (up to
// clamping) as ResidualProbabilities × FrameWeight(0).
func (m Model) ResidualProbabilities(c *netlist.Circuit) []float64 {
	dist := distanceToObserved(c)
	out := make([]float64, c.N())
	denom := m.PulseWidthPs + m.WindowPs
	for id := 0; id < c.N(); id++ {
		if dist[id] < 0 {
			continue // unobservable
		}
		if denom <= 0 {
			// Degenerate model (no pulse, no window): nothing to attenuate.
			out[id] = 1
			continue
		}
		width := m.PulseWidthPs
		for l := 0; l < dist[id]; l++ {
			width *= m.AttenuationPerLevel
		}
		p := (width + m.WindowPs) / denom
		if p > 1 {
			p = 1
		}
		out[id] = p
	}
	return out
}

// distanceToObserved returns, per node, the minimum number of gate levels
// from the node to an observation point (0 if the node itself is observed),
// or -1 if no observation point is reachable. Computed with one reverse
// topological sweep; edges into flip-flops are not followed.
func distanceToObserved(c *netlist.Circuit) []int {
	dist := make([]int, c.N())
	for i := range dist {
		dist[i] = -1
	}
	topo := c.Topo()
	for i := len(topo) - 1; i >= 0; i-- {
		id := topo[i]
		if c.IsObserved(id) {
			dist[id] = 0
			continue
		}
		best := -1
		for _, out := range c.Node(id).Fanout {
			if c.Node(out).Kind == logic.DFF {
				continue
			}
			if d := dist[out]; d >= 0 && (best < 0 || d+1 < best) {
				best = d + 1
			}
		}
		dist[id] = best
	}
	return dist
}
