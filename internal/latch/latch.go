// Package latch models P_latched(n) — the probability that an erroneous
// value present at node n is captured by a downstream flip-flop — the second
// factor of the paper's SER decomposition.
//
// The model is the standard latching-window argument (Mohanram & Touba, ITC
// 2003; Nguyen & Yagil, IRPS 2003): a transient of width W arriving at a
// flip-flop with setup+hold window T_w is latched iff it overlaps the window,
// which for a uniformly arriving pulse happens with probability
// (W + T_w) / T_clk, clamped to [0, 1]. Electrical masking attenuates the
// pulse as it propagates, modeled as a per-level retention factor applied
// over the node's shortest structural distance to an observation point.
package latch

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Model computes per-node latching probabilities.
type Model struct {
	// ClockPeriodPs is the clock period in picoseconds (default 1000 — a
	// 1 GHz design).
	ClockPeriodPs float64
	// PulseWidthPs is the nominal SEU transient width at the strike site in
	// picoseconds (default 150).
	PulseWidthPs float64
	// WindowPs is the flip-flop setup+hold (latching) window in picoseconds
	// (default 30).
	WindowPs float64
	// AttenuationPerLevel multiplies the effective pulse width for every
	// logic level between the node and its nearest observation point,
	// modeling electrical masking (default 0.95; 1 disables attenuation).
	AttenuationPerLevel float64
}

// Default returns the documented default model (see package comment).
func Default() Model {
	return Model{
		ClockPeriodPs:       1000,
		PulseWidthPs:        150,
		WindowPs:            30,
		AttenuationPerLevel: 0.95,
	}
}

// Validate reports whether the parameters are physically meaningful.
func (m Model) Validate() error {
	if m.ClockPeriodPs <= 0 {
		return fmt.Errorf("latch: clock period %v ps must be positive", m.ClockPeriodPs)
	}
	if m.PulseWidthPs < 0 || m.WindowPs < 0 {
		return fmt.Errorf("latch: negative pulse width or window")
	}
	if m.AttenuationPerLevel <= 0 || m.AttenuationPerLevel > 1 {
		return fmt.Errorf("latch: attenuation per level %v outside (0,1]", m.AttenuationPerLevel)
	}
	return nil
}

// Probabilities returns P_latched for every node, indexed by node ID.
// Nodes that reach no observation point get probability 0.
func (m Model) Probabilities(c *netlist.Circuit) []float64 {
	dist := distanceToObserved(c)
	out := make([]float64, c.N())
	for id := 0; id < c.N(); id++ {
		if dist[id] < 0 {
			continue // unobservable
		}
		width := m.PulseWidthPs
		for l := 0; l < dist[id]; l++ {
			width *= m.AttenuationPerLevel
		}
		p := (width + m.WindowPs) / m.ClockPeriodPs
		if p > 1 {
			p = 1
		}
		out[id] = p
	}
	return out
}

// distanceToObserved returns, per node, the minimum number of gate levels
// from the node to an observation point (0 if the node itself is observed),
// or -1 if no observation point is reachable. Computed with one reverse
// topological sweep; edges into flip-flops are not followed.
func distanceToObserved(c *netlist.Circuit) []int {
	dist := make([]int, c.N())
	for i := range dist {
		dist[i] = -1
	}
	topo := c.Topo()
	for i := len(topo) - 1; i >= 0; i-- {
		id := topo[i]
		if c.IsObserved(id) {
			dist[id] = 0
			continue
		}
		best := -1
		for _, out := range c.Node(id).Fanout {
			if c.Node(out).Kind == logic.DFF {
				continue
			}
			if d := dist[out]; d >= 0 && (best < 0 || d+1 < best) {
				best = d + 1
			}
		}
		dist[id] = best
	}
	return dist
}
