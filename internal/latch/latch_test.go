package latch

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/netlist"
)

func chain(t *testing.T) *netlist.Circuit {
	t.Helper()
	// g0 -> g1 -> g2 -> PO; dead has no path to any output.
	c, err := bench.ParseString(`
INPUT(a)
OUTPUT(g2)
g0 = NOT(a)
g1 = NOT(g0)
g2 = NOT(g1)
dead = NOT(a)
`)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
}

func TestDistanceMonotoneAttenuation(t *testing.T) {
	c := chain(t)
	m := Default()
	p := m.Probabilities(c)
	g0 := p[c.ByName("g0")]
	g1 := p[c.ByName("g1")]
	g2 := p[c.ByName("g2")]
	if !(g2 >= g1 && g1 >= g0) {
		t.Errorf("attenuation not monotone along the chain: %v %v %v", g0, g1, g2)
	}
	if g2 != (m.PulseWidthPs+m.WindowPs)/m.ClockPeriodPs {
		t.Errorf("observed node probability = %v", g2)
	}
	// Exactly one attenuation step between g1 and the PO.
	want := (m.PulseWidthPs*m.AttenuationPerLevel + m.WindowPs) / m.ClockPeriodPs
	if math.Abs(g1-want) > 1e-12 {
		t.Errorf("g1 = %v, want %v", g1, want)
	}
}

func TestUnobservableNodeZero(t *testing.T) {
	c := chain(t)
	p := Default().Probabilities(c)
	if p[c.ByName("dead")] != 0 {
		t.Errorf("unobservable node latching probability = %v", p[c.ByName("dead")])
	}
}

func TestClampAtOne(t *testing.T) {
	c := chain(t)
	m := Default()
	m.PulseWidthPs = 5000 // wider than the clock period
	p := m.Probabilities(c)
	if p[c.ByName("g2")] != 1 {
		t.Errorf("probability not clamped: %v", p[c.ByName("g2")])
	}
}

func TestNoAttenuationMode(t *testing.T) {
	c := chain(t)
	m := Default()
	m.AttenuationPerLevel = 1
	p := m.Probabilities(c)
	if p[c.ByName("g0")] != p[c.ByName("g2")] {
		t.Errorf("attenuation=1 should equalize: %v vs %v",
			p[c.ByName("g0")], p[c.ByName("g2")])
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Model)
	}{
		{"zero-clock", func(m *Model) { m.ClockPeriodPs = 0 }},
		{"negative-clock", func(m *Model) { m.ClockPeriodPs = -100 }},
		{"attenuation-above-one", func(m *Model) { m.AttenuationPerLevel = 1.5 }},
		{"zero-attenuation", func(m *Model) { m.AttenuationPerLevel = 0 }},
		{"negative-pulse", func(m *Model) { m.PulseWidthPs = -1 }},
		{"negative-window", func(m *Model) { m.WindowPs = -5 }},
		{"nan-clock", func(m *Model) { m.ClockPeriodPs = math.NaN() }},
		{"nan-pulse", func(m *Model) { m.PulseWidthPs = math.NaN() }},
		{"inf-window", func(m *Model) { m.WindowPs = math.Inf(1) }},
		{"inf-attenuation", func(m *Model) { m.AttenuationPerLevel = math.Inf(-1) }},
	}
	for _, tc := range cases {
		m := Default()
		tc.mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: accepted %+v", tc.name, m)
		}
	}
}

// TestFrameWeight pins the per-frame capture weights: the strike frame pays
// the transient-vs-window probability, every later frame is a re-launched
// full-cycle value and weighs exactly 1.
func TestFrameWeight(t *testing.T) {
	m := Default()
	want0 := (m.PulseWidthPs + m.WindowPs) / m.ClockPeriodPs
	if got := m.FrameWeight(0); math.Abs(got-want0) > 1e-15 {
		t.Errorf("FrameWeight(0) = %v, want %v", got, want0)
	}
	for k := 1; k <= 8; k++ {
		if got := m.FrameWeight(k); got != 1 {
			t.Errorf("FrameWeight(%d) = %v, want exactly 1 (full-cycle re-launch)", k, got)
		}
	}
}

// TestFrameWeightClamp: a transient wider than the clock period saturates
// the strike weight at 1; a zero-width transient still pays the window.
func TestFrameWeightClamp(t *testing.T) {
	m := Default()
	m.PulseWidthPs = 5 * m.ClockPeriodPs
	if got := m.FrameWeight(0); got != 1 {
		t.Errorf("wide pulse: FrameWeight(0) = %v, want clamp to 1", got)
	}
	m = Default()
	m.PulseWidthPs = 0
	want := m.WindowPs / m.ClockPeriodPs
	if got := m.FrameWeight(0); math.Abs(got-want) > 1e-15 {
		t.Errorf("zero pulse: FrameWeight(0) = %v, want %v", got, want)
	}
	m.WindowPs = 0
	if got := m.FrameWeight(0); got != 0 {
		t.Errorf("zero pulse and window: FrameWeight(0) = %v, want 0", got)
	}
}

// TestFrameWeightMonotone: weights never decrease with the frame index and
// always lie in [0, 1], across a spread of physically odd but valid models.
func TestFrameWeightMonotone(t *testing.T) {
	models := []Model{
		Default(),
		{ClockPeriodPs: 100, PulseWidthPs: 1, WindowPs: 0, AttenuationPerLevel: 1},
		{ClockPeriodPs: 50, PulseWidthPs: 500, WindowPs: 80, AttenuationPerLevel: 0.5},
		{ClockPeriodPs: 1e6, PulseWidthPs: 0, WindowPs: 0, AttenuationPerLevel: 0.99},
	}
	for _, m := range models {
		prev := -1.0
		for k := 0; k < 6; k++ {
			w := m.FrameWeight(k)
			if w < 0 || w > 1 {
				t.Fatalf("%+v: FrameWeight(%d) = %v outside [0,1]", m, k, w)
			}
			if w < prev {
				t.Fatalf("%+v: FrameWeight(%d) = %v < FrameWeight(%d) = %v", m, k, w, k-1, prev)
			}
			prev = w
		}
	}
}

// TestDeepPathAttenuation: the static per-node factor keeps attenuating on
// arbitrarily deep paths without going negative or rising.
func TestDeepPathAttenuation(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("INPUT(a)\nOUTPUT(g40)\ng0 = NOT(a)\n")
	for i := 1; i <= 40; i++ {
		fmt.Fprintf(&sb, "g%d = NOT(g%d)\n", i, i-1)
	}
	c, err := bench.ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	p := Default().Probabilities(c)
	prev := -1.0
	for i := 0; i <= 40; i++ { // g40 is the observed end; g0 the deepest
		id := c.ByName(fmt.Sprintf("g%d", i))
		if p[id] < 0 || p[id] > 1 {
			t.Fatalf("g%d: probability %v outside [0,1]", i, p[id])
		}
		if p[id] < prev {
			t.Fatalf("g%d: probability %v dropped below %v while approaching the output", i, p[id], prev)
		}
		prev = p[id]
	}
	// 40 levels of 0.95 attenuation leave well under half the window+pulse.
	if head, tail := p[c.ByName("g0")], p[c.ByName("g40")]; head >= tail/2 {
		t.Errorf("attenuation too weak on a deep path: g0 %v vs g40 %v", head, tail)
	}
}

func TestFFBoundaryDistance(t *testing.T) {
	// d feeds a DFF: d is observed (distance 0); logic behind the FF does
	// not shorten d's distance.
	c, err := bench.ParseString(`
INPUT(a)
OUTPUT(z)
d = NOT(a)
q = DFF(d)
z = NOT(q)
`)
	if err != nil {
		t.Fatal(err)
	}
	m := Default()
	p := m.Probabilities(c)
	want := (m.PulseWidthPs + m.WindowPs) / m.ClockPeriodPs
	if p[c.ByName("d")] != want {
		t.Errorf("FF D input probability = %v, want %v", p[c.ByName("d")], want)
	}
}

// TestResidualProbabilities: the residual is the static factor with the
// endpoint timing window factored out — exactly 1 at an observation point,
// monotone along the path, never below the full static factor, and 0 for
// unobservable nodes.
func TestResidualProbabilities(t *testing.T) {
	c := chain(t)
	m := Default()
	static := m.Probabilities(c)
	res := m.ResidualProbabilities(c)
	if got := res[c.ByName("g2")]; got != 1 {
		t.Errorf("observed node residual = %v, want exactly 1", got)
	}
	if res[c.ByName("dead")] != 0 {
		t.Errorf("unobservable node residual = %v, want 0", res[c.ByName("dead")])
	}
	for _, name := range []string{"g0", "g1", "g2"} {
		id := c.ByName(name)
		if res[id] < static[id]-1e-15 || res[id] > 1 {
			t.Errorf("%s: residual %v outside [static %v, 1]", name, res[id], static[id])
		}
	}
	// One attenuation level: (W·a + Tw) / (W + Tw).
	want := (m.PulseWidthPs*m.AttenuationPerLevel + m.WindowPs) / (m.PulseWidthPs + m.WindowPs)
	if got := res[c.ByName("g1")]; math.Abs(got-want) > 1e-12 {
		t.Errorf("g1 residual = %v, want %v", got, want)
	}
	// Degenerate model: no pulse and no window leaves nothing to attenuate.
	z := Default()
	z.PulseWidthPs, z.WindowPs = 0, 0
	for _, name := range []string{"g0", "g2"} {
		if got := z.ResidualProbabilities(c)[c.ByName(name)]; got != 1 {
			t.Errorf("degenerate model: %s residual = %v, want 1", name, got)
		}
	}
}
