package latch

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/netlist"
)

func chain(t *testing.T) *netlist.Circuit {
	t.Helper()
	// g0 -> g1 -> g2 -> PO; dead has no path to any output.
	c, err := bench.ParseString(`
INPUT(a)
OUTPUT(g2)
g0 = NOT(a)
g1 = NOT(g0)
g2 = NOT(g1)
dead = NOT(a)
`)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
}

func TestDistanceMonotoneAttenuation(t *testing.T) {
	c := chain(t)
	m := Default()
	p := m.Probabilities(c)
	g0 := p[c.ByName("g0")]
	g1 := p[c.ByName("g1")]
	g2 := p[c.ByName("g2")]
	if !(g2 >= g1 && g1 >= g0) {
		t.Errorf("attenuation not monotone along the chain: %v %v %v", g0, g1, g2)
	}
	if g2 != (m.PulseWidthPs+m.WindowPs)/m.ClockPeriodPs {
		t.Errorf("observed node probability = %v", g2)
	}
	// Exactly one attenuation step between g1 and the PO.
	want := (m.PulseWidthPs*m.AttenuationPerLevel + m.WindowPs) / m.ClockPeriodPs
	if math.Abs(g1-want) > 1e-12 {
		t.Errorf("g1 = %v, want %v", g1, want)
	}
}

func TestUnobservableNodeZero(t *testing.T) {
	c := chain(t)
	p := Default().Probabilities(c)
	if p[c.ByName("dead")] != 0 {
		t.Errorf("unobservable node latching probability = %v", p[c.ByName("dead")])
	}
}

func TestClampAtOne(t *testing.T) {
	c := chain(t)
	m := Default()
	m.PulseWidthPs = 5000 // wider than the clock period
	p := m.Probabilities(c)
	if p[c.ByName("g2")] != 1 {
		t.Errorf("probability not clamped: %v", p[c.ByName("g2")])
	}
}

func TestNoAttenuationMode(t *testing.T) {
	c := chain(t)
	m := Default()
	m.AttenuationPerLevel = 1
	p := m.Probabilities(c)
	if p[c.ByName("g0")] != p[c.ByName("g2")] {
		t.Errorf("attenuation=1 should equalize: %v vs %v",
			p[c.ByName("g0")], p[c.ByName("g2")])
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	m := Default()
	m.ClockPeriodPs = 0
	if err := m.Validate(); err == nil {
		t.Error("zero clock period accepted")
	}
	m = Default()
	m.AttenuationPerLevel = 1.5
	if err := m.Validate(); err == nil {
		t.Error("attenuation > 1 accepted")
	}
	m = Default()
	m.PulseWidthPs = -1
	if err := m.Validate(); err == nil {
		t.Error("negative pulse width accepted")
	}
}

func TestFFBoundaryDistance(t *testing.T) {
	// d feeds a DFF: d is observed (distance 0); logic behind the FF does
	// not shorten d's distance.
	c, err := bench.ParseString(`
INPUT(a)
OUTPUT(z)
d = NOT(a)
q = DFF(d)
z = NOT(q)
`)
	if err != nil {
		t.Fatal(err)
	}
	m := Default()
	p := m.Probabilities(c)
	want := (m.PulseWidthPs + m.WindowPs) / m.ClockPeriodPs
	if p[c.ByName("d")] != want {
		t.Errorf("FF D input probability = %v, want %v", p[c.ByName("d")], want)
	}
}
