// Package exact computes ground-truth propagation probabilities and signal
// probabilities by exhaustive enumeration of all input assignments. It is
// exponential in the number of sources and exists to validate both the
// analytical EPP engine and the Monte Carlo baseline on small circuits
// (property tests and the accuracy example).
//
// Enumeration is 64-way bit-parallel: the low six source indices are driven
// with the canonical interleave masks and the remaining indices follow the
// chunk number, so each simulator run covers 64 exhaustive patterns.
package exact

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
	"repro/internal/netlist"
	"repro/internal/simulate"
)

// MaxSupport is the largest number of sources Enumerate will accept
// (2^24 × circuit-size evaluations is the practical laptop ceiling).
const MaxSupport = 24

// interleave[i] is the exhaustive word for source index i < 6: bit j of
// interleave[i] equals bit i of pattern number j.
var interleave = [6]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// sourceWord returns the 64-pattern word of source index i for the chunk
// whose first pattern number is base (a multiple of 64).
func sourceWord(i int, base uint64) uint64 {
	if i < 6 {
		return interleave[i]
	}
	if base>>uint(i)&1 == 1 {
		return ^uint64(0)
	}
	return 0
}

// enumerate drives all 2^k assignments of the circuit's sources through fn,
// which receives the engine after a good-machine Run for each 64-pattern
// chunk together with the chunk base pattern number and the number of valid
// patterns in the chunk (always 64 except when k < 6).
func enumerate(c *netlist.Circuit, eng *simulate.Engine, fn func(base uint64, valid int)) error {
	sources := c.Sources()
	k := len(sources)
	if k > MaxSupport {
		return fmt.Errorf("exact: circuit has %d sources, limit %d", k, MaxSupport)
	}
	total := uint64(1) << uint(k)
	chunk := uint64(64)
	if total < chunk {
		chunk = total
	}
	for base := uint64(0); base < total; base += 64 {
		for i, s := range sources {
			eng.SetSource(s, sourceWord(i, base))
		}
		eng.Run()
		fn(base, int(chunk))
		if total <= 64 {
			break
		}
	}
	return nil
}

// PSensitized computes the exact probability, under independent uniform
// (p=0.5) sources, that an SEU at site is visible at one or more observation
// points. This is the quantity the EPP engine approximates.
func PSensitized(c *netlist.Circuit, site netlist.ID) (float64, error) {
	eng := simulate.NewEngine(c)
	cone := graph.NewWalker(c).ForwardCone(site)
	detected := uint64(0)
	totalPatterns := uint64(0)
	err := enumerate(c, eng, func(base uint64, valid int) {
		d := eng.FaultySim(&cone)
		if valid < 64 {
			d &= (uint64(1) << uint(valid)) - 1
		}
		detected += uint64(bits.OnesCount64(d))
		totalPatterns += uint64(valid)
	})
	if err != nil {
		return 0, err
	}
	return float64(detected) / float64(totalPatterns), nil
}

// PSensitizedWeighted is PSensitized with per-source bias: prob1[id] is the
// probability of source id holding logic 1 (nil entries default to 0.5 via a
// nil slice). Cost grows with the number of detecting patterns (k
// multiplications each); intended for small validation circuits.
func PSensitizedWeighted(c *netlist.Circuit, site netlist.ID, prob1 []float64) (float64, error) {
	if prob1 == nil {
		return PSensitized(c, site)
	}
	sources := c.Sources()
	eng := simulate.NewEngine(c)
	cone := graph.NewWalker(c).ForwardCone(site)
	sum := 0.0
	err := enumerate(c, eng, func(base uint64, valid int) {
		d := eng.FaultySim(&cone)
		if valid < 64 {
			d &= (uint64(1) << uint(valid)) - 1
		}
		for d != 0 {
			j := bits.TrailingZeros64(d)
			d &= d - 1
			pattern := base + uint64(j)
			w := 1.0
			for i, s := range sources {
				if pattern>>uint(i)&1 == 1 {
					w *= prob1[s]
				} else {
					w *= 1 - prob1[s]
				}
			}
			sum += w
		}
	})
	if err != nil {
		return 0, err
	}
	return sum, nil
}

// SignalProb computes the exact signal probability of every node under
// independent uniform sources. The returned slice is indexed by node ID.
func SignalProb(c *netlist.Circuit) ([]float64, error) {
	eng := simulate.NewEngine(c)
	ones := make([]uint64, c.N())
	totalPatterns := uint64(0)
	err := enumerate(c, eng, func(base uint64, valid int) {
		mask := ^uint64(0)
		if valid < 64 {
			mask = (uint64(1) << uint(valid)) - 1
		}
		for id := 0; id < c.N(); id++ {
			ones[id] += uint64(bits.OnesCount64(eng.Value(netlist.ID(id)) & mask))
		}
		totalPatterns += uint64(valid)
	})
	if err != nil {
		return nil, err
	}
	sp := make([]float64, c.N())
	for id := range sp {
		sp[id] = float64(ones[id]) / float64(totalPatterns)
	}
	return sp, nil
}
