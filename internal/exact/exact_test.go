package exact

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/netlist"
)

func mustParse(t *testing.T, src string) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestPSensitizedHandCases pins ground truth on circuits small enough to
// reason about on paper.
func TestPSensitizedHandCases(t *testing.T) {
	// y = AND(a, b): flip at a observed iff b = 1 -> 1/2.
	c := mustParse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")
	p, err := PSensitized(c, c.ByName("a"))
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.5 {
		t.Errorf("AND side input: %v, want 0.5", p)
	}
	// The observed node itself: always 1.
	p, _ = PSensitized(c, c.ByName("y"))
	if p != 1 {
		t.Errorf("output node: %v, want 1", p)
	}

	// 3-input AND: flip at a observed iff b=c=1 -> 1/4.
	c = mustParse(t, "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = AND(a, b, c)\n")
	p, _ = PSensitized(c, c.ByName("a"))
	if p != 0.25 {
		t.Errorf("AND3: %v, want 0.25", p)
	}

	// XOR always propagates.
	c = mustParse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n")
	p, _ = PSensitized(c, c.ByName("a"))
	if p != 1 {
		t.Errorf("XOR: %v, want 1", p)
	}
}

// TestReconvergenceCancellation: y = XOR(a, a) via two branches is the
// classic case where the error reconverges with equal polarity and cancels:
// a flip at the stem never reaches the output.
func TestReconvergenceCancellation(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
OUTPUT(y)
b1 = BUFF(a)
b2 = BUFF(a)
y = XOR(b1, b2)
`)
	p, err := PSensitized(c, c.ByName("a"))
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Errorf("cancelling reconvergence: %v, want 0", p)
	}
}

// TestOppositePolarityReconvergence: y = XOR(a, NOT(a)) is constant 1, and a
// flip at the stem a flips both XOR inputs, so the output never changes:
// the error is structurally masked. This is precisely the case the paper's
// polarity tracking (a vs a̅ at the reconvergence gate) must get right.
func TestOppositePolarityReconvergence(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
OUTPUT(y)
n = NOT(a)
y = XOR(a, n)
`)
	p, err := PSensitized(c, c.ByName("a"))
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Errorf("opposite-polarity reconvergence: %v, want 0 (masked)", p)
	}
}

// TestPolarityDependentPropagation: y = XOR(a, AND(a, b)). A flip at a
// reaches y through two paths whose interaction depends on b: detected iff
// b = 0, so P = 1/2.
func TestPolarityDependentPropagation(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
INPUT(b)
OUTPUT(y)
g = AND(a, b)
y = XOR(a, g)
`)
	p, err := PSensitized(c, c.ByName("a"))
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.5 {
		t.Errorf("polarity-dependent propagation: %v, want 0.5", p)
	}
}

// TestMultipleOutputs: with two independent observers the site is observed
// if either propagates.
func TestMultipleOutputs(t *testing.T) {
	// y1 = AND(a, b), y2 = AND(a, c): observed iff b=1 or c=1 -> 3/4.
	c := mustParse(t, `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y1)
OUTPUT(y2)
y1 = AND(a, b)
y2 = AND(a, c)
`)
	p, err := PSensitized(c, c.ByName("a"))
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.75 {
		t.Errorf("two outputs: %v, want 0.75", p)
	}
}

// TestWeightedMatchesUniform: weighting with p=0.5 must equal the uniform
// path bit for bit.
func TestWeightedMatchesUniform(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		c := gen.SmallRandom(seed + 40)
		prob := make([]float64, c.N())
		for i := range prob {
			prob[i] = 0.5
		}
		for id := 0; id < c.N(); id += 3 {
			u, err := PSensitized(c, netlist.ID(id))
			if err != nil {
				t.Fatal(err)
			}
			w, err := PSensitizedWeighted(c, netlist.ID(id), prob)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(u-w) > 1e-12 {
				t.Fatalf("seed %d node %d: uniform %v, weighted(0.5) %v", seed, id, u, w)
			}
		}
	}
}

// TestWeightedHandCase: y = AND(a, b) with P(b=1)=0.3: flip at a detected
// with probability 0.3.
func TestWeightedHandCase(t *testing.T) {
	c := mustParse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")
	prob := make([]float64, c.N())
	prob[c.ByName("a")] = 0.5
	prob[c.ByName("b")] = 0.3
	p, err := PSensitizedWeighted(c, c.ByName("a"), prob)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.3) > 1e-12 {
		t.Errorf("weighted AND: %v, want 0.3", p)
	}
}

// TestSignalProbHandCase.
func TestSignalProbHandCase(t *testing.T) {
	c := mustParse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n")
	sp, err := SignalProb(c)
	if err != nil {
		t.Fatal(err)
	}
	if sp[c.ByName("y")] != 0.75 {
		t.Errorf("SP(NAND) = %v, want 0.75", sp[c.ByName("y")])
	}
	if sp[c.ByName("a")] != 0.5 {
		t.Errorf("SP(input) = %v, want 0.5", sp[c.ByName("a")])
	}
}

// TestSupportLimit: circuits over the enumeration limit report an error
// instead of running forever.
func TestSupportLimit(t *testing.T) {
	b := netlist.NewBuilder("big")
	var ins []netlist.ID
	for i := 0; i < MaxSupport+1; i++ {
		ins = append(ins, b.Input(nameN(i)))
	}
	y := b.And("y", ins...)
	b.MarkOutput(y)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PSensitized(c, ins[0]); err == nil {
		t.Error("over-limit circuit accepted")
	}
	if _, err := SignalProb(c); err == nil {
		t.Error("over-limit circuit accepted by SignalProb")
	}
}

func nameN(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+i/26))
}

// TestFewSourceCircuit: fewer than 6 sources exercises the partial-chunk
// masking path.
func TestFewSourceCircuit(t *testing.T) {
	c := mustParse(t, "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
	p, err := PSensitized(c, c.ByName("a"))
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("inverter chain: %v, want 1", p)
	}
	sp, err := SignalProb(c)
	if err != nil {
		t.Fatal(err)
	}
	if sp[c.ByName("y")] != 0.5 {
		t.Errorf("SP(y) = %v", sp[c.ByName("y")])
	}
}

// TestSequentialBoundary: exact P_sensitized counts detection at FF D inputs
// and does not cross the flip-flop.
func TestSequentialBoundary(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
INPUT(b)
OUTPUT(z)
d = AND(a, b)
q = DFF(d)
z = BUFF(q)
`)
	// Flip at a: detected at d (FF D input) iff b=1 -> 0.5.
	p, err := PSensitized(c, c.ByName("a"))
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.5 {
		t.Errorf("sequential boundary: %v, want 0.5", p)
	}
}
