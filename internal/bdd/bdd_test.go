package bdd

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func mustVar(t *testing.T, m *Manager, i int) Ref {
	t.Helper()
	v, err := m.Var(i)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestTerminalsAndVar(t *testing.T) {
	m := New(2, 0)
	if m.Const(false) != False || m.Const(true) != True {
		t.Fatal("constants broken")
	}
	a := mustVar(t, m, 0)
	if m.Eval(a, []bool{true, false}) != true || m.Eval(a, []bool{false, true}) != false {
		t.Fatal("Var(0) mis-evaluates")
	}
	if _, err := m.Var(5); err == nil {
		t.Fatal("out-of-range var accepted")
	}
}

// TestCanonicity: structurally equal functions share the same Ref.
func TestCanonicity(t *testing.T) {
	m := New(3, 0)
	a, b := mustVar(t, m, 0), mustVar(t, m, 1)
	ab1, err := m.And(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ab2, err := m.And(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if ab1 != ab2 {
		t.Error("AND not canonical under commutation")
	}
	// Double negation is the identity ref.
	na, err := m.Not(a)
	if err != nil {
		t.Fatal(err)
	}
	nna, err := m.Not(na)
	if err != nil {
		t.Fatal(err)
	}
	if nna != a {
		t.Error("double negation not identity")
	}
	// Tautology collapses to True.
	taut, err := m.Or(a, na)
	if err != nil {
		t.Fatal(err)
	}
	if taut != True {
		t.Error("a + a̅ != True")
	}
}

// TestOpsAgainstTruthTables: every operator agrees with brute-force
// evaluation over all assignments of 4 variables.
func TestOpsAgainstTruthTables(t *testing.T) {
	m := New(4, 0)
	vars := make([]Ref, 4)
	for i := range vars {
		vars[i] = mustVar(t, m, i)
	}
	// f = (x0 AND x1) XOR (x2 OR NOT x3)
	and01, _ := m.And(vars[0], vars[1])
	n3, _ := m.Not(vars[3])
	or23, _ := m.Or(vars[2], n3)
	f, err := m.Xor(and01, or23)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 16; a++ {
		asn := []bool{a&1 != 0, a&2 != 0, a&4 != 0, a&8 != 0}
		want := (asn[0] && asn[1]) != (asn[2] || !asn[3])
		if got := m.Eval(f, asn); got != want {
			t.Fatalf("assignment %04b: got %v, want %v", a, got, want)
		}
	}
}

// TestIteProperty (quick): ITE agrees with its definition on random small
// functions built from 3 variables.
func TestIteProperty(t *testing.T) {
	m := New(3, 0)
	vars := make([]Ref, 3)
	for i := range vars {
		vars[i] = mustVar(t, m, i)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	randFn := func() Ref {
		f := vars[rng.IntN(3)]
		for k := 0; k < 3; k++ {
			g := vars[rng.IntN(3)]
			var err error
			switch rng.IntN(3) {
			case 0:
				f, err = m.And(f, g)
			case 1:
				f, err = m.Or(f, g)
			default:
				f, err = m.Xor(f, g)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		return f
	}
	for trial := 0; trial < 50; trial++ {
		f, g, h := randFn(), randFn(), randFn()
		ite, err := m.Ite(f, g, h)
		if err != nil {
			t.Fatal(err)
		}
		for a := 0; a < 8; a++ {
			asn := []bool{a&1 != 0, a&2 != 0, a&4 != 0}
			want := m.Eval(g, asn)
			if !m.Eval(f, asn) {
				want = m.Eval(h, asn)
			}
			if m.Eval(ite, asn) != want {
				t.Fatalf("ITE violates definition at %03b", a)
			}
		}
	}
}

// TestSatFractionUniform: known satisfying fractions.
func TestSatFractionUniform(t *testing.T) {
	m := New(3, 0)
	a, b, c := mustVar(t, m, 0), mustVar(t, m, 1), mustVar(t, m, 2)
	u := []float64{0.5, 0.5, 0.5}
	and3, _ := m.AndN(a, b, c)
	if got := m.SatFraction(and3, u); got != 0.125 {
		t.Errorf("AND3 fraction = %v", got)
	}
	or2, _ := m.Or(a, b)
	if got := m.SatFraction(or2, u); got != 0.75 {
		t.Errorf("OR2 fraction = %v", got)
	}
	if m.SatFraction(True, u) != 1 || m.SatFraction(False, u) != 0 {
		t.Error("terminal fractions wrong")
	}
}

// TestSatFractionWeighted: P(a AND b) = pa·pb for independent inputs.
func TestSatFractionWeighted(t *testing.T) {
	m := New(2, 0)
	a, b := mustVar(t, m, 0), mustVar(t, m, 1)
	and2, _ := m.And(a, b)
	got := m.SatFraction(and2, []float64{0.3, 0.8})
	if math.Abs(got-0.24) > 1e-12 {
		t.Errorf("weighted AND = %v, want 0.24", got)
	}
	xor2, _ := m.Xor(a, b)
	got = m.SatFraction(xor2, []float64{0.3, 0.8})
	if math.Abs(got-(0.3*0.2+0.7*0.8)) > 1e-12 {
		t.Errorf("weighted XOR = %v", got)
	}
}

// TestXorChainParity (quick): the satisfying fraction of an n-var XOR chain
// under uniform inputs is exactly 1/2.
func TestXorChainParity(t *testing.T) {
	f := func(rawN uint8) bool {
		n := int(rawN%6) + 2
		m := New(n, 0)
		refs := make([]Ref, n)
		for i := range refs {
			v, err := m.Var(i)
			if err != nil {
				return false
			}
			refs[i] = v
		}
		chain, err := m.XorN(refs...)
		if err != nil {
			return false
		}
		w := make([]float64, n)
		for i := range w {
			w[i] = 0.5
		}
		return m.SatFraction(chain, w) == 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNodeCount(t *testing.T) {
	m := New(3, 0)
	a, b, c := mustVar(t, m, 0), mustVar(t, m, 1), mustVar(t, m, 2)
	and3, _ := m.AndN(a, b, c)
	// Ordered AND chain: exactly 3 internal nodes.
	if got := m.NodeCount(and3); got != 3 {
		t.Errorf("NodeCount(AND3) = %d, want 3", got)
	}
	if m.NodeCount(True) != 0 {
		t.Error("terminal count must be 0")
	}
}

// TestNodeLimit: the budget is enforced with ErrNodeLimit, not OOM.
func TestNodeLimit(t *testing.T) {
	m := New(8, 12) // absurdly small budget
	var f Ref = True
	var err error
	for i := 0; i < 8; i++ {
		v, verr := m.Var(i)
		if verr != nil {
			err = verr
			break
		}
		f, err = m.Xor(f, v)
		if err != nil {
			break
		}
	}
	if err != ErrNodeLimit {
		t.Errorf("expected ErrNodeLimit, got %v", err)
	}
}

func TestSizeGrowsMonotonically(t *testing.T) {
	m := New(4, 0)
	before := m.Size()
	a, _ := m.Var(0)
	b, _ := m.Var(1)
	if _, err := m.And(a, b); err != nil {
		t.Fatal(err)
	}
	if m.Size() <= before {
		t.Error("size did not grow after construction")
	}
}
