// Package bdd implements reduced ordered binary decision diagrams (ROBDDs)
// with hash-consing and a memoized if-then-else kernel. It is the exact
// symbolic substrate of the repository: Parker & McCluskey's signal
// probability (the paper's reference [5]) and exact error-propagation
// probabilities are weighted satisfying fractions of BDDs, which package
// bddsp builds from circuits. Unlike the enumeration engine (package exact),
// BDD size depends on circuit structure rather than input count, so exact
// answers remain reachable well past 24 inputs on many circuits.
//
// The implementation is deliberately classical: one node table with a
// (level, lo, hi) unique map, terminals False and True, a shared ITE cache,
// and an explicit node budget so pathological circuits fail with an error
// instead of exhausting memory.
package bdd

import (
	"errors"
	"fmt"
)

// Ref identifies a BDD node within its Manager. The terminals are False and
// True; all other refs are internal nodes.
type Ref int32

// Terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

// ErrNodeLimit is returned when an operation would exceed the Manager's
// node budget.
var ErrNodeLimit = errors.New("bdd: node limit exceeded")

type node struct {
	level int32 // variable index; terminals use a sentinel above all vars
	lo    Ref   // cofactor for var = 0
	hi    Ref   // cofactor for var = 1
}

type iteKey struct{ f, g, h Ref }

// Manager owns a universe of BDD nodes over a fixed variable count.
// Not safe for concurrent use.
type Manager struct {
	nvars    int32
	nodes    []node
	unique   map[node]Ref
	iteCache map[iteKey]Ref
	maxNodes int
}

// New returns a manager for nvars variables with the given node budget
// (0 means the default of 1<<22 nodes).
func New(nvars int, maxNodes int) *Manager {
	if maxNodes <= 0 {
		maxNodes = 1 << 22
	}
	m := &Manager{
		nvars:    int32(nvars),
		unique:   make(map[node]Ref),
		iteCache: make(map[iteKey]Ref),
		maxNodes: maxNodes,
	}
	// Terminals live at a level below all variables.
	m.nodes = append(m.nodes,
		node{level: int32(nvars), lo: False, hi: False}, // False
		node{level: int32(nvars), lo: True, hi: True},   // True
	)
	return m
}

// NumVars returns the variable count.
func (m *Manager) NumVars() int { return int(m.nvars) }

// Size returns the number of live nodes (including terminals).
func (m *Manager) Size() int { return len(m.nodes) }

// Var returns the BDD of variable i.
func (m *Manager) Var(i int) (Ref, error) {
	if i < 0 || int32(i) >= m.nvars {
		return False, fmt.Errorf("bdd: variable %d out of range [0,%d)", i, m.nvars)
	}
	return m.mk(int32(i), False, True)
}

// Const returns the constant BDD for v.
func (m *Manager) Const(v bool) Ref {
	if v {
		return True
	}
	return False
}

// mk returns the canonical node (level, lo, hi), applying the reduction
// rule.
func (m *Manager) mk(level int32, lo, hi Ref) (Ref, error) {
	if lo == hi {
		return lo, nil
	}
	key := node{level: level, lo: lo, hi: hi}
	if r, ok := m.unique[key]; ok {
		return r, nil
	}
	if len(m.nodes) >= m.maxNodes {
		return False, ErrNodeLimit
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, key)
	m.unique[key] = r
	return r, nil
}

func (m *Manager) level(r Ref) int32 { return m.nodes[r].level }

// Ite computes if-then-else(f, g, h) = f·g + f̅·h, the universal connective.
func (m *Manager) Ite(f, g, h Ref) (Ref, error) {
	// Terminal cases.
	switch {
	case f == True:
		return g, nil
	case f == False:
		return h, nil
	case g == h:
		return g, nil
	case g == True && h == False:
		return f, nil
	}
	key := iteKey{f, g, h}
	if r, ok := m.iteCache[key]; ok {
		return r, nil
	}
	// Split on the top variable.
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	lo, err := m.Ite(f0, g0, h0)
	if err != nil {
		return False, err
	}
	hi, err := m.Ite(f1, g1, h1)
	if err != nil {
		return False, err
	}
	r, err := m.mk(top, lo, hi)
	if err != nil {
		return False, err
	}
	m.iteCache[key] = r
	return r, nil
}

// cofactors returns the level-cofactors of r.
func (m *Manager) cofactors(r Ref, level int32) (lo, hi Ref) {
	n := &m.nodes[r]
	if n.level != level {
		return r, r
	}
	return n.lo, n.hi
}

// Not returns the complement of f.
func (m *Manager) Not(f Ref) (Ref, error) { return m.Ite(f, False, True) }

// And returns f·g.
func (m *Manager) And(f, g Ref) (Ref, error) { return m.Ite(f, g, False) }

// Or returns f+g.
func (m *Manager) Or(f, g Ref) (Ref, error) { return m.Ite(f, True, g) }

// Xor returns f⊕g.
func (m *Manager) Xor(f, g Ref) (Ref, error) {
	ng, err := m.Not(g)
	if err != nil {
		return False, err
	}
	return m.Ite(f, ng, g)
}

// AndN folds And over one or more operands.
func (m *Manager) AndN(fs ...Ref) (Ref, error) { return m.foldN(m.And, True, fs) }

// OrN folds Or over one or more operands.
func (m *Manager) OrN(fs ...Ref) (Ref, error) { return m.foldN(m.Or, False, fs) }

// XorN folds Xor over one or more operands.
func (m *Manager) XorN(fs ...Ref) (Ref, error) { return m.foldN(m.Xor, False, fs) }

func (m *Manager) foldN(op func(Ref, Ref) (Ref, error), unit Ref, fs []Ref) (Ref, error) {
	acc := unit
	if len(fs) > 0 {
		acc = fs[0]
		fs = fs[1:]
	}
	for _, f := range fs {
		var err error
		acc, err = op(acc, f)
		if err != nil {
			return False, err
		}
	}
	return acc, nil
}

// Eval evaluates f under the given variable assignment.
func (m *Manager) Eval(f Ref, assignment []bool) bool {
	for f != True && f != False {
		n := &m.nodes[f]
		if assignment[n.level] {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}

// SatFraction returns the probability that f evaluates true when variable i
// is independently 1 with probability prob1[i]. With uniform probabilities
// (all 0.5) this is the satisfying fraction — Parker–McCluskey's exact
// signal probability when f is a net function over the primary inputs.
func (m *Manager) SatFraction(f Ref, prob1 []float64) float64 {
	if len(prob1) != int(m.nvars) {
		panic(fmt.Sprintf("bdd: SatFraction with %d probabilities for %d vars", len(prob1), m.nvars))
	}
	memo := make(map[Ref]float64)
	var rec func(Ref) float64
	rec = func(r Ref) float64 {
		switch r {
		case False:
			return 0
		case True:
			return 1
		}
		if v, ok := memo[r]; ok {
			return v
		}
		n := &m.nodes[r]
		p := prob1[n.level]
		v := (1-p)*rec(n.lo) + p*rec(n.hi)
		memo[r] = v
		return v
	}
	return rec(f)
}

// NodeCount returns the number of nodes reachable from f (excluding
// terminals) — the conventional BDD size metric.
func (m *Manager) NodeCount(f Ref) int {
	seen := make(map[Ref]bool)
	var rec func(Ref)
	rec = func(r Ref) {
		if r == True || r == False || seen[r] {
			return
		}
		seen[r] = true
		rec(m.nodes[r].lo)
		rec(m.nodes[r].hi)
	}
	rec(f)
	return len(seen)
}
