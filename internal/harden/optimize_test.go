package harden

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/ser"
	"repro/internal/sigprob"
)

func TestOverhead(t *testing.T) {
	for _, tc := range []struct{ k, want int }{{0, 0}, {1, 6}, {3, 18}, {10, 60}} {
		if got := Overhead(tc.k); got != tc.want {
			t.Errorf("Overhead(%d) = %d, want %d", tc.k, got, tc.want)
		}
	}
}

// TestOptimizeGreedyDescent runs the optimizer on a seed-pinned circuit and
// checks the full audit trail: the FIT chain is contiguous and monotone
// non-increasing under the rad-hard-voter objective, every pick is a
// distinct original gate, the hardened circuit grew by exactly Overhead, and
// each step's engine counters account for every site of the circuit it
// estimated. (MemoHits may legitimately be zero on a small circuit — a TMR
// near the sources shifts signal probabilities through everything — so the
// restore-proof lives in the eco package's differential harness, not here.)
func TestOptimizeGreedyDescent(t *testing.T) {
	c := gen.SmallRandom(17)
	const steps = 4
	res, err := Optimize(context.Background(), c, OptimizeConfig{MaxSteps: steps})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) == 0 || len(res.Steps) > steps {
		t.Fatalf("took %d steps, want 1..%d", len(res.Steps), steps)
	}
	if res.BaselineFIT != res.Steps[0].BeforeFIT {
		t.Errorf("BaselineFIT %v != first BeforeFIT %v", res.BaselineFIT, res.Steps[0].BeforeFIT)
	}
	if last := res.Steps[len(res.Steps)-1]; res.FinalFIT != last.AfterFIT {
		t.Errorf("FinalFIT %v != last AfterFIT %v", res.FinalFIT, last.AfterFIT)
	}
	seen := map[netlist.ID]bool{}
	for i, s := range res.Steps {
		if i > 0 && s.BeforeFIT != res.Steps[i-1].AfterFIT {
			t.Errorf("step %d: BeforeFIT %v != previous AfterFIT %v", i, s.BeforeFIT, res.Steps[i-1].AfterFIT)
		}
		if s.AfterFIT > s.BeforeFIT {
			t.Errorf("step %d: objective rose %v -> %v", i, s.BeforeFIT, s.AfterFIT)
		}
		if int(s.Picked) >= c.N() || !c.Node(s.Picked).Kind.IsGate() {
			t.Errorf("step %d: pick %d is not an original gate", i, s.Picked)
		}
		if seen[s.Picked] {
			t.Errorf("step %d: gate %d picked twice", i, s.Picked)
		}
		seen[s.Picked] = true
		if s.Name != c.NameOf(s.Picked) {
			t.Errorf("step %d: Name %q, want %q", i, s.Name, c.NameOf(s.Picked))
		}
		if res.Protected[i] != s.Picked {
			t.Errorf("step %d: Protected[%d] = %d, want %d", i, i, res.Protected[i], s.Picked)
		}
		// The circuit estimated at step i carries i+1 protections.
		n := int64(c.N() + Overhead(i+1))
		if s.SweptSites+s.MemoHits != n {
			t.Errorf("step %d: SweptSites(%d) + MemoHits(%d) != %d sites", i, s.SweptSites, s.MemoHits, n)
		}
	}
	if res.Circuit.N() != c.N()+Overhead(len(res.Steps)) {
		t.Errorf("hardened circuit has %d nodes, want %d", res.Circuit.N(), c.N()+Overhead(len(res.Steps)))
	}
	if res.OverheadGates != Overhead(len(res.Steps)) {
		t.Errorf("OverheadGates = %d, want %d", res.OverheadGates, Overhead(len(res.Steps)))
	}
	if res.Report == nil || len(res.Report.Nodes) != res.Circuit.N() {
		t.Fatalf("final Report does not cover the hardened circuit")
	}
}

// TestOptimizeDeterministic: two runs from scratch pick the same gates and
// land on bit-identical FIT values — the determinism the doc promises (the
// ranking ties break by ID, the estimates are bit-exact).
func TestOptimizeDeterministic(t *testing.T) {
	c := gen.SmallRandom(23)
	run := func() *Result {
		t.Helper()
		res, err := Optimize(context.Background(), c, OptimizeConfig{MaxSteps: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Steps) != len(b.Steps) {
		t.Fatalf("step counts differ: %d vs %d", len(a.Steps), len(b.Steps))
	}
	for i := range a.Steps {
		if a.Steps[i].Picked != b.Steps[i].Picked {
			t.Errorf("step %d: picks differ: %d vs %d", i, a.Steps[i].Picked, b.Steps[i].Picked)
		}
		if a.Steps[i].AfterFIT != b.Steps[i].AfterFIT {
			t.Errorf("step %d: AfterFIT differs: %v vs %v", i, a.Steps[i].AfterFIT, b.Steps[i].AfterFIT)
		}
	}
	if a.FinalFIT != b.FinalFIT {
		t.Errorf("FinalFIT differs: %v vs %v", a.FinalFIT, b.FinalFIT)
	}
}

// TestOptimizeBudget: a budget at or above the baseline takes zero steps; a
// budget between the baseline and the one-step result takes exactly one.
func TestOptimizeBudget(t *testing.T) {
	c := gen.SmallRandom(29)
	probe, err := Optimize(context.Background(), c, OptimizeConfig{MaxSteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(probe.Steps) != 1 {
		t.Fatalf("probe took %d steps, want 1", len(probe.Steps))
	}
	if probe.FinalFIT >= probe.BaselineFIT {
		t.Fatalf("probe step did not reduce the objective: %v -> %v", probe.BaselineFIT, probe.FinalFIT)
	}

	res, err := Optimize(context.Background(), c, OptimizeConfig{BudgetFIT: probe.BaselineFIT})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 0 || res.FinalFIT != res.BaselineFIT {
		t.Errorf("budget >= baseline: took %d steps, FinalFIT %v (baseline %v)", len(res.Steps), res.FinalFIT, res.BaselineFIT)
	}
	if res.OverheadGates != 0 {
		t.Errorf("zero-step run reports OverheadGates %d", res.OverheadGates)
	}

	mid := (probe.BaselineFIT + probe.FinalFIT) / 2
	res, err = Optimize(context.Background(), c, OptimizeConfig{BudgetFIT: mid})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 1 {
		t.Errorf("budget %v (between baseline %v and one-step %v): took %d steps, want 1",
			mid, probe.BaselineFIT, probe.FinalFIT, len(res.Steps))
	}
	if res.FinalFIT > mid {
		t.Errorf("stopped above budget: FinalFIT %v > %v", res.FinalFIT, mid)
	}
}

// TestOptimizeExhaustsGates: with an unreachable budget and no step bound
// the loop protects every gate once, then stops rather than spinning.
func TestOptimizeExhaustsGates(t *testing.T) {
	c := gen.SmallRandom(2) // small gate count keeps this cheap
	res, err := Optimize(context.Background(), c, OptimizeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != c.NumGates() {
		t.Errorf("protected %d gates, want all %d", len(res.Steps), c.NumGates())
	}
}

// TestOptimizeIneligibleConfigRunsUncached: a Monte Carlo SP configuration
// cannot use the ECO cache (whole-circuit SP input); the optimizer must
// still converge, with every step paying a full sweep (MemoHits == 0).
func TestOptimizeIneligibleConfigRunsUncached(t *testing.T) {
	c := gen.SmallRandom(31)
	res, err := Optimize(context.Background(), c, OptimizeConfig{
		MaxSteps: 2,
		SER:      ser.Config{SPMethod: ser.SPMonteCarlo, SP: sigprob.Config{Vectors: 4096, Seed: 7}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) == 0 {
		t.Fatal("no steps taken")
	}
	for i, s := range res.Steps {
		if s.MemoHits != 0 {
			t.Errorf("step %d: MemoHits %d on an ECO-ineligible configuration", i, s.MemoHits)
		}
	}
}

func TestOptimizeRejectsNegativeConfig(t *testing.T) {
	c := gen.SmallRandom(3)
	if _, err := Optimize(context.Background(), c, OptimizeConfig{BudgetFIT: -1}); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := Optimize(context.Background(), c, OptimizeConfig{MaxSteps: -1}); err == nil {
		t.Error("negative MaxSteps accepted")
	}
}

func TestOptimizeContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Optimize(ctx, gen.SmallRandom(5), OptimizeConfig{MaxSteps: 1}); err == nil {
		t.Error("cancelled context accepted")
	}
}
