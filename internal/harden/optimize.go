// The greedy hardening optimizer: the paper's rank → harden → re-estimate
// loop packaged as one call, made interactive-speed by incremental (ECO)
// re-estimation — each iteration re-sweeps only the cones the TMR transform
// touched.

package harden

import (
	"context"
	"fmt"

	"repro/internal/eco"
	"repro/internal/engine"
	"repro/internal/netlist"
	"repro/internal/ser"
)

// OptimizeConfig configures Optimize.
type OptimizeConfig struct {
	// BudgetFIT is the target: the loop stops once the FIT objective —
	// the summed SER of the original circuit's sites, added replicas and
	// voters excluded (the rad-hard-voter accounting; see the package
	// caveat on soft voters) — is at or below this value. 0 means "as low
	// as MaxSteps allows".
	BudgetFIT float64
	// MaxSteps bounds the number of gates protected (0 = the number of
	// combinational gates in c — every gate is eligible once).
	MaxSteps int
	// SER configures the estimator. Its ECO field is attached automatically
	// when nil and the configuration is eligible, so every re-estimate
	// after the first sweeps only the touched cones; ineligible
	// configurations (a bias vector, Monte Carlo SP) run uncached — the
	// optimizer still works, each step just pays a full sweep. The Stats
	// field is overwritten per iteration to produce the Step counters.
	SER ser.Config
}

// Step records one optimizer iteration, including the engine counters that
// prove (or measure) the incremental re-estimate: SweptSites is the number
// of sites the engine actually recomputed after the TMR edit, MemoHits the
// number restored from the cache — on an ECO-assisted run their sum is the
// circuit size and SweptSites ≈ the touched-cone count.
type Step struct {
	// Picked is the protected gate (an ID of the original circuit, stable
	// across iterations — the TMR transform preserves original IDs).
	Picked netlist.ID
	// Name is the picked gate's name in the original circuit.
	Name string
	// BeforeFIT/AfterFIT bracket the FIT objective across this step.
	BeforeFIT float64
	AfterFIT  float64
	// SweptSites / MemoHits are the re-estimate's engine counters.
	SweptSites int64
	MemoHits   int64
}

// Result is Optimize's outcome.
type Result struct {
	// Circuit is the hardened netlist (every Steps[i].Picked TMR-protected).
	Circuit *netlist.Circuit
	// Report is the final full estimate of Circuit (all sites, voters and
	// replicas included — apply your own accounting to its Nodes).
	Report *ser.Report
	// BaselineFIT is the objective before any protection; FinalFIT after
	// the last step. The objective sums SERFIT over the original circuit's
	// node IDs only.
	BaselineFIT float64
	FinalFIT    float64
	// Protected lists the protected gates in pick order.
	Protected []netlist.ID
	// Steps is the per-iteration audit trail.
	Steps []Step
	// OverheadGates is the total gate-count cost (Overhead of len(Steps)).
	OverheadGates int
}

// Optimize runs greedy selective hardening on c: estimate, TMR the
// highest-SER unprotected original gate, re-estimate, repeat — until the
// FIT objective (original sites only; added voter/replica gates are
// accounted rad-hard) reaches cfg.BudgetFIT, every gate is protected, or
// MaxSteps is hit. With an ECO cache attached (the default when eligible)
// each re-estimate sweeps only the cones the edit touched, so exploring a
// k-gate hardening set costs O(k × touched cones) instead of O(k × full
// sweep); each Step carries the engine counters that quantify it.
//
// The loop is deterministic: ties in the ranking break by ascending node
// ID, and the estimates themselves are bit-exact under the repository's
// standing engine contracts, so the pick order is reproducible across
// worker counts and cache states.
func Optimize(ctx context.Context, c *netlist.Circuit, cfg OptimizeConfig) (*Result, error) {
	if cfg.BudgetFIT < 0 {
		return nil, fmt.Errorf("harden: negative FIT budget %v", cfg.BudgetFIT)
	}
	if cfg.MaxSteps < 0 {
		return nil, fmt.Errorf("harden: negative MaxSteps %d", cfg.MaxSteps)
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = c.NumGates()
	}
	serCfg := cfg.SER
	if serCfg.ECO == nil {
		// Opportunistic: eligible configurations get the incremental loop,
		// the rest run uncached rather than erroring.
		ser.AttachECO(&serCfg, eco.NewCache())
	}

	origN := c.N()
	estimate := func(cc *netlist.Circuit) (*ser.Report, *engine.Stats, error) {
		st := &engine.Stats{}
		serCfg.Stats = st
		rep, err := ser.Run(ctx, cc, serCfg)
		return rep, st, err
	}
	// objective sums the original sites' SER: protecting gate g reroutes
	// its consumers through a voter, so g's own sensitization and its
	// downstream exposure drop, while the added replicas and voter gates —
	// new error sites in the raw report — are excluded, i.e. accounted as
	// radiation-hardened cells (the package caveat: counting soft voters as
	// sites can make raw TMR a net loss, which would stall any greedy
	// descent).
	objective := func(rep *ser.Report) float64 {
		var sum float64
		for id := 0; id < origN && id < len(rep.Nodes); id++ {
			sum += rep.Nodes[id].SERFIT
		}
		return sum
	}

	rep, _, err := estimate(c)
	if err != nil {
		return nil, err
	}
	res := &Result{Circuit: c, Report: rep, BaselineFIT: objective(rep)}
	res.FinalFIT = res.BaselineFIT
	protected := make(map[netlist.ID]bool)
	kinds := c.Kinds()

	for len(res.Steps) < maxSteps && res.FinalFIT > cfg.BudgetFIT {
		// Greedy pick: the highest-SER unprotected original gate in the
		// current (partially hardened) estimate; ties break by ID.
		pick := netlist.InvalidID
		best := 0.0
		for id := 0; id < origN; id++ {
			if protected[netlist.ID(id)] || !kinds[id].IsGate() {
				continue
			}
			if s := res.Report.Nodes[id].SERFIT; pick == netlist.InvalidID || s > best {
				pick, best = netlist.ID(id), s
			}
		}
		if pick == netlist.InvalidID {
			break // every gate protected; budget unreachable by TMR alone
		}
		hardened, err := TMR(res.Circuit, []netlist.ID{pick})
		if err != nil {
			return nil, err
		}
		rep, st, err := estimate(hardened)
		if err != nil {
			return nil, err
		}
		after := objective(rep)
		res.Steps = append(res.Steps, Step{
			Picked:     pick,
			Name:       c.NameOf(pick),
			BeforeFIT:  res.FinalFIT,
			AfterFIT:   after,
			SweptSites: st.Sites.Load(),
			MemoHits:   st.MemoHits.Load(),
		})
		res.Protected = append(res.Protected, pick)
		protected[pick] = true
		res.Circuit, res.Report, res.FinalFIT = hardened, rep, after
	}
	res.OverheadGates = Overhead(len(res.Steps))
	return res, nil
}
