// Package harden applies structural soft-error hardening to a netlist: the
// paper's concluding use-case ("identify the most vulnerable components to
// be protected by soft error hardening techniques") made executable. The
// transform implemented is local TMR: a selected gate is triplicated and its
// fanout is rewired through a 2-of-3 majority voter, so a single-event upset
// in any one replica is structurally masked.
//
// Hardening verification is itself a test of estimator fidelity: exhaustive
// enumeration and fault simulation prove P_sensitized of a protected replica
// drops to exactly 0, while the EPP approximation — which cannot see that
// the replicas carry the same logical value — remains conservative
// (overestimates). The test suite pins both behaviours.
//
// Textbook caveat, also pinned by the tests: the voter built here is itself
// made of ordinary soft gates, and its output inherits the protected gate's
// full observability, so counting voter gates as error sites local TMR can
// *increase* raw circuit SER. Real designs use radiation-hardened voters;
// evaluate that case by excluding the *_v* nodes from the SER sum.
package harden

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// TMR returns a copy of c with each selected gate triplicated and voted.
// Selected IDs must be combinational gates (not sources, not observation
// wiring). The voter is built from four NAND2/NAND3 gates —
// maj(a,b,c) = NAND(NAND(a,b), NAND(b,c), NAND(a,c)) — so the transformed
// netlist stays within ordinary gate kinds and the voter's own gates become
// new (realistic) error sites. Node names gain _r1/_r2/_v suffixes.
func TMR(c *netlist.Circuit, selected []netlist.ID) (*netlist.Circuit, error) {
	sel := make(map[netlist.ID]bool, len(selected))
	for _, id := range selected {
		if id < 0 || int(id) >= c.N() {
			return nil, fmt.Errorf("harden: invalid node %d", id)
		}
		n := c.Node(id)
		if !n.Kind.IsGate() {
			return nil, fmt.Errorf("harden: node %q (%v) is not a combinational gate", n.Name, n.Kind)
		}
		sel[id] = true
	}

	// Copy all original nodes first (IDs preserved), then append replicas
	// and voters. Fanouts of a protected gate are rewired to its voter;
	// the original keeps its own fanins.
	nodes := make([]netlist.Node, c.N(), c.N()+6*len(sel))
	for i := range nodes {
		src := c.Node(netlist.ID(i))
		nodes[i] = netlist.Node{
			ID:    src.ID,
			Name:  src.Name,
			Kind:  src.Kind,
			Fanin: append([]netlist.ID(nil), src.Fanin...),
			IsPO:  src.IsPO,
		}
	}
	voterOf := make(map[netlist.ID]netlist.ID, len(sel))
	var replicas []netlist.ID
	newNode := func(name string, kind logic.Kind, fanin ...netlist.ID) netlist.ID {
		id := netlist.ID(len(nodes))
		// Copy the fanin: callers pass the original circuit's Fanin slices,
		// which alias its CSR storage, and rewire mutates these lists below.
		nodes = append(nodes, netlist.Node{ID: id, Name: name, Kind: kind,
			Fanin: append([]netlist.ID(nil), fanin...)})
		return id
	}
	for _, id := range selected {
		if _, done := voterOf[id]; done {
			continue
		}
		orig := c.Node(id)
		r1 := newNode(orig.Name+"_r1", orig.Kind, orig.Fanin...)
		r2 := newNode(orig.Name+"_r2", orig.Kind, orig.Fanin...)
		replicas = append(replicas, r1, r2)
		n1 := newNode(orig.Name+"_v1", logic.Nand, id, r1)
		n2 := newNode(orig.Name+"_v2", logic.Nand, r1, r2)
		n3 := newNode(orig.Name+"_v3", logic.Nand, id, r2)
		v := newNode(orig.Name+"_v", logic.Nand, n1, n2, n3)
		voterOf[id] = v
	}

	// Rewire: every consumer of a protected gate — original nodes AND the
	// replicas of other protected gates (so cascaded protection still masks
	// single faults) — reads the voter instead. Voter-internal gates keep
	// their direct references to the three replicated copies; rewiring them
	// would create cycles and defeat the vote.
	rewire := func(n *netlist.Node) {
		for j, f := range n.Fanin {
			if v, ok := voterOf[f]; ok {
				n.Fanin[j] = v
			}
		}
	}
	for i := 0; i < c.N(); i++ {
		rewire(&nodes[i])
	}
	for _, r := range replicas {
		rewire(&nodes[r])
	}
	// A protected primary output moves to the voter.
	var pos []netlist.ID
	for _, po := range c.POs {
		if v, ok := voterOf[po]; ok {
			nodes[po].IsPO = false
			nodes[v].IsPO = true
			pos = append(pos, v)
		} else {
			pos = append(pos, po)
		}
	}
	pis := append([]netlist.ID(nil), c.PIs...)
	ffs := append([]netlist.ID(nil), c.FFs...)
	return netlist.New(c.Name+"_tmr", nodes, pis, pos, ffs)
}

// Overhead reports the gate-count cost of a TMR transform protecting k
// gates: 2 replicas + 4 voter gates each.
func Overhead(k int) int { return 6 * k }
