package harden_test

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/exact"
	"repro/internal/harden"
	"repro/internal/netlist"
)

// ExampleTMR protects one gate and shows that an SEU in any of its three
// copies is structurally masked (exact propagation probability 0), while
// the unprotected circuit exposed it.
func ExampleTMR() {
	c, err := bench.ParseString(`
INPUT(a)
INPUT(b)
OUTPUT(y)
g = AND(a, b)
y = BUFF(g)
`)
	if err != nil {
		log.Fatal(err)
	}
	before, _ := exact.PSensitized(c, c.ByName("g"))
	fmt.Printf("before TMR: P_sens(g) = %.0f\n", before)

	h, err := harden.TMR(c, []netlist.ID{c.ByName("g")})
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"g", "g_r1", "g_r2"} {
		p, _ := exact.PSensitized(h, h.ByName(name))
		fmt.Printf("after TMR:  P_sens(%s) = %.0f\n", name, p)
	}
	// Output:
	// before TMR: P_sens(g) = 1
	// after TMR:  P_sens(g) = 0
	// after TMR:  P_sens(g_r1) = 0
	// after TMR:  P_sens(g_r2) = 0
}
